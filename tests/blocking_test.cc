// Unit tests for src/blocking: blocks, token/standard blocking, purging,
// filtering, scheduling, ProfileIndex (incl. LeCoBI) and the suffix forest.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <span>
#include <string>

#include "blocking/block_collection.h"
#include "blocking/block_filtering.h"
#include "blocking/block_purging.h"
#include "blocking/block_scheduling.h"
#include "blocking/profile_index.h"
#include "blocking/standard_blocking.h"
#include "blocking/suffix_forest.h"
#include "blocking/token_blocking.h"

namespace sper {
namespace {

ProfileStore DirtyStore() {
  // p0 {red, blue}; p1 {red, green}; p2 {blue}; p3 {red}.
  std::vector<Profile> ps(4);
  ps[0].AddAttribute("v", "red blue");
  ps[1].AddAttribute("v", "red green");
  ps[2].AddAttribute("v", "blue");
  ps[3].AddAttribute("v", "red");
  return ProfileStore::MakeDirty(std::move(ps));
}

ProfileStore CleanCleanStore() {
  // Source 1: p0 {red}, p1 {blue}; source 2: p2 {red blue}, p3 {green}.
  std::vector<Profile> s1(2), s2(2);
  s1[0].AddAttribute("v", "red");
  s1[1].AddAttribute("v", "blue");
  s2[0].AddAttribute("v", "red blue");
  s2[1].AddAttribute("v", "green");
  return ProfileStore::MakeCleanClean(std::move(s1), std::move(s2));
}

std::vector<ProfileId> Members(const BlockCollection& blocks, BlockId id) {
  std::span<const ProfileId> span = blocks.members(id);
  return std::vector<ProfileId>(span.begin(), span.end());
}

std::map<std::string, std::vector<ProfileId>> AsMap(
    const BlockCollection& blocks) {
  std::map<std::string, std::vector<ProfileId>> out;
  for (BlockId id = 0; id < blocks.size(); ++id) {
    out[std::string(blocks.key(id))] = Members(blocks, id);
  }
  return out;
}

// -------------------------------------------------------- BlockCollection

TEST(BlockCollectionTest, DirtyCardinalityIsChoose2) {
  BlockCollection bc(ErType::kDirty, 10);
  const BlockId id = bc.Add("k", {1, 2, 3, 4});
  EXPECT_EQ(bc.Cardinality(id), 6u);  // C(4,2), paper's ||b_tailor||
  EXPECT_EQ(bc.AggregateCardinality(), 6u);
}

TEST(BlockCollectionTest, CleanCleanCardinalityIsCrossProduct) {
  BlockCollection bc(ErType::kCleanClean, /*split_index=*/2);
  const BlockId id = bc.Add("k", {0, 1, 2, 3, 4});  // 2 x 3
  EXPECT_EQ(bc.Cardinality(id), 6u);
}

TEST(BlockCollectionTest, SingleSourceBlockHasZeroCardinality) {
  BlockCollection bc(ErType::kCleanClean, 2);
  EXPECT_EQ(bc.Add("a", {0, 1}), 0u);
  EXPECT_EQ(bc.Cardinality(0), 0u);
  bc.Add("b", {2, 3});
  EXPECT_EQ(bc.Cardinality(1), 0u);
}

TEST(BlockCollectionTest, ForEachComparisonDirtyVisitsAllPairs) {
  BlockCollection bc(ErType::kDirty, 10);
  bc.Add("k", {1, 3, 5});
  std::vector<std::pair<ProfileId, ProfileId>> pairs;
  bc.ForEachComparison(0, [&](ProfileId a, ProfileId b) {
    pairs.emplace_back(a, b);
  });
  EXPECT_EQ(pairs, (std::vector<std::pair<ProfileId, ProfileId>>{
                       {1, 3}, {1, 5}, {3, 5}}));
}

TEST(BlockCollectionTest, ForEachComparisonCleanCleanCrossesSources) {
  BlockCollection bc(ErType::kCleanClean, 2);
  bc.Add("k", {0, 1, 2, 3});
  std::vector<std::pair<ProfileId, ProfileId>> pairs;
  bc.ForEachComparison(0, [&](ProfileId a, ProfileId b) {
    pairs.emplace_back(a, b);
  });
  EXPECT_EQ(pairs, (std::vector<std::pair<ProfileId, ProfileId>>{
                       {0, 2}, {0, 3}, {1, 2}, {1, 3}}));
}

TEST(BlockCollectionTest, MeanBlockSize) {
  BlockCollection bc(ErType::kDirty, 10);
  bc.Add("a", {1, 2});
  bc.Add("b", {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(bc.MeanBlockSize(), 3.0);
}

// --------------------------------------------------------- TokenBlocking

TEST(TokenBlockingTest, DirtyBuildsOneBlockPerSharedToken) {
  BlockCollection blocks = TokenBlocking(DirtyStore());
  auto map = AsMap(blocks);
  // green appears in one profile only -> no block.
  ASSERT_EQ(map.size(), 2u);
  EXPECT_EQ(map["red"], (std::vector<ProfileId>{0, 1, 3}));
  EXPECT_EQ(map["blue"], (std::vector<ProfileId>{0, 2}));
}

TEST(TokenBlockingTest, CleanCleanKeepsOnlyCrossSourceBlocks) {
  BlockCollection blocks = TokenBlocking(CleanCleanStore());
  auto map = AsMap(blocks);
  // green: only in source 2 -> dropped.
  ASSERT_EQ(map.size(), 2u);
  EXPECT_EQ(map["red"], (std::vector<ProfileId>{0, 2}));
  EXPECT_EQ(map["blue"], (std::vector<ProfileId>{1, 2}));
}

TEST(TokenBlockingTest, BlockOrderIsDeterministic) {
  BlockCollection a = TokenBlocking(DirtyStore());
  BlockCollection b = TokenBlocking(DirtyStore());
  ASSERT_EQ(a.size(), b.size());
  for (BlockId id = 0; id < a.size(); ++id) {
    EXPECT_EQ(a.key(id), b.key(id));
    EXPECT_EQ(Members(a, id), Members(b, id));
  }
}

// ------------------------------------------------------ StandardBlocking

TEST(StandardBlockingTest, GroupsByKeyFunction) {
  ProfileStore store = DirtyStore();
  BlockCollection blocks = StandardBlocking(store, [](const Profile& p) {
    // First letter of the value.
    return std::string(p.ValueOf("v").substr(0, 1));
  });
  auto map = AsMap(blocks);
  // keys: p0 "r", p1 "r", p2 "b", p3 "r" -> only "r" yields comparisons.
  ASSERT_EQ(map.size(), 1u);
  EXPECT_EQ(map["r"], (std::vector<ProfileId>{0, 1, 3}));
}

TEST(StandardBlockingTest, EmptyKeysAreSkipped) {
  std::vector<Profile> ps(3);
  ps[0].AddAttribute("k", "x");
  ps[1].AddAttribute("k", "x");
  ps[2].AddAttribute("other", "y");
  ProfileStore store = ProfileStore::MakeDirty(std::move(ps));
  BlockCollection blocks = StandardBlocking(
      store, [](const Profile& p) { return std::string(p.ValueOf("k")); });
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(Members(blocks, 0), (std::vector<ProfileId>{0, 1}));
}

// ---------------------------------------------------------- BlockPurging

TEST(BlockPurgingTest, DropsBlocksAboveTheRatio) {
  BlockCollection bc(ErType::kDirty, 100);
  bc.Add("small", {1, 2});
  bc.Add("big", {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  // 10% of 100 profiles = 10; the 11-profile block goes.
  BlockCollection purged = BlockPurging(bc, 100);
  ASSERT_EQ(purged.size(), 1u);
  EXPECT_EQ(purged.key(0), "small");
}

TEST(BlockPurgingTest, BoundaryBlockSurvives) {
  BlockCollection bc(ErType::kDirty, 100);
  std::vector<ProfileId> ten(10);
  for (ProfileId i = 0; i < 10; ++i) ten[i] = i;
  bc.Add("exactly10", ten);
  // |b| == 0.1 * |P| is NOT "more than 10%": kept.
  EXPECT_EQ(BlockPurging(bc, 100).size(), 1u);
}

// --------------------------------------------------------- BlockFiltering

TEST(BlockFilteringTest, RemovesProfilesFromTheirLargestBlocks) {
  // p1 appears in 5 blocks of growing size; ratio 0.8 keeps ceil(4) = 4.
  BlockCollection bc(ErType::kDirty, 100);
  bc.Add("b0", {1, 2});
  bc.Add("b1", {1, 3, 4});
  bc.Add("b2", {1, 2, 3, 4});
  bc.Add("b3", {1, 2, 3, 4, 5});
  bc.Add("b4", {1, 2, 3, 4, 5, 6});
  BlockCollection filtered = BlockFiltering(bc);
  auto map = AsMap(filtered);
  // p1's largest block is b4: it must not contain p1 anymore.
  ASSERT_TRUE(map.count("b4"));
  EXPECT_EQ(std::count(map["b4"].begin(), map["b4"].end(), 1), 0);
  // p1 stays in its four smallest blocks.
  EXPECT_EQ(std::count(map["b0"].begin(), map["b0"].end(), 1), 1);
  EXPECT_EQ(std::count(map["b2"].begin(), map["b2"].end(), 1), 1);
}

TEST(BlockFilteringTest, DropsBlocksLeftWithoutComparisons) {
  BlockCollection bc(ErType::kDirty, 100);
  bc.Add("tiny", {1, 2});
  bc.Add("big", {1, 2, 3});
  // ratio 0.5: each of p1, p2 keeps only its smallest block ("tiny"),
  // p3 keeps "big". "big" retains one profile -> dropped.
  BlockFilteringOptions options;
  options.ratio = 0.5;
  BlockCollection filtered = BlockFiltering(bc, options);
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered.key(0), "tiny");
}

TEST(BlockFilteringTest, RatioOneIsANoOp) {
  BlockCollection bc = TokenBlocking(DirtyStore());
  BlockFilteringOptions options;
  options.ratio = 1.0;
  BlockCollection filtered = BlockFiltering(bc, options);
  ASSERT_EQ(filtered.size(), bc.size());
  for (BlockId id = 0; id < bc.size(); ++id) {
    EXPECT_EQ(Members(filtered, id), Members(bc, id));
  }
}

// -------------------------------------------------------- BlockScheduling

TEST(BlockSchedulingTest, OrdersByCardinalityThenKey) {
  BlockCollection bc(ErType::kDirty, 100);
  bc.Add("zeta", {1, 2});        // 1 comparison
  bc.Add("mid", {1, 2, 3});      // 3 comparisons
  bc.Add("alpha", {4, 5});       // 1 comparison
  BlockCollection scheduled = BlockScheduling(bc);
  ASSERT_EQ(scheduled.size(), 3u);
  EXPECT_EQ(scheduled.key(0), "alpha");  // tie broken by key
  EXPECT_EQ(scheduled.key(1), "zeta");
  EXPECT_EQ(scheduled.key(2), "mid");
  EXPECT_TRUE(scheduled.Cardinality(0) <= scheduled.Cardinality(1));
  EXPECT_TRUE(scheduled.Cardinality(1) <= scheduled.Cardinality(2));
}

// ----------------------------------------------------------- ProfileIndex

TEST(ProfileIndexTest, ListsBlocksAscendingPerProfile) {
  BlockCollection blocks = TokenBlocking(DirtyStore());
  ProfileIndex index(blocks, 4);
  // Blocks sorted by key: blue=0 {0,2}, red=1 {0,1,3}.
  EXPECT_EQ(index.NumBlocksOf(0), 2u);
  EXPECT_EQ(index.BlocksOf(0)[0], 0u);
  EXPECT_EQ(index.BlocksOf(0)[1], 1u);
  EXPECT_EQ(index.NumBlocksOf(2), 1u);
  EXPECT_EQ(index.BlocksOf(2)[0], 0u);
}

TEST(ProfileIndexTest, LeastCommonBlockFindsSmallestSharedId) {
  BlockCollection bc(ErType::kDirty, 10);
  bc.Add("b0", {1, 2});
  bc.Add("b1", {2, 3});
  bc.Add("b2", {1, 2, 3});
  ProfileIndex index(bc, 10);
  EXPECT_EQ(index.LeastCommonBlock(1, 2), 0u);
  EXPECT_EQ(index.LeastCommonBlock(2, 3), 1u);
  EXPECT_EQ(index.LeastCommonBlock(1, 3), 2u);
  EXPECT_EQ(index.LeastCommonBlock(1, 9), kInvalidBlock);
}

TEST(ProfileIndexTest, CountCommonBlocks) {
  BlockCollection bc(ErType::kDirty, 10);
  bc.Add("b0", {1, 2});
  bc.Add("b1", {1, 2, 3});
  bc.Add("b2", {2, 3});
  ProfileIndex index(bc, 10);
  EXPECT_EQ(index.CountCommonBlocks(1, 2), 2u);
  EXPECT_EQ(index.CountCommonBlocks(2, 3), 2u);
  EXPECT_EQ(index.CountCommonBlocks(1, 3), 1u);
}

TEST(ProfileIndexTest, ForEachCommonBlockVisitsAscending) {
  BlockCollection bc(ErType::kDirty, 10);
  bc.Add("b0", {1, 2});
  bc.Add("b1", {1, 3});
  bc.Add("b2", {1, 2});
  ProfileIndex index(bc, 10);
  std::vector<BlockId> visited;
  index.ForEachCommonBlock(1, 2, [&](BlockId b) { visited.push_back(b); });
  EXPECT_EQ(visited, (std::vector<BlockId>{0, 2}));
}

// ------------------------------------------------------------ SuffixForest

TEST(SuffixForestTest, GeneratesAllSuffixesAboveLmin) {
  // The paper's Fig. 5 example: tokens gain/pain/join/coin share suffixes
  // "ain"/"oin" and all share "in" at lmin=2.
  std::vector<Profile> ps(4);
  ps[0].AddAttribute("v", "gain");
  ps[1].AddAttribute("v", "pain");
  ps[2].AddAttribute("v", "join");
  ps[3].AddAttribute("v", "coin");
  ProfileStore store = ProfileStore::MakeDirty(std::move(ps));
  SuffixForestOptions options;
  options.lmin = 2;
  SuffixForest forest = SuffixForest::Build(store, options);

  std::map<std::string, std::vector<ProfileId>> nodes;
  for (const SuffixNode& n : forest.nodes()) nodes[n.suffix] = n.profiles;
  // 4-char leaves are singletons -> dropped; shared suffixes survive.
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes["ain"], (std::vector<ProfileId>{0, 1}));
  EXPECT_EQ(nodes["oin"], (std::vector<ProfileId>{2, 3}));
  EXPECT_EQ(nodes["in"], (std::vector<ProfileId>{0, 1, 2, 3}));
}

TEST(SuffixForestTest, LeavesFirstRootLastOrdering) {
  std::vector<Profile> ps(4);
  ps[0].AddAttribute("v", "gain");
  ps[1].AddAttribute("v", "pain");
  ps[2].AddAttribute("v", "join");
  ps[3].AddAttribute("v", "coin");
  ProfileStore store = ProfileStore::MakeDirty(std::move(ps));
  SuffixForestOptions options;
  options.lmin = 2;
  SuffixForest forest = SuffixForest::Build(store, options);
  ASSERT_EQ(forest.nodes().size(), 3u);
  // Longest suffixes first ("ain" before "in"); same layer ordered by
  // cardinality then suffix.
  EXPECT_EQ(forest.nodes()[0].suffix, "ain");
  EXPECT_EQ(forest.nodes()[1].suffix, "oin");
  EXPECT_EQ(forest.nodes()[2].suffix, "in");
  EXPECT_EQ(forest.TotalComparisons(), 1u + 1u + 6u);
}

TEST(SuffixForestTest, RespectsMaxSuffixLength) {
  std::vector<Profile> ps(2);
  ps[0].AddAttribute("v", "abcdefghij");
  ps[1].AddAttribute("v", "zbcdefghij");
  ProfileStore store = ProfileStore::MakeDirty(std::move(ps));
  SuffixForestOptions options;
  options.lmin = 3;
  options.max_suffix_length = 5;
  SuffixForest forest = SuffixForest::Build(store, options);
  for (const SuffixNode& n : forest.nodes()) {
    EXPECT_LE(n.suffix.size(), 5u);
    EXPECT_GE(n.suffix.size(), 3u);
  }
  // The shared 5-char suffix "fghij" must exist.
  bool found = false;
  for (const SuffixNode& n : forest.nodes()) {
    if (n.suffix == "fghij") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SuffixForestTest, CleanCleanDropsSingleSourceNodes) {
  std::vector<Profile> s1(1), s2(1);
  s1[0].AddAttribute("v", "gain");
  s2[0].AddAttribute("v", "pain");
  ProfileStore store =
      ProfileStore::MakeCleanClean(std::move(s1), std::move(s2));
  SuffixForestOptions options;
  options.lmin = 2;
  SuffixForest forest = SuffixForest::Build(store, options);
  // Shared suffixes "ain"/"in" are cross-source; "gain"/"pain" are not.
  std::vector<std::string> suffixes;
  for (const SuffixNode& n : forest.nodes()) suffixes.push_back(n.suffix);
  EXPECT_EQ(suffixes, (std::vector<std::string>{"ain", "in"}));
}

}  // namespace
}  // namespace sper
