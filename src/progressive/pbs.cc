#include "progressive/pbs.h"

#include "blocking/block_scheduling.h"

namespace sper {

PbsEmitter::PbsEmitter(const ProfileStore& store,
                       const BlockCollection& blocks,
                       const PbsOptions& options)
    : store_(store),
      scheduled_(BlockScheduling(blocks)),
      index_(scheduled_, store.size()),
      weighter_(scheduled_, index_, store, options.scheme,
                options.num_threads) {}

void PbsEmitter::ProcessBlock(BlockId id) {
  comparisons_.Clear();
  scheduled_.ForEachComparison(id, [&](ProfileId i, ProfileId j) {
    // One pass over the two block lists serves both operations of the
    // Profile Index: the LeCoBI repetition test (is `id` the least common
    // block of i and j?) and Edge Weighting (accumulate contributions).
    BlockId least = kInvalidBlock;
    double accumulated = 0.0;
    index_.ForEachCommonBlock(i, j, [&](BlockId b) {
      if (least == kInvalidBlock) least = b;
      accumulated += weighter_.BlockContribution(b);
    });
    // least < id would mean the pair already appeared in an earlier block
    // (repeated comparison); least > id is impossible because `id`
    // contains both profiles.
    if (least != id) return;
    comparisons_.Add(Comparison(i, j, weighter_.Finalize(i, j, accumulated)));
  });
  comparisons_.SortDescending();
}

std::optional<Comparison> PbsEmitter::Next() {
  while (comparisons_.Empty()) {
    if (next_block_ >= scheduled_.size()) return std::nullopt;
    ProcessBlock(next_block_++);
  }
  return comparisons_.PopFirst();
}

}  // namespace sper
