#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "datagen/corruption.h"
#include "datagen/datagen.h"
#include "datagen/dictionaries.h"
#include "datagen/generator_util.h"
#include "datagen/rng.h"

/// Synthetic `dbpedia` (paper Table 2: Clean-Clean ER, 1.2M x 2.2M
/// profiles, 30k/50k attribute names, 893k matches, 15.47 name-value
/// pairs; the two DBpedia snapshots share only ~25% of their name-value
/// pairs).
///
/// Generated at the documented reduced scale (x ~1/18: 60k x 110k
/// profiles, 45k matches — see DESIGN.md §4): this environment is a
/// 2-core/21 GB machine, not the paper's 80 GB Xeon server. Every
/// *structural* property is preserved: thousands of Zipf-distributed
/// infobox attribute names, ~25% name-value-pair overlap between the two
/// snapshots of an entity, token-level value noise, and discriminative
/// entity-name tokens.

namespace sper {

namespace {

struct DbpediaPools {
  std::vector<std::string> prop_names;   // conceptual infobox properties
  std::vector<std::string> name_tokens;  // entity-name vocabulary
  std::vector<std::string> value_words;  // literal-value vocabulary
};

struct InfoboxEntity {
  std::string name;  // 1-3 tokens
  // Conceptual facts: (property index, value).
  std::vector<std::pair<std::size_t, std::string>> facts;
};

InfoboxEntity MakeEntity(Rng& rng, const DbpediaPools& pools) {
  InfoboxEntity entity;
  const std::size_t name_len = rng.UniformInt(1, 3);
  for (std::size_t w = 0; w < name_len; ++w) {
    if (w) entity.name += " ";
    entity.name += rng.Pick(pools.name_tokens);
  }
  const std::size_t num_facts = rng.UniformInt(20, 28);
  for (std::size_t f = 0; f < num_facts; ++f) {
    const std::size_t prop = ZipfRank(rng, pools.prop_names.size());
    std::string value;
    switch (rng.UniformInt(0, 3)) {
      case 0:  // numeric literal
        value = std::to_string(rng.UniformInt(1, 2000000));
        break;
      case 1:  // entity-ish value (another name)
        value = rng.Pick(pools.name_tokens) + " " +
                rng.Pick(pools.name_tokens);
        break;
      default:  // word literal, 1-2 tokens
        value = rng.Pick(pools.value_words);
        if (rng.Bernoulli(0.4)) value += " " + rng.Pick(pools.value_words);
        break;
    }
    entity.facts.emplace_back(prop, std::move(value));
  }
  return entity;
}

/// One snapshot of an entity: keeps each fact with probability
/// `keep_rate`, re-writes the value of a kept fact with probability
/// `value_churn` (DBpedia edits between 2007 and 2009). With keep 0.62
/// and churn 0.35 on both sides, an entity's two snapshots share
/// 0.62 * 0.62 * 0.65^2 ~ 16% of facts plus the (mostly stable) label —
/// landing near the paper's "only 25% of name-value pairs in common".
Profile MakeSnapshot(Rng& rng, const InfoboxEntity& entity,
                     const DbpediaPools& pools, double keep_rate,
                     double value_churn) {
  Profile p;
  std::string label = entity.name;
  if (rng.Bernoulli(0.15)) label = MaybeTypo(rng, label, 0.8);
  p.AddAttribute("rdfs_label", label);
  for (const auto& [prop, value] : entity.facts) {
    if (!rng.Bernoulli(keep_rate)) continue;
    std::string v = value;
    if (rng.Bernoulli(value_churn)) {
      v = rng.Pick(pools.value_words);
      if (rng.Bernoulli(0.4)) v += " " + rng.Pick(pools.value_words);
    }
    p.AddAttribute(pools.prop_names[prop], std::move(v));
  }
  return p;
}

}  // namespace

DatasetBundle GenerateDbpedia(const DatagenOptions& options) {
  Rng rng(options.seed * 1000003 + 6);

  DbpediaPools pools;
  // ~7k conceptual properties; Zipf usage reproduces the long-tailed
  // attribute-name variety (30k/50k names at paper scale).
  pools.prop_names = SyllablePool(rng, 7000);
  for (std::string& name : pools.prop_names) name = "prop_" + name;
  pools.name_tokens = SyllablePool(rng, 25000);
  // A deliberately modest literal vocabulary: infobox values repeat a lot
  // (units, categories, common adjectives), so equal-value runs in the
  // Neighbor List are long and a sliding window catches only a fraction
  // of the shared tokens of a matching pair — the token-level noise that
  // caps the similarity-based methods on this dataset (Sec. 7.2).
  pools.value_words = SyllablePool(rng, 5000);

  // Reduced-scale counts (x ~1/18 of Table 2, ratios preserved).
  const std::size_t matched_n = ScaleCount(45000, options.scale);
  const std::size_t s1_only_n = ScaleCount(15000, options.scale);
  const std::size_t s2_only_n = ScaleCount(65000, options.scale);

  std::vector<std::pair<Profile, Profile>> matched;
  matched.reserve(matched_n);
  for (std::size_t m = 0; m < matched_n; ++m) {
    const InfoboxEntity entity = MakeEntity(rng, pools);
    matched.emplace_back(
        MakeSnapshot(rng, entity, pools, /*keep_rate=*/0.62,
                     /*value_churn=*/0.35),
        MakeSnapshot(rng, entity, pools, /*keep_rate=*/0.62,
                     /*value_churn=*/0.35));
  }
  std::vector<Profile> s1_only;
  s1_only.reserve(s1_only_n);
  for (std::size_t m = 0; m < s1_only_n; ++m) {
    s1_only.push_back(MakeSnapshot(rng, MakeEntity(rng, pools), pools, 0.62,
                                   0.35));
  }
  std::vector<Profile> s2_only;
  s2_only.reserve(s2_only_n);
  for (std::size_t m = 0; m < s2_only_n; ++m) {
    s2_only.push_back(MakeSnapshot(rng, MakeEntity(rng, pools), pools, 0.62,
                                   0.35));
  }

  CleanCleanAssembly assembly = AssembleCleanClean(
      rng, std::move(matched), std::move(s1_only), std::move(s2_only));
  return DatasetBundle{
      "dbpedia",
      std::move(assembly.store),
      std::move(assembly.truth),
      nullptr,
      "synthetic DBpedia 2007-vs-2009 snapshots at reduced scale; ~25% "
      "shared name-value pairs, Zipf attribute variety"};
}

}  // namespace sper
