#include "progressive/workflow.h"

namespace sper {

BlockCollection BuildTokenWorkflowBlocks(const ProfileStore& store,
                                         const TokenWorkflowOptions& options) {
  BlockCollection blocks = TokenBlocking(store, options.token_blocking);
  if (options.enable_purging) {
    blocks = BlockPurging(blocks, store.size(), options.purging);
  }
  if (options.enable_filtering) {
    blocks = BlockFiltering(blocks, options.filtering);
  }
  return blocks;
}

}  // namespace sper
