#include "metablocking/blocking_graph.h"

#include <algorithm>
#include <cstdint>

#include "metablocking/neighborhood.h"
#include "parallel/parallel_for.h"

namespace sper {

BlockingGraph BlockingGraph::Build(const BlockCollection& blocks,
                                   const ProfileIndex& index,
                                   const ProfileStore& store,
                                   WeightingScheme scheme,
                                   std::size_t num_threads) {
  EdgeWeighter weighter(blocks, index, store, scheme, num_threads);

  // Per-chunk gather with private accumulators and node-presence bitmaps;
  // the per-chunk edge lists are concatenated in chunk order, so the edge
  // set (pre-sort) matches the sequential pass exactly.
  const std::size_t num_chunks =
      StaticChunks(store.size(), num_threads).size();
  std::vector<std::vector<std::uint8_t>> chunk_in_graph(
      num_chunks, std::vector<std::uint8_t>(store.size(), 0));
  BlockingGraph graph;
  graph.edges_ = AccumulateOrdered(
      store.size(), num_threads,
      [&](std::size_t chunk, IndexRange range) {
        std::vector<Comparison> edges;
        // The chunk's index-entry count is a cheap O(1) proxy for its
        // neighbor count; reserving it up front avoids growth churn.
        edges.reserve(index.NumEntriesIn(range.begin, range.end));
        std::vector<std::uint8_t>& in_graph = chunk_in_graph[chunk];
        NeighborhoodAccumulator acc(store.size());
        for (std::size_t idx = range.begin; idx < range.end; ++idx) {
          const ProfileId i = static_cast<ProfileId>(idx);
          acc.Gather(
              i, blocks, index,
              [&](BlockId b) { return weighter.BlockContribution(b); },
              [&](ProfileId j, double accumulated) {
                in_graph[i] = in_graph[j] = 1;
                // Each undirected edge is gathered from both endpoints;
                // keep the visit from the smaller id only.
                if (i < j) {
                  edges.emplace_back(i, j,
                                     weighter.Finalize(i, j, accumulated));
                }
              });
        }
        return edges;
      });

  // OR the per-chunk presence bitmaps into one, then count — one pass per
  // chunk plus one counting pass, instead of rescanning every chunk's
  // bitmap per profile.
  std::vector<std::uint8_t> in_graph(store.size(), 0);
  for (const std::vector<std::uint8_t>& chunk : chunk_in_graph) {
    for (std::size_t p = 0; p < chunk.size(); ++p) in_graph[p] |= chunk[p];
  }
  std::size_t num_nodes = 0;
  for (std::uint8_t present : in_graph) num_nodes += present;
  graph.num_nodes_ = num_nodes;
  std::sort(graph.edges_.begin(), graph.edges_.end(),
            [](const Comparison& a, const Comparison& b) {
              if (a.i != b.i) return a.i < b.i;
              return a.j < b.j;
            });
  return graph;
}

double BlockingGraph::MeanEdgeWeight() const {
  if (edges_.empty()) return 0.0;
  double total = 0.0;
  for (const Comparison& e : edges_) total += e.weight;
  return total / static_cast<double>(edges_.size());
}

}  // namespace sper
