#include "progressive/batch.h"

#include <unordered_set>

namespace sper {

std::vector<Comparison> DistinctBlockComparisons(const BlockCollection& blocks,
                                                 const ProfileStore& store) {
  // ForEachComparison yields only valid pairs (distinct for Dirty ER,
  // cross-source via the precomputed split point for Clean-Clean), so no
  // per-pair comparability test is needed here.
  (void)store;
  std::vector<Comparison> out;
  // Membership-only (never iterated): emission order is the deterministic
  // block/comparison visit order, the set only deduplicates.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(blocks.AggregateCardinality());
  for (BlockId b = 0; b < blocks.size(); ++b) {
    blocks.ForEachComparison(b, [&](ProfileId i, ProfileId j) {
      if (seen.insert(PairKey(i, j)).second) {
        out.emplace_back(i, j, 0.0);
      }
    });
  }
  return out;
}

std::uint64_t CountDistinctComparisons(const BlockCollection& blocks,
                                       const ProfileStore& store) {
  (void)store;
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(blocks.AggregateCardinality());
  for (BlockId b = 0; b < blocks.size(); ++b) {
    blocks.ForEachComparison(b, [&](ProfileId i, ProfileId j) {
      seen.insert(PairKey(i, j));
    });
  }
  return seen.size();
}

}  // namespace sper
