#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>

#include "net/wire.h"

namespace sper {
namespace net {

namespace {

std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Resolves host to an IPv4 sockaddr_in (numeric fast path, getaddrinfo
/// otherwise). Port is filled in network byte order.
Status ResolveIpv4(const std::string& host, std::uint16_t port,
                   sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1) {
    return Status::Ok();
  }
  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const int rc = getaddrinfo(host.c_str(), nullptr, &hints, &found);
  if (rc != 0 || found == nullptr) {
    if (found != nullptr) freeaddrinfo(found);
    return Status::InvalidArgument("cannot resolve host '" + host +
                                   "': " + gai_strerror(rc));
  }
  addr->sin_addr =
      reinterpret_cast<const sockaddr_in*>(found->ai_addr)->sin_addr;
  freeaddrinfo(found);
  return Status::Ok();
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Endpoint> ParseEndpoint(std::string_view listen_spec) {
  const std::size_t colon = listen_spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == listen_spec.size()) {
    return Status::InvalidArgument(
        "endpoint must be HOST:PORT, got '" + std::string(listen_spec) +
        "'");
  }
  const std::string_view port_text = listen_spec.substr(colon + 1);
  unsigned port = 0;
  const auto [end, ec] = std::from_chars(
      port_text.data(), port_text.data() + port_text.size(), port);
  if (ec != std::errc() || end != port_text.data() + port_text.size() ||
      port > 65535) {
    return Status::InvalidArgument(
        "port must be an integer in [0, 65535], got '" +
        std::string(port_text) + "'");
  }
  Endpoint endpoint;
  endpoint.host = std::string(listen_spec.substr(0, colon));
  endpoint.port = static_cast<std::uint16_t>(port);
  return endpoint;
}

Result<Socket> ListenTcp(const std::string& host, std::uint16_t port,
                         int backlog) {
  sockaddr_in addr;
  SPER_RETURN_IF_ERROR(ResolveIpv4(host, port, &addr));
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) {
    return Status::IoError(ErrnoMessage("socket"));
  }
  const int one = 1;
  if (::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                   sizeof(one)) != 0) {
    return Status::IoError(ErrnoMessage("setsockopt(SO_REUSEADDR)"));
  }
  if (::bind(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IoError(
        ErrnoMessage("bind " + host + ":" + std::to_string(port)));
  }
  if (::listen(socket.fd(), backlog) != 0) {
    return Status::IoError(ErrnoMessage("listen"));
  }
  // Non-blocking so the acceptor can poll the fd alongside its wake pipe
  // (accepted connections do not inherit the flag and stay blocking).
  const int flags = ::fcntl(socket.fd(), F_GETFL, 0);
  if (flags < 0 ||
      ::fcntl(socket.fd(), F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::IoError(ErrnoMessage("fcntl(O_NONBLOCK)"));
  }
  return socket;
}

Result<std::uint16_t> LocalPort(const Socket& socket) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    return Status::IoError(ErrnoMessage("getsockname"));
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

Result<Socket> ConnectTcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr;
  SPER_RETURN_IF_ERROR(ResolveIpv4(host, port, &addr));
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) {
    return Status::IoError(ErrnoMessage("socket"));
  }
  int rc;
  do {
    rc = ::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return Status::IoError(
        ErrnoMessage("connect " + host + ":" + std::to_string(port)));
  }
  const int one = 1;
  if (::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                   sizeof(one)) != 0) {
    return Status::IoError(ErrnoMessage("setsockopt(TCP_NODELAY)"));
  }
  return socket;
}

Status WriteAll(const Socket& socket, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(socket.fd(), data.data() + sent,
                             data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("send"));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

namespace {

/// Reads exactly `n` bytes. kEof only when the peer closed before the
/// first byte; a close mid-buffer is an error.
ReadStatus ReadExact(const Socket& socket, char* out, std::size_t n,
                     Status* error) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(socket.fd(), out + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      *error = Status::IoError(ErrnoMessage("recv"));
      return ReadStatus::kError;
    }
    if (r == 0) {
      if (got == 0) return ReadStatus::kEof;
      *error = Status::IoError("peer closed mid-frame (" +
                               std::to_string(got) + " of " +
                               std::to_string(n) + " bytes)");
      return ReadStatus::kError;
    }
    got += static_cast<std::size_t>(r);
  }
  return ReadStatus::kFrame;
}

}  // namespace

ReadStatus ReadFrame(const Socket& socket, std::string* payload,
                     Status* error) {
  char prefix[4];
  const ReadStatus head = ReadExact(socket, prefix, sizeof(prefix), error);
  if (head != ReadStatus::kFrame) return head;
  std::uint32_t length = 0;
  for (int b = 3; b >= 0; --b) {
    length = (length << 8) | static_cast<std::uint8_t>(prefix[b]);
  }
  if (length > kMaxFramePayload) {
    *error = Status::InvalidArgument(
        "frame length " + std::to_string(length) + " exceeds the " +
        std::to_string(kMaxFramePayload) + "-byte payload cap");
    return ReadStatus::kError;
  }
  payload->resize(length);
  if (length == 0) return ReadStatus::kFrame;
  const ReadStatus body =
      ReadExact(socket, payload->data(), length, error);
  if (body == ReadStatus::kEof) {
    // Prefix arrived but the body never did: a mid-frame close.
    *error = Status::IoError("peer closed between frame prefix and body");
    return ReadStatus::kError;
  }
  return body;
}

Status WriteFrame(const Socket& socket, std::string_view frame) {
  return WriteAll(socket, frame);
}

}  // namespace net
}  // namespace sper
