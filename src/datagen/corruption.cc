#include "datagen/corruption.h"

#include <sstream>
#include <utility>
#include <vector>

namespace sper {

namespace {
char RandomLetter(Rng& rng) {
  return static_cast<char>('a' + rng.UniformInt(0, 25));
}

std::vector<std::string> SplitWords(const std::string& value) {
  std::vector<std::string> words;
  std::istringstream in(value);
  std::string word;
  while (in >> word) words.push_back(word);
  return words;
}

std::string JoinWords(const std::vector<std::string>& words) {
  std::string out;
  for (const std::string& w : words) {
    if (!out.empty()) out.push_back(' ');
    out += w;
  }
  return out;
}
}  // namespace

std::string RandomTypo(Rng& rng, const std::string& value) {
  if (value.size() < 2) return value;
  std::string out = value;
  const std::size_t pos = rng.UniformInt(0, out.size() - 1);
  switch (rng.UniformInt(0, 3)) {
    case 0:  // substitution
      out[pos] = RandomLetter(rng);
      break;
    case 1:  // insertion
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos),
                 RandomLetter(rng));
      break;
    case 2:  // deletion
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(pos));
      break;
    default:  // adjacent transposition
      if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
      break;
  }
  return out;
}

std::string MaybeTypo(Rng& rng, const std::string& value, double rate) {
  std::string out = value;
  double p = rate;
  while (rng.Bernoulli(p)) {
    out = RandomTypo(rng, out);
    p /= 2.0;
  }
  return out;
}

std::string Abbreviate(const std::string& word) {
  if (word.empty()) return word;
  return std::string(1, word[0]) + ".";
}

std::string TokenNoise(Rng& rng, const std::string& value,
                       const TokenNoiseOptions& options) {
  std::vector<std::string> words = SplitWords(value);
  if (words.empty()) return value;
  if (words.size() > 1 && rng.Bernoulli(options.drop_rate)) {
    words.erase(words.begin() +
                static_cast<std::ptrdiff_t>(
                    rng.UniformInt(0, words.size() - 1)));
  }
  if (words.size() > 1 && rng.Bernoulli(options.swap_rate)) {
    const std::size_t pos = rng.UniformInt(0, words.size() - 2);
    std::swap(words[pos], words[pos + 1]);
  }
  if (rng.Bernoulli(options.abbreviate_rate)) {
    const std::size_t pos = rng.UniformInt(0, words.size() - 1);
    words[pos] = Abbreviate(words[pos]);
  }
  return JoinWords(words);
}

}  // namespace sper
