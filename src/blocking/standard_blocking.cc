#include "blocking/standard_blocking.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace sper {

BlockCollection StandardBlocking(const ProfileStore& store,
                                 const SchemaKeyFn& key_fn) {
  // std::map keeps keys ordered, giving deterministic block ids.
  std::map<std::string, std::vector<ProfileId>> postings;
  for (const Profile& p : store.profiles()) {
    std::string key = key_fn(p);
    if (key.empty()) continue;
    postings[std::move(key)].push_back(p.id());
  }

  BlockCollection collection(store.er_type(), store.split_index());
  for (auto& [key, ids] : postings) {
    Block block{key, std::move(ids)};
    if (collection.ComputeCardinality(block) == 0) continue;
    collection.Add(std::move(block));
  }
  return collection;
}

}  // namespace sper
