// Property-based tests: invariants checked over randomized ER tasks
// (parameterized by RNG seed). These encode the paper's correctness
// obligations — above all the *Same Eventual Quality* requirement of
// Sec. 3.1 — rather than specific examples.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "blocking/block_filtering.h"
#include "blocking/block_purging.h"
#include "blocking/token_blocking.h"
#include "datagen/rng.h"
#include "metablocking/blocking_graph.h"
#include "progressive/batch.h"
#include "progressive/gs_psn.h"
#include "progressive/ls_psn.h"
#include "progressive/pbs.h"
#include "progressive/pps.h"
#include "progressive/sa_psab.h"
#include "progressive/sa_psn.h"

namespace sper {
namespace {

using Pair = std::pair<ProfileId, ProfileId>;

/// A randomized small ER task: profiles with overlapping token sets.
ProfileStore RandomStore(std::uint64_t seed, bool clean_clean) {
  Rng rng(seed);
  const std::size_t vocabulary = 12;
  auto make_profiles = [&](std::size_t count) {
    std::vector<Profile> ps(count);
    for (std::size_t i = 0; i < count; ++i) {
      std::string value;
      const std::size_t tokens = rng.UniformInt(1, 5);
      for (std::size_t t = 0; t < tokens; ++t) {
        if (t) value += " ";
        value += "tok" + std::to_string(rng.UniformInt(0, vocabulary - 1));
      }
      ps[i].AddAttribute("v", value);
    }
    return ps;
  };
  if (clean_clean) {
    return ProfileStore::MakeCleanClean(make_profiles(rng.UniformInt(4, 9)),
                                        make_profiles(rng.UniformInt(4, 9)));
  }
  return ProfileStore::MakeDirty(make_profiles(rng.UniformInt(6, 14)));
}

std::vector<Comparison> DrainAll(ProgressiveEmitter& emitter,
                                 std::size_t limit = 200000) {
  std::vector<Comparison> out;
  while (out.size() < limit) {
    std::optional<Comparison> c = emitter.Next();
    if (!c.has_value()) break;
    out.push_back(*c);
  }
  return out;
}

std::set<Pair> DistinctPairs(const std::vector<Comparison>& comparisons) {
  std::set<Pair> out;
  for (const Comparison& c : comparisons) out.emplace(c.i, c.j);
  return out;
}

class SeededTest : public ::testing::TestWithParam<std::uint64_t> {};

// ------------------------------------------------- Same Eventual Quality

TEST_P(SeededTest, PbsEmitsExactlyTheDistinctBlockComparisons) {
  for (bool clean_clean : {false, true}) {
    ProfileStore store = RandomStore(GetParam(), clean_clean);
    BlockCollection blocks = TokenBlocking(store);
    PbsEmitter pbs(store, blocks);
    std::vector<Comparison> emissions = DrainAll(pbs);
    // Exactly once each (LeCoBI correctness)...
    EXPECT_EQ(DistinctPairs(emissions).size(), emissions.size());
    // ...and exactly the batch comparison set (Same Eventual Quality).
    EXPECT_EQ(DistinctPairs(emissions),
              DistinctPairs(DistinctBlockComparisons(blocks, store)));
  }
}

TEST_P(SeededTest, PpsUnboundedCoversTheBlockingGraph) {
  for (bool clean_clean : {false, true}) {
    ProfileStore store = RandomStore(GetParam(), clean_clean);
    BlockCollection blocks = TokenBlocking(store);
    PpsOptions options;
    options.kmax = static_cast<std::size_t>(-1);
    PpsEmitter pps(store, blocks, options);
    EXPECT_EQ(DistinctPairs(DrainAll(pps)),
              DistinctPairs(DistinctBlockComparisons(blocks, store)));
  }
}

TEST_P(SeededTest, SaPsnEventuallyCoversEveryTokenSharingPair) {
  ProfileStore store = RandomStore(GetParam(), false);
  SaPsnEmitter sa_psn(store);
  std::set<Pair> emitted = DistinctPairs(DrainAll(sa_psn));
  // Every pair sharing a token must appear (the window grows to the whole
  // list, which contains each profile at least once per token).
  BlockCollection blocks = TokenBlocking(store);
  for (const Comparison& c : DistinctBlockComparisons(blocks, store)) {
    EXPECT_TRUE(emitted.count({c.i, c.j}))
        << "missing (" << c.i << "," << c.j << ")";
  }
}

TEST_P(SeededTest, LsPsnAndSaPsnAgreeOnEventualCoverage) {
  ProfileStore store = RandomStore(GetParam(), false);
  SaPsnEmitter sa_psn(store);
  LsPsnEmitter ls_psn(store);
  EXPECT_EQ(DistinctPairs(DrainAll(ls_psn)),
            DistinctPairs(DrainAll(sa_psn)));
}

TEST_P(SeededTest, GsPsnMatchesLsPsnWithinTheWindowRange) {
  // Within [1, wmax], GS-PSN's comparison set equals the union of
  // LS-PSN's per-window sets — globally ordered and deduplicated.
  ProfileStore store = RandomStore(GetParam(), false);
  GsPsnOptions options;
  options.wmax = 3;
  GsPsnEmitter gs_psn(store, options);
  std::vector<Comparison> gs = DrainAll(gs_psn);
  EXPECT_EQ(DistinctPairs(gs).size(), gs.size());  // repetition-free

  LsPsnEmitter ls_psn(store);
  std::set<Pair> ls_within;
  while (true) {
    std::optional<Comparison> c = ls_psn.Next();
    if (!c.has_value() || ls_psn.window() > 3) break;
    ls_within.emplace(c->i, c->j);
  }
  EXPECT_EQ(DistinctPairs(gs), ls_within);
}

// ----------------------------------------------------- ordering invariants

TEST_P(SeededTest, GsPsnWeightsAreNonIncreasing) {
  ProfileStore store = RandomStore(GetParam(), false);
  GsPsnOptions options;
  options.wmax = 4;
  GsPsnEmitter gs_psn(store, options);
  double previous = 1e300;
  for (const Comparison& c : DrainAll(gs_psn)) {
    EXPECT_LE(c.weight, previous);
    previous = c.weight;
  }
}

TEST_P(SeededTest, PbsBlockWeightsRespectScheduleOrder) {
  ProfileStore store = RandomStore(GetParam(), false);
  BlockCollection blocks = TokenBlocking(store);
  PbsEmitter pbs(store, blocks);
  const BlockCollection& scheduled = pbs.scheduled_blocks();
  for (BlockId id = 1; id < scheduled.size(); ++id) {
    EXPECT_LE(scheduled.Cardinality(id - 1), scheduled.Cardinality(id));
  }
}

TEST_P(SeededTest, RcfWeightsArePositiveAndBounded) {
  // RCF is NOT capped at 1 (adjacency across equal-key runs can exceed
  // the placement overlap), but it is positive, finite and bounded by
  // freq <= 2 * min positions => weight <= 2 * list size in the extreme.
  ProfileStore store = RandomStore(GetParam(), false);
  LsPsnEmitter ls_psn(store);
  for (const Comparison& c : DrainAll(ls_psn, 5000)) {
    EXPECT_GE(c.weight, 0.0);
    EXPECT_TRUE(std::isfinite(c.weight));
  }
}

// -------------------------------------------------- blocking invariants

TEST_P(SeededTest, PurgingNeverIncreasesCardinality) {
  ProfileStore store = RandomStore(GetParam(), false);
  BlockCollection blocks = TokenBlocking(store);
  BlockCollection purged = BlockPurging(blocks, store.size());
  EXPECT_LE(purged.AggregateCardinality(), blocks.AggregateCardinality());
  EXPECT_LE(purged.size(), blocks.size());
}

TEST_P(SeededTest, FilteringNeverIncreasesCardinality) {
  ProfileStore store = RandomStore(GetParam(), false);
  BlockCollection blocks = TokenBlocking(store);
  BlockCollection filtered = BlockFiltering(blocks);
  EXPECT_LE(filtered.AggregateCardinality(), blocks.AggregateCardinality());
  // Filtering keeps each profile's smallest blocks, so every surviving
  // block is a subset of the original with the same key.
  for (BlockId f = 0; f < filtered.size(); ++f) {
    bool found = false;
    for (BlockId o = 0; o < blocks.size(); ++o) {
      if (blocks.key(o) != filtered.key(f)) continue;
      found = true;
      std::span<const ProfileId> original = blocks.members(o);
      std::span<const ProfileId> subset = filtered.members(f);
      EXPECT_TRUE(std::includes(original.begin(), original.end(),
                                subset.begin(), subset.end()));
    }
    EXPECT_TRUE(found);
  }
}

TEST_P(SeededTest, BlockingGraphEdgesAreComparablePairs) {
  for (bool clean_clean : {false, true}) {
    ProfileStore store = RandomStore(GetParam(), clean_clean);
    BlockCollection blocks = TokenBlocking(store);
    ProfileIndex index(blocks, store.size());
    BlockingGraph graph =
        BlockingGraph::Build(blocks, index, store, WeightingScheme::kArcs);
    for (const Comparison& e : graph.edges()) {
      EXPECT_TRUE(store.IsComparable(e.i, e.j));
      EXPECT_GT(e.weight, 0.0);
    }
  }
}

TEST_P(SeededTest, SaPsabSubsumesTokenBlockingCoverage) {
  // Every token-sharing pair also shares that token's full suffix, so
  // SA-PSAB's distinct coverage is a superset of Token Blocking's
  // whenever tokens are at least lmin long.
  ProfileStore store = RandomStore(GetParam(), false);
  SuffixForestOptions options;
  options.lmin = 3;  // "tokN" tokens are 4-5 chars
  SaPsabEmitter sa_psab(store, options);
  std::set<Pair> emitted = DistinctPairs(DrainAll(sa_psab));
  BlockCollection blocks = TokenBlocking(store);
  for (const Comparison& c : DistinctBlockComparisons(blocks, store)) {
    EXPECT_TRUE(emitted.count({c.i, c.j}));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

}  // namespace
}  // namespace sper
