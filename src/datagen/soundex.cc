#include "datagen/soundex.h"

#include <cctype>

namespace sper {

namespace {
// Soundex digit of a letter; '0' encodes the vowel-like "no code" class.
char SoundexDigit(char c) {
  switch (c) {
    case 'b':
    case 'f':
    case 'p':
    case 'v':
      return '1';
    case 'c':
    case 'g':
    case 'j':
    case 'k':
    case 'q':
    case 's':
    case 'x':
    case 'z':
      return '2';
    case 'd':
    case 't':
      return '3';
    case 'l':
      return '4';
    case 'm':
    case 'n':
      return '5';
    case 'r':
      return '6';
    default:
      return '0';
  }
}
}  // namespace

std::string Soundex(std::string_view word) {
  std::string letters;
  for (char c : word) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      letters.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    }
  }
  if (letters.empty()) return "";

  std::string code(1, static_cast<char>(
                          std::toupper(static_cast<unsigned char>(letters[0]))));
  char previous = SoundexDigit(letters[0]);
  for (std::size_t i = 1; i < letters.size() && code.size() < 4; ++i) {
    const char c = letters[i];
    // 'h' and 'w' are transparent: they do not reset the previous digit.
    if (c == 'h' || c == 'w') continue;
    const char digit = SoundexDigit(c);
    if (digit != '0' && digit != previous) code.push_back(digit);
    previous = digit;
  }
  code.resize(4, '0');
  return code;
}

}  // namespace sper
