// Figure 13: time experiments. The schema-agnostic methods on movies and
// dbpedia, combined with a cheap match function (Jaccard, 13a/13c) and an
// expensive one (edit distance, 13b/13d). For every run we report the
// initialization time, the average comparison time (emission + match) and
// recall at wall-clock checkpoints; the closing table is Fig. 13e
// (initialization times). Following the paper's footnote 10, the match
// function is executed for its cost while effectiveness comes from the
// ground truth.
//
//   $ ./bench_fig13_time [--scale=S] [--ecmax=E]

#include <memory>

#include "bench_util.h"
#include "matching/match_function.h"

int main(int argc, char** argv) {
  using namespace sper;
  using namespace sper::bench;
  BenchArgs args = ParseArgs(argc, argv);
  const double ecmax = args.ecmax > 0 ? args.ecmax : 5.0;
  // Default to half scale: a wall-clock experiment repeated for two match
  // functions; the init-time ordering and the recall-vs-time shape are
  // scale-invariant. Pass --scale=1 for the full documented scale.
  bool scale_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) scale_given = true;
  }
  if (!scale_given) args.scale = 0.5;

  std::printf("Figure 13: recall vs wall-clock time with cheap (jaccard) "
              "and expensive\n(edit-distance) match functions; ec* capped "
              "at %.0f, scale %.2f.\n", ecmax, args.scale);

  const std::vector<MethodId> methods = {MethodId::kSaPsn, MethodId::kLsPsn,
                                         MethodId::kGsPsn, MethodId::kPbs,
                                         MethodId::kPps};
  struct InitRow {
    std::string dataset;
    std::string method;
    double init_seconds;
  };
  std::vector<InitRow> init_rows;

  for (const std::string& name : {std::string("movies"),
                                  std::string("dbpedia")}) {
    DatagenOptions gen;
    gen.scale = args.scale;
    Result<DatasetBundle> dataset = GenerateDataset(name, gen);
    if (!dataset.ok()) {
      std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
      return 1;
    }
    MethodConfig config = ConfigFor(name);
    EvalOptions options;
    options.ecstar_max = ecmax;
    options.auc_at = {1.0};
    ProgressiveEvaluator evaluator(dataset.value().truth, options);

    for (const std::string& match_name : {std::string("jaccard"),
                                          std::string("edit-distance")}) {
      std::unique_ptr<MatchFunction> match;
      if (match_name == "jaccard") {
        match = std::make_unique<JaccardMatch>(dataset.value().store);
      } else {
        match = std::make_unique<EditDistanceMatch>(dataset.value().store);
      }

      std::printf("\n== %s + %s ==\n", name.c_str(), match_name.c_str());
      TextTable table({"method", "init (s)", "avg comparison (us)",
                       "recall@25% time", "recall@50% time",
                       "recall@end", "total (s)"});
      for (MethodId id : methods) {
        RunResult run = evaluator.Run(
            [&] { return MakeResolver(id, dataset.value(), config); },
            match.get());
        if (id != MethodId::kSaPsn && match_name == "jaccard") {
          init_rows.push_back({name, run.method, run.init_seconds});
        }
        const double total = run.init_seconds + run.emission_seconds +
                             run.match_seconds;
        // Recall at fractions of this run's own total time.
        auto recall_at_time = [&](double fraction) {
          double recall = 0.0;
          for (const auto& [seconds, r] : run.time_recall) {
            if (seconds <= fraction * total) recall = r;
          }
          return recall;
        };
        const double per_comparison_us =
            run.emissions > 0 ? 1e6 * (run.emission_seconds +
                                       run.match_seconds) /
                                    static_cast<double>(run.emissions)
                              : 0.0;
        table.AddRow({run.method, FormatDouble(run.init_seconds, 2),
                      FormatDouble(per_comparison_us, 1),
                      FormatDouble(recall_at_time(0.25), 3),
                      FormatDouble(recall_at_time(0.50), 3),
                      FormatDouble(run.final_recall, 3),
                      FormatDouble(total, 2)});
      }
      table.Print();
    }
  }

  std::printf("\n== Fig. 13e: initialization times (advanced methods) ==\n");
  TextTable init_table({"dataset", "method", "init (s)"});
  for (const InitRow& row : init_rows) {
    init_table.AddRow({row.dataset, row.method,
                       FormatDouble(row.init_seconds, 2)});
  }
  init_table.Print();

  std::printf(
      "\nExpected shape (paper Sec. 7.3): the advanced methods reach most\n"
      "matches much earlier in wall-clock time than SA-PSN under both match\n"
      "functions; PBS has the cheapest initialization among the advanced\n"
      "methods, PPS the most expensive one.\n");
  return 0;
}
