// Quickstart: schema-agnostic progressive ER on the paper's own running
// example (Fig. 3a) — six profiles from a "data lake" mixing relational,
// RDF and free-text formats. No schema alignment, no configuration: build
// the profiles, create a Resolver, ask it for the best comparisons under
// a pay-as-you-go budget.
//
//   $ ./quickstart

#include <cstdio>
#include <memory>

#include "core/profile_store.h"
#include "engine/resolver.h"

int main() {
  using namespace sper;

  // A data lake: the same people described in three different formats.
  std::vector<Profile> profiles(6);
  profiles[0].AddAttribute("Name", "Carl");        // relational record
  profiles[0].AddAttribute("Surname", "White");
  profiles[0].AddAttribute("City", "NY");
  profiles[0].AddAttribute("Profession", "Tailor");
  profiles[1].AddAttribute("subject", ":Carl_White");  // RDF resource
  profiles[1].AddAttribute("livesIn", "NY");
  profiles[1].AddAttribute("workAs", "Tailor");
  profiles[2].AddAttribute("subject", ":Karl_White");  // RDF resource
  profiles[2].AddAttribute("job", "Tailor");
  profiles[2].AddAttribute("loc", "NY");
  profiles[3].AddAttribute("Name", "Ellen");       // relational record
  profiles[3].AddAttribute("Surname", "White");
  profiles[3].AddAttribute("City", "ML");
  profiles[3].AddAttribute("Profession", "Teacher");
  profiles[4].AddAttribute("text", "Hellen White, ML teacher");  // free text
  profiles[5].AddAttribute("text", "Emma White, WI Tailor");     // free text

  ProfileStore store = ProfileStore::MakeDirty(std::move(profiles));

  // One call: the Resolver wires schema-agnostic Token Blocking,
  // meta-blocking and the chosen progressive method (PPS by default) —
  // the attribute NAMES are never consulted, so format variety is
  // irrelevant. On six profiles the workflow's statistical steps are
  // meaningless (purging drops any block bigger than 10% of |P|, i.e.
  // all of them), so this toy run keeps the raw token blocks.
  ResolverOptions options;
  options.workflow.enable_purging = false;
  options.workflow.enable_filtering = false;
  Result<std::unique_ptr<Resolver>> created = Resolver::Create(store, options);
  if (!created.ok()) {
    std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Resolver> resolver = std::move(created).value();
  std::printf("blocking workflow: %zu blocks, %llu comparisons in total\n",
              resolver->init_stats().num_blocks,
              static_cast<unsigned long long>(
                  resolver->init_stats().aggregate_cardinality));

  // Pay-as-you-go: one request buys the 6 best comparisons, in decreasing
  // estimated matching likelihood. The resolver keeps the stream's state —
  // a later request would continue exactly where this one stopped.
  ResolverSession session = resolver->OpenSession();
  ResolveResult batch = session.Resolve({/*budget=*/6, /*max_batch=*/0});
  std::printf("\n%-4s %-12s %s\n", "#", "pair", "estimated likelihood");
  int rank = 0;
  for (const Comparison& c : batch.comparisons) {
    std::printf("%-4d (p%u, p%u)%-4s %.4f\n", ++rank, c.i + 1, c.j + 1, "",
                c.weight);
  }

  std::printf(
      "\nThe true matches are (p1,p2), (p1,p3), (p2,p3) and (p4,p5):\n"
      "the top-ranked comparisons above already cover most of them.\n");
  return 0;
}
