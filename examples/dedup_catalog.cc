// Pay-as-you-go deduplication of a dirty catalog (the paper's motivating
// scenario: "the catalog update in large online retailers that is carried
// out every few hours"). A restaurant-guide-style catalog is deduplicated
// under a fixed comparison budget with LS-PSN; a Jaccard match function
// scores each emitted pair.
//
//   $ ./dedup_catalog [budget]

#include <cstdio>
#include <cstdlib>
#include <optional>

#include "datagen/datagen.h"
#include "matching/match_function.h"
#include "progressive/ls_psn.h"

int main(int argc, char** argv) {
  using namespace sper;

  const std::size_t budget =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 250;

  Result<DatasetBundle> dataset = GenerateDataset("restaurant");
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const ProfileStore& store = dataset.value().store;
  const GroundTruth& truth = dataset.value().truth;
  std::printf("catalog: %zu listings, %zu known duplicate pairs\n",
              store.size(), truth.num_matches());
  std::printf("budget:  %zu comparisons (%.1fx the duplicate count)\n\n",
              budget,
              static_cast<double>(budget) /
                  static_cast<double>(truth.num_matches()));

  LsPsnEmitter emitter(store);
  JaccardMatch match(store);

  std::size_t emitted = 0, found = 0;
  std::printf("first few detected duplicates (jaccard >= 0.5):\n");
  while (emitted < budget) {
    std::optional<Comparison> c = emitter.Next();
    if (!c.has_value()) break;
    ++emitted;
    const double similarity = match.Similarity(c->i, c->j);
    if (similarity < 0.5) continue;  // the match function's decision
    ++found;
    if (found <= 5) {
      const Profile& a = store.profile(c->i);
      const Profile& b = store.profile(c->j);
      std::printf("  %.2f  \"%s\"\n        \"%s\"\n", similarity,
                  a.ConcatenatedValues().c_str(),
                  b.ConcatenatedValues().c_str());
    }
  }

  // How well did the budgeted pass do against the ground truth?
  std::size_t true_found = 0;
  LsPsnEmitter recount(store);
  for (std::size_t k = 0; k < emitted; ++k) {
    std::optional<Comparison> c = recount.Next();
    if (!c.has_value()) break;
    if (truth.AreMatching(c->i, c->j)) ++true_found;
  }
  std::printf(
      "\nafter %zu comparisons: %zu pairs flagged by the match function\n",
      emitted, found);
  std::printf("ground-truth recall within the budget: %.1f%%\n",
              100.0 * static_cast<double>(true_found) /
                  static_cast<double>(truth.num_matches()));
  std::printf(
      "(batch ER would need all %zu profile pairs to guarantee the same)\n",
      store.size() * (store.size() - 1) / 2);
  return 0;
}
