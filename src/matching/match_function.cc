#include "matching/match_function.h"

#include "matching/jaccard.h"
#include "matching/levenshtein.h"

namespace sper {

EditDistanceMatch::EditDistanceMatch(const ProfileStore& store) {
  serialized_.reserve(store.size());
  for (const Profile& p : store.profiles()) {
    serialized_.push_back(p.ConcatenatedValues());
  }
}

double EditDistanceMatch::Similarity(ProfileId a, ProfileId b) const {
  return LevenshteinSimilarity(serialized_[a], serialized_[b]);
}

JaccardMatch::JaccardMatch(const ProfileStore& store,
                           const TokenizerOptions& options) {
  tokens_.reserve(store.size());
  for (const Profile& p : store.profiles()) {
    tokens_.push_back(DistinctProfileTokens(p, options));
  }
}

double JaccardMatch::Similarity(ProfileId a, ProfileId b) const {
  return JaccardSimilarity(tokens_[a], tokens_[b]);
}

}  // namespace sper
