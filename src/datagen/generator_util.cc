#include "datagen/generator_util.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sper {

std::size_t ClusterPlan::TotalProfiles() const {
  std::size_t total = singletons;
  for (const auto& [size, count] : clusters_of_size) total += size * count;
  return total;
}

std::uint64_t ClusterPlan::TotalPairs() const {
  std::uint64_t total = 0;
  for (const auto& [size, count] : clusters_of_size) {
    total += static_cast<std::uint64_t>(count) * size * (size - 1) / 2;
  }
  return total;
}

ClusterPlan ClusterPlan::Scaled(double scale) const {
  ClusterPlan scaled;
  scaled.singletons = static_cast<std::size_t>(
      std::llround(static_cast<double>(singletons) * scale));
  for (const auto& [size, count] : clusters_of_size) {
    const std::size_t new_count = static_cast<std::size_t>(
        std::llround(static_cast<double>(count) * scale));
    if (new_count > 0) scaled.clusters_of_size.emplace_back(size, new_count);
  }
  return scaled;
}

DirtyAssembly AssembleDirty(Rng& rng,
                            std::vector<std::vector<Profile>> clusters,
                            std::vector<Profile> singletons) {
  // Each entry is (cluster index, member) or (npos, singleton index).
  constexpr std::size_t kSingleton = static_cast<std::size_t>(-1);
  std::vector<std::pair<std::size_t, std::size_t>> slots;
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (std::size_t m = 0; m < clusters[c].size(); ++m) {
      slots.emplace_back(c, m);
    }
  }
  for (std::size_t s = 0; s < singletons.size(); ++s) {
    slots.emplace_back(kSingleton, s);
  }
  rng.Shuffle(slots.begin(), slots.end());

  std::vector<Profile> profiles;
  profiles.reserve(slots.size());
  std::vector<std::vector<ProfileId>> id_clusters(clusters.size());
  for (const auto& [cluster, member] : slots) {
    const ProfileId id = static_cast<ProfileId>(profiles.size());
    if (cluster == kSingleton) {
      profiles.push_back(std::move(singletons[member]));
    } else {
      profiles.push_back(std::move(clusters[cluster][member]));
      id_clusters[cluster].push_back(id);
    }
  }

  DirtyAssembly out{ProfileStore::MakeDirty(std::move(profiles)),
                    GroundTruth::FromClusters(id_clusters)};
  return out;
}

CleanCleanAssembly AssembleCleanClean(
    Rng& rng, std::vector<std::pair<Profile, Profile>> matched,
    std::vector<Profile> source1_only, std::vector<Profile> source2_only) {
  const std::size_t n1 = matched.size() + source1_only.size();
  const std::size_t n2 = matched.size() + source2_only.size();

  // Positions for every source-1 profile: first `matched.size()` slots map
  // matched entities, the rest the extras; shuffled to decouple id from
  // match status. Same independently for source 2.
  std::vector<std::size_t> order1(n1);
  std::iota(order1.begin(), order1.end(), 0);
  rng.Shuffle(order1.begin(), order1.end());
  std::vector<std::size_t> order2(n2);
  std::iota(order2.begin(), order2.end(), 0);
  rng.Shuffle(order2.begin(), order2.end());

  std::vector<Profile> s1(n1);
  std::vector<Profile> s2(n2);
  std::vector<ProfileId> match_pos1(matched.size());
  std::vector<ProfileId> match_pos2(matched.size());
  for (std::size_t slot = 0; slot < n1; ++slot) {
    const std::size_t source = order1[slot];
    if (source < matched.size()) {
      s1[slot] = std::move(matched[source].first);
      match_pos1[source] = static_cast<ProfileId>(slot);
    } else {
      s1[slot] = std::move(source1_only[source - matched.size()]);
    }
  }
  for (std::size_t slot = 0; slot < n2; ++slot) {
    const std::size_t source = order2[slot];
    if (source < matched.size()) {
      s2[slot] = std::move(matched[source].second);
      match_pos2[source] = static_cast<ProfileId>(slot);
    } else {
      s2[slot] = std::move(source2_only[source - matched.size()]);
    }
  }

  ProfileStore store =
      ProfileStore::MakeCleanClean(std::move(s1), std::move(s2));
  GroundTruth truth;
  for (std::size_t m = 0; m < match_pos1.size(); ++m) {
    truth.AddMatch(match_pos1[m],
                   static_cast<ProfileId>(store.split_index() +
                                          match_pos2[m]));
  }
  return CleanCleanAssembly{std::move(store), std::move(truth)};
}

std::size_t ZipfRank(Rng& rng, std::size_t n, double offset) {
  const double u = rng.UniformReal();
  const double lo = std::log(offset);
  const double hi = std::log(static_cast<double>(n) + offset);
  const double r = std::exp(lo + u * (hi - lo)) - offset;
  const auto rank = static_cast<std::size_t>(r);
  return rank >= n ? n - 1 : rank;
}

std::string ZeroPad(std::uint64_t value, std::size_t width) {
  std::string digits = std::to_string(value);
  if (digits.size() < width) {
    digits.insert(digits.begin(), width - digits.size(), '0');
  }
  return digits;
}

std::size_t ScaleCount(std::size_t base, double scale, std::size_t minimum) {
  const auto scaled = static_cast<std::size_t>(
      std::llround(static_cast<double>(base) * scale));
  return std::max(minimum, scaled);
}

}  // namespace sper
