#ifndef SPER_PARALLEL_THREAD_POOL_H_
#define SPER_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"
#include "obs/metrics.h"

/// \file thread_pool.h
/// A minimal fixed-size worker pool with a FIFO work queue — the execution
/// substrate of the parallel initialization paths (token-index sharding,
/// block filtering, edge weighting). Parallelism here is an implementation
/// detail of a deterministic library: tasks must not make output depend on
/// execution order; ParallelFor (parallel_for.h) provides the deterministic
/// static chunking used by every call site.

namespace sper {

/// Fixed-size thread pool. Submit() enqueues work; Wait() blocks until the
/// queue drains and every submitted task finished, rethrowing the first
/// captured task exception if any task threw.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Joins the workers. Pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called concurrently with destruction.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed. If any task threw,
  /// rethrows the first captured exception; later ones are counted in
  /// dropped_exceptions() (and the optional counter sink) rather than
  /// silently discarded.
  void Wait();

  /// Number of worker threads.
  std::size_t num_threads() const { return workers_.size(); }

  /// Task exceptions that could not be rethrown because an earlier one
  /// already occupied the rethrow slot. Non-zero means a failure was
  /// masked — a health signal, not a control-flow one.
  std::uint64_t dropped_exceptions() const {
    return dropped_exceptions_.load(std::memory_order_relaxed);
  }

  /// Mirrors every future dropped exception into `counter` (nullptr to
  /// detach). The counter must outlive the pool or the next call here.
  void set_dropped_exceptions_counter(obs::Counter* counter) {
    dropped_counter_.store(counter, std::memory_order_release);
  }

 private:
  void WorkerLoop();

  /// Wait()'s resume condition: no submitted task is queued or running.
  bool AllDoneLocked() const SPER_REQUIRES(mutex_) { return in_flight_ == 0; }

  /// WorkerLoop's resume condition: work to take, or shutdown.
  bool WorkAvailableLocked() const SPER_REQUIRES(mutex_) {
    return shutting_down_ || !queue_.empty();
  }

  Mutex mutex_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ SPER_GUARDED_BY(mutex_);
  std::exception_ptr first_exception_ SPER_GUARDED_BY(mutex_);
  std::size_t in_flight_ SPER_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ SPER_GUARDED_BY(mutex_) = false;
  std::atomic<std::uint64_t> dropped_exceptions_{0};
  std::atomic<obs::Counter*> dropped_counter_{nullptr};
  std::vector<std::thread> workers_;
};

}  // namespace sper

#endif  // SPER_PARALLEL_THREAD_POOL_H_
