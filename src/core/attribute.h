#ifndef SPER_CORE_ATTRIBUTE_H_
#define SPER_CORE_ATTRIBUTE_H_

#include <string>

/// \file attribute.h
/// The atomic unit of an entity profile: one name-value pair.

namespace sper {

/// One attribute name-value pair of an entity profile (Sec. 3 of the
/// paper). Schema-agnostic methods only ever look at `value`; `name` exists
/// for schema-based baselines, dataset statistics and human inspection.
struct Attribute {
  std::string name;
  std::string value;

  bool operator==(const Attribute&) const = default;
};

}  // namespace sper

#endif  // SPER_CORE_ATTRIBUTE_H_
