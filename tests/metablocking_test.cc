// Unit tests for src/metablocking: the weighting schemes, the materialized
// blocking graph, and the batch pruning substrate.

#include <gtest/gtest.h>

#include <cmath>

#include "blocking/token_blocking.h"
#include "metablocking/blocking_graph.h"
#include "metablocking/edge_weighting.h"
#include "metablocking/pruning.h"

namespace sper {
namespace {

// A fixture with a hand-computable block structure:
//   b0 "x" {0,1}        ||b0|| = 1
//   b1 "y" {0,1,2}      ||b1|| = 3
//   b2 "z" {1,2,3}      ||b2|| = 3
struct Fixture {
  Fixture()
      : store(MakeStore()), blocks(MakeBlocks()), index(blocks, 4) {}

  static ProfileStore MakeStore() {
    std::vector<Profile> ps(4);
    ps[0].AddAttribute("v", "x y");
    ps[1].AddAttribute("v", "x y z");
    ps[2].AddAttribute("v", "y z");
    ps[3].AddAttribute("v", "z");
    return ProfileStore::MakeDirty(std::move(ps));
  }
  static BlockCollection MakeBlocks() {
    BlockCollection bc(ErType::kDirty, 4);
    bc.Add("x", {0, 1});
    bc.Add("y", {0, 1, 2});
    bc.Add("z", {1, 2, 3});
    return bc;
  }

  ProfileStore store;
  BlockCollection blocks;
  ProfileIndex index;
};

TEST(EdgeWeightingTest, ParseAndToStringRoundTrip) {
  for (const char* name : {"arcs", "cbs", "js", "ecbs", "ejs"}) {
    EXPECT_STREQ(ToString(ParseWeightingScheme(name)), name);
  }
}

TEST(EdgeWeightingTest, ArcsSumsInverseCardinalities) {
  Fixture f;
  EdgeWeighter w(f.blocks, f.index, f.store, WeightingScheme::kArcs);
  // c01 shares b0 (1/1) and b1 (1/3).
  EXPECT_DOUBLE_EQ(w.Weight(0, 1), 1.0 + 1.0 / 3.0);
  // c12 shares b1 (1/3) and b2 (1/3).
  EXPECT_DOUBLE_EQ(w.Weight(1, 2), 2.0 / 3.0);
  // c03 shares nothing.
  EXPECT_DOUBLE_EQ(w.Weight(0, 3), 0.0);
}

TEST(EdgeWeightingTest, CbsCountsCommonBlocks) {
  Fixture f;
  EdgeWeighter w(f.blocks, f.index, f.store, WeightingScheme::kCbs);
  EXPECT_DOUBLE_EQ(w.Weight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(w.Weight(2, 3), 1.0);
  EXPECT_DOUBLE_EQ(w.Weight(0, 3), 0.0);
}

TEST(EdgeWeightingTest, JsIsJaccardOfBlockLists) {
  Fixture f;
  EdgeWeighter w(f.blocks, f.index, f.store, WeightingScheme::kJs);
  // |B0|=2, |B1|=3, common 2 -> 2 / (2+3-2).
  EXPECT_DOUBLE_EQ(w.Weight(0, 1), 2.0 / 3.0);
  // |B2|=2, |B3|=1, common 1 -> 1 / 2.
  EXPECT_DOUBLE_EQ(w.Weight(2, 3), 0.5);
}

TEST(EdgeWeightingTest, EcbsDiscountsBusyProfiles) {
  Fixture f;
  EdgeWeighter w(f.blocks, f.index, f.store, WeightingScheme::kEcbs);
  // CBS * log10(|B|/|B_i|) * log10(|B|/|B_j|); |B| = 3.
  const double expected =
      2.0 * std::log10(3.0 / 2.0) * std::log10(3.0 / 3.0);
  EXPECT_DOUBLE_EQ(w.Weight(0, 1), expected);  // == 0: p1 is in every block
  EXPECT_GT(w.Weight(2, 3), 0.0);
}

TEST(EdgeWeightingTest, EjsIsFiniteAndOrdersPlausibly) {
  Fixture f;
  EdgeWeighter w(f.blocks, f.index, f.store, WeightingScheme::kEjs);
  // Degrees: p0 -> {1,2}, p1 -> {0,2,3}, p2 -> {0,1,3}, p3 -> {1,2}.
  // All weights must be finite and non-negative.
  for (ProfileId i = 0; i < 4; ++i) {
    for (ProfileId j = i + 1; j < 4; ++j) {
      const double weight = w.Weight(i, j);
      EXPECT_TRUE(std::isfinite(weight));
      EXPECT_GE(weight, 0.0);
    }
  }
}

TEST(EdgeWeightingTest, BlockContributionAndFinalizeComposeToWeight) {
  Fixture f;
  for (WeightingScheme scheme :
       {WeightingScheme::kArcs, WeightingScheme::kCbs, WeightingScheme::kJs,
        WeightingScheme::kEcbs}) {
    EdgeWeighter w(f.blocks, f.index, f.store, scheme);
    double acc = 0.0;
    f.index.ForEachCommonBlock(
        1, 2, [&](BlockId b) { acc += w.BlockContribution(b); });
    EXPECT_DOUBLE_EQ(w.Finalize(1, 2, acc), w.Weight(1, 2))
        << "scheme " << ToString(scheme);
  }
}

TEST(EdgeWeightingTest, WeightIsSymmetric) {
  Fixture f;
  for (WeightingScheme scheme :
       {WeightingScheme::kArcs, WeightingScheme::kCbs, WeightingScheme::kJs,
        WeightingScheme::kEcbs, WeightingScheme::kEjs}) {
    EdgeWeighter w(f.blocks, f.index, f.store, scheme);
    EXPECT_DOUBLE_EQ(w.Weight(0, 2), w.Weight(2, 0));
  }
}

// ----------------------------------------------------------- BlockingGraph

TEST(BlockingGraphTest, MaterializesDistinctEdges) {
  Fixture f;
  BlockingGraph graph = BlockingGraph::Build(f.blocks, f.index, f.store,
                                             WeightingScheme::kCbs);
  // Edges: 01, 02, 12, 13, 23 (03 shares no block).
  EXPECT_EQ(graph.num_edges(), 5u);
  EXPECT_EQ(graph.num_nodes(), 4u);
  for (const Comparison& e : graph.edges()) {
    EXPECT_LT(e.i, e.j);
    EXPECT_GT(e.weight, 0.0);
  }
}

TEST(BlockingGraphTest, EdgesSortedByPair) {
  Fixture f;
  BlockingGraph graph = BlockingGraph::Build(f.blocks, f.index, f.store,
                                             WeightingScheme::kArcs);
  for (std::size_t k = 1; k < graph.edges().size(); ++k) {
    const Comparison& prev = graph.edges()[k - 1];
    const Comparison& curr = graph.edges()[k];
    EXPECT_TRUE(prev.i < curr.i || (prev.i == curr.i && prev.j < curr.j));
  }
}

TEST(BlockingGraphTest, CleanCleanGraphHasOnlyCrossSourceEdges) {
  std::vector<Profile> s1(2), s2(2);
  s1[0].AddAttribute("v", "x");
  s1[1].AddAttribute("v", "x y");
  s2[0].AddAttribute("v", "x");
  s2[1].AddAttribute("v", "y");
  ProfileStore store =
      ProfileStore::MakeCleanClean(std::move(s1), std::move(s2));
  BlockCollection blocks = TokenBlocking(store);
  ProfileIndex index(blocks, store.size());
  BlockingGraph graph =
      BlockingGraph::Build(blocks, index, store, WeightingScheme::kCbs);
  for (const Comparison& e : graph.edges()) {
    EXPECT_TRUE(store.IsComparable(e.i, e.j));
  }
  // x: {0,1}x{2}; y: {1}x{3} -> edges 02, 12, 13.
  EXPECT_EQ(graph.num_edges(), 3u);
}

TEST(BlockingGraphTest, MeanEdgeWeight) {
  Fixture f;
  BlockingGraph graph = BlockingGraph::Build(f.blocks, f.index, f.store,
                                             WeightingScheme::kCbs);
  // CBS weights: c01=2, c02=1, c12=2, c13=1, c23=1 -> mean 7/5.
  EXPECT_DOUBLE_EQ(graph.MeanEdgeWeight(), 7.0 / 5.0);
}

// ---------------------------------------------------------------- Pruning

TEST(PruningTest, WepKeepsEdgesAtOrAboveMean) {
  Fixture f;
  BlockingGraph graph = BlockingGraph::Build(f.blocks, f.index, f.store,
                                             WeightingScheme::kCbs);
  std::vector<Comparison> kept = WeightEdgePruning(graph);
  // Mean = 1.4; edges with weight 2 survive: c01 and c12.
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].i, 0u);
  EXPECT_EQ(kept[0].j, 1u);
  EXPECT_EQ(kept[1].i, 1u);
  EXPECT_EQ(kept[1].j, 2u);
}

TEST(PruningTest, CnpRetainsTopEdgesPerNode) {
  Fixture f;
  BlockingGraph graph = BlockingGraph::Build(f.blocks, f.index, f.store,
                                             WeightingScheme::kCbs);
  std::vector<Comparison> kept = CardinalityNodePruning(graph);
  // Every node keeps >= 1 edge, so no node is isolated.
  std::vector<bool> covered(4, false);
  for (const Comparison& e : kept) covered[e.i] = covered[e.j] = true;
  for (bool c : covered) EXPECT_TRUE(c);
  // Pruning must be a subset of the graph.
  EXPECT_LE(kept.size(), graph.num_edges());
}

TEST(PruningTest, EmptyGraphYieldsNoEdges) {
  BlockCollection bc(ErType::kDirty, 2);
  ProfileIndex index(bc, 2);
  std::vector<Profile> ps(2);
  ps[0].AddAttribute("v", "a");
  ps[1].AddAttribute("v", "b");
  ProfileStore store = ProfileStore::MakeDirty(std::move(ps));
  BlockingGraph graph =
      BlockingGraph::Build(bc, index, store, WeightingScheme::kArcs);
  EXPECT_TRUE(WeightEdgePruning(graph).empty());
  EXPECT_TRUE(CardinalityNodePruning(graph).empty());
}

}  // namespace
}  // namespace sper
