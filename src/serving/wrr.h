#ifndef SPER_SERVING_WRR_H_
#define SPER_SERVING_WRR_H_

#include <array>
#include <cstddef>
#include <cstdint>

/// \file wrr.h
/// Smooth weighted round-robin (the nginx upstream scheduler) over a
/// fixed, small set of lanes — the QoS controller's priority classes.
/// Deterministic: the pick sequence is a pure function of the weight
/// vector and the eligibility mask history, so a test replaying the same
/// arrival script sees the same dispatch order every run.
///
/// Smoothness is why this beats naive WRR: with weights {8,2,1} naive
/// round-robin serves AAAAAAAABC (8 As back-to-back), while smooth WRR
/// interleaves (A A B A A A C A A B-ish) — the low-weight lanes are
/// spread across the cycle instead of starved to its tail, which is what
/// bounds kBatch queue wait under sustained kInteractive load.
///
/// Not thread-safe — the controller calls Pick under its admission mutex.

namespace sper {
namespace serving {

/// Scheduler over `N` lanes with fixed positive integer weights. Each
/// Pick: every *eligible* lane gains its weight, the largest current
/// weight wins (ties -> lowest index, so the order is total), and the
/// winner pays the total eligible weight back. Over any window, lane i
/// receives ~weight_i / sum(weights) of the picks.
template <std::size_t N>
class SmoothWeightedRoundRobin {
 public:
  explicit SmoothWeightedRoundRobin(const std::array<std::uint32_t, N>& weights)
      : weights_(weights) {
    current_.fill(0);
  }

  /// Picks among lanes with `eligible[i]` true; returns N when none are.
  /// Ineligible (empty) lanes neither gain nor carry debt forward beyond
  /// their existing balance — a lane that was empty for a while does not
  /// get a catch-up burst that would reorder the steady-state pattern.
  std::size_t Pick(const std::array<bool, N>& eligible) {
    std::int64_t total = 0;
    std::size_t best = N;
    for (std::size_t i = 0; i < N; ++i) {
      if (!eligible[i]) continue;
      const std::int64_t weight =
          static_cast<std::int64_t>(weights_[i] == 0 ? 1 : weights_[i]);
      current_[i] += weight;
      total += weight;
      if (best == N || current_[i] > current_[best]) best = i;
    }
    if (best == N) return N;
    current_[best] -= total;
    return best;
  }

  /// Current balance of lane `i` (for tests asserting the smooth cycle).
  std::int64_t current(std::size_t i) const { return current_[i]; }

 private:
  std::array<std::uint32_t, N> weights_;
  std::array<std::int64_t, N> current_;
};

}  // namespace serving
}  // namespace sper

#endif  // SPER_SERVING_WRR_H_
