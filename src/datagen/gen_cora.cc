#include <string>
#include <vector>

#include "datagen/corruption.h"
#include "datagen/datagen.h"
#include "datagen/dictionaries.h"
#include "datagen/generator_util.h"
#include "datagen/rng.h"

/// Synthetic `cora` (Table 2: Dirty ER, ~1.3k profiles, 12 attributes,
/// ~17k matches, 5.53 name-value pairs).
///
/// Models the Cora citation benchmark: the same paper cited many times in
/// different formats — so equivalence clusters are LARGE (tens of
/// citations of one paper explain 17k pairs among only 1.3k profiles).
/// Citations share most title tokens (high overlap) but venue/author
/// tokens repeat across different papers (non-discriminative attributes),
/// the regime where schema-based PSN stalls around 60% recall (Fig. 1).

namespace sper {

namespace {

struct Paper {
  std::vector<std::string> author_first;  // parallel arrays
  std::vector<std::string> author_last;
  std::vector<std::string> title_words;
  std::string venue;
  std::string year;
  std::string pages;
  std::string publisher;
  std::string address;
  std::string volume;
  std::string month;
  std::string editor;
  std::string note;
};

Paper MakePaper(Rng& rng) {
  Paper paper;
  const std::size_t num_authors = rng.UniformInt(1, 4);
  for (std::size_t a = 0; a < num_authors; ++a) {
    paper.author_first.push_back(rng.Pick(FirstNames()));
    paper.author_last.push_back(rng.Pick(Surnames()));
  }
  const std::size_t title_len = rng.UniformInt(4, 8);
  for (std::size_t w = 0; w < title_len; ++w) {
    paper.title_words.push_back(rng.Pick(CommonWords()));
  }
  const std::size_t venue_len = rng.UniformInt(3, 5);
  for (std::size_t w = 0; w < venue_len; ++w) {
    if (w) paper.venue += " ";
    paper.venue += rng.Pick(VenueWords());
  }
  paper.year = std::to_string(rng.UniformInt(1970, 2001));
  paper.pages = std::to_string(rng.UniformInt(1, 400)) + "-" +
                std::to_string(rng.UniformInt(401, 800));
  paper.publisher = rng.Pick(VenueWords()) + " press";
  paper.address = rng.Pick(Cities());
  paper.volume = std::to_string(rng.UniformInt(1, 40));
  static const std::vector<std::string> months = {
      "january", "march", "may", "july", "september", "november"};
  paper.month = rng.Pick(months);
  paper.editor = rng.Pick(FirstNames()) + " " + rng.Pick(Surnames());
  paper.note = "technical report " + std::to_string(rng.UniformInt(1, 999));
  return paper;
}

/// One citation of `paper`, in a randomly chosen formatting style.
Profile MakeCitation(Rng& rng, const Paper& paper) {
  // Authors: each formatted with full first name or initial; sometimes a
  // trailing author is dropped ("et al" style), the author order varies
  // between citation styles, and some styles put the surname first —
  // which is what breaks the schema-based "first author surname + year"
  // blocking key on the real Cora (Fig. 1).
  std::string authors;
  std::vector<std::size_t> order(paper.author_first.size());
  for (std::size_t a = 0; a < order.size(); ++a) order[a] = a;
  if (order.size() > 1 && rng.Bernoulli(0.35)) {
    rng.Shuffle(order.begin(), order.end());
  }
  const bool surname_first = rng.Bernoulli(0.25);
  std::size_t shown = order.size();
  if (shown > 2 && rng.Bernoulli(0.25)) shown = rng.UniformInt(1, shown - 1);
  for (std::size_t a = 0; a < shown; ++a) {
    if (a) authors += " and ";
    const bool initial = rng.Bernoulli(0.5);
    const std::string first = initial
                                  ? Abbreviate(paper.author_first[order[a]])
                                  : paper.author_first[order[a]];
    const std::string& last = paper.author_last[order[a]];
    authors += surname_first ? last + " " + first : first + " " + last;
  }

  // Title: occasional per-word typo or dropped word — character-level
  // noise on top of high token overlap.
  std::string title;
  for (const std::string& word : paper.title_words) {
    if (rng.Bernoulli(0.08)) continue;
    if (!title.empty()) title += " ";
    title += MaybeTypo(rng, word, 0.08);
  }

  // Venue: full, or abbreviated to first letters ("Proc. Int. Conf.").
  std::string venue = paper.venue;
  if (rng.Bernoulli(0.4)) {
    venue = TokenNoise(rng, venue, {.drop_rate = 0.2, .swap_rate = 0.0,
                                    .abbreviate_rate = 0.6});
  }

  Profile profile;
  profile.AddAttribute("authors", authors);
  profile.AddAttribute("title", title);
  if (rng.Bernoulli(0.8)) profile.AddAttribute("venue", venue);
  if (rng.Bernoulli(0.85)) {
    profile.AddAttribute(
        "year", rng.Bernoulli(0.92)
                    ? paper.year
                    : std::to_string(std::stoul(paper.year) + 1));
  }
  // Long-tail attributes, each present in a quarter of the citations, put
  // the mean profile size at Table 2's 5.53.
  if (rng.Bernoulli(0.25)) profile.AddAttribute("pages", paper.pages);
  if (rng.Bernoulli(0.25)) profile.AddAttribute("publisher", paper.publisher);
  if (rng.Bernoulli(0.25)) profile.AddAttribute("address", paper.address);
  if (rng.Bernoulli(0.25)) profile.AddAttribute("volume", paper.volume);
  if (rng.Bernoulli(0.25)) profile.AddAttribute("month", paper.month);
  if (rng.Bernoulli(0.2)) profile.AddAttribute("editor", paper.editor);
  if (rng.Bernoulli(0.15)) profile.AddAttribute("note", paper.note);
  if (rng.Bernoulli(0.1)) {
    profile.AddAttribute("tech", "tr-" + std::to_string(rng.UniformInt(1, 99)));
  }
  return profile;
}

}  // namespace

DatasetBundle GenerateCora(const DatagenOptions& options) {
  Rng rng(options.seed * 1000003 + 3);

  // Large clusters: 5x60 + 10x25 + 20x14 + 15x13 + 30x9 -> 15,920 pairs
  // over 1,295 profiles (paper: ~17k over 1.3k), plus 5 singletons.
  ClusterPlan plan;
  plan.clusters_of_size = {{60, 5}, {25, 10}, {14, 20}, {13, 15}, {9, 30}};
  plan.singletons = 5;
  plan = plan.Scaled(options.scale);

  std::vector<std::vector<Profile>> clusters;
  for (const auto& [size, count] : plan.clusters_of_size) {
    for (std::size_t c = 0; c < count; ++c) {
      const Paper paper = MakePaper(rng);
      std::vector<Profile> cluster;
      for (std::size_t m = 0; m < size; ++m) {
        cluster.push_back(MakeCitation(rng, paper));
      }
      clusters.push_back(std::move(cluster));
    }
  }
  std::vector<Profile> singletons;
  for (std::size_t s = 0; s < plan.singletons; ++s) {
    singletons.push_back(MakeCitation(rng, MakePaper(rng)));
  }

  DirtyAssembly assembly =
      AssembleDirty(rng, std::move(clusters), std::move(singletons));
  return DatasetBundle{
      "cora",
      std::move(assembly.store),
      std::move(assembly.truth),
      // Literature-style key: first author surname + year — noisy here,
      // which is exactly why PSN trails on cora.
      [](const Profile& p) {
        const std::string authors(p.ValueOf("authors"));
        if (authors.empty()) return std::string();
        // Surname of the first author = last word before " and " (or end).
        std::string first_author = authors.substr(0, authors.find(" and "));
        const std::size_t space = first_author.rfind(' ');
        std::string key = space == std::string::npos
                              ? first_author
                              : first_author.substr(space + 1);
        key += p.ValueOf("year");
        return key;
      },
      "synthetic Cora-style citations; large clusters, formatting variety, "
      "non-discriminative venue tokens"};
}

}  // namespace sper
