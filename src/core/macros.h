#ifndef SPER_CORE_MACROS_H_
#define SPER_CORE_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// \file macros.h
/// Internal invariant checks. SPER_CHECK is always on (cheap, used at module
/// boundaries); SPER_DCHECK compiles away in release builds (hot paths).

#define SPER_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "SPER_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifndef NDEBUG
#define SPER_DCHECK(cond) SPER_CHECK(cond)
#else
#define SPER_DCHECK(cond) \
  do {                    \
  } while (0)
#endif

#endif  // SPER_CORE_MACROS_H_
