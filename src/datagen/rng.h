#ifndef SPER_DATAGEN_RNG_H_
#define SPER_DATAGEN_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "core/macros.h"

/// \file rng.h
/// Seeded random source for the dataset generators. Every generator takes
/// an explicit seed, so generated datasets are reproducible bit-for-bit.

namespace sper {

/// Thin deterministic wrapper over std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi], inclusive.
  std::size_t UniformInt(std::size_t lo, std::size_t hi) {
    SPER_DCHECK(lo <= hi);
    return std::uniform_int_distribution<std::size_t>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  double UniformReal() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return UniformReal() < p; }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& pool) {
    SPER_DCHECK(!pool.empty());
    return pool[UniformInt(0, pool.size() - 1)];
  }

  /// Fisher-Yates shuffle.
  template <typename It>
  void Shuffle(It first, It last) {
    std::shuffle(first, last, engine_);
  }

  /// Underlying engine for distributions not wrapped here.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sper

#endif  // SPER_DATAGEN_RNG_H_
