// Quickstart: schema-agnostic progressive ER on the paper's own running
// example (Fig. 3a) — six profiles from a "data lake" mixing relational,
// RDF and free-text formats. No schema alignment, no configuration: build
// the profiles, pick a method, pull comparisons best-first.
//
//   $ ./quickstart

#include <cstdio>
#include <optional>

#include "blocking/token_blocking.h"
#include "core/profile_store.h"
#include "progressive/pps.h"

int main() {
  using namespace sper;

  // A data lake: the same people described in three different formats.
  std::vector<Profile> profiles(6);
  profiles[0].AddAttribute("Name", "Carl");        // relational record
  profiles[0].AddAttribute("Surname", "White");
  profiles[0].AddAttribute("City", "NY");
  profiles[0].AddAttribute("Profession", "Tailor");
  profiles[1].AddAttribute("subject", ":Carl_White");  // RDF resource
  profiles[1].AddAttribute("livesIn", "NY");
  profiles[1].AddAttribute("workAs", "Tailor");
  profiles[2].AddAttribute("subject", ":Karl_White");  // RDF resource
  profiles[2].AddAttribute("job", "Tailor");
  profiles[2].AddAttribute("loc", "NY");
  profiles[3].AddAttribute("Name", "Ellen");       // relational record
  profiles[3].AddAttribute("Surname", "White");
  profiles[3].AddAttribute("City", "ML");
  profiles[3].AddAttribute("Profession", "Teacher");
  profiles[4].AddAttribute("text", "Hellen White, ML teacher");  // free text
  profiles[5].AddAttribute("text", "Emma White, WI Tailor");     // free text

  ProfileStore store = ProfileStore::MakeDirty(std::move(profiles));

  // Schema-agnostic blocking: one block per attribute-value token — the
  // attribute NAMES are never consulted, so format variety is irrelevant.
  BlockCollection blocks = TokenBlocking(store);
  std::printf("token blocking: %zu blocks, %llu comparisons in total\n",
              blocks.size(),
              static_cast<unsigned long long>(blocks.AggregateCardinality()));

  // Progressive Profile Scheduling: pull comparisons in decreasing
  // estimated matching likelihood and stop whenever the budget runs out.
  PpsEmitter pps(store, blocks);
  std::printf("\n%-4s %-12s %s\n", "#", "pair", "estimated likelihood");
  int rank = 0;
  while (std::optional<Comparison> c = pps.Next()) {
    std::printf("%-4d (p%u, p%u)%-4s %.4f\n", ++rank, c->i + 1, c->j + 1,
                "", c->weight);
    if (rank >= 6) break;  // pay-as-you-go: stop after 6 comparisons
  }

  std::printf(
      "\nThe true matches are (p1,p2), (p1,p3), (p2,p3) and (p4,p5):\n"
      "the top-ranked comparisons above already cover most of them.\n");
  return 0;
}
