#include "blocking/suffix_forest.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "blocking/block_collection.h"

namespace sper {

SuffixForest SuffixForest::Build(const ProfileStore& store,
                                 const SuffixForestOptions& options) {
  // Suffix -> owning profiles. Visiting profiles in id order with distinct
  // tokens keeps each posting list sorted; a profile may reach the same
  // suffix through different tokens, so lists are deduplicated afterwards.
  std::unordered_map<std::string, std::vector<ProfileId>> postings;
  postings.reserve(store.size() * 8);
  for (const Profile& p : store.profiles()) {
    for (const std::string& token :
         DistinctProfileTokens(p, options.tokenizer)) {
      if (token.size() < options.lmin) continue;
      const std::size_t longest =
          std::min(token.size(), options.max_suffix_length);
      for (std::size_t len = options.lmin; len <= longest; ++len) {
        std::string suffix = token.substr(token.size() - len);
        std::vector<ProfileId>& list = postings[std::move(suffix)];
        if (list.empty() || list.back() != p.id()) list.push_back(p.id());
      }
    }
  }

  // Geometry helper for cardinalities and split points.
  BlockCollection geometry(store.er_type(), store.split_index());

  SuffixForest forest;
  forest.nodes_.reserve(postings.size());
  // Hash-order iteration (extract avoids copying the suffix strings) is
  // safe here: the node sort below re-establishes a total order — suffix
  // length, cardinality, suffix text — with no ties, so the emitted
  // forest is independent of hash order (allowlisted in
  // tools/determinism_allowlist.txt).
  for (auto it = postings.begin(); it != postings.end();) {
    auto node_handle = postings.extract(it++);
    SuffixNode node;
    node.suffix = std::move(node_handle.key());
    node.profiles = std::move(node_handle.mapped());
    node.cardinality = geometry.ComputeCardinality(node.profiles);
    if (node.cardinality == 0) continue;
    node.split =
        store.er_type() == ErType::kDirty
            ? node.profiles.size()
            : static_cast<std::size_t>(
                  std::lower_bound(node.profiles.begin(),
                                   node.profiles.end(),
                                   store.split_index()) -
                  node.profiles.begin());
    forest.total_comparisons_ += node.cardinality;
    forest.nodes_.push_back(std::move(node));
  }

  // "Leaves first, root last": longest suffixes first; within one layer,
  // increasing number of comparisons; suffix text as deterministic tie.
  std::sort(forest.nodes_.begin(), forest.nodes_.end(),
            [](const SuffixNode& a, const SuffixNode& b) {
              if (a.suffix.size() != b.suffix.size()) {
                return a.suffix.size() > b.suffix.size();
              }
              if (a.cardinality != b.cardinality) {
                return a.cardinality < b.cardinality;
              }
              return a.suffix < b.suffix;
            });
  return forest;
}

}  // namespace sper
