#include "eval/table.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>

namespace sper {

void TextTable::Print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell;
      if (c + 1 < widths.size()) {
        out << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    out << '\n';
  };

  print_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::Print() const { Print(std::cout); }

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string FormatCount(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i == lead) {
      out.push_back(',');
      lead += 3;
    }
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace sper
