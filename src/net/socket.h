#ifndef SPER_NET_SOCKET_H_
#define SPER_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "core/status.h"

/// \file socket.h
/// Minimal POSIX TCP plumbing under the serving protocol: an RAII file
/// descriptor, listen/connect helpers, and length-prefixed frame I/O
/// (the transport half of net/wire.h — ReadFrame strips the u32 length
/// prefix and returns the payload, WriteFrame sends a complete frame).
///
/// Everything returns Status/Result instead of throwing, reports errno in
/// the message, and loops on EINTR. Writes use MSG_NOSIGNAL so a peer
/// that vanished surfaces as an EPIPE IoError on the calling thread, not
/// a process-wide SIGPIPE.

namespace sper {
namespace net {

/// Owning file descriptor (close on destruction). Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Closes now (idempotent).
  void Close();

  /// Releases ownership without closing.
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// A "HOST:PORT" endpoint. Parsed strictly: the port is the digits after
/// the last ':', in [0, 65535] (0 meaning "ephemeral" is the caller's
/// convention); a missing ':' or junk in the port is an error.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

Result<Endpoint> ParseEndpoint(std::string_view listen_spec);

/// Binds and listens on host:port (numeric or resolvable IPv4 host; port
/// 0 binds an ephemeral port — read it back with LocalPort). The socket
/// is SO_REUSEADDR and non-blocking (the server's acceptor polls it).
Result<Socket> ListenTcp(const std::string& host, std::uint16_t port,
                         int backlog);

/// The locally bound port of a listening socket.
Result<std::uint16_t> LocalPort(const Socket& socket);

/// Connects (blocking) to host:port with TCP_NODELAY set — the protocol
/// is strict request/response, so Nagle only adds latency.
Result<Socket> ConnectTcp(const std::string& host, std::uint16_t port);

/// Writes the whole buffer (loops on short writes / EINTR).
Status WriteAll(const Socket& socket, std::string_view data);

/// One ReadFrame call's result.
enum class ReadStatus {
  kFrame,  // *payload holds one complete frame payload
  kEof,    // the peer closed cleanly at a frame boundary
  kError,  // transport or framing error; *error says why
};

/// Reads one length-prefixed frame, returning the payload (length prefix
/// stripped). A peer close in the middle of a frame — and a length prefix
/// beyond wire.h's kMaxFramePayload — is kError, not kEof: the stream is
/// corrupt, not finished.
ReadStatus ReadFrame(const Socket& socket, std::string* payload,
                     Status* error);

/// Writes one complete frame (as built by the net/wire.h encoders).
Status WriteFrame(const Socket& socket, std::string_view frame);

}  // namespace net
}  // namespace sper

#endif  // SPER_NET_SOCKET_H_
