#ifndef SPER_MATCHING_LEVENSHTEIN_H_
#define SPER_MATCHING_LEVENSHTEIN_H_

#include <cstddef>
#include <string_view>

/// \file levenshtein.h
/// Levenshtein edit distance — the paper's "expensive" match function
/// (Sec. 7.3): O(s*t) time, O(min(s,t)) space (two-row dynamic program).

namespace sper {

/// Number of single-character insertions, deletions and substitutions
/// needed to turn `a` into `b`.
std::size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Similarity in [0, 1]: 1 - distance / max(|a|, |b|); 1 for two empty
/// strings.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

}  // namespace sper

#endif  // SPER_MATCHING_LEVENSHTEIN_H_
