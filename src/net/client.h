#ifndef SPER_NET_CLIENT_H_
#define SPER_NET_CLIENT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/status.h"
#include "engine/resolver.h"
#include "net/socket.h"

/// \file client.h
/// Blocking client for the net/server.h protocol: one connection, strict
/// request/response. Used by `sper_cli client`, bench_server_loopback,
/// and the loopback tests; any other implementation that speaks
/// net/wire.h interoperates.
///
/// Error taxonomy a caller sees:
///   - transport failure (connect refused, server closed the connection,
///     malformed response frame): the Result carries an error Status and
///     the connection is dead — reconnect to continue;
///   - served-but-unsuccessful (kShed, kRejected, kDeadlineExpired, ...):
///     the Result is OK and carries the ResolveResult; inspect
///     `outcome`/`status` exactly as an in-process caller would. A kShed
///     result's retry_after_ms is the server's backoff hint —
///     ResolveWithRetry honors it automatically.

namespace sper {
namespace net {

class Client {
 public:
  /// Connects (blocking).
  static Result<Client> Connect(const std::string& host, std::uint16_t port);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One request/response round trip. Validates locally first
  /// (ValidateResolveRequest) so an unservable request fails fast without
  /// a network hop. The cancel token does not cross the wire — express
  /// remote cancellation as deadline_ms.
  Result<ResolveResult> Resolve(const ResolveRequest& request);

  /// Resolve, sleeping `retry_after_ms` and retrying while the server
  /// sheds — up to `max_retries` retries, then the last kShed result is
  /// returned as-is (OK Result; the caller sees outcome == kShed).
  Result<ResolveResult> ResolveWithRetry(const ResolveRequest& request,
                                         std::size_t max_retries = 16);

  /// Fetches the server's live metrics snapshot (stable JSON, schema
  /// "sper.metrics.v1"; "{}" when the server has no registry).
  Result<std::string> FetchMetricsJson();

  /// Closes the connection now (also on destruction).
  void Close() { socket_.Close(); }

  bool connected() const { return socket_.valid(); }

 private:
  explicit Client(Socket socket) : socket_(std::move(socket)) {}

  /// Sends one frame and reads one response payload. A clean server
  /// close mid-conversation is an IoError here: this protocol never
  /// half-finishes an exchange.
  Result<std::string> RoundTrip(const std::string& frame);

  Socket socket_;
};

}  // namespace net
}  // namespace sper

#endif  // SPER_NET_CLIENT_H_
