#ifndef SPER_PROGRESSIVE_GS_PSN_H_
#define SPER_PROGRESSIVE_GS_PSN_H_

#include <cstddef>

#include "core/profile_store.h"
#include "progressive/comparison_list.h"
#include "progressive/emitter.h"
#include "sorted/neighbor_list.h"
#include "sorted/position_index.h"

/// \file gs_psn.h
/// Global Schema-Agnostic Progressive Sorted Neighborhood (GS-PSN, paper
/// Sec. 5.1.2).
///
/// LS-PSN's order is local to one window, so a pair can be re-emitted
/// across windows. GS-PSN instead weights every comparison within the
/// whole window range [1, wmax] at once — RCF frequencies aggregate the
/// co-occurrences over all those distances — and defines one global,
/// repetition-free execution order. The price is memory: the Comparison
/// List holds every pair in range (the reason the paper had to cap it on
/// freebase even with an 80 GB heap, Sec. 7.2).

namespace sper {

/// Options of GS-PSN.
struct GsPsnOptions {
  /// Largest window whose comparisons are weighted and emitted. The paper
  /// uses 20 for the structured datasets and 200 for the large ones.
  std::size_t wmax = 20;
  /// Neighbor List construction.
  NeighborListOptions list;
};

/// The GS-PSN emitter.
class GsPsnEmitter : public ProgressiveEmitter {
 public:
  /// Initialization phase: builds the Neighbor List and Position Index and
  /// weights all comparisons within [1, wmax].
  explicit GsPsnEmitter(const ProfileStore& store,
                        const GsPsnOptions& options = {});

  /// Emission phase: pops the next best comparison; nullopt once the
  /// global Comparison List is exhausted.
  std::optional<Comparison> Next() override;

  std::string_view name() const override { return "GS-PSN"; }

  /// Number of distinct comparisons materialized at initialization.
  std::size_t total_comparisons() const { return total_comparisons_; }

 private:
  ComparisonList comparisons_;
  std::size_t total_comparisons_ = 0;
};

}  // namespace sper

#endif  // SPER_PROGRESSIVE_GS_PSN_H_
