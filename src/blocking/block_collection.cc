#include "blocking/block_collection.h"

#include <algorithm>
#include <utility>

namespace sper {

std::uint64_t BlockCollection::ComputeCardinality(const Block& block) const {
  const std::vector<ProfileId>& ps = block.profiles;
  if (er_type_ == ErType::kDirty) {
    const std::uint64_t n = ps.size();
    return n * (n - 1) / 2;
  }
  const auto first2 = std::lower_bound(ps.begin(), ps.end(), split_index_);
  const std::uint64_t n1 = static_cast<std::uint64_t>(first2 - ps.begin());
  const std::uint64_t n2 = ps.size() - n1;
  return n1 * n2;
}

BlockId BlockCollection::Add(Block block) {
  SPER_DCHECK(std::is_sorted(block.profiles.begin(), block.profiles.end()));
  const std::uint64_t card = ComputeCardinality(block);
  blocks_.push_back(std::move(block));
  cardinalities_.push_back(card);
  aggregate_cardinality_ += card;
  return static_cast<BlockId>(blocks_.size() - 1);
}

double BlockCollection::MeanBlockSize() const {
  if (blocks_.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const Block& b : blocks_) total += b.size();
  return static_cast<double>(total) / static_cast<double>(blocks_.size());
}

}  // namespace sper
