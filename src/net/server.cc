#include "net/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <exception>
#include <utility>

#include "net/wire.h"
#include "obs/clock.h"
#include "obs/fault_injection.h"

namespace sper {
namespace net {

namespace {

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::IoError(std::string("fcntl(O_NONBLOCK): ") +
                           std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace

Server::Server(Resolver& resolver, ServerOptions options)
    : resolver_(resolver), options_(std::move(options)) {
  qos_ = std::make_unique<serving::QosAdmissionController>(resolver_,
                                                           options_.qos);
  const obs::TelemetryScope& telemetry = options_.telemetry;
  connections_metric_ = telemetry.counter("net.connections");
  frames_in_metric_ = telemetry.counter("net.frames_in");
  frames_out_metric_ = telemetry.counter("net.frames_out");
  bytes_in_metric_ = telemetry.counter("net.bytes_in");
  bytes_out_metric_ = telemetry.counter("net.bytes_out");
  requests_metric_ = telemetry.counter("net.requests");
  read_errors_metric_ = telemetry.counter("net.read_errors");
  write_errors_metric_ = telemetry.counter("net.write_errors");
  protocol_errors_metric_ = telemetry.counter("net.protocol_errors");
  active_connections_metric_ = telemetry.gauge("net.active_connections");
  request_ns_metric_ = telemetry.histogram("net.request_ns");
}

Result<std::unique_ptr<Server>> Server::Start(Resolver& resolver,
                                              ServerOptions options) {
  std::unique_ptr<Server> server(new Server(resolver, std::move(options)));
  Result<Socket> listen = ListenTcp(server->options_.host,
                                    server->options_.port,
                                    server->options_.backlog);
  if (!listen.ok()) return listen.status();
  server->listen_socket_ = std::move(listen).value();
  Result<std::uint16_t> port = LocalPort(server->listen_socket_);
  if (!port.ok()) return port.status();
  server->port_ = port.value();

  int wake[2];
  if (::pipe(wake) != 0) {
    return Status::IoError(std::string("pipe: ") + std::strerror(errno));
  }
  server->wake_read_fd_ = wake[0];
  server->wake_write_fd_ = wake[1];
  SPER_RETURN_IF_ERROR(SetNonBlocking(wake[0]));
  SPER_RETURN_IF_ERROR(SetNonBlocking(wake[1]));

  server->acceptor_ = std::thread(&Server::AcceptLoop, server.get());
  server->started_ = true;
  return server;
}

Server::~Server() {
  Shutdown();
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

void Server::WakeAcceptor() {
  const char byte = 1;
  // Best-effort: a full pipe means a wakeup is already pending.
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void Server::Shutdown() {
  if (!started_) return;
  {
    MutexLock lock(mutex_);
    if (stopping_) {
      // A concurrent Shutdown (destructor racing an explicit call) waits
      // for the first one to finish the drain rather than returning into
      // a still-live server.
      while (!drained_) shutdown_cv_.Wait(lock);
      return;
    }
    stopping_ = true;
  }
  WakeAcceptor();
  if (acceptor_.joinable()) acceptor_.join();
  // Close the listener: with it merely un-polled the kernel would keep
  // completing handshakes into the backlog, so connects would still
  // "succeed" against a dead server.
  listen_socket_.Close();

  // The acceptor is gone, so the connection table is final. Shut down the
  // read half of every live connection: blocked reads wake at a frame
  // boundary (clean EOF), while a response mid-write still flushes.
  std::vector<std::unique_ptr<Connection>> connections;
  {
    MutexLock lock(mutex_);
    connections.swap(connections_);
    if (active_connections_metric_ != nullptr) {
      active_connections_metric_->Set(0.0);
    }
  }
  for (const std::unique_ptr<Connection>& conn : connections) {
    if (conn->socket.valid()) ::shutdown(conn->socket.fd(), SHUT_RD);
  }
  for (const std::unique_ptr<Connection>& conn : connections) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  connections.clear();  // closes the sockets

  resolver_.Drain();
  {
    MutexLock lock(mutex_);
    drained_ = true;
  }
  shutdown_cv_.NotifyAll();
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  stats.frames_in = frames_in_.load(std::memory_order_relaxed);
  stats.frames_out = frames_out_.load(std::memory_order_relaxed);
  stats.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  stats.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  stats.requests_served = requests_served_.load(std::memory_order_relaxed);
  stats.requests_rejected =
      requests_rejected_.load(std::memory_order_relaxed);
  stats.read_errors = read_errors_.load(std::memory_order_relaxed);
  stats.write_errors = write_errors_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  return stats;
}

void Server::ReapFinished() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    MutexLock lock(mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    if (active_connections_metric_ != nullptr) {
      active_connections_metric_->Set(
          static_cast<double>(connections_.size()));
    }
  }
  for (const std::unique_ptr<Connection>& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void Server::AcceptLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_socket_.fd(), POLLIN, 0};
    fds[1] = {wake_read_fd_, POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;  // poll itself failed; Shutdown still drains what exists
    }
    if (fds[1].revents != 0) {
      char drain[64];
      while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
    }
    ReapFinished();
    {
      MutexLock lock(mutex_);
      if (stopping_) return;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;

    for (;;) {
      const int fd = ::accept(listen_socket_.fd(), nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN (burst drained) or transient error: re-poll
      }
      Socket socket(fd);
      try {
        SPER_FAULT_HIT("net.accept");
      } catch (const std::exception&) {
        // Injected accept fault: this connection is dropped before it is
        // ever served; the listener and live connections are untouched.
        connections_rejected_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      auto conn = std::make_unique<Connection>();
      conn->socket = std::move(socket);
      Connection* raw = conn.get();
      bool admitted = false;
      {
        MutexLock lock(mutex_);
        if (!stopping_ &&
            (options_.max_connections == 0 ||
             connections_.size() < options_.max_connections)) {
          conn->id = next_connection_id_++;
          connections_.push_back(std::move(conn));
          if (active_connections_metric_ != nullptr) {
            active_connections_metric_->Set(
                static_cast<double>(connections_.size()));
          }
          admitted = true;
        }
      }
      if (!admitted) {
        connections_rejected_.fetch_add(1, std::memory_order_relaxed);
        continue;  // `conn` still owns the socket; closed on scope exit
      }
      connections_accepted_.fetch_add(1, std::memory_order_relaxed);
      if (connections_metric_ != nullptr) connections_metric_->Add();
      raw->thread = std::thread(&Server::ConnectionMain, this, raw);
    }
  }
}

void Server::ConnectionMain(Connection* conn) {
  try {
    ServeConnection(*conn);
  } catch (const std::exception&) {
    // An injected net.read/net.write fault (or any unexpected error)
    // behaves exactly as a peer disconnect: this connection ends; the
    // resolver and every other connection's stream are untouched.
    read_errors_.fetch_add(1, std::memory_order_relaxed);
    if (read_errors_metric_ != nullptr) read_errors_metric_->Add();
  }
  // The socket stays open until the acceptor (or Shutdown) joins this
  // thread and destroys the Connection — closing it here would let the
  // kernel reuse the fd while Shutdown may still shutdown(fd, SHUT_RD).
  conn->done.store(true, std::memory_order_release);
  WakeAcceptor();
}

void Server::ServeConnection(Connection& conn) {
  std::string payload;
  for (;;) {
    SPER_FAULT_HIT("net.read");
    Status read_error = Status::Ok();
    const ReadStatus read = ReadFrame(conn.socket, &payload, &read_error);
    if (read == ReadStatus::kEof) return;
    if (read == ReadStatus::kError) {
      read_errors_.fetch_add(1, std::memory_order_relaxed);
      if (read_errors_metric_ != nullptr) read_errors_metric_->Add();
      return;
    }
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    bytes_in_.fetch_add(payload.size() + 4, std::memory_order_relaxed);
    if (frames_in_metric_ != nullptr) frames_in_metric_->Add();
    if (bytes_in_metric_ != nullptr) {
      bytes_in_metric_->Add(payload.size() + 4);
    }

    const Result<FrameType> type = DecodeFrameHeader(payload);
    std::string response;
    if (type.ok() && type.value() == FrameType::kResolveRequest) {
      response = HandleResolveFrame(conn, payload);
    } else if (type.ok() && type.value() == FrameType::kMetricsRequest) {
      response = EncodeMetricsResultFrame(MetricsJson());
    } else {
      // Bad version/type — or a server-to-client frame type arriving
      // server-ward. Either way the byte stream is no longer trusted.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      if (protocol_errors_metric_ != nullptr) protocol_errors_metric_->Add();
      return;
    }

    SPER_FAULT_HIT("net.write");
    const Status write_status = WriteFrame(conn.socket, response);
    if (!write_status.ok()) {
      write_errors_.fetch_add(1, std::memory_order_relaxed);
      if (write_errors_metric_ != nullptr) write_errors_metric_->Add();
      return;
    }
    frames_out_.fetch_add(1, std::memory_order_relaxed);
    bytes_out_.fetch_add(response.size(), std::memory_order_relaxed);
    if (frames_out_metric_ != nullptr) frames_out_metric_->Add();
    if (bytes_out_metric_ != nullptr) bytes_out_metric_->Add(response.size());
  }
}

std::string Server::HandleResolveFrame(const Connection& conn,
                                       std::string_view payload) {
  Result<ResolveRequest> decoded = DecodeResolveRequest(payload);
  if (!decoded.ok()) {
    // Well-framed but unservable: reply politely and keep the connection.
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    ResolveResult rejected;
    rejected.outcome = ResolveOutcome::kRejected;
    rejected.status = decoded.status();
    return EncodeResolveResultFrame(rejected);
  }
  ResolveRequest request = decoded.value();
  if (request.client_id == 0) request.client_id = conn.id;
  if (request.max_batch == 0) request.max_batch = ResolveRequest::kMaxBatch;

  const obs::Stopwatch watch;
  const ResolveResult result = qos_->Resolve(request);
  const obs::Stopwatch::TimePoint end = obs::Stopwatch::Now();
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (requests_metric_ != nullptr) requests_metric_->Add();
  if (request_ns_metric_ != nullptr) {
    request_ns_metric_->Record(obs::Stopwatch::Nanos(watch.start(), end));
  }
  options_.telemetry.RecordSpan(
      "net.request", watch.start(), end,
      "{\"conn\":" + std::to_string(conn.id) +
          ",\"ticket\":" + std::to_string(result.ticket) + "}");
  return EncodeResolveResultFrame(result);
}

std::string Server::MetricsJson() const {
  obs::Registry* registry = options_.metrics_registry;
  if (registry == nullptr) registry = options_.telemetry.registry();
  return registry != nullptr ? registry->SnapshotJson() : "{}";
}

}  // namespace net
}  // namespace sper
