#ifndef SPER_PARALLEL_SPSC_RING_H_
#define SPER_PARALLEL_SPSC_RING_H_

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"
#include "obs/fault_injection.h"
#include "parallel/cancel.h"

/// \file spsc_ring.h
/// Bounded single-producer/single-consumer ring of reusable slots — the
/// queue primitive of the emission pipeline (emission_pipeline.h). Unlike a
/// value queue, slots are fixed in place and handed out by pointer: the
/// producer fills a slot's existing buffers (no allocation after warm-up)
/// and the consumer returns the slot for reuse once drained. Capacity
/// bounds how far production may run ahead of consumption.

namespace sper {

/// A ring of `capacity` default-constructed T slots with blocking
/// producer/consumer handoff.
///
/// Exactly one producer thread may call AcquireSlot/CommitSlot/
/// FinishProduction and exactly one consumer thread may call Front/
/// PopFront; Close may be called from any thread (typically the consumer
/// abandoning the stream). All transitions are mutex-protected — the ring
/// favors simplicity over lock-free throughput because every slot carries
/// a whole refill batch, so handoffs are rare relative to the work they
/// transport.
template <typename T>
class SpscSlotRing {
 public:
  explicit SpscSlotRing(std::size_t capacity)
      : slots_(std::max<std::size_t>(1, capacity)) {}

  /// Producer: the next free slot to fill, blocking while the ring is
  /// full. Returns nullptr once Close() was called — the producer must
  /// stop. The slot keeps whatever state its previous use left behind
  /// (that is the point: reuse its capacity). `stalled`, when given, is
  /// set to whether the call found the ring full and had to block
  /// (telemetry: producer back-pressure).
  T* AcquireSlot(bool* stalled = nullptr) {
    SPER_FAULT_HIT("ring.acquire_slot");
    MutexLock lock(mutex_);
    if (stalled != nullptr) *stalled = !CanProduceLocked();
    while (!CanProduceLocked()) can_produce_.Wait(lock);
    if (closed_) return nullptr;
    return &slots_[(head_ + size_) % slots_.size()];
  }

  /// Producer: publishes the slot returned by the last AcquireSlot.
  void CommitSlot() {
    {
      MutexLock lock(mutex_);
      ++size_;
    }
    can_consume_.NotifyOne();
  }

  /// Producer: no further commits will happen; once the committed slots
  /// are drained, Front() returns nullptr.
  void FinishProduction() {
    {
      MutexLock lock(mutex_);
      finished_ = true;
    }
    can_consume_.NotifyOne();
  }

  /// Consumer: the oldest committed slot, blocking until one is committed
  /// or production finished. nullptr when the stream is over (finished and
  /// drained, or closed). `waited`, when given, is set to whether the call
  /// found the ring empty and had to block (telemetry: consumer
  /// starvation).
  T* Front(bool* waited = nullptr) {
    MutexLock lock(mutex_);
    if (waited != nullptr) *waited = !CanConsumeLocked();
    while (!CanConsumeLocked()) can_consume_.Wait(lock);
    if (closed_ || size_ == 0) return nullptr;
    return &slots_[head_];
  }

  /// Consumer: like Front(), but gives up once `token` fires — the
  /// deadline-aware wait of the cancellable serving path. Returns the
  /// oldest committed slot as usual; nullptr with *expired = true when
  /// the token fired first (the ring is untouched — a later FrontUntil or
  /// Front picks up exactly where this one left off), or nullptr with
  /// *expired = false when the stream is over (finished and drained, or
  /// closed). A token deadline is honored via wait_until; an explicit
  /// Cancel() with no deadline is noticed within kCancelPollInterval.
  T* FrontUntil(const CancelToken& token, bool* expired,
                bool* waited = nullptr) {
    *expired = false;
    if (!token.valid()) return Front(waited);
    MutexLock lock(mutex_);
    if (waited != nullptr) *waited = !CanConsumeLocked();
    while (!CanConsumeLocked()) {
      if (token.cancelled()) {
        *expired = true;
        return nullptr;
      }
      auto wake = CancelToken::Clock::now() + kCancelPollInterval;
      if (token.has_deadline()) wake = std::min(wake, token.deadline());
      can_consume_.WaitUntil(lock, wake);
    }
    if (closed_ || size_ == 0) return nullptr;
    return &slots_[head_];
  }

  /// Consumer: recycles the slot returned by Front(), unblocking the
  /// producer.
  void PopFront() {
    {
      MutexLock lock(mutex_);
      head_ = (head_ + 1) % slots_.size();
      --size_;
    }
    can_produce_.NotifyOne();
  }

  /// Aborts the stream: both sides unblock and see nullptr. Idempotent.
  void Close() {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    can_produce_.NotifyAll();
    can_consume_.NotifyAll();
  }

  /// Number of slots.
  std::size_t capacity() const { return slots_.size(); }

  /// Committed-but-unpopped slots right now (telemetry: ring occupancy).
  std::size_t size() const {
    MutexLock lock(mutex_);
    return size_;
  }

 private:
  /// The producer may take a slot (or must stop): free capacity or close.
  bool CanProduceLocked() const SPER_REQUIRES(mutex_) {
    return closed_ || size_ < slots_.size();
  }

  /// The consumer has something to see: a committed slot, or end/abort.
  bool CanConsumeLocked() const SPER_REQUIRES(mutex_) {
    return closed_ || finished_ || size_ > 0;
  }

  mutable Mutex mutex_;
  CondVar can_produce_;
  CondVar can_consume_;
  /// Slot storage is deliberately NOT guarded: AcquireSlot/Front hand out
  /// raw pointers and the producer/consumer fill/drain them outside the
  /// lock. The SPSC protocol keeps the two sides on disjoint slots (a
  /// slot is only writable between AcquireSlot and CommitSlot, only
  /// readable between Front and PopFront), and the mutex around the
  /// index transitions provides the happens-before edge for the handoff.
  std::vector<T> slots_;
  std::size_t head_ SPER_GUARDED_BY(mutex_) = 0;  // oldest committed slot
  std::size_t size_ SPER_GUARDED_BY(mutex_) = 0;  // committed, not popped
  bool finished_ SPER_GUARDED_BY(mutex_) = false;
  bool closed_ SPER_GUARDED_BY(mutex_) = false;
};

}  // namespace sper

#endif  // SPER_PARALLEL_SPSC_RING_H_
