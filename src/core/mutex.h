#ifndef SPER_CORE_MUTEX_H_
#define SPER_CORE_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.h"

/// \file mutex.h
/// Annotated synchronization primitives: thin wrappers over std::mutex /
/// std::unique_lock / std::condition_variable that carry the Clang
/// thread-safety attributes (core/thread_annotations.h). Every locking
/// site in the library uses these instead of the std types so that
/// -Wthread-safety can prove lock discipline over the whole concurrency
/// substrate (thread pool, SPSC ring, emission pipeline, resolver
/// admission, metric registry, fault registry).
///
/// CondVar deliberately has no predicate-taking Wait: the analysis sees a
/// predicate lambda as an unrelated lock-free function and flags every
/// guarded read inside it. Callers write the loop explicitly —
///
///   MutexLock lock(mutex_);
///   while (!ReadyLocked()) cv_.Wait(lock);
///
/// — with the guarded predicate in a SPER_REQUIRES(mutex_) member. Wait
/// releases and reacquires the capability internally; from the analysis's
/// point of view (and the caller's) the lock is held throughout.

namespace sper {

class SPER_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SPER_ACQUIRE() { mu_.lock(); }
  void Unlock() SPER_RELEASE() { mu_.unlock(); }
  bool TryLock() SPER_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped holder: acquires on construction, releases on destruction (the
/// lock_guard/unique_lock of the annotated world). CondVar waits take the
/// holder, not the mutex, so a wait can only be written under a live lock.
class SPER_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SPER_ACQUIRE(mutex) : lock_(mutex.mu_) {}
  ~MutexLock() SPER_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`'s mutex and blocks until notified (or
  /// spuriously woken — always re-check the predicate in a loop). The
  /// mutex is reacquired before returning.
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Like Wait, but also returns (std::cv_status::timeout) once
  /// `deadline` passes. Templated so callers pass any clock's time_point
  /// (the serving stack uses CancelToken::Clock deadlines).
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      MutexLock& lock, std::chrono::time_point<Clock, Duration> deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sper

#endif  // SPER_CORE_MUTEX_H_
