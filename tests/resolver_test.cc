// Unified Resolver serving API (src/engine/resolver.h). The contract
// under test:
//
// - Resolver::Create validates ResolverOptions with a clear error Status
//   (no silent fallbacks) and picks plain vs sharded serving;
// - ProgressiveEngine and ShardedEngine are interchangeable behind the
//   abstract Engine interface (budget, stats, stream);
// - ResolverSession slices concatenate bit-identically to one un-batched
//   drain at every (method, ER type, shards, lookahead, batch size)
//   combination, including under concurrent ticketed FIFO admission;
// - per-request pay-as-you-go: zero-budget requests buy nothing, the
//   global budget exhausts mid-slice with the flag set.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "datagen/datagen.h"
#include "engine/progressive_engine.h"
#include "engine/resolver.h"
#include "engine/sharded_engine.h"

namespace sper {
namespace {

ProfileStore DirtyStore() {
  Result<DatasetBundle> ds = GenerateDataset("restaurant", {});
  EXPECT_TRUE(ds.ok());
  return std::move(ds.value().store);
}

ProfileStore CleanCleanStore() {
  DatagenOptions gen;
  gen.scale = 0.1;
  Result<DatasetBundle> ds = GenerateDataset("movies", gen);
  EXPECT_TRUE(ds.ok());
  return std::move(ds.value().store);
}

std::vector<Comparison> Drain(ProgressiveEmitter* emitter,
                              std::size_t limit) {
  std::vector<Comparison> out;
  while (out.size() < limit) {
    std::optional<Comparison> c = emitter->Next();
    if (!c.has_value()) break;
    out.push_back(*c);
  }
  return out;
}

void ExpectSameSequence(const std::vector<Comparison>& a,
                        const std::vector<Comparison>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].i, b[k].i) << "position " << k;
    EXPECT_EQ(a[k].j, b[k].j) << "position " << k;
    EXPECT_EQ(a[k].weight, b[k].weight) << "position " << k;
  }
}

std::unique_ptr<Resolver> MustCreate(const ProfileStore& store,
                                     const ResolverOptions& options) {
  Result<std::unique_ptr<Resolver>> resolver =
      Resolver::Create(store, options);
  EXPECT_TRUE(resolver.ok()) << resolver.status().ToString();
  return std::move(resolver).value();
}

// ------------------------------------------------------ options validation

TEST(ResolverOptionsTest, CreateRejectsInvalidOptionsWithClearStatus) {
  const ProfileStore store = DirtyStore();

  ResolverOptions zero_threads;
  zero_threads.num_threads = 0;
  Result<std::unique_ptr<Resolver>> r1 = Resolver::Create(store, zero_threads);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r1.status().message().find("num_threads"), std::string::npos);

  ResolverOptions zero_shards;
  zero_shards.num_shards = 0;
  EXPECT_EQ(Resolver::Create(store, zero_shards).status().code(),
            StatusCode::kInvalidArgument);

  ResolverOptions too_many_shards;
  too_many_shards.num_shards = ResolverOptions::kMaxShards + 1;
  EXPECT_EQ(Resolver::Create(store, too_many_shards).status().code(),
            StatusCode::kInvalidArgument);

  ResolverOptions huge_lookahead;
  huge_lookahead.lookahead = ResolverOptions::kMaxLookahead + 1;
  EXPECT_EQ(Resolver::Create(store, huge_lookahead).status().code(),
            StatusCode::kInvalidArgument);

  // PSN without a schema key used to abort inside the engine; the factory
  // reports it as a client error instead.
  ResolverOptions psn;
  psn.method = MethodId::kPsn;
  Result<std::unique_ptr<Resolver>> r2 = Resolver::Create(store, psn);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r2.status().message().find("schema"), std::string::npos);

  ResolverOptions bad_kmax;
  bad_kmax.method = MethodId::kPps;
  bad_kmax.pps_kmax = 0;
  EXPECT_EQ(Resolver::Create(store, bad_kmax).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ResolverOptionsTest, CreatePicksPlainAndShardedEngines) {
  const ProfileStore store = DirtyStore();
  ResolverOptions options;
  std::unique_ptr<Resolver> plain = MustCreate(store, options);
  EXPECT_EQ(plain->num_shards(), 1u);
  EXPECT_EQ(plain->name(), "PPS");

  options.num_shards = 4;
  std::unique_ptr<Resolver> sharded = MustCreate(store, options);
  EXPECT_EQ(sharded->num_shards(), 4u);
  EXPECT_EQ(sharded->engine().num_shards(), 4u);
  EXPECT_EQ(sharded->init_stats().shard_sizes.size(), 4u);
}

// ------------------------------------------- Engine interface polymorphism

TEST(EngineInterfaceTest, PlainAndShardedBehaveIdenticallyThroughBase) {
  const ProfileStore store = DirtyStore();

  EngineConfig config;
  config.method = MethodId::kPps;
  config.budget = 40;

  std::vector<std::unique_ptr<Engine>> engines;
  engines.push_back(std::make_unique<ProgressiveEngine>(store, config));
  engines.push_back(std::make_unique<ShardedEngine>(store, config, 4));

  for (std::unique_ptr<Engine>& engine : engines) {
    SCOPED_TRACE(std::string("shards=") +
                 std::to_string(engine->num_shards()));
    EXPECT_EQ(engine->name(), "PPS");
    EXPECT_EQ(engine->emitted(), 0u);
    EXPECT_FALSE(engine->BudgetExhausted());
    EXPECT_GT(engine->init_stats().num_blocks, 0u);
    EXPECT_GT(engine->init_stats().aggregate_cardinality, 0u);
    // The budget contract lives in the shared BudgetedEngine base.
    const std::vector<Comparison> emitted = Drain(engine.get(), 1000000);
    EXPECT_EQ(emitted.size(), 40u);
    EXPECT_EQ(engine->emitted(), 40u);
    EXPECT_TRUE(engine->BudgetExhausted());
    EXPECT_FALSE(engine->Next().has_value());
  }
}

// --------------------------------------------- session batching determinism

struct ResolverCase {
  MethodId method;
  bool clean_clean;
};

class SessionDeterminismTest : public ::testing::TestWithParam<ResolverCase> {
};

TEST_P(SessionDeterminismTest, SlicesConcatenateToUnbatchedDrain) {
  const ProfileStore store =
      GetParam().clean_clean ? CleanCleanStore() : DirtyStore();
  constexpr std::uint64_t kBudget = 1500;

  for (std::size_t num_shards : {std::size_t{1}, std::size_t{4}}) {
    ResolverOptions options;
    options.method = GetParam().method;
    options.num_shards = num_shards;
    options.budget = kBudget;

    // The reference: one un-batched drain of the whole budgeted stream.
    const std::vector<Comparison> reference =
        Drain(MustCreate(store, options).get(), 1000000);
    ASSERT_FALSE(reference.empty());

    for (std::size_t lookahead : {std::size_t{0}, std::size_t{4}}) {
      for (std::size_t batch : {std::size_t{1}, std::size_t{7},
                                std::size_t{256}}) {
        ResolverOptions batched = options;
        batched.lookahead = lookahead;
        std::unique_ptr<Resolver> resolver = MustCreate(store, batched);
        ResolverSession session = resolver->OpenSession();
        std::vector<Comparison> concatenated;
        for (;;) {
          ResolveResult slice = session.Resolve({batch, batch});
          EXPECT_LE(slice.comparisons.size(), batch);
          concatenated.insert(concatenated.end(),
                              slice.comparisons.begin(),
                              slice.comparisons.end());
          if (slice.comparisons.empty() || slice.budget_exhausted ||
              slice.stream_exhausted) {
            break;
          }
        }
        SCOPED_TRACE("shards=" + std::to_string(num_shards) +
                     " lookahead=" + std::to_string(lookahead) +
                     " batch=" + std::to_string(batch));
        ExpectSameSequence(concatenated, reference);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PpsAndPbs, SessionDeterminismTest,
    ::testing::Values(ResolverCase{MethodId::kPps, false},
                      ResolverCase{MethodId::kPps, true},
                      ResolverCase{MethodId::kPbs, false},
                      ResolverCase{MethodId::kPbs, true}),
    [](const ::testing::TestParamInfo<ResolverCase>& info) {
      std::string name(ToString(info.param.method));
      name += info.param.clean_clean ? "_CleanClean" : "_Dirty";
      return name;
    });

// --------------------------------------------------- per-request budgets

TEST(ResolverSessionTest, GlobalBudgetExhaustsMidBatch) {
  const ProfileStore store = DirtyStore();
  ResolverOptions options;
  options.budget = 25;
  std::unique_ptr<Resolver> resolver = MustCreate(store, options);
  ResolverSession session = resolver->OpenSession();

  ResolveResult first = session.Resolve({10, 0});
  EXPECT_EQ(first.comparisons.size(), 10u);
  EXPECT_FALSE(first.budget_exhausted);

  ResolveResult second = session.Resolve({10, 0});
  EXPECT_EQ(second.comparisons.size(), 10u);

  // The third request pays for 10 but the global budget only covers 5:
  // the slice comes back short with the flag set.
  ResolveResult third = session.Resolve({10, 0});
  EXPECT_EQ(third.comparisons.size(), 5u);
  EXPECT_TRUE(third.budget_exhausted);
  EXPECT_FALSE(third.stream_exhausted);

  // Requests after exhaustion buy nothing and say why.
  ResolveResult fourth = session.Resolve({10, 0});
  EXPECT_TRUE(fourth.comparisons.empty());
  EXPECT_TRUE(fourth.budget_exhausted);

  EXPECT_TRUE(resolver->BudgetExhausted());
  EXPECT_EQ(resolver->emitted(), 25u);
  EXPECT_EQ(session.requests_served(), 4u);
  EXPECT_EQ(session.delivered(), 25u);
}

TEST(ResolverSessionTest, ZeroBudgetRequestBuysNothingAndConsumesNothing) {
  const ProfileStore store = DirtyStore();
  std::unique_ptr<Resolver> reference = MustCreate(store, {});
  const std::optional<Comparison> head = reference->Next();
  ASSERT_TRUE(head.has_value());

  std::unique_ptr<Resolver> resolver = MustCreate(store, {});
  ResolverSession session = resolver->OpenSession();
  ResolveResult probe = session.Resolve({0, 0});
  EXPECT_TRUE(probe.comparisons.empty());
  EXPECT_FALSE(probe.budget_exhausted);
  EXPECT_EQ(resolver->emitted(), 0u);

  // The probe did not advance the stream: the next request still gets
  // the true head of the ranked stream.
  ResolveResult next = session.Resolve({1, 0});
  ASSERT_EQ(next.comparisons.size(), 1u);
  EXPECT_EQ(next.comparisons[0].i, head->i);
  EXPECT_EQ(next.comparisons[0].j, head->j);
  EXPECT_EQ(next.comparisons[0].weight, head->weight);
}

TEST(ResolverSessionTest, MaxBatchCapsTheSliceWithoutSpendingTheRest) {
  const ProfileStore store = DirtyStore();
  std::unique_ptr<Resolver> resolver = MustCreate(store, {});
  ResolverSession session = resolver->OpenSession();
  ResolveResult slice = session.Resolve({/*budget=*/100, /*max_batch=*/7});
  EXPECT_EQ(slice.comparisons.size(), 7u);
  // Pay only for what is delivered: the un-drawn 93 stay in the stream.
  EXPECT_EQ(resolver->emitted(), 7u);
}

// ------------------------------------------------- ticketed FIFO admission

TEST(ResolverSessionTest, ConcurrentClientsReassembleToOneDrain) {
  const ProfileStore store = DirtyStore();
  ResolverOptions options;
  options.budget = 595;

  const std::vector<Comparison> reference =
      Drain(MustCreate(store, options).get(), 1000000);
  ASSERT_EQ(reference.size(), 595u);

  std::unique_ptr<Resolver> resolver = MustCreate(store, options);
  struct Slice {
    std::uint64_t ticket;
    std::vector<Comparison> comparisons;
  };
  std::vector<std::vector<Slice>> per_thread(4);
  {
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < per_thread.size(); ++t) {
      clients.emplace_back([&, t] {
        // Each client runs its own session against the shared resolver.
        ResolverSession session = resolver->OpenSession();
        for (;;) {
          ResolveResult result = session.Resolve({7, 0});
          const bool done = result.comparisons.empty();
          per_thread[t].push_back(
              {result.ticket, std::move(result.comparisons)});
          if (done) break;
        }
      });
    }
    for (std::thread& client : clients) client.join();
  }

  // Reassembling the slices in ticket order recovers the exact un-batched
  // drain, whatever interleaving the scheduler produced.
  std::vector<Slice> all;
  for (std::vector<Slice>& slices : per_thread) {
    for (Slice& slice : slices) all.push_back(std::move(slice));
  }
  std::sort(all.begin(), all.end(),
            [](const Slice& a, const Slice& b) { return a.ticket < b.ticket; });
  std::vector<Comparison> concatenated;
  for (std::size_t k = 0; k < all.size(); ++k) {
    EXPECT_EQ(all[k].ticket, k) << "tickets must be dense";
    concatenated.insert(concatenated.end(), all[k].comparisons.begin(),
                        all[k].comparisons.end());
  }
  ExpectSameSequence(concatenated, reference);
}

}  // namespace
}  // namespace sper
