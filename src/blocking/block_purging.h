#ifndef SPER_BLOCKING_BLOCK_PURGING_H_
#define SPER_BLOCKING_BLOCK_PURGING_H_

#include "blocking/block_collection.h"

/// \file block_purging.h
/// Block Purging [12] (workflow step 2): discards oversized blocks that
/// correspond to stop words. The paper's configuration drops every block
/// containing more than 10% of the input profiles.

namespace sper {

/// Options for Block Purging.
struct BlockPurgingOptions {
  /// A block is purged when |b| > max_size_ratio * |P|.
  double max_size_ratio = 0.1;
  /// Threads for the scan/threshold pass (survivor sizing + keep
  /// decisions). The output collection is identical at every thread
  /// count; the survivor build itself stays sequential (CSR append).
  std::size_t num_threads = 1;
};

/// Returns a new collection without the purged blocks. `num_profiles` is
/// |P| (total across both sources for Clean-Clean ER). Relative block
/// order is preserved.
BlockCollection BlockPurging(const BlockCollection& input,
                             std::size_t num_profiles,
                             const BlockPurgingOptions& options = {});

}  // namespace sper

#endif  // SPER_BLOCKING_BLOCK_PURGING_H_
