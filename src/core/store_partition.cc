#include "core/store_partition.h"

#include <utility>

namespace sper {

std::vector<StoreShard> PartitionStore(const ProfileStore& store,
                                       std::size_t num_shards) {
  if (num_shards == 0) num_shards = 1;

  // Collect the shard-local profile subsets in ascending global-id order,
  // source 1 before source 2, so local ids preserve both the relative
  // order and the source boundary of the parent store.
  std::vector<std::vector<Profile>> source1(num_shards);
  std::vector<std::vector<Profile>> source2(num_shards);
  std::vector<std::vector<ProfileId>> to_global(num_shards);
  for (const Profile& p : store.profiles()) {
    const std::size_t s = ShardOf(p.id(), num_shards);
    Profile copy(p.attributes());
    if (store.InSource1(p.id())) {
      source1[s].push_back(std::move(copy));
    } else {
      source2[s].push_back(std::move(copy));
    }
  }
  // Source-1 members come first in every shard store, and both loops visit
  // ids ascending, so appending source-1 ids then source-2 ids yields
  // to_global[local] for the dense local ids the shard store will assign.
  for (const Profile& p : store.profiles()) {
    if (store.InSource1(p.id())) {
      to_global[ShardOf(p.id(), num_shards)].push_back(p.id());
    }
  }
  for (const Profile& p : store.profiles()) {
    if (!store.InSource1(p.id())) {
      to_global[ShardOf(p.id(), num_shards)].push_back(p.id());
    }
  }

  std::vector<StoreShard> shards;
  shards.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    ProfileStore local =
        store.er_type() == ErType::kCleanClean
            ? ProfileStore::MakeCleanClean(std::move(source1[s]),
                                           std::move(source2[s]))
            : ProfileStore::MakeDirty(std::move(source1[s]));
    shards.push_back({std::move(local), std::move(to_global[s])});
  }
  return shards;
}

}  // namespace sper
