#ifndef SPER_DATAGEN_DATAGEN_H_
#define SPER_DATAGEN_DATAGEN_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/status.h"
#include "datagen/dataset.h"

/// \file datagen.h
/// Synthetic counterparts of the paper's 7 benchmark datasets (Table 2).
/// Each generator reproduces the statistics the paper's method ranking is
/// sensitive to — profile/match counts, attribute variety, cluster sizes,
/// token overlap, value length and noise type; see DESIGN.md §4 for the
/// per-dataset substitution rationale. The two web-scale datasets are
/// generated at a documented reduced scale.

namespace sper {

/// Generation options.
struct DatagenOptions {
  /// RNG seed; every dataset is a pure function of (name, seed, scale).
  std::uint64_t seed = 7;
  /// Multiplies profile counts; 1.0 reproduces the Table 2 scale (or the
  /// documented reduced scale for dbpedia/freebase).
  double scale = 1.0;
};

/// Generates one of: "census", "restaurant", "cora", "cddb" (Dirty ER);
/// "movies", "dbpedia", "freebase" (Clean-Clean ER).
Result<DatasetBundle> GenerateDataset(std::string_view name,
                                      const DatagenOptions& options = {});

/// The four structured (Dirty ER) dataset names, Table 2 order.
const std::vector<std::string>& StructuredDatasetNames();
/// The three large heterogeneous (Clean-Clean ER) dataset names.
const std::vector<std::string>& HeterogeneousDatasetNames();

// Individual generators (exposed for tests; prefer GenerateDataset).
DatasetBundle GenerateCensus(const DatagenOptions& options);
DatasetBundle GenerateRestaurant(const DatagenOptions& options);
DatasetBundle GenerateCora(const DatagenOptions& options);
DatasetBundle GenerateCddb(const DatagenOptions& options);
DatasetBundle GenerateMovies(const DatagenOptions& options);
DatasetBundle GenerateDbpedia(const DatagenOptions& options);
DatasetBundle GenerateFreebase(const DatagenOptions& options);

}  // namespace sper

#endif  // SPER_DATAGEN_DATAGEN_H_
