#ifndef SPER_CORE_THREAD_ANNOTATIONS_H_
#define SPER_CORE_THREAD_ANNOTATIONS_H_

/// \file thread_annotations.h
/// Clang Thread Safety Analysis attributes behind SPER_-prefixed macros.
/// Under Clang with -Wthread-safety (CMake option SPER_THREAD_SAFETY,
/// default ON there) the analysis proves lock discipline at compile time:
/// every read/write of a SPER_GUARDED_BY member must hold the named
/// capability, and every SPER_REQUIRES function must be called with it
/// held. On other compilers the macros expand to nothing, so annotated
/// code stays portable.
///
/// The annotated primitives live in core/mutex.h (sper::Mutex /
/// MutexLock / CondVar). Conventions used across the codebase:
///
///   - every mutex-guarded field carries SPER_GUARDED_BY(mutex_);
///   - condition-variable waits are explicit `while (!PredLocked())`
///     loops (never predicate lambdas, which the analysis treats as
///     lock-free functions), with guarded predicates factored into
///     private `...Locked()` members annotated SPER_REQUIRES(mutex_);
///   - the rare spot the analysis cannot follow (e.g. a scope-exit
///     helper mutating guarded state while its enclosing function holds
///     the lock) is annotated SPER_NO_THREAD_SAFETY_ANALYSIS with a
///     comment saying why it is safe.
///
/// tests/thread_safety_compile_test proves the enforcement end: a
/// GUARDED_BY access without the lock must fail the build under Clang.

#if defined(__clang__)
#define SPER_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SPER_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a capability (a lock). The string names it in
/// diagnostics ("mutex 'mu_' not held...").
#define SPER_CAPABILITY(x) SPER_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases
/// a capability (sper::MutexLock).
#define SPER_SCOPED_CAPABILITY SPER_THREAD_ANNOTATION(scoped_lockable)

/// The field may only be accessed while holding capability `x`.
#define SPER_GUARDED_BY(x) SPER_THREAD_ANNOTATION(guarded_by(x))

/// The pointee (not the pointer) is guarded by capability `x`.
#define SPER_PT_GUARDED_BY(x) SPER_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called while holding the listed capabilities.
#define SPER_REQUIRES(...) \
  SPER_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function acquires the listed capabilities (held on return).
#define SPER_ACQUIRE(...) \
  SPER_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities.
#define SPER_RELEASE(...) \
  SPER_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function tries to acquire the capability; the first argument is
/// the return value meaning success.
#define SPER_TRY_ACQUIRE(...) \
  SPER_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The function must be called WITHOUT the listed capabilities held
/// (deadlock prevention for self-locking functions).
#define SPER_EXCLUDES(...) SPER_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the capability `x`.
#define SPER_RETURN_CAPABILITY(x) SPER_THREAD_ANNOTATION(lock_returned(x))

/// Turns the analysis off for one function. Use only where the analysis
/// cannot follow a correct pattern, and say why in a comment.
#define SPER_NO_THREAD_SAFETY_ANALYSIS \
  SPER_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SPER_CORE_THREAD_ANNOTATIONS_H_
