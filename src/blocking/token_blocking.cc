#include "blocking/token_blocking.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sper {

BlockCollection TokenBlocking(const ProfileStore& store,
                              const TokenBlockingOptions& options) {
  // Token -> member profiles. Profiles are visited in id order and each
  // contributes its *distinct* tokens, so the postings arrive sorted and
  // duplicate-free.
  std::unordered_map<std::string, std::vector<ProfileId>> postings;
  postings.reserve(store.size() * 4);
  for (const Profile& p : store.profiles()) {
    for (std::string& token :
         DistinctProfileTokens(p, options.tokenizer)) {
      postings[std::move(token)].push_back(p.id());
    }
  }

  // Deterministic block order: sort keys lexicographically.
  std::vector<const std::string*> keys;
  keys.reserve(postings.size());
  for (const auto& [token, ids] : postings) keys.push_back(&token);
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });

  BlockCollection collection(store.er_type(), store.split_index());
  for (const std::string* key : keys) {
    auto node = postings.extract(*key);
    Block block{std::move(node.key()), std::move(node.mapped())};
    if (collection.ComputeCardinality(block) == 0) continue;
    collection.Add(std::move(block));
  }
  return collection;
}

}  // namespace sper
