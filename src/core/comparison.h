#ifndef SPER_CORE_COMPARISON_H_
#define SPER_CORE_COMPARISON_H_

#include <cstdint>
#include <tuple>

#include "core/types.h"

/// \file comparison.h
/// The unit of progressive emission: one candidate profile pair with its
/// estimated matching likelihood.

namespace sper {

/// A candidate comparison c_ij with its matching-likelihood weight.
/// The pair is stored canonically with i < j.
struct Comparison {
  ProfileId i = kInvalidProfile;
  ProfileId j = kInvalidProfile;
  double weight = 0.0;

  Comparison() = default;
  /// Builds the canonical (min, max) representation of the pair {a, b}.
  Comparison(ProfileId a, ProfileId b, double w)
      : i(a < b ? a : b), j(a < b ? b : a), weight(w) {}

  bool SamePair(const Comparison& other) const {
    return i == other.i && j == other.j;
  }
};

/// 64-bit canonical key of an unordered profile pair; usable as a hash-set
/// element for O(1) duplicate detection and ground-truth lookup.
inline std::uint64_t PairKey(ProfileId a, ProfileId b) {
  const ProfileId lo = a < b ? a : b;
  const ProfileId hi = a < b ? b : a;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

/// Strict weak order: descending weight, ties broken by ascending (i, j) so
/// that every sort in the library is deterministic.
struct ByWeightDesc {
  bool operator()(const Comparison& a, const Comparison& b) const {
    if (a.weight != b.weight) return a.weight > b.weight;
    return std::tie(a.i, a.j) < std::tie(b.i, b.j);
  }
};

/// Ascending-weight variant used by bounded min-heaps (PPS's SortedStack).
struct ByWeightAsc {
  bool operator()(const Comparison& a, const Comparison& b) const {
    if (a.weight != b.weight) return a.weight < b.weight;
    return std::tie(a.i, a.j) > std::tie(b.i, b.j);
  }
};

}  // namespace sper

#endif  // SPER_CORE_COMPARISON_H_
