#!/usr/bin/env python3
"""Unit tests for tools/lint_determinism.py.

Each rule gets a positive fixture (must flag) and a negative fixture
(must stay silent), plus tests for the comment/string stripper and the
allowlist (suppression and staleness). Run directly or via ctest:
    python3 tests/lint_determinism_test.py
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "tools"))

import lint_determinism as lint  # noqa: E402


def run(files, allow_entries=None):
    allowlist = lint.Allowlist()
    if allow_entries:
        allowlist.entries.update(allow_entries)
    return lint.lint_files(files, allowlist)


def rules(violations):
    return [v.rule for v in violations]


class StripperTest(unittest.TestCase):
    def test_line_comments_are_blanked(self):
        out = lint.strip_comments_and_strings("int x;  // rand() here\n")
        self.assertNotIn("rand", out)
        self.assertIn("int x;", out)

    def test_block_comments_preserve_line_numbers(self):
        src = "a\n/* rand()\n   time() */\nb\n"
        out = lint.strip_comments_and_strings(src)
        self.assertEqual(out.count("\n"), src.count("\n"))
        self.assertNotIn("rand", out)
        self.assertEqual(out.splitlines()[3], "b")

    def test_string_literals_are_blanked(self):
        out = lint.strip_comments_and_strings(
            'const char* s = "steady_clock";\n')
        self.assertNotIn("steady_clock", out)

    def test_raw_strings_are_blanked(self):
        out = lint.strip_comments_and_strings(
            'auto j = R"({"rand": 1})"; int y;\n')
        self.assertNotIn("rand", out)
        self.assertIn("int y;", out)

    def test_escaped_quote_does_not_desync(self):
        out = lint.strip_comments_and_strings(
            'const char* s = "a\\"b"; rand();\n')
        self.assertIn("rand();", out)


class UnorderedIterationTest(unittest.TestCase):
    def test_flags_range_for_over_unordered_map(self):
        files = {"src/x/a.cc": """
            #include <unordered_map>
            void f() {
              std::unordered_map<int, int> m;
              for (const auto& [k, v] : m) { use(k, v); }
            }
        """}
        self.assertIn("DET001", rules(run(files)))

    def test_flags_explicit_begin_walk(self):
        files = {"src/x/a.cc": """
            std::unordered_set<int> s;
            void f() { for (auto it = s.begin(); it != s.end(); ++it) {} }
        """}
        self.assertIn("DET001", rules(run(files)))

    def test_flags_alias_declared_in_another_file(self):
        files = {
            "src/x/types.h": "using PostingsMap = "
                             "std::unordered_map<std::string, int>;\n",
            "src/x/b.cc": """
                PostingsMap shard;
                void f() { for (const auto& kv : shard) { use(kv); } }
            """,
        }
        self.assertIn("DET001", rules(run(files)))

    def test_flags_unordered_accessor_range_for(self):
        files = {"src/x/a.cc": """
            void f(const GroundTruth& truth) {
              for (std::uint64_t key : truth.pairs()) { write(key); }
            }
        """}
        self.assertIn("DET001", rules(run(files)))

    def test_silent_on_membership_only_use(self):
        files = {"src/x/a.cc": """
            std::unordered_set<std::uint64_t> seen;
            bool f(std::uint64_t k) { return seen.insert(k).second; }
        """}
        self.assertEqual(rules(run(files)), [])

    def test_silent_on_ordered_map_iteration(self):
        files = {"src/x/a.cc": """
            std::map<std::string, int> m;
            void f() { for (const auto& kv : m) { use(kv); } }
        """}
        self.assertEqual(rules(run(files)), [])

    def test_silent_on_vector_named_like_nothing_unordered(self):
        files = {"src/x/a.cc": """
            std::vector<int> keys;
            void f() { for (int k : keys) { use(k); } }
        """}
        self.assertEqual(rules(run(files)), [])


class BannedRandomTest(unittest.TestCase):
    def test_flags_rand_call(self):
        files = {"src/x/a.cc": "int f() { return rand(); }\n"}
        self.assertIn("DET002", rules(run(files)))

    def test_flags_time_null(self):
        files = {"src/x/a.cc": "long f() { return time(nullptr); }\n"}
        self.assertIn("DET002", rules(run(files)))

    def test_flags_random_device(self):
        files = {"src/x/a.cc":
                 "std::mt19937 g{std::random_device{}()};\n"}
        self.assertIn("DET002", rules(run(files)))

    def test_silent_on_seeded_mt19937(self):
        files = {"src/x/a.cc": "std::mt19937_64 gen(options.seed);\n"}
        self.assertEqual(rules(run(files)), [])

    def test_silent_on_members_named_time(self):
        files = {"src/x/a.cc":
                 "double f(const Span& s) { return s.time(); }\n"}
        self.assertEqual(rules(run(files)), [])


class RawClockTest(unittest.TestCase):
    def test_flags_steady_clock_outside_clock_home(self):
        files = {"src/parallel/a.h":
                 "using Clock = std::chrono::steady_clock;\n"}
        self.assertIn("DET003", rules(run(files)))

    def test_allows_clock_home_itself(self):
        files = {lint.CLOCK_HOME:
                 "using Clock = std::chrono::steady_clock;\n"}
        self.assertEqual(rules(run(files)), [])

    def test_silent_on_stopwatch_clock_alias(self):
        files = {"src/parallel/a.h":
                 "using Clock = obs::Stopwatch::Clock;\n"}
        self.assertEqual(rules(run(files)), [])

    def test_flags_raw_clock_in_serving_layer(self):
        # The QoS admission controller must take time from an injected
        # obs::ClockSource, never read a clock itself.
        files = {"src/serving/qos_helper.cc":
                 "auto t = std::chrono::steady_clock::now();\n"}
        self.assertIn("DET003", rules(run(files)))

    def test_silent_on_injected_clock_source_in_serving(self):
        files = {"src/serving/qos_helper.cc":
                 "const std::uint64_t now = clock_->NowNanos();\n"}
        self.assertEqual(rules(run(files)), [])


class BareThrowTest(unittest.TestCase):
    def test_flags_throw_in_producer_code(self):
        files = {"src/parallel/a.cc":
                 "void f() { throw std::runtime_error(\"x\"); }\n"}
        self.assertIn("DET004", rules(run(files)))

    def test_allows_rethrow(self):
        files = {"src/parallel/a.cc":
                 "void f() { try { g(); } catch (...) { throw; } }\n"}
        self.assertEqual(rules(run(files)), [])

    def test_silent_outside_producer_dirs(self):
        files = {"src/io/a.cc":
                 "void f() { throw std::runtime_error(\"x\"); }\n"}
        self.assertEqual(rules(run(files)), [])


class BannedStrtodTest(unittest.TestCase):
    def test_flags_atoi(self):
        files = {"src/x/a.cc": "int f(const char* s) { return atoi(s); }\n"}
        self.assertIn("DET005", rules(run(files)))

    def test_silent_on_from_chars(self):
        files = {"src/x/a.cc":
                 "auto r = std::from_chars(b, e, value);\n"}
        self.assertEqual(rules(run(files)), [])


class BannedIdentifierTest(unittest.TestCase):
    def test_flags_removed_struct_name(self):
        files = {"src/x/a.cc": "EngineOptions options;\n"}
        self.assertIn("DET006", rules(run(files)))

    def test_silent_when_name_only_in_comment(self):
        files = {"src/x/a.cc":
                 "// EngineOptions was removed in PR 8.\nint x;\n"}
        self.assertEqual(rules(run(files)), [])

    def test_silent_on_new_names(self):
        files = {"src/x/a.cc":
                 "EngineConfig config;\nInitStats stats;\n"}
        self.assertEqual(rules(run(files)), [])


class AllowlistTest(unittest.TestCase):
    BAD = {"src/x/a.cc": """
        std::unordered_map<int, int> m;
        void f() { for (const auto& kv : m) { use(kv); } }
    """}

    def test_entry_suppresses_matching_rule(self):
        out = run(self.BAD, {("src/x/a.cc", "DET001"): "re-sorted after"})
        self.assertEqual(rules(out), [])

    def test_entry_does_not_suppress_other_rules(self):
        files = dict(self.BAD)
        files["src/x/b.cc"] = "int f() { return rand(); }\n"
        out = run(files, {("src/x/a.cc", "DET001"): "re-sorted after"})
        self.assertEqual(rules(out), ["DET002"])

    def test_stale_entry_is_flagged(self):
        files = {"src/x/clean.cc": "int x;\n"}
        out = run(files, {("src/x/clean.cc", "DET001"): "obsolete"})
        self.assertEqual(rules(out), ["STALE"])

    def test_malformed_entry_rejected(self):
        import tempfile
        with tempfile.NamedTemporaryFile(
                "w", suffix=".txt", delete=False) as f:
            f.write("src/x/a.cc|DET001\n")  # missing justification
            path = f.name
        try:
            with self.assertRaises(ValueError):
                lint.Allowlist.load(path)
        finally:
            os.unlink(path)


class RepoIntegrationTest(unittest.TestCase):
    """The lint must be clean on the repo it ships in."""

    def test_repo_is_clean(self):
        root = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir)
        self.assertEqual(lint.main(["--root", root]), 0)


if __name__ == "__main__":
    unittest.main()
