// Ablation: the Token Blocking Workflow steps (Sec. 7 parameter
// configuration). Block Purging (drop blocks holding >10% of profiles)
// and Block Filtering (keep each profile in its 80% smallest blocks) are
// toggled; the sweep reports the resulting block statistics and PPS's
// early quality.
//
//   $ ./bench_ablation_workflow [--scale=S]

#include "bench_util.h"
#include "progressive/workflow.h"

int main(int argc, char** argv) {
  using namespace sper;
  using namespace sper::bench;
  const BenchArgs args = ParseArgs(argc, argv);

  std::printf("Ablation: Token Blocking Workflow steps (PPS)\n");

  // Two regimes: a word-token dataset where Block Filtering does the work
  // (movies has no block above the 10% purge threshold at this scale) and
  // a URI-heavy dataset where Block Purging is existential — boilerplate
  // tokens (http, rdf, ...) occur in nearly every profile.
  struct Target {
    const char* dataset;
    double scale;
  };
  for (const Target& target :
       {Target{"movies", 0.2}, Target{"freebase", 0.05}}) {
    DatagenOptions gen;
    gen.scale = target.scale * args.scale;
    Result<DatasetBundle> dataset = GenerateDataset(target.dataset, gen);
    if (!dataset.ok()) return 1;

    EvalOptions options;
    options.ecstar_max = 5.0;
    options.auc_at = {1.0, 5.0};
    ProgressiveEvaluator evaluator(dataset.value().truth, options);

    std::printf("\n== %s at %.2f scale ==\n", target.dataset, target.scale);
    TextTable table({"purging", "filtering", "|B|", "||B||", "AUC*@1",
                     "AUC*@5", "recall@5", "init (s)"});
    for (bool purging : {true, false}) {
      for (bool filtering : {true, false}) {
        MethodConfig config;
        config.workflow.enable_purging = purging;
        config.workflow.enable_filtering = filtering;
        BlockCollection blocks =
            BuildTokenWorkflowBlocks(dataset.value().store, config.workflow);
        RunResult run = evaluator.Run([&] {
          return MakeResolver(MethodId::kPps, dataset.value(), config);
        });
        table.AddRow({purging ? "on" : "off", filtering ? "on" : "off",
                      FormatCount(blocks.size()),
                      FormatCount(blocks.AggregateCardinality()),
                      FormatDouble(run.auc_norm[0], 3),
                      FormatDouble(run.auc_norm[1], 3),
                      FormatDouble(run.final_recall, 3),
                      FormatDouble(run.init_seconds, 2)});
      }
    }
    table.Print();
  }

  std::printf("\nReading: on URI data, purging removes the boilerplate\n"
              "blocks and slashes ||B|| by orders of magnitude at no recall\n"
              "cost; on clean word tokens it may not trigger at all, and\n"
              "filtering does the trimming. Both together are the paper's\n"
              "configuration.\n");
  return 0;
}
