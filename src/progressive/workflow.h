#ifndef SPER_PROGRESSIVE_WORKFLOW_H_
#define SPER_PROGRESSIVE_WORKFLOW_H_

#include "blocking/block_collection.h"
#include "blocking/block_filtering.h"
#include "blocking/block_purging.h"
#include "blocking/token_blocking.h"
#include "core/profile_store.h"
#include "obs/telemetry.h"

/// \file workflow.h
/// The Token Blocking Workflow of the paper's experimental setup (Sec. 7):
///   (1) schema-agnostic Standard (Token) Blocking,
///   (2) Block Purging   (drop blocks with > 10% of the profiles),
///   (3) Block Filtering (keep every profile in 80% of its smallest blocks).
/// The result is the redundancy-positive block collection PBS and PPS
/// consume (step 4, edge weighting, happens inside those methods).

namespace sper {

/// Options of the Token Blocking Workflow.
struct TokenWorkflowOptions {
  TokenBlockingOptions token_blocking;
  BlockPurgingOptions purging;
  BlockFilteringOptions filtering;
  /// Disable individual steps (used by the workflow ablation bench).
  bool enable_purging = true;
  bool enable_filtering = true;
  /// Threads for the parallelizable steps (token blocking, purging's
  /// scan/threshold pass, filtering). Overrides the per-step num_threads
  /// knobs; the collection is identical at every thread count.
  std::size_t num_threads = 1;
  /// Telemetry sink for the per-step phase timers (spans + gauges);
  /// default-constructed = disabled.
  obs::TelemetryScope telemetry;
};

/// Per-step wall-clock seconds of one workflow run (always filled, even
/// with telemetry disabled or compiled out — feeds InitStats::phases).
struct TokenWorkflowTiming {
  double token_blocking_seconds = 0.0;
  double purging_seconds = 0.0;
  double filtering_seconds = 0.0;
};

/// Runs workflow steps 1-3 and returns the resulting block collection.
/// When `timing` is given, fills it with the per-step breakdown.
BlockCollection BuildTokenWorkflowBlocks(
    const ProfileStore& store, const TokenWorkflowOptions& options = {},
    TokenWorkflowTiming* timing = nullptr);

}  // namespace sper

#endif  // SPER_PROGRESSIVE_WORKFLOW_H_
