// Over-the-wire serving cost: the same progressive stream drained
// in-process (un-batched resolver drain) and over a loopback TCP
// connection through net::Server (QoS admission + wire framing), at
// shards 1 and 4.
//
// The loopback path runs 3 concurrent clients, one per priority class
// (kInteractive / kBatch / kBestEffort), each issuing fixed-size
// requests until stream exhaustion. Their slices, re-sorted by resolver
// ticket, must fold to the same FNV-1a digest as the in-process drain —
// "match" in the table is the serving layer's bit-identity guarantee
// holding across sockets, framing and concurrent admission. The bench
// exits 1 on any digest mismatch.
//
//   bench_server_loopback [--scale=S] [--dataset=NAME] [--method=M]
//                         [--batch=B] [--shards=LIST] [--json=PATH]
//
// --json emits one record per (shards, path) with schema bench/BENCH.md;
// server_loopback records carry per-class latency extras
// (<class>_p50_ms / <class>_p99_ms, request send -> response decoded)
// and the shared comparison/request counts.

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "datagen/datagen.h"
#include "engine/resolver.h"
#include "eval/table.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/clock.h"

namespace {

using namespace sper;
using sper::bench::DrainResult;

std::uint64_t NowNs() { return obs::MonotonicClock::Default()->NowNanos(); }

/// Nearest-rank percentile (q in [0, 1]).
double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t rank = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

struct LoopbackArgs {
  double scale = 1.0;
  std::string dataset = "restaurant";
  std::string method = "pps";
  std::uint64_t batch = 2048;
  std::vector<std::size_t> shards = {1, 4};
  std::string json_path;
};

LoopbackArgs ParseLoopbackArgs(int argc, char** argv) {
  LoopbackArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      args.scale = std::strtod(argv[i] + 8, nullptr);
    } else if (std::strncmp(argv[i], "--dataset=", 10) == 0) {
      args.dataset = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--method=", 9) == 0) {
      args.method = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
      args.batch = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      args.shards = sper::bench::ParseSizeList(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      args.json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale=S] [--dataset=NAME] [--method=M] "
                   "[--batch=B] [--shards=LIST] [--json=PATH]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return args;
}

/// One loopback client's haul: its slices keyed by resolver ticket and
/// its per-request latencies (send -> response decoded), milliseconds.
struct ClientHaul {
  std::map<std::uint64_t, std::vector<Comparison>> slices;
  std::vector<double> latencies_ms;
  bool ok = true;
};

void DrainClient(std::uint16_t port, std::uint64_t batch, Priority priority,
                 ClientHaul* haul) {
  Result<net::Client> connected = net::Client::Connect("127.0.0.1", port);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 connected.status().ToString().c_str());
    haul->ok = false;
    return;
  }
  net::Client client = std::move(connected).value();
  for (;;) {
    ResolveRequest request;
    request.budget = batch;
    request.max_batch = batch;
    request.priority = priority;
    const std::uint64_t start = NowNs();
    Result<ResolveResult> attempt = client.ResolveWithRetry(request);
    if (!attempt.ok() || !attempt.value().status.ok()) {
      std::fprintf(stderr, "resolve: %s\n",
                   (attempt.ok() ? attempt.value().status : attempt.status())
                       .ToString()
                       .c_str());
      haul->ok = false;
      return;
    }
    haul->latencies_ms.push_back(static_cast<double>(NowNs() - start) / 1e6);
    const ResolveResult& slice = attempt.value();
    haul->slices[slice.ticket] = slice.comparisons;
    if (slice.stream_exhausted || slice.comparisons.size() < batch) return;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const LoopbackArgs args = ParseLoopbackArgs(argc, argv);
  const std::optional<MethodId> method = ParseMethodId(args.method);
  if (!method.has_value()) {
    std::fprintf(stderr, "unknown method '%s'\n", args.method.c_str());
    return 2;
  }

  DatagenOptions gen;
  gen.scale = args.scale;
  Result<DatasetBundle> dataset = GenerateDataset(args.dataset, gen);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const ProfileStore& store = dataset.value().store;

  std::printf(
      "dataset %s: %zu profiles (scale %.2f), method %s, batch %llu, "
      "3 loopback clients (interactive + batch + best_effort)\n",
      dataset.value().name.c_str(), store.size(), args.scale,
      std::string(ToString(*method)).c_str(),
      static_cast<unsigned long long>(args.batch));

  TextTable table({"shards", "path", "comparisons", "requests", "wall (ms)",
                   "digest"});
  std::vector<sper::bench::JsonRecord> json;
  bool digests_ok = true;

  for (std::size_t shards : args.shards) {
    ResolverOptions options;
    options.method = *method;
    options.num_shards = shards;

    // In-process reference: one un-batched drain.
    DrainResult inproc;
    {
      std::unique_ptr<Resolver> resolver =
          sper::bench::CreateResolverOrDie(store, options);
      const std::uint64_t start = NowNs();
      for (;;) {
        ResolveRequest request;
        request.budget = 1u << 20;
        request.max_batch = 1u << 20;
        ResolveResult slice = resolver->Serve(request);
        ++inproc.requests;
        for (const Comparison& c : slice.comparisons) inproc.Fold(c);
        if (slice.stream_exhausted || slice.comparisons.empty()) break;
      }
      inproc.wall_ms = static_cast<double>(NowNs() - start) / 1e6;
    }
    table.AddRow({std::to_string(shards), "inproc_drain",
                  std::to_string(inproc.emitted),
                  std::to_string(inproc.requests),
                  FormatDouble(inproc.wall_ms, 2), "baseline"});
    sper::bench::JsonRecord inproc_record;
    inproc_record.dataset = dataset.value().name;
    inproc_record.scale = args.scale;
    inproc_record.shards = shards;
    inproc_record.path = "inproc_drain";
    inproc_record.wall_ms = inproc.wall_ms;
    inproc_record.extras.emplace_back(
        "comparisons", static_cast<double>(inproc.emitted));
    json.push_back(std::move(inproc_record));

    // Loopback: a fresh resolver behind net::Server, drained by three
    // concurrent clients, one per priority class.
    std::unique_ptr<Resolver> resolver =
        sper::bench::CreateResolverOrDie(store, options);
    net::ServerOptions server_options;
    Result<std::unique_ptr<net::Server>> started =
        net::Server::Start(*resolver, std::move(server_options));
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.status().ToString().c_str());
      return 1;
    }
    const std::unique_ptr<net::Server> server = std::move(started).value();

    const std::array<Priority, 3> classes = {
        Priority::kInteractive, Priority::kBatch, Priority::kBestEffort};
    std::array<ClientHaul, 3> hauls;
    const std::uint64_t start = NowNs();
    {
      std::vector<std::thread> threads;
      threads.reserve(classes.size());
      for (std::size_t c = 0; c < classes.size(); ++c) {
        threads.emplace_back(DrainClient, server->port(), args.batch,
                             classes[c], &hauls[c]);
      }
      for (std::thread& t : threads) t.join();
    }
    const double wall_ms = static_cast<double>(NowNs() - start) / 1e6;

    // Merge by ticket; tickets are dense, so ordered-map iteration is
    // exactly admission order.
    std::map<std::uint64_t, std::vector<Comparison>> merged;
    std::uint64_t requests = 0;
    bool clients_ok = true;
    for (const ClientHaul& haul : hauls) {
      clients_ok = clients_ok && haul.ok;
      requests += haul.latencies_ms.size();
      for (const auto& [ticket, slice] : haul.slices) {
        merged[ticket] = slice;
      }
    }
    DrainResult loopback;
    for (const auto& [ticket, slice] : merged) {
      for (const Comparison& c : slice) loopback.Fold(c);
    }
    loopback.requests = requests;
    loopback.wall_ms = wall_ms;

    const bool match = clients_ok && loopback.SameStream(inproc);
    digests_ok = digests_ok && match;
    table.AddRow({std::to_string(shards), "server_loopback",
                  std::to_string(loopback.emitted),
                  std::to_string(loopback.requests),
                  FormatDouble(wall_ms, 2),
                  match ? "match" : "MISMATCH"});

    sper::bench::JsonRecord record;
    record.dataset = dataset.value().name;
    record.scale = args.scale;
    record.shards = shards;
    record.batch_size = args.batch;
    record.path = "server_loopback";
    record.wall_ms = wall_ms;
    record.speedup = loopback.wall_ms > 0.0 && inproc.wall_ms > 0.0
                         ? inproc.wall_ms / loopback.wall_ms
                         : 1.0;
    record.extras.emplace_back("comparisons",
                               static_cast<double>(loopback.emitted));
    for (std::size_t c = 0; c < classes.size(); ++c) {
      const std::string cls(ToString(classes[c]));
      record.extras.emplace_back(cls + "_p50_ms",
                                 Percentile(hauls[c].latencies_ms, 0.50));
      record.extras.emplace_back(cls + "_p99_ms",
                                 Percentile(hauls[c].latencies_ms, 0.99));
    }
    json.push_back(std::move(record));

    server->Shutdown();
  }

  table.Print();
  std::printf(
      "\n\"match\" = the 3 concurrent clients' slices, re-sorted by "
      "resolver ticket,\nfold to the same FNV-1a digest as one "
      "in-process un-batched drain: the\nbit-identity guarantee held "
      "across sockets, framing and concurrent admission.\nLatency "
      "extras in the JSON are request-send to response-decoded per "
      "class.\n");

  if (!args.json_path.empty() &&
      !sper::bench::WriteJsonRecords(args.json_path, json)) {
    return 1;
  }
  if (!digests_ok) {
    std::fprintf(stderr,
                 "FAIL: an over-the-wire stream diverged from the "
                 "in-process drain\n");
    return 1;
  }
  return 0;
}
