// Determinism guarantees: the library documents that every run is
// reproducible bit-for-bit given the seeds (DESIGN.md §3). These tests pin
// that contract for every progressive method and for the evaluation layer:
// same store + same options => identical emission sequences, including
// weights.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "datagen/datagen.h"
#include "engine/progressive_engine.h"
#include "eval/evaluator.h"
#include "eval/experiment.h"
#include "progressive/sa_psn.h"
#include "progressive/workflow.h"

namespace sper {
namespace {

std::vector<Comparison> Drain(ProgressiveEmitter* emitter,
                              std::size_t limit) {
  std::vector<Comparison> out;
  while (out.size() < limit) {
    std::optional<Comparison> c = emitter->Next();
    if (!c.has_value()) break;
    out.push_back(*c);
  }
  return out;
}

void ExpectSameSequence(const std::vector<Comparison>& a,
                        const std::vector<Comparison>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].i, b[k].i) << "position " << k;
    EXPECT_EQ(a[k].j, b[k].j) << "position " << k;
    EXPECT_DOUBLE_EQ(a[k].weight, b[k].weight) << "position " << k;
  }
}

class MethodDeterminismTest : public ::testing::TestWithParam<MethodId> {};

TEST_P(MethodDeterminismTest, SameSeedSameEmissionSequence) {
  // Two independent generations and two independent emitters must agree
  // on the first 2000 emissions, weights included.
  Result<DatasetBundle> a = GenerateDataset("restaurant");
  Result<DatasetBundle> b = GenerateDataset("restaurant");
  ASSERT_TRUE(a.ok() && b.ok());
  MethodConfig config;
  std::unique_ptr<ProgressiveEmitter> ea =
      MakeResolver(GetParam(), a.value(), config);
  std::unique_ptr<ProgressiveEmitter> eb =
      MakeResolver(GetParam(), b.value(), config);
  ASSERT_TRUE(ea != nullptr && eb != nullptr);
  ExpectSameSequence(Drain(ea.get(), 2000), Drain(eb.get(), 2000));
}

TEST_P(MethodDeterminismTest, TwoEmittersOnOneStoreAgree) {
  Result<DatasetBundle> dataset = GenerateDataset("census");
  ASSERT_TRUE(dataset.ok());
  MethodConfig config;
  std::unique_ptr<ProgressiveEmitter> ea =
      MakeResolver(GetParam(), dataset.value(), config);
  std::unique_ptr<ProgressiveEmitter> eb =
      MakeResolver(GetParam(), dataset.value(), config);
  ExpectSameSequence(Drain(ea.get(), 2000), Drain(eb.get(), 2000));
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, MethodDeterminismTest,
    ::testing::Values(MethodId::kPsn, MethodId::kSaPsn, MethodId::kSaPsab,
                      MethodId::kLsPsn, MethodId::kGsPsn, MethodId::kPbs,
                      MethodId::kPps),
    [](const ::testing::TestParamInfo<MethodId>& info) {
      std::string name(ToString(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(DeterminismTest, DifferentNeighborListSeedsChangeCoincidentalOrder) {
  // The tie shuffle must actually depend on the seed: with a different
  // seed, SA-PSN's emission order over a dataset with equal-key runs
  // should differ somewhere early.
  Result<DatasetBundle> dataset = GenerateDataset("restaurant");
  ASSERT_TRUE(dataset.ok());
  NeighborListOptions seed_a;
  seed_a.seed = 1;
  NeighborListOptions seed_b;
  seed_b.seed = 2;
  SaPsnEmitter ea(dataset.value().store, seed_a);
  SaPsnEmitter eb(dataset.value().store, seed_b);
  std::vector<Comparison> a = Drain(&ea, 500);
  std::vector<Comparison> b = Drain(&eb, 500);
  ASSERT_EQ(a.size(), b.size());
  bool any_difference = false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (!a[k].SamePair(b[k])) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

// The parallel initialization paths (sharded token index, block
// filtering, edge weighting) promise bit-identical results at every
// thread count. Drain the full emission sequence at 1 and 4 threads and
// require exact equality — weights compared bit-for-bit, not
// approximately.
class ThreadCountInvarianceTest : public ::testing::TestWithParam<MethodId> {
};

TEST_P(ThreadCountInvarianceTest, OneAndFourThreadsEmitIdenticalSequences) {
  Result<DatasetBundle> dataset = GenerateDataset("restaurant");
  ASSERT_TRUE(dataset.ok());
  auto run = [&](std::size_t num_threads) {
    EngineConfig options;
    options.method = GetParam();
    options.num_threads = num_threads;
    ProgressiveEngine engine(dataset.value().store, options);
    return Drain(&engine, 1000000);
  };
  const std::vector<Comparison> one = run(1);
  const std::vector<Comparison> four = run(4);
  ASSERT_EQ(one.size(), four.size());
  ASSERT_GT(one.size(), 0u);
  for (std::size_t k = 0; k < one.size(); ++k) {
    ASSERT_EQ(one[k].i, four[k].i) << "position " << k;
    ASSERT_EQ(one[k].j, four[k].j) << "position " << k;
    // Bit-identical, not EXPECT_DOUBLE_EQ: the parallel merge must not
    // reorder any floating-point accumulation.
    ASSERT_EQ(one[k].weight, four[k].weight) << "position " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(ParallelMethods, ThreadCountInvarianceTest,
                         ::testing::Values(MethodId::kPbs, MethodId::kPps),
                         [](const ::testing::TestParamInfo<MethodId>& info) {
                           return std::string(ToString(info.param));
                         });

TEST(DeterminismTest, WorkflowBlocksAreThreadCountInvariant) {
  // The workflow collection itself (keys, membership, order) must match
  // exactly, whatever the thread count — including counts that do not
  // divide the profile count evenly.
  Result<DatasetBundle> dataset = GenerateDataset("cora");
  ASSERT_TRUE(dataset.ok());
  TokenWorkflowOptions sequential;
  BlockCollection reference =
      BuildTokenWorkflowBlocks(dataset.value().store, sequential);
  for (std::size_t num_threads : {2u, 3u, 4u, 7u}) {
    TokenWorkflowOptions parallel;
    parallel.num_threads = num_threads;
    BlockCollection blocks =
        BuildTokenWorkflowBlocks(dataset.value().store, parallel);
    ASSERT_EQ(blocks.size(), reference.size()) << num_threads << " threads";
    EXPECT_EQ(blocks.AggregateCardinality(),
              reference.AggregateCardinality());
    for (BlockId b = 0; b < blocks.size(); ++b) {
      ASSERT_EQ(blocks.key(b), reference.key(b));
      std::span<const ProfileId> members = blocks.members(b);
      std::span<const ProfileId> expected = reference.members(b);
      ASSERT_TRUE(std::equal(members.begin(), members.end(),
                             expected.begin(), expected.end()));
    }
  }
}

TEST(DeterminismTest, EjsDegreePassIsThreadCountInvariant) {
  // kEjs is the one scheme whose initialization runs a full-graph degree
  // pass; cover it separately from the ARCS-default engine tests.
  Result<DatasetBundle> dataset = GenerateDataset("restaurant");
  ASSERT_TRUE(dataset.ok());
  auto run = [&](std::size_t num_threads) {
    EngineConfig options;
    options.method = MethodId::kPps;
    options.scheme = WeightingScheme::kEjs;
    options.num_threads = num_threads;
    ProgressiveEngine engine(dataset.value().store, options);
    return Drain(&engine, 5000);
  };
  const std::vector<Comparison> one = run(1);
  const std::vector<Comparison> four = run(4);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t k = 0; k < one.size(); ++k) {
    ASSERT_TRUE(one[k].SamePair(four[k])) << "position " << k;
    ASSERT_EQ(one[k].weight, four[k].weight) << "position " << k;
  }
}

TEST(DeterminismTest, EvaluatorRecallIsRunInvariant) {
  // Timing fields vary between runs; effectiveness must not.
  Result<DatasetBundle> dataset = GenerateDataset("census");
  ASSERT_TRUE(dataset.ok());
  EvalOptions options;
  options.ecstar_max = 5.0;
  options.auc_at = {1.0, 5.0};
  ProgressiveEvaluator evaluator(dataset.value().truth, options);
  MethodConfig config;
  auto factory = [&] {
    return MakeResolver(MethodId::kPps, dataset.value(), config);
  };
  RunResult a = evaluator.Run(factory);
  RunResult b = evaluator.Run(factory);
  EXPECT_EQ(a.emissions, b.emissions);
  EXPECT_EQ(a.matches_found, b.matches_found);
  EXPECT_EQ(a.auc_norm, b.auc_norm);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t k = 0; k < a.curve.size(); ++k) {
    EXPECT_DOUBLE_EQ(a.curve[k].recall, b.curve[k].recall);
  }
}

}  // namespace
}  // namespace sper
