#ifndef SPER_PARALLEL_SPSC_RING_H_
#define SPER_PARALLEL_SPSC_RING_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

#include "obs/fault_injection.h"
#include "parallel/cancel.h"

/// \file spsc_ring.h
/// Bounded single-producer/single-consumer ring of reusable slots — the
/// queue primitive of the emission pipeline (emission_pipeline.h). Unlike a
/// value queue, slots are fixed in place and handed out by pointer: the
/// producer fills a slot's existing buffers (no allocation after warm-up)
/// and the consumer returns the slot for reuse once drained. Capacity
/// bounds how far production may run ahead of consumption.

namespace sper {

/// A ring of `capacity` default-constructed T slots with blocking
/// producer/consumer handoff.
///
/// Exactly one producer thread may call AcquireSlot/CommitSlot/
/// FinishProduction and exactly one consumer thread may call Front/
/// PopFront; Close may be called from any thread (typically the consumer
/// abandoning the stream). All transitions are mutex-protected — the ring
/// favors simplicity over lock-free throughput because every slot carries
/// a whole refill batch, so handoffs are rare relative to the work they
/// transport.
template <typename T>
class SpscSlotRing {
 public:
  explicit SpscSlotRing(std::size_t capacity)
      : slots_(std::max<std::size_t>(1, capacity)) {}

  /// Producer: the next free slot to fill, blocking while the ring is
  /// full. Returns nullptr once Close() was called — the producer must
  /// stop. The slot keeps whatever state its previous use left behind
  /// (that is the point: reuse its capacity). `stalled`, when given, is
  /// set to whether the call found the ring full and had to block
  /// (telemetry: producer back-pressure).
  T* AcquireSlot(bool* stalled = nullptr) {
    SPER_FAULT_HIT("ring.acquire_slot");
    std::unique_lock<std::mutex> lock(mutex_);
    if (stalled != nullptr) *stalled = !closed_ && size_ >= slots_.size();
    can_produce_.wait(lock,
                      [this] { return closed_ || size_ < slots_.size(); });
    if (closed_) return nullptr;
    return &slots_[(head_ + size_) % slots_.size()];
  }

  /// Producer: publishes the slot returned by the last AcquireSlot.
  void CommitSlot() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++size_;
    }
    can_consume_.notify_one();
  }

  /// Producer: no further commits will happen; once the committed slots
  /// are drained, Front() returns nullptr.
  void FinishProduction() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      finished_ = true;
    }
    can_consume_.notify_one();
  }

  /// Consumer: the oldest committed slot, blocking until one is committed
  /// or production finished. nullptr when the stream is over (finished and
  /// drained, or closed). `waited`, when given, is set to whether the call
  /// found the ring empty and had to block (telemetry: consumer
  /// starvation).
  T* Front(bool* waited = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (waited != nullptr) *waited = !closed_ && !finished_ && size_ == 0;
    can_consume_.wait(lock,
                      [this] { return closed_ || finished_ || size_ > 0; });
    if (closed_ || size_ == 0) return nullptr;
    return &slots_[head_];
  }

  /// Consumer: like Front(), but gives up once `token` fires — the
  /// deadline-aware wait of the cancellable serving path. Returns the
  /// oldest committed slot as usual; nullptr with *expired = true when
  /// the token fired first (the ring is untouched — a later FrontUntil or
  /// Front picks up exactly where this one left off), or nullptr with
  /// *expired = false when the stream is over (finished and drained, or
  /// closed). A token deadline is honored via wait_until; an explicit
  /// Cancel() with no deadline is noticed within kCancelPollInterval.
  T* FrontUntil(const CancelToken& token, bool* expired,
                bool* waited = nullptr) {
    *expired = false;
    if (!token.valid()) return Front(waited);
    std::unique_lock<std::mutex> lock(mutex_);
    const auto ready = [this] { return closed_ || finished_ || size_ > 0; };
    if (waited != nullptr) *waited = !ready();
    while (!ready()) {
      if (token.cancelled()) {
        *expired = true;
        return nullptr;
      }
      auto wake = CancelToken::Clock::now() + kCancelPollInterval;
      if (token.has_deadline()) wake = std::min(wake, token.deadline());
      can_consume_.wait_until(lock, wake, ready);
    }
    if (closed_ || size_ == 0) return nullptr;
    return &slots_[head_];
  }

  /// Consumer: recycles the slot returned by Front(), unblocking the
  /// producer.
  void PopFront() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      head_ = (head_ + 1) % slots_.size();
      --size_;
    }
    can_produce_.notify_one();
  }

  /// Aborts the stream: both sides unblock and see nullptr. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    can_produce_.notify_all();
    can_consume_.notify_all();
  }

  /// Number of slots.
  std::size_t capacity() const { return slots_.size(); }

  /// Committed-but-unpopped slots right now (telemetry: ring occupancy).
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable can_produce_;
  std::condition_variable can_consume_;
  std::vector<T> slots_;
  std::size_t head_ = 0;  // oldest committed slot
  std::size_t size_ = 0;  // committed, not yet popped
  bool finished_ = false;
  bool closed_ = false;
};

}  // namespace sper

#endif  // SPER_PARALLEL_SPSC_RING_H_
