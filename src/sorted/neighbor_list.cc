#include "sorted/neighbor_list.h"

#include <algorithm>
#include <random>
#include <utility>

namespace sper {

// Sorts (key, profile) placements by key — ties keep profile-id order —
// then optionally shuffles every equal-key run with the seeded RNG.
NeighborList NeighborList::Assemble(
    std::vector<std::pair<std::string, ProfileId>> entries,
    const NeighborListOptions& options) {
  std::sort(entries.begin(), entries.end());

  if (options.shuffle_ties && !entries.empty()) {
    std::mt19937_64 rng(options.seed);
    std::size_t run_start = 0;
    for (std::size_t pos = 1; pos <= entries.size(); ++pos) {
      if (pos == entries.size() || entries[pos].first != entries[run_start].first) {
        if (pos - run_start > 1) {
          std::shuffle(entries.begin() + run_start, entries.begin() + pos,
                       rng);
        }
        run_start = pos;
      }
    }
  }

  NeighborList list;
  list.profiles_.reserve(entries.size());
  list.keys_.reserve(entries.size());
  for (auto& [key, profile] : entries) {
    list.profiles_.push_back(profile);
    list.keys_.push_back(std::move(key));
  }
  return list;
}

NeighborList NeighborList::BuildSchemaAgnostic(
    const ProfileStore& store, const NeighborListOptions& options) {
  std::vector<std::pair<std::string, ProfileId>> entries;
  entries.reserve(store.size() * 8);
  for (const Profile& p : store.profiles()) {
    for (std::string& token : DistinctProfileTokens(p, options.tokenizer)) {
      entries.emplace_back(std::move(token), p.id());
    }
  }
  return Assemble(std::move(entries), options);
}

NeighborList NeighborList::BuildSchemaBased(
    const ProfileStore& store, const SchemaKeyFn& key_fn,
    const NeighborListOptions& options) {
  std::vector<std::pair<std::string, ProfileId>> entries;
  entries.reserve(store.size());
  for (const Profile& p : store.profiles()) {
    std::string key = key_fn(p);
    if (key.empty()) continue;
    entries.emplace_back(std::move(key), p.id());
  }
  return Assemble(std::move(entries), options);
}

}  // namespace sper
