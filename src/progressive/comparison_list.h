#ifndef SPER_PROGRESSIVE_COMPARISON_LIST_H_
#define SPER_PROGRESSIVE_COMPARISON_LIST_H_

#include <algorithm>
#include <vector>

#include "core/comparison.h"

/// \file comparison_list.h
/// The Comparison List shared by all advanced methods (paper Sec. 5): a
/// batch of comparisons sorted in non-increasing matching likelihood,
/// consumed front to back and refilled when empty.

namespace sper {

/// Sorted comparison buffer with O(1) pop.
class ComparisonList {
 public:
  /// Appends a comparison to the unsorted tail.
  void Add(const Comparison& c) { items_.push_back(c); }

  /// Sorts the whole buffer by descending weight (deterministic ties) and
  /// rewinds the cursor. Call once per refill, after the Adds.
  void SortDescending() {
    std::sort(items_.begin(), items_.end(), ByWeightDesc());
    cursor_ = 0;
  }

  /// True when every buffered comparison has been popped.
  bool Empty() const { return cursor_ >= items_.size(); }

  /// Pops the highest-weighted remaining comparison.
  Comparison PopFirst() { return items_[cursor_++]; }

  /// Drops all content (start of a refill).
  void Clear() {
    items_.clear();
    cursor_ = 0;
  }

  /// Comparisons not yet popped.
  std::size_t remaining() const { return items_.size() - cursor_; }

 private:
  std::vector<Comparison> items_;
  std::size_t cursor_ = 0;
};

}  // namespace sper

#endif  // SPER_PROGRESSIVE_COMPARISON_LIST_H_
