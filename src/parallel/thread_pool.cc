#include "parallel/thread_pool.h"

#include <utility>

namespace sper {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  while (!AllDoneLocked()) all_done_.Wait(lock);
  if (first_exception_ != nullptr) {
    std::exception_ptr exception = std::exchange(first_exception_, nullptr);
    std::rethrow_exception(exception);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!WorkAvailableLocked()) work_available_.Wait(lock);
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr exception;
    try {
      task();
    } catch (...) {
      exception = std::current_exception();
    }
    {
      MutexLock lock(mutex_);
      if (exception != nullptr) {
        if (first_exception_ == nullptr) {
          first_exception_ = exception;
        } else {
          // The rethrow slot is taken; make the masked failure countable
          // instead of vanishing.
          dropped_exceptions_.fetch_add(1, std::memory_order_relaxed);
          if (obs::Counter* counter =
                  dropped_counter_.load(std::memory_order_acquire)) {
            counter->Add();
          }
        }
      }
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace sper
