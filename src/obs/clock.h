#ifndef SPER_OBS_CLOCK_H_
#define SPER_OBS_CLOCK_H_

#include <chrono>
#include <cstdint>

/// \file clock.h
/// The one monotonic clock of the observability layer. Every timing site
/// in the library — phase timers, span recording, the evaluator's
/// init/emission split, refill-latency histograms — reads time through
/// Stopwatch instead of scattering its own std::chrono boilerplate.
///
/// Stopwatch is a *utility*, not instrumentation: it stays fully
/// functional under SPER_NO_TELEMETRY (diagnostics like
/// InitStats::init_seconds and RunResult timings must keep working with
/// telemetry compiled out).

namespace sper {
namespace obs {

/// Thin wrapper over std::chrono::steady_clock: started on construction,
/// read any number of times.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  Stopwatch() : start_(Clock::now()) {}

  /// The current monotonic instant (for explicit start/end span APIs).
  static TimePoint Now() { return Clock::now(); }

  /// Seconds between two instants.
  static double Seconds(TimePoint from, TimePoint to) {
    return std::chrono::duration<double>(to - from).count();
  }

  /// Whole nanoseconds between two instants (clamped at 0).
  static std::uint64_t Nanos(TimePoint from, TimePoint to) {
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
            .count();
    return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
  }

  /// Instant this stopwatch was started (or last Restart()ed).
  TimePoint start() const { return start_; }

  /// Seconds elapsed since start.
  double ElapsedSeconds() const { return Seconds(start_, Now()); }

  /// Nanoseconds elapsed since start.
  std::uint64_t ElapsedNanos() const { return Nanos(start_, Now()); }

  /// Re-arms the stopwatch at the current instant.
  void Restart() { start_ = Clock::now(); }

 private:
  TimePoint start_;
};

}  // namespace obs
}  // namespace sper

#endif  // SPER_OBS_CLOCK_H_
