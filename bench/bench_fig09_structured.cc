// Figure 9: recall progressiveness of all seven methods over the four
// structured datasets (census, restaurant, cora, cddb), ec* up to 30.
// One table per dataset; columns follow the paper's legend.
//
//   $ ./bench_fig09_structured [--scale=S] [--ecmax=E]

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace sper;
  using namespace sper::bench;
  const BenchArgs args = ParseArgs(argc, argv);
  const double ecmax = args.ecmax > 0 ? args.ecmax : 30.0;

  std::printf(
      "Figure 9: recall progressiveness over the structured datasets\n");

  const std::vector<double> grid = {0.5, 1, 2, 3, 5, 7, 10, 15, 20, ecmax};
  for (const std::string& name : StructuredDatasetNames()) {
    DatagenOptions gen;
    gen.scale = args.scale;
    Result<DatasetBundle> dataset = GenerateDataset(name, gen);
    if (!dataset.ok()) {
      std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
      return 1;
    }
    EvalOptions options;
    options.ecstar_max = ecmax;
    options.auc_at = {1.0};
    ProgressiveEvaluator evaluator(dataset.value().truth, options);
    MethodConfig config = ConfigFor(name);

    std::vector<RunResult> runs;
    for (MethodId id : StructuredMethodSet()) {
      runs.push_back(evaluator.Run(
          [&] { return MakeResolver(id, dataset.value(), config); }));
    }
    PrintRecallTable(name + " (|P|=" + std::to_string(dataset.value().store.size()) +
                         ", |D_P|=" + std::to_string(dataset.value().truth.num_matches()) + ")",
                     grid, runs);
  }

  std::printf(
      "\nExpected shape (paper Sec. 7.1): LS/GS-PSN and PPS lead; PSN is\n"
      "competitive only on census; SA-PSN and SA-PSAB trail everywhere.\n");
  return 0;
}
