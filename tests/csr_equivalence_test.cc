// Equivalence suite for the CSR block layout: every observable output of
// the blocking / meta-blocking / progressive stack must be identical to
// the seed's per-block-vector layout. The seed behavior is encoded here as
// straight-line reference implementations (legacy vector-of-vectors
// storage, full member scans with a per-element IsComparable branch) and
// compared against the CSR-backed library paths — byte-identical keys and
// members, bitwise-identical edge weights for all five weighting schemes,
// and identical PPS/PBS emission prefixes — for Dirty and Clean-Clean ER
// at 1/2/4/8 threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "blocking/profile_index.h"
#include "blocking/token_blocking.h"
#include "core/tokenizer.h"
#include "datagen/datagen.h"
#include "metablocking/blocking_graph.h"
#include "metablocking/edge_weighting.h"
#include "progressive/batch.h"
#include "progressive/pbs.h"
#include "progressive/pps.h"
#include "progressive/workflow.h"

namespace sper {
namespace {

ProfileStore DirtyStore() {
  Result<DatasetBundle> ds = GenerateDataset("restaurant", {});
  EXPECT_TRUE(ds.ok());
  return std::move(ds.value().store);
}

ProfileStore CleanCleanStore() {
  DatagenOptions gen;
  gen.scale = 0.1;
  Result<DatasetBundle> ds = GenerateDataset("movies", gen);
  EXPECT_TRUE(ds.ok());
  return std::move(ds.value().store);
}

/// The seed's block storage: one heap vector per block.
struct LegacyBlock {
  std::string key;
  std::vector<ProfileId> profiles;
};

std::vector<LegacyBlock> ToLegacy(const BlockCollection& blocks) {
  std::vector<LegacyBlock> out(blocks.size());
  for (BlockId b = 0; b < blocks.size(); ++b) {
    std::span<const ProfileId> members = blocks.members(b);
    out[b].key = std::string(blocks.key(b));
    out[b].profiles.assign(members.begin(), members.end());
  }
  return out;
}

// ------------------------------------------------- block build equivalence

/// Seed-style sequential token blocking: ordered postings map, profiles in
/// id order, zero-cardinality keys dropped.
std::vector<LegacyBlock> ReferenceTokenBlocking(const ProfileStore& store) {
  std::map<std::string, std::vector<ProfileId>> postings;
  TokenizerOptions tokenizer;
  for (const Profile& p : store.profiles()) {
    for (const std::string& token : DistinctProfileTokens(p, tokenizer)) {
      postings[token].push_back(p.id());
    }
  }
  BlockCollection geometry(store.er_type(), store.split_index());
  std::vector<LegacyBlock> out;
  for (const auto& [key, ids] : postings) {
    if (geometry.ComputeCardinality(ids) == 0) continue;
    out.push_back({key, ids});
  }
  return out;
}

class CsrEquivalenceTest : public ::testing::TestWithParam<bool> {};

TEST_P(CsrEquivalenceTest, TokenBlockingMatchesReferenceByteForByte) {
  const ProfileStore store = GetParam() ? CleanCleanStore() : DirtyStore();
  const BlockCollection blocks = TokenBlocking(store);
  const std::vector<LegacyBlock> reference = ReferenceTokenBlocking(store);

  ASSERT_EQ(blocks.size(), reference.size());
  for (BlockId b = 0; b < blocks.size(); ++b) {
    ASSERT_EQ(blocks.key(b), reference[b].key);
    std::span<const ProfileId> members = blocks.members(b);
    ASSERT_TRUE(std::equal(members.begin(), members.end(),
                           reference[b].profiles.begin(),
                           reference[b].profiles.end()))
        << "block " << b << " (" << reference[b].key << ")";
    // The split point partitions exactly at the store's source boundary.
    for (ProfileId p : blocks.source1(b)) EXPECT_TRUE(store.InSource1(p));
    for (ProfileId p : blocks.source2(b)) EXPECT_FALSE(store.InSource1(p));
    EXPECT_EQ(blocks.source1(b).size() + blocks.source2(b).size(),
              blocks.block_size(b));
  }
}

// ----------------------------------------------- edge-weight equivalence

/// Seed-style neighborhood gather for one profile: full member scan with
/// the per-element comparability branch.
template <typename Fn>
void ReferenceGather(ProfileId i, const std::vector<LegacyBlock>& blocks,
                     const ProfileIndex& index, const ProfileStore& store,
                     const EdgeWeighter& weighter, Fn&& fn) {
  std::vector<double> weights(store.size(), 0.0);
  std::vector<ProfileId> touched;
  for (BlockId b : index.BlocksOf(i)) {
    const double share = weighter.BlockContribution(b);
    for (ProfileId j : blocks[b].profiles) {
      if (j == i || !store.IsComparable(i, j)) continue;
      if (weights[j] == 0.0) touched.push_back(j);
      weights[j] += share;
    }
  }
  for (ProfileId j : touched) fn(j, weights[j]);
}

TEST_P(CsrEquivalenceTest, BlockingGraphMatchesReferenceForAllSchemes) {
  const ProfileStore store = GetParam() ? CleanCleanStore() : DirtyStore();
  const BlockCollection blocks = BuildTokenWorkflowBlocks(store, {});
  const ProfileIndex index(blocks, store.size());
  const std::vector<LegacyBlock> legacy = ToLegacy(blocks);

  for (WeightingScheme scheme :
       {WeightingScheme::kArcs, WeightingScheme::kCbs, WeightingScheme::kJs,
        WeightingScheme::kEcbs, WeightingScheme::kEjs}) {
    const EdgeWeighter weighter(blocks, index, store, scheme);
    // Reference edges from the seed-style gather (smaller endpoint only).
    std::vector<Comparison> expected;
    for (ProfileId i = 0; i < store.size(); ++i) {
      ReferenceGather(i, legacy, index, store, weighter,
                      [&](ProfileId j, double accumulated) {
                        if (i < j) {
                          expected.emplace_back(
                              i, j, weighter.Finalize(i, j, accumulated));
                        }
                      });
    }
    std::sort(expected.begin(), expected.end(),
              [](const Comparison& a, const Comparison& b) {
                if (a.i != b.i) return a.i < b.i;
                return a.j < b.j;
              });

    for (std::size_t num_threads : {1u, 2u, 4u, 8u}) {
      const BlockingGraph graph =
          BlockingGraph::Build(blocks, index, store, scheme, num_threads);
      ASSERT_EQ(graph.num_edges(), expected.size())
          << ToString(scheme) << " @ " << num_threads << " threads";
      for (std::size_t e = 0; e < expected.size(); ++e) {
        ASSERT_EQ(graph.edges()[e].i, expected[e].i);
        ASSERT_EQ(graph.edges()[e].j, expected[e].j);
        // Same contributions added in the same order: bitwise equal.
        ASSERT_EQ(graph.edges()[e].weight, expected[e].weight)
            << ToString(scheme) << " edge " << e;
      }
    }
  }
}

// ------------------------------------------------ PPS / PBS equivalence

TEST_P(CsrEquivalenceTest, PpsInitMatchesReferenceBitwise) {
  const ProfileStore store = GetParam() ? CleanCleanStore() : DirtyStore();
  BlockCollection blocks = BuildTokenWorkflowBlocks(store, {});
  const ProfileIndex index(blocks, store.size());
  const std::vector<LegacyBlock> legacy = ToLegacy(blocks);
  const EdgeWeighter weighter(blocks, index, store,
                              WeightingScheme::kArcs);

  // Seed Algorithm 5: duplication likelihood = mean incident edge weight,
  // computed with the legacy full-scan gather.
  std::vector<std::pair<ProfileId, double>> expected;
  for (ProfileId i = 0; i < store.size(); ++i) {
    double sum = 0.0;
    std::size_t count = 0;
    ReferenceGather(i, legacy, index, store, weighter,
                    [&](ProfileId j, double accumulated) {
                      sum += weighter.Finalize(i, j, accumulated);
                      ++count;
                    });
    if (count > 0) {
      expected.emplace_back(i, sum / static_cast<double>(count));
    }
  }
  std::sort(expected.begin(), expected.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });

  for (std::size_t num_threads : {1u, 2u, 4u, 8u}) {
    PpsOptions options;
    options.num_threads = num_threads;
    PpsEmitter pps(store, blocks, options);
    ASSERT_EQ(pps.sorted_profiles().size(), expected.size());
    for (std::size_t k = 0; k < expected.size(); ++k) {
      ASSERT_EQ(pps.sorted_profiles()[k].first, expected[k].first)
          << num_threads << " threads, rank " << k;
      // Identical additions in identical order: bitwise equal.
      ASSERT_EQ(pps.sorted_profiles()[k].second, expected[k].second);
    }
  }
}

template <typename Emitter>
std::vector<Comparison> Drain(Emitter& emitter, std::size_t limit) {
  std::vector<Comparison> out;
  while (out.size() < limit) {
    std::optional<Comparison> c = emitter.Next();
    if (!c.has_value()) break;
    out.push_back(*c);
  }
  return out;
}

TEST_P(CsrEquivalenceTest, PpsEmissionPrefixIsThreadCountInvariant) {
  const ProfileStore store = GetParam() ? CleanCleanStore() : DirtyStore();
  BlockCollection blocks = BuildTokenWorkflowBlocks(store, {});

  PpsOptions reference_options;
  reference_options.num_threads = 1;
  PpsEmitter reference(store, blocks, reference_options);
  const std::vector<Comparison> expected = Drain(reference, 500);
  EXPECT_FALSE(expected.empty());

  for (std::size_t num_threads : {2u, 4u, 8u}) {
    PpsOptions options;
    options.num_threads = num_threads;
    PpsEmitter pps(store, blocks, options);
    const std::vector<Comparison> got = Drain(pps, 500);
    ASSERT_EQ(got.size(), expected.size()) << num_threads << " threads";
    for (std::size_t k = 0; k < expected.size(); ++k) {
      ASSERT_TRUE(got[k].SamePair(expected[k]))
          << num_threads << " threads, emission " << k;
      ASSERT_EQ(got[k].weight, expected[k].weight);
    }
  }
}

TEST_P(CsrEquivalenceTest, PbsEmissionPrefixIsThreadCountInvariant) {
  const ProfileStore store = GetParam() ? CleanCleanStore() : DirtyStore();
  const BlockCollection blocks = BuildTokenWorkflowBlocks(store, {});

  PbsOptions reference_options;
  reference_options.num_threads = 1;
  PbsEmitter reference(store, blocks, reference_options);
  const std::vector<Comparison> expected = Drain(reference, 500);
  EXPECT_FALSE(expected.empty());

  // LeCoBI guarantee: no emitted pair repeats.
  std::unordered_set<std::uint64_t> seen;
  for (const Comparison& c : expected) {
    EXPECT_TRUE(store.IsComparable(c.i, c.j));
    EXPECT_TRUE(seen.insert(PairKey(c.i, c.j)).second);
  }

  for (std::size_t num_threads : {2u, 4u, 8u}) {
    PbsOptions options;
    options.num_threads = num_threads;
    PbsEmitter pbs(store, blocks, options);
    const std::vector<Comparison> got = Drain(pbs, 500);
    ASSERT_EQ(got.size(), expected.size()) << num_threads << " threads";
    for (std::size_t k = 0; k < expected.size(); ++k) {
      ASSERT_TRUE(got[k].SamePair(expected[k]))
          << num_threads << " threads, emission " << k;
      ASSERT_EQ(got[k].weight, expected[k].weight);
    }
  }
}

TEST_P(CsrEquivalenceTest, ForEachComparisonMatchesScanAndTest) {
  const ProfileStore store = GetParam() ? CleanCleanStore() : DirtyStore();
  const BlockCollection blocks = TokenBlocking(store);
  for (BlockId b = 0; b < std::min<std::size_t>(blocks.size(), 200); ++b) {
    // Seed semantics: all sorted pairs, filtered by IsComparable.
    std::span<const ProfileId> ps = blocks.members(b);
    std::vector<std::pair<ProfileId, ProfileId>> expected;
    for (std::size_t x = 0; x < ps.size(); ++x) {
      for (std::size_t y = x + 1; y < ps.size(); ++y) {
        if (store.IsComparable(ps[x], ps[y])) {
          expected.emplace_back(ps[x], ps[y]);
        }
      }
    }
    std::vector<std::pair<ProfileId, ProfileId>> got;
    blocks.ForEachComparison(b, [&](ProfileId i, ProfileId j) {
      got.emplace_back(i, j);
    });
    ASSERT_EQ(got, expected) << "block " << b;
    ASSERT_EQ(got.size(), blocks.Cardinality(b));
  }
}

INSTANTIATE_TEST_SUITE_P(DirtyAndCleanClean, CsrEquivalenceTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "CleanClean" : "Dirty";
                         });

}  // namespace
}  // namespace sper
