#include "progressive/sa_psab.h"

namespace sper {

SaPsabEmitter::SaPsabEmitter(const ProfileStore& store,
                             const SuffixForestOptions& options)
    : store_(store), forest_(SuffixForest::Build(store, options)) {
  ResetCursor();
}

void SaPsabEmitter::ResetCursor() {
  x_ = 0;
  if (node_ >= forest_.nodes().size()) {
    y_ = 0;
    return;
  }
  // Clean-Clean: x walks the source-1 prefix, y the source-2 suffix —
  // every (x, y) pair is cross-source by construction, so emission needs
  // no per-pair comparability test. Dirty: all pairs x < y are valid.
  const SuffixNode& n = forest_.nodes()[node_];
  y_ = store_.er_type() == ErType::kCleanClean ? n.split : 1;
}

std::optional<Comparison> SaPsabEmitter::Next() {
  const bool clean_clean = store_.er_type() == ErType::kCleanClean;
  while (node_ < forest_.nodes().size()) {
    const SuffixNode& n = forest_.nodes()[node_];
    // All comparisons of a node share its likelihood; we expose the
    // node's rank-derived score so weights are non-increasing across
    // nodes.
    const double weight = 1.0 / static_cast<double>(node_ + 1);
    if (clean_clean) {
      while (x_ < n.split) {
        if (y_ < n.profiles.size()) {
          return Comparison(n.profiles[x_], n.profiles[y_++], weight);
        }
        ++x_;
        y_ = n.split;
      }
    } else {
      while (x_ + 1 < n.profiles.size()) {
        if (y_ < n.profiles.size()) {
          return Comparison(n.profiles[x_], n.profiles[y_++], weight);
        }
        ++x_;
        y_ = x_ + 1;
      }
    }
    ++node_;
    ResetCursor();
  }
  return std::nullopt;
}

}  // namespace sper
