// The QoS admission controller (src/serving/qos.h) and its deterministic
// building blocks. The contract under test:
//
// - TokenBucket: starts full, refills continuously at the configured
//   rate, never over-fills past burst, and RetryAfterMs names when the
//   next token lands — all as pure functions of caller-supplied time;
// - SmoothWeightedRoundRobin: the nginx smooth cycle (weights 8/2/1 give
//   the interleaved 0 0 1 0 0 2 0 0 1 0 0 pattern, not 8 zeros
//   back-to-back), ties break to the lowest index, empty lanes are
//   skipped without earning catch-up credit;
// - obs::ManualClock / MonotonicClock: the injectable time seam the
//   controller reads every decision through;
// - QosAdmissionController: over-rate clients are shed with
//   ResourceExhausted and an exponentially growing retry_after_ms; a
//   full queue sheds instead of queueing; staged lane mixes dispatch in
//   the exact smooth-WRR order (resolver tickets prove it); requests
//   whose deadline passed while queued — or whose estimated service
//   start lies past their deadline on arrival — are evicted without
//   consuming a resolver ticket, while one that barely makes its
//   deadline is served; shed/evicted requests never perturb the stream
//   (bit-identical continuation); per-class stats and metric sinks
//   mirror each other.

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "datagen/datagen.h"
#include "engine/resolver.h"
#include "obs/clock.h"
#include "obs/registry.h"
#include "obs/telemetry.h"
#include "serving/qos.h"
#include "serving/token_bucket.h"
#include "serving/wrr.h"

namespace sper {
namespace {

using serving::ClassStats;
using serving::QosAdmissionController;
using serving::QosOptions;
using serving::SmoothWeightedRoundRobin;
using serving::TokenBucket;

constexpr std::uint64_t kMs = 1000000ull;  // ns per millisecond

ProfileStore DirtyStore() {
  Result<DatasetBundle> ds = GenerateDataset("restaurant", {});
  EXPECT_TRUE(ds.ok());
  return std::move(ds.value().store);
}

std::unique_ptr<Resolver> MustCreate(const ProfileStore& store,
                                     const ResolverOptions& options) {
  Result<std::unique_ptr<Resolver>> resolver =
      Resolver::Create(store, options);
  EXPECT_TRUE(resolver.ok()) << resolver.status().ToString();
  return std::move(resolver).value();
}

/// Spins until the controller has `depth` queued requests (the enqueueing
/// threads are real, only the clock is manual).
void AwaitQueueDepth(const QosAdmissionController& controller,
                     std::size_t depth) {
  while (controller.queue_depth() < depth) std::this_thread::yield();
}

// ---------------------------------------------------------- token bucket

TEST(TokenBucketTest, StartsFullAndRefillsAtRate) {
  TokenBucket bucket(/*rate_per_sec=*/10.0, /*burst=*/2.0, /*now_ns=*/0);
  EXPECT_TRUE(bucket.TryAcquire(1.0, 0));
  EXPECT_TRUE(bucket.TryAcquire(1.0, 0));
  EXPECT_FALSE(bucket.TryAcquire(1.0, 0)) << "burst spent";
  // 10 tokens/s -> one token every 100 ms.
  EXPECT_FALSE(bucket.TryAcquire(1.0, 50 * kMs));
  EXPECT_TRUE(bucket.TryAcquire(1.0, 100 * kMs));
  EXPECT_FALSE(bucket.TryAcquire(1.0, 100 * kMs));
}

TEST(TokenBucketTest, NeverFillsPastBurst) {
  TokenBucket bucket(10.0, 2.0, 0);
  // An hour idle still holds exactly `burst` tokens.
  EXPECT_DOUBLE_EQ(bucket.Available(3600ull * 1000 * kMs), 2.0);
}

TEST(TokenBucketTest, RetryAfterNamesTheNextToken) {
  TokenBucket bucket(10.0, 1.0, 0);
  EXPECT_EQ(bucket.RetryAfterMs(1.0, 0), 0u) << "token available now";
  EXPECT_TRUE(bucket.TryAcquire(1.0, 0));
  // Empty at rate 10/s: the next whole token is 100 ms out (the hint
  // rounds up, so it is never an under-estimate).
  const std::uint64_t wait = bucket.RetryAfterMs(1.0, 0);
  EXPECT_GE(wait, 100u);
  EXPECT_LE(wait, 101u);
  EXPECT_TRUE(bucket.TryAcquire(1.0, wait * kMs));
}

TEST(TokenBucketTest, ZeroRateDisablesLimiting) {
  TokenBucket bucket(0.0, 1.0, 0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.TryAcquire(1.0, 0));
  EXPECT_EQ(bucket.RetryAfterMs(1.0, 0), 0u);
}

TEST(TokenBucketTest, FailedAcquireDoesNotSpend) {
  TokenBucket bucket(1.0, 1.0, 0);
  EXPECT_TRUE(bucket.TryAcquire(1.0, 0));
  const double before = bucket.Available(0);
  EXPECT_FALSE(bucket.TryAcquire(1.0, 0));
  EXPECT_DOUBLE_EQ(bucket.Available(0), before);
}

// ------------------------------------------------------------ smooth WRR

TEST(SmoothWrrTest, ProducesTheSmoothCycle) {
  // The defining property versus naive WRR: weights {8,2,1} interleave
  // the low-weight lanes across the cycle instead of queueing them
  // behind 8 consecutive picks of lane 0.
  SmoothWeightedRoundRobin<3> wrr({8, 2, 1});
  const std::array<bool, 3> all = {true, true, true};
  std::vector<std::size_t> picks;
  for (int i = 0; i < 11; ++i) picks.push_back(wrr.Pick(all));
  const std::vector<std::size_t> expected = {0, 0, 1, 0, 0, 2, 0, 0, 1, 0, 0};
  EXPECT_EQ(picks, expected);
  // One full cycle returns every balance to zero: the pattern repeats.
  for (std::size_t lane = 0; lane < 3; ++lane) {
    EXPECT_EQ(wrr.current(lane), 0) << "lane " << lane;
  }
}

TEST(SmoothWrrTest, TiesBreakToLowestIndex) {
  SmoothWeightedRoundRobin<2> wrr({1, 1});
  const std::array<bool, 2> all = {true, true};
  EXPECT_EQ(wrr.Pick(all), 0u);
  EXPECT_EQ(wrr.Pick(all), 1u);
  EXPECT_EQ(wrr.Pick(all), 0u);
  EXPECT_EQ(wrr.Pick(all), 1u);
}

TEST(SmoothWrrTest, IneligibleLanesAreSkippedWithoutCredit) {
  SmoothWeightedRoundRobin<3> wrr({8, 2, 1});
  // Only lane 2 has work: it is picked, and its balance stays settled
  // (gain == total eligible weight == its own), so no catch-up burst
  // reorders the later full-eligibility pattern.
  const std::array<bool, 3> only_last = {false, false, true};
  EXPECT_EQ(wrr.Pick(only_last), 2u);
  EXPECT_EQ(wrr.current(2), 0);
  EXPECT_EQ(wrr.Pick({false, false, false}), 3u) << "no eligible lane";
}

// ---------------------------------------------------------- clock source

TEST(ClockSourceTest, ManualClockMovesOnlyWhenAdvanced) {
  obs::ManualClock clock(5);
  EXPECT_EQ(clock.NowNanos(), 5u);
  EXPECT_EQ(clock.NowNanos(), 5u);
  clock.AdvanceNanos(10);
  EXPECT_EQ(clock.NowNanos(), 15u);
  clock.AdvanceMillis(2);
  EXPECT_EQ(clock.NowNanos(), 15u + 2 * kMs);
}

TEST(ClockSourceTest, MonotonicClockNeverGoesBackwards) {
  const obs::ClockSource* clock = obs::MonotonicClock::Default();
  std::uint64_t last = clock->NowNanos();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = clock->NowNanos();
    ASSERT_GE(now, last);
    last = now;
  }
}

// -------------------------------------------------------------- options

TEST(QosOptionsTest, ValidateNamesTheOffendingField) {
  QosOptions ok;
  EXPECT_TRUE(ok.Validate().ok());

  QosOptions zero_weights;
  zero_weights.weights = {0, 0, 0};
  EXPECT_FALSE(zero_weights.Validate().ok());

  QosOptions negative_rate;
  negative_rate.client_rate = -1.0;
  EXPECT_FALSE(negative_rate.Validate().ok());

  QosOptions tiny_burst;
  tiny_burst.client_rate = 1.0;
  tiny_burst.client_burst = 0.5;
  EXPECT_FALSE(tiny_burst.Validate().ok());

  QosOptions zero_base;
  zero_base.retry_after_base_ms = 0;
  EXPECT_FALSE(zero_base.Validate().ok());

  QosOptions inverted_cap;
  inverted_cap.retry_after_base_ms = 100;
  inverted_cap.retry_after_cap_ms = 10;
  EXPECT_FALSE(inverted_cap.Validate().ok());
}

// ------------------------------------------------ controller: rate limit

TEST(QosControllerTest, OverRateClientIsShedWithRetryHint) {
  ProfileStore store = DirtyStore();
  std::unique_ptr<Resolver> resolver = MustCreate(store, {});
  obs::ManualClock clock;

  QosOptions options;
  options.clock = &clock;
  options.client_rate = 10.0;  // one token per 100 ms
  options.client_burst = 1.0;
  QosAdmissionController controller(*resolver, options);

  ResolveRequest request;
  request.budget = 4;
  request.client_id = 7;

  ResolveResult served = controller.Resolve(request);
  EXPECT_EQ(served.outcome, ResolveOutcome::kServed);
  EXPECT_EQ(served.comparisons.size(), 4u);

  ResolveResult shed = controller.Resolve(request);
  EXPECT_EQ(shed.outcome, ResolveOutcome::kShed);
  EXPECT_FALSE(shed.admitted());
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(shed.retry_after_ms, 100u) << "hint covers the bucket refill";
  EXPECT_TRUE(shed.comparisons.empty());

  // Waiting out the hint makes the client admissible again.
  clock.AdvanceMillis(shed.retry_after_ms);
  ResolveResult retried = controller.Resolve(request);
  EXPECT_EQ(retried.outcome, ResolveOutcome::kServed);

  // Distinct clients have distinct buckets: client 8 was never throttled.
  ResolveRequest other = request;
  other.client_id = 8;
  EXPECT_EQ(controller.Resolve(other).outcome, ResolveOutcome::kServed);

  EXPECT_EQ(controller.stats(Priority::kInteractive).sheds, 1u);
  EXPECT_EQ(controller.stats(Priority::kInteractive).admitted, 3u);
}

TEST(QosControllerTest, ConsecutiveShedsGrowTheBackoffExponentially) {
  ProfileStore store = DirtyStore();
  std::unique_ptr<Resolver> resolver = MustCreate(store, {});
  obs::ManualClock clock;

  QosOptions options;
  options.clock = &clock;
  options.max_queue_depth = 1;
  options.retry_after_base_ms = 8;
  options.retry_after_cap_ms = 100;
  QosAdmissionController controller(*resolver, options);

  // Stage a full queue: one waiter parked behind a paused dispatcher.
  controller.SetDispatchPaused(true);
  std::thread parked([&] {
    ResolveRequest queued;
    queued.budget = 1;
    queued.client_id = 1;
    controller.Resolve(queued);
  });
  AwaitQueueDepth(controller, 1);

  // Every further request from client 2 sheds on depth; the hint doubles
  // from the base until the cap.
  ResolveRequest request;
  request.budget = 1;
  request.client_id = 2;
  const std::vector<std::uint64_t> expected = {8, 16, 32, 64, 100, 100};
  for (std::uint64_t hint : expected) {
    ResolveResult shed = controller.Resolve(request);
    ASSERT_EQ(shed.outcome, ResolveOutcome::kShed);
    EXPECT_EQ(shed.retry_after_ms, hint);
  }
  EXPECT_EQ(controller.stats(Priority::kInteractive).sheds, expected.size());

  // A successful enqueue resets the client's backoff streak.
  controller.SetDispatchPaused(false);
  parked.join();
  ResolveResult served = controller.Resolve(request);
  EXPECT_EQ(served.outcome, ResolveOutcome::kServed);
  controller.SetDispatchPaused(true);
  std::thread parked2([&] {
    ResolveRequest queued;
    queued.budget = 1;
    queued.client_id = 1;
    controller.Resolve(queued);
  });
  AwaitQueueDepth(controller, 1);
  ResolveResult shed = controller.Resolve(request);
  EXPECT_EQ(shed.retry_after_ms, 8u) << "streak reset by the admit";
  controller.SetDispatchPaused(false);
  parked2.join();
}

// -------------------------------------------- controller: queue shedding

TEST(QosControllerTest, EstimatedQueueWaitBoundSheds) {
  ProfileStore store = DirtyStore();
  std::unique_ptr<Resolver> resolver = MustCreate(store, {});
  obs::ManualClock clock;

  QosOptions options;
  options.clock = &clock;
  options.max_queue_depth = 0;     // depth unbounded: isolate the wait bound
  options.max_queue_wait_ms = 25;
  QosAdmissionController controller(*resolver, options);
  controller.PrimeServiceEstimate(10 * kMs);  // 10 ms per request

  controller.SetDispatchPaused(true);
  std::vector<std::thread> queued;
  // Estimated wait at arrival is ahead*10ms: 0, 10, 20 pass the 25 ms
  // bound; the fourth (est. 30 ms) sheds.
  for (int i = 0; i < 3; ++i) {
    queued.emplace_back([&] {
      ResolveRequest request;
      request.budget = 1;
      controller.Resolve(request);
    });
    AwaitQueueDepth(controller, static_cast<std::size_t>(i) + 1);
  }
  ResolveRequest request;
  request.budget = 1;
  ResolveResult shed = controller.Resolve(request);
  EXPECT_EQ(shed.outcome, ResolveOutcome::kShed);
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);

  controller.SetDispatchPaused(false);
  for (std::thread& t : queued) t.join();
}

// ----------------------------------------- controller: priority dispatch

TEST(QosControllerTest, StagedMixDispatchesInSmoothWrrOrder) {
  ProfileStore store = DirtyStore();
  std::unique_ptr<Resolver> resolver = MustCreate(store, {});
  obs::ManualClock clock;

  QosOptions options;
  options.clock = &clock;  // weights stay the default {8, 2, 1}
  QosAdmissionController controller(*resolver, options);

  // Stage 4 interactive + 4 batch + 2 best-effort behind a paused
  // dispatcher, then release. Dispatch is serialized, so resolver
  // tickets record the exact dispatch order.
  controller.SetDispatchPaused(true);
  std::mutex mu;
  std::vector<std::pair<std::uint64_t, Priority>> order;  // (ticket, class)
  std::vector<std::thread> workers;
  auto spawn = [&](Priority priority, int count) {
    for (int i = 0; i < count; ++i) {
      workers.emplace_back([&, priority] {
        ResolveRequest request;
        request.budget = 1;
        request.priority = priority;
        ResolveResult result = controller.Resolve(request);
        ASSERT_EQ(result.outcome, ResolveOutcome::kServed);
        std::lock_guard<std::mutex> hold(mu);
        order.emplace_back(result.ticket, priority);
      });
    }
  };
  spawn(Priority::kInteractive, 4);
  spawn(Priority::kBatch, 4);
  spawn(Priority::kBestEffort, 2);
  AwaitQueueDepth(controller, 10);
  controller.SetDispatchPaused(false);
  for (std::thread& t : workers) t.join();

  ASSERT_EQ(order.size(), 10u);
  std::sort(order.begin(), order.end());
  std::vector<Priority> classes;
  for (const auto& [ticket, priority] : order) classes.push_back(priority);
  // Smooth WRR over {8,2,1} with lanes I=4/B=4/E=2: interactive leads
  // without monopolizing, and once it drains, best-effort's accumulated
  // balance earns its picks before batch finishes.
  const std::vector<Priority> expected = {
      Priority::kInteractive, Priority::kInteractive, Priority::kBatch,
      Priority::kInteractive, Priority::kInteractive, Priority::kBestEffort,
      Priority::kBestEffort,  Priority::kBatch,       Priority::kBatch,
      Priority::kBatch};
  EXPECT_EQ(classes, expected);
  EXPECT_EQ(controller.stats(Priority::kInteractive).admitted, 4u);
  EXPECT_EQ(controller.stats(Priority::kBatch).admitted, 4u);
  EXPECT_EQ(controller.stats(Priority::kBestEffort).admitted, 2u);
}

// ------------------------------------------------- controller: eviction

TEST(QosControllerTest, DeadlinePassedWhileQueuedEvictsWithoutATicket) {
  ProfileStore store = DirtyStore();
  std::unique_ptr<Resolver> resolver = MustCreate(store, {});
  obs::ManualClock clock;

  QosOptions options;
  options.clock = &clock;
  QosAdmissionController controller(*resolver, options);

  controller.SetDispatchPaused(true);
  ResolveResult doomed_result;
  std::thread doomed([&] {
    ResolveRequest request;
    request.budget = 4;
    request.deadline_ms = 50;
    doomed_result = controller.Resolve(request);
  });
  AwaitQueueDepth(controller, 1);
  ResolveResult barely_result;
  std::thread barely([&] {
    ResolveRequest request;
    request.budget = 4;
    request.deadline_ms = 500;
    barely_result = controller.Resolve(request);
  });
  AwaitQueueDepth(controller, 2);

  // 100 ms pass in the queue: past the first deadline, within the second.
  clock.AdvanceMillis(100);
  controller.SetDispatchPaused(false);
  doomed.join();
  barely.join();

  EXPECT_EQ(doomed_result.outcome, ResolveOutcome::kEvicted);
  EXPECT_TRUE(doomed_result.deadline_exceeded());
  EXPECT_FALSE(doomed_result.admitted());
  EXPECT_TRUE(doomed_result.status.ok()) << "a cut is not an error";
  EXPECT_TRUE(doomed_result.comparisons.empty());

  EXPECT_EQ(barely_result.outcome, ResolveOutcome::kServed);
  EXPECT_EQ(barely_result.comparisons.size(), 4u);
  EXPECT_EQ(barely_result.ticket, 0u)
      << "the evicted request never took a resolver ticket";
  EXPECT_EQ(controller.stats(Priority::kInteractive).evictions, 1u);
}

TEST(QosControllerTest, DoomedOnArrivalIsEvictedImmediately) {
  ProfileStore store = DirtyStore();
  std::unique_ptr<Resolver> resolver = MustCreate(store, {});
  obs::ManualClock clock;

  QosOptions options;
  options.clock = &clock;
  QosAdmissionController controller(*resolver, options);
  controller.PrimeServiceEstimate(10 * kMs);

  controller.SetDispatchPaused(true);
  std::thread parked([&] {
    ResolveRequest request;
    request.budget = 1;
    controller.Resolve(request);
  });
  AwaitQueueDepth(controller, 1);

  // Estimated service start is 10 ms out (one queued request at a 10 ms
  // estimate): a 5 ms deadline cannot be met — evicted synchronously,
  // without blocking. A 50 ms deadline queues normally.
  ResolveRequest hopeless;
  hopeless.budget = 1;
  hopeless.deadline_ms = 5;
  ResolveResult evicted = controller.Resolve(hopeless);
  EXPECT_EQ(evicted.outcome, ResolveOutcome::kEvicted);
  EXPECT_TRUE(evicted.deadline_exceeded());
  EXPECT_EQ(controller.queue_depth(), 1u) << "never queued";

  controller.SetDispatchPaused(false);
  parked.join();
  ResolveRequest feasible;
  feasible.budget = 1;
  feasible.deadline_ms = 50;
  EXPECT_EQ(controller.Resolve(feasible).outcome, ResolveOutcome::kServed);
}

TEST(QosControllerTest, EvictionDisabledServesTheLateRequestAsACut) {
  ProfileStore store = DirtyStore();
  std::unique_ptr<Resolver> resolver = MustCreate(store, {});
  obs::ManualClock clock;

  QosOptions options;
  options.clock = &clock;
  options.evict_doomed = false;
  QosAdmissionController controller(*resolver, options);

  controller.SetDispatchPaused(true);
  ResolveResult late_result;
  std::thread late([&] {
    ResolveRequest request;
    request.budget = 4;
    request.deadline_ms = 50;
    late_result = controller.Resolve(request);
  });
  AwaitQueueDepth(controller, 1);
  clock.AdvanceMillis(100);
  controller.SetDispatchPaused(false);
  late.join();

  // Without eviction the request is dispatched with the 1 ms floor and
  // the *resolver* cuts it: admitted, empty, stream intact.
  EXPECT_EQ(late_result.outcome, ResolveOutcome::kDeadlineExpired);
  EXPECT_TRUE(late_result.admitted());
  EXPECT_EQ(controller.stats(Priority::kInteractive).evictions, 0u);
}

// ------------------------------------------- stream identity and metrics

TEST(QosControllerTest, ShedsAndEvictionsNeverPerturbTheStream) {
  ProfileStore store = DirtyStore();
  std::unique_ptr<Resolver> reference = MustCreate(store, {});
  std::vector<Comparison> expected;
  for (int i = 0; i < 64; ++i) {
    std::optional<Comparison> c = reference->Next();
    if (!c.has_value()) break;
    expected.push_back(*c);
  }

  std::unique_ptr<Resolver> resolver = MustCreate(store, {});
  obs::ManualClock clock;
  QosOptions options;
  options.clock = &clock;
  options.client_rate = 10.0;
  options.client_burst = 1.0;
  QosAdmissionController controller(*resolver, options);

  // Interleave served slices with rate-limit sheds and queued-too-long
  // evictions; the admitted slices must still concatenate to the exact
  // reference prefix.
  std::vector<Comparison> streamed;
  ResolveRequest request;
  request.budget = 8;
  request.client_id = 3;
  while (streamed.size() < expected.size()) {
    ResolveResult slice = controller.Resolve(request);
    if (slice.outcome == ResolveOutcome::kShed) {
      // While backed off, park an anonymous request (not rate-limited)
      // with a deadline, let it expire in the lane, and check the
      // eviction consumed nothing.
      controller.SetDispatchPaused(true);
      ResolveResult hopeless_result;
      std::thread hopeless([&] {
        ResolveRequest doomed;
        doomed.budget = 8;
        doomed.deadline_ms = 1;
        hopeless_result = controller.Resolve(doomed);
      });
      AwaitQueueDepth(controller, 1);
      clock.AdvanceMillis(2);
      controller.SetDispatchPaused(false);
      hopeless.join();
      ASSERT_EQ(hopeless_result.outcome, ResolveOutcome::kEvicted);
      clock.AdvanceMillis(slice.retry_after_ms);
      continue;
    }
    ASSERT_EQ(slice.outcome, ResolveOutcome::kServed);
    for (const Comparison& c : slice.comparisons) streamed.push_back(c);
  }

  ASSERT_EQ(streamed.size(), expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_EQ(streamed[k].i, expected[k].i) << "position " << k;
    EXPECT_EQ(streamed[k].j, expected[k].j) << "position " << k;
    EXPECT_EQ(streamed[k].weight, expected[k].weight) << "position " << k;
  }
}

TEST(QosControllerTest, MetricSinksMirrorTheStats) {
  ProfileStore store = DirtyStore();
  obs::Registry registry;

  ResolverOptions resolver_options;
  std::unique_ptr<Resolver> resolver = MustCreate(store, resolver_options);
  obs::ManualClock clock;

  QosOptions options;
  options.clock = &clock;
  options.client_rate = 10.0;
  options.client_burst = 1.0;
  options.telemetry = obs::TelemetryScope(&registry);
  QosAdmissionController controller(*resolver, options);

  ResolveRequest request;
  request.budget = 2;
  request.client_id = 1;
  EXPECT_EQ(controller.Resolve(request).outcome, ResolveOutcome::kServed);
  EXPECT_EQ(controller.Resolve(request).outcome, ResolveOutcome::kShed);

#ifndef SPER_NO_TELEMETRY
  EXPECT_EQ(registry.counter("qos.interactive.admitted")->value(), 1u);
  EXPECT_EQ(registry.counter("qos.interactive.sheds")->value(), 1u);
  EXPECT_EQ(registry.counter("qos.rate_limited")->value(), 1u);
  EXPECT_EQ(registry.counter("qos.interactive.evictions")->value(), 0u);
  const std::string snapshot = registry.SnapshotJson();
  EXPECT_NE(snapshot.find("qos.interactive.sheds"), std::string::npos);
  EXPECT_NE(snapshot.find("qos.queue_depth"), std::string::npos);
#endif
  EXPECT_EQ(controller.stats(Priority::kInteractive).admitted, 1u);
  EXPECT_EQ(controller.stats(Priority::kInteractive).sheds, 1u);
}

// -------------------------------------------------- outcome plumbing

TEST(ResolveOutcomeTest, NamesAreStable) {
  EXPECT_EQ(ToString(ResolveOutcome::kServed), "served");
  EXPECT_EQ(ToString(ResolveOutcome::kDeadlineExpired), "deadline_expired");
  EXPECT_EQ(ToString(ResolveOutcome::kCancelled), "cancelled");
  EXPECT_EQ(ToString(ResolveOutcome::kShed), "shed");
  EXPECT_EQ(ToString(ResolveOutcome::kEvicted), "evicted");
  EXPECT_EQ(ToString(ResolveOutcome::kRejected), "rejected");
  EXPECT_EQ(ToString(ResolveOutcome::kFailed), "failed");
}

TEST(ResolveOutcomeTest, AccessorsDeriveFromTheOutcome) {
  ResolveResult result;
  EXPECT_TRUE(result.admitted());
  EXPECT_FALSE(result.deadline_exceeded());
  EXPECT_FALSE(result.cancelled());

  result.outcome = ResolveOutcome::kEvicted;
  EXPECT_TRUE(result.deadline_exceeded()) << "an evicted deadline is missed";
  EXPECT_FALSE(result.admitted());

  result.outcome = ResolveOutcome::kShed;
  EXPECT_FALSE(result.admitted());
  EXPECT_FALSE(result.deadline_exceeded());

  result.outcome = ResolveOutcome::kCancelled;
  EXPECT_TRUE(result.cancelled());
  EXPECT_TRUE(result.admitted()) << "a cancelled request held a ticket";
}

TEST(ResolveOutcomeTest, PriorityNamesRoundTrip) {
  for (Priority p : {Priority::kInteractive, Priority::kBatch,
                     Priority::kBestEffort}) {
    const std::optional<Priority> parsed = ParsePriority(ToString(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_EQ(ParsePriority("BATCH"), Priority::kBatch);
  EXPECT_EQ(ParsePriority("best-effort"), Priority::kBestEffort);
  EXPECT_FALSE(ParsePriority("urgent").has_value());
}

}  // namespace
}  // namespace sper
