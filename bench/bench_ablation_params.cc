// Ablation: the three method-specific knobs the paper discusses —
// GS-PSN's window range wmax (Sec. 5.1.2), PPS's per-profile budget Kmax
// (Sec. 5.2.2) and SA-PSAB's minimum suffix length lmin (Sec. 4.2).
//
//   $ ./bench_ablation_params [--scale=S]

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace sper;
  using namespace sper::bench;
  const BenchArgs args = ParseArgs(argc, argv);

  DatagenOptions gen;
  gen.scale = args.scale;
  Result<DatasetBundle> cora = GenerateDataset("cora", gen);
  Result<DatasetBundle> restaurant = GenerateDataset("restaurant", gen);
  if (!cora.ok() || !restaurant.ok()) return 1;

  EvalOptions options;
  options.ecstar_max = 10.0;
  options.auc_at = {1.0, 5.0};

  {
    std::printf("== GS-PSN wmax sweep (cora) ==\n");
    ProgressiveEvaluator evaluator(cora.value().truth, options);
    TextTable table({"wmax", "AUC*@1", "AUC*@5", "recall@10", "init (s)"});
    for (std::size_t wmax : {2u, 5u, 10u, 20u, 50u}) {
      MethodConfig config;
      config.gs_wmax = wmax;
      RunResult run = evaluator.Run(
          [&] { return MakeResolver(MethodId::kGsPsn, cora.value(), config); });
      table.AddRow({std::to_string(wmax), FormatDouble(run.auc_norm[0], 3),
                    FormatDouble(run.auc_norm[1], 3),
                    FormatDouble(run.final_recall, 3),
                    FormatDouble(run.init_seconds, 2)});
    }
    table.Print();
    std::printf("Reading: small wmax exhausts early (recall cap); large "
                "wmax costs\ninit time and memory for little early-quality "
                "gain — the paper picks 20.\n\n");
  }

  {
    std::printf("== PPS Kmax sweep (cora) ==\n");
    ProgressiveEvaluator evaluator(cora.value().truth, options);
    TextTable table({"Kmax", "AUC*@1", "AUC*@5", "recall@10"});
    for (std::size_t kmax : {1u, 5u, 10u, 50u, 500u}) {
      MethodConfig config;
      config.pps_kmax = kmax;
      RunResult run = evaluator.Run(
          [&] { return MakeResolver(MethodId::kPps, cora.value(), config); });
      table.AddRow({std::to_string(kmax), FormatDouble(run.auc_norm[0], 3),
                    FormatDouble(run.auc_norm[1], 3),
                    FormatDouble(run.final_recall, 3)});
    }
    table.Print();
    std::printf("Reading: tiny Kmax truncates neighborhoods (recall cap); "
                "large Kmax\ndilutes early quality with low-weight "
                "comparisons.\n\n");
  }

  {
    std::printf("== SA-PSAB lmin sweep (restaurant) ==\n");
    ProgressiveEvaluator evaluator(restaurant.value().truth, options);
    TextTable table({"lmin", "nodes", "total comparisons", "AUC*@1",
                     "AUC*@5", "recall@10", "init (s)"});
    for (std::size_t lmin : {2u, 3u, 4u, 6u}) {
      MethodConfig config;
      config.suffix.lmin = lmin;
      SuffixForest forest =
          SuffixForest::Build(restaurant.value().store, config.suffix);
      RunResult run = evaluator.Run([&] {
        return MakeResolver(MethodId::kSaPsab, restaurant.value(), config);
      });
      table.AddRow({std::to_string(lmin), FormatCount(forest.nodes().size()),
                    FormatCount(forest.TotalComparisons()),
                    FormatDouble(run.auc_norm[0], 3),
                    FormatDouble(run.auc_norm[1], 3),
                    FormatDouble(run.final_recall, 3),
                    FormatDouble(run.init_seconds, 2)});
    }
    table.Print();
    std::printf(
        "Reading: the capped early budget is served entirely by the leaf\n"
        "layer (full tokens), so early quality is lmin-invariant; lmin\n"
        "instead governs the forest size and the flood of near-root\n"
        "comparisons a full run would have to wade through.\n");
  }
  return 0;
}
