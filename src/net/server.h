#ifndef SPER_NET_SERVER_H_
#define SPER_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/mutex.h"
#include "core/status.h"
#include "core/thread_annotations.h"
#include "engine/resolver.h"
#include "net/socket.h"
#include "obs/registry.h"
#include "obs/telemetry.h"
#include "serving/qos.h"

/// \file server.h
/// The socket front-end over ResolverSession + QoS: a Server listens on a
/// TCP endpoint, speaks the net/wire.h protocol, and funnels every remote
/// ResolveRequest through one QosAdmissionController into the Resolver —
/// so remote clients get exactly the serving semantics in-process callers
/// get (ticketed FIFO admission, priority lanes, rate limiting, shedding
/// with retry_after_ms, deadline enforcement), and concatenating the
/// slices any set of connections received, re-sorted by ticket, is
/// bit-identical to one un-batched in-process drain.
///
/// Threading model: one acceptor thread polls the listening socket, and
/// each accepted connection gets its own blocking reader/writer thread
/// (thread-per-connection — the protocol is strict request/response per
/// connection, concurrency comes from many connections, and the QoS
/// controller serializes dispatch anyway, so an event loop would buy
/// nothing but complexity). All shared state is either behind sper::Mutex
/// (the connection table, the stopping flag) or atomic (ServerStats), so
/// the server runs clean under TSan and thread-safety analysis.
///
/// Per-connection protocol loop:
///   - a well-framed kResolveRequest that decodes + validates is served:
///     `client_id` 0 (anonymous) is replaced by the connection's own id so
///     per-client QoS still applies per connection; `max_batch` 0
///     (uncapped) is clamped to ResolveRequest::kMaxBatch so the response
///     always fits one frame;
///   - a well-framed kResolveRequest that fails decode/validation gets a
///     polite kResolveResult{kRejected, InvalidArgument} reply and the
///     connection stays open;
///   - a framing-level error (bad length, foreign version, unknown or
///     unexpected frame type) means the byte stream can no longer be
///     trusted: the connection is closed (counted in protocol_errors);
///   - kMetricsRequest returns the live obs::Registry stable-JSON
///     snapshot (schema "sper.metrics.v1"), or "{}" without a registry.
///
/// Graceful drain: Shutdown() (idempotent; also the SIGTERM path in
/// `sper_cli serve`) stops accepting, shuts down the read half of every
/// live connection — in-flight responses still flush, blocked reads wake
/// at a frame boundary — joins every connection thread, then calls
/// Resolver::Drain() so the engine quiesces. A request mid-serve during
/// Shutdown completes and its response is written before the close.
///
/// Fault seams (obs/fault_injection.h): "net.accept" after each accepted
/// connection (a thrown fault drops that connection before serving),
/// "net.read" before each frame read and "net.write" before each frame
/// write (a thrown fault acts as that peer disconnecting). A fault on one
/// connection never poisons the resolver or any other connection's
/// stream.

namespace sper {
namespace net {

/// Construction-time configuration of a Server.
struct ServerOptions {
  /// Endpoint to bind. Port 0 binds an ephemeral port; read the real one
  /// back with Server::port().
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  /// listen(2) backlog.
  int backlog = 64;

  /// Connections served concurrently; an accept beyond this is closed
  /// immediately (counted in connections_rejected). 0 = unbounded.
  std::size_t max_connections = 64;

  /// Admission control applied to every remote request. Must Validate().
  serving::QosOptions qos;

  /// Metric sink for the net.* counters/gauges/histograms and the
  /// "request" span. Usually shares the registry below.
  obs::TelemetryScope telemetry;

  /// Registry served by the kMetricsRequest admin frame. Falls back to
  /// telemetry's registry; "{}" when neither is set.
  obs::Registry* metrics_registry = nullptr;
};

/// Monotonic counters, readable at any time (atomics — available with
/// telemetry compiled out; the net.* metrics mirror them).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  // over max_connections / fault
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;   // including length prefixes
  std::uint64_t bytes_out = 0;  // including length prefixes
  std::uint64_t requests_served = 0;   // resolve requests dispatched to QoS
  std::uint64_t requests_rejected = 0;  // polite invalid-request replies
  std::uint64_t read_errors = 0;
  std::uint64_t write_errors = 0;
  std::uint64_t protocol_errors = 0;  // framing errors that closed a conn
};

class Server {
 public:
  /// Binds, listens and starts the acceptor. The resolver must outlive
  /// the server. `options.qos` must Validate() (SPER_CHECK-enforced, as
  /// in QosAdmissionController).
  static Result<std::unique_ptr<Server>> Start(Resolver& resolver,
                                               ServerOptions options);

  /// Stops accepting, drains in-flight requests, joins every thread and
  /// calls Resolver::Drain(). Idempotent; also run by the destructor.
  void Shutdown();

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (the real one when options.port was 0).
  std::uint16_t port() const { return port_; }

  ServerStats stats() const;

  /// The admission controller remote requests flow through (tests read
  /// its per-class stats).
  const serving::QosAdmissionController& qos() const { return *qos_; }

 private:
  /// One accepted connection: the socket, its serving thread, and a done
  /// flag the acceptor uses to reap finished threads between accepts.
  struct Connection {
    Socket socket;
    std::uint64_t id = 0;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  Server(Resolver& resolver, ServerOptions options);

  void AcceptLoop();
  /// Joins and discards connections whose threads have finished.
  void ReapFinished();
  /// Runs ServeConnection and flags completion; a thrown injected fault
  /// is contained here as a disconnect.
  void ConnectionMain(Connection* conn);
  /// The per-connection protocol loop (see the file comment).
  void ServeConnection(Connection& conn);
  /// Serves one decoded-or-not resolve request payload; returns the
  /// response frame.
  std::string HandleResolveFrame(const Connection& conn,
                                 std::string_view payload);
  /// The kMetricsRequest snapshot ("{}" without a registry).
  std::string MetricsJson() const;
  /// Pokes the acceptor's poll (non-blocking write to the wake pipe).
  void WakeAcceptor();

  Resolver& resolver_;
  const ServerOptions options_;
  std::unique_ptr<serving::QosAdmissionController> qos_;

  Socket listen_socket_;
  std::uint16_t port_ = 0;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;

  std::thread acceptor_;
  /// Set once in Start() after the acceptor launches; a server that never
  /// started (failed bind) must not drain the caller's resolver.
  bool started_ = false;

  mutable Mutex mutex_;
  CondVar shutdown_cv_;
  bool stopping_ SPER_GUARDED_BY(mutex_) = false;
  bool drained_ SPER_GUARDED_BY(mutex_) = false;
  std::uint64_t next_connection_id_ SPER_GUARDED_BY(mutex_) = 1;
  std::vector<std::unique_ptr<Connection>> connections_
      SPER_GUARDED_BY(mutex_);

  /// stats() sources (atomics: written from acceptor + connection
  /// threads, read from anywhere).
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> requests_rejected_{0};
  std::atomic<std::uint64_t> read_errors_{0};
  std::atomic<std::uint64_t> write_errors_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};

  /// Metric mirrors (nullptr when telemetry is disabled).
  obs::Counter* connections_metric_ = nullptr;
  obs::Counter* frames_in_metric_ = nullptr;
  obs::Counter* frames_out_metric_ = nullptr;
  obs::Counter* bytes_in_metric_ = nullptr;
  obs::Counter* bytes_out_metric_ = nullptr;
  obs::Counter* requests_metric_ = nullptr;
  obs::Counter* read_errors_metric_ = nullptr;
  obs::Counter* write_errors_metric_ = nullptr;
  obs::Counter* protocol_errors_metric_ = nullptr;
  obs::Gauge* active_connections_metric_ = nullptr;
  obs::Histogram* request_ns_metric_ = nullptr;
};

}  // namespace net
}  // namespace sper

#endif  // SPER_NET_SERVER_H_
