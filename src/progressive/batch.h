#ifndef SPER_PROGRESSIVE_BATCH_H_
#define SPER_PROGRESSIVE_BATCH_H_

#include <cstdint>
#include <vector>

#include "blocking/block_collection.h"
#include "core/comparison.h"
#include "core/profile_store.h"

/// \file batch.h
/// Batch ER over a block collection (paper Sec. 3.1): execute all entailed
/// comparisons without a meaningful order. Used as the reference for the
/// *Same Eventual Quality* requirement — a progressive method run to
/// exhaustion must produce the same distinct comparison set as its batch
/// counterpart — and as the unordered baseline in examples.

namespace sper {

/// All distinct valid comparisons of the collection, in first-occurrence
/// (block id, in-block) order, weight 0. A pair appearing in several
/// blocks is reported once.
std::vector<Comparison> DistinctBlockComparisons(const BlockCollection& blocks,
                                                 const ProfileStore& store);

/// Number of distinct valid comparisons (|| the deduplicated B ||).
std::uint64_t CountDistinctComparisons(const BlockCollection& blocks,
                                       const ProfileStore& store);

}  // namespace sper

#endif  // SPER_PROGRESSIVE_BATCH_H_
