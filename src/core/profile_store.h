#ifndef SPER_CORE_PROFILE_STORE_H_
#define SPER_CORE_PROFILE_STORE_H_

#include <cstddef>
#include <vector>

#include "core/profile.h"
#include "core/types.h"

/// \file profile_store.h
/// Owns the profile collection(s) of an ER task and encodes which profile
/// pairs are valid candidate comparisons.

namespace sper {

/// The profile collection(s) of one ER task.
///
/// Both ER forms share one contiguous array of profiles:
/// - Dirty ER: one collection P; every distinct pair is comparable.
/// - Clean-Clean ER: P1 followed by P2; ids < split_index() belong to P1
///   and only cross-source pairs are comparable.
///
/// This mirrors how the paper's methods treat the two settings uniformly
/// ("a neighbor pj is considered valid only if pj belongs to P2", Sec. 5.1).
class ProfileStore {
 public:
  /// Builds a Dirty ER store from one collection. Assigns dense ids 0..n-1.
  static ProfileStore MakeDirty(std::vector<Profile> profiles);

  /// Builds a Clean-Clean ER store from two duplicate-free collections.
  /// Source-1 profiles receive ids 0..|P1|-1, source-2 the rest.
  static ProfileStore MakeCleanClean(std::vector<Profile> source1,
                                     std::vector<Profile> source2);

  /// Which ER form this store represents.
  ErType er_type() const { return er_type_; }

  /// Total number of profiles, |P| (for Clean-Clean: |P1| + |P2|).
  std::size_t size() const { return profiles_.size(); }

  /// First id of source 2; equals size() for Dirty ER.
  ProfileId split_index() const { return split_index_; }

  /// Number of profiles in source 1 (== size() for Dirty ER).
  std::size_t source1_size() const { return split_index_; }

  /// Number of profiles in source 2 (0 for Dirty ER).
  std::size_t source2_size() const { return profiles_.size() - split_index_; }

  /// The profile with the given dense id.
  const Profile& profile(ProfileId id) const { return profiles_[id]; }

  /// All profiles, id order.
  const std::vector<Profile>& profiles() const { return profiles_; }

  /// True iff `id` belongs to source 1 (always true for Dirty ER).
  bool InSource1(ProfileId id) const { return id < split_index_; }

  /// The paper's comparison-validity rule: distinct profiles for Dirty ER,
  /// profiles of different sources for Clean-Clean ER.
  bool IsComparable(ProfileId a, ProfileId b) const {
    if (a == b) return false;
    if (er_type_ == ErType::kDirty) return true;
    return InSource1(a) != InSource1(b);
  }

  /// Average number of name-value pairs per profile (Table 2's |p̄|).
  double MeanProfileSize() const;

 private:
  ProfileStore(ErType type, std::vector<Profile> profiles,
               ProfileId split_index);

  ErType er_type_;
  std::vector<Profile> profiles_;
  ProfileId split_index_;
};

}  // namespace sper

#endif  // SPER_CORE_PROFILE_STORE_H_
