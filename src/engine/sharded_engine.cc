#include "engine/sharded_engine.h"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

#include "obs/fault_injection.h"
#include "obs/telemetry.h"
#include "parallel/thread_pool.h"

namespace sper {

namespace {

/// A shard can yield comparisons only with two distinct profiles (Dirty)
/// or at least one profile on each side (Clean-Clean). Engines are not
/// constructed for barren shards.
bool ShardHasCandidates(const ProfileStore& store) {
  if (store.er_type() == ErType::kCleanClean) {
    return store.source1_size() > 0 && store.source2_size() > 0;
  }
  return store.size() >= 2;
}

}  // namespace

ShardedEngine::ShardedEngine(const ProfileStore& store, EngineConfig config,
                             std::size_t num_shards)
    : config_(std::move(config)) {
  const obs::Stopwatch init_watch;
  if (num_shards == 0) num_shards = 1;
  if (config_.num_threads == 0) config_.num_threads = 1;
  budget_ = config_.budget;
  const obs::TelemetryScope& scope = config_.telemetry;

  {
    double partition_seconds = 0.0;
    obs::ScopedPhase phase(scope, "partition", &partition_seconds);
    shards_ = PartitionStore(store, num_shards);
    phase.Stop();
    stats_.phases.push_back({"partition", 0, partition_seconds});
  }
  engines_.resize(shards_.size());
  stats_.shard_sizes.reserve(shards_.size());
  for (const StoreShard& shard : shards_) {
    stats_.shard_sizes.push_back(shard.store.size());
  }

  // Per-shard engine options: inner engines run unbudgeted (the global
  // budget caps the merged stream) and split the total thread budget
  // across the shard constructions running concurrently.
  const std::size_t concurrency =
      std::max<std::size_t>(
          1, std::min(shards_.size(), config_.num_threads));
  EngineConfig inner = config_;
  inner.budget = 0;
  inner.num_threads =
      std::max<std::size_t>(1, config_.num_threads / concurrency);

  // Parallel shard refills (lookahead > 0, batch-refilling method): a
  // shared pool hosts every shard's emission-pipeline producer. It needs
  // one worker per live pipeline — a producer that queues behind another
  // shard's would never run, and the merge blocks forever on that shard's
  // first head. Sort-based methods never start a pipeline, so spawning
  // workers for them would just park S idle threads. The worker-per-shard
  // requirement also means the pool cannot be shrunk below the pipeline
  // count, so past kMaxPipelinedShards the engine falls back to serial
  // refills (always correct, same output) instead of spawning an OS
  // thread per shard.
  constexpr std::size_t kMaxPipelinedShards = 64;
  std::size_t active_shards = 0;
  for (const StoreShard& shard : shards_) {
    if (ShardHasCandidates(shard.store)) ++active_shards;
  }
  if (inner.lookahead > 0 && MethodHasBatchRefills(inner.method) &&
      active_shards > 0) {
    if (active_shards <= kMaxPipelinedShards) {
      emission_pool_ = std::make_unique<ThreadPool>(active_shards);
      if (scope.enabled()) {
        emission_pool_->set_dropped_exceptions_counter(
            scope.counter("pool.dropped_exceptions"));
      }
    } else {
      inner.lookahead = 0;
    }
  }

  // Each shard gets a "shard<S>."-prefixed sub-scope, so concurrent
  // shard constructions write disjoint metric names (registry creation is
  // mutex-protected either way). The matching instance label makes a
  // shard's contained failures and fault seams attributable
  // ("refill.shard<S>").
  const auto shard_options = [&](std::size_t s) {
    EngineConfig shard_inner = inner;
    shard_inner.telemetry = scope.Sub("shard" + std::to_string(s));
    shard_inner.instance_label = "shard" + std::to_string(s);
    return shard_inner;
  };
  if (concurrency <= 1) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (!ShardHasCandidates(shards_[s].store)) continue;
      engines_[s] = std::make_unique<ProgressiveEngine>(
          shards_[s].store, shard_options(s), emission_pool_.get());
    }
  } else {
    ThreadPool pool(concurrency);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (!ShardHasCandidates(shards_[s].store)) continue;
      pool.Submit([this, s, &shard_options] {
        engines_[s] = std::make_unique<ProgressiveEngine>(
            shards_[s].store, shard_options(s), emission_pool_.get());
      });
    }
    pool.Wait();
  }

  // Register the per-shard streams in shard order: the merge breaks exact
  // ties by stream index, so shard order is part of the deterministic
  // contract. Each stream translates shard-local ids to original ids;
  // local order preserves global order within each source, so the
  // canonical (i < j) form survives translation.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (engines_[s] == nullptr) continue;
    stats_.num_blocks += engines_[s]->init_stats().num_blocks;
    stats_.aggregate_cardinality +=
        engines_[s]->init_stats().aggregate_cardinality;
    for (const InitPhase& phase : engines_[s]->init_stats().phases) {
      stats_.phases.push_back({phase.name, s, phase.seconds});
    }
    ProgressiveEngine* engine = engines_[s].get();
    const std::vector<ProfileId>* to_global = &shards_[s].to_global;
    // A shard pull that gives up must come back as kBlocked — kExhausted
    // would drop the shard from the merge permanently. Errors also map to
    // kBlocked (state intact) after adopting the shard's sticky status;
    // PullUnbudgeted disambiguates the two via status_.
    merge_.AddStream(KWayMerge<Comparison, ByWeightDesc>::Stream(
        [this, engine, to_global](Comparison& out) {
          Comparison local;
          switch (engine->Pull(local, request_token_)) {
            case PullStatus::kOk:
              out = Comparison((*to_global)[local.i], (*to_global)[local.j],
                               local.weight);
              return MergeStatus::kItem;
            case PullStatus::kExhausted:
              return MergeStatus::kExhausted;
            case PullStatus::kCancelled:
              return MergeStatus::kBlocked;
            case PullStatus::kError:
              if (status_.ok()) status_ = engine->status();
              return MergeStatus::kBlocked;
          }
          return MergeStatus::kExhausted;
        }));
    if (scope.enabled()) {
      draw_counters_.push_back(
          scope.counter("merge.shard" + std::to_string(s) + ".draws"));
    }
  }

  stats_.init_seconds = init_watch.ElapsedSeconds();
  scope.RecordSpan("init", init_watch.start(), obs::Stopwatch::Now());
  if (obs::Gauge* total = scope.gauge("phase.init_seconds");
      total != nullptr) {
    total->Add(stats_.init_seconds);
  }
}

PullStatus ShardedEngine::PullUnbudgeted(Comparison& out,
                                         const CancelToken& token) {
  request_token_ = token;
  try {
    SPER_FAULT_HIT("merge.draw");
    switch (merge_.Next(out)) {
      case MergeStatus::kItem:
        if (!draw_counters_.empty()) {
          draw_counters_[merge_.last_stream()]->Add();
        }
        return PullStatus::kOk;
      case MergeStatus::kExhausted:
        return PullStatus::kExhausted;
      case MergeStatus::kBlocked:
        // Either the token fired mid-pull (merge state intact, the next
        // request resumes losslessly) or a shard poisoned itself and its
        // status was adopted above.
        return status_.ok() ? PullStatus::kCancelled : PullStatus::kError;
    }
  } catch (const std::exception& e) {
    if (status_.ok()) {
      status_ = Status::Internal(std::string("merge draw failed: ") +
                                 e.what());
    }
    return PullStatus::kError;
  } catch (...) {
    if (status_.ok()) {
      status_ = Status::Internal("merge draw failed: unknown error");
    }
    return PullStatus::kError;
  }
  return PullStatus::kExhausted;
}

void ShardedEngine::Drain() {
  drained_ = true;
  for (std::unique_ptr<ProgressiveEngine>& engine : engines_) {
    if (engine != nullptr) engine->Drain();
  }
  // With every pipeline shut down the workers are idle; joining them here
  // (instead of at destruction) is what "graceful drain" promises.
  emission_pool_.reset();
}

std::string_view ShardedEngine::name() const {
  return ToString(config_.method);
}

}  // namespace sper
