// Method selection in practice (the paper's Sec. 8 guidelines): run the
// four advanced schema-agnostic methods on a curated structured dataset
// and on an RDF-style one, and watch the similarity/equality split emerge:
//
//   - structured, character-level noise  -> similarity-based LS/GS-PSN win;
//   - URI-heavy semi-structured data     -> equality-based PBS/PPS win.
//
//   $ ./method_selection

#include <cstdio>

#include "datagen/datagen.h"
#include "eval/evaluator.h"
#include "eval/experiment.h"
#include "eval/table.h"

namespace {

void Report(const sper::DatasetBundle& dataset, double ecstar_max) {
  using namespace sper;
  std::printf("--- %s: %zu profiles, %zu matches ---\n",
              dataset.name.c_str(), dataset.store.size(),
              dataset.truth.num_matches());
  EvalOptions options;
  options.ecstar_max = ecstar_max;
  options.auc_at = {1.0, 5.0};
  ProgressiveEvaluator evaluator(dataset.truth, options);
  MethodConfig config;

  TextTable table({"method", "AUC*@1", "AUC*@5", "recall@end"});
  for (MethodId id : {MethodId::kLsPsn, MethodId::kGsPsn, MethodId::kPbs,
                      MethodId::kPps}) {
    RunResult result = evaluator.Run(
        [&] { return MakeResolver(id, dataset, config); });
    table.AddRow({std::string(ToString(id)),
                  FormatDouble(result.auc_norm[0], 3),
                  FormatDouble(result.auc_norm[1], 3),
                  FormatDouble(result.final_recall, 3)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace sper;

  // A curated structured dataset: character-level typos only.
  Result<DatasetBundle> restaurant = GenerateDataset("restaurant");
  if (!restaurant.ok()) return 1;
  Report(restaurant.value(), 10.0);

  // An RDF-style dataset sample: URI boilerplate and opaque identifiers.
  DatagenOptions gen;
  gen.scale = 0.05;
  Result<DatasetBundle> freebase = GenerateDataset("freebase", gen);
  if (!freebase.ok()) return 1;
  Report(freebase.value(), 10.0);

  std::printf(
      "Guideline (paper Sec. 8): similarity-based methods only for curated\n"
      "structured data; equality-based methods are robust everywhere —\n"
      "PBS when the time budget is very tight (cheapest initialization),\n"
      "PPS otherwise.\n");
  return 0;
}
