// Unit tests for src/core: Status/Result, Profile, ProfileStore,
// GroundTruth, Comparison and the schema-agnostic tokenizer.

#include <gtest/gtest.h>

#include "core/comparison.h"
#include "core/ground_truth.h"
#include "core/profile.h"
#include "core/profile_store.h"
#include "core/status.h"
#include "core/tokenizer.h"

namespace sper {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad ratio");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad ratio");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad ratio");
}

TEST(StatusTest, EveryNamedConstructorSetsItsCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

// --------------------------------------------------------------- Profile

TEST(ProfileTest, StoresAttributesInOrder) {
  Profile p;
  p.AddAttribute("name", "carl");
  p.AddAttribute("city", "ny");
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.attributes()[0].name, "name");
  EXPECT_EQ(p.attributes()[1].value, "ny");
}

TEST(ProfileTest, ValueOfFindsFirstMatch) {
  Profile p;
  p.AddAttribute("starring", "alice");
  p.AddAttribute("starring", "bob");
  EXPECT_EQ(p.ValueOf("starring"), "alice");
  EXPECT_EQ(p.ValueOf("absent"), "");
}

TEST(ProfileTest, ConcatenatedValuesSkipsEmpty) {
  Profile p;
  p.AddAttribute("a", "x");
  p.AddAttribute("b", "");
  p.AddAttribute("c", "y z");
  EXPECT_EQ(p.ConcatenatedValues(), "x y z");
}

TEST(ProfileTest, IdIsInvalidUntilStored) {
  Profile p;
  EXPECT_EQ(p.id(), kInvalidProfile);
}

// ----------------------------------------------------------- ProfileStore

std::vector<Profile> MakeProfiles(std::size_t n) {
  std::vector<Profile> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].AddAttribute("v", "value" + std::to_string(i));
  }
  return out;
}

TEST(ProfileStoreTest, DirtyAssignsDenseIds) {
  ProfileStore store = ProfileStore::MakeDirty(MakeProfiles(3));
  EXPECT_EQ(store.er_type(), ErType::kDirty);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.split_index(), 3u);
  for (ProfileId i = 0; i < 3; ++i) {
    EXPECT_EQ(store.profile(i).id(), i);
    EXPECT_TRUE(store.InSource1(i));
  }
}

TEST(ProfileStoreTest, DirtyComparabilityExcludesSelfOnly) {
  ProfileStore store = ProfileStore::MakeDirty(MakeProfiles(3));
  EXPECT_FALSE(store.IsComparable(1, 1));
  EXPECT_TRUE(store.IsComparable(0, 1));
  EXPECT_TRUE(store.IsComparable(2, 0));
}

TEST(ProfileStoreTest, CleanCleanConcatenatesSources) {
  ProfileStore store =
      ProfileStore::MakeCleanClean(MakeProfiles(2), MakeProfiles(3));
  EXPECT_EQ(store.er_type(), ErType::kCleanClean);
  EXPECT_EQ(store.size(), 5u);
  EXPECT_EQ(store.split_index(), 2u);
  EXPECT_EQ(store.source1_size(), 2u);
  EXPECT_EQ(store.source2_size(), 3u);
  EXPECT_TRUE(store.InSource1(0));
  EXPECT_FALSE(store.InSource1(2));
}

TEST(ProfileStoreTest, CleanCleanComparabilityIsCrossSourceOnly) {
  ProfileStore store =
      ProfileStore::MakeCleanClean(MakeProfiles(2), MakeProfiles(2));
  EXPECT_FALSE(store.IsComparable(0, 1));  // both source 1
  EXPECT_FALSE(store.IsComparable(2, 3));  // both source 2
  EXPECT_TRUE(store.IsComparable(0, 2));
  EXPECT_TRUE(store.IsComparable(3, 1));
  EXPECT_FALSE(store.IsComparable(2, 2));
}

TEST(ProfileStoreTest, MeanProfileSizeAveragesNameValuePairs) {
  std::vector<Profile> ps(2);
  ps[0].AddAttribute("a", "1");
  ps[1].AddAttribute("a", "1");
  ps[1].AddAttribute("b", "2");
  ps[1].AddAttribute("c", "3");
  ProfileStore store = ProfileStore::MakeDirty(std::move(ps));
  EXPECT_DOUBLE_EQ(store.MeanProfileSize(), 2.0);
}

// ------------------------------------------------------------ Comparison

TEST(ComparisonTest, CanonicalizesPairOrder) {
  Comparison c(7, 3, 0.5);
  EXPECT_EQ(c.i, 3u);
  EXPECT_EQ(c.j, 7u);
}

TEST(ComparisonTest, PairKeyIsSymmetric) {
  EXPECT_EQ(PairKey(3, 7), PairKey(7, 3));
  EXPECT_NE(PairKey(3, 7), PairKey(3, 8));
}

TEST(ComparisonTest, ByWeightDescOrdersAndBreaksTiesDeterministically) {
  Comparison a(0, 1, 0.9);
  Comparison b(0, 2, 0.9);
  Comparison c(0, 3, 1.5);
  ByWeightDesc less;
  EXPECT_TRUE(less(c, a));   // higher weight first
  EXPECT_TRUE(less(a, b));   // tie -> smaller (i, j) first
  EXPECT_FALSE(less(b, a));
}

// ------------------------------------------------------------ GroundTruth

TEST(GroundTruthTest, AddMatchIsIdempotentAndIgnoresSelfPairs) {
  GroundTruth gt;
  gt.AddMatch(1, 2);
  gt.AddMatch(2, 1);
  gt.AddMatch(3, 3);
  EXPECT_EQ(gt.num_matches(), 1u);
  EXPECT_TRUE(gt.AreMatching(1, 2));
  EXPECT_TRUE(gt.AreMatching(2, 1));
  EXPECT_FALSE(gt.AreMatching(1, 3));
}

TEST(GroundTruthTest, FromClustersExpandsAllPairs) {
  GroundTruth gt = GroundTruth::FromClusters({{1, 2, 3}, {4, 5}, {6}});
  EXPECT_EQ(gt.num_matches(), 4u);  // C(3,2) + C(2,2) + 0
  EXPECT_TRUE(gt.AreMatching(1, 3));
  EXPECT_TRUE(gt.AreMatching(4, 5));
  EXPECT_FALSE(gt.AreMatching(3, 4));
}

TEST(GroundTruthTest, ValidateAcceptsConsistentDirtyTruth) {
  ProfileStore store = ProfileStore::MakeDirty(MakeProfiles(4));
  GroundTruth gt;
  gt.AddMatch(0, 3);
  EXPECT_TRUE(gt.Validate(store).ok());
}

TEST(GroundTruthTest, ValidateRejectsOutOfRangeIds) {
  ProfileStore store = ProfileStore::MakeDirty(MakeProfiles(2));
  GroundTruth gt;
  gt.AddMatch(0, 9);
  EXPECT_EQ(gt.Validate(store).code(), StatusCode::kInvalidArgument);
}

TEST(GroundTruthTest, ValidateRejectsSameSourcePairsForCleanClean) {
  ProfileStore store =
      ProfileStore::MakeCleanClean(MakeProfiles(2), MakeProfiles(2));
  GroundTruth gt;
  gt.AddMatch(0, 1);  // both in source 1
  EXPECT_EQ(gt.Validate(store).code(), StatusCode::kInvalidArgument);
}

// -------------------------------------------------------------- Tokenizer

TEST(TokenizerTest, SplitsOnNonAlphanumericAndLowercases) {
  EXPECT_EQ(TokenizeValue("Carl White, NY"),
            (std::vector<std::string>{"carl", "white", "ny"}));
}

TEST(TokenizerTest, UriDecomposesIntoSegments) {
  EXPECT_EQ(TokenizeValue("http://dbpedia.org/resource/Carl_White"),
            (std::vector<std::string>{"http", "dbpedia", "org", "resource",
                                      "carl", "white"}));
}

TEST(TokenizerTest, KeepsDigitsAndMixedTokens) {
  EXPECT_EQ(TokenizeValue("m.0abc12"),
            (std::vector<std::string>{"m", "0abc12"}));
}

TEST(TokenizerTest, MinTokenLengthDropsShortTokens) {
  TokenizerOptions options;
  options.min_token_length = 3;
  EXPECT_EQ(TokenizeValue("a bb ccc dddd", options),
            (std::vector<std::string>{"ccc", "dddd"}));
}

TEST(TokenizerTest, LowercaseCanBeDisabled) {
  TokenizerOptions options;
  options.lowercase = false;
  EXPECT_EQ(TokenizeValue("Ab cD", options),
            (std::vector<std::string>{"Ab", "cD"}));
}

TEST(TokenizerTest, EmptyValueYieldsNoTokens) {
  EXPECT_TRUE(TokenizeValue("").empty());
  EXPECT_TRUE(TokenizeValue("-- ,, !!").empty());
}

TEST(TokenizerTest, DistinctProfileTokensSortsAndDeduplicates) {
  Profile p;
  p.AddAttribute("name", "White Carl");
  p.AddAttribute("note", "white tailor");
  EXPECT_EQ(DistinctProfileTokens(p),
            (std::vector<std::string>{"carl", "tailor", "white"}));
}

}  // namespace
}  // namespace sper
