#include "eval/experiment.h"

#include "engine/progressive_engine.h"
#include "engine/sharded_engine.h"

namespace sper {

std::unique_ptr<ProgressiveEmitter> MakeEmitter(MethodId id,
                                                const DatasetBundle& dataset,
                                                const MethodConfig& config) {
  if (id == MethodId::kPsn && !dataset.psn_key) return nullptr;
  EngineOptions options;
  options.method = id;
  options.num_threads = config.num_threads;
  options.lookahead = config.lookahead;
  options.workflow = config.workflow;
  options.scheme = config.scheme;
  options.pps_kmax = config.pps_kmax;
  options.gs_wmax = config.gs_wmax;
  options.suffix = config.suffix;
  options.list = config.list;
  options.schema_key = dataset.psn_key;
  if (config.num_shards > 1) {
    ShardedEngineOptions sharded;
    sharded.num_shards = config.num_shards;
    sharded.engine = std::move(options);
    return std::make_unique<ShardedEngine>(dataset.store,
                                           std::move(sharded));
  }
  return std::make_unique<ProgressiveEngine>(dataset.store,
                                             std::move(options));
}

const std::vector<MethodId>& StructuredMethodSet() {
  static const std::vector<MethodId> methods = {
      MethodId::kPsn,   MethodId::kSaPsn, MethodId::kSaPsab,
      MethodId::kLsPsn, MethodId::kGsPsn, MethodId::kPbs,
      MethodId::kPps};
  return methods;
}

const std::vector<MethodId>& HeterogeneousMethodSet() {
  static const std::vector<MethodId> methods = {
      MethodId::kSaPsn, MethodId::kSaPsab, MethodId::kLsPsn,
      MethodId::kGsPsn, MethodId::kPbs,    MethodId::kPps};
  return methods;
}

}  // namespace sper
