#include <string>
#include <vector>

#include "datagen/corruption.h"
#include "datagen/datagen.h"
#include "datagen/dictionaries.h"
#include "datagen/generator_util.h"
#include "datagen/rng.h"

/// Synthetic `restaurant` (Table 2: Dirty ER, 864 profiles, 5 attributes,
/// 112 matches, 5.00 name-value pairs).
///
/// Models the Fodor's/Zagat restaurant guide merge: duplicate listings of
/// the same venue with abbreviations ("street" -> "st"), dropped name
/// tokens and reformatted phone numbers — but *high token overlap* between
/// matches. This is the regime where the paper reports PPS almost ideal
/// (AUC*@1 = 0.93) and all advanced schema-agnostic methods far ahead of
/// PSN.

namespace sper {

namespace {

struct Venue {
  std::string name;
  std::string address;
  std::string city;
  std::string phone;
  std::string cuisine;
};

Venue MakeVenue(Rng& rng, const std::vector<std::string>& name_words) {
  Venue venue;
  venue.name = rng.Pick(name_words);
  if (rng.Bernoulli(0.7)) venue.name += " " + rng.Pick(name_words);
  if (rng.Bernoulli(0.5)) venue.name += " " + rng.Pick(Cuisines());
  venue.address = std::to_string(rng.UniformInt(1, 9999)) + " " +
                  rng.Pick(StreetWords()) + " " + rng.Pick(StreetWords());
  venue.city = rng.Pick(Cities());
  venue.phone = std::to_string(rng.UniformInt(200, 999)) + "-" +
                std::to_string(rng.UniformInt(200, 999)) + "-" +
                ZeroPad(rng.UniformInt(0, 9999), 4);
  venue.cuisine = rng.Pick(Cuisines());
  return venue;
}

Profile MakeListing(Rng& rng, const Venue& venue, bool corrupted) {
  Venue listing = venue;
  if (corrupted) {
    listing.name = TokenNoise(rng, listing.name,
                              {.drop_rate = 0.15, .swap_rate = 0.1,
                               .abbreviate_rate = 0.1});
    listing.name = MaybeTypo(rng, listing.name, 0.15);
    // Guide-style address abbreviation keeps the number and street word.
    listing.address = TokenNoise(rng, listing.address,
                                 {.drop_rate = 0.0, .swap_rate = 0.0,
                                  .abbreviate_rate = 0.3});
    if (rng.Bernoulli(0.25)) {
      // Phone re-formatted with slashes; tokens stay identical.
      for (char& c : listing.phone) {
        if (c == '-') c = '/';
      }
    }
    if (rng.Bernoulli(0.15)) listing.cuisine = rng.Pick(Cuisines());
  }

  Profile profile;
  profile.AddAttribute("name", listing.name);
  profile.AddAttribute("address", listing.address);
  profile.AddAttribute("city", listing.city);
  profile.AddAttribute("phone", listing.phone);
  profile.AddAttribute("cuisine", listing.cuisine);
  return profile;
}

}  // namespace

DatasetBundle GenerateRestaurant(const DatagenOptions& options) {
  Rng rng(options.seed * 1000003 + 2);

  // Venue-name vocabulary: 300 generated words + the common-word pool, so
  // listings share some non-discriminative tokens ("golden", "river").
  std::vector<std::string> name_words = SyllablePool(rng, 300);
  for (const std::string& w : CommonWords()) name_words.push_back(w);

  // 112 clusters of 2 -> 112 matching pairs; 640 singletons -> 864 total.
  ClusterPlan plan;
  plan.clusters_of_size = {{2, 112}};
  plan.singletons = 640;
  plan = plan.Scaled(options.scale);

  std::vector<std::vector<Profile>> clusters;
  for (const auto& [size, count] : plan.clusters_of_size) {
    for (std::size_t c = 0; c < count; ++c) {
      const Venue venue = MakeVenue(rng, name_words);
      std::vector<Profile> cluster;
      cluster.push_back(MakeListing(rng, venue, /*corrupted=*/false));
      for (std::size_t m = 1; m < size; ++m) {
        cluster.push_back(MakeListing(rng, venue, /*corrupted=*/true));
      }
      clusters.push_back(std::move(cluster));
    }
  }
  std::vector<Profile> singletons;
  for (std::size_t s = 0; s < plan.singletons; ++s) {
    singletons.push_back(
        MakeListing(rng, MakeVenue(rng, name_words), /*corrupted=*/false));
  }

  DirtyAssembly assembly =
      AssembleDirty(rng, std::move(clusters), std::move(singletons));
  return DatasetBundle{
      "restaurant",
      std::move(assembly.store),
      std::move(assembly.truth),
      // Literature-style key: name prefix + city.
      [](const Profile& p) {
        const std::string name(p.ValueOf("name"));
        if (name.empty()) return std::string();
        std::string key = name.substr(0, 3);
        key += p.ValueOf("city");
        return key;
      },
      "synthetic restaurant-guide listings; abbreviations and token noise, "
      "high token overlap between matches"};
}

}  // namespace sper
