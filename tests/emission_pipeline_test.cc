// Emission pipeline suite. The contract under test
// (src/parallel/emission_pipeline.h + engine wiring):
//
// - the pipelined emission stream is *bit-identical* to the serial
//   reference path (lookahead 0) for PPS and PBS on Dirty and
//   Clean-Clean stores, at every lookahead (1/4/64) and init thread
//   count (1/2/4/8);
// - the same holds through ShardedEngine (S = 1/4): parallel per-shard
//   refills never change the merged order;
// - the pay-as-you-go budget composes with the pipeline, and abandoning
//   a pipelined stream mid-flight (budget exhaustion, early destruction)
//   shuts down cleanly — no hang, no leak, producer unblocked;
// - the SpscSlotRing / EmissionPipeline primitives handle shutdown,
//   exhaustion and producer exceptions.

#include <gtest/gtest.h>

#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "datagen/datagen.h"
#include "engine/progressive_engine.h"
#include "engine/sharded_engine.h"
#include "parallel/emission_pipeline.h"
#include "parallel/spsc_ring.h"
#include "parallel/thread_pool.h"

namespace sper {
namespace {

ProfileStore DirtyStore() {
  Result<DatasetBundle> ds = GenerateDataset("restaurant", {});
  EXPECT_TRUE(ds.ok());
  return std::move(ds.value().store);
}

ProfileStore CleanCleanStore() {
  DatagenOptions gen;
  gen.scale = 0.1;
  Result<DatasetBundle> ds = GenerateDataset("movies", gen);
  EXPECT_TRUE(ds.ok());
  return std::move(ds.value().store);
}

std::vector<Comparison> Drain(ProgressiveEmitter* emitter,
                              std::size_t limit) {
  std::vector<Comparison> out;
  while (out.size() < limit) {
    std::optional<Comparison> c = emitter->Next();
    if (!c.has_value()) break;
    out.push_back(*c);
  }
  return out;
}

void ExpectSameSequence(const std::vector<Comparison>& a,
                        const std::vector<Comparison>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].i, b[k].i) << "position " << k;
    EXPECT_EQ(a[k].j, b[k].j) << "position " << k;
    EXPECT_EQ(a[k].weight, b[k].weight) << "position " << k;
  }
}

// ------------------------------------------------------- SpscSlotRing unit

TEST(SpscSlotRingTest, HandsOverEverythingInOrder) {
  SpscSlotRing<int> ring(3);
  ThreadPool pool(1);
  pool.Submit([&ring] {
    for (int v = 0; v < 100; ++v) {
      int* slot = ring.AcquireSlot();
      ASSERT_NE(slot, nullptr);
      *slot = v;
      ring.CommitSlot();
    }
    ring.FinishProduction();
  });
  std::vector<int> seen;
  for (;;) {
    int* front = ring.Front();
    if (front == nullptr) break;
    seen.push_back(*front);
    ring.PopFront();
  }
  pool.Wait();
  std::vector<int> expected(100);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(seen, expected);
}

TEST(SpscSlotRingTest, CloseUnblocksAFullRingProducer) {
  SpscSlotRing<int> ring(1);
  ThreadPool pool(1);
  pool.Submit([&ring] {
    // Fill the single slot, then block on the second acquire until the
    // consumer closes the ring.
    int* slot = ring.AcquireSlot();
    ASSERT_NE(slot, nullptr);
    ring.CommitSlot();
    EXPECT_EQ(ring.AcquireSlot(), nullptr);
    ring.FinishProduction();
  });
  ASSERT_NE(ring.Front(), nullptr);  // wait until the slot is committed
  ring.Close();
  pool.Wait();  // must not hang
}

TEST(SpscSlotRingTest, ZeroCapacityIsClampedToOneSlot) {
  SpscSlotRing<int> ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
}

// --------------------------------------------------- EmissionPipeline unit

TEST(EmissionPipelineTest, DrainsTheWholeStreamThenSignalsExhaustion) {
  ThreadPool pool(1);
  int next = 0;
  EmissionPipeline<std::vector<int>> pipeline(
      4, [&next](std::vector<int>& batch) {
        if (next >= 30) return false;
        batch.assign({next, next + 1, next + 2});
        next += 3;
        return true;
      });
  pipeline.Start(pool);
  std::vector<int> seen;
  for (;;) {
    std::vector<int>* front = pipeline.Front();
    if (front == nullptr) break;
    seen.insert(seen.end(), front->begin(), front->end());
    pipeline.PopFront();
  }
  EXPECT_EQ(pipeline.Front(), nullptr);  // exhaustion is sticky
  std::vector<int> expected(30);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(seen, expected);
}

TEST(EmissionPipelineTest, ShutdownMidStreamDoesNotHang) {
  ThreadPool pool(1);
  int produced = 0;
  {
    EmissionPipeline<std::vector<int>> pipeline(
        2, [&produced](std::vector<int>& batch) {
          batch.assign(1, produced++);
          return true;  // endless stream
        });
    pipeline.Start(pool);
    ASSERT_NE(pipeline.Front(), nullptr);  // consume one batch...
    pipeline.PopFront();
  }  // ...and abandon: the destructor closes the ring and joins
  const int at_shutdown = produced;
  EXPECT_GE(at_shutdown, 1);
  // The producer really exited: nothing is produced after shutdown.
  EXPECT_EQ(produced, at_shutdown);
}

TEST(EmissionPipelineTest, NeverStartedPipelineDestructsCleanly) {
  EmissionPipeline<std::vector<int>> pipeline(
      2, [](std::vector<int>&) { return false; });
}

TEST(EmissionPipelineTest, ProducerExceptionIsContainedWithBatchContext) {
  ThreadPool pool(1);
  int batches = 0;
  EmissionPipeline<std::vector<int>> pipeline(
      2, [&batches](std::vector<int>& batch) -> bool {
        if (batches == 2) throw std::runtime_error("producer died");
        batch.assign(1, batches++);
        return true;
      });
  pipeline.Start(pool);
  // The producer's death must surface as an end-of-stream plus error(),
  // never as an exception rethrown across Front().
  std::size_t drained = 0;
  for (;;) {
    std::vector<int>* front = pipeline.Front();
    if (front == nullptr) break;
    ++drained;
    pipeline.PopFront();
  }
  EXPECT_EQ(drained, 2u);
  const EmissionPipelineError error = pipeline.error();
  ASSERT_NE(error.exception, nullptr);
  EXPECT_EQ(error.batch_index, 2u);  // died producing the third batch
  EXPECT_THROW(std::rethrow_exception(error.exception), std::runtime_error);
}

TEST(EmissionPipelineTest, CleanExhaustionReportsNoError) {
  ThreadPool pool(1);
  int batches = 0;
  EmissionPipeline<std::vector<int>> pipeline(
      2, [&batches](std::vector<int>& batch) -> bool {
        if (batches == 3) return false;
        batch.assign(1, batches++);
        return true;
      });
  pipeline.Start(pool);
  std::size_t drained = 0;
  while (pipeline.Front() != nullptr) {
    ++drained;
    pipeline.PopFront();
  }
  EXPECT_EQ(drained, 3u);
  EXPECT_EQ(pipeline.error().exception, nullptr);
}

// ------------------------------------------- engine streams, bit-identical

struct PipelineCase {
  MethodId method;
  bool clean_clean;
};

class PipelinedDeterminismTest
    : public ::testing::TestWithParam<PipelineCase> {};

std::vector<Comparison> EnginePrefix(const ProfileStore& store,
                                     MethodId method, std::size_t lookahead,
                                     std::size_t num_threads,
                                     std::size_t limit) {
  EngineConfig options;
  options.method = method;
  options.num_threads = num_threads;
  options.lookahead = lookahead;
  ProgressiveEngine engine(store, options);
  return Drain(&engine, limit);
}

TEST_P(PipelinedDeterminismTest, LookaheadAndThreadsNeverChangeTheStream) {
  const ProfileStore store =
      GetParam().clean_clean ? CleanCleanStore() : DirtyStore();
  const std::vector<Comparison> reference =
      EnginePrefix(store, GetParam().method, /*lookahead=*/0,
                   /*num_threads=*/1, 2000);
  EXPECT_FALSE(reference.empty());
  for (std::size_t lookahead : {1u, 4u, 64u}) {
    for (std::size_t num_threads : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE("lookahead=" + std::to_string(lookahead) +
                   " threads=" + std::to_string(num_threads));
      ExpectSameSequence(EnginePrefix(store, GetParam().method, lookahead,
                                      num_threads, 2000),
                         reference);
    }
  }
}

TEST_P(PipelinedDeterminismTest, ShardedParallelRefillsKeepTheMergedOrder) {
  const ProfileStore store =
      GetParam().clean_clean ? CleanCleanStore() : DirtyStore();
  for (std::size_t num_shards : {1u, 4u}) {
    EngineConfig serial;
    serial.method = GetParam().method;
    ShardedEngine reference(store, serial, num_shards);
    const std::vector<Comparison> expected = Drain(&reference, 2000);

    EngineConfig pipelined = serial;
    pipelined.lookahead = 4;
    pipelined.num_threads = 4;
    ShardedEngine engine(store, pipelined, num_shards);
    SCOPED_TRACE("shards=" + std::to_string(num_shards));
    ExpectSameSequence(Drain(&engine, 2000), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PpsAndPbs, PipelinedDeterminismTest,
    ::testing::Values(PipelineCase{MethodId::kPps, false},
                      PipelineCase{MethodId::kPps, true},
                      PipelineCase{MethodId::kPbs, false},
                      PipelineCase{MethodId::kPbs, true}),
    [](const ::testing::TestParamInfo<PipelineCase>& info) {
      std::string name(ToString(info.param.method));
      name += info.param.clean_clean ? "_CleanClean" : "_Dirty";
      return name;
    });

// --------------------------------------------- budget / shutdown composition

TEST(EmissionPipelineEngineTest, BudgetExhaustionAbandonsThePipelineCleanly) {
  const ProfileStore store = DirtyStore();
  EngineConfig unbudgeted;
  unbudgeted.method = MethodId::kPps;
  unbudgeted.lookahead = 4;
  ProgressiveEngine full(store, unbudgeted);
  const std::vector<Comparison> reference = Drain(&full, 25);

  EngineConfig options = unbudgeted;
  options.budget = 25;
  ProgressiveEngine engine(store, options);
  const std::vector<Comparison> emitted = Drain(&engine, 1000000);
  EXPECT_EQ(emitted.size(), 25u);
  EXPECT_TRUE(engine.BudgetExhausted());
  EXPECT_FALSE(engine.Next().has_value());
  ExpectSameSequence(emitted, reference);
}  // both engines shut their producers down mid-stream here

TEST(EmissionPipelineEngineTest, ShardedGlobalBudgetWithParallelRefills) {
  const ProfileStore store = DirtyStore();
  EngineConfig config;
  config.method = MethodId::kPps;
  config.budget = 25;
  config.lookahead = 4;
  ShardedEngine engine(store, config, 4);
  EXPECT_EQ(Drain(&engine, 1000000).size(), 25u);
  EXPECT_TRUE(engine.BudgetExhausted());
}  // four shard producers abandoned mid-stream: destructor must not hang

TEST(EmissionPipelineEngineTest, UndrainedPipelinedEngineDestructsCleanly) {
  const ProfileStore store = DirtyStore();
  EngineConfig options;
  options.method = MethodId::kPbs;
  options.lookahead = 64;
  ProgressiveEngine engine(store, options);
  ASSERT_TRUE(engine.Next().has_value());  // pipeline primed and running
}

TEST(EmissionPipelineEngineTest, ManyShardsFallBackToSerialRefills) {
  // Past the 64-producer cap ShardedEngine silently drops to serial
  // refills instead of spawning a thread per shard; the merged stream
  // must be unchanged.
  const ProfileStore store = DirtyStore();  // 864 profiles, ~128 active
  EngineConfig serial;
  serial.method = MethodId::kPps;
  ShardedEngine reference(store, serial, 128);
  const std::vector<Comparison> expected = Drain(&reference, 1000);

  EngineConfig pipelined = serial;
  pipelined.lookahead = 4;
  ShardedEngine engine(store, pipelined, 128);
  ExpectSameSequence(Drain(&engine, 1000), expected);
}

TEST(EmissionPipelineEngineTest, SortBasedMethodsIgnoreLookahead) {
  const ProfileStore store = DirtyStore();
  EngineConfig serial;
  serial.method = MethodId::kSaPsn;
  ProgressiveEngine reference(store, serial);

  EngineConfig options = serial;
  options.lookahead = 8;
  ProgressiveEngine engine(store, options);
  ExpectSameSequence(Drain(&engine, 500), Drain(&reference, 500));
}

}  // namespace
}  // namespace sper
