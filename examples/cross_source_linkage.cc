// Clean-Clean ER across two heterogeneous sources: an IMDB-like and a
// DBpedia-like movie catalog with different schemas (4 vs 7 attributes).
// No schema alignment is performed — the schema-agnostic methods never
// look at attribute names. A PPS Resolver serves cross-source candidate
// pairs best-first; progressive recall is reported at increasing budgets,
// each increment drawn as one pay-as-you-go request.
//
//   $ ./cross_source_linkage [scale]   (default 0.2 of the paper's 28k x 23k)

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <unordered_set>

#include "core/comparison.h"
#include "datagen/datagen.h"
#include "engine/resolver.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace sper;

  DatagenOptions gen;
  gen.scale = argc > 1 ? std::atof(argv[1]) : 0.2;
  Result<DatasetBundle> dataset = GenerateDataset("movies", gen);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const ProfileStore& store = dataset.value().store;
  const GroundTruth& truth = dataset.value().truth;
  std::printf("source 1 (IMDB-like):    %zu films\n", store.source1_size());
  std::printf("source 2 (DBpedia-like): %zu films\n", store.source2_size());
  std::printf("true cross-source matches: %zu\n\n", truth.num_matches());

  // The Resolver runs the Token Blocking Workflow (Sec. 7: blocking +
  // purging + filtering) and meta-blocking behind one factory call.
  ResolverOptions options;
  options.method = MethodId::kPps;
  Result<std::unique_ptr<Resolver>> created =
      Resolver::Create(store, options);
  if (!created.ok()) {
    std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Resolver> resolver = std::move(created).value();
  std::printf("workflow blocks: %zu (%llu candidate comparisons, vs %llu "
              "brute force)\n\n",
              resolver->init_stats().num_blocks,
              static_cast<unsigned long long>(
                  resolver->init_stats().aggregate_cardinality),
              static_cast<unsigned long long>(
                  static_cast<std::uint64_t>(store.source1_size()) *
                  store.source2_size()));

  // Each budget increment is one request against the same long-lived
  // resolver: the stream continues where the previous request stopped.
  ResolverSession session = resolver->OpenSession();
  TextTable table({"ec* (comparisons / matches)", "recall"});
  const double num_matches = static_cast<double>(truth.num_matches());
  // A method may emit the same pair more than once (emitter.h); recall
  // counts *distinct* matched pairs, deduplicated via PairKey.
  std::unordered_set<std::uint64_t> matched;
  std::uint64_t emitted = 0;
  for (double target : {0.5, 1.0, 2.0, 5.0, 10.0}) {
    const std::uint64_t ec_target =
        static_cast<std::uint64_t>(target * num_matches);
    if (ec_target > emitted) {
      ResolveResult batch = session.Resolve({ec_target - emitted, 0});
      for (const Comparison& c : batch.comparisons) {
        if (truth.AreMatching(c.i, c.j)) matched.insert(PairKey(c.i, c.j));
      }
      emitted += batch.comparisons.size();
    }
    table.AddRow(
        {FormatDouble(target, 1),
         FormatDouble(static_cast<double>(matched.size()) / num_matches, 3)});
  }
  table.Print();
  std::printf("\nMost matches arrive within the first ~1-2x|D_P| "
              "comparisons — the pay-as-you-go property.\n");
  return 0;
}
