#include "sorted/position_index.h"

namespace sper {

PositionIndex::PositionIndex(const NeighborList& list,
                             std::size_t num_profiles) {
  offsets_.assign(num_profiles + 1, 0);
  for (ProfileId p : list.profiles()) ++offsets_[p + 1];
  for (std::size_t i = 1; i <= num_profiles; ++i) {
    offsets_[i] += offsets_[i - 1];
  }
  flat_.resize(offsets_[num_profiles]);
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t pos = 0; pos < list.size(); ++pos) {
    flat_[cursor[list.at(pos)]++] = static_cast<std::uint32_t>(pos);
  }
}

}  // namespace sper
