// Fault-tolerance bench: what does one slow shard do to slice latency,
// and how much does a per-request deadline claw back? Three paths, all
// draining the same sharded resolver configuration through a session:
//
//   baseline             no injected fault — the healthy reference;
//   slow_shard           every shard-0 refill stalls --stall-ms (via the
//                        SPER_FAULT_INJECT harness, obs/fault_injection.h);
//   slow_shard_deadline  same stall, but every request carries
//                        --deadline-ms: slices come back cut short
//                        (deadline_exceeded) instead of waiting the
//                        straggler out, and each continues losslessly.
//
// All three paths must fold to the identical FNV-1a stream digest —
// stalls and deadline cuts change *when* comparisons are delivered,
// never *which* or in *what order* — and the bench exits 1 on any
// divergence. The fault paths require a -DSPER_FAULT_INJECT=ON build;
// elsewhere the bench prints the baseline only and says why.
//
//   bench_fault_tolerance [--scale=S] [--dataset=NAME] [--method=M]
//                         [--threads=T] [--shards=N] [--lookahead=L]
//                         [--budget=N] [--batch=B] [--stall-ms=MS]
//                         [--deadline-ms=MS] [--repeat=R] [--json=PATH]
//
// --json emits one record per path (schema: bench/BENCH.md) with extras
// slice_p50_ms / slice_p99_ms / requests / deadline_cuts / emitted;
// speedup is baseline/path wall time at the same configuration.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "datagen/datagen.h"
#include "engine/resolver.h"
#include "eval/table.h"
#include "obs/clock.h"
#include "obs/fault_injection.h"

namespace {

using namespace sper;
using sper::bench::DrainResult;

double Millis(const obs::Stopwatch& watch) {
  return watch.ElapsedSeconds() * 1000.0;
}

/// Nearest-rank percentile over per-slice latencies (q in [0, 1]).
double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t rank = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

struct SessionRun {
  DrainResult drain;
  std::vector<double> slice_ms;
  std::uint64_t deadline_cuts = 0;
};

/// Drains the whole (budgeted) stream in `batch`-sized session slices,
/// timing each request; `deadline_ms > 0` attaches a per-request
/// deadline (cut slices are retried — continuation is lossless).
SessionRun RunSession(const ProfileStore& store,
                      const ResolverOptions& options, std::uint64_t batch,
                      std::uint64_t deadline_ms) {
  std::unique_ptr<Resolver> resolver =
      sper::bench::CreateResolverOrDie(store, options);
  ResolverSession session = resolver->OpenSession();
  SessionRun run;
  const obs::Stopwatch start;
  std::uint64_t empty_streak = 0;
  for (;;) {
    ResolveRequest request;
    request.budget = batch;
    request.max_batch = batch;
    request.deadline_ms = deadline_ms;
    const obs::Stopwatch slice_start;
    ResolveResult slice = session.Resolve(request);
    run.slice_ms.push_back(Millis(slice_start));
    if (!slice.status.ok()) {
      std::fprintf(stderr, "resolve failed: %s\n",
                   slice.status.ToString().c_str());
      std::exit(1);
    }
    for (const Comparison& c : slice.comparisons) run.drain.Fold(c);
    run.deadline_cuts += slice.deadline_exceeded() ? 1 : 0;
    if (slice.stream_exhausted || slice.budget_exhausted) break;
    // A deadline can expire before a slice draws anything; bail out if
    // that stops being progress (e.g. a stall longer than the deadline
    // on every refill of an exhausted-but-unreported stream).
    empty_streak = slice.comparisons.empty() ? empty_streak + 1 : 0;
    if (empty_streak >= 64) break;
  }
  run.drain.requests = session.requests_served();
  run.drain.wall_ms = Millis(start);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  int repeat = 3;
  std::string dataset_name = "restaurant";
  std::string method_name = "pps";
  std::string json_path;
  std::uint64_t batch = 512;
  std::uint64_t stall_ms = 30;
  std::uint64_t deadline_ms = 20;
  ResolverOptions options;
  options.num_shards = 4;
  options.lookahead = 2;
  options.budget = 20000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--dataset=", 10) == 0) {
      dataset_name = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--method=", 9) == 0) {
      method_name = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      options.num_threads = std::strtoul(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      options.num_shards = std::strtoul(argv[i] + 9, nullptr, 10);
    } else if (std::strncmp(argv[i], "--lookahead=", 12) == 0) {
      options.lookahead = std::strtoul(argv[i] + 12, nullptr, 10);
    } else if (std::strncmp(argv[i], "--budget=", 9) == 0) {
      options.budget = std::strtoull(argv[i] + 9, nullptr, 10);
    } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
      batch = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--stall-ms=", 11) == 0) {
      stall_ms = std::strtoull(argv[i] + 11, nullptr, 10);
    } else if (std::strncmp(argv[i], "--deadline-ms=", 14) == 0) {
      deadline_ms = std::strtoull(argv[i] + 14, nullptr, 10);
    } else if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      repeat = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::printf(
          "usage: %s [--scale=S] [--dataset=NAME] [--method=M] "
          "[--threads=T] [--shards=N] [--lookahead=L] [--budget=N] "
          "[--batch=B] [--stall-ms=MS] [--deadline-ms=MS] [--repeat=R] "
          "[--json=PATH]\n",
          argv[0]);
      return 2;
    }
  }

  const std::optional<MethodId> method = ParseMethodId(method_name);
  if (!method.has_value()) {
    std::fprintf(stderr, "unknown method '%s'\n", method_name.c_str());
    return 2;
  }
  options.method = *method;
  DatagenOptions gen;
  gen.scale = scale;
  Result<DatasetBundle> dataset = GenerateDataset(dataset_name, gen);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const ProfileStore& store = dataset.value().store;
  std::printf(
      "dataset %s: %zu profiles (scale %.2f), method %s, shards %zu, "
      "lookahead %zu, budget %llu, batch %llu, stall %llu ms, deadline "
      "%llu ms, fault injection %s\n",
      dataset.value().name.c_str(), store.size(), scale,
      std::string(ToString(*method)).c_str(), options.num_shards,
      options.lookahead, static_cast<unsigned long long>(options.budget),
      static_cast<unsigned long long>(batch),
      static_cast<unsigned long long>(stall_ms),
      static_cast<unsigned long long>(deadline_ms),
      obs::kFaultInjectionEnabled ? "compiled in" : "compiled out");

  struct PathSpec {
    const char* name;
    bool stall;
    std::uint64_t deadline_ms;
  };
  std::vector<PathSpec> paths = {{"baseline", false, 0}};
  if (obs::kFaultInjectionEnabled) {
    paths.push_back({"slow_shard", true, 0});
    paths.push_back({"slow_shard_deadline", true, deadline_ms});
  } else {
    std::printf(
        "(fault paths need -DSPER_FAULT_INJECT=ON; reporting the "
        "baseline only)\n");
  }

  TextTable table({"path", "requests", "cuts", "emitted", "wall (ms)",
                   "slice p50 (ms)", "slice p99 (ms)", "digest"});
  std::vector<sper::bench::JsonRecord> records;
  SessionRun baseline;
  bool ok = true;
  for (const PathSpec& path : paths) {
    if (path.stall) {
      obs::FaultPlan plan;
      plan.action = obs::FaultPlan::Action::kStall;
      plan.stall_ms = stall_ms;
      obs::FaultRegistry::Global().Arm("refill.shard0", plan);
    }
    SessionRun best;
    for (int r = 0; r < repeat; ++r) {
      SessionRun run = RunSession(store, options, batch, path.deadline_ms);
      if (r == 0 || run.drain.wall_ms < best.drain.wall_ms) {
        best = std::move(run);
      }
    }
    if (path.stall) obs::FaultRegistry::Global().Reset();
    if (std::strcmp(path.name, "baseline") == 0) baseline = best;

    const bool match = best.drain.SameStream(baseline.drain);
    ok = ok && match;
    const double p50 = Percentile(best.slice_ms, 0.50);
    const double p99 = Percentile(best.slice_ms, 0.99);
    const double speedup = best.drain.wall_ms > 0
                               ? baseline.drain.wall_ms / best.drain.wall_ms
                               : 0.0;
    table.AddRow({path.name, std::to_string(best.drain.requests),
                  std::to_string(best.deadline_cuts),
                  std::to_string(best.drain.emitted),
                  FormatDouble(best.drain.wall_ms, 1), FormatDouble(p50, 2),
                  FormatDouble(p99, 2), match ? "match" : "MISMATCH"});
    sper::bench::JsonRecord record{
        dataset.value().name,  scale,
        options.num_threads,   path.name,
        best.drain.wall_ms,    speedup,
        options.num_shards,    options.lookahead,
        static_cast<std::size_t>(batch)};
    record.extras.emplace_back("slice_p50_ms", p50);
    record.extras.emplace_back("slice_p99_ms", p99);
    record.extras.emplace_back("requests",
                               static_cast<double>(best.drain.requests));
    record.extras.emplace_back("deadline_cuts",
                               static_cast<double>(best.deadline_cuts));
    record.extras.emplace_back("emitted",
                               static_cast<double>(best.drain.emitted));
    records.push_back(std::move(record));
  }
  table.Print();
  std::printf(
      "\ndigest = FNV-1a over every emitted (i, j, weight); \"match\" "
      "means the path's\nconcatenated slices are bit-identical to the "
      "baseline — injected stalls and\ndeadline cuts shift latency, "
      "never the stream.\n");

  if (!json_path.empty() &&
      !sper::bench::WriteJsonRecords(json_path, records)) {
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr, "FAIL: a fault path diverged from the baseline\n");
    return 1;
  }
  return 0;
}
