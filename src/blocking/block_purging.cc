#include "blocking/block_purging.h"

namespace sper {

BlockCollection BlockPurging(const BlockCollection& input,
                             std::size_t num_profiles,
                             const BlockPurgingOptions& options) {
  const double max_size =
      options.max_size_ratio * static_cast<double>(num_profiles);
  BlockCollection out(input.er_type(), input.split_index());
  for (const Block& b : input.blocks()) {
    if (static_cast<double>(b.size()) > max_size) continue;
    out.Add(b);
  }
  return out;
}

}  // namespace sper
