// The network serving subsystem (src/net/): wire protocol, shared request
// validation, endpoint parsing, and the loopback server. The contract
// under test:
//
// - wire framing round-trips every ResolveRequest / ResolveResult field
//   bit-exactly (every Priority, every ResolveOutcome, every StatusCode,
//   weight bit patterns including NaN/infinities/-0.0/denormals), and
//   rejects every malformed payload: truncation at any prefix length,
//   foreign versions, unknown type/outcome/status/flag bytes, length
//   fields pointing past the payload, trailing bytes;
// - ValidateResolveRequest is one validator for the CLI flag path and
//   the wire decode path: max_batch/deadline_ms/priority bounds;
// - the loopback server serves remote clients through QoS with the same
//   bit-identity guarantee in-process callers get: slices any set of
//   concurrent connections received, re-sorted by ticket, equal one
//   in-process drain — at shards 1 and 4, under TSan;
// - a client that vanishes mid-stream poisons nothing: its lost slices
//   leave ticket gaps, every other connection's slices stay bit-identical
//   per ticket, and the server keeps serving new connections;
// - protocol errors close only the offending connection; well-framed but
//   invalid requests get a polite kRejected reply on a connection that
//   stays usable; anonymous clients (client_id 0) are keyed per
//   connection for rate limiting; kShed crosses the wire with its
//   retry_after_ms hint and ResolveWithRetry honors it;
// - Shutdown() stops accepting, flushes in-flight responses and drains
//   the resolver (idempotent, concurrent-safe);
// - fault seams net.accept / net.read / net.write behave as connection
//   drops, never as resolver poison (fault-injection builds only).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "datagen/datagen.h"
#include "engine/resolver.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/fault_injection.h"
#include "obs/registry.h"
#include "obs/telemetry.h"

namespace sper {
namespace {

ProfileStore DirtyStore() {
  Result<DatasetBundle> ds = GenerateDataset("restaurant", {});
  EXPECT_TRUE(ds.ok());
  return std::move(ds.value().store);
}

std::unique_ptr<Resolver> MustCreate(const ProfileStore& store,
                                     const ResolverOptions& options) {
  Result<std::unique_ptr<Resolver>> resolver =
      Resolver::Create(store, options);
  EXPECT_TRUE(resolver.ok()) << resolver.status().ToString();
  return std::move(resolver).value();
}

std::uint64_t WeightBits(double w) {
  std::uint64_t bits;
  std::memcpy(&bits, &w, sizeof(bits));
  return bits;
}

bool SameComparisons(const std::vector<Comparison>& a,
                     const std::vector<Comparison>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k].i != b[k].i || a[k].j != b[k].j ||
        WeightBits(a[k].weight) != WeightBits(b[k].weight)) {
      return false;
    }
  }
  return true;
}

/// In-process reference: drains a fresh resolver through the session
/// layer in fixed `slice`-sized requests and returns ticket -> slice.
/// Tickets are dense from 0, so with every request identically sized the
/// wire runs below admit the same request sequence and must reproduce
/// exactly these slices at these tickets.
std::map<std::uint64_t, std::vector<Comparison>> ReferenceSlices(
    const ProfileStore& store, const ResolverOptions& options,
    std::uint64_t slice) {
  std::unique_ptr<Resolver> resolver = MustCreate(store, options);
  ResolverSession session = resolver->OpenSession();
  std::map<std::uint64_t, std::vector<Comparison>> out;
  for (;;) {
    ResolveRequest request;
    request.budget = slice;
    request.max_batch = slice;
    ResolveResult result = session.Resolve(request);
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    out[result.ticket] = std::move(result.comparisons);
    if (result.stream_exhausted || out[result.ticket].size() < slice) break;
  }
  return out;
}

std::vector<Comparison> Flatten(
    const std::map<std::uint64_t, std::vector<Comparison>>& slices) {
  std::vector<Comparison> all;
  for (const auto& [ticket, slice] : slices) {
    all.insert(all.end(), slice.begin(), slice.end());
  }
  return all;
}

net::Client MustConnect(std::uint16_t port) {
  Result<net::Client> client = net::Client::Connect("127.0.0.1", port);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

/// Drains over the wire in fixed `slice`-sized requests, folding every
/// received slice into `out` keyed by ticket. Stops at stream exhaustion
/// (or after `max_slices` requests when positive).
void DrainOverWire(net::Client& client, std::uint64_t slice,
                   Priority priority,
                   std::map<std::uint64_t, std::vector<Comparison>>* out,
                   std::uint64_t max_slices = 0) {
  std::uint64_t sent = 0;
  for (;;) {
    if (max_slices > 0 && sent >= max_slices) return;
    ResolveRequest request;
    request.budget = slice;
    request.max_batch = slice;
    request.priority = priority;
    Result<ResolveResult> attempt = client.ResolveWithRetry(request);
    ASSERT_TRUE(attempt.ok()) << attempt.status().ToString();
    const ResolveResult& result = attempt.value();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    ++sent;
    (*out)[result.ticket] = result.comparisons;
    if (result.stream_exhausted || result.comparisons.size() < slice) return;
  }
}

struct LoopbackServer {
  std::unique_ptr<Resolver> resolver;
  std::unique_ptr<net::Server> server;

  std::uint16_t port() const { return server->port(); }
};

LoopbackServer StartLoopback(const ProfileStore& store,
                             const ResolverOptions& options,
                             net::ServerOptions server_options = {}) {
  LoopbackServer loopback;
  loopback.resolver = MustCreate(store, options);
  Result<std::unique_ptr<net::Server>> started =
      net::Server::Start(*loopback.resolver, std::move(server_options));
  EXPECT_TRUE(started.ok()) << started.status().ToString();
  loopback.server = std::move(started).value();
  return loopback;
}

// ------------------------------------------------------- wire round trips

ResolveRequest SampleRequest(Priority priority) {
  ResolveRequest request;
  request.budget = 0xdeadbeefcafef00dull;
  request.max_batch = 12345;
  request.deadline_ms = 86'399'999;
  request.client_id = 0x0123456789abcdefull;
  request.priority = priority;
  return request;
}

TEST(WireTest, RequestRoundTripsEveryPriority) {
  for (Priority priority :
       {Priority::kInteractive, Priority::kBatch, Priority::kBestEffort}) {
    const ResolveRequest request = SampleRequest(priority);
    const std::string frame = net::EncodeResolveRequestFrame(request);
    // Frame = 4-byte length prefix + payload.
    const std::string_view payload = std::string_view(frame).substr(4);
    Result<ResolveRequest> decoded = net::DecodeResolveRequest(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().budget, request.budget);
    EXPECT_EQ(decoded.value().max_batch, request.max_batch);
    EXPECT_EQ(decoded.value().deadline_ms, request.deadline_ms);
    EXPECT_EQ(decoded.value().client_id, request.client_id);
    EXPECT_EQ(decoded.value().priority, request.priority);
  }
}

TEST(WireTest, RequestTruncationAtEveryPrefixFails) {
  const std::string frame =
      net::EncodeResolveRequestFrame(SampleRequest(Priority::kBatch));
  const std::string_view payload = std::string_view(frame).substr(4);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(net::DecodeResolveRequest(payload.substr(0, len)).ok())
        << "prefix of " << len << " bytes decoded";
  }
  EXPECT_TRUE(net::DecodeResolveRequest(payload).ok());
}

TEST(WireTest, RequestRejectsTrailingBytes) {
  std::string frame =
      net::EncodeResolveRequestFrame(SampleRequest(Priority::kBatch));
  std::string payload = frame.substr(4);
  payload.push_back('\0');
  EXPECT_FALSE(net::DecodeResolveRequest(payload).ok());
}

TEST(WireTest, RequestDecodeRunsTheSharedValidator) {
  // Patch the priority byte (payload offset 2 + 4*8 = 34) to an unknown
  // class: decode must reject exactly as ValidateResolveRequest does.
  std::string frame =
      net::EncodeResolveRequestFrame(SampleRequest(Priority::kBatch));
  std::string payload = frame.substr(4);
  payload[34] = static_cast<char>(9);
  Result<ResolveRequest> decoded = net::DecodeResolveRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);

  // Patch max_batch (payload offset 2 + 8 = 10) to 2^63: must be rejected
  // before any size_t narrowing could wrap it into range.
  payload = frame.substr(4);
  payload[17] = static_cast<char>(0x80);  // top byte of little-endian u64
  EXPECT_FALSE(net::DecodeResolveRequest(payload).ok());
}

ResolveResult SampleResult() {
  ResolveResult result;
  result.ticket = 0x1122334455667788ull;
  result.stream_exhausted = true;
  result.budget_exhausted = true;
  result.outcome = ResolveOutcome::kShed;
  result.status = Status::ResourceExhausted("queue full; back off");
  result.retry_after_ms = 512;
  result.comparisons = {{1, 2, 0.5}, {3, 4, -1.25}, {5, 6, 1e300}};
  return result;
}

TEST(WireTest, ResultRoundTripsEveryOutcomeAndStatusCode) {
  const ResolveOutcome outcomes[] = {
      ResolveOutcome::kServed,   ResolveOutcome::kDeadlineExpired,
      ResolveOutcome::kCancelled, ResolveOutcome::kShed,
      ResolveOutcome::kEvicted,  ResolveOutcome::kRejected,
      ResolveOutcome::kFailed};
  const StatusCode codes[] = {
      StatusCode::kOk,          StatusCode::kInvalidArgument,
      StatusCode::kNotFound,    StatusCode::kIoError,
      StatusCode::kFailedPrecondition, StatusCode::kInternal,
      StatusCode::kResourceExhausted};
  for (ResolveOutcome outcome : outcomes) {
    for (StatusCode code : codes) {
      ResolveResult result = SampleResult();
      result.outcome = outcome;
      result.status = Status::FromCode(code, "why it happened");
      const std::string frame = net::EncodeResolveResultFrame(result);
      Result<ResolveResult> decoded =
          net::DecodeResolveResult(std::string_view(frame).substr(4));
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_EQ(decoded.value().ticket, result.ticket);
      EXPECT_EQ(decoded.value().outcome, outcome);
      EXPECT_EQ(decoded.value().status.code(), code);
      if (code != StatusCode::kOk) {
        EXPECT_EQ(decoded.value().status.message(), "why it happened");
      }
      EXPECT_TRUE(decoded.value().stream_exhausted);
      EXPECT_TRUE(decoded.value().budget_exhausted);
      EXPECT_EQ(decoded.value().retry_after_ms, result.retry_after_ms);
      EXPECT_TRUE(
          SameComparisons(decoded.value().comparisons, result.comparisons));
    }
  }
}

TEST(WireTest, ResultWeightsTravelAsBitPatterns) {
  ResolveResult result;
  result.comparisons = {
      {0, 1, std::numeric_limits<double>::quiet_NaN()},
      {2, 3, std::numeric_limits<double>::infinity()},
      {4, 5, -std::numeric_limits<double>::infinity()},
      {6, 7, -0.0},
      {8, 9, std::numeric_limits<double>::denorm_min()},
      {10, 11, 0.1},
  };
  const std::string frame = net::EncodeResolveResultFrame(result);
  Result<ResolveResult> decoded =
      net::DecodeResolveResult(std::string_view(frame).substr(4));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().comparisons.size(), result.comparisons.size());
  for (std::size_t k = 0; k < result.comparisons.size(); ++k) {
    EXPECT_EQ(WeightBits(decoded.value().comparisons[k].weight),
              WeightBits(result.comparisons[k].weight))
        << "weight " << k << " changed bits in transit";
  }
}

TEST(WireTest, ResultRoundTripsEmptyAndLargeSlices) {
  ResolveResult empty;
  std::string frame = net::EncodeResolveResultFrame(empty);
  Result<ResolveResult> decoded =
      net::DecodeResolveResult(std::string_view(frame).substr(4));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().comparisons.empty());

  ResolveResult large;
  large.comparisons.reserve(10000);
  for (std::uint32_t k = 0; k < 10000; ++k) {
    large.comparisons.push_back({k, k + 1, k * 0.001});
  }
  frame = net::EncodeResolveResultFrame(large);
  decoded = net::DecodeResolveResult(std::string_view(frame).substr(4));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(
      SameComparisons(decoded.value().comparisons, large.comparisons));
}

TEST(WireTest, ResultTruncationAtEveryPrefixFails) {
  const std::string frame = net::EncodeResolveResultFrame(SampleResult());
  const std::string_view payload = std::string_view(frame).substr(4);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(net::DecodeResolveResult(payload.substr(0, len)).ok())
        << "prefix of " << len << " bytes decoded";
  }
  EXPECT_TRUE(net::DecodeResolveResult(payload).ok());
}

TEST(WireTest, ResultRejectsUnknownBytes) {
  const std::string frame = net::EncodeResolveResultFrame(SampleResult());
  const std::string good = frame.substr(4);
  // Payload layout: ver(1) type(1) ticket(8) outcome(1) flags(1) code(1).
  std::string bad = good;
  bad[10] = static_cast<char>(7);  // unknown outcome byte
  EXPECT_FALSE(net::DecodeResolveResult(bad).ok());
  bad = good;
  bad[11] = static_cast<char>(0x04);  // unknown flag bit
  EXPECT_FALSE(net::DecodeResolveResult(bad).ok());
  bad = good;
  bad[12] = static_cast<char>(7);  // unknown status code byte
  EXPECT_FALSE(net::DecodeResolveResult(bad).ok());
  bad = good;
  bad.push_back('\0');  // count no longer matches the remaining bytes
  EXPECT_FALSE(net::DecodeResolveResult(bad).ok());
}

TEST(WireTest, HeaderRejectsForeignVersionsAndUnknownTypes) {
  EXPECT_FALSE(net::DecodeFrameHeader("").ok());
  EXPECT_FALSE(net::DecodeFrameHeader("\x01").ok());
  std::string payload;
  net::PutU8(payload, 99);  // foreign version
  net::PutU8(payload, 1);
  EXPECT_FALSE(net::DecodeFrameHeader(payload).ok());
  payload.clear();
  net::PutU8(payload, net::kWireVersion);
  net::PutU8(payload, 0);  // type below the known range
  EXPECT_FALSE(net::DecodeFrameHeader(payload).ok());
  payload.clear();
  net::PutU8(payload, net::kWireVersion);
  net::PutU8(payload, 5);  // type above the known range
  EXPECT_FALSE(net::DecodeFrameHeader(payload).ok());
  payload.clear();
  net::PutU8(payload, net::kWireVersion);
  net::PutU8(payload, 3);  // kMetricsRequest: header-only frame is fine
  Result<net::FrameType> type = net::DecodeFrameHeader(payload);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(type.value(), net::FrameType::kMetricsRequest);
}

TEST(WireTest, MetricsFramesRoundTrip) {
  const std::string snapshot = "{\"schema\": \"sper.metrics.v1\"}";
  const std::string frame = net::EncodeMetricsResultFrame(snapshot);
  Result<std::string> decoded =
      net::DecodeMetricsResult(std::string_view(frame).substr(4));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), snapshot);

  // Truncated length field and trailing garbage are both rejected.
  const std::string_view payload = std::string_view(frame).substr(4);
  EXPECT_FALSE(net::DecodeMetricsResult(payload.substr(0, 3)).ok());
  std::string trailing(payload);
  trailing.push_back('!');
  EXPECT_FALSE(net::DecodeMetricsResult(trailing).ok());
}

TEST(WireTest, StreamDigestMatchesTheFnvFold) {
  // The fold is FNV-1a over (i, j, weight-bits), same as the digest the
  // serving benches use — recompute it by hand for one comparison.
  const Comparison c{7, 11, 2.5};
  std::uint64_t expected = 1469598103934665603ull;
  const auto mix = [&expected](std::uint64_t v) {
    expected ^= v;
    expected *= 1099511628211ull;
  };
  mix(7);
  mix(11);
  mix(WeightBits(2.5));
  net::StreamDigest digest;
  digest.Fold(c);
  EXPECT_EQ(digest.value, expected);
  EXPECT_EQ(digest.count, 1u);
}

TEST(WireTest, MaxFramePayloadFitsAMaximalResponse) {
  // kMaxBatch comparisons at 16 bytes each, plus the fixed result header
  // and a status message, must fit one frame — the server clamps
  // max_batch 0 to kMaxBatch relying on exactly this.
  const std::uint64_t maximal =
      2 + 8 + 1 + 1 + 1 + 4 + 65536 + 8 + 4 +
      static_cast<std::uint64_t>(ResolveRequest::kMaxBatch) * 16;
  EXPECT_LE(maximal, net::kMaxFramePayload);
}

// ------------------------------------------------- shared request validator

TEST(ValidateResolveRequestTest, AcceptsServableRequests) {
  ResolveRequest request;
  EXPECT_TRUE(ValidateResolveRequest(request).ok()) << "defaults servable";
  request.budget = std::numeric_limits<std::uint64_t>::max();
  request.max_batch = ResolveRequest::kMaxBatch;
  request.deadline_ms = ResolveRequest::kMaxDeadlineMs;
  request.priority = Priority::kBestEffort;
  EXPECT_TRUE(ValidateResolveRequest(request).ok())
      << "budget is intentionally unbounded; the rest at their maxima";
}

TEST(ValidateResolveRequestTest, RejectsOutOfRangeFields) {
  ResolveRequest request;
  request.max_batch = ResolveRequest::kMaxBatch + 1;
  Status status = ValidateResolveRequest(request);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("max_batch"), std::string::npos);

  request = ResolveRequest{};
  request.deadline_ms = ResolveRequest::kMaxDeadlineMs + 1;
  status = ValidateResolveRequest(request);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("deadline_ms"), std::string::npos);

  request = ResolveRequest{};
  request.priority = static_cast<Priority>(9);
  status = ValidateResolveRequest(request);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("priority"), std::string::npos);
}

TEST(StatusFromCodeTest, ReconstructsAcrossTheWireBoundary) {
  const Status err =
      Status::FromCode(StatusCode::kResourceExhausted, "busy");
  EXPECT_EQ(err.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(err.message(), "busy");
  const Status ok = Status::FromCode(StatusCode::kOk, "dropped");
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(ok.message().empty()) << "OK statuses carry no message";
}

// ----------------------------------------------------------- endpoints

TEST(ParseEndpointTest, ParsesStrictly) {
  Result<net::Endpoint> endpoint = net::ParseEndpoint("127.0.0.1:8080");
  ASSERT_TRUE(endpoint.ok());
  EXPECT_EQ(endpoint.value().host, "127.0.0.1");
  EXPECT_EQ(endpoint.value().port, 8080);

  endpoint = net::ParseEndpoint("localhost:0");
  ASSERT_TRUE(endpoint.ok()) << "port 0 = ephemeral, by convention";
  EXPECT_EQ(endpoint.value().port, 0);

  EXPECT_FALSE(net::ParseEndpoint("no-port-here").ok());
  EXPECT_FALSE(net::ParseEndpoint("host:").ok());
  EXPECT_FALSE(net::ParseEndpoint(":123").ok());
  EXPECT_FALSE(net::ParseEndpoint("host:abc").ok());
  EXPECT_FALSE(net::ParseEndpoint("host:12x").ok());
  EXPECT_FALSE(net::ParseEndpoint("host:65536").ok());
  EXPECT_FALSE(net::ParseEndpoint("host:-1").ok());
}

// ------------------------------------------------------ loopback serving

constexpr std::uint64_t kSlice = 512;

TEST(ServerLoopbackTest, SingleClientDrainIsBitIdentical) {
  const ProfileStore store = DirtyStore();
  const auto reference = ReferenceSlices(store, {}, kSlice);
  ASSERT_FALSE(reference.empty());

  LoopbackServer loopback = StartLoopback(store, {});
  net::Client client = MustConnect(loopback.port());
  std::map<std::uint64_t, std::vector<Comparison>> received;
  DrainOverWire(client, kSlice, Priority::kInteractive, &received);
  EXPECT_TRUE(SameComparisons(Flatten(received), Flatten(reference)))
      << "over-the-wire stream diverged from the in-process drain";
}

// The acceptance gate: N concurrent clients with mixed priorities,
// re-sorted by ticket, concatenate bit-identically to a single in-process
// drain — at shards 1 and 4 (this test runs in the TSan CI job).
TEST(ServerLoopbackTest, ConcurrentMixedPriorityClientsAreBitIdentical) {
  const ProfileStore store = DirtyStore();
  for (std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    ResolverOptions options;
    options.num_shards = shards;
    const auto reference = ReferenceSlices(store, options, kSlice);
    ASSERT_FALSE(reference.empty());

    LoopbackServer loopback = StartLoopback(store, options);
    constexpr int kClients = 4;
    const Priority priorities[kClients] = {
        Priority::kInteractive, Priority::kBatch, Priority::kBestEffort,
        Priority::kInteractive};
    std::map<std::uint64_t, std::vector<Comparison>> received[kClients];
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        net::Client client = MustConnect(loopback.port());
        DrainOverWire(client, kSlice, priorities[c], &received[c]);
      });
    }
    for (std::thread& t : threads) t.join();

    std::map<std::uint64_t, std::vector<Comparison>> merged;
    for (const auto& per_client : received) {
      for (const auto& [ticket, slice] : per_client) {
        ASSERT_EQ(merged.count(ticket), 0u)
            << "ticket " << ticket << " delivered twice";
        merged[ticket] = slice;
      }
    }
    EXPECT_TRUE(SameComparisons(Flatten(merged), Flatten(reference)))
        << "concurrent drain diverged at shards=" << shards;
  }
}

// A client that vanishes mid-stream loses only its own in-flight slices:
// the tickets it consumed are gaps, every slice any other connection
// received is bit-identical to the reference slice at its ticket, and
// the server keeps accepting new connections.
TEST(ServerLoopbackTest, MidStreamDisconnectPoisonsNothing) {
  const ProfileStore store = DirtyStore();
  const auto reference = ReferenceSlices(store, {}, kSlice);

  LoopbackServer loopback = StartLoopback(store, {});
  {
    // Takes a few slices, then vanishes without a goodbye.
    net::Client doomed = MustConnect(loopback.port());
    std::map<std::uint64_t, std::vector<Comparison>> taken;
    DrainOverWire(doomed, kSlice, Priority::kInteractive, &taken,
                  /*max_slices=*/3);
    EXPECT_EQ(taken.size(), 3u);
    doomed.Close();
  }

  net::Client survivor = MustConnect(loopback.port());
  std::map<std::uint64_t, std::vector<Comparison>> received;
  DrainOverWire(survivor, kSlice, Priority::kBatch, &received);
  ASSERT_FALSE(received.empty());
  for (const auto& [ticket, slice] : received) {
    auto it = reference.find(ticket);
    if (it == reference.end()) {
      EXPECT_TRUE(slice.empty())
          << "ticket " << ticket << " past the reference stream end";
      continue;
    }
    EXPECT_TRUE(SameComparisons(slice, it->second))
        << "slice at ticket " << ticket
        << " diverged after another client disconnected";
  }

  // And a third connection still gets served.
  net::Client late = MustConnect(loopback.port());
  ResolveRequest request;
  request.budget = 1;
  request.max_batch = 1;
  Result<ResolveResult> result = late.Resolve(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().status.ok());
}

TEST(ServerLoopbackTest, MalformedFrameClosesOnlyThatConnection) {
  const ProfileStore store = DirtyStore();
  LoopbackServer loopback = StartLoopback(store, {});

  Result<net::Socket> raw = net::ConnectTcp("127.0.0.1", loopback.port());
  ASSERT_TRUE(raw.ok());
  const net::Socket socket = std::move(raw).value();
  std::string payload;
  net::PutU8(payload, 99);  // foreign protocol version
  net::PutU8(payload, 1);
  std::string frame;
  net::PutU32(frame, static_cast<std::uint32_t>(payload.size()));
  frame += payload;
  ASSERT_TRUE(net::WriteFrame(socket, frame).ok());

  // The server closes the untrusted stream without a reply.
  std::string response;
  Status error = Status::Ok();
  EXPECT_EQ(net::ReadFrame(socket, &response, &error),
            net::ReadStatus::kEof);
  EXPECT_GE(loopback.server->stats().protocol_errors, 1u);

  // Everyone else is unaffected.
  net::Client client = MustConnect(loopback.port());
  ResolveRequest request;
  request.budget = 1;
  request.max_batch = 1;
  Result<ResolveResult> result = client.Resolve(request);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().status.ok());
}

TEST(ServerLoopbackTest, InvalidRequestGetsPoliteRejectOnALiveConnection) {
  const ProfileStore store = DirtyStore();
  LoopbackServer loopback = StartLoopback(store, {});

  Result<net::Socket> raw = net::ConnectTcp("127.0.0.1", loopback.port());
  ASSERT_TRUE(raw.ok());
  const net::Socket socket = std::move(raw).value();

  // A well-framed request with an unknown priority byte: rejected
  // politely, not a connection close.
  std::string frame = net::EncodeResolveRequestFrame(SampleRequest(
      Priority::kInteractive));
  frame[4 + 34] = static_cast<char>(9);  // priority byte, after the prefix
  ASSERT_TRUE(net::WriteFrame(socket, frame).ok());
  std::string response;
  Status error = Status::Ok();
  ASSERT_EQ(net::ReadFrame(socket, &response, &error),
            net::ReadStatus::kFrame);
  Result<ResolveResult> rejected = net::DecodeResolveResult(response);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected.value().outcome, ResolveOutcome::kRejected);
  EXPECT_EQ(rejected.value().status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(rejected.value().comparisons.empty());
  EXPECT_GE(loopback.server->stats().requests_rejected, 1u);

  // The same connection then serves a valid request.
  ResolveRequest request;
  request.budget = 4;
  request.max_batch = 4;
  ASSERT_TRUE(
      net::WriteFrame(socket, net::EncodeResolveRequestFrame(request)).ok());
  ASSERT_EQ(net::ReadFrame(socket, &response, &error),
            net::ReadStatus::kFrame);
  Result<ResolveResult> served = net::DecodeResolveResult(response);
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served.value().outcome, ResolveOutcome::kServed);
  EXPECT_EQ(served.value().comparisons.size(), 4u);
}

TEST(ServerLoopbackTest, MetricsFrameServesTheLiveRegistry) {
  const ProfileStore store = DirtyStore();
  obs::Registry registry;
  net::ServerOptions server_options;
  server_options.telemetry = obs::TelemetryScope(&registry);
  server_options.qos.telemetry = server_options.telemetry;
  server_options.metrics_registry = &registry;
  LoopbackServer loopback = StartLoopback(store, {}, server_options);

  net::Client client = MustConnect(loopback.port());
  ResolveRequest request;
  request.budget = 8;
  request.max_batch = 8;
  ASSERT_TRUE(client.Resolve(request).ok());

  Result<std::string> snapshot = client.FetchMetricsJson();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
#ifndef SPER_NO_TELEMETRY
  EXPECT_NE(snapshot.value().find("sper.metrics.v1"), std::string::npos);
  EXPECT_NE(snapshot.value().find("net.requests"), std::string::npos);
  EXPECT_NE(snapshot.value().find("net.frames_in"), std::string::npos);
  EXPECT_NE(snapshot.value().find("qos.interactive.admitted"),
            std::string::npos);
#endif
}

TEST(ServerLoopbackTest, AnonymousClientsAreRateLimitedPerConnection) {
  const ProfileStore store = DirtyStore();
  net::ServerOptions server_options;
  // One token, refilled every 10 s: each connection's first request is
  // served, its second is shed — unless connections get their own
  // buckets, which is exactly what substituting the connection id for
  // client_id 0 buys.
  server_options.qos.client_rate = 0.1;
  server_options.qos.client_burst = 1.0;
  LoopbackServer loopback = StartLoopback(store, {}, server_options);

  ResolveRequest request;
  request.budget = 4;
  request.max_batch = 4;

  net::Client first = MustConnect(loopback.port());
  Result<ResolveResult> served = first.Resolve(request);
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served.value().outcome, ResolveOutcome::kServed);
  Result<ResolveResult> shed = first.Resolve(request);
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed.value().outcome, ResolveOutcome::kShed);
  EXPECT_EQ(shed.value().status.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(shed.value().retry_after_ms, 0u)
      << "a shed must carry its backoff hint across the wire";
  EXPECT_TRUE(shed.value().comparisons.empty());

  // A second anonymous connection has its own bucket.
  net::Client second = MustConnect(loopback.port());
  Result<ResolveResult> other = second.Resolve(request);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other.value().outcome, ResolveOutcome::kServed)
      << "anonymous connections must not share one rate-limit bucket";
}

TEST(ServerLoopbackTest, ResolveWithRetryHonorsTheBackoffHint) {
  const ProfileStore store = DirtyStore();
  net::ServerOptions server_options;
  // ~2 tokens/s: back-to-back requests shed, but a retry that waits the
  // hinted backoff lands a token.
  server_options.qos.client_rate = 2.0;
  server_options.qos.client_burst = 1.0;
  LoopbackServer loopback = StartLoopback(store, {}, server_options);

  net::Client client = MustConnect(loopback.port());
  ResolveRequest request;
  request.budget = 4;
  request.max_batch = 4;
  ASSERT_TRUE(client.Resolve(request).ok());  // spends the burst
  Result<ResolveResult> retried = client.ResolveWithRetry(request);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried.value().outcome, ResolveOutcome::kServed)
      << "waiting the server's retry_after_ms hint must eventually land";
}

TEST(ServerLoopbackTest, ShutdownDrainsCleanlyAndIsIdempotent) {
  const ProfileStore store = DirtyStore();
  LoopbackServer loopback = StartLoopback(store, {});
  const std::uint16_t port = loopback.port();

  net::Client client = MustConnect(port);
  ResolveRequest request;
  request.budget = 4;
  request.max_batch = 4;
  ASSERT_TRUE(client.Resolve(request).ok());

  loopback.server->Shutdown();
  loopback.server->Shutdown();  // idempotent

  // The connection was closed at a frame boundary...
  Result<ResolveResult> after = client.Resolve(request);
  EXPECT_FALSE(after.ok());
  // ...the listener is gone...
  EXPECT_FALSE(net::Client::Connect("127.0.0.1", port).ok());
  // ...and the resolver behind it has drained: direct serves now reject.
  ResolverSession session = loopback.resolver->OpenSession();
  const ResolveResult drained = session.Resolve(request);
  EXPECT_EQ(drained.outcome, ResolveOutcome::kRejected);
}

TEST(ServerLoopbackTest, MaxConnectionsRejectsTheOverflow) {
  const ProfileStore store = DirtyStore();
  net::ServerOptions server_options;
  server_options.max_connections = 1;
  LoopbackServer loopback = StartLoopback(store, {}, server_options);

  net::Client first = MustConnect(loopback.port());
  ResolveRequest request;
  request.budget = 1;
  request.max_batch = 1;
  ASSERT_TRUE(first.Resolve(request).ok());

  // The overflow connection is accepted at the TCP level and closed
  // immediately: its round trip fails.
  net::Client overflow = MustConnect(loopback.port());
  EXPECT_FALSE(overflow.Resolve(request).ok());
  EXPECT_GE(loopback.server->stats().connections_rejected, 1u);

  // The first connection is unaffected.
  EXPECT_TRUE(first.Resolve(request).ok());
}

TEST(ClientTest, ValidatesLocallyBeforeTheNetworkHop) {
  const ProfileStore store = DirtyStore();
  LoopbackServer loopback = StartLoopback(store, {});
  net::Client client = MustConnect(loopback.port());
  ResolveRequest request;
  request.deadline_ms = ResolveRequest::kMaxDeadlineMs + 1;
  Result<ResolveResult> result = client.Resolve(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(loopback.server->stats().frames_in, 0u)
      << "an unservable request must not reach the server";
}

// ------------------------------------------------- fault-injection seams

class NetFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kFaultInjectionEnabled) {
      GTEST_SKIP() << "build with -DSPER_FAULT_INJECT=ON";
    }
    obs::FaultRegistry::Global().Reset();
  }
  void TearDown() override { obs::FaultRegistry::Global().Reset(); }
};

TEST_F(NetFaultTest, ReadFaultActsAsDisconnectAndPoisonsNothing) {
  const ProfileStore store = DirtyStore();
  const auto reference = ReferenceSlices(store, {}, kSlice);
  LoopbackServer loopback = StartLoopback(store, {});

  obs::FaultPlan plan;
  plan.action = obs::FaultPlan::Action::kThrow;
  plan.message = "injected net.read fault";
  plan.limit = 1;
  obs::FaultRegistry::Global().Arm("net.read", plan);

  // The victim's first read seam throws server-side: the connection is
  // closed before any request is served.
  net::Client victim = MustConnect(loopback.port());
  ResolveRequest request;
  request.budget = kSlice;
  request.max_batch = kSlice;
  EXPECT_FALSE(victim.Resolve(request).ok());
  EXPECT_GE(obs::FaultRegistry::Global().fires("net.read"), 1u);

  // The fault is spent (limit=1): a fresh connection drains the entire
  // stream bit-identically — the victim never consumed a ticket.
  net::Client survivor = MustConnect(loopback.port());
  std::map<std::uint64_t, std::vector<Comparison>> received;
  DrainOverWire(survivor, kSlice, Priority::kInteractive, &received);
  EXPECT_TRUE(SameComparisons(Flatten(received), Flatten(reference)))
      << "a read fault on one connection perturbed the stream";
}

TEST_F(NetFaultTest, WriteFaultLosesOnlyTheInFlightSlice) {
  const ProfileStore store = DirtyStore();
  const auto reference = ReferenceSlices(store, {}, kSlice);
  LoopbackServer loopback = StartLoopback(store, {});

  obs::FaultPlan plan;
  plan.action = obs::FaultPlan::Action::kThrow;
  plan.message = "injected net.write fault";
  plan.limit = 1;
  obs::FaultRegistry::Global().Arm("net.write", plan);

  // The victim's slice is served (ticket consumed) but the response
  // write throws: the slice is lost with its connection.
  net::Client victim = MustConnect(loopback.port());
  ResolveRequest request;
  request.budget = kSlice;
  request.max_batch = kSlice;
  EXPECT_FALSE(victim.Resolve(request).ok());
  EXPECT_GE(obs::FaultRegistry::Global().fires("net.write"), 1u);

  // Every slice a fresh connection receives still matches the reference
  // at its ticket — the lost ticket is a gap, not corruption.
  net::Client survivor = MustConnect(loopback.port());
  std::map<std::uint64_t, std::vector<Comparison>> received;
  DrainOverWire(survivor, kSlice, Priority::kInteractive, &received);
  ASSERT_FALSE(received.empty());
  for (const auto& [ticket, slice] : received) {
    auto it = reference.find(ticket);
    if (it == reference.end()) {
      EXPECT_TRUE(slice.empty());
      continue;
    }
    EXPECT_TRUE(SameComparisons(slice, it->second))
        << "slice at ticket " << ticket << " diverged after a write fault";
  }
}

TEST_F(NetFaultTest, AcceptFaultDropsTheConnectionBeforeServing) {
  const ProfileStore store = DirtyStore();
  LoopbackServer loopback = StartLoopback(store, {});

  obs::FaultPlan plan;
  plan.action = obs::FaultPlan::Action::kThrow;
  plan.message = "injected net.accept fault";
  plan.limit = 1;
  obs::FaultRegistry::Global().Arm("net.accept", plan);

  // TCP connect succeeds (the kernel accepted), but the server drops the
  // connection at the seam: the round trip fails.
  net::Client dropped = MustConnect(loopback.port());
  ResolveRequest request;
  request.budget = 4;
  request.max_batch = 4;
  EXPECT_FALSE(dropped.Resolve(request).ok());
  EXPECT_GE(obs::FaultRegistry::Global().fires("net.accept"), 1u);
  EXPECT_GE(loopback.server->stats().connections_rejected, 1u);

  // The next connection serves normally.
  net::Client next = MustConnect(loopback.port());
  Result<ResolveResult> served = next.Resolve(request);
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served.value().outcome, ResolveOutcome::kServed);
}

}  // namespace
}  // namespace sper
