#ifndef SPER_OBS_METRICS_H_
#define SPER_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

/// \file metrics.h
/// The runtime metric primitives of the observability layer: monotonic
/// counters, gauges and fixed-bucket latency histograms. All three are
/// safe to write from any number of threads with relaxed atomics and safe
/// to *read while being written* (snapshots see some consistent-enough
/// recent value, never torn data) — which is what lets a metrics endpoint
/// snapshot a live engine without stopping it.
///
/// These classes stay fully functional under SPER_NO_TELEMETRY; the
/// compile-time switch removes the *instrumentation seams*
/// (telemetry.h's TelemetryScope), not the primitives, so tests and
/// direct users keep working either way.

namespace sper {
namespace obs {

/// A monotonic counter, striped across cache lines so concurrent writers
/// (e.g. one emission-pipeline producer per shard) never contend on one
/// hot cache line. Each thread hashes to a stripe once (thread_local) and
/// then increments with one relaxed fetch_add; value() sums the stripes.
class Counter {
 public:
  static constexpr std::size_t kStripes = 8;

  /// Adds `n` (relaxed; safe from any thread).
  void Add(std::uint64_t n = 1) {
    stripes_[ThreadStripe()].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over all stripes. Safe concurrently with Add (the sum may lag
  /// in-flight increments by design).
  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const Stripe& stripe : stripes_) {
      sum += stripe.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> value{0};
  };

  static std::size_t ThreadStripe() {
    // One stripe per thread, assigned round-robin on first use; the id is
    // process-global so two counters never systematically collide worse
    // than random.
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t stripe =
        next.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return stripe;
  }

  Stripe stripes_[kStripes];
};

/// A last-value (or accumulating) gauge holding a double — used for
/// one-shot facts like per-phase init seconds.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Accumulates (C++20 atomic<double>::fetch_add); lets a phase that
  /// runs in pieces sum into one gauge.
  void Add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Quantile summary of a histogram at one instant (see Histogram).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;

  double mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
};

/// Fixed-bucket histogram of non-negative integer samples (latencies in
/// nanoseconds, ring occupancies, slice sizes).
///
/// Bucket layout (HDR-style): values 0..15 get one bucket each (exact);
/// larger values get 4 sub-buckets per power of two, i.e. at most 25%
/// relative bucket width. 256 buckets total cover the whole uint64 range
/// with 2 KiB of storage, so a histogram is cheap enough to exist per
/// shard per metric.
///
/// Quantiles are *exact-rank*: Quantile(q) finds the bucket containing
/// the ceil(q * count)-th smallest recorded sample — the rank selection
/// is exact, the returned value is that bucket's lower bound (so samples
/// that are themselves bucket lower bounds, e.g. values < 16 or powers of
/// two, are recovered exactly).
///
/// Record() is wait-free (one relaxed fetch_add per sample plus a relaxed
/// max update); readers may run concurrently with writers.
class Histogram {
 public:
  static constexpr std::size_t kLinearBuckets = 16;
  static constexpr std::size_t kSubBuckets = 4;
  static constexpr std::size_t kNumBuckets =
      kLinearBuckets + kSubBuckets * (64 - 4);  // msb 4..63

  /// Records one sample.
  void Record(std::uint64_t value) {
    counts_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Adds every recorded sample of `other` into this histogram.
  void Merge(const Histogram& other) {
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      const std::uint64_t n =
          other.counts_[b].load(std::memory_order_relaxed);
      if (n != 0) counts_[b].fetch_add(n, std::memory_order_relaxed);
    }
    sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    const std::uint64_t other_max =
        other.max_.load(std::memory_order_relaxed);
    while (other_max > seen &&
           !max_.compare_exchange_weak(seen, other_max,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Samples recorded so far (sum of bucket counts).
  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      total += counts_[b].load(std::memory_order_relaxed);
    }
    return total;
  }

  /// The lower bound of the bucket holding the sample of exact rank
  /// ceil(q * count); 0 on an empty histogram. q is clamped into [0, 1].
  std::uint64_t Quantile(double q) const;

  /// One consistent-enough summary (count/sum/max/p50/p90/p99) read off
  /// the live buckets.
  HistogramSnapshot Snapshot() const;

  /// The lower bound of bucket `b` (the value Quantile can return).
  static std::uint64_t BucketLowerBound(std::size_t b);
  /// The bucket a value lands in.
  static std::size_t BucketIndex(std::uint64_t value);

 private:
  std::atomic<std::uint64_t> counts_[kNumBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace obs
}  // namespace sper

#endif  // SPER_OBS_METRICS_H_
