// Table 1: space and time complexities — validated empirically. Every
// method's initialization and emission phases are timed on the movies
// generator at growing |P| (x1, x2, x4); the growth ratio between
// successive scales is printed next to the complexity the paper claims.
// Near-linearithmic methods should show ratios a little above 2 when |P|
// doubles.
//
//   $ ./bench_table1_complexity [--scale=S]

#include <chrono>
#include <memory>

#include "bench_util.h"

namespace {

struct Timing {
  std::size_t profiles = 0;
  double init_seconds = 0.0;
  double emission_us = 0.0;  // mean per emission over the first 20k
};

Timing Measure(sper::MethodId id, const sper::DatasetBundle& dataset,
               const sper::MethodConfig& config) {
  using Clock = std::chrono::steady_clock;
  Timing t;
  t.profiles = dataset.store.size();
  const auto t0 = Clock::now();
  std::unique_ptr<sper::ProgressiveEmitter> emitter =
      sper::MakeResolver(id, dataset, config);
  const auto t1 = Clock::now();
  t.init_seconds = std::chrono::duration<double>(t1 - t0).count();

  std::size_t emissions = 0;
  const auto t2 = Clock::now();
  while (emissions < 20000 && emitter->Next().has_value()) ++emissions;
  const auto t3 = Clock::now();
  t.emission_us = emissions > 0
                      ? 1e6 * std::chrono::duration<double>(t3 - t2).count() /
                            static_cast<double>(emissions)
                      : 0.0;
  return t;
}

const char* PaperComplexity(sper::MethodId id) {
  switch (id) {
    case sper::MethodId::kSaPsn:
      return "init O(n log n), emit O(1)";
    case sper::MethodId::kSaPsab:
      return "init O(s log s), emit O(1)";
    case sper::MethodId::kLsPsn:
      return "init O(n log n), emit O(1) or O(n)";
    case sper::MethodId::kGsPsn:
      return "init O(n log n), emit O(1)";
    case sper::MethodId::kPbs:
      return "init O(|B| log |B|), emit O(1) or O(b log b)";
    case sper::MethodId::kPps:
      return "init O(|V|+|E|), emit O(1) or O(nbhd)";
    default:
      return "";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sper;
  using namespace sper::bench;
  const BenchArgs args = ParseArgs(argc, argv);

  std::printf("Table 1 (empirical): init/emission scaling on movies at "
              "|P| x1, x2, x4\n(base scale %.2f of the 28k-23k dataset)\n",
              0.25 * args.scale);

  const std::vector<double> scales = {0.25, 0.5, 1.0};
  std::vector<DatasetBundle> datasets;
  for (double s : scales) {
    DatagenOptions gen;
    gen.scale = s * 0.25 * args.scale;
    Result<DatasetBundle> dataset = GenerateDataset("movies", gen);
    if (!dataset.ok()) return 1;
    datasets.push_back(std::move(dataset).value());
  }

  TextTable table({"method", "|P|", "init (s)", "emit (us)",
                   "init growth", "paper claim"});
  for (MethodId id : HeterogeneousMethodSet()) {
    MethodConfig config;
    config.gs_wmax = 20;  // keep GS-PSN memory flat across scales
    double previous_init = 0.0;
    for (std::size_t k = 0; k < datasets.size(); ++k) {
      const Timing t = Measure(id, datasets[k], config);
      std::string growth =
          k == 0 || previous_init <= 0
              ? "-"
              : "x" + FormatDouble(t.init_seconds / previous_init, 2);
      table.AddRow({k == 0 ? std::string(ToString(id)) : std::string(),
                    FormatCount(t.profiles),
                    FormatDouble(t.init_seconds, 3),
                    FormatDouble(t.emission_us, 2), growth,
                    k == 0 ? PaperComplexity(id) : ""});
      previous_init = t.init_seconds;
    }
  }
  table.Print();

  std::printf(
      "\nReading: |P| doubles per row, so near-linear methods show init\n"
      "growth ~x2 and the emission cost stays flat — Table 1's claims.\n");
  return 0;
}
