#ifndef SPER_BLOCKING_TOKEN_BLOCKING_H_
#define SPER_BLOCKING_TOKEN_BLOCKING_H_

#include "blocking/block_collection.h"
#include "core/profile_store.h"
#include "core/tokenizer.h"

/// \file token_blocking.h
/// Schema-agnostic Standard Blocking, a.k.a. Token Blocking [18]:
/// one block per attribute-value token that appears in at least two
/// profiles (workflow step 1 in paper Sec. 7). The resulting blocks are
/// redundancy-positive: the more blocks two profiles share, the more
/// likely they match (the equality principle).

namespace sper {

/// Options for Token Blocking.
struct TokenBlockingOptions {
  /// How attribute values are split into tokens.
  TokenizerOptions tokenizer;
  /// Threads for the sharded token-index build (0 or 1 = sequential). The
  /// resulting collection is identical at every thread count.
  std::size_t num_threads = 1;
};

/// Builds the Token Blocking collection of a store. A token produces a
/// block iff the block would yield at least one valid comparison (>= 2
/// profiles for Dirty ER; >= 1 profile per source for Clean-Clean ER).
/// Blocks are ordered by key for determinism; profiles inside a block are
/// sorted ascending.
BlockCollection TokenBlocking(const ProfileStore& store,
                              const TokenBlockingOptions& options = {});

}  // namespace sper

#endif  // SPER_BLOCKING_TOKEN_BLOCKING_H_
