#ifndef SPER_BLOCKING_BLOCK_COLLECTION_H_
#define SPER_BLOCKING_BLOCK_COLLECTION_H_

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/macros.h"
#include "core/types.h"

/// \file block_collection.h
/// A block collection B with its aggregate statistics (paper Sec. 3):
/// |B| (number of blocks) and ||B|| (total comparisons).
///
/// Storage is a flat CSR (compressed sparse row) layout: one contiguous
/// ProfileId array holds every block's members back to back, an offsets
/// array marks block boundaries, and all block keys are interned into a
/// single string arena. Compared to a vector of per-block heap vectors
/// this removes one pointer chase plus one allocation per block and keeps
/// the meta-blocking gather loop (paper Algorithm 5 line 10) streaming
/// over contiguous memory.
///
/// For Clean-Clean ER every block additionally records its *split point*:
/// members are sorted ascending and source-1 ids precede source-2 ids, so
/// one extra offset per block partitions it into its two source ranges.
/// Consumers that only ever need the opposite-source neighbors of a
/// profile (edge weighting, PPS) scan exactly that range — zero
/// per-element comparability branches in the hot loop.

namespace sper {

/// An ordered collection of blocks plus the ER-task geometry needed to
/// count comparisons (ER type and Clean-Clean split index). Block ids are
/// positions in the collection; Block Scheduling reorders the collection so
/// that ids equal processing rank.
class BlockCollection {
 public:
  /// Creates an empty collection for a task with the given geometry.
  /// `split_index` must equal the store's split index (== |P| for Dirty).
  BlockCollection(ErType er_type, ProfileId split_index)
      : er_type_(er_type), split_index_(split_index) {
    member_offsets_.push_back(0);
    key_offsets_.push_back(0);
  }

  /// Appends a block (members must be sorted ascending, duplicate-free),
  /// interning its key and caching its cardinality and Clean-Clean split
  /// point. Returns the new block's id.
  BlockId Add(std::string_view key, std::span<const ProfileId> members);

  /// Convenience overload for literal member lists (tests, examples).
  BlockId Add(std::string_view key,
              std::initializer_list<ProfileId> members) {
    return Add(key, std::span<const ProfileId>(members.begin(),
                                               members.size()));
  }

  /// Pre-sizes the flat arrays for a known build (kills reallocation
  /// churn when a blocking builder knows its totals up front).
  void Reserve(std::size_t num_blocks, std::size_t total_members,
               std::size_t total_key_bytes);

  /// |B|: number of blocks.
  std::size_t size() const { return cardinalities_.size(); }

  bool empty() const { return cardinalities_.empty(); }

  /// The interned key of block `id` (valid while the collection lives).
  std::string_view key(BlockId id) const {
    return std::string_view(key_arena_)
        .substr(key_offsets_[id], key_offsets_[id + 1] - key_offsets_[id]);
  }

  /// |b_id|: number of profiles in the block.
  std::size_t block_size(BlockId id) const {
    return member_offsets_[id + 1] - member_offsets_[id];
  }

  /// All members of block `id`, sorted ascending.
  std::span<const ProfileId> members(BlockId id) const {
    return {members_.data() + member_offsets_[id],
            members_.data() + member_offsets_[id + 1]};
  }

  /// The source-1 members of block `id` (ids < split_index()); the whole
  /// block for Dirty ER.
  std::span<const ProfileId> source1(BlockId id) const {
    return {members_.data() + member_offsets_[id],
            members_.data() + split_offsets_[id]};
  }

  /// The source-2 members of block `id` (ids >= split_index()); empty for
  /// Dirty ER.
  std::span<const ProfileId> source2(BlockId id) const {
    return {members_.data() + split_offsets_[id],
            members_.data() + member_offsets_[id + 1]};
  }

  /// The comparable neighbors of profile `i` inside block `id` for
  /// Clean-Clean ER: the range of the *other* source. Callers must be on
  /// a Clean-Clean collection (Dirty ER keeps the j != i check instead).
  std::span<const ProfileId> OppositeSource(BlockId id, ProfileId i) const {
    return i < split_index_ ? source2(id) : source1(id);
  }

  /// Every member of every block, concatenated in block-id order.
  std::span<const ProfileId> all_members() const { return members_; }

  /// Σ|b_i|: total memberships across all blocks.
  std::size_t total_members() const { return members_.size(); }

  /// Total interned key bytes (for pre-sizing a derived collection).
  std::size_t total_key_bytes() const { return key_arena_.size(); }

  /// ||b_id||: comparisons the block yields — C(|b|,2) for Dirty ER,
  /// |b ∩ P1| * |b ∩ P2| for Clean-Clean ER.
  std::uint64_t Cardinality(BlockId id) const { return cardinalities_[id]; }

  /// ||B||: the aggregate cardinality, Σ ||b_i||.
  std::uint64_t AggregateCardinality() const { return aggregate_cardinality_; }

  /// Mean block size |b̄| = Σ|b| / |B|.
  double MeanBlockSize() const;

  /// The ER form this collection was built for.
  ErType er_type() const { return er_type_; }

  /// First source-2 profile id (== |P| for Dirty ER).
  ProfileId split_index() const { return split_index_; }

  /// Invokes `fn(i, j)` for every valid comparison of block `id`: all
  /// unordered pairs for Dirty ER, cross-source pairs for Clean-Clean ER
  /// (via the precomputed split point — no per-pair validity test).
  /// Pairs are visited in a deterministic order.
  template <typename Fn>
  void ForEachComparison(BlockId id, Fn&& fn) const {
    if (er_type_ == ErType::kDirty) {
      std::span<const ProfileId> ps = members(id);
      for (std::size_t x = 0; x < ps.size(); ++x) {
        for (std::size_t y = x + 1; y < ps.size(); ++y) fn(ps[x], ps[y]);
      }
    } else {
      std::span<const ProfileId> s1 = source1(id);
      std::span<const ProfileId> s2 = source2(id);
      for (ProfileId x : s1) {
        for (ProfileId y : s2) fn(x, y);
      }
    }
  }

  /// Computes the cardinality a member list would have under this
  /// geometry (without adding it).
  std::uint64_t ComputeCardinality(std::span<const ProfileId> members) const;

 private:
  ErType er_type_;
  ProfileId split_index_;

  // CSR members: block id -> [member_offsets_[id], member_offsets_[id+1])
  // into members_; split_offsets_[id] is the absolute position of the
  // first source-2 member (== the end offset for Dirty ER).
  std::vector<ProfileId> members_;
  std::vector<std::uint64_t> member_offsets_;  // size() + 1
  std::vector<std::uint64_t> split_offsets_;   // size(), indexed by id

  // Interned keys: block id -> [key_offsets_[id], key_offsets_[id+1])
  // into key_arena_.
  std::string key_arena_;
  std::vector<std::uint64_t> key_offsets_;  // size() + 1

  std::vector<std::uint64_t> cardinalities_;
  std::uint64_t aggregate_cardinality_ = 0;
};

}  // namespace sper

#endif  // SPER_BLOCKING_BLOCK_COLLECTION_H_
