#ifndef SPER_ENGINE_SHARDED_ENGINE_H_
#define SPER_ENGINE_SHARDED_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/comparison.h"
#include "core/profile_store.h"
#include "core/store_partition.h"
#include "engine/engine.h"
#include "engine/progressive_engine.h"
#include "obs/telemetry.h"
#include "parallel/ordered_merge.h"
#include "parallel/thread_pool.h"
#include "progressive/emitter.h"

/// \file sharded_engine.h
/// Sharded serving (ROADMAP "Sharded serving"): hash-partition the
/// ProfileStore into S shard-local stores, run one ProgressiveEngine per
/// shard, and merge the per-shard ranked streams into one global emission
/// order. Initialization — the expensive blocking / meta-blocking phase —
/// runs per shard, with the shard constructions themselves fanned out on
/// the ThreadPool; emission stays a sequential pull-based stream in
/// *original* profile ids.
///
/// With `engine.lookahead > 0` shard refills run *in parallel*: every
/// shard engine's emission pipeline producer lives on a shared pool (one
/// worker per non-barren shard), so when the k-way merge pops a shard
/// head, the refill it triggers is an O(1) pop from that shard's
/// completed batches — S shards keep S producers busy instead of
/// serializing every ProcessProfile/ProcessBlock on the merge thread.
///
/// Determinism contract: the merged stream depends only on (store,
/// options.num_shards, engine options) — never on thread count or timing.
/// For num_shards == 1 it is bit-identical to a plain ProgressiveEngine
/// with the same engine options. Note that for S > 1 the stream is a
/// different (still deterministic) order than unsharded: each shard ranks
/// comparisons against its own sub-collection, and only intra-shard pairs
/// are candidates — the standard recall trade-off of hash sharding.

namespace sper {

/// One ProgressiveEngine per hash shard behind a deterministic k-way
/// merged stream, expressed in the original store's profile ids.
///
/// Direct construction is internal: public callers use
/// `Resolver::Create` with `ResolverOptions::num_shards > 1`
/// (engine/resolver.h); ShardedEngine remains the sharded implementation
/// behind that factory.
class ShardedEngine : public BudgetedEngine {
 public:
  /// Partitions the store into `num_shards` hash shards (0 and 1 both
  /// mean "one shard"), then constructs the per-shard engines
  /// concurrently on a ThreadPool. The store must outlive the engine
  /// only for construction; shards own copies of their profiles.
  ///
  /// `config` is the per-shard engine configuration, reinterpreted at
  /// the sharded level: `config.budget` is the *global* pay-as-you-go
  /// budget across all shards (inner engines run unbudgeted; the merged
  /// stream is capped); `config.num_threads` is the total thread budget
  /// for *initialization* — shard initializations run concurrently and
  /// split it evenly; `config.lookahead` applies per shard and turns on
  /// the parallel refills described above, using one additional producer
  /// thread per non-barren shard (not counted against num_threads, and
  /// capped: past 64 non-barren shards the engine silently falls back to
  /// serial refills rather than spawn an OS thread per shard — the
  /// emitted stream is identical either way).
  ShardedEngine(const ProfileStore& store, EngineConfig config,
                std::size_t num_shards);

  /// The underlying method's acronym, e.g. "PPS".
  std::string_view name() const override;

  /// Number of shards (== options.num_shards, at least 1).
  std::size_t num_shards() const override { return shards_.size(); }

  /// Stops the stream: drains every shard engine (shutting down its
  /// emission pipeline) and joins the shared producer pool. Idempotent.
  void Drain() override;

 private:
  /// The globally next best comparison (original ids) off the k-way
  /// merge; the global budget is charged in BudgetedEngine::Pull(). A
  /// shard pull that gives up (token fired) surfaces as kCancelled with
  /// the merge heap, priming cursor, and pending refill intact; a shard
  /// that poisoned itself surfaces as kError with its status adopted.
  PullStatus PullUnbudgeted(Comparison& out,
                            const CancelToken& token) override;

  EngineConfig config_;
  std::vector<StoreShard> shards_;
  // Hosts the per-shard emission-pipeline producers (lookahead > 0): one
  // worker per non-barren shard, so no producer ever waits for a worker —
  // the merge would deadlock waiting on a head no worker is computing.
  // Declared before engines_ so it is destroyed (joined) after every
  // engine has shut its pipeline down.
  std::unique_ptr<ThreadPool> emission_pool_;
  std::vector<std::unique_ptr<ProgressiveEngine>> engines_;
  KWayMerge<Comparison, ByWeightDesc> merge_;
  /// Per-*stream* draw counters ("merge.shard<S>.draws", stream order —
  /// barren shards register no stream); empty when telemetry is off.
  std::vector<obs::Counter*> draw_counters_;
  /// The token of the pull in flight, read by the merge-stream lambdas
  /// (set at the top of each PullUnbudgeted; engines are single-consumer
  /// so no synchronization is needed).
  CancelToken request_token_;
};

}  // namespace sper

#endif  // SPER_ENGINE_SHARDED_ENGINE_H_
