// sper_cli — command-line front end for the library.
//
//   sper_cli list
//       Available datasets and methods.
//
//   sper_cli generate <dataset> [--seed=N] [--scale=S] [--out=PREFIX]
//       Generate a synthetic benchmark dataset and write
//       PREFIX_profiles.csv / PREFIX_truth.csv.
//
//   sper_cli run <dataset> --method=NAME [--seed=N] [--scale=S]
//                [--ecmax=E] [--threads=N] [--shards=N] [--lookahead=N]
//                [--budget=N] [--deadline-ms=N] [--priority=NAME]
//                [--client-rate=R] [--curve=FILE.csv]
//                [--metrics-json=FILE] [--trace=FILE]
//       Run one progressive method under the paper's evaluation protocol;
//       print the recall curve and AUC*, optionally dump the curve as CSV.
//       --threads parallelizes the initialization phase (same output at
//       every thread count). --shards=N hash-partitions the store and
//       serves one engine per shard behind a merged emission stream.
//       --lookahead=N pipelines emission: refill batches are produced
//       ahead of consumption, up to N queue slots of >=256 comparisons
//       each (per shard when sharded), bit-identical to the serial
//       stream; 0 keeps the serial reference path. Defaults to 0 for
//       --threads=1 and 4 otherwise. --budget=N caps the run at N
//       emitted comparisons (the pay-as-you-go budget,
//       ResolverOptions::budget; 0 = unlimited). --deadline-ms=N serves
//       the drain through the session layer with an N-millisecond
//       deadline per resolve request (ResolveRequest::deadline_ms);
//       slices cut at the deadline are retried, the stream stays
//       bit-identical, and a summary counts the cut slices.
//       --priority=NAME (interactive | batch | best_effort) and
//       --client-rate=R (requests/second, token-bucket limited) serve
//       the drain through the QoS admission controller
//       (src/serving/qos.h): requests carry the priority class, and a
//       shed request waits the controller's retry_after_ms hint and
//       retries — the stream stays bit-identical, and a summary counts
//       the shed retries.
//       Method names are case-insensitive ("pps" == "PPS").
//       --metrics-json=FILE and --trace=FILE turn on telemetry for the
//       run: the drain is served through the session layer (in slices
//       bit-identical to the plain drain), and afterwards the metric
//       registry is written as one JSON snapshot (per-phase init
//       seconds, pipeline ring health, session latency histograms)
//       and/or a Chrome trace-event JSON loadable in Perfetto /
//       chrome://tracing.
//       Flags are parsed strictly: a malformed or out-of-range value
//       (e.g. --threads=abc) and an unrecognized flag name (e.g.
//       --buget=100) are errors, never a silent fallback.
//
//   sper_cli inspect <dataset> [--seed=N] [--scale=S] [--threads=N]
//                    [--shards=N] [--lookahead=N] [--method=NAME]
//       Dataset statistics plus Token-Blocking-Workflow block statistics;
//       --shards adds the per-shard partition breakdown; --lookahead is
//       reported as part of the serving configuration. Also constructs
//       the --method resolver (default pps) and prints its per-phase
//       initialization breakdown (per shard when sharded).
//
//   sper_cli serve <dataset> --listen=HOST:PORT [--method=NAME] [--seed=N]
//                  [--scale=S] [--threads=N] [--shards=N] [--lookahead=N]
//                  [--budget=N] [--client-rate=R] [--max-queue-depth=N]
//                  [--max-connections=N]
//       Serve the dataset's resolver over TCP (net/server.h, wire
//       protocol in docs/wire_protocol.md). Prints "listening on
//       HOST:PORT" (with the real port when --listen ends in :0) once
//       accepting, then runs until SIGTERM/SIGINT, which triggers a
//       graceful drain: stop accepting, flush in-flight responses, join
//       every connection, Resolver::Drain(). Remote requests pass
//       through the QoS admission controller (--client-rate and
//       --max-queue-depth configure it); the kMetricsRequest admin frame
//       serves the live metrics registry.
//
//   sper_cli client --connect=HOST:PORT [--budget=N] [--batch=N]
//                   [--requests=N] [--deadline-ms=N] [--priority=NAME]
//                   [--client-id=N] [--metrics]
//       Drain a served stream over TCP: issue resolve requests (budget
//       and max_batch per request from --budget/--batch) until the
//       stream or --requests runs out, honoring the server's
//       retry_after_ms backoff hints on shed, and print the FNV-1a
//       stream digest — comparable bit-for-bit against an in-process
//       drain of the same dataset/method. --metrics instead fetches and
//       prints the server's metrics snapshot JSON.

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <initializer_list>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "core/store_partition.h"
#include "datagen/datagen.h"
#include "engine/resolver.h"
#include "obs/registry.h"
#include "obs/telemetry.h"
#include "eval/evaluator.h"
#include "eval/experiment.h"
#include "eval/table.h"
#include "io/dataset_io.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "progressive/workflow.h"
#include "serving/qos.h"

namespace {

using namespace sper;

struct CliArgs {
  std::map<std::string, std::string> options;
  std::vector<std::string> positional;
};

CliArgs Parse(int argc, char** argv) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      const char* eq = std::strchr(argv[i], '=');
      if (eq != nullptr) {
        args.options[std::string(argv[i] + 2,
                                 static_cast<std::size_t>(
                                     eq - argv[i] - 2))] = eq + 1;
      } else {
        args.options[argv[i] + 2] = "1";
      }
    } else {
      args.positional.push_back(argv[i]);
    }
  }
  return args;
}

// Strict flag parsing: a malformed value ("--threads=abc"), junk after
// the number ("--scale=1.5x"), an out-of-range value, or an unrecognized
// flag name ("--buget=100") is an error printed to stderr with exit(2) —
// never a silent 0/clamp/ignore fallback.

void RequireKnownOptions(const CliArgs& args,
                         std::initializer_list<const char*> known) {
  for (const auto& [key, value] : args.options) {
    bool recognized = false;
    for (const char* k : known) {
      if (key == k) {
        recognized = true;
        break;
      }
    }
    if (!recognized) {
      std::fprintf(stderr, "unknown option --%s\n", key.c_str());
      std::exit(2);
    }
  }
}

[[noreturn]] void DieBadFlag(const std::string& key, const std::string& value,
                             const std::string& expected) {
  std::fprintf(stderr, "invalid --%s=%s (expected %s)\n", key.c_str(),
               value.c_str(), expected.c_str());
  std::exit(2);
}

std::uint64_t OptUint(const CliArgs& args, const std::string& key,
                      std::uint64_t fallback, std::uint64_t min_value,
                      std::uint64_t max_value) {
  auto it = args.options.find(key);
  if (it == args.options.end()) return fallback;
  const std::string& text = it->second;
  const std::string expected = "an integer in [" + std::to_string(min_value) +
                               ", " + std::to_string(max_value) + "]";
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0]))) {
    DieBadFlag(key, text, expected);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size() ||
      parsed < min_value || parsed > max_value) {
    DieBadFlag(key, text, expected);
  }
  return parsed;
}

double OptDouble(const CliArgs& args, const std::string& key,
                 double fallback) {
  auto it = args.options.find(key);
  if (it == args.options.end()) return fallback;
  const std::string& text = it->second;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (text.empty() || errno == ERANGE ||
      end != text.c_str() + text.size() || !std::isfinite(parsed) ||
      parsed <= 0.0) {
    DieBadFlag(key, text, "a finite number > 0");
  }
  return parsed;
}

std::string OptString(const CliArgs& args, const std::string& key,
                      const std::string& fallback) {
  auto it = args.options.find(key);
  return it == args.options.end() ? fallback : it->second;
}

/// A file-path flag: empty when absent; an explicitly empty value
/// ("--trace=") is an error, consistent with strict parsing.
std::string OptPath(const CliArgs& args, const std::string& key) {
  auto it = args.options.find(key);
  if (it == args.options.end()) return {};
  if (it->second.empty()) DieBadFlag(key, it->second, "a file path");
  return it->second;
}

std::size_t OptThreads(const CliArgs& args) {
  return OptUint(args, "threads", 1, 1, ResolverOptions::kMaxThreads);
}

std::size_t OptShards(const CliArgs& args) {
  return OptUint(args, "shards", 1, 1, ResolverOptions::kMaxShards);
}

std::size_t OptLookahead(const CliArgs& args) {
  // The serial emission path stays the reference: it is the default for
  // --threads=1. Multi-threaded runs default to a small pipeline
  // lookahead (the stream is bit-identical either way); an explicit
  // --lookahead=0 always forces the serial path.
  const std::uint64_t fallback = OptThreads(args) > 1 ? 4 : 0;
  return OptUint(args, "lookahead", fallback, 0,
                 ResolverOptions::kMaxLookahead);
}

std::uint64_t OptBudget(const CliArgs& args) {
  return OptUint(args, "budget", 0, 0,
                 std::numeric_limits<std::uint64_t>::max());
}

DatagenOptions GenOptions(const CliArgs& args) {
  DatagenOptions options;
  options.seed = OptUint(args, "seed", 7, 0,
                         std::numeric_limits<std::uint64_t>::max());
  options.scale = OptDouble(args, "scale", 1.0);
  return options;
}

int CmdList() {
  std::printf("datasets (Table 2 synthetic counterparts):\n");
  for (const std::string& name : StructuredDatasetNames()) {
    std::printf("  %-12s dirty ER, structured\n", name.c_str());
  }
  for (const std::string& name : HeterogeneousDatasetNames()) {
    std::printf("  %-12s clean-clean ER, heterogeneous\n", name.c_str());
  }
  std::printf("\nmethods:\n");
  for (MethodId id : StructuredMethodSet()) {
    std::printf("  %s\n", std::string(ToString(id)).c_str());
  }
  return 0;
}

int CmdGenerate(const CliArgs& args) {
  RequireKnownOptions(args, {"seed", "scale", "out"});
  if (args.positional.size() < 2) {
    std::fprintf(stderr, "usage: sper_cli generate <dataset> [--seed=N] "
                         "[--scale=S] [--out=PREFIX]\n");
    return 2;
  }
  const std::string& name = args.positional[1];
  Result<DatasetBundle> dataset = GenerateDataset(name, GenOptions(args));
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const std::string prefix = OptString(args, "out", name);
  Status st = WriteProfilesCsv(dataset.value().store,
                               prefix + "_profiles.csv");
  if (st.ok()) {
    st = WriteGroundTruthCsv(dataset.value().truth, prefix + "_truth.csv");
  }
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s_profiles.csv (%zu profiles) and %s_truth.csv "
              "(%zu matches)\n",
              prefix.c_str(), dataset.value().store.size(), prefix.c_str(),
              dataset.value().truth.num_matches());
  return 0;
}

MethodId ParseMethod(const std::string& name) {
  std::optional<MethodId> id = ParseMethodId(name);
  if (!id.has_value()) {
    std::fprintf(stderr, "unknown method '%s' (see: sper_cli list)\n",
                 name.c_str());
    std::exit(2);
  }
  return *id;
}

/// Serves a drain through the session layer in fixed slices, so a
/// telemetry run records per-request session histograms and one
/// "session.resolve" span per request. Slices concatenated in ticket
/// order are bit-identical to an un-batched drain of the same resolver
/// (the Resolver contract), so evaluation results are unchanged.
class SessionEmitter : public ProgressiveEmitter {
 public:
  static constexpr std::uint64_t kSliceBudget = 4096;
  /// Consecutive comparison-less deadline-cut slices tolerated before the
  /// drain gives up — a deadline too tight to ever draw one comparison
  /// must not loop forever.
  static constexpr int kMaxEmptySlices = 64;

  /// `deadline_ms` (0 = none) is applied to every resolve request;
  /// `deadline_hits`, when given, counts slices cut by it (shared so the
  /// caller can read the count after the evaluator destroyed the
  /// emitter).
  explicit SessionEmitter(
      std::unique_ptr<Resolver> resolver, std::uint64_t deadline_ms = 0,
      std::shared_ptr<std::uint64_t> deadline_hits = nullptr)
      : resolver_(std::move(resolver)),
        session_(resolver_->OpenSession()),
        deadline_ms_(deadline_ms),
        deadline_hits_(std::move(deadline_hits)) {}

  /// Routes every request through a QoS admission controller instead of
  /// the raw session: requests carry `priority`, and a shed request backs
  /// off by the controller's retry_after_ms hint and retries
  /// (`shed_retries` counts those). The emitted stream is unchanged —
  /// sheds never consume it.
  void EnableQos(serving::QosOptions options, Priority priority,
                 std::shared_ptr<std::uint64_t> shed_retries) {
    qos_ = std::make_unique<serving::QosAdmissionController>(
        *resolver_, std::move(options));
    priority_ = priority;
    shed_retries_ = std::move(shed_retries);
  }

  std::optional<Comparison> Next() override {
    while (cursor_ >= slice_.comparisons.size()) {
      if (done_) return std::nullopt;
      ResolveRequest request;
      request.budget = kSliceBudget;
      request.max_batch = kSliceBudget;
      request.deadline_ms = deadline_ms_;
      request.priority = priority_;
      request.client_id = 1;  // the CLI drain is one client
      if (qos_ != nullptr) {
        ResolveResult attempt = qos_->Resolve(request);
        if (attempt.outcome == ResolveOutcome::kShed) {
          if (shed_retries_ != nullptr) ++*shed_retries_;
          std::this_thread::sleep_for(
              std::chrono::milliseconds(attempt.retry_after_ms));
          continue;
        }
        slice_ = std::move(attempt);
      } else {
        slice_ = session_.Resolve(request);
      }
      cursor_ = 0;
      if (slice_.deadline_exceeded() || slice_.cancelled()) {
        // A cut slice is partial, not the end: take what it holds and
        // ask again — the next ticket continues bit-identically.
        if (deadline_hits_ != nullptr) ++*deadline_hits_;
        empty_streak_ =
            slice_.comparisons.empty() ? empty_streak_ + 1 : 0;
        if (empty_streak_ >= kMaxEmptySlices) done_ = true;
      } else if (slice_.stream_exhausted || slice_.budget_exhausted ||
                 !slice_.status.ok() ||
                 slice_.comparisons.size() < kSliceBudget) {
        // The stream or the global budget ran out (a short un-cut slice
        // means the same); do not come back for an extra empty request.
        done_ = true;
      }
    }
    return slice_.comparisons[cursor_++];
  }

  std::string_view name() const override { return resolver_->name(); }

 private:
  std::unique_ptr<Resolver> resolver_;
  ResolverSession session_;
  std::uint64_t deadline_ms_ = 0;
  std::shared_ptr<std::uint64_t> deadline_hits_;
  std::unique_ptr<serving::QosAdmissionController> qos_;
  Priority priority_ = Priority::kInteractive;
  std::shared_ptr<std::uint64_t> shed_retries_;
  ResolveResult slice_;
  std::size_t cursor_ = 0;
  int empty_streak_ = 0;
  bool done_ = false;
};

int CmdRun(const CliArgs& args) {
  RequireKnownOptions(args, {"seed", "scale", "method", "ecmax", "threads",
                             "shards", "lookahead", "budget", "deadline-ms",
                             "priority", "client-rate", "curve",
                             "metrics-json", "trace"});
  if (args.positional.size() < 2 || !args.options.count("method")) {
    std::fprintf(stderr, "usage: sper_cli run <dataset> --method=NAME "
                         "[--seed=N] [--scale=S] [--ecmax=E] [--threads=N] "
                         "[--shards=N] [--lookahead=N] [--budget=N] "
                         "[--deadline-ms=N] [--priority=NAME] "
                         "[--client-rate=R] [--curve=FILE.csv] "
                         "[--metrics-json=FILE] [--trace=FILE]\n");
    return 2;
  }
  Result<DatasetBundle> dataset =
      GenerateDataset(args.positional[1], GenOptions(args));
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const MethodId method = ParseMethod(args.options.at("method"));

  EvalOptions options;
  options.ecstar_max = OptDouble(args, "ecmax", 10.0);
  options.auc_at = {1.0, 5.0, 10.0};
  ProgressiveEvaluator evaluator(dataset.value().truth, options);
  MethodConfig config;
  config.num_threads = OptThreads(args);
  config.num_shards = OptShards(args);
  config.lookahead = OptLookahead(args);
  config.budget = OptBudget(args);
  std::unique_ptr<Resolver> probe =
      MakeResolver(method, dataset.value(), config);
  if (probe == nullptr) {
    std::fprintf(stderr, "method %s is not applicable to %s "
                         "(no schema-based blocking key)\n",
                 std::string(ToString(method)).c_str(),
                 dataset.value().name.c_str());
    return 1;
  }
  probe.reset();

  // Telemetry is wired only after the applicability probe above, so the
  // registry holds exactly one run's metrics.
  const std::string metrics_path = OptPath(args, "metrics-json");
  const std::string trace_path = OptPath(args, "trace");
  const bool telemetry_on = !metrics_path.empty() || !trace_path.empty();
  obs::Registry registry;
  if (telemetry_on) config.telemetry = obs::TelemetryScope(&registry);

  const std::uint64_t deadline_ms =
      OptUint(args, "deadline-ms", 0, 0,
              std::numeric_limits<std::uint64_t>::max());

  Priority priority = Priority::kInteractive;
  if (args.options.count("priority")) {
    const std::optional<Priority> parsed =
        ParsePriority(args.options.at("priority"));
    if (!parsed.has_value()) {
      std::fprintf(stderr,
                   "--priority=%s: unknown class (want interactive, batch, "
                   "or best_effort)\n",
                   args.options.at("priority").c_str());
      return 2;
    }
    priority = *parsed;
  }
  const double client_rate = OptDouble(args, "client-rate", 0.0);
  const bool use_qos =
      args.options.count("priority") || args.options.count("client-rate");
  const bool use_sessions = telemetry_on || deadline_ms > 0 || use_qos;
  auto deadline_hits = std::make_shared<std::uint64_t>(0);
  auto shed_retries = std::make_shared<std::uint64_t>(0);

  RunResult run = evaluator.Run(
      [&]() -> std::unique_ptr<ProgressiveEmitter> {
        std::unique_ptr<Resolver> resolver =
            MakeResolver(method, dataset.value(), config);
        if (!use_sessions) return resolver;
        // Route the drain through the session layer so the trace shows
        // one span per resolve request — and so a --deadline-ms applies
        // per request (same emitted stream either way).
        auto emitter = std::make_unique<SessionEmitter>(
            std::move(resolver), deadline_ms, deadline_hits);
        if (use_qos) {
          serving::QosOptions qos_options;
          qos_options.client_rate = client_rate;
          qos_options.telemetry = config.telemetry;
          emitter->EnableQos(std::move(qos_options), priority, shed_retries);
        }
        return emitter;
      });

  if (config.num_shards > 1) {
    std::printf("sharded serving: %zu hash shards, merged emission\n",
                config.num_shards);
  }
  if (config.budget > 0) {
    std::printf("pay-as-you-go budget: %llu comparisons (global across "
                "shards)\n",
                static_cast<unsigned long long>(config.budget));
  }
  if (config.lookahead > 0 && MethodHasBatchRefills(method)) {
    std::printf("emission pipeline: lookahead %zu (refills produced ahead "
                "of consumption%s)\n",
                config.lookahead,
                config.num_shards > 1 ? ", one producer per shard" : "");
  }
  if (deadline_ms > 0) {
    std::printf("deadline: %llu ms per %llu-comparison request; %llu "
                "slice(s) cut short (each continued losslessly)\n",
                static_cast<unsigned long long>(deadline_ms),
                static_cast<unsigned long long>(
                    SessionEmitter::kSliceBudget),
                static_cast<unsigned long long>(*deadline_hits));
  }
  if (use_qos) {
    std::printf("qos admission: priority %s, client rate %s req/s; "
                "%llu shed retr%s (each waited the controller's "
                "retry_after_ms hint)\n",
                std::string(ToString(priority)).c_str(),
                client_rate > 0.0 ? FormatDouble(client_rate, 1).c_str()
                                  : "unlimited",
                static_cast<unsigned long long>(*shed_retries),
                *shed_retries == 1 ? "y" : "ies");
  }
  std::printf("%s on %s: %zu/%zu matches after %llu comparisons "
              "(recall %.3f)\n",
              run.method.c_str(), dataset.value().name.c_str(),
              run.matches_found, dataset.value().truth.num_matches(),
              static_cast<unsigned long long>(run.emissions),
              run.final_recall);
  std::printf("init %.3fs, emission %.3fs\n", run.init_seconds,
              run.emission_seconds);
  TextTable table({"ec*", "recall"});
  for (double at : {0.5, 1.0, 2.0, 5.0, 10.0}) {
    if (at > options.ecstar_max) break;
    double recall = 0.0;
    for (const CurvePoint& p : run.curve) {
      if (p.ecstar <= at + 1e-9) recall = p.recall;
    }
    table.AddRow({FormatDouble(at, 1), FormatDouble(recall, 3)});
  }
  table.Print();
  std::printf("AUC*@1=%.3f  AUC*@5=%.3f  AUC*@10=%.3f\n", run.auc_norm[0],
              run.auc_norm[1], run.auc_norm[2]);

  const std::string curve_path = OptString(args, "curve", "");
  if (!curve_path.empty()) {
    std::ofstream out(curve_path);
    out << "ecstar,recall\n";
    for (const CurvePoint& p : run.curve) {
      out << p.ecstar << ',' << p.recall << '\n';
    }
    std::printf("curve written to %s (%zu points)\n", curve_path.c_str(),
                run.curve.size());
  }
  if (!metrics_path.empty()) {
    if (!registry.WriteSnapshotJson(metrics_path)) return 1;
    std::printf("metrics snapshot written to %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    if (!registry.WriteTraceJson(trace_path)) return 1;
    std::printf("trace written to %s (%zu spans)\n", trace_path.c_str(),
                registry.num_spans());
  }
  return 0;
}

int CmdInspect(const CliArgs& args) {
  RequireKnownOptions(args, {"seed", "scale", "threads", "shards",
                             "lookahead", "method"});
  if (args.positional.size() < 2) {
    std::fprintf(stderr, "usage: sper_cli inspect <dataset> [--seed=N] "
                         "[--scale=S] [--threads=N] [--shards=N] "
                         "[--lookahead=N] [--method=NAME]\n");
    return 2;
  }
  Result<DatasetBundle> dataset =
      GenerateDataset(args.positional[1], GenOptions(args));
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const DatasetBundle& ds = dataset.value();
  std::printf("%s: %s\n", ds.name.c_str(), ds.description.c_str());
  std::printf("  ER type:        %s\n", ToString(ds.store.er_type()));
  std::printf("  profiles:       %zu", ds.store.size());
  if (ds.store.er_type() == ErType::kCleanClean) {
    std::printf(" (%zu + %zu)", ds.store.source1_size(),
                ds.store.source2_size());
  }
  std::printf("\n  matches |D_P|:  %zu\n", ds.truth.num_matches());
  std::printf("  mean |p|:       %.2f\n", ds.store.MeanProfileSize());
  const std::size_t lookahead = OptLookahead(args);
  std::printf("  serving:        threads=%zu shards=%zu lookahead=%zu "
              "(%s emission)\n",
              OptThreads(args), OptShards(args), lookahead,
              lookahead > 0 ? "pipelined" : "serial");

  TokenWorkflowOptions workflow_options;
  workflow_options.num_threads = OptThreads(args);
  TokenBlockingOptions token_options;
  token_options.num_threads = workflow_options.num_threads;
  BlockCollection raw = TokenBlocking(ds.store, token_options);
  BlockCollection workflow =
      BuildTokenWorkflowBlocks(ds.store, workflow_options);
  std::printf("  token blocks:   %zu (||B|| = %llu)\n", raw.size(),
              static_cast<unsigned long long>(raw.AggregateCardinality()));
  std::printf("  after workflow: %zu (||B|| = %llu)\n", workflow.size(),
              static_cast<unsigned long long>(
                  workflow.AggregateCardinality()));

  const std::size_t num_shards = OptShards(args);
  if (num_shards > 1) {
    std::printf("\nhash partition into %zu shards:\n", num_shards);
    std::vector<StoreShard> shards = PartitionStore(ds.store, num_shards);
    TextTable table({"shard", "profiles", "workflow blocks", "||B||"});
    for (std::size_t s = 0; s < shards.size(); ++s) {
      std::string profiles = std::to_string(shards[s].store.size());
      if (ds.store.er_type() == ErType::kCleanClean) {
        profiles += " (" + std::to_string(shards[s].store.source1_size()) +
                    "+" + std::to_string(shards[s].store.source2_size()) +
                    ")";
      }
      BlockCollection shard_blocks =
          BuildTokenWorkflowBlocks(shards[s].store, workflow_options);
      table.AddRow({std::to_string(s), std::move(profiles),
                    std::to_string(shard_blocks.size()),
                    std::to_string(shard_blocks.AggregateCardinality())});
    }
    table.Print();
  }

  // Per-phase initialization breakdown of the requested method: build
  // the resolver once with a telemetry scope and print
  // InitStats::phases (per shard when sharded).
  const MethodId method = ParseMethod(OptString(args, "method", "pps"));
  MethodConfig config;
  config.num_threads = OptThreads(args);
  config.num_shards = num_shards;
  config.lookahead = lookahead;
  obs::Registry registry;
  config.telemetry = obs::TelemetryScope(&registry);
  std::unique_ptr<Resolver> resolver = MakeResolver(method, ds, config);
  if (resolver == nullptr) {
    std::printf("\n%s init breakdown: method not applicable to %s "
                "(no schema-based blocking key)\n",
                std::string(ToString(method)).c_str(), ds.name.c_str());
    return 0;
  }
  const InitStats& stats = resolver->init_stats();
  std::printf("\n%s init breakdown (%.3fs total):\n",
              std::string(ToString(method)).c_str(), stats.init_seconds);
  TextTable breakdown({"shard", "phase", "seconds"});
  for (const InitPhase& phase : stats.phases) {
    breakdown.AddRow({std::to_string(phase.shard), phase.name,
                      FormatDouble(phase.seconds, 4)});
  }
  breakdown.Print();
  return 0;
}

/// Self-pipe the SIGTERM/SIGINT handler writes to; CmdServe blocks on the
/// read end. Only async-signal-safe work happens in the handler.
int g_stop_pipe[2] = {-1, -1};

extern "C" void HandleStopSignal(int /*signum*/) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = write(g_stop_pipe[1], &byte, 1);
}

int CmdServe(const CliArgs& args) {
  RequireKnownOptions(args, {"listen", "method", "seed", "scale", "threads",
                             "shards", "lookahead", "budget", "client-rate",
                             "max-queue-depth", "max-connections"});
  if (args.positional.size() < 2 || !args.options.count("listen")) {
    std::fprintf(stderr,
                 "usage: sper_cli serve <dataset> --listen=HOST:PORT "
                 "[--method=NAME] [--seed=N] [--scale=S] [--threads=N] "
                 "[--shards=N] [--lookahead=N] [--budget=N] "
                 "[--client-rate=R] [--max-queue-depth=N] "
                 "[--max-connections=N]\n");
    return 2;
  }
  Result<net::Endpoint> endpoint =
      net::ParseEndpoint(args.options.at("listen"));
  if (!endpoint.ok()) {
    std::fprintf(stderr, "--listen: %s\n",
                 endpoint.status().ToString().c_str());
    return 2;
  }
  Result<DatasetBundle> dataset =
      GenerateDataset(args.positional[1], GenOptions(args));
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const MethodId method = ParseMethod(OptString(args, "method", "pps"));

  obs::Registry registry;
  MethodConfig config;
  config.num_threads = OptThreads(args);
  config.num_shards = OptShards(args);
  config.lookahead = OptLookahead(args);
  config.budget = OptBudget(args);
  config.telemetry = obs::TelemetryScope(&registry);
  std::unique_ptr<Resolver> resolver =
      MakeResolver(method, dataset.value(), config);
  if (resolver == nullptr) {
    std::fprintf(stderr, "method %s is not applicable to %s "
                         "(no schema-based blocking key)\n",
                 std::string(ToString(method)).c_str(),
                 dataset.value().name.c_str());
    return 1;
  }

  net::ServerOptions server_options;
  server_options.host = endpoint.value().host;
  server_options.port = endpoint.value().port;
  server_options.max_connections =
      OptUint(args, "max-connections", 64, 0, 1u << 16);
  server_options.qos.client_rate = OptDouble(args, "client-rate", 0.0);
  server_options.qos.max_queue_depth =
      OptUint(args, "max-queue-depth", 256, 0, 1u << 20);
  server_options.qos.telemetry = config.telemetry;
  server_options.telemetry = config.telemetry;
  server_options.metrics_registry = &registry;

  // The stop pipe must exist before the handlers are installed.
  if (pipe(g_stop_pipe) != 0) {
    std::fprintf(stderr, "pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleStopSignal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  Result<std::unique_ptr<net::Server>> server =
      net::Server::Start(*resolver, server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  // The smoke harness and tests wait for this exact line (the real port
  // matters when --listen ends in :0).
  std::printf("listening on %s:%u\n", server_options.host.c_str(),
              static_cast<unsigned>(server.value()->port()));
  std::printf("serving %s on %s (threads=%zu shards=%zu lookahead=%zu"
              "%s%s)\n",
              std::string(ToString(method)).c_str(),
              dataset.value().name.c_str(), config.num_threads,
              config.num_shards, config.lookahead,
              config.budget > 0 ? ", budgeted" : "",
              server_options.qos.client_rate > 0.0 ? ", rate-limited" : "");
  std::fflush(stdout);

  char byte = 0;
  ssize_t got;
  do {
    got = read(g_stop_pipe[0], &byte, 1);
  } while (got < 0 && errno == EINTR);

  std::printf("draining...\n");
  std::fflush(stdout);
  server.value()->Shutdown();
  const net::ServerStats stats = server.value()->stats();
  std::printf("drained: %llu connections (%llu rejected), %llu requests "
              "served, %llu invalid, %llu/%llu frames in/out, %llu "
              "protocol errors\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.connections_rejected),
              static_cast<unsigned long long>(stats.requests_served),
              static_cast<unsigned long long>(stats.requests_rejected),
              static_cast<unsigned long long>(stats.frames_in),
              static_cast<unsigned long long>(stats.frames_out),
              static_cast<unsigned long long>(stats.protocol_errors));
  return 0;
}

int CmdClient(const CliArgs& args) {
  RequireKnownOptions(args, {"connect", "budget", "batch", "requests",
                             "deadline-ms", "priority", "client-id",
                             "metrics"});
  if (!args.options.count("connect")) {
    std::fprintf(stderr,
                 "usage: sper_cli client --connect=HOST:PORT [--budget=N] "
                 "[--batch=N] [--requests=N] [--deadline-ms=N] "
                 "[--priority=NAME] [--client-id=N] [--metrics]\n");
    return 2;
  }
  Result<net::Endpoint> endpoint =
      net::ParseEndpoint(args.options.at("connect"));
  if (!endpoint.ok()) {
    std::fprintf(stderr, "--connect: %s\n",
                 endpoint.status().ToString().c_str());
    return 2;
  }
  Result<net::Client> connected =
      net::Client::Connect(endpoint.value().host, endpoint.value().port);
  if (!connected.ok()) {
    std::fprintf(stderr, "%s\n", connected.status().ToString().c_str());
    return 1;
  }
  net::Client client = std::move(connected).value();
  if (args.options.count("metrics")) {
    Result<std::string> snapshot = client.FetchMetricsJson();
    if (!snapshot.ok()) {
      std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", snapshot.value().c_str());
    return 0;
  }

  ResolveRequest request;
  request.budget = OptUint(args, "budget", 4096, 1,
                           std::numeric_limits<std::uint64_t>::max());
  request.max_batch =
      OptUint(args, "batch", 4096, 1, ResolveRequest::kMaxBatch);
  request.deadline_ms = OptUint(args, "deadline-ms", 0, 0,
                                ResolveRequest::kMaxDeadlineMs);
  request.client_id = OptUint(args, "client-id", 0, 0,
                              std::numeric_limits<std::uint64_t>::max());
  if (args.options.count("priority")) {
    const std::optional<Priority> parsed =
        ParsePriority(args.options.at("priority"));
    if (!parsed.has_value()) {
      std::fprintf(stderr,
                   "--priority=%s: unknown class (want interactive, batch, "
                   "or best_effort)\n",
                   args.options.at("priority").c_str());
      return 2;
    }
    request.priority = *parsed;
  }
  const std::uint64_t max_requests = OptUint(
      args, "requests", 0, 0, std::numeric_limits<std::uint64_t>::max());

  // A full (un-cut) slice carries min(budget, max_batch) comparisons; a
  // shorter one means the stream or global budget ran out.
  const std::uint64_t full_slice =
      std::min<std::uint64_t>(request.budget, request.max_batch);
  net::StreamDigest digest;
  std::uint64_t slices = 0;
  int empty_streak = 0;
  for (;;) {
    if (max_requests > 0 && slices >= max_requests) break;
    Result<ResolveResult> attempt = client.ResolveWithRetry(request);
    if (!attempt.ok()) {
      std::fprintf(stderr, "%s\n", attempt.status().ToString().c_str());
      return 1;
    }
    const ResolveResult& slice = attempt.value();
    if (slice.outcome == ResolveOutcome::kShed) {
      // ResolveWithRetry exhausted its retries against a still-shedding
      // server; surface the hint and give up.
      std::fprintf(stderr,
                   "still shedding after retries (retry_after_ms=%llu)\n",
                   static_cast<unsigned long long>(slice.retry_after_ms));
      return 1;
    }
    if (slice.outcome == ResolveOutcome::kRejected ||
        slice.outcome == ResolveOutcome::kFailed) {
      std::fprintf(stderr, "request %s: %s\n",
                   slice.outcome == ResolveOutcome::kRejected ? "rejected"
                                                              : "failed",
                   slice.status.ToString().c_str());
      return 1;
    }
    ++slices;
    for (const Comparison& c : slice.comparisons) digest.Fold(c);
    if (slice.deadline_exceeded() || slice.cancelled()) {
      // A cut slice is partial, not the end: ask again (the stream
      // continues losslessly) — unless cuts stopped yielding anything.
      empty_streak = slice.comparisons.empty() ? empty_streak + 1 : 0;
      if (empty_streak >= 64) break;
      continue;
    }
    empty_streak = 0;
    if (slice.stream_exhausted || slice.budget_exhausted ||
        !slice.status.ok() || slice.comparisons.size() < full_slice) {
      break;
    }
  }
  std::printf("drained %llu comparisons in %llu slices, "
              "digest=%016llx\n",
              static_cast<unsigned long long>(digest.count),
              static_cast<unsigned long long>(slices),
              static_cast<unsigned long long>(digest.value));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = Parse(argc, argv);
  if (args.positional.empty()) {
    std::fprintf(stderr,
                 "usage: sper_cli <list|generate|run|inspect|serve|client>"
                 " ...\n");
    return 2;
  }
  const std::string& command = args.positional[0];
  if (command == "list") return CmdList();
  if (command == "generate") return CmdGenerate(args);
  if (command == "run") return CmdRun(args);
  if (command == "inspect") return CmdInspect(args);
  if (command == "serve") return CmdServe(args);
  if (command == "client") return CmdClient(args);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 2;
}
