#include "blocking/block_filtering.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/types.h"

namespace sper {

BlockCollection BlockFiltering(const BlockCollection& input,
                               const BlockFilteringOptions& options) {
  // Pass 1: collect, per profile, the blocks it appears in.
  std::unordered_map<ProfileId, std::vector<BlockId>> profile_blocks;
  for (BlockId b = 0; b < input.size(); ++b) {
    for (ProfileId p : input.block(b).profiles) {
      profile_blocks[p].push_back(b);
    }
  }

  // Pass 2: per profile, mark the ceil(ratio*|B_i|) smallest blocks as
  // kept. Ties by size break on block id so the result is deterministic.
  std::unordered_map<std::uint64_t, bool> keep;  // (profile, block) -> kept
  keep.reserve(profile_blocks.size() * 4);
  auto slot = [](ProfileId p, BlockId b) {
    return (static_cast<std::uint64_t>(p) << 32) | b;
  };
  for (auto& [profile, blocks] : profile_blocks) {
    std::sort(blocks.begin(), blocks.end(), [&](BlockId a, BlockId b) {
      const std::size_t sa = input.block(a).size();
      const std::size_t sb = input.block(b).size();
      if (sa != sb) return sa < sb;
      return a < b;
    });
    const std::size_t retained = static_cast<std::size_t>(
        std::ceil(options.ratio * static_cast<double>(blocks.size())));
    for (std::size_t k = 0; k < blocks.size() && k < retained; ++k) {
      keep[slot(profile, blocks[k])] = true;
    }
  }

  // Pass 3: rebuild blocks with only the retained memberships.
  BlockCollection out(input.er_type(), input.split_index());
  for (BlockId b = 0; b < input.size(); ++b) {
    const Block& block = input.block(b);
    Block filtered;
    filtered.key = block.key;
    for (ProfileId p : block.profiles) {
      auto it = keep.find(slot(p, b));
      if (it != keep.end() && it->second) filtered.profiles.push_back(p);
    }
    if (out.ComputeCardinality(filtered) == 0) continue;
    out.Add(std::move(filtered));
  }
  return out;
}

}  // namespace sper
