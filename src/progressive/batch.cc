#include "progressive/batch.h"

#include <unordered_set>

namespace sper {

std::vector<Comparison> DistinctBlockComparisons(const BlockCollection& blocks,
                                                 const ProfileStore& store) {
  std::vector<Comparison> out;
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(blocks.AggregateCardinality());
  for (BlockId b = 0; b < blocks.size(); ++b) {
    blocks.ForEachComparison(b, [&](ProfileId i, ProfileId j) {
      if (!store.IsComparable(i, j)) return;
      if (seen.insert(PairKey(i, j)).second) {
        out.emplace_back(i, j, 0.0);
      }
    });
  }
  return out;
}

std::uint64_t CountDistinctComparisons(const BlockCollection& blocks,
                                       const ProfileStore& store) {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(blocks.AggregateCardinality());
  for (BlockId b = 0; b < blocks.size(); ++b) {
    blocks.ForEachComparison(b, [&](ProfileId i, ProfileId j) {
      if (!store.IsComparable(i, j)) return;
      seen.insert(PairKey(i, j));
    });
  }
  return seen.size();
}

}  // namespace sper
