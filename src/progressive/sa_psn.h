#ifndef SPER_PROGRESSIVE_SA_PSN_H_
#define SPER_PROGRESSIVE_SA_PSN_H_

#include "core/profile_store.h"
#include "progressive/emitter.h"
#include "sorted/neighbor_list.h"

/// \file sa_psn.h
/// Schema-Agnostic Progressive Sorted Neighborhood (SA-PSN, paper
/// Sec. 4.1): PSN's incrementally-sized sliding window applied to the
/// schema-agnostic Neighbor List, in which every profile appears once per
/// distinct attribute-value token.
///
/// Parameter-free and cheap, but naïve: the same pair may be emitted many
/// times (a profile has many placements) and equal-key runs give partially
/// random ordering (coincidental proximity). The advanced LS/GS-PSN fix
/// both weaknesses.

namespace sper {

/// The naïve schema-agnostic PSN emitter.
class SaPsnEmitter : public ProgressiveEmitter {
 public:
  /// Initialization phase: builds the schema-agnostic Neighbor List.
  explicit SaPsnEmitter(const ProfileStore& store,
                        const NeighborListOptions& options = {});

  /// Emission phase: next pair under the current window; windows grow by
  /// one once a full pass completes. Repeated pairs are NOT filtered
  /// (the paper's naïve methods "make no provision for detecting repeated
  /// comparisons", Sec. 6.2).
  std::optional<Comparison> Next() override;

  std::string_view name() const override { return "SA-PSN"; }

 private:
  const ProfileStore& store_;
  NeighborList list_;
  std::size_t window_ = 1;
  std::size_t pos_ = 0;
};

}  // namespace sper

#endif  // SPER_PROGRESSIVE_SA_PSN_H_
