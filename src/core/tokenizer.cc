#include "core/tokenizer.h"

#include <algorithm>
#include <cctype>

namespace sper {

namespace {
inline bool IsTokenChar(unsigned char c) { return std::isalnum(c) != 0; }
}  // namespace

std::vector<std::string> TokenizeValue(std::string_view value,
                                       const TokenizerOptions& options) {
  std::vector<std::string> tokens;
  std::string current;
  current.reserve(16);
  for (unsigned char c : value) {
    if (IsTokenChar(c)) {
      current.push_back(options.lowercase
                            ? static_cast<char>(std::tolower(c))
                            : static_cast<char>(c));
    } else if (!current.empty()) {
      if (current.size() >= options.min_token_length) {
        tokens.push_back(std::move(current));
      }
      current.clear();
    }
  }
  if (current.size() >= options.min_token_length) {
    tokens.push_back(std::move(current));
  }
  return tokens;
}

std::vector<std::string> DistinctProfileTokens(
    const Profile& profile, const TokenizerOptions& options) {
  std::vector<std::string> tokens;
  for (const Attribute& a : profile.attributes()) {
    std::vector<std::string> value_tokens = TokenizeValue(a.value, options);
    tokens.insert(tokens.end(),
                  std::make_move_iterator(value_tokens.begin()),
                  std::make_move_iterator(value_tokens.end()));
  }
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

}  // namespace sper
