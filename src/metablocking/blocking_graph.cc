#include "metablocking/blocking_graph.h"

#include <algorithm>

#include "metablocking/neighborhood.h"

namespace sper {

BlockingGraph BlockingGraph::Build(const BlockCollection& blocks,
                                   const ProfileIndex& index,
                                   const ProfileStore& store,
                                   WeightingScheme scheme) {
  EdgeWeighter weighter(blocks, index, store, scheme);
  NeighborhoodAccumulator acc(store.size());

  BlockingGraph graph;
  std::vector<bool> in_graph(store.size(), false);
  for (ProfileId i = 0; i < store.size(); ++i) {
    acc.Gather(
        i, blocks, index, store,
        [&](BlockId b) { return weighter.BlockContribution(b); },
        [&](ProfileId j, double accumulated) {
          in_graph[i] = in_graph[j] = true;
          // Each undirected edge is gathered from both endpoints; keep the
          // visit from the smaller id only.
          if (i < j) {
            graph.edges_.emplace_back(i, j,
                                      weighter.Finalize(i, j, accumulated));
          }
        });
  }
  graph.num_nodes_ =
      static_cast<std::size_t>(std::count(in_graph.begin(), in_graph.end(),
                                          true));
  std::sort(graph.edges_.begin(), graph.edges_.end(),
            [](const Comparison& a, const Comparison& b) {
              if (a.i != b.i) return a.i < b.i;
              return a.j < b.j;
            });
  return graph;
}

double BlockingGraph::MeanEdgeWeight() const {
  if (edges_.empty()) return 0.0;
  double total = 0.0;
  for (const Comparison& e : edges_) total += e.weight;
  return total / static_cast<double>(edges_.size());
}

}  // namespace sper
