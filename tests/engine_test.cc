// ProgressiveEngine facade: one constructor wires profiles -> Token
// Blocking Workflow -> meta-blocking -> the chosen progressive method.
// These tests pin the facade's contract: equivalence with directly
// constructed emitters, the pay-as-you-go budget, method routing and the
// init diagnostics.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "datagen/datagen.h"
#include "engine/progressive_engine.h"
#include "progressive/pps.h"
#include "progressive/workflow.h"

namespace sper {
namespace {

DatasetBundle Restaurant() {
  Result<DatasetBundle> dataset = GenerateDataset("restaurant");
  EXPECT_TRUE(dataset.ok());
  return dataset.value();
}

std::vector<Comparison> Drain(ProgressiveEmitter* emitter,
                              std::size_t limit) {
  std::vector<Comparison> out;
  while (out.size() < limit) {
    std::optional<Comparison> c = emitter->Next();
    if (!c.has_value()) break;
    out.push_back(*c);
  }
  return out;
}

TEST(ProgressiveEngineTest, MatchesDirectlyConstructedEmitter) {
  const DatasetBundle dataset = Restaurant();

  BlockCollection blocks = BuildTokenWorkflowBlocks(dataset.store);
  PpsEmitter direct(dataset.store, std::move(blocks));

  EngineConfig options;
  options.method = MethodId::kPps;
  ProgressiveEngine engine(dataset.store, options);

  EXPECT_EQ(engine.name(), "PPS");
  const std::vector<Comparison> expected = Drain(&direct, 3000);
  const std::vector<Comparison> actual = Drain(&engine, 3000);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t k = 0; k < actual.size(); ++k) {
    EXPECT_TRUE(actual[k].SamePair(expected[k])) << "position " << k;
    EXPECT_EQ(actual[k].weight, expected[k].weight) << "position " << k;
  }
}

TEST(ProgressiveEngineTest, BudgetCapsEmission) {
  const DatasetBundle dataset = Restaurant();
  EngineConfig options;
  options.method = MethodId::kPps;
  options.budget = 10;
  ProgressiveEngine engine(dataset.store, options);

  std::vector<Comparison> emitted = Drain(&engine, 1000000);
  EXPECT_EQ(emitted.size(), 10u);
  EXPECT_EQ(engine.emitted(), 10u);
  EXPECT_TRUE(engine.BudgetExhausted());
  EXPECT_FALSE(engine.Next().has_value());
}

TEST(ProgressiveEngineTest, ZeroBudgetMeansUnlimited) {
  const DatasetBundle dataset = Restaurant();
  EngineConfig options;
  options.method = MethodId::kPps;
  ProgressiveEngine engine(dataset.store, options);
  std::vector<Comparison> emitted = Drain(&engine, 1000000);
  EXPECT_GT(emitted.size(), 10u);
  EXPECT_FALSE(engine.BudgetExhausted());
  EXPECT_EQ(engine.emitted(), emitted.size());
}

TEST(ProgressiveEngineTest, RoutesEveryScheduleBasedMethod) {
  const DatasetBundle dataset = Restaurant();
  struct Case {
    MethodId method;
    std::string_view name;
  };
  for (const Case& c :
       {Case{MethodId::kSaPsn, "SA-PSN"}, Case{MethodId::kSaPsab, "SA-PSAB"},
        Case{MethodId::kLsPsn, "LS-PSN"}, Case{MethodId::kGsPsn, "GS-PSN"},
        Case{MethodId::kPbs, "PBS"}, Case{MethodId::kPps, "PPS"}}) {
    EngineConfig options;
    options.method = c.method;
    ProgressiveEngine engine(dataset.store, options);
    EXPECT_EQ(engine.name(), c.name);
    EXPECT_TRUE(engine.Next().has_value()) << c.name;
  }
}

TEST(ProgressiveEngineTest, RunsSchemaBasedPsnWithKey) {
  const DatasetBundle dataset = Restaurant();
  ASSERT_TRUE(dataset.psn_key != nullptr);
  EngineConfig options;
  options.method = MethodId::kPsn;
  options.schema_key = dataset.psn_key;
  ProgressiveEngine engine(dataset.store, options);
  EXPECT_EQ(engine.name(), "PSN");
  EXPECT_TRUE(engine.Next().has_value());
}

TEST(ProgressiveEngineTest, InitStatsReportWorkflowCollection) {
  const DatasetBundle dataset = Restaurant();
  EngineConfig options;
  options.method = MethodId::kPps;
  ProgressiveEngine engine(dataset.store, options);
  const InitStats& stats = engine.init_stats();
  EXPECT_GT(stats.num_blocks, 0u);
  EXPECT_GT(stats.aggregate_cardinality, 0u);
  EXPECT_GE(stats.init_seconds, 0.0);

  BlockCollection blocks = BuildTokenWorkflowBlocks(dataset.store);
  EXPECT_EQ(stats.num_blocks, blocks.size());
  EXPECT_EQ(stats.aggregate_cardinality, blocks.AggregateCardinality());
}

TEST(MethodIdTest, ParseRoundTripsEveryAcronym) {
  for (MethodId id :
       {MethodId::kPsn, MethodId::kSaPsn, MethodId::kSaPsab,
        MethodId::kLsPsn, MethodId::kGsPsn, MethodId::kPbs, MethodId::kPps}) {
    std::optional<MethodId> parsed = ParseMethodId(ToString(id));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, id);
  }
  EXPECT_FALSE(ParseMethodId("NOPE").has_value());
}

TEST(MethodIdTest, ParseIsCaseInsensitiveAndAcceptsUnderscores) {
  EXPECT_EQ(ParseMethodId("pps"), MethodId::kPps);
  EXPECT_EQ(ParseMethodId("Pbs"), MethodId::kPbs);
  EXPECT_EQ(ParseMethodId("sa_psn"), MethodId::kSaPsn);
  EXPECT_EQ(ParseMethodId("SA_PSAB"), MethodId::kSaPsab);
  EXPECT_EQ(ParseMethodId("gs-psn"), MethodId::kGsPsn);
  EXPECT_EQ(ParseMethodId("ls_PSN"), MethodId::kLsPsn);
  EXPECT_FALSE(ParseMethodId("pp s").has_value());
  EXPECT_FALSE(ParseMethodId("").has_value());
}

}  // namespace
}  // namespace sper
