#ifndef SPER_BLOCKING_BLOCK_SCHEDULING_H_
#define SPER_BLOCKING_BLOCK_SCHEDULING_H_

#include "blocking/block_collection.h"
#include "obs/telemetry.h"

/// \file block_scheduling.h
/// Block Scheduling (paper Sec. 5.2.1): orders blocks for progressive
/// processing. PBS weights each block by 1/||b|| — the fewer comparisons a
/// block entails, the more distinctive its key and the earlier it is
/// processed — and so sorts blocks by non-decreasing cardinality. After
/// scheduling, a block's id equals its processing rank, which is the
/// precondition of the LeCoBI duplicate test.

namespace sper {

/// Returns the collection re-ordered by (cardinality asc, key asc).
/// The key tie-break replaces the paper's "random permutation of the
/// blocks that have the same number of comparisons" with a deterministic
/// choice, which the paper notes does not affect the end result.
/// `telemetry` records the run as phase "block_scheduling".
BlockCollection BlockScheduling(const BlockCollection& input,
                                obs::TelemetryScope telemetry = {});

}  // namespace sper

#endif  // SPER_BLOCKING_BLOCK_SCHEDULING_H_
