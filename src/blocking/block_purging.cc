#include "blocking/block_purging.h"

#include "parallel/parallel_for.h"

namespace sper {

BlockCollection BlockPurging(const BlockCollection& input,
                             std::size_t num_profiles,
                             const BlockPurgingOptions& options) {
  const double max_size =
      options.max_size_ratio * static_cast<double>(num_profiles);
  // Scan/threshold pass over the CSR offsets (O(|B|), no member scan):
  // per-chunk survivor counts/sizes accumulated on `num_threads` threads
  // with static chunking, merged in chunk order — the totals (and the
  // final collection) are identical at every thread count. The survivor
  // collection is then built with zero reallocations.
  struct ChunkTotals {
    std::size_t blocks = 0;
    std::size_t members = 0;
    std::size_t key_bytes = 0;
  };
  const std::size_t num_chunks =
      StaticChunks(input.size(), options.num_threads).size();
  std::vector<ChunkTotals> totals(num_chunks);
  ParallelForChunks(
      input.size(), options.num_threads,
      [&](std::size_t chunk, IndexRange range) {
        // Accumulate on the stack and store once: adjacent vector
        // elements share cache lines, and bumping them per block would
        // false-share the whole scan.
        ChunkTotals t;
        for (BlockId id = range.begin; id < range.end; ++id) {
          if (static_cast<double>(input.block_size(id)) > max_size) continue;
          ++t.blocks;
          t.members += input.block_size(id);
          t.key_bytes += input.key(id).size();
        }
        totals[chunk] = t;
      });
  std::size_t kept_blocks = 0, kept_members = 0, kept_key_bytes = 0;
  for (const ChunkTotals& t : totals) {
    kept_blocks += t.blocks;
    kept_members += t.members;
    kept_key_bytes += t.key_bytes;
  }

  BlockCollection out(input.er_type(), input.split_index());
  out.Reserve(kept_blocks, kept_members, kept_key_bytes);
  for (BlockId id = 0; id < input.size(); ++id) {
    if (static_cast<double>(input.block_size(id)) > max_size) continue;
    out.Add(input.key(id), input.members(id));
  }
  return out;
}

}  // namespace sper
