#ifndef SPER_OBS_CLOCK_H_
#define SPER_OBS_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

/// \file clock.h
/// The one monotonic clock of the observability layer. Every timing site
/// in the library — phase timers, span recording, the evaluator's
/// init/emission split, refill-latency histograms — reads time through
/// Stopwatch instead of scattering its own std::chrono boilerplate
/// (tools/lint_determinism.py DET003 bans raw std::chrono clocks outside
/// this header).
///
/// Stopwatch is a *utility*, not instrumentation: it stays fully
/// functional under SPER_NO_TELEMETRY (diagnostics like
/// InitStats::init_seconds and RunResult timings must keep working with
/// telemetry compiled out).
///
/// ClockSource is the injectable side of the same clock: components whose
/// *decisions* depend on elapsed time (the QoS admission controller's
/// token buckets, queue-wait estimates and doomed-request eviction in
/// src/serving/) read through a ClockSource pointer so tests can
/// substitute a ManualClock and make those decisions deterministic. The
/// default source is the monotonic Stopwatch clock — there is still
/// exactly one real time source in the library.

namespace sper {
namespace obs {

/// Thin wrapper over std::chrono::steady_clock: started on construction,
/// read any number of times.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  Stopwatch() : start_(Clock::now()) {}

  /// The current monotonic instant (for explicit start/end span APIs).
  static TimePoint Now() { return Clock::now(); }

  /// Seconds between two instants.
  static double Seconds(TimePoint from, TimePoint to) {
    return std::chrono::duration<double>(to - from).count();
  }

  /// Whole nanoseconds between two instants (clamped at 0).
  static std::uint64_t Nanos(TimePoint from, TimePoint to) {
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
            .count();
    return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
  }

  /// Instant this stopwatch was started (or last Restart()ed).
  TimePoint start() const { return start_; }

  /// Seconds elapsed since start.
  double ElapsedSeconds() const { return Seconds(start_, Now()); }

  /// Nanoseconds elapsed since start.
  std::uint64_t ElapsedNanos() const { return Nanos(start_, Now()); }

  /// Re-arms the stopwatch at the current instant.
  void Restart() { start_ = Clock::now(); }

 private:
  TimePoint start_;
};

/// Injectable monotonic time source for components whose decisions (not
/// just their diagnostics) depend on elapsed time. NowNanos() is
/// monotonic non-decreasing; the epoch is unspecified — only differences
/// are meaningful.
class ClockSource {
 public:
  virtual ~ClockSource() = default;
  virtual std::uint64_t NowNanos() const = 0;
};

/// The real clock: Stopwatch's steady clock, nanoseconds since the first
/// use in the process (via a fixed process-local epoch).
class MonotonicClock final : public ClockSource {
 public:
  std::uint64_t NowNanos() const override {
    return Stopwatch::Nanos(Epoch(), Stopwatch::Now());
  }

  /// The process-wide instance components default to when no clock is
  /// injected.
  static const MonotonicClock* Default() {
    static const MonotonicClock clock;
    return &clock;
  }

 private:
  static Stopwatch::TimePoint Epoch() {
    static const Stopwatch::TimePoint epoch = Stopwatch::Now();
    return epoch;
  }
};

/// A hand-advanced clock for deterministic tests: time moves only when
/// Advance() is called. Reads and advances are atomic, so a test may
/// advance while controller threads read concurrently.
class ManualClock final : public ClockSource {
 public:
  explicit ManualClock(std::uint64_t start_ns = 0) : now_ns_(start_ns) {}

  std::uint64_t NowNanos() const override {
    return now_ns_.load(std::memory_order_relaxed);
  }

  void AdvanceNanos(std::uint64_t ns) {
    now_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void AdvanceMillis(std::uint64_t ms) { AdvanceNanos(ms * 1000000ull); }

 private:
  std::atomic<std::uint64_t> now_ns_;
};

}  // namespace obs
}  // namespace sper

#endif  // SPER_OBS_CLOCK_H_
