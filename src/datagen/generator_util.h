#ifndef SPER_DATAGEN_GENERATOR_UTIL_H_
#define SPER_DATAGEN_GENERATOR_UTIL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/ground_truth.h"
#include "core/profile_store.h"
#include "datagen/rng.h"

/// \file generator_util.h
/// Assembly helpers shared by the dataset generators: cluster planning for
/// Dirty ER, shuffled store assembly (so profile ids carry no information
/// about cluster membership or creation order), and small formatting
/// utilities.

namespace sper {

/// A Dirty ER duplication plan: how many clusters of each size to emit.
struct ClusterPlan {
  /// size -> how many clusters of that size (sizes >= 2).
  std::vector<std::pair<std::size_t, std::size_t>> clusters_of_size;
  /// Duplicate-free profiles on top of the clusters.
  std::size_t singletons = 0;

  /// Total profiles the plan yields.
  std::size_t TotalProfiles() const;
  /// Total matching pairs (Σ count * C(size, 2)).
  std::uint64_t TotalPairs() const;
  /// Multiplies every count by `scale` (rounding, minimum 0).
  ClusterPlan Scaled(double scale) const;
};

/// Assembled Dirty ER task.
struct DirtyAssembly {
  ProfileStore store;
  GroundTruth truth;
};

/// Shuffles clusters and singleton profiles into one randomized order,
/// assigns dense ids and expands the clusters into ground-truth pairs.
DirtyAssembly AssembleDirty(Rng& rng,
                            std::vector<std::vector<Profile>> clusters,
                            std::vector<Profile> singletons);

/// Assembled Clean-Clean ER task.
struct CleanCleanAssembly {
  ProfileStore store;
  GroundTruth truth;
};

/// Shuffles each source independently (matched pairs plus per-source
/// extras) and records the cross-source ground truth.
CleanCleanAssembly AssembleCleanClean(
    Rng& rng, std::vector<std::pair<Profile, Profile>> matched,
    std::vector<Profile> source1_only, std::vector<Profile> source2_only);

/// `value` zero-padded to `width` digits.
std::string ZeroPad(std::uint64_t value, std::size_t width);

/// Zipf-ish rank sample over [0, n): density ~ 1/(rank + offset). Real
/// vocabularies (title words, KB references, infobox properties) are
/// heavily skewed; the skew is what produces both the huge stop-word-like
/// blocks that Block Purging removes and the rare, match-rich blocks that
/// Block Scheduling processes first.
std::size_t ZipfRank(Rng& rng, std::size_t n, double offset = 8.0);

/// Applies `scale` to a base count (round, minimum `minimum`).
std::size_t ScaleCount(std::size_t base, double scale,
                       std::size_t minimum = 1);

}  // namespace sper

#endif  // SPER_DATAGEN_GENERATOR_UTIL_H_
