#ifndef SPER_EVAL_TABLE_H_
#define SPER_EVAL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

/// \file table.h
/// Fixed-width text tables for the benchmark harness output: every bench
/// binary prints the rows/series of the paper table or figure it
/// regenerates.

namespace sper {

/// A simple aligned text table.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Appends a row; it may have fewer cells than there are headers.
  void AddRow(std::vector<std::string> row) {
    rows_.push_back(std::move(row));
  }

  /// Prints the table with right-padded columns and a separator rule.
  void Print(std::ostream& out) const;

  /// Prints to standard output.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision decimal rendering ("0.934").
std::string FormatDouble(double value, int precision = 3);

/// Thousands-grouped integer rendering ("1,234,567").
std::string FormatCount(std::uint64_t value);

}  // namespace sper

#endif  // SPER_EVAL_TABLE_H_
