// End-to-end integration tests: generated dataset -> blocking workflow ->
// progressive methods -> evaluation. These check the qualitative claims
// the paper's evaluation rests on, at small scale so they stay fast.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "datagen/datagen.h"
#include "eval/evaluator.h"
#include "eval/experiment.h"
#include "io/dataset_io.h"
#include "matching/match_function.h"

namespace sper {
namespace {

RunResult RunMethod(MethodId id, const DatasetBundle& dataset,
                    double ecstar_max = 10.0) {
  EvalOptions options;
  options.ecstar_max = ecstar_max;
  options.auc_at = {1.0, 5.0, 10.0};
  ProgressiveEvaluator evaluator(dataset.truth, options);
  MethodConfig config;
  return evaluator.Run(
      [&] { return MakeResolver(id, dataset, config); });
}

TEST(IntegrationTest, AllMethodsFindMatchesOnRestaurant) {
  Result<DatasetBundle> dataset = GenerateDataset("restaurant");
  ASSERT_TRUE(dataset.ok());
  for (MethodId id : StructuredMethodSet()) {
    RunResult result = RunMethod(id, dataset.value());
    EXPECT_GT(result.matches_found, 0u) << ToString(id);
  }
}

TEST(IntegrationTest, AdvancedMethodsBeatNaiveOnRestaurant) {
  // The paper's central claim (Sec. 7.1): the advanced schema-agnostic
  // methods outperform the naïve ones on early recall.
  Result<DatasetBundle> dataset = GenerateDataset("restaurant");
  ASSERT_TRUE(dataset.ok());
  const double naive = RunMethod(MethodId::kSaPsn, dataset.value())
                           .auc_norm[1];  // AUC*@5
  for (MethodId id : {MethodId::kLsPsn, MethodId::kGsPsn, MethodId::kPps}) {
    EXPECT_GT(RunMethod(id, dataset.value()).auc_norm[1], naive)
        << ToString(id);
  }
}

TEST(IntegrationTest, PpsIsNearIdealOnRestaurant) {
  // Paper: AUC*_PPS@1 = 0.93 on restaurant. Allow a generous band for the
  // synthetic substitute — the claim is "close to ideal".
  Result<DatasetBundle> dataset = GenerateDataset("restaurant");
  ASSERT_TRUE(dataset.ok());
  RunResult pps = RunMethod(MethodId::kPps, dataset.value());
  EXPECT_GT(pps.auc_norm[0], 0.6);
}

TEST(IntegrationTest, AdvancedMethodsReachHighRecallOnCensus) {
  Result<DatasetBundle> dataset = GenerateDataset("census");
  ASSERT_TRUE(dataset.ok());
  for (MethodId id : {MethodId::kLsPsn, MethodId::kGsPsn, MethodId::kPbs,
                      MethodId::kPps}) {
    RunResult result = RunMethod(id, dataset.value());
    EXPECT_GT(result.final_recall, 0.5) << ToString(id);
  }
}

TEST(IntegrationTest, SimilarityMethodsDegradeOnUriData) {
  // Sec. 7.2 / Sec. 8: on RDF-style data the similarity principle breaks
  // (meaningless alphabetical order), while equality-based PBS stays
  // robust. Checked on a small freebase sample.
  DatagenOptions gen;
  gen.scale = 0.03;
  Result<DatasetBundle> dataset = GenerateDataset("freebase", gen);
  ASSERT_TRUE(dataset.ok());

  MethodConfig config;
  config.gs_wmax = 20;
  EvalOptions options;
  options.ecstar_max = 5.0;
  options.auc_at = {1.0, 5.0};
  ProgressiveEvaluator evaluator(dataset.value().truth, options);

  RunResult pbs = evaluator.Run(
      [&] { return MakeResolver(MethodId::kPbs, dataset.value(), config); });
  RunResult ls = evaluator.Run(
      [&] { return MakeResolver(MethodId::kLsPsn, dataset.value(), config); });
  EXPECT_GT(pbs.auc_norm[1], ls.auc_norm[1]);
}

TEST(IntegrationTest, EvaluatorTimingFieldsArePopulated) {
  Result<DatasetBundle> dataset = GenerateDataset("census");
  ASSERT_TRUE(dataset.ok());
  JaccardMatch match(dataset.value().store);
  EvalOptions options;
  options.ecstar_max = 2.0;
  options.auc_at = {1.0};
  ProgressiveEvaluator evaluator(dataset.value().truth, options);
  MethodConfig config;
  RunResult result = evaluator.Run(
      [&] { return MakeResolver(MethodId::kPps, dataset.value(), config); },
      &match);
  EXPECT_GT(result.init_seconds, 0.0);
  EXPECT_GT(result.emission_seconds, 0.0);
  EXPECT_GT(result.match_seconds, 0.0);
  EXPECT_FALSE(result.time_recall.empty());
}

TEST(IntegrationTest, DatasetRoundTripsThroughCsv) {
  Result<DatasetBundle> dataset = GenerateDataset("census");
  ASSERT_TRUE(dataset.ok());
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(
      WriteProfilesCsv(dataset.value().store, dir + "/census.csv").ok());
  ASSERT_TRUE(
      WriteGroundTruthCsv(dataset.value().truth, dir + "/census_gt.csv").ok());

  Result<ProfileStore> store =
      ReadProfilesCsv(dir + "/census.csv", ErType::kDirty);
  Result<GroundTruth> truth = ReadGroundTruthCsv(dir + "/census_gt.csv");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(store.value().size(), dataset.value().store.size());
  EXPECT_EQ(truth.value().num_matches(), dataset.value().truth.num_matches());
  // The reloaded task behaves identically: PBS finds the same matches.
  MethodConfig config;
  DatasetBundle reloaded{"census-reloaded", std::move(store).value(),
                         std::move(truth).value(), nullptr, ""};
  RunResult a = RunMethod(MethodId::kPbs, dataset.value(), 3.0);
  RunResult b = RunMethod(MethodId::kPbs, reloaded, 3.0);
  EXPECT_EQ(a.matches_found, b.matches_found);
}

TEST(IntegrationTest, ScaledDatasetKeepsProportions) {
  DatagenOptions half;
  half.scale = 0.5;
  Result<DatasetBundle> full = GenerateDataset("census");
  Result<DatasetBundle> scaled = GenerateDataset("census", half);
  ASSERT_TRUE(full.ok() && scaled.ok());
  EXPECT_NEAR(static_cast<double>(scaled.value().store.size()),
              0.5 * static_cast<double>(full.value().store.size()),
              0.05 * static_cast<double>(full.value().store.size()));
}

}  // namespace
}  // namespace sper
