#ifndef SPER_EVAL_EXPERIMENT_H_
#define SPER_EVAL_EXPERIMENT_H_

#include <memory>
#include <string_view>
#include <vector>

#include "blocking/suffix_forest.h"
#include "datagen/dataset.h"
#include "engine/method.h"
#include "engine/resolver.h"
#include "metablocking/edge_weighting.h"
#include "progressive/emitter.h"
#include "progressive/workflow.h"
#include "sorted/neighbor_list.h"

/// \file experiment.h
/// Method registry for the benchmark harness: constructs any of the
/// paper's seven progressive methods against a DatasetBundle with one
/// shared configuration (the paper's Sec. 7 "Parameter configuration").
/// MethodId itself lives in engine/method.h; resolvers are built through
/// the unified Resolver serving API (engine/resolver.h).

namespace sper {

/// Shared method configuration (defaults = the paper's settings).
struct MethodConfig {
  /// GS-PSN window range (paper: 20 structured, 200 large).
  std::size_t gs_wmax = 20;
  /// PPS comparisons retained per profile.
  std::size_t pps_kmax = 100;
  /// SA-PSAB suffix forest parameters.
  SuffixForestOptions suffix;
  /// Edge weighting for PBS/PPS (paper: ARCS).
  WeightingScheme scheme = WeightingScheme::kArcs;
  /// Token Blocking Workflow for PBS/PPS (paper: purge 10%, filter 80%).
  TokenWorkflowOptions workflow;
  /// Neighbor List construction (tie shuffling seed etc.).
  NeighborListOptions list;
  /// Threads for the initialization phase (1 = sequential; emitted
  /// sequences are identical at every thread count).
  std::size_t num_threads = 1;
  /// Hash shards for sharded serving (>1 routes through ShardedEngine:
  /// one engine per shard, globally merged emission in original ids).
  std::size_t num_shards = 1;
  /// Emission pipeline lookahead (ResolverOptions::lookahead): 0 = serial
  /// reference emission; > 0 overlaps refill production with consumption
  /// (per shard when sharded) with a bit-identical emitted sequence.
  std::size_t lookahead = 0;
  /// Global pay-as-you-go budget (ResolverOptions::budget): maximum
  /// comparisons emitted across the whole run; 0 = unlimited.
  std::uint64_t budget = 0;
  /// Telemetry sink (ResolverOptions::telemetry): default = disabled.
  obs::TelemetryScope telemetry;
};

/// The ResolverOptions equivalent of a MethodConfig for one method on one
/// dataset (the dataset supplies the PSN schema key). MethodConfig is the
/// old lenient surface: out-of-range thread/shard/lookahead values are
/// normalized into ResolverOptions' validated ranges rather than
/// rejected, so every config the harness ever ran keeps running.
ResolverOptions ToResolverOptions(MethodId id, const DatasetBundle& dataset,
                                  const MethodConfig& config);

/// Builds the requested resolver on the dataset via Resolver::Create. The
/// construction cost is the method's full initialization phase, including
/// blocking for the equality-based methods. Returns nullptr for PSN on
/// datasets without a literature blocking key (the heterogeneous ones);
/// degenerate method knobs (e.g. pps_kmax = 0) abort with the Create()
/// error printed.
std::unique_ptr<Resolver> MakeResolver(MethodId id,
                                       const DatasetBundle& dataset,
                                       const MethodConfig& config);

/// The methods compared on structured datasets (Figs. 9-10), paper order.
const std::vector<MethodId>& StructuredMethodSet();
/// The schema-agnostic methods compared on heterogeneous datasets
/// (Figs. 11-12).
const std::vector<MethodId>& HeterogeneousMethodSet();

}  // namespace sper

#endif  // SPER_EVAL_EXPERIMENT_H_
