#ifndef SPER_PROGRESSIVE_LS_PSN_H_
#define SPER_PROGRESSIVE_LS_PSN_H_

#include <vector>

#include "core/profile_store.h"
#include "progressive/comparison_list.h"
#include "progressive/emitter.h"
#include "sorted/neighbor_list.h"
#include "sorted/position_index.h"

/// \file ls_psn.h
/// Local Schema-Agnostic Progressive Sorted Neighborhood (LS-PSN, paper
/// Sec. 5.1.1, Algorithms 1-2).
///
/// LS-PSN fixes SA-PSN's coincidental proximity by weighting every
/// comparison of the *current* window size with the Relative Co-occurrence
/// Frequency (RCF) scheme and emitting them best-first — a local execution
/// order per window. When the window's Comparison List empties, the window
/// grows by one and the weighting pass repeats (trading initialization /
/// refill cost for a much better comparison order). Because the order is
/// local, a pair may be re-emitted under a later window; the evaluation
/// layer counts distinct matches.

namespace sper {

/// The LS-PSN emitter.
class LsPsnEmitter : public ProgressiveEmitter {
 public:
  /// Initialization phase (Algorithm 1): builds the schema-agnostic
  /// Neighbor List and its Position Index, then weights window 1.
  explicit LsPsnEmitter(const ProfileStore& store,
                        const NeighborListOptions& options = {});

  /// Emission phase (Algorithm 2): pops the next best comparison of the
  /// current window, growing the window when the list empties; nullopt
  /// when the window reaches the Neighbor List size.
  std::optional<Comparison> Next() override;

  std::string_view name() const override { return "LS-PSN"; }

  /// The window size currently being emitted (diagnostics / tests).
  std::size_t window() const { return window_; }

 private:
  /// Algorithm 1 lines 5-20 for the current window: RCF-weight every
  /// valid comparison at distance `window_` and sort them descending.
  void BuildWindow();

  const ProfileStore& store_;
  NeighborList list_;
  PositionIndex positions_;
  std::size_t window_ = 1;
  ComparisonList comparisons_;
  // Sparse per-profile accumulator (freq[] of Algorithm 1).
  std::vector<double> freq_;
  std::vector<ProfileId> touched_;
};

}  // namespace sper

#endif  // SPER_PROGRESSIVE_LS_PSN_H_
