// Figure 10: mean normalized area under the recall curve (AUC*_m) at
// ec* = 1, 5, 10, 20 across the four structured datasets — the bar chart
// as a table, plus the per-dataset breakdown.
//
//   $ ./bench_fig10_auc_structured [--scale=S]

#include <map>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace sper;
  using namespace sper::bench;
  const BenchArgs args = ParseArgs(argc, argv);

  std::printf("Figure 10: mean AUC*_m over the structured datasets\n");

  const std::vector<double> auc_at = {1.0, 5.0, 10.0, 20.0};
  std::map<MethodId, std::vector<RunResult>> per_method;

  for (const std::string& name : StructuredDatasetNames()) {
    DatagenOptions gen;
    gen.scale = args.scale;
    Result<DatasetBundle> dataset = GenerateDataset(name, gen);
    if (!dataset.ok()) {
      std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
      return 1;
    }
    EvalOptions options;
    options.ecstar_max = 20.0;
    options.auc_at = auc_at;
    ProgressiveEvaluator evaluator(dataset.value().truth, options);
    MethodConfig config = ConfigFor(name);

    std::vector<RunResult> runs;
    for (MethodId id : StructuredMethodSet()) {
      RunResult run = evaluator.Run(
          [&] { return MakeResolver(id, dataset.value(), config); });
      per_method[id].push_back(run);
      runs.push_back(std::move(run));
    }
    PrintAucTable(name, auc_at, runs);
  }

  // The figure itself: the mean across datasets.
  std::printf("\n== mean AUC*_m across all structured datasets ==\n");
  std::vector<std::string> headers = {"method"};
  for (double at : auc_at) headers.push_back("AUC*@" + FormatDouble(at, 0));
  TextTable table(headers);
  for (MethodId id : StructuredMethodSet()) {
    std::vector<std::string> row = {std::string(ToString(id))};
    for (double mean : MeanAucAcrossRuns(per_method[id])) {
      row.push_back(FormatDouble(mean, 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf(
      "\nExpected shape (paper Fig. 10): LS-PSN and GS-PSN on top — their\n"
      "AUC*@1 is ~3x PSN's and PBS's and ~18%% above PPS's.\n");
  return 0;
}
