#include "net/wire.h"

#include <cstring>

namespace sper {
namespace net {

namespace {

/// Frame-body field order is part of the protocol (docs/wire_protocol.md);
/// keep encode and decode in the same order as the spec tables.

/// Outcome and status-code bytes are the C++ enum values; pin the ones the
/// protocol documents so an enum reorder cannot silently change the wire.
static_assert(static_cast<std::uint8_t>(ResolveOutcome::kServed) == 0);
static_assert(static_cast<std::uint8_t>(ResolveOutcome::kDeadlineExpired) == 1);
static_assert(static_cast<std::uint8_t>(ResolveOutcome::kCancelled) == 2);
static_assert(static_cast<std::uint8_t>(ResolveOutcome::kShed) == 3);
static_assert(static_cast<std::uint8_t>(ResolveOutcome::kEvicted) == 4);
static_assert(static_cast<std::uint8_t>(ResolveOutcome::kRejected) == 5);
static_assert(static_cast<std::uint8_t>(ResolveOutcome::kFailed) == 6);
inline constexpr std::uint8_t kMaxOutcomeByte = 6;

static_assert(static_cast<std::uint8_t>(StatusCode::kOk) == 0);
static_assert(static_cast<std::uint8_t>(StatusCode::kInvalidArgument) == 1);
static_assert(static_cast<std::uint8_t>(StatusCode::kNotFound) == 2);
static_assert(static_cast<std::uint8_t>(StatusCode::kIoError) == 3);
static_assert(static_cast<std::uint8_t>(StatusCode::kFailedPrecondition) == 4);
static_assert(static_cast<std::uint8_t>(StatusCode::kInternal) == 5);
static_assert(static_cast<std::uint8_t>(StatusCode::kResourceExhausted) == 6);
inline constexpr std::uint8_t kMaxStatusCodeByte = 6;

/// ResolveResult flag byte.
inline constexpr std::uint8_t kFlagStreamExhausted = 1u << 0;
inline constexpr std::uint8_t kFlagBudgetExhausted = 1u << 1;

/// Builds the final frame from a payload: length prefix + payload.
std::string FinishFrame(std::string payload) {
  SPER_CHECK(payload.size() <= kMaxFramePayload);
  std::string frame;
  frame.reserve(4 + payload.size());
  PutU32(frame, static_cast<std::uint32_t>(payload.size()));
  frame += payload;
  return frame;
}

/// Starts a payload: version + type.
std::string StartPayload(FrameType type) {
  std::string payload;
  PutU8(payload, kWireVersion);
  PutU8(payload, static_cast<std::uint8_t>(type));
  return payload;
}

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("wire: " + what);
}

}  // namespace

void PutU8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void PutU32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xffu));
  }
}

void PutU64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xffu));
  }
}

void PutF64(std::string& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

bool WireReader::ReadU8(std::uint8_t& v) {
  if (remaining() < 1) return false;
  v = static_cast<std::uint8_t>(data_[cursor_++]);
  return true;
}

bool WireReader::ReadU32(std::uint32_t& v) {
  if (remaining() < 4) return false;
  v = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    v |= static_cast<std::uint32_t>(
             static_cast<std::uint8_t>(data_[cursor_++]))
         << shift;
  }
  return true;
}

bool WireReader::ReadU64(std::uint64_t& v) {
  if (remaining() < 8) return false;
  v = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    v |= static_cast<std::uint64_t>(
             static_cast<std::uint8_t>(data_[cursor_++]))
         << shift;
  }
  return true;
}

bool WireReader::ReadF64(double& v) {
  std::uint64_t bits = 0;
  if (!ReadU64(bits)) return false;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

bool WireReader::ReadBytes(std::size_t n, std::string& v) {
  if (remaining() < n) return false;
  v.assign(data_.substr(cursor_, n));
  cursor_ += n;
  return true;
}

std::string EncodeResolveRequestFrame(const ResolveRequest& request) {
  std::string payload = StartPayload(FrameType::kResolveRequest);
  PutU64(payload, request.budget);
  PutU64(payload, request.max_batch);
  PutU64(payload, request.deadline_ms);
  PutU64(payload, request.client_id);
  PutU8(payload, static_cast<std::uint8_t>(request.priority));
  return FinishFrame(std::move(payload));
}

std::string EncodeResolveResultFrame(const ResolveResult& result) {
  std::string payload = StartPayload(FrameType::kResolveResult);
  PutU64(payload, result.ticket);
  PutU8(payload, static_cast<std::uint8_t>(result.outcome));
  std::uint8_t flags = 0;
  if (result.stream_exhausted) flags |= kFlagStreamExhausted;
  if (result.budget_exhausted) flags |= kFlagBudgetExhausted;
  PutU8(payload, flags);
  PutU8(payload, static_cast<std::uint8_t>(result.status.code()));
  const std::string& message = result.status.message();
  PutU32(payload, static_cast<std::uint32_t>(message.size()));
  payload += message;
  PutU64(payload, result.retry_after_ms);
  PutU32(payload, static_cast<std::uint32_t>(result.comparisons.size()));
  for (const Comparison& c : result.comparisons) {
    PutU32(payload, c.i);
    PutU32(payload, c.j);
    PutF64(payload, c.weight);
  }
  return FinishFrame(std::move(payload));
}

std::string EncodeMetricsRequestFrame() {
  return FinishFrame(StartPayload(FrameType::kMetricsRequest));
}

std::string EncodeMetricsResultFrame(std::string_view snapshot_json) {
  std::string payload = StartPayload(FrameType::kMetricsResult);
  PutU32(payload, static_cast<std::uint32_t>(snapshot_json.size()));
  payload += snapshot_json;
  return FinishFrame(std::move(payload));
}

Result<FrameType> DecodeFrameHeader(std::string_view payload) {
  WireReader reader(payload);
  std::uint8_t version = 0;
  std::uint8_t type = 0;
  if (!reader.ReadU8(version) || !reader.ReadU8(type)) {
    return Malformed("payload shorter than the version/type header");
  }
  if (version != kWireVersion) {
    return Malformed("unsupported protocol version " +
                     std::to_string(version) + " (speak " +
                     std::to_string(kWireVersion) + ")");
  }
  if (type < static_cast<std::uint8_t>(FrameType::kResolveRequest) ||
      type > static_cast<std::uint8_t>(FrameType::kMetricsResult)) {
    return Malformed("unknown frame type " + std::to_string(type));
  }
  return static_cast<FrameType>(type);
}

Result<ResolveRequest> DecodeResolveRequest(std::string_view payload) {
  Result<FrameType> type = DecodeFrameHeader(payload);
  if (!type.ok()) return type.status();
  if (type.value() != FrameType::kResolveRequest) {
    return Malformed("expected a resolve-request frame");
  }
  WireReader reader(payload.substr(2));
  ResolveRequest request;
  std::uint64_t max_batch = 0;
  std::uint8_t priority = 0;
  if (!reader.ReadU64(request.budget) || !reader.ReadU64(max_batch) ||
      !reader.ReadU64(request.deadline_ms) ||
      !reader.ReadU64(request.client_id) || !reader.ReadU8(priority)) {
    return Malformed("truncated resolve-request body");
  }
  if (reader.remaining() != 0) {
    return Malformed("trailing bytes after resolve-request body");
  }
  if (max_batch > ResolveRequest::kMaxBatch) {
    // Out-of-range before the size_t narrowing below; ValidateResolveRequest
    // re-checks, but a 2^63 value must not wrap on 32-bit size_t first.
    return Malformed("max_batch must be <= " +
                     std::to_string(ResolveRequest::kMaxBatch) + ", got " +
                     std::to_string(max_batch));
  }
  request.max_batch = static_cast<std::size_t>(max_batch);
  request.priority = static_cast<Priority>(priority);
  SPER_RETURN_IF_ERROR(ValidateResolveRequest(request));
  return request;
}

Result<ResolveResult> DecodeResolveResult(std::string_view payload) {
  Result<FrameType> type = DecodeFrameHeader(payload);
  if (!type.ok()) return type.status();
  if (type.value() != FrameType::kResolveResult) {
    return Malformed("expected a resolve-result frame");
  }
  WireReader reader(payload.substr(2));
  ResolveResult result;
  std::uint8_t outcome = 0;
  std::uint8_t flags = 0;
  std::uint8_t status_code = 0;
  std::uint32_t message_len = 0;
  if (!reader.ReadU64(result.ticket) || !reader.ReadU8(outcome) ||
      !reader.ReadU8(flags) || !reader.ReadU8(status_code) ||
      !reader.ReadU32(message_len)) {
    return Malformed("truncated resolve-result header");
  }
  if (outcome > kMaxOutcomeByte) {
    return Malformed("unknown outcome byte " + std::to_string(outcome));
  }
  if (status_code > kMaxStatusCodeByte) {
    return Malformed("unknown status code byte " +
                     std::to_string(status_code));
  }
  if (flags & ~(kFlagStreamExhausted | kFlagBudgetExhausted)) {
    return Malformed("unknown flag bits " + std::to_string(flags));
  }
  std::string message;
  if (!reader.ReadBytes(message_len, message)) {
    return Malformed("status message length points past the payload");
  }
  std::uint32_t count = 0;
  if (!reader.ReadU64(result.retry_after_ms) || !reader.ReadU32(count)) {
    return Malformed("truncated resolve-result trailer");
  }
  if (reader.remaining() != static_cast<std::size_t>(count) * 16) {
    return Malformed("comparison count disagrees with the payload size");
  }
  result.outcome = static_cast<ResolveOutcome>(outcome);
  result.stream_exhausted = (flags & kFlagStreamExhausted) != 0;
  result.budget_exhausted = (flags & kFlagBudgetExhausted) != 0;
  result.status =
      Status::FromCode(static_cast<StatusCode>(status_code), std::move(message));
  result.comparisons.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k) {
    Comparison c;
    if (!reader.ReadU32(c.i) || !reader.ReadU32(c.j) ||
        !reader.ReadF64(c.weight)) {
      return Malformed("truncated comparison list");
    }
    result.comparisons.push_back(c);
  }
  return result;
}

Result<std::string> DecodeMetricsResult(std::string_view payload) {
  Result<FrameType> type = DecodeFrameHeader(payload);
  if (!type.ok()) return type.status();
  if (type.value() != FrameType::kMetricsResult) {
    return Malformed("expected a metrics-result frame");
  }
  WireReader reader(payload.substr(2));
  std::uint32_t length = 0;
  if (!reader.ReadU32(length)) {
    return Malformed("truncated metrics-result body");
  }
  std::string snapshot;
  if (!reader.ReadBytes(length, snapshot)) {
    return Malformed("snapshot length points past the payload");
  }
  if (reader.remaining() != 0) {
    return Malformed("trailing bytes after metrics-result body");
  }
  return snapshot;
}

void StreamDigest::Fold(const Comparison& c) {
  const auto mix = [this](std::uint64_t v) {
    value ^= v;
    value *= 1099511628211ull;  // FNV-1a prime
  };
  mix(c.i);
  mix(c.j);
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(c.weight));
  std::memcpy(&bits, &c.weight, sizeof(bits));
  mix(bits);
  ++count;
}

}  // namespace net
}  // namespace sper
