#ifndef SPER_PROGRESSIVE_EMITTER_H_
#define SPER_PROGRESSIVE_EMITTER_H_

#include <optional>
#include <string_view>

#include "core/comparison.h"
#include "progressive/comparison_list.h"

/// \file emitter.h
/// The streaming interface every progressive method implements.
///
/// The paper splits a progressive method into an *initialization phase*
/// (build data structures, produce the overall best comparison) and an
/// *emission phase* (return the next best comparison on demand). Here the
/// constructor is the initialization phase and Next() the emission phase —
/// the RocksDB-iterator idiom for the paper's pay-as-you-go contract: the
/// caller can stop after any number of Next() calls.

namespace sper {

/// Pull-based stream of comparisons in non-increasing estimated matching
/// likelihood (within each internal refill batch).
///
/// Lifetime: emitters keep a reference to the ProfileStore they were
/// constructed with (like a RocksDB Iterator references its DB). The
/// store must outlive the emitter; do not pass a temporary.
class ProgressiveEmitter {
 public:
  virtual ~ProgressiveEmitter() = default;

  /// Emission phase: the next best comparison, or std::nullopt once the
  /// method is exhausted. Naïve methods (SA-PSN, SA-PSAB) may emit the
  /// same pair more than once, exactly as in the paper; callers that need
  /// distinct pairs deduplicate via PairKey.
  virtual std::optional<Comparison> Next() = 0;

  /// Short method acronym, e.g. "PPS".
  virtual std::string_view name() const = 0;
};

/// Optional capability of the Comparison-List methods (PBS, PPS): exposes
/// the deterministic refill boundary, so the emission pipeline
/// (parallel/emission_pipeline.h) can run batch production ahead of
/// consumption instead of computing refills inline in Next().
///
/// Contract: batches must be requested strictly in order by one caller at
/// a time — a refill mutates method state the following refills depend on
/// (PPS's checkedEntities, PBS's block cursor). Interleaving ProduceBatch
/// with Next() on the same emitter is undefined: both advance the same
/// refill cursor.
class BatchSource {
 public:
  virtual ~BatchSource() = default;

  /// Fills `out` (previous content discarded) with the next *non-empty*
  /// refill batch in non-increasing likelihood order. Returns false once
  /// the method is exhausted. Consuming every batch front to back yields
  /// exactly the serial Next() sequence.
  virtual bool ProduceBatch(ComparisonList& out) = 0;
};

}  // namespace sper

#endif  // SPER_PROGRESSIVE_EMITTER_H_
