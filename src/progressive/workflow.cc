#include "progressive/workflow.h"

namespace sper {

BlockCollection BuildTokenWorkflowBlocks(const ProfileStore& store,
                                         const TokenWorkflowOptions& options) {
  TokenBlockingOptions token_blocking = options.token_blocking;
  token_blocking.num_threads = options.num_threads;
  BlockCollection blocks = TokenBlocking(store, token_blocking);
  if (options.enable_purging) {
    BlockPurgingOptions purging = options.purging;
    purging.num_threads = options.num_threads;
    blocks = BlockPurging(blocks, store.size(), purging);
  }
  if (options.enable_filtering) {
    BlockFilteringOptions filtering = options.filtering;
    filtering.num_threads = options.num_threads;
    blocks = BlockFiltering(blocks, filtering);
  }
  return blocks;
}

}  // namespace sper
