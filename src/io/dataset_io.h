#ifndef SPER_IO_DATASET_IO_H_
#define SPER_IO_DATASET_IO_H_

#include <string>

#include "core/ground_truth.h"
#include "core/profile_store.h"
#include "core/status.h"

/// \file dataset_io.h
/// Long-format CSV serialization of ER tasks, so generated datasets can be
/// exported, inspected and re-loaded:
///
///   profiles CSV:     profile,source,attribute,value   (header included)
///   ground-truth CSV: profile1,profile2                (header included)
///
/// `source` is 1 or 2 (always 1 for Dirty ER). Profile ids must be dense
/// and source-contiguous, as produced by ProfileStore.

namespace sper {

/// Writes all profiles of the store.
Status WriteProfilesCsv(const ProfileStore& store, const std::string& path);

/// Reads profiles back. `er_type` selects how the `source` column is
/// interpreted (Dirty ER ignores it).
Result<ProfileStore> ReadProfilesCsv(const std::string& path, ErType er_type);

/// Writes the ground-truth pairs.
Status WriteGroundTruthCsv(const GroundTruth& truth, const std::string& path);

/// Reads ground-truth pairs back.
Result<GroundTruth> ReadGroundTruthCsv(const std::string& path);

}  // namespace sper

#endif  // SPER_IO_DATASET_IO_H_
