#ifndef SPER_CORE_STATUS_H_
#define SPER_CORE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "core/macros.h"

/// \file status.h
/// RocksDB-style error handling: fallible operations return Status (or
/// Result<T> when they produce a value) instead of throwing. Algorithm hot
/// paths never allocate a Status; only construction/IO boundaries do.

namespace sper {

/// Error category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kInternal,
  kResourceExhausted,
};

/// Outcome of a fallible operation: a code plus a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Named constructors, one per error category.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// Reconstructs a Status from a (code, message) pair that crossed a
  /// serialization boundary (net/wire.cc transports the code as one byte).
  /// A kOk code yields Ok() and drops the message — OK statuses carry none.
  static Status FromCode(StatusCode code, std::string msg) {
    if (code == StatusCode::kOk) return Ok();
    return Status(code, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The error category.
  StatusCode code() const { return code_; }
  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }
  /// "OK" or "<category>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value or an error. Minimal std::expected stand-in (C++20-compatible).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : data_(std::move(value)) {}  // NOLINT
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    SPER_CHECK(!std::get<Status>(data_).ok());
  }

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(data_); }
  /// The error; OK if a value is held.
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(data_);
  }
  /// The held value. Aborts if `!ok()`.
  const T& value() const& {
    SPER_CHECK(ok());
    return std::get<T>(data_);
  }
  /// Moves the held value out. Aborts if `!ok()`.
  T&& value() && {
    SPER_CHECK(ok());
    return std::get<T>(std::move(data_));
  }

 private:
  std::variant<T, Status> data_;
};

/// Propagates an error Status out of the current function.
#define SPER_RETURN_IF_ERROR(expr)        \
  do {                                    \
    ::sper::Status _st = (expr);          \
    if (!_st.ok()) return _st;            \
  } while (0)

}  // namespace sper

#endif  // SPER_CORE_STATUS_H_
