// Unit tests for src/sorted: NeighborList, PositionIndex, RCF weighting.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "sorted/neighbor_list.h"
#include "sorted/position_index.h"

namespace sper {
namespace {

ProfileStore SmallStore() {
  // p0: {apple, banana}; p1: {banana, cherry}; p2: {apple}.
  std::vector<Profile> ps(3);
  ps[0].AddAttribute("v", "apple banana");
  ps[1].AddAttribute("v", "banana cherry");
  ps[2].AddAttribute("v", "apple");
  return ProfileStore::MakeDirty(std::move(ps));
}

NeighborListOptions NoShuffle() {
  NeighborListOptions options;
  options.shuffle_ties = false;
  return options;
}

TEST(NeighborListTest, SchemaAgnosticPlacesProfileOncePerToken) {
  ProfileStore store = SmallStore();
  NeighborList list = NeighborList::BuildSchemaAgnostic(store, NoShuffle());
  // Sorted keys: apple(p0,p2), banana(p0,p1), cherry(p1).
  ASSERT_EQ(list.size(), 5u);
  EXPECT_EQ(list.keys()[0], "apple");
  EXPECT_EQ(list.at(0), 0u);
  EXPECT_EQ(list.at(1), 2u);
  EXPECT_EQ(list.keys()[2], "banana");
  EXPECT_EQ(list.at(2), 0u);
  EXPECT_EQ(list.at(3), 1u);
  EXPECT_EQ(list.keys()[4], "cherry");
  EXPECT_EQ(list.at(4), 1u);
}

TEST(NeighborListTest, KeysAreSortedRegardlessOfShuffle) {
  ProfileStore store = SmallStore();
  NeighborList list = NeighborList::BuildSchemaAgnostic(store);
  EXPECT_TRUE(std::is_sorted(list.keys().begin(), list.keys().end()));
}

TEST(NeighborListTest, TieShuffleKeepsRunMembership) {
  // With shuffling on, each equal-key run must contain the same profiles,
  // in any order (coincidental proximity, Sec. 4.1).
  ProfileStore store = SmallStore();
  NeighborList shuffled = NeighborList::BuildSchemaAgnostic(store);
  std::map<std::string, std::vector<ProfileId>> runs;
  for (std::size_t pos = 0; pos < shuffled.size(); ++pos) {
    runs[shuffled.keys()[pos]].push_back(shuffled.at(pos));
  }
  for (auto& [key, ids] : runs) std::sort(ids.begin(), ids.end());
  EXPECT_EQ(runs["apple"], (std::vector<ProfileId>{0, 2}));
  EXPECT_EQ(runs["banana"], (std::vector<ProfileId>{0, 1}));
  EXPECT_EQ(runs["cherry"], (std::vector<ProfileId>{1}));
}

TEST(NeighborListTest, ShuffleIsDeterministicPerSeed) {
  ProfileStore store = SmallStore();
  NeighborListOptions options;
  options.seed = 123;
  NeighborList a = NeighborList::BuildSchemaAgnostic(store, options);
  NeighborList b = NeighborList::BuildSchemaAgnostic(store, options);
  EXPECT_EQ(a.profiles(), b.profiles());
}

TEST(NeighborListTest, SchemaBasedUsesOneKeyPerProfile) {
  ProfileStore store = SmallStore();
  NeighborList list = NeighborList::BuildSchemaBased(
      store,
      [](const Profile& p) { return std::string(p.ValueOf("v").substr(0, 1)); },
      NoShuffle());
  // Keys: p0 -> "a", p1 -> "b", p2 -> "a"; sorted: a(p0), a(p2), b(p1).
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list.at(0), 0u);
  EXPECT_EQ(list.at(1), 2u);
  EXPECT_EQ(list.at(2), 1u);
}

TEST(NeighborListTest, SchemaBasedSkipsEmptyKeys) {
  std::vector<Profile> ps(2);
  ps[0].AddAttribute("k", "x");
  ps[1].AddAttribute("other", "y");
  ProfileStore store = ProfileStore::MakeDirty(std::move(ps));
  NeighborList list = NeighborList::BuildSchemaBased(
      store, [](const Profile& p) { return std::string(p.ValueOf("k")); },
      NoShuffle());
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list.at(0), 0u);
}

TEST(PositionIndexTest, InvertsTheNeighborList) {
  ProfileStore store = SmallStore();
  NeighborList list = NeighborList::BuildSchemaAgnostic(store, NoShuffle());
  PositionIndex index(list, store.size());
  // p0 at positions {0, 2}, p1 at {3, 4}, p2 at {1}.
  EXPECT_EQ(index.NumPositionsOf(0), 2u);
  EXPECT_EQ(index.NumPositionsOf(1), 2u);
  EXPECT_EQ(index.NumPositionsOf(2), 1u);
  EXPECT_EQ(index.PositionsOf(0)[0], 0u);
  EXPECT_EQ(index.PositionsOf(0)[1], 2u);
  EXPECT_EQ(index.PositionsOf(2)[0], 1u);
}

TEST(PositionIndexTest, PositionsRoundTripThroughTheList) {
  ProfileStore store = SmallStore();
  NeighborList list = NeighborList::BuildSchemaAgnostic(store);
  PositionIndex index(list, store.size());
  for (ProfileId p = 0; p < store.size(); ++p) {
    for (std::uint32_t pos : index.PositionsOf(p)) {
      EXPECT_EQ(list.at(pos), p);
    }
  }
}

TEST(RcfTest, MatchesTheFormula) {
  // RCF = freq / (|PI[i]| + |PI[j]| - freq)   (Sec. 5.1.1)
  EXPECT_DOUBLE_EQ(RcfWeight(2.0, 4, 4), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(RcfWeight(4.0, 4, 4), 1.0);
  EXPECT_DOUBLE_EQ(RcfWeight(1.0, 1, 1), 1.0);
}

TEST(RcfTest, ZeroDenominatorYieldsZero) {
  EXPECT_DOUBLE_EQ(RcfWeight(0.0, 0, 0), 0.0);
}

TEST(RcfTest, MoreCoOccurrenceMeansHigherWeight) {
  EXPECT_GT(RcfWeight(3.0, 5, 5), RcfWeight(2.0, 5, 5));
  // Same freq, busier profiles -> lower weight.
  EXPECT_GT(RcfWeight(2.0, 3, 3), RcfWeight(2.0, 8, 8));
}

}  // namespace
}  // namespace sper
