#ifndef SPER_SORTED_POSITION_INDEX_H_
#define SPER_SORTED_POSITION_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.h"
#include "sorted/neighbor_list.h"

/// \file position_index.h
/// The Position Index of Sec. 5.1: an inverted index from profile id to
/// its positions in the Neighbor List. It lets LS/GS-PSN retrieve the
/// neighbors of a profile inside the current window without scanning the
/// list, and it carries |PI[i]| — the placement count that normalizes the
/// RCF weight. CSR layout, like ProfileIndex.

namespace sper {

/// Inverted index: profile id -> ascending positions in a NeighborList.
class PositionIndex {
 public:
  /// Builds the index for `num_profiles` profiles over `list`.
  PositionIndex(const NeighborList& list, std::size_t num_profiles);

  /// The ascending Neighbor List positions of profile `p`.
  std::span<const std::uint32_t> PositionsOf(ProfileId p) const {
    return {flat_.data() + offsets_[p], flat_.data() + offsets_[p + 1]};
  }

  /// |PI[p]|: number of placements of profile `p`.
  std::size_t NumPositionsOf(ProfileId p) const {
    return offsets_[p + 1] - offsets_[p];
  }

  /// Number of profiles the index was built for.
  std::size_t num_profiles() const { return offsets_.size() - 1; }

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<std::uint32_t> flat_;
};

/// The Relative Co-occurrence Frequency weighting scheme (Sec. 5.1): a
/// Jaccard-style normalization of how often two profiles co-occur at the
/// current window distance(s).
///
///   RCF(i, j) = freq / (|PI[i]| + |PI[j]| - freq)
inline double RcfWeight(double freq, std::size_t positions_i,
                        std::size_t positions_j) {
  const double denom =
      static_cast<double>(positions_i) + static_cast<double>(positions_j) -
      freq;
  return denom > 0 ? freq / denom : 0.0;
}

}  // namespace sper

#endif  // SPER_SORTED_POSITION_INDEX_H_
