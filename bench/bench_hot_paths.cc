// Hot-path bench: the meta-blocking neighborhood gather (paper Algorithm 5
// line 10 — the loop edge weighting, PPS initialization and the EJS degree
// pass all spend their time in), measured on two block layouts:
//
//   gather_legacy  the seed layout — one heap std::vector<ProfileId> per
//                  block plus a per-element IsComparable(i, j) branch
//                  (replicated here so the speedup stays measurable after
//                  the layout swap);
//   gather_csr     the CSR BlockCollection — one contiguous member array,
//                  and for Clean-Clean ER a per-block split point so the
//                  scan visits only the opposite-source range with zero
//                  comparability branches.
//
// Both passes execute identical arithmetic in identical order, so their
// checksums must match bitwise; the bench fails (exit 1) if they do not.
//
//   bench_hot_paths [--scale=S] [--dataset=NAME] [--repeat=R]
//                   [--threads=T1,T2,...] [--json=PATH]
//
// --json emits machine-readable {dataset, scale, threads, path, wall_ms,
// speedup} records (schema: bench/BENCH.md); speedup is legacy/csr at the
// same thread count.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "blocking/profile_index.h"
#include "datagen/datagen.h"
#include "eval/table.h"
#include "metablocking/neighborhood.h"
#include "parallel/parallel_for.h"
#include "progressive/workflow.h"

namespace {

using namespace sper;

double Millis(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// The seed's per-block storage, replicated as the bench baseline.
struct LegacyBlock {
  std::string key;
  std::vector<ProfileId> profiles;
};

/// Deterministic digest of one gather pass: the per-chunk sums are folded
/// in chunk order, so equal work implies bitwise-equal digests.
struct Digest {
  double likelihood_sum = 0.0;
  std::uint64_t neighbors = 0;

  bool operator==(const Digest& other) const {
    return likelihood_sum == other.likelihood_sum &&
           neighbors == other.neighbors;
  }
};

/// One full ARCS gather pass over every profile's neighborhood in the
/// legacy layout: scan all block members, branch on IsComparable.
Digest GatherLegacy(const ProfileStore& store,
                    const std::vector<LegacyBlock>& blocks,
                    const std::vector<double>& shares,
                    const ProfileIndex& index, std::size_t num_threads) {
  const std::size_t num_chunks =
      StaticChunks(store.size(), num_threads).size();
  std::vector<Digest> parts(num_chunks);
  ParallelForChunks(
      store.size(), num_threads, [&](std::size_t chunk, IndexRange range) {
        std::vector<double> weights(store.size(), 0.0);
        std::vector<ProfileId> touched;
        touched.reserve(store.size());
        Digest digest;
        for (std::size_t idx = range.begin; idx < range.end; ++idx) {
          const ProfileId i = static_cast<ProfileId>(idx);
          for (BlockId b : index.BlocksOf(i)) {
            const double share = shares[b];
            for (ProfileId j : blocks[b].profiles) {
              if (j == i || !store.IsComparable(i, j)) continue;
              if (weights[j] == 0.0) touched.push_back(j);
              weights[j] += share;
            }
          }
          for (ProfileId j : touched) {
            digest.likelihood_sum += weights[j];
            weights[j] = 0.0;
          }
          digest.neighbors += touched.size();
          touched.clear();
        }
        parts[chunk] = digest;
      });
  Digest total;
  for (const Digest& part : parts) {
    total.likelihood_sum += part.likelihood_sum;
    total.neighbors += part.neighbors;
  }
  return total;
}

/// The same pass through the production hot path: the library's
/// NeighborhoodAccumulator::Gather over the CSR collection, so the
/// reported number tracks the code the emitters actually run.
Digest GatherCsr(const ProfileStore& store, const BlockCollection& blocks,
                 const std::vector<double>& shares,
                 const ProfileIndex& index, std::size_t num_threads) {
  const std::size_t num_chunks =
      StaticChunks(store.size(), num_threads).size();
  std::vector<Digest> parts(num_chunks);
  ParallelForChunks(
      store.size(), num_threads, [&](std::size_t chunk, IndexRange range) {
        NeighborhoodAccumulator acc(store.size());
        Digest digest;
        for (std::size_t idx = range.begin; idx < range.end; ++idx) {
          acc.Gather(static_cast<ProfileId>(idx), blocks, index,
                     [&](BlockId b) { return shares[b]; },
                     [&](ProfileId, double accumulated) {
                       digest.likelihood_sum += accumulated;
                       ++digest.neighbors;
                     });
        }
        parts[chunk] = digest;
      });
  Digest total;
  for (const Digest& part : parts) {
    total.likelihood_sum += part.likelihood_sum;
    total.neighbors += part.neighbors;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  int repeat = 3;
  std::string dataset_name = "dbpedia";
  std::string json_path;
  std::vector<std::size_t> thread_counts = {1, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--dataset=", 10) == 0) {
      dataset_name = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      repeat = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      thread_counts.clear();
      for (const char* p = argv[i] + 10; *p != '\0';) {
        thread_counts.push_back(std::strtoul(p, nullptr, 10));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else {
      std::printf(
          "usage: %s [--scale=S] [--dataset=NAME] [--repeat=R] "
          "[--threads=T1,T2,...] [--json=PATH]\n",
          argv[0]);
      return 2;
    }
  }

  DatagenOptions gen;
  gen.scale = scale;
  Result<DatasetBundle> dataset = GenerateDataset(dataset_name, gen);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const ProfileStore& store = dataset.value().store;
  std::printf("dataset %s: %zu profiles (scale %.2f, %s), "
              "hardware threads %u\n",
              dataset.value().name.c_str(), store.size(), scale,
              ToString(store.er_type()),
              std::thread::hardware_concurrency());

  BlockCollection blocks = BuildTokenWorkflowBlocks(store, {});
  ProfileIndex index(blocks, store.size());
  std::printf("blocks %zu, memberships %zu, ||B|| %llu\n", blocks.size(),
              blocks.total_members(),
              static_cast<unsigned long long>(blocks.AggregateCardinality()));

  // ARCS shares per block, shared by both layouts so the measured delta is
  // purely the member-scan layout.
  std::vector<double> shares(blocks.size(), 0.0);
  for (BlockId b = 0; b < blocks.size(); ++b) {
    const double card = static_cast<double>(blocks.Cardinality(b));
    shares[b] = card > 0 ? 1.0 / card : 0.0;
  }

  // Materialize the seed layout from the CSR collection.
  std::vector<LegacyBlock> legacy(blocks.size());
  for (BlockId b = 0; b < blocks.size(); ++b) {
    std::span<const ProfileId> members = blocks.members(b);
    legacy[b].key = std::string(blocks.key(b));
    legacy[b].profiles.assign(members.begin(), members.end());
  }

  std::vector<sper::bench::JsonRecord> records;
  TextTable table(
      {"threads", "legacy (ms)", "csr (ms)", "speedup", "digest"});
  bool ok = true;
  for (std::size_t num_threads : thread_counts) {
    double best_legacy = 0.0, best_csr = 0.0;
    Digest legacy_digest, csr_digest;
    for (int r = 0; r < repeat; ++r) {
      {
        const auto start = std::chrono::steady_clock::now();
        legacy_digest =
            GatherLegacy(store, legacy, shares, index, num_threads);
        const double ms = Millis(start);
        if (r == 0 || ms < best_legacy) best_legacy = ms;
      }
      {
        const auto start = std::chrono::steady_clock::now();
        csr_digest = GatherCsr(store, blocks, shares, index, num_threads);
        const double ms = Millis(start);
        if (r == 0 || ms < best_csr) best_csr = ms;
      }
    }
    const bool match = legacy_digest == csr_digest;
    ok = ok && match;
    const double speedup = best_csr > 0 ? best_legacy / best_csr : 0.0;
    table.AddRow({std::to_string(num_threads),
                  FormatDouble(best_legacy, 1), FormatDouble(best_csr, 1),
                  FormatDouble(speedup, 2) + "x",
                  match ? "match" : "MISMATCH"});
    records.push_back({dataset.value().name, scale, num_threads,
                       "gather_legacy", best_legacy, 1.0});
    records.push_back({dataset.value().name, scale, num_threads,
                       "gather_csr", best_csr, speedup});
  }
  table.Print();
  std::printf("\ndigest = identical neighbor counts and likelihood sums; a\n"
              "mismatch means the CSR scan visited different work.\n");

  if (!json_path.empty() &&
      !sper::bench::WriteJsonRecords(json_path, records)) {
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr, "FAIL: layout digests diverged\n");
    return 1;
  }
  return 0;
}
