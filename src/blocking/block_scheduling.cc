#include "blocking/block_scheduling.h"

#include <algorithm>
#include <numeric>
#include <vector>

namespace sper {

BlockCollection BlockScheduling(const BlockCollection& input,
                                obs::TelemetryScope telemetry) {
  obs::ScopedPhase timer(telemetry, "block_scheduling");
  std::vector<BlockId> order(input.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](BlockId a, BlockId b) {
    const auto ca = input.Cardinality(a);
    const auto cb = input.Cardinality(b);
    if (ca != cb) return ca < cb;
    return input.key(a) < input.key(b);
  });

  BlockCollection out(input.er_type(), input.split_index());
  out.Reserve(input.size(), input.total_members(), input.total_key_bytes());
  for (BlockId id : order) out.Add(input.key(id), input.members(id));
  return out;
}

}  // namespace sper
