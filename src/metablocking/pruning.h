#ifndef SPER_METABLOCKING_PRUNING_H_
#define SPER_METABLOCKING_PRUNING_H_

#include <vector>

#include "core/comparison.h"
#include "metablocking/blocking_graph.h"

/// \file pruning.h
/// Batch meta-blocking edge pruning [12]: the substrate the paper's
/// equality-based progressive methods generalize. Batch meta-blocking
/// discards low-weighted blocking-graph edges and hands the survivors to
/// Batch ER; PBS/PPS instead *order* the edges and emit them on-line.
/// These batch algorithms are provided for completeness and are used by
/// the tests to cross-validate the progressive implementations.

namespace sper {

/// Weight Edge Pruning: keeps every edge whose weight is at least the mean
/// edge weight of the graph. Returns surviving edges sorted by (i, j).
std::vector<Comparison> WeightEdgePruning(const BlockingGraph& graph);

/// Cardinality Node Pruning: keeps, for every node, its k highest-weighted
/// incident edges (k = max(1, round(avg node degree) / 2)); an edge
/// survives if either endpoint retains it. Returns surviving edges sorted
/// by (i, j).
std::vector<Comparison> CardinalityNodePruning(const BlockingGraph& graph);

}  // namespace sper

#endif  // SPER_METABLOCKING_PRUNING_H_
