#ifndef SPER_METABLOCKING_EDGE_WEIGHTING_H_
#define SPER_METABLOCKING_EDGE_WEIGHTING_H_

#include <string_view>
#include <vector>

#include "blocking/block_collection.h"
#include "blocking/profile_index.h"
#include "core/profile_store.h"
#include "core/types.h"
#include "obs/telemetry.h"

/// \file edge_weighting.h
/// The schema-agnostic edge-weighting functions of Meta-blocking [12, 20].
/// Every scheme derives the weight of the blocking-graph edge (i, j)
/// exclusively from the blocks the two profiles have in common, assigning
/// high weights to strong co-occurrence patterns.
///
/// All schemes decompose into a per-common-block accumulation plus a
/// finalization step, which is exactly the shape PPS's neighborhood pass
/// needs (Algorithm 5, line 10: `weights[j] += wScheme(pj, pi, bk)`).

namespace sper {

/// The edge-weighting schemes of the meta-blocking literature.
enum class WeightingScheme {
  /// ARCS: Σ_{b ∈ B_i ∩ B_j} 1/||b|| — smaller shared blocks count more.
  /// The paper's workflow step 4 and the scheme behind Figs. 3c, 7, 8.
  kArcs,
  /// CBS: |B_i ∩ B_j| — plain number of common blocks.
  kCbs,
  /// JS: |B_i ∩ B_j| / (|B_i| + |B_j| - |B_i ∩ B_j|) — Jaccard of the
  /// block lists.
  kJs,
  /// ECBS: CBS * log(|B|/|B_i|) * log(|B|/|B_j|) — CBS discounted for
  /// profiles that appear in many blocks.
  kEcbs,
  /// EJS: JS * log(|E|/deg(i)) * log(|E|/deg(j)) — JS discounted by node
  /// degree; requires a full graph pass to compute degrees.
  kEjs,
};

/// Parses "arcs" / "cbs" / "js" / "ecbs" / "ejs".
WeightingScheme ParseWeightingScheme(std::string_view name);
/// Scheme name in lowercase.
const char* ToString(WeightingScheme scheme);

/// Computes blocking-graph edge weights from a Profile Index.
///
/// Thread-compatible: const methods are safe to call concurrently.
class EdgeWeighter {
 public:
  /// `blocks` and `index` must outlive the weighter. For kEjs the
  /// constructor performs one full graph pass to collect node degrees;
  /// `num_threads` parallelizes that pass over profile chunks with
  /// per-thread neighborhood accumulators (identical degrees at every
  /// thread count). `telemetry` records construction as phase
  /// "edge_weighting".
  EdgeWeighter(const BlockCollection& blocks, const ProfileIndex& index,
               const ProfileStore& store, WeightingScheme scheme,
               std::size_t num_threads = 1,
               obs::TelemetryScope telemetry = {});

  /// Weight of the edge (i, j), walking their common blocks.
  /// Returns 0 when the profiles share no block.
  double Weight(ProfileId i, ProfileId j) const;

  /// The contribution one shared block adds to the running accumulator
  /// (ARCS: 1/||b||; every other scheme: 1).
  double BlockContribution(BlockId b) const;

  /// Turns an accumulated contribution into the final edge weight
  /// (identity for ARCS/CBS; normalization factors for JS/ECBS/EJS).
  double Finalize(ProfileId i, ProfileId j, double accumulated) const;

  /// The scheme in use.
  WeightingScheme scheme() const { return scheme_; }

 private:
  void ComputeDegrees(const ProfileStore& store, std::size_t num_threads);

  const BlockCollection& blocks_;
  const ProfileIndex& index_;
  WeightingScheme scheme_;
  double log_num_blocks_ = 0.0;
  // kEjs only: node degrees and log of total edge count.
  std::vector<std::uint32_t> degrees_;
  double log_num_edges_ = 0.0;
};

}  // namespace sper

#endif  // SPER_METABLOCKING_EDGE_WEIGHTING_H_
