// Figure 1: the motivation plot. Schema-based Progressive Sorted
// Neighborhood (PSN) with its literature blocking keys on the four
// structured datasets — recall vs the normalized number of comparisons
// ec*. The ideal method reaches recall 1.0 at ec* = 1; PSN needs orders
// of magnitude more comparisons and stalls below full recall.
//
//   $ ./bench_fig01_psn_motivation [--scale=S] [--ecmax=E]

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace sper;
  using namespace sper::bench;
  const BenchArgs args = ParseArgs(argc, argv);
  const double ecmax = args.ecmax > 0 ? args.ecmax : 100.0;

  std::printf("Figure 1: PSN recall progressiveness on structured datasets\n"
              "(ideal = 1.000 from ec* = 1 on)\n");

  const std::vector<double> grid = {1, 2, 5, 10, 20, 50, ecmax};
  std::vector<RunResult> runs;
  std::vector<std::string> names;
  for (const std::string& name : StructuredDatasetNames()) {
    DatagenOptions gen;
    gen.scale = args.scale;
    Result<DatasetBundle> dataset = GenerateDataset(name, gen);
    if (!dataset.ok()) {
      std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
      return 1;
    }
    EvalOptions options;
    options.ecstar_max = ecmax;
    options.auc_at = {1.0, 10.0};
    ProgressiveEvaluator evaluator(dataset.value().truth, options);
    MethodConfig config = ConfigFor(name);
    RunResult run = evaluator.Run(
        [&] { return MakeResolver(MethodId::kPsn, dataset.value(), config); });
    run.method = name;  // column = dataset (all runs are PSN)
    runs.push_back(std::move(run));
  }
  PrintRecallTable("PSN recall by dataset (columns) vs ec* (rows)", grid,
                   runs);

  std::printf("\nReading: even at ec* = 10 (ten comparisons per existing "
              "match),\nPSN misses a large share of matches on cora/cddb — "
              "the gap the\nschema-agnostic methods close.\n");
  return 0;
}
