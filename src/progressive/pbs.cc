#include "progressive/pbs.h"

#include <algorithm>

#include "blocking/block_scheduling.h"

namespace sper {

PbsEmitter::PbsEmitter(const ProfileStore& store,
                       const BlockCollection& blocks,
                       const PbsOptions& options)
    : store_(store),
      scheduled_(BlockScheduling(blocks, options.telemetry)),
      index_(scheduled_, store.size()),
      weighter_(scheduled_, index_, store, options.scheme,
                options.num_threads, options.telemetry) {}

void PbsEmitter::ProcessBlock(BlockId id, ComparisonList& out) {
  out.Clear();
  // ||b|| bounds the Adds below, but most pairs are LeCoBI-filtered:
  // reserving it all would over-allocate on large blocks, so cap it and
  // let the (reused) vector grow past the cap the normal way.
  out.Reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(scheduled_.Cardinality(id), 1024)));
  scheduled_.ForEachComparison(id, [&](ProfileId i, ProfileId j) {
    // One pass over the two block lists serves both operations of the
    // Profile Index: the LeCoBI repetition test (is `id` the least common
    // block of i and j?) and Edge Weighting (accumulate contributions).
    BlockId least = kInvalidBlock;
    double accumulated = 0.0;
    index_.ForEachCommonBlock(i, j, [&](BlockId b) {
      if (least == kInvalidBlock) least = b;
      accumulated += weighter_.BlockContribution(b);
    });
    // least < id would mean the pair already appeared in an earlier block
    // (repeated comparison); least > id is impossible because `id`
    // contains both profiles.
    if (least != id) return;
    out.Add(Comparison(i, j, weighter_.Finalize(i, j, accumulated)));
  });
  out.SortDescending();
}

bool PbsEmitter::ProduceBatch(ComparisonList& out) {
  for (;;) {
    if (next_block_ >= scheduled_.size()) return false;
    ProcessBlock(next_block_++, out);
    if (!out.Empty()) return true;
  }
}

std::optional<Comparison> PbsEmitter::Next() {
  if (comparisons_.Empty() && !ProduceBatch(comparisons_)) {
    return std::nullopt;
  }
  return comparisons_.PopFirst();
}

}  // namespace sper
