#ifndef SPER_BLOCKING_SUFFIX_FOREST_H_
#define SPER_BLOCKING_SUFFIX_FOREST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/profile_store.h"
#include "core/tokenizer.h"

/// \file suffix_forest.h
/// The suffix forest of SA-PSAB (paper Sec. 4.2). Every attribute-value
/// token is expanded into all of its suffixes with at least `lmin`
/// characters; each suffix indexes the profiles owning such a token. The
/// forest's hierarchy ("leaves first, root last") is realized by ordering
/// nodes by decreasing suffix length — the longest suffixes are the leaf
/// layer — and, inside a layer, by increasing number of comparisons.

namespace sper {

/// Options for suffix-forest construction.
struct SuffixForestOptions {
  /// Minimum suffix length (the method's only configuration parameter).
  std::size_t lmin = 3;
  /// Suffixes longer than this are not generated; each token still yields
  /// its min(len, max_suffix_length)-character suffix as its leaf. Bounds
  /// memory on datasets with very long values (e.g. URIs).
  std::size_t max_suffix_length = 24;
  /// How attribute values are split into tokens.
  TokenizerOptions tokenizer;
};

/// One node of the suffix forest: a suffix and its block of profiles.
struct SuffixNode {
  std::string suffix;
  /// Profiles owning a token that ends with `suffix`; sorted ascending.
  std::vector<ProfileId> profiles;
  /// Comparisons this node yields under the store's ER geometry.
  std::uint64_t cardinality = 0;
  /// Clean-Clean split point: index of the first source-2 profile in
  /// `profiles` (== profiles.size() for Dirty ER). Lets SA-PSAB iterate
  /// cross-source pairs directly, with no per-pair comparability test.
  std::size_t split = 0;
};

/// The suffix forest: nodes pre-sorted in SA-PSAB processing order
/// (suffix length desc, then cardinality asc, then suffix asc).
class SuffixForest {
 public:
  /// Builds the forest over all attribute-value tokens of the store.
  /// Nodes that yield no valid comparison are dropped.
  static SuffixForest Build(const ProfileStore& store,
                            const SuffixForestOptions& options = {});

  /// Nodes in processing order.
  const std::vector<SuffixNode>& nodes() const { return nodes_; }

  /// Σ node cardinality (comparisons SA-PSAB would emit, with repeats).
  std::uint64_t TotalComparisons() const { return total_comparisons_; }

 private:
  std::vector<SuffixNode> nodes_;
  std::uint64_t total_comparisons_ = 0;
};

}  // namespace sper

#endif  // SPER_BLOCKING_SUFFIX_FOREST_H_
