#ifndef SPER_DATAGEN_DATASET_H_
#define SPER_DATAGEN_DATASET_H_

#include <string>

#include "core/ground_truth.h"
#include "core/profile_store.h"
#include "core/types.h"

/// \file dataset.h
/// A complete ER task: profiles, ground truth, and (when the literature
/// defines one) the schema-based PSN blocking key.

namespace sper {

/// One benchmark dataset, ready to run every method on.
struct DatasetBundle {
  /// Dataset name ("census", ..., "freebase").
  std::string name;
  /// The profile collection(s).
  ProfileStore store;
  /// The known matches D_P.
  GroundTruth truth;
  /// The literature blocking key for schema-based PSN; nullptr for the
  /// heterogeneous datasets, where the paper deems PSN inapplicable.
  SchemaKeyFn psn_key;
  /// One-line provenance note (what the synthetic generator models).
  std::string description;
};

}  // namespace sper

#endif  // SPER_DATAGEN_DATASET_H_
