#include "progressive/psn.h"

namespace sper {

PsnEmitter::PsnEmitter(const ProfileStore& store, const SchemaKeyFn& key_fn,
                       const NeighborListOptions& options)
    : store_(store), list_(NeighborList::BuildSchemaBased(store, key_fn,
                                                          options)) {}

std::optional<Comparison> PsnEmitter::Next() {
  while (window_ < list_.size()) {
    while (pos_ + window_ < list_.size()) {
      const ProfileId a = list_.at(pos_);
      const ProfileId b = list_.at(pos_ + window_);
      ++pos_;
      if (store_.IsComparable(a, b)) {
        // The window size is the (inverse) likelihood proxy: pairs from
        // smaller windows are emitted earlier.
        return Comparison(a, b, 1.0 / static_cast<double>(window_));
      }
    }
    ++window_;
    pos_ = 0;
  }
  return std::nullopt;
}

}  // namespace sper
