// Micro-benchmarks (google-benchmark) for the substrate operations whose
// constants sit behind Table 1: tokenization, Neighbor List construction,
// Token Blocking, the Profile Index operations (LeCoBI / Edge Weighting)
// and the two match functions of Sec. 7.3.
//
//   $ ./bench_micro_substrates [--benchmark_filter=...]

#include <benchmark/benchmark.h>

#include "blocking/profile_index.h"
#include "blocking/token_blocking.h"
#include "core/tokenizer.h"
#include "datagen/datagen.h"
#include "matching/jaccard.h"
#include "matching/levenshtein.h"
#include "matching/match_function.h"
#include "metablocking/edge_weighting.h"
#include "sorted/neighbor_list.h"
#include "sorted/position_index.h"

namespace {

using namespace sper;

const DatasetBundle& Restaurant() {
  static const DatasetBundle dataset = [] {
    Result<DatasetBundle> r = GenerateDataset("restaurant");
    SPER_CHECK(r.ok());
    return std::move(r).value();
  }();
  return dataset;
}

const DatasetBundle& MoviesSample() {
  static const DatasetBundle dataset = [] {
    DatagenOptions options;
    options.scale = 0.2;
    Result<DatasetBundle> r = GenerateDataset("movies", options);
    SPER_CHECK(r.ok());
    return std::move(r).value();
  }();
  return dataset;
}

void BM_TokenizeValue(benchmark::State& state) {
  const std::string value =
      "http://dbpedia.org/resource/Progressive_Entity_Resolution_2018";
  for (auto _ : state) {
    benchmark::DoNotOptimize(TokenizeValue(value));
  }
}
BENCHMARK(BM_TokenizeValue);

void BM_DistinctProfileTokens(benchmark::State& state) {
  const Profile& profile = Restaurant().store.profile(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DistinctProfileTokens(profile));
  }
}
BENCHMARK(BM_DistinctProfileTokens);

void BM_TokenBlocking(benchmark::State& state) {
  const ProfileStore& store = Restaurant().store;
  for (auto _ : state) {
    benchmark::DoNotOptimize(TokenBlocking(store));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(store.size()));
}
BENCHMARK(BM_TokenBlocking);

void BM_NeighborListBuild(benchmark::State& state) {
  const ProfileStore& store = Restaurant().store;
  for (auto _ : state) {
    benchmark::DoNotOptimize(NeighborList::BuildSchemaAgnostic(store));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(store.size()));
}
BENCHMARK(BM_NeighborListBuild);

void BM_PositionIndexBuild(benchmark::State& state) {
  const ProfileStore& store = Restaurant().store;
  const NeighborList list = NeighborList::BuildSchemaAgnostic(store);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PositionIndex(list, store.size()));
  }
}
BENCHMARK(BM_PositionIndexBuild);

void BM_LeCoBI(benchmark::State& state) {
  const ProfileStore& store = MoviesSample().store;
  static const BlockCollection blocks = TokenBlocking(store);
  static const ProfileIndex index(blocks, store.size());
  ProfileId a = 0, b = static_cast<ProfileId>(store.split_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.LeastCommonBlock(a, b));
    a = (a + 7) % store.split_index();
    b = store.split_index() +
        (b + 13) % static_cast<ProfileId>(store.source2_size());
  }
}
BENCHMARK(BM_LeCoBI);

void BM_ArcsEdgeWeight(benchmark::State& state) {
  const ProfileStore& store = MoviesSample().store;
  static const BlockCollection blocks = TokenBlocking(store);
  static const ProfileIndex index(blocks, store.size());
  static const EdgeWeighter weighter(blocks, index, store,
                                     WeightingScheme::kArcs);
  ProfileId a = 0, b = static_cast<ProfileId>(store.split_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(weighter.Weight(a, b));
    a = (a + 7) % store.split_index();
    b = store.split_index() +
        (b + 13) % static_cast<ProfileId>(store.source2_size());
  }
}
BENCHMARK(BM_ArcsEdgeWeight);

void BM_EditDistanceMatch(benchmark::State& state) {
  const ProfileStore& store = Restaurant().store;
  static const EditDistanceMatch match(store);
  ProfileId a = 0, b = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(match.Similarity(a, b));
    a = (a + 3) % store.size();
    b = (b + 11) % store.size();
  }
}
BENCHMARK(BM_EditDistanceMatch);

void BM_JaccardMatch(benchmark::State& state) {
  const ProfileStore& store = Restaurant().store;
  static const JaccardMatch match(store);
  ProfileId a = 0, b = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(match.Similarity(a, b));
    a = (a + 3) % store.size();
    b = (b + 11) % store.size();
  }
}
BENCHMARK(BM_JaccardMatch);

}  // namespace

BENCHMARK_MAIN();
