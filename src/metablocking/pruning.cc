#include "metablocking/pruning.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace sper {

namespace {
void SortByPair(std::vector<Comparison>& edges) {
  std::sort(edges.begin(), edges.end(),
            [](const Comparison& a, const Comparison& b) {
              if (a.i != b.i) return a.i < b.i;
              return a.j < b.j;
            });
}
}  // namespace

std::vector<Comparison> WeightEdgePruning(const BlockingGraph& graph) {
  const double threshold = graph.MeanEdgeWeight();
  std::vector<Comparison> kept;
  for (const Comparison& e : graph.edges()) {
    if (e.weight >= threshold) kept.push_back(e);
  }
  SortByPair(kept);
  return kept;
}

std::vector<Comparison> CardinalityNodePruning(const BlockingGraph& graph) {
  if (graph.num_nodes() == 0) return {};

  // Adjacency: node -> incident edges (index into graph.edges()).
  std::unordered_map<ProfileId, std::vector<std::size_t>> incident;
  for (std::size_t idx = 0; idx < graph.edges().size(); ++idx) {
    const Comparison& e = graph.edges()[idx];
    incident[e.i].push_back(idx);
    incident[e.j].push_back(idx);
  }

  const double avg_degree = 2.0 * static_cast<double>(graph.num_edges()) /
                            static_cast<double>(graph.num_nodes());
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(avg_degree / 2.0)));

  std::unordered_set<std::size_t> survivors;
  for (auto& [node, edge_ids] : incident) {
    const std::size_t keep = std::min(k, edge_ids.size());
    std::partial_sort(edge_ids.begin(), edge_ids.begin() + keep,
                      edge_ids.end(), [&](std::size_t a, std::size_t b) {
                        return ByWeightDesc()(graph.edges()[a],
                                              graph.edges()[b]);
                      });
    for (std::size_t x = 0; x < keep; ++x) survivors.insert(edge_ids[x]);
  }

  std::vector<Comparison> kept;
  kept.reserve(survivors.size());
  for (std::size_t idx : survivors) kept.push_back(graph.edges()[idx]);
  SortByPair(kept);
  return kept;
}

}  // namespace sper
