#ifndef SPER_CORE_STORE_PARTITION_H_
#define SPER_CORE_STORE_PARTITION_H_

#include <cstdint>
#include <vector>

#include "core/profile_store.h"
#include "core/types.h"

/// \file store_partition.h
/// Hash-partitioning of a ProfileStore into shard-local stores — the data
/// layer of sharded serving (ROADMAP "Sharded serving"). Each shard is a
/// self-contained ProfileStore with dense *local* ids plus the translation
/// table back to the original ids, so one ProgressiveEngine can run per
/// shard and its emissions can be expressed in global ids again.

namespace sper {

/// Platform-stable 64-bit mix (splitmix64 finalizer). Used instead of
/// std::hash so shard assignment is identical on every standard library.
inline std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The shard a profile id belongs to under hash partitioning.
inline std::size_t ShardOf(ProfileId id, std::size_t num_shards) {
  if (num_shards <= 1) return 0;
  return static_cast<std::size_t>(SplitMix64(id) % num_shards);
}

/// One shard of a partitioned store: a shard-local ProfileStore (dense
/// local ids, same ErType as the parent) plus the local->global id map.
struct StoreShard {
  ProfileStore store;
  /// to_global[local_id] == original id in the parent store. Ascending
  /// within each source range, so local i < j implies global i < j for
  /// every comparable pair.
  std::vector<ProfileId> to_global;
};

/// Hash-partitions `store` into `num_shards` shard-local stores.
///
/// Profiles are assigned by ShardOf(global id) and kept in ascending
/// global-id order inside each shard. Clean-Clean source boundaries are
/// preserved: a shard's store is built from the shard's source-1 and
/// source-2 subsets, so its split_index and IsComparable semantics match
/// the parent's. Shards may be empty. For num_shards == 1 the single
/// shard is an exact copy of `store` with the identity id map.
std::vector<StoreShard> PartitionStore(const ProfileStore& store,
                                       std::size_t num_shards);

}  // namespace sper

#endif  // SPER_CORE_STORE_PARTITION_H_
