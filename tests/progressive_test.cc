// Unit tests for src/progressive: per-method behaviour on small
// hand-checkable inputs, ComparisonList, the workflow helper and batch ER.

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <unordered_set>
#include <vector>

#include "progressive/batch.h"
#include "progressive/comparison_list.h"
#include "progressive/top_k.h"
#include "progressive/gs_psn.h"
#include "progressive/ls_psn.h"
#include "progressive/pbs.h"
#include "progressive/pps.h"
#include "progressive/psn.h"
#include "progressive/sa_psab.h"
#include "progressive/sa_psn.h"
#include "progressive/workflow.h"

namespace sper {
namespace {

using Pair = std::pair<ProfileId, ProfileId>;

NeighborListOptions NoShuffle() {
  NeighborListOptions options;
  options.shuffle_ties = false;
  return options;
}

std::vector<Comparison> DrainAll(ProgressiveEmitter& emitter,
                                 std::size_t limit = 100000) {
  std::vector<Comparison> out;
  while (out.size() < limit) {
    std::optional<Comparison> c = emitter.Next();
    if (!c.has_value()) break;
    out.push_back(*c);
  }
  return out;
}

std::set<Pair> DistinctPairs(const std::vector<Comparison>& comparisons) {
  std::set<Pair> out;
  for (const Comparison& c : comparisons) out.emplace(c.i, c.j);
  return out;
}

ProfileStore TinyDirty() {
  std::vector<Profile> ps(4);
  ps[0].AddAttribute("v", "alpha beta");
  ps[1].AddAttribute("v", "alpha beta");
  ps[2].AddAttribute("v", "beta gamma");
  ps[3].AddAttribute("v", "delta");
  return ProfileStore::MakeDirty(std::move(ps));
}

ProfileStore TinyCleanClean() {
  std::vector<Profile> s1(2), s2(2);
  s1[0].AddAttribute("v", "alpha beta");
  s1[1].AddAttribute("v", "gamma");
  s2[0].AddAttribute("v", "alpha beta");
  s2[1].AddAttribute("v", "gamma delta");
  return ProfileStore::MakeCleanClean(std::move(s1), std::move(s2));
}

// --------------------------------------------------------- ComparisonList

TEST(ComparisonListTest, PopsInDescendingWeight) {
  ComparisonList list;
  list.Add(Comparison(0, 1, 0.5));
  list.Add(Comparison(0, 2, 0.9));
  list.Add(Comparison(1, 2, 0.7));
  list.SortDescending();
  EXPECT_EQ(list.remaining(), 3u);
  EXPECT_DOUBLE_EQ(list.PopFirst().weight, 0.9);
  EXPECT_DOUBLE_EQ(list.PopFirst().weight, 0.7);
  EXPECT_DOUBLE_EQ(list.PopFirst().weight, 0.5);
  EXPECT_TRUE(list.Empty());
}

TEST(ComparisonListTest, ClearResetsState) {
  ComparisonList list;
  list.Add(Comparison(0, 1, 1.0));
  list.SortDescending();
  list.Clear();
  EXPECT_TRUE(list.Empty());
  EXPECT_EQ(list.remaining(), 0u);
}

TEST(ComparisonListTest, FillFromAscendingReversesInsteadOfSorting) {
  const std::vector<Comparison> ascending = {
      Comparison(0, 3, 0.1), Comparison(1, 2, 0.5), Comparison(0, 1, 0.9)};
  ComparisonList list;
  list.Add(Comparison(7, 8, 42.0));  // replaced by the fill
  list.FillFromAscending(ascending);
  EXPECT_EQ(list.remaining(), 3u);
  EXPECT_DOUBLE_EQ(list.PopFirst().weight, 0.9);
  EXPECT_DOUBLE_EQ(list.PopFirst().weight, 0.5);
  EXPECT_DOUBLE_EQ(list.PopFirst().weight, 0.1);
  EXPECT_TRUE(list.Empty());
}

TEST(ComparisonListTest, AppendFromConcatenatesRemainingItems) {
  ComparisonList batch;
  batch.Add(Comparison(0, 1, 0.9));
  batch.Add(Comparison(0, 2, 0.8));
  batch.SortDescending();
  batch.PopFirst();  // already-popped items must not be re-appended

  ComparisonList list;
  list.Add(Comparison(4, 5, 0.95));
  list.AppendFrom(batch);
  EXPECT_EQ(list.remaining(), 2u);
  EXPECT_DOUBLE_EQ(list.PopFirst().weight, 0.95);
  EXPECT_DOUBLE_EQ(list.PopFirst().weight, 0.8);
}

// ------------------------------------------------------------- TopKBuffer

TEST(TopKBufferTest, KeepsTheKBestInAscendingOrder) {
  TopKBuffer topk;
  topk.Reset(3);
  // Push enough to force several nth_element prunes (prune at 2k = 6).
  for (int v = 0; v < 20; ++v) {
    topk.Push(Comparison(0, static_cast<ProfileId>(v + 1), 0.05 * v));
  }
  std::span<const Comparison> kept = topk.SortedAscending();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_DOUBLE_EQ(kept[0].weight, 0.05 * 17);
  EXPECT_DOUBLE_EQ(kept[1].weight, 0.05 * 18);
  EXPECT_DOUBLE_EQ(kept[2].weight, 0.05 * 19);
}

TEST(TopKBufferTest, TiesResolveByIdsLikeByWeightDesc) {
  TopKBuffer topk;
  topk.Reset(2);
  topk.Push(Comparison(5, 6, 1.0));
  topk.Push(Comparison(1, 2, 1.0));
  topk.Push(Comparison(3, 4, 1.0));
  std::span<const Comparison> kept = topk.SortedAscending();
  ASSERT_EQ(kept.size(), 2u);
  // ByWeightDesc ranks equal weights by ascending ids: (1,2) then (3,4).
  EXPECT_EQ(kept[0].i, 3u);  // ascending = worst kept first
  EXPECT_EQ(kept[1].i, 1u);
}

TEST(TopKBufferTest, UnboundedAndZeroAndReuse) {
  TopKBuffer topk;
  topk.Reset(SIZE_MAX);  // Same Eventual Quality: nothing truncated
  for (int v = 0; v < 100; ++v) {
    topk.Push(Comparison(0, static_cast<ProfileId>(v + 1), 1.0 * v));
  }
  EXPECT_EQ(topk.SortedAscending().size(), 100u);

  topk.Reset(0);  // keep nothing
  topk.Push(Comparison(0, 1, 1.0));
  EXPECT_TRUE(topk.SortedAscending().empty());

  topk.Reset(5);  // reuse after both extremes
  topk.Push(Comparison(0, 1, 1.0));
  EXPECT_EQ(topk.SortedAscending().size(), 1u);
}

// ------------------------------------------------------------------- PSN

TEST(PsnTest, EmptyKeysExhaustImmediately) {
  ProfileStore store = TinyDirty();
  PsnEmitter psn(store, [](const Profile&) { return std::string(); });
  EXPECT_FALSE(psn.Next().has_value());
}

TEST(PsnTest, EmitsEachPairAtItsKeyDistance) {
  ProfileStore store = TinyDirty();
  // Keys: p0 "a", p1 "a", p2 "b", p3 "c" -> list [0, 1, 2, 3].
  PsnEmitter psn(store, [](const Profile& p) {
    return std::string(p.ValueOf("v").substr(0, 1));
  }, NoShuffle());
  std::vector<Comparison> all = DrainAll(psn);
  ASSERT_EQ(all.size(), 6u);  // C(4,2), no repeats for 1 placement each
  EXPECT_EQ(DistinctPairs(all).size(), 6u);
  EXPECT_EQ((Pair{all[0].i, all[0].j}), (Pair{0, 1}));
}

// ---------------------------------------------------------------- SA-PSN

TEST(SaPsnTest, DirtySkipsSameProfileAdjacency) {
  ProfileStore store = TinyDirty();
  SaPsnEmitter emitter(store, NoShuffle());
  // NL: alpha(0,1), beta(0,1,2), delta(3), gamma(2):
  // [0,1,0,1,2,3,2]; window 1 skips nothing here except (2,3)(3,2) valid...
  std::vector<Comparison> all = DrainAll(emitter);
  for (const Comparison& c : all) EXPECT_NE(c.i, c.j);
  EXPECT_FALSE(all.empty());
}

TEST(SaPsnTest, CleanCleanEmitsOnlyCrossSourcePairs) {
  ProfileStore store = TinyCleanClean();
  SaPsnEmitter emitter(store, NoShuffle());
  std::vector<Comparison> all = DrainAll(emitter);
  ASSERT_FALSE(all.empty());
  for (const Comparison& c : all) {
    EXPECT_TRUE(store.IsComparable(c.i, c.j))
        << "(" << c.i << "," << c.j << ")";
  }
}

TEST(SaPsnTest, ExhaustionCoversAllValidPairsOfTheList) {
  // Same Eventual Quality: with the window growing to the list size,
  // every comparable pair placed in the NL is eventually emitted.
  ProfileStore store = TinyDirty();
  SaPsnEmitter emitter(store, NoShuffle());
  std::set<Pair> distinct = DistinctPairs(DrainAll(emitter));
  EXPECT_EQ(distinct.size(), 6u);  // all C(4,2) pairs
}

// --------------------------------------------------------------- SA-PSAB

TEST(SaPsabTest, EmitsLeafNodesBeforeRoots) {
  std::vector<Profile> ps(4);
  ps[0].AddAttribute("v", "gain");
  ps[1].AddAttribute("v", "pain");
  ps[2].AddAttribute("v", "join");
  ps[3].AddAttribute("v", "coin");
  ProfileStore store = ProfileStore::MakeDirty(std::move(ps));
  SuffixForestOptions options;
  options.lmin = 2;
  SaPsabEmitter emitter(store, options);
  std::vector<Comparison> all = DrainAll(emitter);
  // "ain" (0,1), "oin" (2,3), then all 6 pairs of "in".
  ASSERT_EQ(all.size(), 8u);
  EXPECT_EQ((Pair{all[0].i, all[0].j}), (Pair{0, 1}));
  EXPECT_EQ((Pair{all[1].i, all[1].j}), (Pair{2, 3}));
  // The child pairs reappear under the root (repeats are not filtered).
  EXPECT_EQ(DistinctPairs(all).size(), 6u);
}

TEST(SaPsabTest, CleanCleanEmitsOnlyCrossSourcePairs) {
  ProfileStore store = TinyCleanClean();
  SaPsabEmitter emitter(store);
  for (const Comparison& c : DrainAll(emitter)) {
    EXPECT_TRUE(store.IsComparable(c.i, c.j));
  }
}

// ---------------------------------------------------------------- LS-PSN

TEST(LsPsnTest, WeightsAreNonIncreasingWithinAWindow) {
  ProfileStore store = TinyDirty();
  LsPsnEmitter emitter(store, NoShuffle());
  double previous = 1e300;
  std::size_t window = emitter.window();
  while (true) {
    std::optional<Comparison> c = emitter.Next();
    if (!c.has_value()) break;
    if (emitter.window() != window) {
      window = emitter.window();
      previous = 1e300;
    }
    EXPECT_LE(c->weight, previous);
    previous = c->weight;
  }
}

TEST(LsPsnTest, CleanCleanRestrictsToCrossSource) {
  ProfileStore store = TinyCleanClean();
  LsPsnEmitter emitter(store, NoShuffle());
  std::vector<Comparison> all = DrainAll(emitter);
  ASSERT_FALSE(all.empty());
  for (const Comparison& c : all) {
    EXPECT_TRUE(store.IsComparable(c.i, c.j));
  }
}

TEST(LsPsnTest, PerfectCoOccurrenceDominatesTheWindow) {
  // p0 and p1 have identical token sets. Their deterministic NL is
  // [0,1,0,1,2,2]: the pair is adjacent at positions (0,1), (1,2) and
  // (2,3), so freq = 3 > |PI| overlap and RCF = 3/(2+2-3) = 3. The RCF of
  // Algorithm 1 is intentionally unbounded above 1 — adjacency across run
  // boundaries counts too — what matters is the relative order.
  std::vector<Profile> ps(3);
  ps[0].AddAttribute("v", "aa bb");
  ps[1].AddAttribute("v", "aa bb");
  ps[2].AddAttribute("v", "zz yy");
  ProfileStore store = ProfileStore::MakeDirty(std::move(ps));
  LsPsnEmitter emitter(store, NoShuffle());
  std::optional<Comparison> first = emitter.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ((Pair{first->i, first->j}), (Pair{0, 1}));
  EXPECT_DOUBLE_EQ(first->weight, 3.0);
}

// ---------------------------------------------------------------- GS-PSN

TEST(GsPsnTest, EmitsNoRepeatedComparisons) {
  GsPsnOptions options;
  options.wmax = 5;
  options.list = NoShuffle();
  ProfileStore store = TinyDirty();
  GsPsnEmitter emitter(store, options);
  std::vector<Comparison> all = DrainAll(emitter);
  EXPECT_EQ(DistinctPairs(all).size(), all.size());
}

TEST(GsPsnTest, WeightsAreGloballyNonIncreasing) {
  GsPsnOptions options;
  options.wmax = 4;
  options.list = NoShuffle();
  ProfileStore store = TinyDirty();
  GsPsnEmitter emitter(store, options);
  double previous = 1e300;
  for (const Comparison& c : DrainAll(emitter)) {
    EXPECT_LE(c.weight, previous);
    previous = c.weight;
  }
}

TEST(GsPsnTest, WmaxBoundsTheReach) {
  // With wmax = 1 only window-1 co-occurrences are considered.
  GsPsnOptions narrow;
  narrow.wmax = 1;
  narrow.list = NoShuffle();
  ProfileStore store = TinyDirty();
  GsPsnEmitter emitter_narrow(store, narrow);
  const std::size_t narrow_count = DrainAll(emitter_narrow).size();

  GsPsnOptions wide;
  wide.wmax = 6;
  wide.list = NoShuffle();
  GsPsnEmitter emitter_wide(store, wide);
  const std::size_t wide_count = DrainAll(emitter_wide).size();
  EXPECT_LT(narrow_count, wide_count);
}

TEST(GsPsnTest, TotalComparisonsReportsListSize) {
  GsPsnOptions options;
  options.wmax = 3;
  options.list = NoShuffle();
  ProfileStore store = TinyDirty();
  GsPsnEmitter emitter(store, options);
  EXPECT_EQ(emitter.total_comparisons(), DrainAll(emitter).size());
}

// ------------------------------------------------------------------- PBS

TEST(PbsTest, EmitsEveryDistinctBlockComparisonExactlyOnce) {
  ProfileStore store = TinyDirty();
  BlockCollection blocks = TokenBlocking(store);
  PbsEmitter pbs(store, blocks);
  std::vector<Comparison> all = DrainAll(pbs);
  std::vector<Comparison> batch = DistinctBlockComparisons(blocks, store);
  EXPECT_EQ(all.size(), batch.size());
  EXPECT_EQ(DistinctPairs(all), DistinctPairs(batch));
}

TEST(PbsTest, BlocksAreProcessedInCardinalityOrder) {
  ProfileStore store = TinyDirty();
  BlockCollection blocks = TokenBlocking(store);
  PbsEmitter pbs(store, blocks);
  const BlockCollection& scheduled = pbs.scheduled_blocks();
  for (BlockId id = 1; id < scheduled.size(); ++id) {
    EXPECT_LE(scheduled.Cardinality(id - 1), scheduled.Cardinality(id));
  }
}

TEST(PbsTest, CleanCleanEmitsOnlyCrossSourcePairs) {
  ProfileStore store = TinyCleanClean();
  BlockCollection blocks = TokenBlocking(store);
  PbsEmitter pbs(store, blocks);
  for (const Comparison& c : DrainAll(pbs)) {
    EXPECT_TRUE(store.IsComparable(c.i, c.j));
  }
}

TEST(PbsTest, EmptyBlockCollectionExhaustsImmediately) {
  ProfileStore store = TinyDirty();
  BlockCollection empty(ErType::kDirty, store.split_index());
  PbsEmitter pbs(store, empty);
  EXPECT_FALSE(pbs.Next().has_value());
}

// ------------------------------------------------------------------- PPS

TEST(PpsTest, UnboundedKmaxCoversEveryGraphEdge) {
  ProfileStore store = TinyDirty();
  BlockCollection blocks = TokenBlocking(store);
  PpsOptions options;
  options.kmax = static_cast<std::size_t>(-1);
  PpsEmitter pps(store, blocks, options);
  std::set<Pair> emitted = DistinctPairs(DrainAll(pps));
  std::set<Pair> batch =
      DistinctPairs(DistinctBlockComparisons(blocks, store));
  EXPECT_EQ(emitted, batch);
}

TEST(PpsTest, SmallKmaxTruncatesNeighborhoods) {
  ProfileStore store = TinyDirty();
  BlockCollection blocks = TokenBlocking(store);
  PpsOptions options;
  options.kmax = 1;
  PpsEmitter pps(store, blocks, options);
  std::set<Pair> emitted = DistinctPairs(DrainAll(pps));
  std::set<Pair> batch =
      DistinctPairs(DistinctBlockComparisons(blocks, store));
  EXPECT_LE(emitted.size(), batch.size());
  EXPECT_FALSE(emitted.empty());
}

TEST(PpsTest, SortedProfileListIsNonIncreasing) {
  ProfileStore store = TinyDirty();
  BlockCollection blocks = TokenBlocking(store);
  PpsEmitter pps(store, blocks);
  const auto& sorted = pps.sorted_profiles();
  for (std::size_t k = 1; k < sorted.size(); ++k) {
    EXPECT_GE(sorted[k - 1].second, sorted[k].second);
  }
}

TEST(PpsTest, CleanCleanEmitsOnlyCrossSourcePairs) {
  ProfileStore store = TinyCleanClean();
  BlockCollection blocks = TokenBlocking(store);
  PpsEmitter pps(store, blocks);
  for (const Comparison& c : DrainAll(pps)) {
    EXPECT_TRUE(store.IsComparable(c.i, c.j));
  }
}

// ------------------------------------------------------- Workflow / batch

TEST(WorkflowTest, AppliesPurgingAndFiltering) {
  // 20 profiles share the stop token; only pairs also share "k<i>".
  std::vector<Profile> ps(20);
  for (std::size_t i = 0; i < 20; ++i) {
    ps[i].AddAttribute("v", "stopword k" + std::to_string(i / 2));
  }
  ProfileStore store = ProfileStore::MakeDirty(std::move(ps));
  TokenWorkflowOptions options;  // purge > 10% of 20 -> "stopword" dies
  BlockCollection blocks = BuildTokenWorkflowBlocks(store, options);
  for (BlockId id = 0; id < blocks.size(); ++id) {
    EXPECT_NE(blocks.key(id), "stopword");
  }
  EXPECT_EQ(blocks.size(), 10u);  // k0..k9 pair blocks survive
}

TEST(WorkflowTest, StepsCanBeDisabled) {
  std::vector<Profile> ps(20);
  for (std::size_t i = 0; i < 20; ++i) {
    ps[i].AddAttribute("v", "stopword k" + std::to_string(i / 2));
  }
  ProfileStore store = ProfileStore::MakeDirty(std::move(ps));
  TokenWorkflowOptions options;
  options.enable_purging = false;
  options.enable_filtering = false;
  BlockCollection blocks = BuildTokenWorkflowBlocks(store, options);
  bool has_stopword = false;
  for (BlockId id = 0; id < blocks.size(); ++id) {
    if (blocks.key(id) == "stopword") has_stopword = true;
  }
  EXPECT_TRUE(has_stopword);
}

TEST(BatchTest, DistinctComparisonsReportsEachPairOnce) {
  ProfileStore store = TinyDirty();
  BlockCollection blocks = TokenBlocking(store);
  std::vector<Comparison> batch = DistinctBlockComparisons(blocks, store);
  std::unordered_set<std::uint64_t> seen;
  for (const Comparison& c : batch) {
    EXPECT_TRUE(seen.insert(PairKey(c.i, c.j)).second);
  }
  EXPECT_EQ(CountDistinctComparisons(blocks, store), batch.size());
}

}  // namespace
}  // namespace sper
