// ResolverSession serving bench: what does request batching cost on top
// of the raw emission stream? Two paths per batch size, both draining the
// same resolver configuration:
//
//   drain_unbatched   the reference: one Next() loop over the whole
//                     (budgeted) stream — no admission, no slicing;
//   session_batched   a ResolverSession serving ResolveRequest{budget=B,
//                     max_batch=B} slices until the stream or the global
//                     budget runs out — the pay-as-you-go serving shape.
//
// Both paths emit the bit-identical comparison stream (concatenated
// session slices == the un-batched drain); the bench folds every emission
// into an FNV-1a digest and fails (exit 1) on any divergence. The gap
// between the paths is the per-request cost of ticketed FIFO admission —
// it amortizes with B, so batch=1 is the worst case and batch>=256 is
// expected to be within noise of the raw drain.
//
//   bench_resolver_session [--scale=S] [--dataset=NAME] [--method=M]
//                          [--repeat=R] [--threads=T] [--shards=N]
//                          [--lookahead=L] [--budget=N]
//                          [--batch=B1,B2,...] [--json=PATH]
//
// --json emits {dataset, scale, threads, shards, lookahead, batch_size,
// path, wall_ms, speedup} records (schema: bench/BENCH.md); speedup is
// unbatched/batched at the same configuration, batch_size is 0 for the
// un-batched baseline rows. Each session_batched record additionally
// carries per-request latency observations (queue_wait_p50_us /
// queue_wait_p99_us / service_p50_us / service_p99_us) from one separate
// telemetry-instrumented run — the timed runs stay telemetry-free, and
// the instrumented stream is digest-checked against the reference.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "datagen/datagen.h"
#include "engine/resolver.h"
#include "eval/table.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/telemetry.h"

namespace {

using namespace sper;

double Millis(const obs::Stopwatch& watch) {
  return watch.ElapsedSeconds() * 1000.0;
}

using sper::bench::DrainResult;

/// Times one drain: `batch == 0` is the un-batched Next() reference,
/// `batch > 0` serves the stream in session slices of that size.
DrainResult RunOnce(const ProfileStore& store,
                    const ResolverOptions& options, std::size_t batch) {
  std::unique_ptr<Resolver> resolver =
      sper::bench::CreateResolverOrDie(store, options);
  DrainResult result;
  const obs::Stopwatch start;
  if (batch == 0) {
    while (std::optional<Comparison> c = resolver->Next()) {
      result.Fold(*c);
    }
  } else {
    ResolverSession session = resolver->OpenSession();
    for (;;) {
      ResolveResult slice = session.Resolve({batch, batch});
      for (const Comparison& c : slice.comparisons) result.Fold(c);
      if (slice.comparisons.empty() || slice.budget_exhausted ||
          slice.stream_exhausted) {
        break;
      }
    }
    result.requests = session.requests_served();
  }
  result.wall_ms = Millis(start);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  int repeat = 3;
  std::string dataset_name = "dbpedia";
  std::string method_name = "pps";
  std::string json_path;
  ResolverOptions options;
  options.num_threads = 8;
  std::vector<std::size_t> batches = {1, 256, 4096};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--dataset=", 10) == 0) {
      dataset_name = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--method=", 9) == 0) {
      method_name = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      repeat = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      options.num_threads = std::strtoul(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      options.num_shards = std::strtoul(argv[i] + 9, nullptr, 10);
    } else if (std::strncmp(argv[i], "--lookahead=", 12) == 0) {
      options.lookahead = std::strtoul(argv[i] + 12, nullptr, 10);
    } else if (std::strncmp(argv[i], "--budget=", 9) == 0) {
      options.budget = std::strtoull(argv[i] + 9, nullptr, 10);
    } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
      batches = sper::bench::ParseSizeList(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::printf(
          "usage: %s [--scale=S] [--dataset=NAME] [--method=M] "
          "[--repeat=R] [--threads=T] [--shards=N] [--lookahead=L] "
          "[--budget=N] [--batch=B1,B2,...] [--json=PATH]\n",
          argv[0]);
      return 2;
    }
  }

  const std::optional<MethodId> method = ParseMethodId(method_name);
  if (!method.has_value()) {
    std::fprintf(stderr, "unknown method '%s'\n", method_name.c_str());
    return 2;
  }
  options.method = *method;
  DatagenOptions gen;
  gen.scale = scale;
  Result<DatasetBundle> dataset = GenerateDataset(dataset_name, gen);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const ProfileStore& store = dataset.value().store;
  std::printf("dataset %s: %zu profiles (scale %.2f, %s), method %s, "
              "threads %zu, shards %zu, lookahead %zu, budget %llu, "
              "hardware threads %u\n",
              dataset.value().name.c_str(), store.size(), scale,
              ToString(store.er_type()),
              std::string(ToString(*method)).c_str(), options.num_threads,
              options.num_shards, options.lookahead,
              static_cast<unsigned long long>(options.budget),
              std::thread::hardware_concurrency());

  DrainResult unbatched;
  for (int r = 0; r < repeat; ++r) {
    DrainResult run = RunOnce(store, options, 0);
    if (r == 0 || run.wall_ms < unbatched.wall_ms) unbatched = run;
  }

  std::vector<sper::bench::JsonRecord> records;
  records.push_back({dataset.value().name, scale, options.num_threads,
                     "drain_unbatched", unbatched.wall_ms, 1.0,
                     options.num_shards, options.lookahead, 0});
  TextTable table({"batch", "requests", "emitted", "drain (ms)", "speedup",
                   "digest"});
  table.AddRow({"unbatched", "-", std::to_string(unbatched.emitted),
                FormatDouble(unbatched.wall_ms, 1), "1.00x", "reference"});

  bool ok = true;
  for (std::size_t batch : batches) {
    if (batch == 0) continue;
    DrainResult batched;
    for (int r = 0; r < repeat; ++r) {
      DrainResult run = RunOnce(store, options, batch);
      if (r == 0 || run.wall_ms < batched.wall_ms) batched = run;
    }
    const bool match = batched.SameStream(unbatched);
    ok = ok && match;
    const double speedup =
        batched.wall_ms > 0 ? unbatched.wall_ms / batched.wall_ms : 0.0;
    table.AddRow({std::to_string(batch), std::to_string(batched.requests),
                  std::to_string(batched.emitted),
                  FormatDouble(batched.wall_ms, 1),
                  FormatDouble(speedup, 2) + "x",
                  match ? "match" : "MISMATCH"});
    sper::bench::JsonRecord record{dataset.value().name, scale,
                                   options.num_threads, "session_batched",
                                   batched.wall_ms, speedup,
                                   options.num_shards, options.lookahead,
                                   batch};

    // One separate instrumented run per batch size: the timed runs above
    // stay telemetry-free, this one collects the per-request latency
    // distributions (and re-checks the digest — telemetry must not
    // perturb the served stream).
    obs::Registry registry;
    ResolverOptions instrumented = options;
    instrumented.telemetry = obs::TelemetryScope(&registry);
    DrainResult obs_run = RunOnce(store, instrumented, batch);
    ok = ok && obs_run.SameStream(unbatched);
    const auto quantiles_us = [&registry](const char* name, double out[2]) {
      const obs::Histogram* h = registry.FindHistogram(name);
      const obs::HistogramSnapshot snap =
          h != nullptr ? h->Snapshot() : obs::HistogramSnapshot{};
      out[0] = static_cast<double>(snap.p50) / 1000.0;
      out[1] = static_cast<double>(snap.p99) / 1000.0;
    };
    double queue_wait[2];
    double service[2];
    quantiles_us("session.queue_wait_ns", queue_wait);
    quantiles_us("session.service_ns", service);
    record.extras.emplace_back("queue_wait_p50_us", queue_wait[0]);
    record.extras.emplace_back("queue_wait_p99_us", queue_wait[1]);
    record.extras.emplace_back("service_p50_us", service[0]);
    record.extras.emplace_back("service_p99_us", service[1]);
    records.push_back(std::move(record));
  }
  table.Print();
  std::printf("\ndigest = FNV-1a over every emitted (i, j, weight); "
              "\"match\" means the concatenated\nsession slices are "
              "bit-identical to the un-batched drain.\n");

  if (!json_path.empty() &&
      !sper::bench::WriteJsonRecords(json_path, records)) {
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: session slices diverged from the un-batched drain\n");
    return 1;
  }
  return 0;
}
