#ifndef SPER_PARALLEL_ORDERED_MERGE_H_
#define SPER_PARALLEL_ORDERED_MERGE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

/// \file ordered_merge.h
/// Deterministic k-way merge of pull-based streams — the streaming
/// counterpart of AccumulateOrdered (parallel_for.h). Where
/// AccumulateOrdered concatenates finished per-chunk vectors in chunk
/// order, KWayMerge interleaves *live* streams: at every step it emits the
/// best current head under a strict weak order, breaking exact ties by
/// stream index. The output therefore depends only on the stream contents
/// and the comparator — never on timing — which is what sharded serving's
/// global emission order rests on.

namespace sper {

/// Greedy best-head merge of K pull-based streams.
///
/// Each stream is a callable `std::optional<T>()` (the ProgressiveEmitter
/// Next() shape). Streams need not be globally sorted: the merge emits, at
/// each step, the best head among the K current heads under `Compare`
/// (strict "a before b"). For streams that *are* sorted this is the
/// classic k-way ordered merge. Ties between heads go to the
/// lowest-indexed stream, so the merge is deterministic for any inputs.
///
/// Heads are pulled lazily: no stream is touched before the first Next().
template <typename T, typename Compare = std::less<T>>
class KWayMerge {
 public:
  using Stream = std::function<std::optional<T>()>;

  explicit KWayMerge(Compare compare = Compare())
      : compare_(std::move(compare)) {}

  /// Registers one more stream. Must not be called after Next().
  void AddStream(Stream stream) {
    streams_.push_back(std::move(stream));
    draws_.push_back(0);
  }

  /// Number of registered streams.
  std::size_t num_streams() const { return streams_.size(); }

  /// How many heads each stream has contributed so far, by stream index
  /// (telemetry: per-shard draw balance).
  const std::vector<std::uint64_t>& draw_counts() const { return draws_; }

  /// Stream index of the last emitted head; num_streams() before the
  /// first successful Next().
  std::size_t last_stream() const {
    return last_stream_ == kNoStream ? streams_.size() : last_stream_;
  }

  /// The best head among all streams, or nullopt once every stream is
  /// exhausted. Consuming a head refills it from its own stream only.
  /// O(log K) per call: heads live in a binary heap keyed on (Compare,
  /// stream index) — a total order, since indices are unique, so the pop
  /// sequence is deterministic whatever the heap's internal layout.
  std::optional<T> Next() {
    if (!primed_) {
      heap_.reserve(streams_.size());
      for (std::size_t k = 0; k < streams_.size(); ++k) {
        std::optional<T> head = streams_[k]();
        if (head.has_value()) heap_.push_back({std::move(*head), k});
      }
      std::make_heap(heap_.begin(), heap_.end(), HeapLess{compare_});
      primed_ = true;
    }
    if (heap_.empty()) return std::nullopt;
    std::pop_heap(heap_.begin(), heap_.end(), HeapLess{compare_});
    Entry best = std::move(heap_.back());
    heap_.pop_back();
    ++draws_[best.stream];
    last_stream_ = best.stream;
    std::optional<T> refill = streams_[best.stream]();
    if (refill.has_value()) {
      heap_.push_back({std::move(*refill), best.stream});
      std::push_heap(heap_.begin(), heap_.end(), HeapLess{compare_});
    }
    return std::move(best.value);
  }

 private:
  struct Entry {
    T value;
    std::size_t stream;
  };

  /// std::*_heap is a max-heap: "a < b" must mean "b pops first". b pops
  /// first when it compares before a, or ties with a but has the lower
  /// stream index.
  struct HeapLess {
    const Compare& compare;
    bool operator()(const Entry& a, const Entry& b) const {
      if (compare(b.value, a.value)) return true;
      if (compare(a.value, b.value)) return false;
      return b.stream < a.stream;
    }
  };

  static constexpr std::size_t kNoStream = static_cast<std::size_t>(-1);

  Compare compare_;
  std::vector<Stream> streams_;
  std::vector<Entry> heap_;
  std::vector<std::uint64_t> draws_;
  std::size_t last_stream_ = kNoStream;
  bool primed_ = false;
};

}  // namespace sper

#endif  // SPER_PARALLEL_ORDERED_MERGE_H_
