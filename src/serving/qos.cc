#include "serving/qos.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "core/macros.h"
#include "obs/fault_injection.h"

namespace sper {
namespace serving {

Status QosOptions::Validate() const {
  bool any_weight = false;
  for (std::uint32_t w : weights) any_weight |= (w != 0);
  if (!any_weight) {
    return Status::InvalidArgument(
        "at least one QoS priority weight must be positive");
  }
  if (client_rate < 0.0) {
    return Status::InvalidArgument("client_rate must be >= 0");
  }
  if (client_rate > 0.0 && client_burst < 1.0) {
    return Status::InvalidArgument(
        "client_burst must be >= 1 when rate limiting is enabled");
  }
  if (retry_after_base_ms == 0) {
    return Status::InvalidArgument("retry_after_base_ms must be > 0");
  }
  if (retry_after_cap_ms < retry_after_base_ms) {
    return Status::InvalidArgument(
        "retry_after_cap_ms must be >= retry_after_base_ms");
  }
  return Status::Ok();
}

QosAdmissionController::QosAdmissionController(Resolver& resolver,
                                               QosOptions options)
    : resolver_(resolver),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : obs::MonotonicClock::Default()),
      wrr_(options_.weights) {
  SPER_CHECK(options_.Validate().ok());
  const obs::TelemetryScope& scope = options_.telemetry;
  if (scope.enabled()) {
    for (std::size_t i = 0; i < kNumPriorities; ++i) {
      const std::string cls(ToString(static_cast<Priority>(i)));
      admitted_metric_[i] = scope.counter("qos." + cls + ".admitted");
      sheds_metric_[i] = scope.counter("qos." + cls + ".sheds");
      evictions_metric_[i] = scope.counter("qos." + cls + ".evictions");
      queue_wait_metric_[i] = scope.histogram("qos." + cls + ".queue_wait_ns");
    }
    queue_depth_metric_ = scope.gauge("qos.queue_depth");
    rate_limited_metric_ = scope.counter("qos.rate_limited");
  }
}

std::uint64_t QosAdmissionController::EstimatedWaitNs(
    std::size_t ahead) const {
  return static_cast<std::uint64_t>(ahead) * ewma_service_ns_;
}

std::uint64_t QosAdmissionController::BackoffMs(
    std::uint32_t consecutive_sheds) const {
  // Shift capped well under 64 so the hint cannot overflow before the cap
  // is applied.
  const std::uint32_t shift =
      consecutive_sheds > 0
          ? std::min<std::uint32_t>(consecutive_sheds - 1, 20)
          : 0;
  return std::min(options_.retry_after_base_ms << shift,
                  options_.retry_after_cap_ms);
}

ResolveResult QosAdmissionController::ShedLocked(ClientId client,
                                                 Priority priority,
                                                 std::string reason,
                                                 std::uint64_t bucket_wait_ms) {
  // The caller created the client entry before deciding to shed.
  ClientState& state = clients_.find(client)->second;
  const std::uint32_t consecutive = ++state.consecutive_sheds;

  ResolveResult result;
  result.outcome = ResolveOutcome::kShed;
  result.retry_after_ms = std::max(bucket_wait_ms, BackoffMs(consecutive));
  result.status = Status::ResourceExhausted(std::move(reason));

  const auto lane = static_cast<std::size_t>(priority);
  ++stats_[lane].sheds;
  if (sheds_metric_[lane] != nullptr) sheds_metric_[lane]->Add();
  return result;
}

void QosAdmissionController::DispatchNextLocked() {
  if (paused_ || in_service_) return;
  const std::uint64_t now = clock_->NowNanos();
  for (;;) {
    std::array<bool, kNumPriorities> eligible;
    bool any = false;
    for (std::size_t i = 0; i < kNumPriorities; ++i) {
      eligible[i] = !lanes_[i].empty();
      any = any || eligible[i];
    }
    if (!any) return;

    const std::size_t lane = wrr_.Pick(eligible);
    Waiter* head = lanes_[lane].front();
    lanes_[lane].pop_front();
    --queued_total_;
    stats_[lane].queued = lanes_[lane].size();
    if (queue_depth_metric_ != nullptr) {
      queue_depth_metric_->Set(static_cast<double>(queued_total_));
    }

    // Doomed at its own dispatch instant: the deadline passed while the
    // request was queued, so serving it would spend a resolver ticket on
    // a guaranteed-empty slice. Fast-fail and give the lane's turn to the
    // next pick instead. (The WRR balance was already charged — an
    // evicted head still counts as its lane's turn.)
    if (options_.shed_enabled && options_.evict_doomed &&
        head->deadline_ns != 0 && head->deadline_ns <= now) {
      head->evicted = true;
      ++stats_[lane].evictions;
      if (evictions_metric_[lane] != nullptr) evictions_metric_[lane]->Add();
      cv_.NotifyAll();
      continue;
    }

    head->selected = true;
    in_service_ = true;
    ++stats_[lane].admitted;
    if (admitted_metric_[lane] != nullptr) admitted_metric_[lane]->Add();
    if (queue_wait_metric_[lane] != nullptr) {
      queue_wait_metric_[lane]->Record(now - head->enqueue_ns);
    }
    cv_.NotifyAll();
    return;
  }
}

ResolveResult QosAdmissionController::Resolve(const ResolveRequest& request) {
  SPER_FAULT_HIT("qos.admit");
  const auto lane = static_cast<std::size_t>(request.priority);
  Waiter waiter;
  ResolveResult shed_result;
  bool shed = false;
  bool evicted_on_arrival = false;

  {
    MutexLock lock(mutex_);
    const std::uint64_t now = clock_->NowNanos();

    ClientState& client =
        clients_
            .try_emplace(request.client_id,
                         ClientState{TokenBucket(options_.client_rate,
                                                 options_.client_burst, now),
                                     0})
            .first->second;

    // 1. Per-client rate limit.
    if (!client.bucket.TryAcquire(1.0, now)) {
      const std::uint64_t bucket_ms = client.bucket.RetryAfterMs(1.0, now);
      if (rate_limited_metric_ != nullptr) rate_limited_metric_->Add();
      shed_result = ShedLocked(request.client_id, request.priority,
                               "client rate limit exceeded", bucket_ms);
      shed = true;
    }

    // 2. Queue-bound load shedding.
    if (!shed && options_.shed_enabled) {
      const std::size_t ahead = queued_total_ + (in_service_ ? 1 : 0);
      if (options_.max_queue_depth > 0 &&
          queued_total_ >= options_.max_queue_depth) {
        shed_result =
            ShedLocked(request.client_id, request.priority,
                       "admission queue full (depth " +
                           std::to_string(queued_total_) + ")",
                       0);
        shed = true;
      } else if (options_.max_queue_wait_ms > 0 &&
                 EstimatedWaitNs(ahead) >
                     options_.max_queue_wait_ms * 1000000ull) {
        shed_result = ShedLocked(request.client_id, request.priority,
                                 "estimated queue wait exceeds bound", 0);
        shed = true;
      }
    }

    if (!shed) {
      waiter.enqueue_ns = now;
      waiter.deadline_ns = request.deadline_ms > 0
                               ? now + request.deadline_ms * 1000000ull
                               : 0;

      // 4. Doomed on arrival: the estimated service start already lies
      // past the request's deadline — fail fast instead of queueing work
      // that cannot be served in time.
      if (options_.shed_enabled && options_.evict_doomed &&
          waiter.deadline_ns != 0) {
        const std::size_t ahead = queued_total_ + (in_service_ ? 1 : 0);
        if (now + EstimatedWaitNs(ahead) > waiter.deadline_ns) {
          evicted_on_arrival = true;
          ++stats_[lane].evictions;
          if (evictions_metric_[lane] != nullptr) {
            evictions_metric_[lane]->Add();
          }
        }
      }

      if (!evicted_on_arrival) {
        client.consecutive_sheds = 0;
        lanes_[lane].push_back(&waiter);
        ++queued_total_;
        stats_[lane].queued = lanes_[lane].size();
        if (queue_depth_metric_ != nullptr) {
          queue_depth_metric_->Set(static_cast<double>(queued_total_));
        }
        // 3. WRR dispatch (possibly selecting this very waiter).
        DispatchNextLocked();
        while (!waiter.selected && !waiter.evicted) cv_.Wait(lock);
      }
    }
  }

  if (shed) {
    SPER_FAULT_HIT("qos.shed");
    return shed_result;
  }
  if (evicted_on_arrival || waiter.evicted) {
    SPER_FAULT_HIT("qos.evict");
    ResolveResult result;
    result.outcome = ResolveOutcome::kEvicted;
    return result;
  }

  // Selected: this thread owns the resolver until its serve completes.
  // The resolver measures deadline_ms from ITS arrival, but this request
  // has already been waiting — pass only the remaining budget through.
  ResolveRequest dispatched = request;
  const std::uint64_t start_ns = clock_->NowNanos();
  if (request.deadline_ms > 0) {
    const std::uint64_t waited_ms =
        (start_ns - waiter.enqueue_ns) / 1000000ull;
    if (waited_ms < request.deadline_ms) {
      dispatched.deadline_ms = request.deadline_ms - waited_ms;
    } else {
      // Expired in the lane (reachable only with eviction off): dispatch
      // under an already-fired deadline token so the resolver cuts it
      // deterministically — admitted, empty slice, stream intact.
      dispatched.deadline_ms = 0;
      dispatched.cancel =
          request.cancel.WithDeadline(std::chrono::nanoseconds(0));
    }
  }
  ResolveResult result = resolver_.Serve(dispatched);
  const std::uint64_t service_ns = clock_->NowNanos() - start_ns;

  {
    MutexLock lock(mutex_);
    ewma_service_ns_ = ewma_service_ns_ == 0
                           ? service_ns
                           : (3 * ewma_service_ns_ + service_ns) / 4;
    in_service_ = false;
    DispatchNextLocked();
  }
  return result;
}

ClassStats QosAdmissionController::stats(Priority priority) const {
  MutexLock lock(mutex_);
  return stats_[static_cast<std::size_t>(priority)];
}

std::size_t QosAdmissionController::queue_depth() const {
  MutexLock lock(mutex_);
  return queued_total_;
}

void QosAdmissionController::PrimeServiceEstimate(std::uint64_t service_ns) {
  MutexLock lock(mutex_);
  ewma_service_ns_ = service_ns;
}

void QosAdmissionController::SetDispatchPaused(bool paused) {
  MutexLock lock(mutex_);
  paused_ = paused;
  if (!paused_) DispatchNextLocked();
}

}  // namespace serving
}  // namespace sper
