#include "blocking/block_filtering.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/types.h"
#include "parallel/parallel_for.h"

namespace sper {

BlockCollection BlockFiltering(const BlockCollection& input,
                               const BlockFilteringOptions& options) {
  // Pass 1: collect, per profile, the blocks it appears in. Profile ids
  // are dense, so a plain vector indexed by id suffices; the membership
  // scan streams over the CSR member array once.
  ProfileId num_profiles = 0;
  for (ProfileId p : input.all_members()) {
    num_profiles = std::max(num_profiles, p + 1);
  }
  std::vector<std::vector<BlockId>> profile_blocks(num_profiles);
  for (BlockId b = 0; b < input.size(); ++b) {
    for (ProfileId p : input.members(b)) {
      profile_blocks[p].push_back(b);
    }
  }

  // Pass 2 (parallel over profiles): rank each profile's blocks by size
  // (ties on block id for determinism), keep the ceil(ratio*|B_i|)
  // smallest, and leave the survivors sorted by id for the membership
  // test of pass 3. Each profile owns its slot — no shared writes.
  ParallelFor(num_profiles, options.num_threads, [&](std::size_t p) {
    std::vector<BlockId>& blocks = profile_blocks[p];
    std::sort(blocks.begin(), blocks.end(), [&](BlockId a, BlockId b) {
      const std::size_t sa = input.block_size(a);
      const std::size_t sb = input.block_size(b);
      if (sa != sb) return sa < sb;
      return a < b;
    });
    const std::size_t retained = static_cast<std::size_t>(
        std::ceil(options.ratio * static_cast<double>(blocks.size())));
    if (retained < blocks.size()) blocks.resize(retained);
    std::sort(blocks.begin(), blocks.end());
  });

  // Pass 3 (parallel over blocks): rebuild every block with only the
  // retained memberships, then append the survivors in block-id order.
  std::vector<std::vector<ProfileId>> filtered(input.size());
  ParallelFor(input.size(), options.num_threads, [&](std::size_t b) {
    for (ProfileId p : input.members(static_cast<BlockId>(b))) {
      if (std::binary_search(profile_blocks[p].begin(),
                             profile_blocks[p].end(),
                             static_cast<BlockId>(b))) {
        filtered[b].push_back(p);
      }
    }
  });

  std::vector<std::uint64_t> cardinalities(input.size(), 0);
  std::size_t kept_blocks = 0, kept_members = 0, kept_key_bytes = 0;
  for (BlockId b = 0; b < input.size(); ++b) {
    cardinalities[b] = input.ComputeCardinality(filtered[b]);
    if (cardinalities[b] == 0) continue;
    ++kept_blocks;
    kept_members += filtered[b].size();
    kept_key_bytes += input.key(b).size();
  }
  BlockCollection out(input.er_type(), input.split_index());
  out.Reserve(kept_blocks, kept_members, kept_key_bytes);
  for (BlockId b = 0; b < input.size(); ++b) {
    if (cardinalities[b] == 0) continue;
    out.Add(input.key(b), filtered[b]);
  }
  return out;
}

}  // namespace sper
