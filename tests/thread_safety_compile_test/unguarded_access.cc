// Positive fixture for run_compile_check.sh: mutates a GUARDED_BY field
// without its mutex. Clang's thread-safety analysis MUST reject this
// translation unit; if it compiles, the analysis is off and the harness
// fails the build.

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace {

class Account {
 public:
  // BUG (deliberate): writes balance_ without holding mutex_.
  void RacyDeposit(int amount) { balance_ += amount; }

 private:
  sper::Mutex mutex_;
  int balance_ SPER_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.RacyDeposit(1);
  return 0;
}
