#include "progressive/pps.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "parallel/parallel_for.h"

namespace sper {

namespace {

/// Algorithm 5's per-node facts, computed independently per profile.
struct NodeInit {
  double likelihood = 0.0;
  Comparison top;
  bool has_neighbors = false;
};

}  // namespace

PpsEmitter::PpsEmitter(const ProfileStore& store, BlockCollection blocks,
                       const PpsOptions& options)
    : store_(store),
      blocks_(std::move(blocks)),
      index_(blocks_, store.size()),
      weighter_(blocks_, index_, store, options.scheme,
                options.num_threads, options.telemetry),
      options_(options),
      checked_(store.size(), false),
      weights_(store.size(), 0.0) {
  obs::ScopedPhase phase(options_.telemetry, "profile_scheduling");
  touched_.reserve(store.size());
  // Algorithm 5: one pass over every node's neighborhood computes the
  // duplication likelihood (mean incident-edge weight) and the node's
  // top-weighted comparison. Nodes are independent, so the pass runs over
  // static profile chunks with per-chunk accumulators; results land in a
  // per-node slot and are reduced below in id order, making the outcome
  // identical at every thread count.
  std::vector<NodeInit> nodes(store_.size());
  ParallelForChunks(
      store_.size(), options_.num_threads,
      [&](std::size_t /*chunk*/, IndexRange range) {
        // Dense dirty-array accumulator per chunk: peak memory is
        // 8 B * |P| per thread, traded for hash-free O(1) accumulation
        // on the hottest loop of the whole initialization. Size
        // num_threads accordingly on huge stores.
        std::vector<double> weights(store_.size(), 0.0);
        std::vector<ProfileId> touched;
        touched.reserve(store_.size());
        const bool clean_clean = blocks_.er_type() == ErType::kCleanClean;
        for (std::size_t idx = range.begin; idx < range.end; ++idx) {
          const ProfileId i = static_cast<ProfileId>(idx);
          // Algorithm 5 line 10, partition-aware: Clean-Clean scans only
          // the opposite-source range of each block (no comparability
          // branch); Dirty keeps only the j != i check.
          if (clean_clean) {
            for (BlockId b : index_.BlocksOf(i)) {
              const double share = weighter_.BlockContribution(b);
              for (ProfileId j : blocks_.OppositeSource(b, i)) {
                if (weights[j] == 0.0) touched.push_back(j);
                weights[j] += share;
              }
            }
          } else {
            for (BlockId b : index_.BlocksOf(i)) {
              const double share = weighter_.BlockContribution(b);
              for (ProfileId j : blocks_.members(b)) {
                if (j == i) continue;
                if (weights[j] == 0.0) touched.push_back(j);
                weights[j] += share;
              }
            }
          }
          if (touched.empty()) continue;

          double likelihood_sum = 0.0;
          Comparison top;
          bool has_top = false;
          for (ProfileId j : touched) {
            const double w = weighter_.Finalize(i, j, weights[j]);
            likelihood_sum += w;
            const Comparison candidate(i, j, w);
            if (!has_top || ByWeightDesc()(candidate, top)) {
              top = candidate;
              has_top = true;
            }
            weights[j] = 0.0;
          }
          nodes[i].likelihood =
              likelihood_sum / static_cast<double>(touched.size());
          nodes[i].top = top;
          nodes[i].has_neighbors = true;
          touched.clear();
        }
      });

  std::vector<Comparison> top_comparisons;
  for (ProfileId i = 0; i < store_.size(); ++i) {
    if (!nodes[i].has_neighbors) continue;
    sorted_profiles_.emplace_back(i, nodes[i].likelihood);
    top_comparisons.push_back(nodes[i].top);
  }
  // topComparisonsSet: a set, so the same pair contributed from both
  // endpoints is stored once. Dedup by the canonical pair key with a
  // stable sort + unique (first-encountered survives, as with a hash
  // set's first insert) — deliberately not an unordered container, whose
  // iteration order would otherwise feed the initial list
  // (tools/lint_determinism.py rule unordered-iteration).
  std::stable_sort(top_comparisons.begin(), top_comparisons.end(),
                   [](const Comparison& a, const Comparison& b) {
                     return PairKey(a.i, a.j) < PairKey(b.i, b.j);
                   });
  top_comparisons.erase(
      std::unique(top_comparisons.begin(), top_comparisons.end(),
                  [](const Comparison& a, const Comparison& b) {
                    return PairKey(a.i, a.j) == PairKey(b.i, b.j);
                  }),
      top_comparisons.end());

  // Sort profiles by decreasing duplication likelihood (deterministic tie
  // on id) and the initial Comparison List by decreasing weight.
  std::sort(sorted_profiles_.begin(), sorted_profiles_.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  initial_.Reserve(top_comparisons.size());
  for (const Comparison& comparison : top_comparisons) {
    initial_.Add(comparison);
  }
  initial_.SortDescending();
}

void PpsEmitter::ProcessProfile(ProfileId i, ComparisonList& out) {
  checked_[i] = true;
  // Gather unchecked comparable neighbors (Algorithm 6 lines 9-14): a
  // neighbor that was processed earlier had higher duplication likelihood,
  // and its Kmax best comparisons already covered this pair with more
  // reliable evidence. Partition-aware like the init pass; checked_[i] is
  // set above, so the Dirty scan needs no separate j != i test.
  if (blocks_.er_type() == ErType::kCleanClean) {
    for (BlockId b : index_.BlocksOf(i)) {
      const double share = weighter_.BlockContribution(b);
      for (ProfileId j : blocks_.OppositeSource(b, i)) {
        if (checked_[j]) continue;
        if (weights_[j] == 0.0) touched_.push_back(j);
        weights_[j] += share;
      }
    }
  } else {
    for (BlockId b : index_.BlocksOf(i)) {
      const double share = weighter_.BlockContribution(b);
      for (ProfileId j : blocks_.members(b)) {
        if (checked_[j]) continue;
        if (weights_[j] == 0.0) touched_.push_back(j);
        weights_[j] += share;
      }
    }
  }

  // SortedStack (lines 15-18): the reusable bounded top-k buffer keeps
  // the Kmax top-weighted comparisons without a per-refill heap
  // allocation; its ascending drain is reversed into the list (ByWeightDesc
  // is total, so the result is bit-identical to the min-heap reference).
  topk_.Reset(options_.kmax);
  for (ProfileId j : touched_) {
    const double w = weighter_.Finalize(i, j, weights_[j]);
    topk_.Push(Comparison(i, j, w));
    weights_[j] = 0.0;
  }
  touched_.clear();
  out.FillFromAscending(topk_.SortedAscending());
}

bool PpsEmitter::ProduceBatch(ComparisonList& out) {
  for (;;) {
    if (initial_pending_) {
      initial_pending_ = false;
      out = std::move(initial_);
    } else if (cursor_ >= sorted_profiles_.size()) {
      return false;
    } else {
      ProcessProfile(sorted_profiles_[cursor_++].first, out);
    }
    if (!out.Empty()) return true;
  }
}

std::optional<Comparison> PpsEmitter::Next() {
  if (comparisons_.Empty() && !ProduceBatch(comparisons_)) {
    return std::nullopt;
  }
  return comparisons_.PopFirst();
}

}  // namespace sper
