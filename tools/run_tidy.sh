#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# source file under src/, treating warnings as errors.
#
# Requires a compile_commands.json; point SPER_TIDY_BUILD_DIR at a build
# tree configured with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the default;
# see CMakeLists.txt). Without clang-tidy installed the script skips
# loudly and exits 0, so local GCC-only environments stay green — the CI
# static-analysis job is the enforcing run.
#
# Usage: [SPER_TIDY_BUILD_DIR=build] tools/run_tidy.sh [extra args...]
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${SPER_TIDY_BUILD_DIR:-$repo_root/build}"

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "SKIP: $tidy not installed; install clang-tidy or rely on the CI" \
       "static-analysis job" >&2
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "error: $build_dir/compile_commands.json not found." >&2
  echo "Configure first: cmake -B \"$build_dir\" -S \"$repo_root\"" >&2
  echo "(CMAKE_EXPORT_COMPILE_COMMANDS is on by default.)" >&2
  exit 2
fi

# Every .cc under src/ that the compile database knows about. Headers are
# covered through HeaderFilterRegex.
mapfile -t sources < <(find "$repo_root/src" -name '*.cc' | sort)
if [ "${#sources[@]}" -eq 0 ]; then
  echo "error: no sources under $repo_root/src" >&2
  exit 2
fi

echo "clang-tidy over ${#sources[@]} files (build dir: $build_dir)"
failed=0
for source in "${sources[@]}"; do
  if ! "$tidy" -p "$build_dir" --quiet --warnings-as-errors='*' "$@" \
       "$source"; then
    failed=1
  fi
done

if [ "$failed" -ne 0 ]; then
  echo "clang-tidy: violations found" >&2
  exit 1
fi
echo "clang-tidy: clean"
exit 0
