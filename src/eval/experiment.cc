#include "eval/experiment.h"

#include "core/macros.h"
#include "progressive/gs_psn.h"
#include "progressive/ls_psn.h"
#include "progressive/pbs.h"
#include "progressive/pps.h"
#include "progressive/psn.h"
#include "progressive/sa_psab.h"
#include "progressive/sa_psn.h"

namespace sper {

std::string_view ToString(MethodId id) {
  switch (id) {
    case MethodId::kPsn:
      return "PSN";
    case MethodId::kSaPsn:
      return "SA-PSN";
    case MethodId::kSaPsab:
      return "SA-PSAB";
    case MethodId::kLsPsn:
      return "LS-PSN";
    case MethodId::kGsPsn:
      return "GS-PSN";
    case MethodId::kPbs:
      return "PBS";
    case MethodId::kPps:
      return "PPS";
  }
  return "?";
}

std::unique_ptr<ProgressiveEmitter> MakeEmitter(MethodId id,
                                                const DatasetBundle& dataset,
                                                const MethodConfig& config) {
  const ProfileStore& store = dataset.store;
  switch (id) {
    case MethodId::kPsn:
      if (!dataset.psn_key) return nullptr;
      return std::make_unique<PsnEmitter>(store, dataset.psn_key,
                                          config.list);
    case MethodId::kSaPsn:
      return std::make_unique<SaPsnEmitter>(store, config.list);
    case MethodId::kSaPsab:
      return std::make_unique<SaPsabEmitter>(store, config.suffix);
    case MethodId::kLsPsn:
      return std::make_unique<LsPsnEmitter>(store, config.list);
    case MethodId::kGsPsn: {
      GsPsnOptions options;
      options.wmax = config.gs_wmax;
      options.list = config.list;
      return std::make_unique<GsPsnEmitter>(store, options);
    }
    case MethodId::kPbs: {
      // Initialization includes the whole Token Blocking Workflow, as in
      // the paper's initialization-time accounting (Sec. 7, "Metrics").
      BlockCollection blocks = BuildTokenWorkflowBlocks(store,
                                                        config.workflow);
      PbsOptions options;
      options.scheme = config.scheme;
      return std::make_unique<PbsEmitter>(store, blocks, options);
    }
    case MethodId::kPps: {
      BlockCollection blocks = BuildTokenWorkflowBlocks(store,
                                                        config.workflow);
      PpsOptions options;
      options.scheme = config.scheme;
      options.kmax = config.pps_kmax;
      return std::make_unique<PpsEmitter>(store, blocks, options);
    }
  }
  SPER_CHECK(false && "unknown method");
  return nullptr;
}

const std::vector<MethodId>& StructuredMethodSet() {
  static const std::vector<MethodId> methods = {
      MethodId::kPsn,   MethodId::kSaPsn, MethodId::kSaPsab,
      MethodId::kLsPsn, MethodId::kGsPsn, MethodId::kPbs,
      MethodId::kPps};
  return methods;
}

const std::vector<MethodId>& HeterogeneousMethodSet() {
  static const std::vector<MethodId> methods = {
      MethodId::kSaPsn, MethodId::kSaPsab, MethodId::kLsPsn,
      MethodId::kGsPsn, MethodId::kPbs,    MethodId::kPps};
  return methods;
}

}  // namespace sper
