#include "blocking/token_blocking.h"

#include <algorithm>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "parallel/parallel_for.h"

namespace sper {

namespace {

using PostingsMap = std::unordered_map<std::string, std::vector<ProfileId>>;

/// Sequential reference build: profiles in id order, each contributing its
/// distinct tokens, so postings arrive sorted and duplicate-free.
PostingsMap BuildPostingsSequential(const ProfileStore& store,
                                    const TokenBlockingOptions& options) {
  PostingsMap postings;
  postings.reserve(store.size() * 4);
  for (const Profile& p : store.profiles()) {
    for (std::string& token : DistinctProfileTokens(p, options.tokenizer)) {
      postings[std::move(token)].push_back(p.id());
    }
  }
  return postings;
}

/// One tokenized (token, profile) membership headed for a shard map.
struct TokenEntry {
  std::string token;
  ProfileId profile = kInvalidProfile;
};

/// Parallel sharded build. Phase 1 tokenizes profiles in parallel (static
/// profile chunks) and routes every token by hash into a per-(chunk,
/// shard) bucket. Phase 2 builds the per-shard postings maps
/// concurrently; shard s drains buckets [0][s], [1][s], ... in chunk
/// order, so profiles arrive in id order and its postings are sorted and
/// duplicate-free exactly like the sequential build's. Each bucket is
/// written by one chunk thread and read by one shard thread (with a
/// barrier between phases) — no shared mutation, and no rescanning of
/// other shards' tokens. Shard assignment affects only which map holds a
/// token, never the final collection: the caller merges all shards
/// through one global lexicographic key sort.
std::vector<PostingsMap> BuildPostingsSharded(
    const ProfileStore& store, const TokenBlockingOptions& options) {
  const std::size_t n = store.size();
  const std::size_t num_shards = options.num_threads;
  const std::size_t num_chunks = StaticChunks(n, options.num_threads).size();

  std::vector<std::vector<std::vector<TokenEntry>>> buckets(
      num_chunks, std::vector<std::vector<TokenEntry>>(num_shards));
  ParallelForChunks(
      n, options.num_threads, [&](std::size_t chunk, IndexRange range) {
        std::vector<std::vector<TokenEntry>>& mine = buckets[chunk];
        for (std::size_t i = range.begin; i < range.end; ++i) {
          for (std::string& token : DistinctProfileTokens(
                   store.profile(static_cast<ProfileId>(i)),
                   options.tokenizer)) {
            const std::size_t s =
                std::hash<std::string>{}(token) % num_shards;
            mine[s].push_back(
                {std::move(token), static_cast<ProfileId>(i)});
          }
        }
      });

  std::vector<PostingsMap> shards(num_shards);
  ParallelFor(num_shards, options.num_threads, [&](std::size_t s) {
    PostingsMap& shard = shards[s];
    std::size_t total = 0;
    for (std::size_t c = 0; c < num_chunks; ++c) total += buckets[c][s].size();
    shard.reserve(total);
    for (std::size_t c = 0; c < num_chunks; ++c) {
      for (TokenEntry& entry : buckets[c][s]) {
        shard[std::move(entry.token)].push_back(entry.profile);
      }
    }
  });
  return shards;
}

}  // namespace

BlockCollection TokenBlocking(const ProfileStore& store,
                              const TokenBlockingOptions& options) {
  std::vector<PostingsMap> shards;
  if (options.num_threads > 1) {
    shards = BuildPostingsSharded(store, options);
  } else {
    shards.push_back(BuildPostingsSequential(store, options));
  }

  // Deterministic block order: sort all keys lexicographically across
  // shards. Every token lives in exactly one shard, so keys are unique.
  // The hash-order iteration below never reaches the output — the global
  // key sort re-establishes a total order (allowlisted in
  // tools/determinism_allowlist.txt).
  struct KeyRef {
    const std::string* key;
    const std::vector<ProfileId>* ids;
  };
  std::vector<KeyRef> keys;
  std::size_t total = 0;
  for (const PostingsMap& shard : shards) total += shard.size();
  keys.reserve(total);
  for (const PostingsMap& shard : shards) {
    for (const auto& [token, ids] : shard) keys.push_back({&token, &ids});
  }
  std::sort(keys.begin(), keys.end(),
            [](const KeyRef& a, const KeyRef& b) { return *a.key < *b.key; });

  // Emit straight into the CSR collection: size the flat arrays from the
  // surviving postings, then append in key order — no intermediate
  // per-block structures beyond the postings lists themselves.
  BlockCollection collection(store.er_type(), store.split_index());
  std::vector<std::uint64_t> cardinalities(keys.size(), 0);
  std::size_t kept_blocks = 0, kept_members = 0, kept_key_bytes = 0;
  for (std::size_t k = 0; k < keys.size(); ++k) {
    cardinalities[k] = collection.ComputeCardinality(*keys[k].ids);
    if (cardinalities[k] == 0) continue;
    ++kept_blocks;
    kept_members += keys[k].ids->size();
    kept_key_bytes += keys[k].key->size();
  }
  collection.Reserve(kept_blocks, kept_members, kept_key_bytes);
  for (std::size_t k = 0; k < keys.size(); ++k) {
    if (cardinalities[k] == 0) continue;
    collection.Add(*keys[k].key, *keys[k].ids);
  }
  return collection;
}

}  // namespace sper
