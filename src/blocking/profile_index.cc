#include "blocking/profile_index.h"

namespace sper {

ProfileIndex::ProfileIndex(const BlockCollection& blocks,
                           std::size_t num_profiles) {
  offsets_.assign(num_profiles + 1, 0);
  // One streaming pass over the CSR member array counts memberships;
  // block boundaries are irrelevant for the histogram.
  for (ProfileId p : blocks.all_members()) ++offsets_[p + 1];
  for (std::size_t i = 1; i <= num_profiles; ++i) {
    offsets_[i] += offsets_[i - 1];
  }
  flat_.resize(offsets_[num_profiles]);
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (BlockId id = 0; id < blocks.size(); ++id) {
    for (ProfileId p : blocks.members(id)) {
      flat_[cursor[p]++] = id;
    }
  }
}

BlockId ProfileIndex::LeastCommonBlock(ProfileId a, ProfileId b) const {
  std::span<const BlockId> la = BlocksOf(a);
  std::span<const BlockId> lb = BlocksOf(b);
  std::size_t x = 0, y = 0;
  while (x < la.size() && y < lb.size()) {
    if (la[x] < lb[y]) {
      ++x;
    } else if (lb[y] < la[x]) {
      ++y;
    } else {
      return la[x];
    }
  }
  return kInvalidBlock;
}

std::size_t ProfileIndex::CountCommonBlocks(ProfileId a, ProfileId b) const {
  std::size_t count = 0;
  ForEachCommonBlock(a, b, [&count](BlockId) { ++count; });
  return count;
}

}  // namespace sper
