#ifndef SPER_METABLOCKING_NEIGHBORHOOD_H_
#define SPER_METABLOCKING_NEIGHBORHOOD_H_

#include <vector>

#include "blocking/block_collection.h"
#include "blocking/profile_index.h"
#include "core/profile_store.h"
#include "core/types.h"

/// \file neighborhood.h
/// Sparse accumulation over a profile's blocking-graph neighborhood: the
/// classic meta-blocking "dirty array + touched list" pattern. Visiting
/// profile i costs O(Σ_{b ∈ B_i} |b|) with no hashing and no allocation
/// after the first use.

namespace sper {

/// Reusable accumulator for per-neighbor weights of one profile at a time.
class NeighborhoodAccumulator {
 public:
  explicit NeighborhoodAccumulator(std::size_t num_profiles)
      : acc_(num_profiles, 0.0) {}

  /// Accumulates `contribution(b)` into every comparable co-occurring
  /// profile of `i` across all blocks of `i`, then invokes
  /// `fn(j, accumulated)` once per distinct neighbor and resets itself.
  /// `contribution` maps a BlockId to its additive share (e.g. 1/||b||
  /// for ARCS, 1 for count-based schemes).
  template <typename ContributionFn, typename Fn>
  void Gather(ProfileId i, const BlockCollection& blocks,
              const ProfileIndex& index, const ProfileStore& store,
              ContributionFn&& contribution, Fn&& fn) {
    for (BlockId b : index.BlocksOf(i)) {
      const double share = contribution(b);
      for (ProfileId j : blocks.block(b).profiles) {
        if (j == i || !store.IsComparable(i, j)) continue;
        if (acc_[j] == 0.0) touched_.push_back(j);
        acc_[j] += share;
      }
    }
    for (ProfileId j : touched_) {
      fn(j, acc_[j]);
      acc_[j] = 0.0;
    }
    touched_.clear();
  }

 private:
  std::vector<double> acc_;
  std::vector<ProfileId> touched_;
};

}  // namespace sper

#endif  // SPER_METABLOCKING_NEIGHBORHOOD_H_
