#include "core/profile.h"

namespace sper {

std::string_view Profile::ValueOf(std::string_view name) const {
  for (const Attribute& a : attributes_) {
    if (a.name == name) return a.value;
  }
  return {};
}

std::string Profile::ConcatenatedValues() const {
  std::string out;
  std::size_t total = 0;
  for (const Attribute& a : attributes_) total += a.value.size() + 1;
  out.reserve(total);
  for (const Attribute& a : attributes_) {
    if (a.value.empty()) continue;
    if (!out.empty()) out.push_back(' ');
    out += a.value;
  }
  return out;
}

}  // namespace sper
