#include "blocking/block_collection.h"

#include <algorithm>

namespace sper {

std::uint64_t BlockCollection::ComputeCardinality(
    std::span<const ProfileId> members) const {
  if (er_type_ == ErType::kDirty) {
    const std::uint64_t n = members.size();
    return n * (n - 1) / 2;
  }
  const auto first2 =
      std::lower_bound(members.begin(), members.end(), split_index_);
  const std::uint64_t n1 = static_cast<std::uint64_t>(first2 - members.begin());
  const std::uint64_t n2 = members.size() - n1;
  return n1 * n2;
}

BlockId BlockCollection::Add(std::string_view key,
                             std::span<const ProfileId> members) {
  SPER_DCHECK(std::is_sorted(members.begin(), members.end()));
  // One lower_bound per block at build time buys branch-free scans on
  // every later traversal.
  const std::size_t local_split =
      er_type_ == ErType::kDirty
          ? members.size()
          : static_cast<std::size_t>(
                std::lower_bound(members.begin(), members.end(),
                                 split_index_) -
                members.begin());
  const std::uint64_t n = members.size();
  const std::uint64_t n1 = local_split;
  const std::uint64_t n2 = n - n1;
  const std::uint64_t card =
      er_type_ == ErType::kDirty ? n * (n - 1) / 2 : n1 * n2;

  const std::uint64_t begin = members_.size();
  members_.insert(members_.end(), members.begin(), members.end());
  member_offsets_.push_back(members_.size());
  split_offsets_.push_back(begin + local_split);
  key_arena_.append(key);
  key_offsets_.push_back(key_arena_.size());
  cardinalities_.push_back(card);
  aggregate_cardinality_ += card;
  return static_cast<BlockId>(cardinalities_.size() - 1);
}

void BlockCollection::Reserve(std::size_t num_blocks,
                              std::size_t total_members,
                              std::size_t total_key_bytes) {
  members_.reserve(total_members);
  member_offsets_.reserve(num_blocks + 1);
  split_offsets_.reserve(num_blocks);
  key_arena_.reserve(total_key_bytes);
  key_offsets_.reserve(num_blocks + 1);
  cardinalities_.reserve(num_blocks);
}

double BlockCollection::MeanBlockSize() const {
  if (empty()) return 0.0;
  return static_cast<double>(members_.size()) / static_cast<double>(size());
}

}  // namespace sper
