#include <string>
#include <vector>

#include "datagen/corruption.h"
#include "datagen/datagen.h"
#include "datagen/dictionaries.h"
#include "datagen/generator_util.h"
#include "datagen/rng.h"

/// Synthetic `cddb` (Table 2: Dirty ER, 9.8k profiles, 106 attributes,
/// 300 matches, 18.75 name-value pairs).
///
/// Models the freeDB/CDDB audio-CD dumps: a *wide sparse schema* — artist,
/// title, category, genre, year plus up to ~100 numbered track attributes,
/// each disc filling only a dozen of them — and heavily noisy duplicates
/// (re-submitted discs with re-typed track lists). PSN's key is unreliable
/// here: the paper's Fig. 1 shows it below 80% recall even with excessive
/// comparisons.

namespace sper {

namespace {

struct Disc {
  std::string artist;
  std::string title;
  std::string category;
  std::string genre;
  std::string year;
  std::vector<std::string> tracks;
};

Disc MakeDisc(Rng& rng, const std::vector<std::string>& words) {
  Disc disc;
  disc.artist = rng.Pick(words);
  if (rng.Bernoulli(0.5)) disc.artist += " " + rng.Pick(words);
  if (rng.Bernoulli(0.3)) disc.artist = "the " + disc.artist;
  const std::size_t title_len = rng.UniformInt(1, 4);
  for (std::size_t w = 0; w < title_len; ++w) {
    if (w) disc.title += " ";
    disc.title += rng.Pick(words);
  }
  disc.category = rng.Pick(Genres());
  disc.genre = rng.Pick(Genres());
  disc.year = std::to_string(rng.UniformInt(1960, 2005));
  // Most discs have 8-20 tracks; a small tail of compilations runs up to
  // 99, which is what spreads the schema across ~106 attribute names.
  const std::size_t num_tracks = rng.Bernoulli(0.02)
                                     ? rng.UniformInt(21, 99)
                                     : rng.UniformInt(8, 20);
  for (std::size_t t = 0; t < num_tracks; ++t) {
    std::string track;
    const std::size_t track_len = rng.UniformInt(1, 4);
    for (std::size_t w = 0; w < track_len; ++w) {
      if (w) track += " ";
      track += rng.Pick(words);
    }
    disc.tracks.push_back(std::move(track));
  }
  return disc;
}

Profile MakeSubmission(Rng& rng, const Disc& disc, bool corrupted) {
  Disc entry = disc;
  if (corrupted) {
    // Re-typed submissions: "the X" <-> "X, the", typos everywhere,
    // dropped tracks — both character- and token-level noise.
    if (entry.artist.rfind("the ", 0) == 0 && rng.Bernoulli(0.5)) {
      entry.artist = entry.artist.substr(4) + ", the";
    }
    entry.artist = MaybeTypo(rng, entry.artist, 0.25);
    entry.title = MaybeTypo(rng, entry.title, 0.25);
    entry.title = TokenNoise(rng, entry.title,
                             {.drop_rate = 0.15, .swap_rate = 0.1,
                              .abbreviate_rate = 0.0});
    if (rng.Bernoulli(0.25)) entry.genre = rng.Pick(Genres());
    if (rng.Bernoulli(0.2)) {
      entry.year = std::to_string(std::stoul(entry.year) +
                                  (rng.Bernoulli(0.5) ? 1 : -1));
    }
    for (std::string& track : entry.tracks) {
      track = MaybeTypo(rng, track, 0.2);
    }
    // Some tracks missing from the resubmission.
    while (entry.tracks.size() > 4 && rng.Bernoulli(0.25)) {
      entry.tracks.erase(entry.tracks.begin() +
                         static_cast<std::ptrdiff_t>(
                             rng.UniformInt(0, entry.tracks.size() - 1)));
    }
  }

  Profile profile;
  profile.AddAttribute("artist", entry.artist);
  profile.AddAttribute("dtitle", entry.title);
  profile.AddAttribute("category", entry.category);
  if (rng.Bernoulli(0.8)) profile.AddAttribute("genre", entry.genre);
  if (rng.Bernoulli(0.8)) profile.AddAttribute("year", entry.year);
  for (std::size_t t = 0; t < entry.tracks.size(); ++t) {
    profile.AddAttribute("track" + ZeroPad(t + 1, 2), entry.tracks[t]);
  }
  return profile;
}

}  // namespace

DatasetBundle GenerateCddb(const DatagenOptions& options) {
  Rng rng(options.seed * 1000003 + 4);

  // Track/title vocabulary: large enough that most tokens are shared by
  // only a handful of discs (real track titles are close to unique), with
  // the common-word pool as the overlapping "stop-ish" tail.
  std::vector<std::string> words = SyllablePool(rng, 12000);
  for (const std::string& w : CommonWords()) words.push_back(w);

  // 300 clusters of 2 -> 300 matching pairs; 9,163 singletons -> 9,763.
  ClusterPlan plan;
  plan.clusters_of_size = {{2, 300}};
  plan.singletons = 9163;
  plan = plan.Scaled(options.scale);

  std::vector<std::vector<Profile>> clusters;
  for (const auto& [size, count] : plan.clusters_of_size) {
    for (std::size_t c = 0; c < count; ++c) {
      const Disc disc = MakeDisc(rng, words);
      std::vector<Profile> cluster;
      cluster.push_back(MakeSubmission(rng, disc, /*corrupted=*/false));
      for (std::size_t m = 1; m < size; ++m) {
        cluster.push_back(MakeSubmission(rng, disc, /*corrupted=*/true));
      }
      clusters.push_back(std::move(cluster));
    }
  }
  std::vector<Profile> singletons;
  for (std::size_t s = 0; s < plan.singletons; ++s) {
    singletons.push_back(
        MakeSubmission(rng, MakeDisc(rng, words), /*corrupted=*/false));
  }

  DirtyAssembly assembly =
      AssembleDirty(rng, std::move(clusters), std::move(singletons));
  return DatasetBundle{
      "cddb",
      std::move(assembly.store),
      std::move(assembly.truth),
      // Literature-style key: artist prefix + title prefix — brittle under
      // the "the X"/"X, the" and typo noise, as in the paper.
      [](const Profile& p) {
        const std::string artist(p.ValueOf("artist"));
        const std::string title(p.ValueOf("dtitle"));
        if (artist.empty() && title.empty()) return std::string();
        return artist.substr(0, 5) + title.substr(0, std::min<std::size_t>(
                                                         5, title.size()));
      },
      "synthetic CDDB disc submissions; wide sparse schema (106 attrs), "
      "heavy re-typing noise, few duplicates"};
}

}  // namespace sper
