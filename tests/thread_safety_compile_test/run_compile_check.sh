#!/usr/bin/env bash
# Thread-safety analysis compile-check harness.
#
# Proves the annotation layer is live, not decorative:
#   - guarded_access.cc   (correct locking)  MUST compile cleanly;
#   - unguarded_access.cc (a guarded field mutated without the lock)
#     MUST be rejected, with a thread-safety diagnostic.
#
# The analysis is Clang-only; under any other compiler the check exits 77
# (the ctest SKIP_RETURN_CODE), and the CI static-analysis job runs it
# for real with clang++.
#
# Usage: run_compile_check.sh <compiler> <src-include-dir> <fixture-dir>
set -u

if [ "$#" -ne 3 ]; then
  echo "usage: $0 <compiler> <src-include-dir> <fixture-dir>" >&2
  exit 2
fi
compiler="$1"
include_dir="$2"
fixture_dir="$3"

if ! "$compiler" --version 2>/dev/null | grep -qi clang; then
  echo "SKIP: $compiler is not Clang; thread-safety analysis unavailable"
  exit 77
fi

flags="-std=c++20 -fsyntax-only -I$include_dir -Wthread-safety -Werror=thread-safety"

echo "== guarded_access.cc must compile =="
if ! "$compiler" $flags "$fixture_dir/guarded_access.cc"; then
  echo "FAIL: correctly locked fixture was rejected" >&2
  exit 1
fi

echo "== unguarded_access.cc must be rejected =="
diagnostics=$("$compiler" $flags "$fixture_dir/unguarded_access.cc" 2>&1)
status=$?
if [ "$status" -eq 0 ]; then
  echo "FAIL: unguarded access compiled — the analysis is not running" >&2
  exit 1
fi
if ! printf '%s\n' "$diagnostics" | grep -q "thread-safety"; then
  echo "FAIL: rejection was not a thread-safety diagnostic:" >&2
  printf '%s\n' "$diagnostics" >&2
  exit 1
fi

echo "PASS: analysis accepts guarded access and rejects unguarded access"
exit 0
