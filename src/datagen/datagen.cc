#include "datagen/datagen.h"

#include <string>

namespace sper {

const std::vector<std::string>& StructuredDatasetNames() {
  static const std::vector<std::string> names = {"census", "restaurant",
                                                 "cora", "cddb"};
  return names;
}

const std::vector<std::string>& HeterogeneousDatasetNames() {
  static const std::vector<std::string> names = {"movies", "dbpedia",
                                                 "freebase"};
  return names;
}

Result<DatasetBundle> GenerateDataset(std::string_view name,
                                      const DatagenOptions& options) {
  if (name == "census") return GenerateCensus(options);
  if (name == "restaurant") return GenerateRestaurant(options);
  if (name == "cora") return GenerateCora(options);
  if (name == "cddb") return GenerateCddb(options);
  if (name == "movies") return GenerateMovies(options);
  if (name == "dbpedia") return GenerateDbpedia(options);
  if (name == "freebase") return GenerateFreebase(options);
  return Status::NotFound("unknown dataset: " + std::string(name));
}

}  // namespace sper
