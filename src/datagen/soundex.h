#ifndef SPER_DATAGEN_SOUNDEX_H_
#define SPER_DATAGEN_SOUNDEX_H_

#include <string>
#include <string_view>

/// \file soundex.h
/// American Soundex phonetic code. The paper's PSN baseline keys census
/// with "Soundex encoded surnames concatenated to initials and zipcodes"
/// (footnote 6).

namespace sper {

/// The 4-character Soundex code of a word (e.g. "robert" -> "R163").
/// Non-alphabetic characters are ignored; an empty input yields "".
std::string Soundex(std::string_view word);

}  // namespace sper

#endif  // SPER_DATAGEN_SOUNDEX_H_
