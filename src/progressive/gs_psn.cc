#include "progressive/gs_psn.h"

#include <vector>

namespace sper {

GsPsnEmitter::GsPsnEmitter(const ProfileStore& store,
                           const GsPsnOptions& options) {
  const NeighborList list =
      NeighborList::BuildSchemaAgnostic(store, options.list);
  const PositionIndex positions(list, store.size());

  const bool clean_clean = store.er_type() == ErType::kCleanClean;
  const ProfileId outer_end = clean_clean
                                  ? store.split_index()
                                  : static_cast<ProfileId>(store.size());
  const std::size_t n = list.size();

  std::vector<double> freq(store.size(), 0.0);
  std::vector<ProfileId> touched;

  for (ProfileId i = 0; i < outer_end; ++i) {
    auto is_valid = [&](ProfileId j) {
      return clean_clean ? !store.InSource1(j) : j < i;
    };
    // The window loop sits inside the profile loop (Sec. 5.1.2: Algorithm
    // 1's line 1 becomes an iteration over [1, wmax] around lines 8-19),
    // so RCF aggregates co-occurrences across every distance in range.
    for (std::size_t w = 1; w <= options.wmax; ++w) {
      for (std::uint32_t pos : positions.PositionsOf(i)) {
        if (pos + w < n) {
          const ProfileId j = list.at(pos + w);
          if (is_valid(j)) {
            if (freq[j] == 0.0) touched.push_back(j);
            freq[j] += 1.0;
          }
        }
        if (pos >= w) {
          const ProfileId k = list.at(pos - w);
          if (is_valid(k)) {
            if (freq[k] == 0.0) touched.push_back(k);
            freq[k] += 1.0;
          }
        }
      }
    }
    for (ProfileId j : touched) {
      const double weight = RcfWeight(freq[j], positions.NumPositionsOf(i),
                                      positions.NumPositionsOf(j));
      comparisons_.Add(Comparison(i, j, weight));
      freq[j] = 0.0;
    }
    touched.clear();
  }
  comparisons_.SortDescending();
  total_comparisons_ = comparisons_.remaining();
}

std::optional<Comparison> GsPsnEmitter::Next() {
  if (comparisons_.Empty()) return std::nullopt;
  return comparisons_.PopFirst();
}

}  // namespace sper
