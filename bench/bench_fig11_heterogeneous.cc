// Figure 11: recall progressiveness of the schema-agnostic methods over
// the large heterogeneous datasets (movies, dbpedia, freebase). PSN is
// inapplicable (no aligned schema). SA-PSAB runs on movies only: on the
// two web-scale datasets the huge top-layer suffix blocks make it
// unusable, exactly as the paper reports ("SA-PSAB also cannot scale to
// the largest datasets", Sec. 7.2).
//
//   $ ./bench_fig11_heterogeneous [--scale=S] [--ecmax=E]

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace sper;
  using namespace sper::bench;
  const BenchArgs args = ParseArgs(argc, argv);
  const double ecmax = args.ecmax > 0 ? args.ecmax : 30.0;

  std::printf("Figure 11: recall progressiveness over the large, "
              "heterogeneous datasets\n(dbpedia/freebase at the reduced "
              "scale documented in DESIGN.md; --scale rescales)\n");

  const std::vector<double> grid = {0.5, 1, 2, 3, 5, 7, 10, 15, 20, ecmax};
  for (const std::string& name : HeterogeneousDatasetNames()) {
    DatagenOptions gen;
    gen.scale = args.scale;
    Result<DatasetBundle> dataset = GenerateDataset(name, gen);
    if (!dataset.ok()) {
      std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
      return 1;
    }
    EvalOptions options;
    options.ecstar_max = ecmax;
    options.auc_at = {1.0};
    ProgressiveEvaluator evaluator(dataset.value().truth, options);
    MethodConfig config = ConfigFor(name);

    std::vector<RunResult> runs;
    for (MethodId id : HeterogeneousMethodSet()) {
      if (id == MethodId::kSaPsab && name != "movies") continue;
      runs.push_back(evaluator.Run(
          [&] { return MakeResolver(id, dataset.value(), config); }));
    }
    PrintRecallTable(
        name + " (|P1|=" + std::to_string(dataset.value().store.source1_size()) +
            ", |P2|=" + std::to_string(dataset.value().store.source2_size()) +
            ", |D_P|=" + std::to_string(dataset.value().truth.num_matches()) +
            ", GS-PSN wmax=" + std::to_string(config.gs_wmax) + ")",
        grid, runs);
  }

  std::printf(
      "\nExpected shape (paper Sec. 7.2): PPS best on movies and dbpedia;\n"
      "PBS the early leader on freebase, where the similarity-based\n"
      "LS/GS-PSN collapse to SA-PSN level (URI noise defeats sorting).\n");
  return 0;
}
