#ifndef SPER_PROGRESSIVE_COMPARISON_LIST_H_
#define SPER_PROGRESSIVE_COMPARISON_LIST_H_

#include <algorithm>
#include <span>
#include <vector>

#include "core/comparison.h"

/// \file comparison_list.h
/// The Comparison List shared by all advanced methods (paper Sec. 5): a
/// batch of comparisons sorted in non-increasing matching likelihood,
/// consumed front to back and refilled when empty.

namespace sper {

/// Sorted comparison buffer with O(1) pop.
class ComparisonList {
 public:
  /// Appends a comparison to the unsorted tail.
  void Add(const Comparison& c) { items_.push_back(c); }

  /// Pre-allocates for `n` comparisons (refills that know their upper
  /// bound, e.g. a block's cardinality, avoid regrowth).
  void Reserve(std::size_t n) { items_.reserve(n); }

  /// Sorts the whole buffer by descending weight (deterministic ties) and
  /// rewinds the cursor. Call once per refill, after the Adds — the path
  /// for producers with no useful order (PBS blocks, the PPS initial
  /// top-comparison set).
  void SortDescending() {
    std::sort(items_.begin(), items_.end(), ByWeightDesc());
    cursor_ = 0;
  }

  /// Replaces the buffer with `ascending` reversed. The path for
  /// producers whose natural output order is non-decreasing likelihood —
  /// a bounded top-k drain (PPS refills) — already a total order under
  /// ByWeightDesc read backwards, so an O(n) reverse replaces the
  /// O(n log n) re-sort of SortDescending().
  void FillFromAscending(std::span<const Comparison> ascending) {
    items_.assign(ascending.rbegin(), ascending.rend());
    cursor_ = 0;
  }

  /// Appends `other`'s not-yet-popped comparisons to the tail, preserving
  /// their order. The emission pipeline coalesces several small refill
  /// batches into one ring slot this way: consecutive refills are emitted
  /// back to back anyway, so concatenation preserves the serial order.
  void AppendFrom(const ComparisonList& other) {
    items_.insert(items_.end(), other.items_.begin() + other.cursor_,
                  other.items_.end());
  }

  /// True when every buffered comparison has been popped.
  bool Empty() const { return cursor_ >= items_.size(); }

  /// Pops the highest-weighted remaining comparison.
  Comparison PopFirst() { return items_[cursor_++]; }

  /// Drops all content (start of a refill). Capacity is retained, so a
  /// reused list (pipeline ring slots) stops allocating once warm.
  void Clear() {
    items_.clear();
    cursor_ = 0;
  }

  /// Comparisons not yet popped.
  std::size_t remaining() const { return items_.size() - cursor_; }

 private:
  std::vector<Comparison> items_;
  std::size_t cursor_ = 0;
};

}  // namespace sper

#endif  // SPER_PROGRESSIVE_COMPARISON_LIST_H_
