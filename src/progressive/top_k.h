#ifndef SPER_PROGRESSIVE_TOP_K_H_
#define SPER_PROGRESSIVE_TOP_K_H_

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "core/comparison.h"

/// \file top_k.h
/// Reusable bounded top-k accumulator — the allocation-free replacement of
/// the per-refill std::priority_queue in PPS's SortedStack (paper Alg. 6
/// lines 15-18). Candidates append into a flat buffer that is cut back to
/// the k best with nth_element whenever it reaches 2k, so Push is
/// amortized O(1) and the buffer's capacity survives across refills.
/// ByWeightDesc is a total order (ties broken on ids), so the kept set —
/// and therefore the emission order — is bit-identical to the heap-based
/// reference implementation.

namespace sper {

/// Keeps the k best comparisons under ByWeightDesc seen since Reset().
class TopKBuffer {
 public:
  /// Starts a new accumulation bounded at `k`. k = 0 keeps nothing;
  /// SIZE_MAX keeps everything (the paper's Same Eventual Quality
  /// configuration, where kmax never truncates).
  void Reset(std::size_t k) {
    k_ = k;
    items_.clear();
    // Cut back at 2k; saturate so huge k (SIZE_MAX) never truncates.
    prune_at_ =
        k >= items_.max_size() / 2 ? items_.max_size() : std::max<std::size_t>(2 * k, 2);
  }

  void Push(const Comparison& c) {
    if (k_ == 0) return;
    items_.push_back(c);
    if (items_.size() >= prune_at_) Shrink();
  }

  /// Finalizes the accumulation: the kept comparisons sorted *ascending*
  /// (worst first) — the drain order of the bounded min-heap this buffer
  /// replaces, which ComparisonList::FillFromAscending reverses in O(k).
  /// Valid until the next Reset()/Push().
  std::span<const Comparison> SortedAscending() {
    if (items_.size() > k_) Shrink();
    std::sort(items_.begin(), items_.end(), ByWeightAsc());
    return items_;
  }

 private:
  void Shrink() {
    std::nth_element(items_.begin(), items_.begin() + (k_ - 1), items_.end(),
                     ByWeightDesc());
    items_.resize(k_);
  }

  std::vector<Comparison> items_;
  std::size_t k_ = 0;
  std::size_t prune_at_ = 0;
};

}  // namespace sper

#endif  // SPER_PROGRESSIVE_TOP_K_H_
