// Literal reproduction of the paper's worked examples (Figs. 3-8) on the
// six-profile data lake of Fig. 3a. Paper profiles p1..p6 are ids 0..5
// here. Where the paper leaves tie order unspecified ("we chose a random
// permutation ... without affecting the end result"), the library's
// documented deterministic tie-breaks apply and are asserted instead.

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "blocking/token_blocking.h"
#include "metablocking/edge_weighting.h"
#include "progressive/ls_psn.h"
#include "progressive/pbs.h"
#include "progressive/pps.h"
#include "progressive/psn.h"
#include "progressive/sa_psn.h"
#include "sorted/neighbor_list.h"

namespace sper {
namespace {

using Pair = std::pair<ProfileId, ProfileId>;

/// Fig. 3a: a data lake with relational (p1, p4), RDF (p2, p3) and
/// free-text (p5, p6) profiles. Matches: p1=p2=p3 and p4=p5.
ProfileStore Fig3aStore() {
  std::vector<Profile> ps(6);
  ps[0].AddAttribute("Name", "Carl");
  ps[0].AddAttribute("Surname", "White");
  ps[0].AddAttribute("City", "NY");
  ps[0].AddAttribute("Profession", "Tailor");
  ps[1].AddAttribute("subject", ":Carl_White");
  ps[1].AddAttribute("livesIn", "NY");
  ps[1].AddAttribute("workAs", "Tailor");
  ps[2].AddAttribute("subject", ":Karl_White");
  ps[2].AddAttribute("job", "Tailor");
  ps[2].AddAttribute("loc", "NY");
  ps[3].AddAttribute("Name", "Ellen");
  ps[3].AddAttribute("Surname", "White");
  ps[3].AddAttribute("City", "ML");
  ps[3].AddAttribute("Profession", "Teacher");
  ps[4].AddAttribute("text", "Hellen White, ML teacher");
  ps[5].AddAttribute("text", "Emma White, WI Tailor");
  return ProfileStore::MakeDirty(std::move(ps));
}

NeighborListOptions NoShuffle() {
  NeighborListOptions options;
  options.shuffle_ties = false;
  return options;
}

std::vector<Pair> Drain(ProgressiveEmitter& emitter, std::size_t limit) {
  std::vector<Pair> out;
  while (out.size() < limit) {
    std::optional<Comparison> c = emitter.Next();
    if (!c.has_value()) break;
    out.emplace_back(c->i, c->j);
  }
  return out;
}

// ------------------------------------------------- Fig. 3b: Token Blocking

TEST(PaperFig3Test, TokenBlockingProducesTheSixBlocks) {
  BlockCollection blocks = TokenBlocking(Fig3aStore());
  std::map<std::string, std::vector<ProfileId>> map;
  for (BlockId id = 0; id < blocks.size(); ++id) {
    std::span<const ProfileId> members = blocks.members(id);
    map[std::string(blocks.key(id))] =
        std::vector<ProfileId>(members.begin(), members.end());
  }

  ASSERT_EQ(map.size(), 6u);
  EXPECT_EQ(map["carl"], (std::vector<ProfileId>{0, 1}));
  EXPECT_EQ(map["ml"], (std::vector<ProfileId>{3, 4}));
  EXPECT_EQ(map["ny"], (std::vector<ProfileId>{0, 1, 2}));
  EXPECT_EQ(map["tailor"], (std::vector<ProfileId>{0, 1, 2, 5}));
  EXPECT_EQ(map["teacher"], (std::vector<ProfileId>{3, 4}));
  EXPECT_EQ(map["white"], (std::vector<ProfileId>{0, 1, 2, 3, 4, 5}));
}

TEST(PaperFig3Test, BlockSizeAndCardinalityOfTailor) {
  // Sec. 3: |b_tailor| = 4 and ||b_tailor|| = C(4,2) = 6.
  BlockCollection blocks = TokenBlocking(Fig3aStore());
  for (BlockId id = 0; id < blocks.size(); ++id) {
    if (blocks.key(id) == "tailor") {
      EXPECT_EQ(blocks.block_size(id), 4u);
      EXPECT_EQ(blocks.Cardinality(id), 6u);
    }
  }
}

// ---------------------------------------------- Fig. 3c: ARCS edge weights

TEST(PaperFig3Test, ArcsWeightsMatchTheBlockingGraph) {
  ProfileStore store = Fig3aStore();
  BlockCollection blocks = TokenBlocking(store);
  ProfileIndex index(blocks, store.size());
  EdgeWeighter weighter(blocks, index, store, WeightingScheme::kArcs);

  // c12 = 1/1 + 1/3 + 1/6 + 1/15 = 1.5667 (the paper prints 1.57).
  EXPECT_NEAR(weighter.Weight(0, 1), 1.5667, 1e-4);
  // c45 = 1/1 + 1/1 + 1/15 = 2.0667 (2.07).
  EXPECT_NEAR(weighter.Weight(3, 4), 2.0667, 1e-4);
  // c13 = c23 = 1/3 + 1/6 + 1/15 = 0.5667 (0.57).
  EXPECT_NEAR(weighter.Weight(0, 2), 0.5667, 1e-4);
  EXPECT_NEAR(weighter.Weight(1, 2), 0.5667, 1e-4);
  // c16 = c26 = c36 = 1/6 + 1/15 = 0.2333 (0.23).
  EXPECT_NEAR(weighter.Weight(0, 5), 0.2333, 1e-4);
  EXPECT_NEAR(weighter.Weight(1, 5), 0.2333, 1e-4);
  EXPECT_NEAR(weighter.Weight(2, 5), 0.2333, 1e-4);
  // All remaining pairs share only 'white': 1/15 = 0.0667 (0.07).
  for (const Pair& p : std::vector<Pair>{{0, 3}, {0, 4}, {1, 3}, {1, 4},
                                         {2, 3}, {2, 4}, {3, 5}, {4, 5}}) {
    EXPECT_NEAR(weighter.Weight(p.first, p.second), 0.0667, 1e-4);
  }
}

// --------------------------------------- Fig. 3d/3e: sorted keys and the NL

TEST(PaperFig3Test, NeighborListKeysAreTheSortedTokens) {
  NeighborList list =
      NeighborList::BuildSchemaAgnostic(Fig3aStore(), NoShuffle());
  // 24 placements; distinct keys in Fig. 3d order.
  ASSERT_EQ(list.size(), 24u);
  const std::vector<std::string> expected_distinct = {
      "carl", "ellen", "emma", "hellen", "karl", "ml",
      "ny",   "tailor", "teacher", "white", "wi"};
  std::vector<std::string> distinct;
  for (const std::string& k : list.keys()) {
    if (distinct.empty() || distinct.back() != k) distinct.push_back(k);
  }
  EXPECT_EQ(distinct, expected_distinct);
}

TEST(PaperFig3Test, NeighborListRunsContainTheRightProfiles) {
  NeighborList list =
      NeighborList::BuildSchemaAgnostic(Fig3aStore(), NoShuffle());
  // With deterministic tie order (profile id), the full list is:
  const std::vector<ProfileId> expected = {
      0, 1,              // carl
      3,                 // ellen
      5,                 // emma
      4,                 // hellen
      2,                 // karl
      3, 4,              // ml
      0, 1, 2,           // ny
      0, 1, 2, 5,        // tailor
      3, 4,              // teacher
      0, 1, 2, 3, 4, 5,  // white
      5,                 // wi
  };
  EXPECT_EQ(list.profiles(), expected);
}

// ----------------------------------------------------------- Fig. 4a: PSN

TEST(PaperFig4Test, PsnEmissionOrderAndWindowGrowth) {
  // Fig. 4a assumes the schema of p1/p4 describes every profile; the
  // blocking key concatenates the surname and the first 2 name letters.
  std::vector<Profile> ps(6);
  auto add = [&](int idx, const char* name, const char* surname) {
    ps[idx].AddAttribute("Name", name);
    ps[idx].AddAttribute("Surname", surname);
  };
  add(0, "Carl", "White");
  add(1, "Carl", "White");
  add(2, "Karl", "White");
  add(3, "Ellen", "White");
  add(4, "Hellen", "White");
  add(5, "Emma", "White");
  ProfileStore store = ProfileStore::MakeDirty(std::move(ps));

  SchemaKeyFn key = [](const Profile& p) {
    std::string k(p.ValueOf("Surname"));
    k += p.ValueOf("Name").substr(0, 2);
    for (char& c : k) c = static_cast<char>(std::tolower(c));
    return k;
  };
  // Sorted keys: whiteca(p1), whiteca(p2), whiteel(p4), whiteem(p6),
  // whitehe(p5), whiteka(p3) — exactly Fig. 4a's list p1,p2,p4,p6,p5,p3.
  PsnEmitter psn(store, key, NoShuffle());
  std::vector<Pair> emissions = Drain(psn, 100);

  // 15 total comparisons: 5+4+3+2+1 over windows 1..5.
  ASSERT_EQ(emissions.size(), 15u);
  EXPECT_EQ(emissions[0], (Pair{0, 1}));   // 1st: c12 (window 1)
  EXPECT_EQ(emissions[7], (Pair{3, 4}));   // 8th: c45 (window 2)
  // c23 is the second window-4 comparison, i.e. the 14th emission (the
  // figure labels it "13rd" but its own 15-comparison total places it
  // here: 5 + 4 + 3 window-1..3 emissions precede window 4).
  EXPECT_EQ(emissions[13], (Pair{1, 2}));
  EXPECT_EQ(emissions[14], (Pair{0, 2}));  // 15th: c13 (window 5) — the
                                           // final pair of matches.
}

// -------------------------------------------------------- Fig. 4b: SA-PSN

TEST(PaperFig4Test, SaPsnFirstWindowAndRepeatedEmissions) {
  ProfileStore store = Fig3aStore();
  SaPsnEmitter sa_psn(store, NoShuffle());
  std::vector<Pair> emissions = Drain(sa_psn, 22);

  // First window-1 sweep over the 24-placement Neighbor List.
  EXPECT_EQ(emissions[0], (Pair{0, 1}));  // 1st: c12
  EXPECT_EQ(emissions[6], (Pair{3, 4}));  // 7th: c45 (paper: 7th)
  // The same pair recurs within one window (repeated comparisons are not
  // filtered): c12 is both the 1st and the 9th emission, as in Sec. 4.1.
  EXPECT_EQ(emissions[8], (Pair{0, 1}));
  // All four matching pairs surface already in window 1.
  std::vector<bool> found(4, false);
  const std::vector<Pair> matches = {{0, 1}, {0, 2}, {1, 2}, {3, 4}};
  for (std::size_t k = 0; k < emissions.size(); ++k) {
    for (std::size_t m = 0; m < matches.size(); ++m) {
      if (emissions[k] == matches[m]) found[m] = true;
    }
  }
  for (bool f : found) EXPECT_TRUE(f);
}

// -------------------------------------------------------- Fig. 6: LS-PSN

TEST(PaperFig6Test, LsPsnWindowOneOrdersDuplicatesFirst) {
  ProfileStore store = Fig3aStore();
  LsPsnEmitter ls_psn(store, NoShuffle());

  // Window-1 RCF weights (hand-derived for the deterministic NL):
  //   c12: freq 4 -> 4/(4+4-4) = 1.0
  //   c23: freq 3 -> 3/(4+4-3) = 0.6
  //   c45: freq 3 -> 0.6
  // "The first three comparisons correspond to the three pairs of
  // duplicate profiles" (Example 4).
  std::optional<Comparison> c1 = ls_psn.Next();
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ((Pair{c1->i, c1->j}), (Pair{0, 1}));
  EXPECT_DOUBLE_EQ(c1->weight, 1.0);

  std::optional<Comparison> c2 = ls_psn.Next();
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ((Pair{c2->i, c2->j}), (Pair{1, 2}));
  EXPECT_DOUBLE_EQ(c2->weight, 0.6);

  std::optional<Comparison> c3 = ls_psn.Next();
  ASSERT_TRUE(c3.has_value());
  EXPECT_EQ((Pair{c3->i, c3->j}), (Pair{3, 4}));
  EXPECT_DOUBLE_EQ(c3->weight, 0.6);

  EXPECT_EQ(ls_psn.window(), 1u);
}

TEST(PaperFig6Test, LsPsnGrowsTheWindowWhenTheListEmpties) {
  ProfileStore store = Fig3aStore();
  LsPsnEmitter ls_psn(store, NoShuffle());
  // Window 1 yields exactly 11 distinct-weighted comparisons (hand count
  // of adjacent pairs in the deterministic Neighbor List); the 12th
  // emission must come from window 2.
  for (int k = 0; k < 11; ++k) {
    ASSERT_TRUE(ls_psn.Next().has_value());
    EXPECT_EQ(ls_psn.window(), 1u);
  }
  ASSERT_TRUE(ls_psn.Next().has_value());
  EXPECT_EQ(ls_psn.window(), 2u);
}

// ----------------------------------------------------------- Fig. 7: PBS

TEST(PaperFig7Test, PbsProcessesBlocksByCardinalityAndDeduplicates) {
  ProfileStore store = Fig3aStore();
  BlockCollection blocks = TokenBlocking(store);
  PbsEmitter pbs(store, blocks);

  // Scheduled order (cardinality, then key): carl(1), ml(1), teacher(1),
  // ny(3), tailor(6), white(15).
  const BlockCollection& scheduled = pbs.scheduled_blocks();
  ASSERT_EQ(scheduled.size(), 6u);
  EXPECT_EQ(scheduled.key(0), "carl");
  EXPECT_EQ(scheduled.key(1), "ml");
  EXPECT_EQ(scheduled.key(2), "teacher");
  EXPECT_EQ(scheduled.key(3), "ny");
  EXPECT_EQ(scheduled.key(4), "tailor");
  EXPECT_EQ(scheduled.key(5), "white");

  std::vector<Pair> emissions = Drain(pbs, 100);
  // Example 5: c45 satisfies LeCoBI in b_ml (emitted) and is discarded in
  // b_teacher; every pair is emitted exactly once -> C(6,2) = 15 total.
  ASSERT_EQ(emissions.size(), 15u);
  EXPECT_EQ(emissions[0], (Pair{0, 1}));  // carl
  EXPECT_EQ(emissions[1], (Pair{3, 4}));  // ml (weight 2.07 in Fig. 7)
  EXPECT_EQ(emissions[2], (Pair{0, 2}));  // ny (ties broken by pair)
  EXPECT_EQ(emissions[3], (Pair{1, 2}));  // ny
  EXPECT_EQ(emissions[4], (Pair{0, 5}));  // tailor
  EXPECT_EQ(emissions[5], (Pair{1, 5}));
  EXPECT_EQ(emissions[6], (Pair{2, 5}));
  // No repeats overall.
  std::set<Pair> distinct(emissions.begin(), emissions.end());
  EXPECT_EQ(distinct.size(), emissions.size());
}

// ----------------------------------------------------------- Fig. 8: PPS

TEST(PaperFig8Test, PpsInitializationListsMatchTheExample) {
  ProfileStore store = Fig3aStore();
  BlockCollection blocks = TokenBlocking(store);
  PpsOptions options;
  options.kmax = 2;
  PpsEmitter pps(store, blocks, options);

  // Duplication likelihoods (mean incident ARCS weight):
  //   p1 = p2 = 2.5/5 = 0.50; p4 = p5 = 2.3333/5 = 0.4667;
  //   p3 = 1.5/5 = 0.30;      p6 = 0.8333/5 = 0.1667.
  const auto& sorted = pps.sorted_profiles();
  ASSERT_EQ(sorted.size(), 6u);
  EXPECT_EQ(sorted[0].first, 0u);
  EXPECT_NEAR(sorted[0].second, 0.50, 1e-3);
  EXPECT_EQ(sorted[1].first, 1u);
  EXPECT_EQ(sorted[2].first, 3u);
  EXPECT_NEAR(sorted[2].second, 0.4667, 1e-3);
  EXPECT_EQ(sorted[3].first, 4u);
  EXPECT_EQ(sorted[4].first, 2u);
  EXPECT_NEAR(sorted[4].second, 0.30, 1e-3);
  EXPECT_EQ(sorted[5].first, 5u);
  EXPECT_NEAR(sorted[5].second, 0.1667, 1e-3);

  // The initial Comparison List holds every node's top comparison, sorted:
  // c45 (2.07), c12 (1.57), then one of the tied 0.57/0.23 edges per node
  // (deterministic tie-break picks c13 and c16; the paper's Fig. 8a shows
  // the equally-weighted c23 and c61).
  std::optional<Comparison> e1 = pps.Next();
  ASSERT_TRUE(e1.has_value());
  EXPECT_EQ((Pair{e1->i, e1->j}), (Pair{3, 4}));
  EXPECT_NEAR(e1->weight, 2.0667, 1e-3);
  std::optional<Comparison> e2 = pps.Next();
  EXPECT_EQ((Pair{e2->i, e2->j}), (Pair{0, 1}));
  std::optional<Comparison> e3 = pps.Next();
  EXPECT_EQ((Pair{e3->i, e3->j}), (Pair{0, 2}));
  std::optional<Comparison> e4 = pps.Next();
  EXPECT_EQ((Pair{e4->i, e4->j}), (Pair{0, 5}));
}

TEST(PaperFig8Test, PpsEmissionSkipsCheckedEntitiesAndMayRepeat) {
  ProfileStore store = Fig3aStore();
  BlockCollection blocks = TokenBlocking(store);
  PpsOptions options;
  options.kmax = 2;
  PpsEmitter pps(store, blocks, options);
  std::vector<Pair> emissions = Drain(pps, 100);

  // Hand-derived full sequence: 4 init emissions, then the k=2 best of
  // p1, p2, p4, p5, p3, p6 in Sorted-Profile-List order, skipping checked
  // neighbors (the paper's Fig. 8c/d behaviour).
  const std::vector<Pair> expected = {
      {3, 4}, {0, 1}, {0, 2}, {0, 5},  // initialization phase
      {0, 1}, {0, 2},                  // p1's top-2 (repeats allowed)
      {1, 2}, {1, 5},                  // p2's (p1 checked -> c12 skipped)
      {3, 4}, {2, 3},                  // p4's
      {2, 4}, {4, 5},                  // p5's (p4 checked)
      {2, 5},                          // p3's (p1,p2,p4,p5 checked)
                                       // p6: all neighbors checked
  };
  EXPECT_EQ(emissions, expected);
}

}  // namespace
}  // namespace sper
