#ifndef SPER_OBS_REGISTRY_H_
#define SPER_OBS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"
#include "obs/clock.h"
#include "obs/metrics.h"

/// \file registry.h
/// The process-wide metric registry: named counters/gauges/histograms
/// with get-or-create semantics and stable pointers, plus a span log for
/// trace export. One Registry typically serves one Resolver (hand each
/// concurrent resolver its own Registry, or distinct TelemetryScope
/// prefixes, so they don't mix streams).
///
/// Two export formats:
///   - SnapshotJson(): one stable-schema JSON object with every counter,
///     gauge and histogram summary (p50/p90/p99 by exact rank) — the
///     metrics endpoint shape;
///   - WriteTraceJson(): the recorded spans as a Chrome trace-event JSON
///     array, loadable in Perfetto / chrome://tracing ("X" complete
///     events, microsecond timestamps relative to the registry's epoch).
///
/// Thread-safety: metric creation and span recording are mutex-protected;
/// metric *updates* go through the returned pointers (lock-free, see
/// metrics.h). Snapshotting while recording is safe.

namespace sper {
namespace obs {

/// One completed span (a named interval on one thread).
struct Span {
  std::string name;
  /// Registry-assigned dense thread index (1-based), stable per thread.
  std::uint32_t tid = 0;
  /// Start, nanoseconds since the registry epoch.
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  /// Pre-formed JSON object for the trace event's "args" field
  /// (e.g. R"({"ticket":3})"); empty = no args.
  std::string args_json;
};

class Registry {
 public:
  /// Spans kept before further RecordSpan calls are dropped (counted in
  /// dropped_spans()): bounds memory on long-lived servers.
  static constexpr std::size_t kMaxSpans = 1 << 20;

  Registry() : epoch_(Stopwatch::Now()) {}

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create by full name. Returned pointers are stable for the
  /// registry's lifetime.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Lookup without creating; nullptr when absent.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  /// Records one completed span (thread index assigned from the calling
  /// thread). Silently dropped past kMaxSpans.
  void RecordSpan(std::string_view name, Stopwatch::TimePoint start,
                  Stopwatch::TimePoint end, std::string args_json = {});

  /// The instant span timestamps are relative to.
  Stopwatch::TimePoint epoch() const { return epoch_; }

  std::size_t num_spans() const;
  std::uint64_t dropped_spans() const;

  /// The whole registry as one JSON object (schema "sper.metrics.v1"):
  /// {"schema": ..., "counters": {name: value},
  ///  "gauges": {name: value},
  ///  "histograms": {name: {count, sum, mean, max, p50, p90, p99}},
  ///  "spans": N, "dropped_spans": N}
  /// Keys are sorted (std::map), so output is stable for a given state.
  std::string SnapshotJson() const;

  /// Writes SnapshotJson() to `path`; false (with stderr) on I/O failure.
  bool WriteSnapshotJson(const std::string& path) const;

  /// Writes the span log as a Chrome trace-event JSON array to `path`;
  /// false (with stderr) on I/O failure.
  bool WriteTraceJson(const std::string& path) const;

 private:
  std::uint32_t ThreadIndexLocked() SPER_REQUIRES(mutex_);

  const Stopwatch::TimePoint epoch_;

  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      SPER_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      SPER_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      SPER_GUARDED_BY(mutex_);
  std::vector<Span> spans_ SPER_GUARDED_BY(mutex_);
  std::uint64_t dropped_spans_ SPER_GUARDED_BY(mutex_) = 0;
  std::map<std::thread::id, std::uint32_t> thread_indices_
      SPER_GUARDED_BY(mutex_);
};

}  // namespace obs
}  // namespace sper

#endif  // SPER_OBS_REGISTRY_H_
