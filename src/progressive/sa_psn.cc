#include "progressive/sa_psn.h"

namespace sper {

SaPsnEmitter::SaPsnEmitter(const ProfileStore& store,
                           const NeighborListOptions& options)
    : store_(store),
      list_(NeighborList::BuildSchemaAgnostic(store, options)) {}

std::optional<Comparison> SaPsnEmitter::Next() {
  while (window_ < list_.size()) {
    while (pos_ + window_ < list_.size()) {
      const ProfileId a = list_.at(pos_);
      const ProfileId b = list_.at(pos_ + window_);
      ++pos_;
      // Valid comparisons involve different profiles (Dirty ER) stemming
      // from different sources (Clean-Clean ER).
      if (store_.IsComparable(a, b)) {
        return Comparison(a, b, 1.0 / static_cast<double>(window_));
      }
    }
    ++window_;
    pos_ = 0;
  }
  return std::nullopt;
}

}  // namespace sper
