// Unit tests for src/io: CSV escaping/parsing and dataset round trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "io/csv.h"
#include "io/dataset_io.h"

namespace sper {
namespace {

// ------------------------------------------------------------------- CSV

TEST(CsvTest, PlainFieldIsUnquoted) {
  EXPECT_EQ(CsvEscape("hello"), "hello");
}

TEST(CsvTest, CommaAndQuoteAreQuoted) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, JoinAndSplitRoundTrip) {
  const std::vector<std::string> fields = {"plain", "with,comma",
                                           "with \"quote\"", "", "end"};
  EXPECT_EQ(CsvSplit(CsvJoin(fields)), fields);
}

TEST(CsvTest, SplitHandlesEmptyFields) {
  EXPECT_EQ(CsvSplit(",,"), (std::vector<std::string>{"", "", ""}));
}

TEST(CsvTest, SplitHandlesQuotedComma) {
  EXPECT_EQ(CsvSplit("a,\"b,c\",d"),
            (std::vector<std::string>{"a", "b,c", "d"}));
}

// ------------------------------------------------- record-aware reading

std::vector<std::vector<std::string>> ReadAllRecords(const std::string& text) {
  std::istringstream in(text);
  std::vector<std::vector<std::string>> rows;
  std::string record;
  while (CsvReadRecord(in, &record)) rows.push_back(CsvSplit(record));
  return rows;
}

TEST(CsvRecordTest, PlainLinesAreOneRecordEach) {
  const auto rows = ReadAllRecords("a,b\nc,d\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvRecordTest, QuotedNewlineSpansPhysicalLines) {
  const auto rows = ReadAllRecords("a,\"line1\nline2\",z\nnext,row,!\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "line1\nline2", "z"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"next", "row", "!"}));
}

TEST(CsvRecordTest, StripsUnquotedTrailingCarriageReturn) {
  const auto rows = ReadAllRecords("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvRecordTest, UnterminatedQuoteIsToleratedAtEof) {
  const auto rows = ReadAllRecords("a,\"open\nstill open");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "open\nstill open"}));
}

// Property: any vector of fields — commas, quotes, CRs, LFs, empty and
// pathological mixes — survives CsvJoin -> CsvReadRecord -> CsvSplit.
TEST(CsvRecordTest, RoundTripPropertyOverHostileFields) {
  const std::vector<std::vector<std::string>> cases = {
      {"plain", "with,comma", "with \"quote\""},
      {"embedded\nnewline", "x"},
      {"embedded\rcarriage", "y"},
      {"crlf\r\ninside", "z"},
      {"\n", "\r", "\r\n", ""},
      {"multi\nline\nvalue", "\"quoted\"\nand broken", ",\",\n\",\""},
      {"", "", ""},
      {"trailing newline\n"},
      {"\nleading newline"},
      {"quote at end\""},
      {"\"quote at start"},
  };
  for (const std::vector<std::string>& fields : cases) {
    std::string file;
    for (int copies = 0; copies < 2; ++copies) {
      file += CsvJoin(fields);
      file.push_back('\n');
    }
    std::istringstream in(file);
    std::string record;
    for (int copies = 0; copies < 2; ++copies) {
      ASSERT_TRUE(CsvReadRecord(in, &record)) << CsvJoin(fields);
      EXPECT_EQ(CsvSplit(record), fields) << CsvJoin(fields);
    }
    EXPECT_FALSE(CsvReadRecord(in, &record));
  }
}

// ------------------------------------------------------------ Dataset IO

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "sper_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(DatasetIoTest, DirtyProfilesRoundTrip) {
  std::vector<Profile> ps(2);
  ps[0].AddAttribute("name", "carl, the \"tailor\"");
  ps[0].AddAttribute("city", "ny");
  ps[1].AddAttribute("name", "ellen");
  ProfileStore store = ProfileStore::MakeDirty(std::move(ps));

  ASSERT_TRUE(WriteProfilesCsv(store, Path("p.csv")).ok());
  Result<ProfileStore> loaded = ReadProfilesCsv(Path("p.csv"), ErType::kDirty);
  ASSERT_TRUE(loaded.ok());
  const ProfileStore& got = loaded.value();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got.profile(0).ValueOf("name"), "carl, the \"tailor\"");
  EXPECT_EQ(got.profile(0).ValueOf("city"), "ny");
  EXPECT_EQ(got.profile(1).ValueOf("name"), "ellen");
}

TEST_F(DatasetIoTest, CleanCleanProfilesPreserveSources) {
  std::vector<Profile> s1(1), s2(2);
  s1[0].AddAttribute("a", "x");
  s2[0].AddAttribute("b", "y");
  s2[1].AddAttribute("c", "z");
  ProfileStore store =
      ProfileStore::MakeCleanClean(std::move(s1), std::move(s2));

  ASSERT_TRUE(WriteProfilesCsv(store, Path("cc.csv")).ok());
  Result<ProfileStore> loaded =
      ReadProfilesCsv(Path("cc.csv"), ErType::kCleanClean);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().source1_size(), 1u);
  EXPECT_EQ(loaded.value().source2_size(), 2u);
  EXPECT_EQ(loaded.value().profile(1).ValueOf("b"), "y");
}

TEST_F(DatasetIoTest, ProfilesWithEmbeddedNewlinesRoundTrip) {
  // The former line-based reader could never read these back: CsvEscape
  // quotes newline-bearing values, so one record spans physical lines.
  std::vector<Profile> ps(2);
  ps[0].AddAttribute("bio", "line one\nline two\r\nline three");
  ps[0].AddAttribute("note", "plain");
  ps[1].AddAttribute("bio", "\nstarts and ends with newline\n");
  ProfileStore store = ProfileStore::MakeDirty(std::move(ps));

  ASSERT_TRUE(WriteProfilesCsv(store, Path("nl.csv")).ok());
  Result<ProfileStore> loaded = ReadProfilesCsv(Path("nl.csv"), ErType::kDirty);
  ASSERT_TRUE(loaded.ok());
  const ProfileStore& got = loaded.value();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got.profile(0).ValueOf("bio"), "line one\nline two\r\nline three");
  EXPECT_EQ(got.profile(0).ValueOf("note"), "plain");
  EXPECT_EQ(got.profile(1).ValueOf("bio"), "\nstarts and ends with newline\n");
}

TEST_F(DatasetIoTest, GroundTruthRoundTrip) {
  GroundTruth truth;
  truth.AddMatch(0, 5);
  truth.AddMatch(3, 1);
  ASSERT_TRUE(WriteGroundTruthCsv(truth, Path("gt.csv")).ok());
  Result<GroundTruth> loaded = ReadGroundTruthCsv(Path("gt.csv"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_matches(), 2u);
  EXPECT_TRUE(loaded.value().AreMatching(5, 0));
  EXPECT_TRUE(loaded.value().AreMatching(1, 3));
}

TEST_F(DatasetIoTest, MissingFileYieldsIoError) {
  Result<ProfileStore> r =
      ReadProfilesCsv(Path("does_not_exist.csv"), ErType::kDirty);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  Result<GroundTruth> g = ReadGroundTruthCsv(Path("nope.csv"));
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace sper
