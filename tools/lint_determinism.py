#!/usr/bin/env python3
"""Repo-specific determinism lint for the sper codebase.

The library's core contract is that emitted comparison streams are
bit-identical at every thread count, shard count and lookahead setting
(README "Determinism"). Most violations of that contract come from a
handful of well-known C++ patterns, so this lint bans them outright in
src/:

  DET001 unordered-iteration  Iterating a std::unordered_map/set (range-
                              for or explicit .begin()) lets hash order
                              reach downstream state. Sites that provably
                              re-sort afterwards are allowlisted in
                              tools/determinism_allowlist.txt.
  DET002 banned-random        rand()/srand()/std::random_device/time()/
                              clock(): nondeterministic or hidden-state
                              randomness. Seeded std::mt19937 is fine.
  DET003 raw-clock            Naming std::chrono clocks outside
                              obs/clock.h; all timing flows through
                              obs::Stopwatch so tests can reason about
                              one clock.
  DET004 bare-throw           `throw` in producer-thread code (parallel/,
                              progressive/, engine/): producer failures
                              must be contained (sticky Status / pipeline
                              error slots), not thrown across threads.
  DET005 banned-strtod        atof/atoi/atol/atoll: locale-sensitive and
                              error-silent number parsing.
  DET006 banned-identifier    Identifiers removed in PR 8 (EngineOptions,
                              ShardedEngineOptions, MakeEmitter,
                              EngineInitStats, ShardedInitStats) must not
                              reappear.

Comments and string/char literals are stripped (line numbers preserved)
before matching, so prose mentioning a banned name never trips the lint.

Allowlist format (tools/determinism_allowlist.txt): one
`path|RULE|justification` per line; `path` is repo-relative, `#` starts
a comment. An entry suppresses that rule for that file and is itself
flagged when it no longer matches anything (stale entries rot).

Exit status: 0 clean, 1 violations, 2 usage/config error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

SRC_EXTENSIONS = (".h", ".cc")

# Directories scanned, relative to the repo root.
SCAN_DIRS = ("src", "tools")

# DET004 applies only where code runs on producer/worker threads.
PRODUCER_DIRS = ("src/parallel", "src/progressive", "src/engine")

# The one file allowed to name raw std::chrono clocks (DET003).
CLOCK_HOME = "src/obs/clock.h"

UNORDERED_TYPES = ("unordered_map", "unordered_set", "unordered_multimap",
                   "unordered_multiset")

# Accessors known to return a reference to an unordered container
# (e.g. GroundTruth::pairs() returns the match-pair hash set).
UNORDERED_ACCESSORS = ("pairs",)

BANNED_RANDOM = ("rand", "srand", "random_device", "time", "clock")
BANNED_STRTOD = ("atof", "atoi", "atol", "atoll")
BANNED_IDENTIFIERS = ("EngineOptions", "ShardedEngineOptions", "MakeEmitter",
                      "EngineInitStats", "ShardedInitStats")


@dataclass
class Violation:
    path: str  # repo-relative
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Allowlist:
    # (path, rule) -> justification
    entries: dict = field(default_factory=dict)
    used: set = field(default_factory=set)

    @classmethod
    def load(cls, path: str) -> "Allowlist":
        allow = cls()
        if not os.path.exists(path):
            return allow
        with open(path, encoding="utf-8") as f:
            for lineno, raw in enumerate(f, 1):
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split("|", 2)
                if len(parts) != 3 or not parts[2].strip():
                    raise ValueError(
                        f"{path}:{lineno}: allowlist entries are "
                        f"'path|RULE|justification', got: {line}")
                allow.entries[(parts[0].strip(), parts[1].strip())] = \
                    parts[2].strip()
        return allow

    def suppresses(self, path: str, rule: str) -> bool:
        if (path, rule) in self.entries:
            self.used.add((path, rule))
            return True
        return False

    def stale(self):
        return sorted(set(self.entries) - self.used)


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving newlines.

    A line-number-faithful scanner: every replaced character becomes a
    space (newlines inside block comments and raw strings survive), so
    regex matches on the result report correct line numbers.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":  # line comment
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":  # block comment
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == "R" and nxt == '"':  # raw string literal
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if m:
                closer = ")" + m.group(1) + '"'
                end = text.find(closer, i + m.end())
                end = (end + len(closer)) if end != -1 else n
                out.extend("\n" if ch == "\n" else " " for ch in text[i:end])
                i = end
            else:
                out.append(c)
                i += 1
        elif c in "\"'":  # string or char literal
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def collect_unordered_aliases(files: dict) -> set:
    """Typedef/using names that resolve to an unordered container.

    One global pass (aliases often live in headers used elsewhere):
    matches `using X = ...unordered_map<...>;` and
    `typedef ...unordered_set<...> X;`.
    """
    aliases = set()
    unordered_re = "|".join(UNORDERED_TYPES)
    using_re = re.compile(
        r"\busing\s+(\w+)\s*=\s*[^;]*\b(?:%s)\b" % unordered_re)
    typedef_re = re.compile(
        r"\btypedef\s+[^;]*\b(?:%s)\b[^;]*?(\w+)\s*;" % unordered_re)
    for text in files.values():
        for m in using_re.finditer(text):
            aliases.add(m.group(1))
        for m in typedef_re.finditer(text):
            aliases.add(m.group(1))
    return aliases


def find_unordered_variables(text: str, aliases: set) -> set:
    """Names of variables/members declared with an unordered type."""
    names = set()
    type_names = list(UNORDERED_TYPES) + sorted(aliases)
    # `std::unordered_map<K, V<W>> name` — balance nested angle brackets,
    # then take the declarator. Also matches angle-free alias declarations
    # (`PostingsMap shard;`) and reference/pointer declarators.
    for type_name in type_names:
        for m in re.finditer(r"\b%s\b" % re.escape(type_name), text):
            i = m.end()
            while i < len(text) and text[i].isspace():
                i += 1
            if i < len(text) and text[i] == "<":
                depth = 1
                i += 1
                while i < len(text) and depth > 0:
                    if text[i] == "<":
                        depth += 1
                    elif text[i] == ">":
                        depth -= 1
                    i += 1
            decl = re.match(r"\s*[&*]*\s*(\w+)\s*(?:;|=|\{|\(|SPER_)",
                            text[i:i + 200])
            if decl and decl.group(1) not in ("const", "return"):
                names.add(decl.group(1))
    return names


def check_unordered_iteration(path: str, text: str, aliases: set):
    """DET001: iteration over an unordered container."""
    violations = []
    tracked = find_unordered_variables(text, aliases)

    # Range-for directly over a tracked name or an unordered accessor:
    #   for (... : name) / for (... : obj.pairs())
    range_for = re.compile(r"for\s*\([^;()]*?:\s*([\w.\->]+(?:\(\))?)\s*\)")
    for m in range_for.finditer(text):
        target = m.group(1)
        base = target.split(".")[-1].split("->")[-1]
        if base.endswith("()"):
            if base[:-2] in UNORDERED_ACCESSORS:
                violations.append(Violation(
                    path, line_of(text, m.start()), "DET001",
                    f"range-for over unordered accessor '{target}': "
                    "hash order reaches downstream state; copy and sort"))
        elif base in tracked:
            violations.append(Violation(
                path, line_of(text, m.start()), "DET001",
                f"range-for over unordered container '{target}': "
                "hash order reaches downstream state; copy and sort"))

    # Explicit iterator walks: name.begin() / name.cbegin() / name.rbegin()
    for m in re.finditer(r"\b(\w+)\s*\.\s*c?r?begin\s*\(", text):
        if m.group(1) in tracked:
            violations.append(Violation(
                path, line_of(text, m.start()), "DET001",
                f"iterator over unordered container '{m.group(1)}': "
                "hash order reaches downstream state; copy and sort"))
    return violations


def check_banned_random(path: str, text: str):
    """DET002: nondeterministic randomness / wall-clock seeds."""
    violations = []
    for name in BANNED_RANDOM:
        # Function-call position only; skip member calls (obj.time()) and
        # qualified names we don't ban (std::chrono::...::clock is caught
        # by DET003 instead).
        for m in re.finditer(r"(?<![\w.>:])%s\s*\(" % name, text):
            violations.append(Violation(
                path, line_of(text, m.start()), "DET002",
                f"'{name}()' is nondeterministic; use a seeded std::mt19937 "
                "(randomness) or obs::Stopwatch (timing)"))
    for m in re.finditer(r"\brandom_device\b", text):
        violations.append(Violation(
            path, line_of(text, m.start()), "DET002",
            "'std::random_device' is nondeterministic; seed explicitly"))
    return violations


def check_raw_clock(path: str, text: str):
    """DET003: raw std::chrono clocks outside obs/clock.h."""
    if path == CLOCK_HOME:
        return []
    violations = []
    for m in re.finditer(r"\b(steady_clock|system_clock"
                         r"|high_resolution_clock)\b", text):
        violations.append(Violation(
            path, line_of(text, m.start()), "DET003",
            f"raw 'std::chrono::{m.group(1)}' outside {CLOCK_HOME}; "
            "use obs::Stopwatch::Clock"))
    return violations


def check_bare_throw(path: str, text: str):
    """DET004: `throw` in producer-thread code."""
    if not any(path.startswith(d + "/") or path == d
               for d in PRODUCER_DIRS):
        return []
    violations = []
    for m in re.finditer(r"\bthrow\b(?!\s*[;)])", text):
        violations.append(Violation(
            path, line_of(text, m.start()), "DET004",
            "bare 'throw' in producer-thread code; contain the failure "
            "(sticky Status / pipeline error slot) instead of throwing "
            "across threads"))
    # `throw;` (rethrow) and `throw)` (noexcept(false) spellings) are
    # excluded above: rethrow inside a catch block that immediately
    # contains is the containment idiom itself.
    return violations


def check_banned_strtod(path: str, text: str):
    """DET005: locale-sensitive, error-silent C number parsing."""
    violations = []
    for name in BANNED_STRTOD:
        for m in re.finditer(r"(?<![\w.>:])%s\s*\(" % name, text):
            violations.append(Violation(
                path, line_of(text, m.start()), "DET005",
                f"'{name}()' is locale-sensitive and silently returns 0 on "
                "garbage; use std::from_chars or std::stoull"))
    return violations


def check_banned_identifiers(path: str, text: str):
    """DET006: identifiers deleted in PR 8 must not come back."""
    violations = []
    for name in BANNED_IDENTIFIERS:
        for m in re.finditer(r"\b%s\b" % name, text):
            violations.append(Violation(
                path, line_of(text, m.start()), "DET006",
                f"'{name}' was removed (use ResolverOptions / EngineConfig "
                "/ InitStats / MakeResolver)"))
    return violations


CHECKS = (check_banned_random, check_raw_clock, check_bare_throw,
          check_banned_strtod, check_banned_identifiers)


def lint_files(files: dict, allowlist: Allowlist):
    """files: repo-relative path -> raw text. Returns kept violations."""
    stripped = {path: strip_comments_and_strings(text)
                for path, text in files.items()}
    aliases = collect_unordered_aliases(stripped)
    violations = []
    for path in sorted(stripped):
        text = stripped[path]
        this_file = []
        this_file.extend(check_unordered_iteration(path, text, aliases))
        for check in CHECKS:
            this_file.extend(check(path, text))
        for v in this_file:
            if not allowlist.suppresses(v.path, v.rule):
                violations.append(v)
    for path, rule in allowlist.stale():
        violations.append(Violation(
            path, 1, "STALE",
            f"allowlist entry ({rule}) no longer matches anything; "
            "remove it"))
    return violations


def gather_files(root: str):
    files = {}
    for scan_dir in SCAN_DIRS:
        base = os.path.join(root, scan_dir)
        if not os.path.isdir(base):
            continue
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if not name.endswith(SRC_EXTENSIONS):
                    continue
                full = os.path.join(dirpath, name)
                rel = os.path.relpath(full, root).replace(os.sep, "/")
                with open(full, encoding="utf-8") as f:
                    files[rel] = f.read()
    return files


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default=os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))),
        help="repo root (default: the directory above this script)")
    parser.add_argument(
        "--allowlist", default=None,
        help="allowlist path (default: tools/determinism_allowlist.txt "
             "under --root)")
    args = parser.parse_args(argv)

    allowlist_path = args.allowlist or os.path.join(
        args.root, "tools", "determinism_allowlist.txt")
    try:
        allowlist = Allowlist.load(allowlist_path)
    except ValueError as err:
        print(f"lint_determinism: {err}", file=sys.stderr)
        return 2

    files = gather_files(args.root)
    if not files:
        print(f"lint_determinism: no sources under {args.root}",
              file=sys.stderr)
        return 2

    violations = lint_files(files, allowlist)
    for v in violations:
        print(v)
    if violations:
        print(f"lint_determinism: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"lint_determinism: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
