#include "core/profile_store.h"

#include <utility>

#include "core/macros.h"

namespace sper {

ProfileStore::ProfileStore(ErType type, std::vector<Profile> profiles,
                           ProfileId split_index)
    : er_type_(type), profiles_(std::move(profiles)),
      split_index_(split_index) {
  SPER_CHECK(profiles_.size() <= kInvalidProfile);
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    profiles_[i].id_ = static_cast<ProfileId>(i);
  }
}

ProfileStore ProfileStore::MakeDirty(std::vector<Profile> profiles) {
  const ProfileId n = static_cast<ProfileId>(profiles.size());
  return ProfileStore(ErType::kDirty, std::move(profiles), n);
}

ProfileStore ProfileStore::MakeCleanClean(std::vector<Profile> source1,
                                          std::vector<Profile> source2) {
  const ProfileId split = static_cast<ProfileId>(source1.size());
  std::vector<Profile> all = std::move(source1);
  all.reserve(all.size() + source2.size());
  for (Profile& p : source2) all.push_back(std::move(p));
  return ProfileStore(ErType::kCleanClean, std::move(all), split);
}

double ProfileStore::MeanProfileSize() const {
  if (profiles_.empty()) return 0.0;
  std::size_t total = 0;
  for (const Profile& p : profiles_) total += p.size();
  return static_cast<double>(total) / static_cast<double>(profiles_.size());
}

}  // namespace sper
