// Negative-control fixture for run_compile_check.sh: the repo's locking
// conventions done right. If this stops compiling under
// -Werror=thread-safety the harness (or the annotation layer) broke, not
// the code under test.

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    sper::MutexLock lock(mutex_);
    balance_ += amount;
    changed_.NotifyAll();
  }

  // The repo's condition-wait convention: an explicit while loop over a
  // REQUIRES-annotated predicate (never the lambda-predicate overload,
  // which the analysis cannot see into).
  void WaitForPositive() {
    sper::MutexLock lock(mutex_);
    while (!PositiveLocked()) changed_.Wait(lock);
  }

  int Read() {
    sper::MutexLock lock(mutex_);
    return balance_;
  }

 private:
  bool PositiveLocked() const SPER_REQUIRES(mutex_) { return balance_ > 0; }

  sper::Mutex mutex_;
  sper::CondVar changed_;
  int balance_ SPER_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  account.WaitForPositive();
  return account.Read() > 0 ? 0 : 1;
}
