#ifndef SPER_DATAGEN_CORRUPTION_H_
#define SPER_DATAGEN_CORRUPTION_H_

#include <string>

#include "datagen/rng.h"

/// \file corruption.h
/// Value-corruption operators used to derive duplicate profiles. The
/// paper's analysis (Sec. 8) hinges on the *kind* of noise: structured
/// datasets "principally contain character-level errors" (favoring the
/// similarity principle — typo'd keys still sort nearby), while
/// semi-structured data "abound in both character- and token-level noise"
/// (defeating alphabetical proximity, favoring the equality principle).

namespace sper {

/// One random character-level typo: substitution, insertion, deletion or
/// adjacent transposition. Strings shorter than 2 characters are returned
/// unchanged.
std::string RandomTypo(Rng& rng, const std::string& value);

/// Applies RandomTypo to the value with probability `rate`, possibly
/// repeatedly (each extra typo applied with rate/2).
std::string MaybeTypo(Rng& rng, const std::string& value, double rate);

/// Abbreviates a word to its first letter plus '.', e.g. "john" -> "j.".
std::string Abbreviate(const std::string& word);

/// Token-level noise on a whitespace-separated value: with the given
/// probabilities, drops one token, swaps two adjacent tokens, or
/// abbreviates one token.
struct TokenNoiseOptions {
  double drop_rate = 0.0;
  double swap_rate = 0.0;
  double abbreviate_rate = 0.0;
};
std::string TokenNoise(Rng& rng, const std::string& value,
                       const TokenNoiseOptions& options);

}  // namespace sper

#endif  // SPER_DATAGEN_CORRUPTION_H_
