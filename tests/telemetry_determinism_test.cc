// Telemetry must be a pure observer: attaching a TelemetryScope to a
// resolver records metrics and spans but MUST NOT perturb the emitted
// comparison stream — bit-identical with telemetry on or off at every
// serving shape (plain/sharded, serial/pipelined emission). These tests
// pin that contract for both batch-refilling methods, plus the shape of
// what gets recorded (per-phase InitStats, session histograms, spans).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "datagen/datagen.h"
#include "engine/resolver.h"
#include "eval/experiment.h"
#include "obs/registry.h"
#include "obs/telemetry.h"

namespace sper {
namespace {

std::vector<Comparison> Drain(ProgressiveEmitter* emitter,
                              std::size_t limit) {
  std::vector<Comparison> out;
  while (out.size() < limit) {
    std::optional<Comparison> c = emitter->Next();
    if (!c.has_value()) break;
    out.push_back(*c);
  }
  return out;
}

void ExpectSameSequence(const std::vector<Comparison>& a,
                        const std::vector<Comparison>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].i, b[k].i) << "position " << k;
    EXPECT_EQ(a[k].j, b[k].j) << "position " << k;
    EXPECT_DOUBLE_EQ(a[k].weight, b[k].weight) << "position " << k;
  }
}

struct Shape {
  MethodId method;
  std::size_t num_shards;
  std::size_t lookahead;
};

class TelemetryShapeTest : public ::testing::TestWithParam<Shape> {};

TEST_P(TelemetryShapeTest, StreamBitIdenticalWithTelemetryOnAndOff) {
  const Shape shape = GetParam();
  Result<DatasetBundle> dataset = GenerateDataset("restaurant");
  ASSERT_TRUE(dataset.ok());

  MethodConfig off;
  off.num_shards = shape.num_shards;
  off.lookahead = shape.lookahead;
  std::unique_ptr<Resolver> plain =
      MakeResolver(shape.method, dataset.value(), off);
  ASSERT_NE(plain, nullptr);

  obs::Registry registry;
  MethodConfig on = off;
  on.telemetry = obs::TelemetryScope(&registry);
  std::unique_ptr<Resolver> instrumented =
      MakeResolver(shape.method, dataset.value(), on);
  ASSERT_NE(instrumented, nullptr);

  ExpectSameSequence(Drain(plain.get(), 5000),
                     Drain(instrumented.get(), 5000));
}

INSTANTIATE_TEST_SUITE_P(
    MethodsByShape, TelemetryShapeTest,
    ::testing::Values(Shape{MethodId::kPps, 1, 0}, Shape{MethodId::kPps, 1, 4},
                      Shape{MethodId::kPps, 4, 0}, Shape{MethodId::kPps, 4, 4},
                      Shape{MethodId::kPbs, 1, 0}, Shape{MethodId::kPbs, 1, 4},
                      Shape{MethodId::kPbs, 4, 0},
                      Shape{MethodId::kPbs, 4, 4}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      std::string name(ToString(info.param.method));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_shards" + std::to_string(info.param.num_shards) +
             "_lookahead" + std::to_string(info.param.lookahead);
    });

TEST(TelemetryInitStatsTest, PlainEnginePhasesSumBelowTotal) {
  // The plain engine runs its phases sequentially, so the breakdown must
  // be present (workflow steps + method_build), each non-negative, and
  // init_seconds stays the authoritative total.
  Result<DatasetBundle> dataset = GenerateDataset("restaurant");
  ASSERT_TRUE(dataset.ok());
  MethodConfig config;
  std::unique_ptr<Resolver> resolver =
      MakeResolver(MethodId::kPps, dataset.value(), config);
  const InitStats& stats = resolver->init_stats();
  ASSERT_FALSE(stats.phases.empty());
  bool saw_token_blocking = false;
  bool saw_method_build = false;
  double sum = 0.0;
  for (const InitPhase& phase : stats.phases) {
    EXPECT_EQ(phase.shard, 0u) << phase.name;
    EXPECT_GE(phase.seconds, 0.0) << phase.name;
    sum += phase.seconds;
    saw_token_blocking |= phase.name == "token_blocking";
    saw_method_build |= phase.name == "method_build";
  }
  EXPECT_TRUE(saw_token_blocking);
  EXPECT_TRUE(saw_method_build);
  EXPECT_LE(sum, stats.init_seconds + 1e-6);
}

TEST(TelemetryInitStatsTest, ShardedEngineReportsPerShardPhases) {
  Result<DatasetBundle> dataset = GenerateDataset("restaurant");
  ASSERT_TRUE(dataset.ok());
  MethodConfig config;
  config.num_shards = 4;
  std::unique_ptr<Resolver> resolver =
      MakeResolver(MethodId::kPps, dataset.value(), config);
  const InitStats& stats = resolver->init_stats();
  // One "partition" phase on shard 0, then every shard contributes its
  // inner engine's phases (workflow + method_build).
  ASSERT_FALSE(stats.phases.empty());
  EXPECT_EQ(stats.phases.front().name, "partition");
  std::vector<int> method_builds(config.num_shards, 0);
  for (const InitPhase& phase : stats.phases) {
    ASSERT_LT(phase.shard, config.num_shards);
    EXPECT_GE(phase.seconds, 0.0);
    if (phase.name == "method_build") ++method_builds[phase.shard];
  }
  for (std::size_t s = 0; s < config.num_shards; ++s) {
    EXPECT_EQ(method_builds[s], 1) << "shard " << s;
  }
}

#ifndef SPER_NO_TELEMETRY

TEST(TelemetrySessionTest, SessionHistogramsMatchRequestCount) {
  Result<DatasetBundle> dataset = GenerateDataset("restaurant");
  ASSERT_TRUE(dataset.ok());
  obs::Registry registry;
  MethodConfig config;
  config.telemetry = obs::TelemetryScope(&registry);
  std::unique_ptr<Resolver> resolver =
      MakeResolver(MethodId::kPps, dataset.value(), config);
  ResolverSession session = resolver->OpenSession();
  constexpr std::uint64_t kRequests = 5;
  constexpr std::uint64_t kBudget = 100;
  std::uint64_t delivered = 0;
  for (std::uint64_t r = 0; r < kRequests; ++r) {
    delivered += session.Resolve({kBudget, kBudget}).comparisons.size();
  }

  const obs::Counter* requests = registry.FindCounter("session.requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->value(), kRequests);
  for (const char* name :
       {"session.queue_wait_ns", "session.service_ns",
        "session.slice_comparisons"}) {
    const obs::Histogram* h = registry.FindHistogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_EQ(h->count(), kRequests) << name;
  }
  // Slice sizes are small integers (<= kBudget), so the histogram sum is
  // exact: it must equal the total comparisons actually delivered.
  const obs::Histogram* slices =
      registry.FindHistogram("session.slice_comparisons");
  EXPECT_EQ(slices->Snapshot().sum, delivered);
  EXPECT_EQ(delivered, kRequests * kBudget);  // stream has plenty left

  // One "session.resolve" span per request rides on top of the init
  // phase spans.
  EXPECT_GE(registry.num_spans(), kRequests);
}

TEST(TelemetrySessionTest, PipelineAndMergeMetricsAppearWhenSharded) {
  Result<DatasetBundle> dataset = GenerateDataset("restaurant");
  ASSERT_TRUE(dataset.ok());
  obs::Registry registry;
  MethodConfig config;
  config.num_shards = 2;
  config.lookahead = 4;
  config.telemetry = obs::TelemetryScope(&registry);
  std::unique_ptr<Resolver> resolver =
      MakeResolver(MethodId::kPps, dataset.value(), config);
  const std::vector<Comparison> drained = Drain(resolver.get(), 2000);
  ASSERT_FALSE(drained.empty());

  // Per-shard init gauges and pipeline counters exist under the shard
  // prefix; the merge draw counters across shards account for every
  // drained comparison.
  std::uint64_t draws = 0;
  for (std::size_t s = 0; s < config.num_shards; ++s) {
    const std::string prefix = "shard" + std::to_string(s) + ".";
    EXPECT_NE(registry.FindGauge(prefix + "phase.init_seconds"), nullptr);
    const obs::Counter* batches =
        registry.FindCounter(prefix + "pipeline.batches");
    ASSERT_NE(batches, nullptr);
    EXPECT_GT(batches->value(), 0u);
    EXPECT_NE(registry.FindHistogram(prefix + "pipeline.ring_occupancy"),
              nullptr);
    const obs::Counter* shard_draws =
        registry.FindCounter("merge.shard" + std::to_string(s) + ".draws");
    ASSERT_NE(shard_draws, nullptr);
    draws += shard_draws->value();
  }
  EXPECT_EQ(draws, drained.size());
}

TEST(TelemetrySessionTest, SnapshotAndTraceExportWhileServing) {
  // Snapshotting a live resolver between requests must be safe and
  // reflect the requests served so far.
  Result<DatasetBundle> dataset = GenerateDataset("restaurant");
  ASSERT_TRUE(dataset.ok());
  obs::Registry registry;
  MethodConfig config;
  config.lookahead = 2;
  config.telemetry = obs::TelemetryScope(&registry);
  std::unique_ptr<Resolver> resolver =
      MakeResolver(MethodId::kPps, dataset.value(), config);
  ResolverSession session = resolver->OpenSession();
  for (int r = 0; r < 3; ++r) {
    session.Resolve({50, 50});
    const std::string json = registry.SnapshotJson();
    EXPECT_NE(json.find("\"session.requests\": " + std::to_string(r + 1)),
              std::string::npos)
        << json;
  }
}

#endif  // SPER_NO_TELEMETRY

}  // namespace
}  // namespace sper
