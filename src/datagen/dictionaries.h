#ifndef SPER_DATAGEN_DICTIONARIES_H_
#define SPER_DATAGEN_DICTIONARIES_H_

#include <string>
#include <vector>

#include "datagen/rng.h"

/// \file dictionaries.h
/// Vocabulary pools for the synthetic datasets: small embedded cores of
/// real-looking words plus a syllable generator for unbounded, seeded
/// vocabulary (person names, place names, title words, ...).
///
/// Pool sizes are a modeling lever: the number of profiles sharing a value
/// token is |profiles| * usage / |pool|, which directly controls block
/// sizes and Neighbor List run lengths (see DESIGN.md §4).

namespace sper {

/// ~100 common first names.
const std::vector<std::string>& FirstNames();
/// ~100 common surnames.
const std::vector<std::string>& Surnames();
/// ~60 city names.
const std::vector<std::string>& Cities();
/// 50 US state abbreviations.
const std::vector<std::string>& States();
/// ~30 cuisine labels (restaurant).
const std::vector<std::string>& Cuisines();
/// ~25 street suffixes / address words.
const std::vector<std::string>& StreetWords();
/// ~140 generic English words (titles, venues, notes).
const std::vector<std::string>& CommonWords();
/// ~25 music genres (cddb).
const std::vector<std::string>& Genres();
/// ~30 academic venue words (cora).
const std::vector<std::string>& VenueWords();

/// A pronounceable pseudo-word of `min_syllables`..`max_syllables`
/// syllables, e.g. "belmora", "kuntavel". Unbounded vocabulary with
/// realistic letter statistics.
std::string SyllableWord(Rng& rng, std::size_t min_syllables = 2,
                         std::size_t max_syllables = 3);

/// A pool of `size` distinct syllable words (deduplicated, deterministic
/// for a given rng state).
std::vector<std::string> SyllablePool(Rng& rng, std::size_t size,
                                      std::size_t min_syllables = 2,
                                      std::size_t max_syllables = 3);

}  // namespace sper

#endif  // SPER_DATAGEN_DICTIONARIES_H_
