#include "io/dataset_io.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <vector>

#include "io/csv.h"

namespace sper {

Status WriteProfilesCsv(const ProfileStore& store, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << "profile,source,attribute,value\n";
  for (const Profile& p : store.profiles()) {
    const char* source = store.InSource1(p.id()) ? "1" : "2";
    for (const Attribute& a : p.attributes()) {
      out << p.id() << ',' << source << ',' << CsvEscape(a.name) << ','
          << CsvEscape(a.value) << '\n';
    }
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<ProfileStore> ReadProfilesCsv(const std::string& path,
                                     ErType er_type) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  std::vector<Profile> source1;
  std::vector<Profile> source2;
  std::string record;
  bool header = true;
  std::uint64_t last_profile = UINT64_MAX;
  std::vector<Profile>* current = nullptr;
  // Record-aware reading: a record may span physical lines when a quoted
  // attribute value contains newlines (CsvEscape quotes them on write).
  while (CsvReadRecord(in, &record)) {
    if (header) {
      header = false;
      continue;
    }
    if (record.empty()) continue;
    std::vector<std::string> fields = CsvSplit(record);
    if (fields.size() != 4) {
      return Status::IoError("malformed profile row: " + record);
    }
    const std::uint64_t id = std::stoull(fields[0]);
    const bool in_source1 = fields[1] == "1";
    std::vector<Profile>& target =
        (er_type == ErType::kCleanClean && !in_source1) ? source2 : source1;
    if (id != last_profile || current != &target) {
      target.emplace_back();
      last_profile = id;
      current = &target;
    }
    target.back().AddAttribute(std::move(fields[2]), std::move(fields[3]));
  }
  if (er_type == ErType::kDirty) {
    return ProfileStore::MakeDirty(std::move(source1));
  }
  return ProfileStore::MakeCleanClean(std::move(source1),
                                      std::move(source2));
}

Status WriteGroundTruthCsv(const GroundTruth& truth,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << "profile1,profile2\n";
  // truth.pairs() is a hash set; writing its iteration order would make
  // the file depend on the hash function and insertion history. Sort the
  // canonical pair keys so the same ground truth always serializes to the
  // same bytes.
  std::vector<std::uint64_t> keys(truth.pairs().begin(),
                                  truth.pairs().end());
  std::sort(keys.begin(), keys.end());
  for (std::uint64_t key : keys) {
    out << (key >> 32) << ',' << (key & 0xffffffffu) << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<GroundTruth> ReadGroundTruthCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  GroundTruth truth;
  std::string record;
  bool header = true;
  while (CsvReadRecord(in, &record)) {
    if (header) {
      header = false;
      continue;
    }
    if (record.empty()) continue;
    std::vector<std::string> fields = CsvSplit(record);
    if (fields.size() != 2) {
      return Status::IoError("malformed ground-truth row: " + record);
    }
    truth.AddMatch(static_cast<ProfileId>(std::stoul(fields[0])),
                   static_cast<ProfileId>(std::stoul(fields[1])));
  }
  return truth;
}

}  // namespace sper
