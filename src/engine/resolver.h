#ifndef SPER_ENGINE_RESOLVER_H_
#define SPER_ENGINE_RESOLVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"
#include "blocking/suffix_forest.h"
#include "core/profile_store.h"
#include "core/status.h"
#include "core/types.h"
#include "engine/engine.h"
#include "engine/method.h"
#include "metablocking/edge_weighting.h"
#include "obs/telemetry.h"
#include "parallel/cancel.h"
#include "progressive/workflow.h"
#include "sorted/neighbor_list.h"

/// \file resolver.h
/// The unified serving API: one `Resolver` in front of every engine
/// implementation, and `ResolverSession`s that serve pay-as-you-go
/// resolve requests from its long-lived ranked stream.
///
/// The paper's consumer is a client that repeatedly asks a long-lived
/// resolver for "the next best comparisons under my budget". This layer
/// makes that the public surface:
///
///   - `ResolverOptions` is the one configuration struct (method, threads,
///     shards, lookahead, global budget, method knobs) — validated with a
///     clear error `Status` instead of silently falling back;
///   - `Resolver::Create(store, options)` picks the implementation (plain
///     `ProgressiveEngine`, `ShardedEngine` for `num_shards > 1`, each
///     optionally running the emission pipeline for `lookahead > 0`) and
///     returns it behind the abstract `Engine` interface;
///   - `ResolverSession::Resolve(ResolveRequest)` draws a budgeted slice
///     off the shared stream under ticketed FIFO admission: concurrent
///     requests are admitted strictly in ticket order, and concatenating
///     the per-request slices in ticket order is bit-identical to one
///     un-batched drain of the same resolver.
///
/// Backpressure: with `lookahead > 0` the engine's emission pipeline keeps
/// producing refill batches between requests, but only up to the bounded
/// SPSC ring's `lookahead` slots — a slow consumer never buffers more than
/// the ring, and a burst of requests is served from batches the producers
/// already completed (see parallel/emission_pipeline.h).

namespace sper {

/// Everything a Resolver needs to serve one progressive ER task: the one
/// public configuration struct, validated by Validate() and lowered to
/// the internal per-engine `EngineConfig` by Resolver::Create.
struct ResolverOptions {
  /// Progressive method to run.
  MethodId method = MethodId::kPps;

  /// Threads for the initialization phase (token-index build, block
  /// filtering, edge weighting; split across shard constructions when
  /// sharded). Must be in [1, kMaxThreads] — 0 is rejected by Validate()
  /// rather than silently meaning "one thread".
  std::size_t num_threads = 1;

  /// Hash shards. 1 = plain engine; > 1 partitions the store and serves
  /// one engine per shard behind a deterministic k-way merged stream in
  /// original profile ids. Must be in [1, kMaxShards].
  std::size_t num_shards = 1;

  /// Global pay-as-you-go budget: maximum comparisons the resolver will
  /// emit across all requests and drains; 0 = unlimited.
  std::uint64_t budget = 0;

  /// Emission pipeline lookahead (per shard when sharded): how many
  /// completed refill slots producers may run ahead of consumption; 0 =
  /// the serial reference path. Applies to the batch-refilling methods
  /// (PBS, PPS); the sort-based methods ignore it. The emitted stream is
  /// bit-identical at every setting. Must be <= kMaxLookahead.
  std::size_t lookahead = 0;

  /// Blocking workflow for the equality-based methods (PBS, PPS).
  TokenWorkflowOptions workflow;
  /// Blocking-graph edge-weighting scheme for PBS/PPS.
  WeightingScheme scheme = WeightingScheme::kArcs;
  /// PPS comparisons retained per profile (PPS only; must be > 0).
  std::size_t pps_kmax = 100;
  /// GS-PSN window range.
  std::size_t gs_wmax = 20;
  /// SA-PSAB suffix forest parameters.
  SuffixForestOptions suffix;
  /// Neighbor List construction for the sort-based methods.
  NeighborListOptions list;
  /// Schema-based blocking key; required by kPsn, ignored otherwise.
  SchemaKeyFn schema_key;

  /// Telemetry sink: hand a scope into an obs::Registry to record
  /// per-phase init timings (per shard when sharded), emission-pipeline
  /// health, k-way-merge draw balance and per-request session metrics
  /// ("session.queue_wait_ns", "session.service_ns",
  /// "session.slice_comparisons" histograms plus "session.resolve"
  /// spans). Default-constructed = disabled; the emitted stream is
  /// bit-identical either way, and the compile-time SPER_NO_TELEMETRY
  /// switch removes the seam entirely.
  obs::TelemetryScope telemetry;

  /// Validation bounds (shared with the CLI's strict flag parsing).
  static constexpr std::size_t kMaxThreads = 256;
  static constexpr std::size_t kMaxShards = 1024;
  static constexpr std::size_t kMaxLookahead = 4096;

  /// OK iff the configuration is servable; otherwise an InvalidArgument
  /// Status naming the offending field. Called by Resolver::Create.
  Status Validate() const;
};

/// Identifies the client behind a request for per-client QoS (token-bucket
/// rate limiting, shed-backoff state) in the serving layer
/// (src/serving/qos.h). 0 = anonymous: anonymous requests share one
/// bucket. The plain Resolver ignores it — FIFO admission is client-blind.
using ClientId = std::uint64_t;

/// Priority class of a request, used by the QoS admission controller's
/// weighted-round-robin lanes (src/serving/qos.h). The plain Resolver
/// ignores it — FIFO admission is priority-blind; QoS scheduling is the
/// serving layer's job.
enum class Priority : std::uint8_t {
  kInteractive = 0,  // latency-sensitive, highest weight
  kBatch = 1,        // throughput work, middle weight
  kBestEffort = 2,   // scavenger class, lowest weight
};
inline constexpr std::size_t kNumPriorities = 3;

/// "interactive" / "batch" / "best_effort" (metric-name-safe spellings).
std::string_view ToString(Priority priority);

/// Inverse of ToString; also accepts "besteffort" and "best-effort".
/// nullopt for unknown names.
std::optional<Priority> ParsePriority(std::string_view name);

/// One pay-as-you-go request against a ResolverSession.
struct ResolveRequest {
  /// Comparisons this request pays for: the returned slice holds at most
  /// this many. Unlike ResolverOptions::budget, 0 here buys nothing — a
  /// zero-budget request is admitted (it takes a ticket) but returns an
  /// empty slice without consuming the stream.
  std::uint64_t budget = 0;

  /// Response size cap: the slice additionally holds at most this many
  /// comparisons (a network frontend's message bound). 0 = no cap beyond
  /// `budget`. Budget beyond the cap is NOT spent — pay only for what is
  /// delivered.
  std::size_t max_batch = 0;

  /// Wall-clock deadline in milliseconds, measured from *arrival* (queue
  /// wait counts — an interactive client cares about total latency, not
  /// service time); 0 = none. An expired request returns whatever partial
  /// slice it drew with `deadline_exceeded()` set; nothing is torn down and
  /// the next ticket continues the stream bit-identically. FIFO admission
  /// is never skipped: an expired queued request still takes its turn,
  /// it just draws nothing once admitted.
  std::uint64_t deadline_ms = 0;

  /// Optional external cancellation: when this token fires mid-slice the
  /// request returns its partial slice with `cancelled()` set (same
  /// lossless-continuation guarantee as a deadline). Combined with
  /// deadline_ms, whichever fires first wins. Default = never fires.
  CancelToken cancel;

  /// Who is asking (0 = anonymous). Read by the QoS admission controller
  /// for per-client rate limiting; ignored by the plain Resolver. The
  /// network server (src/net/server.h) substitutes its per-connection id
  /// for 0 so anonymous remote clients still get per-connection QoS.
  ClientId client_id = 0;

  /// The request's priority class. Read by the QoS admission controller's
  /// weighted lanes; ignored by the plain Resolver.
  Priority priority = Priority::kInteractive;

  /// Validation bounds shared by every request-accepting surface (see
  /// ValidateResolveRequest below). kMaxBatch also bounds one wire
  /// response frame: net/wire.h sizes kMaxFramePayload so a slice of
  /// kMaxBatch comparisons always fits one frame.
  static constexpr std::size_t kMaxBatch = 1u << 20;
  static constexpr std::uint64_t kMaxDeadlineMs = 86'400'000;  // 24 h
};

/// The one request validator, shared by the CLI flag path (sper_cli run /
/// client build requests from strict flags) and the wire decode path
/// (net/wire.cc validates every decoded frame before the server serves
/// it): max_batch <= kMaxBatch, deadline_ms <= kMaxDeadlineMs, priority a
/// known class. `budget` is intentionally unbounded — delivery is capped
/// by max_batch (the server clamps 0 = uncapped to kMaxBatch), so a huge
/// budget buys many slices, never one huge response. OK iff servable;
/// InvalidArgument naming the offending field otherwise.
Status ValidateResolveRequest(const ResolveRequest& request);

/// What ultimately happened to a request — the one authoritative outcome
/// of a ResolveResult. Exactly one value applies per result; the legacy
/// `deadline_exceeded()` / `cancelled()` readers and the `status` field
/// derive from it (see ResolveResult).
enum class ResolveOutcome : std::uint8_t {
  /// Admitted and served normally. The slice may still be short or empty
  /// when the stream or a budget ran out — see the `stream_exhausted` /
  /// `budget_exhausted` flags, which are orthogonal stream facts, not
  /// outcomes.
  kServed = 0,
  /// Admitted, but the deadline passed before the slice filled; the
  /// partial slice is returned and the stream is intact.
  kDeadlineExpired,
  /// Admitted, but the request's CancelToken fired first; partial slice
  /// as above.
  kCancelled,
  /// Never admitted: load-shed by the QoS controller (queue bound or
  /// rate limit). status is ResourceExhausted and `retry_after_ms` holds
  /// the backoff hint. The stream was not consumed.
  kShed,
  /// Never served: the QoS controller evicted the queued request because
  /// its deadline would expire before its estimated service start. Same
  /// client-visible meaning as kDeadlineExpired (deadline_exceeded()
  /// reads true), but no stream capacity was spent on it.
  kEvicted,
  /// Never admitted: the resolver is draining, or its engine was already
  /// poisoned. status is FailedPrecondition.
  kRejected,
  /// The request observed the engine's contained producer failure first;
  /// status is Internal with shard/batch context. Terminal for the
  /// resolver (later requests get kRejected).
  kFailed,
};

/// Stable lowercase name ("served", "deadline_expired", ...).
std::string_view ToString(ResolveOutcome outcome);

/// One served slice of the resolver's ranked stream.
struct ResolveResult {
  /// FIFO admission ticket: slices concatenated in ticket order are
  /// bit-identical to one un-batched drain. Tickets are dense, starting
  /// at 0 per resolver.
  std::uint64_t ticket = 0;

  /// The next best comparisons, in global emission order; at most
  /// min(budget, max_batch) of them. Shorter (possibly empty) when the
  /// stream ran dry or the resolver's global budget ran out mid-slice.
  std::vector<Comparison> comparisons;

  /// The underlying method ran out of comparisons during this slice.
  /// Orthogonal to `outcome` (a kServed slice can be the one that drains
  /// the stream).
  bool stream_exhausted = false;

  /// The resolver's global budget (ResolverOptions::budget) ran out
  /// during, or before, this slice. Orthogonal to `outcome`.
  bool budget_exhausted = false;

  /// The one authoritative disposition of the request. Everything below
  /// derives from it; new dispositions (QoS shed, eviction) extend this
  /// enum instead of growing another ad-hoc flag.
  ResolveOutcome outcome = ResolveOutcome::kServed;

  /// Why the request could not be (fully) served, as a transportable
  /// error. Ok for kServed/kDeadlineExpired/kCancelled/kEvicted (a cut is
  /// not an error); ResourceExhausted with a human-readable reason for
  /// kShed; FailedPrecondition for kRejected; Internal — with shard and
  /// batch context — for kFailed. Carries the message; `outcome` carries
  /// the decision.
  Status status = Status::Ok();

  /// Backoff hint for kShed results: the client should wait at least this
  /// long before retrying (token-bucket deficit, multiplied by an
  /// exponential per-client backoff under consecutive sheds). 0 for every
  /// other outcome.
  std::uint64_t retry_after_ms = 0;

  /// Thin readers over `outcome`, kept for the pre-QoS call sites.
  /// deadline_exceeded() covers eviction too: an evicted request's
  /// deadline is equally missed, the controller just found out before
  /// spending stream capacity on it.
  bool deadline_exceeded() const {
    return outcome == ResolveOutcome::kDeadlineExpired ||
           outcome == ResolveOutcome::kEvicted;
  }
  bool cancelled() const { return outcome == ResolveOutcome::kCancelled; }

  /// True when the request was admitted to the stream (it holds a live
  /// ticket and its slice — possibly empty — is part of the global
  /// emission order). Shed/evicted/rejected requests never consume the
  /// stream.
  bool admitted() const {
    return outcome == ResolveOutcome::kServed ||
           outcome == ResolveOutcome::kDeadlineExpired ||
           outcome == ResolveOutcome::kCancelled ||
           outcome == ResolveOutcome::kFailed;
  }
};

class ResolverSession;

/// The unified serving facade: owns one Engine picked by Create() and the
/// FIFO admission state its sessions serve under. Being a
/// ProgressiveEmitter, a Resolver still composes with every streaming
/// consumer (evaluator, benches) as a plain un-batched drain.
///
/// Thread-safety: Serve() may be called from any number of threads. A
/// ResolverSession's own accounting is NOT synchronized — give each
/// concurrent client its own session (sessions are lightweight; all of
/// them share this resolver's stream and admission order). Next() is a
/// single-consumer drain and must not be interleaved with concurrent
/// Serve() calls.
class Resolver : public ProgressiveEmitter {
 public:
  /// Validates `options`, builds the matching engine (plain for one
  /// shard, sharded otherwise; pipelined emission when lookahead > 0)
  /// and wraps it. Returns InvalidArgument without touching the store
  /// when validation fails.
  ///
  /// Lifetime: the store must outlive the resolver. (With num_shards > 1
  /// the shards copy their profiles and only construction reads the
  /// store, but the plain engine keeps references into it for its whole
  /// emission phase — see ProgressiveEmitter's lifetime note — so the
  /// portable contract is store-outlives-resolver.)
  static Result<std::unique_ptr<Resolver>> Create(const ProfileStore& store,
                                                  ResolverOptions options);

  /// Un-batched drain: the globally next best comparison, honoring the
  /// global budget. Equivalent to engine().Next().
  std::optional<Comparison> Next() override { return engine_->Next(); }

  /// The underlying method's acronym, e.g. "PPS".
  std::string_view name() const override { return engine_->name(); }

  /// The engine behind the resolver, through the abstract interface.
  Engine& engine() { return *engine_; }
  const Engine& engine() const { return *engine_; }

  /// Comparisons emitted so far (requests + drains combined).
  std::uint64_t emitted() const { return engine_->emitted(); }

  /// True once the global budget has been spent (never for budget 0).
  bool BudgetExhausted() const { return engine_->BudgetExhausted(); }

  /// Unified initialization diagnostics of the underlying engine.
  const InitStats& init_stats() const { return engine_->init_stats(); }

  /// Shards serving the stream (1 for a plain engine).
  std::size_t num_shards() const { return engine_->num_shards(); }

  /// The validated configuration the resolver was created with.
  const ResolverOptions& options() const { return options_; }

  /// Opens a serving session. Sessions are lightweight handles: any
  /// number may be open at once, all sharing this resolver's stream and
  /// FIFO admission order. The resolver must outlive its sessions.
  ResolverSession OpenSession();

  /// Serves one request (ResolverSession::Resolve delegates here): takes
  /// the next admission ticket, waits until every earlier ticket has been
  /// served, then draws up to min(budget, max_batch) comparisons off the
  /// shared stream — giving up losslessly at the request's deadline or
  /// cancellation. Blocking; safe from concurrent threads, including
  /// concurrently with Drain(). After Drain() began, requests are
  /// rejected with FailedPrecondition (empty slice, no stream consumed).
  ResolveResult Serve(const ResolveRequest& request);

  /// Graceful drain: stops admitting new requests, waits until every
  /// already-ticketed request finished (or cut itself at its deadline),
  /// then drains the engine — shutting down and joining shard producers.
  /// Blocking; idempotent; safe to race with concurrent Serve() calls
  /// (each request is either fully served or cleanly rejected, never
  /// half-drawn). The resolver stays queryable afterwards: Serve()
  /// rejects, Next() returns nullopt.
  void Drain();

  /// True once Drain() has begun (new requests are being rejected).
  bool draining() const {
    return draining_.load(std::memory_order_seq_cst);
  }

 private:
  Resolver(ResolverOptions options, std::unique_ptr<Engine> engine);

  ResolverOptions options_;
  std::unique_ptr<Engine> engine_;

  /// Session metric sinks, created once at construction when telemetry is
  /// enabled (all nullptr otherwise). Histograms record nanoseconds
  /// except slice_comparisons_ (delivered comparisons per request).
  obs::Histogram* queue_wait_ns_ = nullptr;
  obs::Histogram* service_ns_ = nullptr;
  obs::Histogram* slice_comparisons_ = nullptr;
  obs::Counter* requests_ = nullptr;
  /// Robustness counters: requests cut by deadline / explicit cancel,
  /// requests rejected (draining or poisoned), requests that observed an
  /// engine error.
  obs::Counter* deadline_exceeded_ = nullptr;
  obs::Counter* cancelled_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* errors_ = nullptr;

  /// Ticketed FIFO admission over the shared stream. The ticket is taken
  /// atomically on arrival — *before* the serve mutex — so admission
  /// order is arrival order even when the mutex itself would let a later
  /// caller barge past a longer-waiting one; `cv_` then admits waiters
  /// strictly in ticket order.
  ///
  /// Drain handshake (why seq_cst): Serve re-checks `draining_` *after*
  /// its ticket fetch_add, and Drain loads the ticket horizon *after* its
  /// `draining_` store. In the seq_cst total order, either the request's
  /// ticket precedes the horizon load (Drain waits for it) or the store
  /// precedes the re-check (the request sees draining and rejects itself,
  /// still advancing now_serving_) — so no admitted request can slip past
  /// a drain, and no drain can strand a ticketed waiter.
  std::atomic<std::uint64_t> next_ticket_{0};
  Mutex mutex_;
  CondVar cv_;
  std::uint64_t now_serving_ SPER_GUARDED_BY(mutex_) = 0;

  std::atomic<bool> draining_{false};
  /// Serializes concurrent Drain() calls; the engine is drained exactly
  /// once, and a second Drain() returns only after the first finished.
  Mutex drain_mutex_;
  bool engine_drained_ SPER_GUARDED_BY(drain_mutex_) = false;
  /// Set once a request observed the engine's sticky error; later
  /// requests are rejected with FailedPrecondition instead of
  /// re-reporting the Internal status.
  bool poison_reported_ SPER_GUARDED_BY(mutex_) = false;
};

/// A client's handle on a Resolver's stream: per-session accounting over
/// the resolver's shared ticketed FIFO admission. Copyable/movable;
/// sessions hold no stream state of their own (the scheduler — the
/// resolver — owns the cursor, per the serving framing of progressive
/// ER). The accounting counters are not synchronized: one session per
/// concurrent client (see the Resolver thread-safety note).
class ResolverSession {
 public:
  /// The resolver must outlive the session.
  explicit ResolverSession(Resolver& resolver) : resolver_(&resolver) {}

  /// Serves one pay-as-you-go request; see Resolver::Serve.
  ResolveResult Resolve(const ResolveRequest& request) {
    ResolveResult result = resolver_->Serve(request);
    ++requests_served_;
    delivered_ += result.comparisons.size();
    return result;
  }

  /// Requests this session has served (including empty slices).
  std::uint64_t requests_served() const { return requests_served_; }

  /// Comparisons this session has delivered across all requests.
  std::uint64_t delivered() const { return delivered_; }

 private:
  Resolver* resolver_;
  std::uint64_t requests_served_ = 0;
  std::uint64_t delivered_ = 0;
};

inline ResolverSession Resolver::OpenSession() {
  return ResolverSession(*this);
}

}  // namespace sper

#endif  // SPER_ENGINE_RESOLVER_H_
