#ifndef SPER_BENCH_BENCH_UTIL_H_
#define SPER_BENCH_BENCH_UTIL_H_

// Shared plumbing for the paper-reproduction bench binaries: light CLI
// parsing (--scale / --ecmax), per-dataset method configuration (the
// paper's Sec. 7 parameter choices), recall-curve table printing.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "datagen/datagen.h"
#include "engine/resolver.h"
#include "eval/evaluator.h"
#include "eval/experiment.h"
#include "eval/table.h"

namespace sper {
namespace bench {

/// Command-line knobs shared by the bench binaries.
struct BenchArgs {
  /// Multiplies dataset sizes (1.0 = the scale documented in DESIGN.md).
  double scale = 1.0;
  /// Overrides the run's ec* cap when > 0.
  double ecmax = 0.0;
};

inline BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      args.scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--ecmax=", 8) == 0) {
      args.ecmax = std::atof(argv[i] + 8);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--scale=S] [--ecmax=E]\n", argv[0]);
      std::exit(0);
    }
  }
  return args;
}

/// One drained comparison stream reduced to a comparable digest: FNV-1a
/// over every emitted (i, j, weight). Shared by the digest-checked
/// serving benches (bench_emission_throughput, bench_resolver_session) —
/// "match" in their tables means two drains folded to the same digest,
/// i.e. bit-identical streams.
struct DrainResult {
  std::uint64_t digest = 1469598103934665603ull;  // FNV-1a offset basis
  std::uint64_t emitted = 0;
  /// Requests issued by a session-batched drain; 0 for raw drains.
  std::uint64_t requests = 0;
  double wall_ms = 0.0;

  void Fold(const Comparison& c) {
    const auto mix = [this](std::uint64_t v) {
      digest ^= v;
      digest *= 1099511628211ull;  // FNV-1a prime
    };
    mix(c.i);
    mix(c.j);
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(c.weight));
    std::memcpy(&bits, &c.weight, sizeof(bits));
    mix(bits);
    ++emitted;
  }

  bool SameStream(const DrainResult& other) const {
    return digest == other.digest && emitted == other.emitted;
  }
};

/// Parses a comma-separated size list flag value ("1,4,64").
inline std::vector<std::size_t> ParseSizeList(const char* p) {
  std::vector<std::size_t> out;
  while (*p != '\0') {
    out.push_back(std::strtoul(p, nullptr, 10));
    while (*p != '\0' && *p != ',') ++p;
    if (*p == ',') ++p;
  }
  return out;
}

/// Resolver::Create for bench binaries: prints the error Status and
/// exits non-zero instead of returning it.
inline std::unique_ptr<Resolver> CreateResolverOrDie(
    const ProfileStore& store, const ResolverOptions& options) {
  Result<std::unique_ptr<Resolver>> resolver =
      Resolver::Create(store, options);
  if (!resolver.ok()) {
    std::fprintf(stderr, "%s\n", resolver.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(resolver).value();
}

/// One machine-readable measurement of a bench run. Serialized by
/// WriteJsonRecords; the schema is documented in bench/BENCH.md.
struct JsonRecord {
  std::string dataset;
  double scale = 1.0;
  std::size_t threads = 1;
  /// Which measured code path the record belongs to (e.g. "gather_csr").
  std::string path;
  double wall_ms = 0.0;
  /// Speedup relative to the record's documented baseline (1.0 for the
  /// baseline rows themselves).
  double speedup = 1.0;
  /// Hash shards of a ShardedEngine run; 1 for unsharded paths.
  std::size_t shards = 1;
  /// Emission pipeline lookahead of the run; 0 for serial-emission paths.
  std::size_t lookahead = 0;
  /// ResolverSession request size of a session-batched drain
  /// (bench_resolver_session); 0 for un-batched / non-session paths.
  std::size_t batch_size = 0;
  /// Additional numeric fields serialized verbatim into the record
  /// (e.g. telemetry-run observations: "overhead", "ring_occupancy_p99",
  /// "queue_wait_p50_us"). Names must be stable per path — BENCH.md
  /// documents them.
  std::vector<std::pair<std::string, double>> extras;
};

/// Escapes a string for embedding inside a JSON string literal: quotes,
/// backslashes and control characters (dataset or path names must never
/// be printf'd raw into the `"..."` fields).
inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Writes the records as a JSON array of flat objects, one per line.
/// Returns false (and prints to stderr) when the file cannot be opened.
inline bool WriteJsonRecords(const std::string& file,
                             const std::vector<JsonRecord>& records) {
  std::FILE* out = std::fopen(file.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", file.c_str());
    return false;
  }
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const JsonRecord& r = records[i];
    std::fprintf(out,
                 "  {\"dataset\": \"%s\", \"scale\": %g, \"threads\": %zu, "
                 "\"shards\": %zu, \"lookahead\": %zu, \"batch_size\": %zu, "
                 "\"path\": \"%s\", "
                 "\"wall_ms\": %.3f, \"speedup\": %.3f",
                 JsonEscape(r.dataset).c_str(), r.scale, r.threads, r.shards,
                 r.lookahead, r.batch_size, JsonEscape(r.path).c_str(),
                 r.wall_ms, r.speedup);
    for (const auto& [name, value] : r.extras) {
      std::fprintf(out, ", \"%s\": %.6g", JsonEscape(name).c_str(), value);
    }
    std::fprintf(out, "}%s\n", i + 1 < records.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("wrote %zu records to %s\n", records.size(), file.c_str());
  return true;
}

/// The paper's GS-PSN window ranges: 20 for structured datasets, 200 for
/// the large heterogeneous ones — except that the two web-scale datasets
/// get smaller ranges, mirroring the paper's own memory cap on freebase
/// (Sec. 7.2; see DESIGN.md §4).
inline MethodConfig ConfigFor(const std::string& dataset) {
  MethodConfig config;
  if (dataset == "movies") {
    config.gs_wmax = 200;
  } else if (dataset == "dbpedia") {
    config.gs_wmax = 50;
  } else if (dataset == "freebase") {
    config.gs_wmax = 20;
  } else {
    config.gs_wmax = 20;  // structured datasets
  }
  return config;
}

/// Recall of a finished run at a given ec* (the curve is sampled densely
/// and recall is monotone, so the last sample at or before the target is
/// exact up to sampling resolution).
inline double RecallAt(const RunResult& result, double ecstar) {
  double recall = 0.0;
  for (const CurvePoint& point : result.curve) {
    if (point.ecstar <= ecstar + 1e-9) {
      recall = point.recall;
    } else {
      break;
    }
  }
  return recall;
}

/// Prints one "recall progressiveness" table: rows = ec* grid, one column
/// per finished run (the shape of one panel of Figs. 1/9/11).
inline void PrintRecallTable(const std::string& title,
                             const std::vector<double>& grid,
                             const std::vector<RunResult>& runs) {
  std::printf("\n== %s ==\n", title.c_str());
  std::vector<std::string> headers = {"ec*"};
  for (const RunResult& run : runs) headers.push_back(run.method);
  TextTable table(headers);
  for (double ecstar : grid) {
    std::vector<std::string> row = {FormatDouble(ecstar, 1)};
    for (const RunResult& run : runs) {
      row.push_back(FormatDouble(RecallAt(run, ecstar), 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

/// Prints the normalized-AUC table of one dataset (one group of bars of
/// Figs. 10/12).
inline void PrintAucTable(const std::string& title,
                          const std::vector<double>& auc_at,
                          const std::vector<RunResult>& runs) {
  std::printf("\n== %s ==\n", title.c_str());
  std::vector<std::string> headers = {"method"};
  for (double at : auc_at) {
    headers.push_back("AUC*@" + FormatDouble(at, 0));
  }
  TextTable table(headers);
  for (const RunResult& run : runs) {
    std::vector<std::string> row = {run.method};
    for (double auc : run.auc_norm) row.push_back(FormatDouble(auc, 3));
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace bench
}  // namespace sper

#endif  // SPER_BENCH_BENCH_UTIL_H_
