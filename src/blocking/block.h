#ifndef SPER_BLOCKING_BLOCK_H_
#define SPER_BLOCKING_BLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

/// \file block.h
/// One block b_i: the set of profiles indexed under one blocking key.

namespace sper {

/// A block: the profiles that share one blocking key. Profile ids are kept
/// sorted ascending, which lets Clean-Clean ER partition a block into its
/// source-1 prefix and source-2 suffix with one binary search.
struct Block {
  /// The blocking key that produced the block (attribute-value token,
  /// suffix, or schema-based key). Kept for inspection and determinism.
  std::string key;
  /// Member profile ids, sorted ascending, no duplicates.
  std::vector<ProfileId> profiles;

  /// |b_i|: number of profiles in the block.
  std::size_t size() const { return profiles.size(); }
};

}  // namespace sper

#endif  // SPER_BLOCKING_BLOCK_H_
