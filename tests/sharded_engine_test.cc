// Sharded serving determinism suite. The contract under test
// (src/engine/sharded_engine.h):
//
// - S=1 is *bit-identical* to a plain ProgressiveEngine (pairs and
//   weights), for PPS and PBS on Dirty and Clean-Clean stores;
// - for every S the merged global stream is invariant to the thread
//   count (1 vs 4) and across repeated constructions;
// - emissions are expressed in original profile ids and respect the
//   original store's comparability rule;
// - the pay-as-you-go budget is enforced *globally* across shards;
// - the store partition itself preserves sources, order and ids.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/store_partition.h"
#include "datagen/datagen.h"
#include "engine/progressive_engine.h"
#include "engine/sharded_engine.h"
#include "parallel/ordered_merge.h"

namespace sper {
namespace {

ProfileStore DirtyStore() {
  Result<DatasetBundle> ds = GenerateDataset("restaurant", {});
  EXPECT_TRUE(ds.ok());
  return std::move(ds.value().store);
}

ProfileStore CleanCleanStore() {
  DatagenOptions gen;
  gen.scale = 0.1;
  Result<DatasetBundle> ds = GenerateDataset("movies", gen);
  EXPECT_TRUE(ds.ok());
  return std::move(ds.value().store);
}

std::vector<Comparison> Drain(ProgressiveEmitter* emitter,
                              std::size_t limit) {
  std::vector<Comparison> out;
  while (out.size() < limit) {
    std::optional<Comparison> c = emitter->Next();
    if (!c.has_value()) break;
    out.push_back(*c);
  }
  return out;
}

void ExpectSameSequence(const std::vector<Comparison>& a,
                        const std::vector<Comparison>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].i, b[k].i) << "position " << k;
    EXPECT_EQ(a[k].j, b[k].j) << "position " << k;
    EXPECT_EQ(a[k].weight, b[k].weight) << "position " << k;
  }
}

// --------------------------------------------------------- KWayMerge unit

TEST(KWayMergeTest, MergesSortedStreamsInOrderWithStableTies) {
  auto make_stream = [](std::vector<int> values) {
    auto it = std::make_shared<std::size_t>(0);
    auto data = std::make_shared<std::vector<int>>(std::move(values));
    return [it, data]() -> std::optional<int> {
      if (*it >= data->size()) return std::nullopt;
      return (*data)[(*it)++];
    };
  };
  KWayMerge<int> merge;
  merge.AddStream(make_stream({1, 4, 7}));
  merge.AddStream(make_stream({1, 2, 9}));
  merge.AddStream(make_stream({}));
  std::vector<int> out;
  while (std::optional<int> v = merge.Next()) out.push_back(*v);
  EXPECT_EQ(out, (std::vector<int>{1, 1, 2, 4, 7, 9}));
}

// ----------------------------------------------------- partition invariants

TEST(StorePartitionTest, SingleShardIsIdentityCopy) {
  const ProfileStore store = CleanCleanStore();
  std::vector<StoreShard> shards = PartitionStore(store, 1);
  ASSERT_EQ(shards.size(), 1u);
  const StoreShard& shard = shards[0];
  ASSERT_EQ(shard.store.size(), store.size());
  EXPECT_EQ(shard.store.er_type(), store.er_type());
  EXPECT_EQ(shard.store.split_index(), store.split_index());
  for (ProfileId id = 0; id < store.size(); ++id) {
    EXPECT_EQ(shard.to_global[id], id);
  }
}

TEST(StorePartitionTest, ShardsCoverStoreAndPreserveSources) {
  const ProfileStore store = CleanCleanStore();
  for (std::size_t num_shards : {2u, 4u, 8u}) {
    std::vector<StoreShard> shards = PartitionStore(store, num_shards);
    ASSERT_EQ(shards.size(), num_shards);
    std::set<ProfileId> seen;
    std::size_t total = 0;
    for (const StoreShard& shard : shards) {
      ASSERT_EQ(shard.to_global.size(), shard.store.size());
      total += shard.store.size();
      for (ProfileId local = 0; local < shard.store.size(); ++local) {
        const ProfileId global = shard.to_global[local];
        seen.insert(global);
        // Source membership is preserved under translation.
        EXPECT_EQ(shard.store.InSource1(local), store.InSource1(global));
        // Ascending global order within each source range.
        if (local > 0 &&
            shard.store.InSource1(local) == shard.store.InSource1(local - 1)) {
          EXPECT_LT(shard.to_global[local - 1], global);
        }
        // Attributes travel with the profile.
        EXPECT_EQ(shard.store.profile(local).attributes().size(),
                  store.profile(global).attributes().size());
      }
    }
    EXPECT_EQ(total, store.size());
    EXPECT_EQ(seen.size(), store.size());
  }
}

// -------------------------------------------------- sharded engine streams

struct ShardCase {
  MethodId method;
  bool clean_clean;
};

class ShardedDeterminismTest : public ::testing::TestWithParam<ShardCase> {};

std::vector<Comparison> ShardedPrefix(const ProfileStore& store,
                                      MethodId method,
                                      std::size_t num_shards,
                                      std::size_t num_threads,
                                      std::size_t limit) {
  EngineConfig config;
  config.method = method;
  config.num_threads = num_threads;
  ShardedEngine engine(store, std::move(config), num_shards);
  return Drain(&engine, limit);
}

TEST_P(ShardedDeterminismTest, SingleShardBitIdenticalToPlainEngine) {
  const ProfileStore store =
      GetParam().clean_clean ? CleanCleanStore() : DirtyStore();
  EngineConfig plain;
  plain.method = GetParam().method;
  ProgressiveEngine reference(store, plain);
  const std::vector<Comparison> expected = Drain(&reference, 3000);

  const std::vector<Comparison> actual =
      ShardedPrefix(store, GetParam().method, 1, 1, 3000);
  ExpectSameSequence(actual, expected);
}

TEST_P(ShardedDeterminismTest, MergedPrefixInvariantAcrossThreadCounts) {
  const ProfileStore store =
      GetParam().clean_clean ? CleanCleanStore() : DirtyStore();
  for (std::size_t num_shards : {1u, 2u, 4u, 8u}) {
    const std::vector<Comparison> reference =
        ShardedPrefix(store, GetParam().method, num_shards, 1, 2000);
    for (std::size_t num_threads : {1u, 4u}) {
      const std::vector<Comparison> run = ShardedPrefix(
          store, GetParam().method, num_shards, num_threads, 2000);
      SCOPED_TRACE("shards=" + std::to_string(num_shards) +
                   " threads=" + std::to_string(num_threads));
      ExpectSameSequence(run, reference);
    }
  }
}

TEST_P(ShardedDeterminismTest, EmitsOriginalComparableIds) {
  const ProfileStore store =
      GetParam().clean_clean ? CleanCleanStore() : DirtyStore();
  const std::vector<Comparison> merged =
      ShardedPrefix(store, GetParam().method, 4, 2, 2000);
  EXPECT_FALSE(merged.empty());
  for (const Comparison& c : merged) {
    ASSERT_LT(c.i, store.size());
    ASSERT_LT(c.j, store.size());
    EXPECT_LT(c.i, c.j);
    EXPECT_TRUE(store.IsComparable(c.i, c.j));
    // Both endpoints hash to the same shard: only intra-shard pairs exist.
    EXPECT_EQ(ShardOf(c.i, 4), ShardOf(c.j, 4));
  }
}

INSTANTIATE_TEST_SUITE_P(
    PpsAndPbs, ShardedDeterminismTest,
    ::testing::Values(ShardCase{MethodId::kPps, false},
                      ShardCase{MethodId::kPps, true},
                      ShardCase{MethodId::kPbs, false},
                      ShardCase{MethodId::kPbs, true}),
    [](const ::testing::TestParamInfo<ShardCase>& info) {
      std::string name(ToString(info.param.method));
      name += info.param.clean_clean ? "_CleanClean" : "_Dirty";
      return name;
    });

// ------------------------------------------------------------ global budget

TEST(ShardedEngineTest, GlobalBudgetEnforcedAcrossShards) {
  const ProfileStore store = DirtyStore();
  EngineConfig config;
  config.method = MethodId::kPps;
  config.budget = 25;
  ShardedEngine engine(store, config, 4);

  const std::vector<Comparison> emitted = Drain(&engine, 1000000);
  EXPECT_EQ(emitted.size(), 25u);
  EXPECT_EQ(engine.emitted(), 25u);
  EXPECT_TRUE(engine.BudgetExhausted());
  EXPECT_FALSE(engine.Next().has_value());

  // Unbudgeted, the same sharded run emits strictly more: the cap came
  // from the global budget, not from any one shard running dry.
  EngineConfig unlimited = config;
  unlimited.budget = 0;
  ShardedEngine full(store, std::move(unlimited), 4);
  EXPECT_GT(Drain(&full, 1000000).size(), 25u);
}

TEST(ShardedEngineTest, BudgetedPrefixMatchesUnbudgetedStream) {
  const ProfileStore store = DirtyStore();
  EngineConfig config;
  config.method = MethodId::kPbs;
  ShardedEngine full(store, config, 2);
  const std::vector<Comparison> reference = Drain(&full, 40);

  config.budget = 40;
  ShardedEngine budgeted(store, std::move(config), 2);
  ExpectSameSequence(Drain(&budgeted, 1000000), reference);
}

TEST(ShardedEngineTest, ReportsAggregateInitStats) {
  const ProfileStore store = DirtyStore();
  EngineConfig config;
  config.method = MethodId::kPps;
  ShardedEngine engine(store, std::move(config), 4);
  EXPECT_EQ(engine.name(), "PPS");
  EXPECT_EQ(engine.num_shards(), 4u);
  const InitStats& stats = engine.init_stats();
  EXPECT_GT(stats.num_blocks, 0u);
  EXPECT_GT(stats.aggregate_cardinality, 0u);
  ASSERT_EQ(stats.shard_sizes.size(), 4u);
  std::size_t total = 0;
  for (std::size_t size : stats.shard_sizes) total += size;
  EXPECT_EQ(total, store.size());
}

TEST(ShardedEngineTest, MoreShardsThanProfilesStillServes) {
  // Tiny store, many shards: most shards are barren and skipped; the
  // stream still surfaces the duplicate pair if it lands intra-shard,
  // and never crashes either way.
  std::vector<Profile> ps(3);
  ps[0].AddAttribute("name", "alpha beta gamma");
  ps[1].AddAttribute("name", "alpha beta gamma");
  ps[2].AddAttribute("name", "delta epsilon");
  ProfileStore store = ProfileStore::MakeDirty(std::move(ps));
  EngineConfig config;
  config.method = MethodId::kPps;
  ShardedEngine engine(store, std::move(config), 64);
  const std::vector<Comparison> merged = Drain(&engine, 100);
  for (const Comparison& c : merged) {
    EXPECT_TRUE(store.IsComparable(c.i, c.j));
  }
}

}  // namespace
}  // namespace sper
