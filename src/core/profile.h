#ifndef SPER_CORE_PROFILE_H_
#define SPER_CORE_PROFILE_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/attribute.h"
#include "core/types.h"

/// \file profile.h
/// The entity-profile data model (paper Sec. 3): a uniquely identified set
/// of attribute name-value pairs, representing a real-world entity in any
/// source format (relational record, RDF resource, JSON object, text
/// snippet, ...).

namespace sper {

/// A uniquely identified set of attribute name-value pairs.
///
/// Profiles are created id-less, then adopted by a ProfileStore which
/// assigns the dense id. A profile never changes once stored.
class Profile {
 public:
  Profile() = default;

  /// Constructs a profile from a list of name-value pairs.
  explicit Profile(std::vector<Attribute> attributes)
      : attributes_(std::move(attributes)) {}

  /// Appends one name-value pair. Empty values are legal (real-world data
  /// is incomplete) and simply produce no blocking keys.
  void AddAttribute(std::string name, std::string value) {
    attributes_.push_back({std::move(name), std::move(value)});
  }

  /// Dense id inside the owning ProfileStore; kInvalidProfile until stored.
  ProfileId id() const { return id_; }

  /// All name-value pairs, in insertion order.
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Number of name-value pairs (the paper's |p|).
  std::size_t size() const { return attributes_.size(); }

  /// The value of the first attribute with the given name, or "" if absent.
  /// Linear scan: profiles are small (|p| is 4.65-24.54 in Table 2).
  std::string_view ValueOf(std::string_view name) const;

  /// All attribute values concatenated with single spaces, in insertion
  /// order. This is the string representation used by match functions
  /// (edit distance / Jaccard in Sec. 7.3).
  std::string ConcatenatedValues() const;

 private:
  friend class ProfileStore;

  ProfileId id_ = kInvalidProfile;
  std::vector<Attribute> attributes_;
};

}  // namespace sper

#endif  // SPER_CORE_PROFILE_H_
