// Tests for src/datagen: every synthetic dataset must reproduce the
// Table 2 statistics it models (at its documented scale), be internally
// consistent, and be a deterministic function of its seed.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <unordered_set>

#include "core/tokenizer.h"
#include "datagen/corruption.h"
#include "datagen/datagen.h"
#include "datagen/dictionaries.h"
#include "datagen/generator_util.h"
#include "datagen/rng.h"
#include "datagen/soundex.h"

namespace sper {
namespace {

std::size_t CountAttributeNames(const ProfileStore& store) {
  std::unordered_set<std::string> names;
  for (const Profile& p : store.profiles()) {
    for (const Attribute& a : p.attributes()) names.insert(a.name);
  }
  return names.size();
}

// ---------------------------------------------------------------- Soundex

TEST(SoundexTest, ClassicCodes) {
  EXPECT_EQ(Soundex("Robert"), "R163");
  EXPECT_EQ(Soundex("Rupert"), "R163");
  EXPECT_EQ(Soundex("Ashcraft"), "A261");  // h/w transparency
  EXPECT_EQ(Soundex("Tymczak"), "T522");
  EXPECT_EQ(Soundex("Pfister"), "P236");
  EXPECT_EQ(Soundex("Honeyman"), "H555");
}

TEST(SoundexTest, SimilarSurnamesShareCodes) {
  EXPECT_EQ(Soundex("white"), Soundex("whyte"));
  EXPECT_EQ(Soundex("smith"), Soundex("smyth"));
}

TEST(SoundexTest, EmptyAndNonAlphabetic) {
  EXPECT_EQ(Soundex(""), "");
  EXPECT_EQ(Soundex("123"), "");
  EXPECT_EQ(Soundex("o'brien"), Soundex("obrien"));
}

// ------------------------------------------------------------- Corruption

TEST(CorruptionTest, RandomTypoChangesAtMostOneEditStep) {
  Rng rng(11);
  for (int k = 0; k < 200; ++k) {
    const std::string original = "tailor";
    const std::string typo = RandomTypo(rng, original);
    EXPECT_LE(typo.size() + 1, original.size() + 2);
    EXPECT_GE(typo.size() + 1, original.size());
  }
}

TEST(CorruptionTest, MaybeTypoWithZeroRateIsIdentity) {
  Rng rng(11);
  EXPECT_EQ(MaybeTypo(rng, "stable", 0.0), "stable");
}

TEST(CorruptionTest, AbbreviateKeepsFirstLetter) {
  EXPECT_EQ(Abbreviate("john"), "j.");
  EXPECT_EQ(Abbreviate(""), "");
}

TEST(CorruptionTest, TokenNoiseDropsAtMostOneToken) {
  Rng rng(13);
  TokenNoiseOptions options;
  options.drop_rate = 1.0;
  const std::string out = TokenNoise(rng, "one two three", options);
  // Exactly one token dropped.
  EXPECT_EQ(TokenizeValue(out).size(), 2u);
}

// ----------------------------------------------------------- Dictionaries

TEST(DictionariesTest, PoolsAreNonEmptyAndLowercase) {
  for (const auto* pool :
       {&FirstNames(), &Surnames(), &Cities(), &States(), &Cuisines(),
        &StreetWords(), &CommonWords(), &Genres(), &VenueWords()}) {
    ASSERT_FALSE(pool->empty());
    for (const std::string& w : *pool) {
      for (char c : w) {
        EXPECT_TRUE((c >= 'a' && c <= 'z') || c == ' ') << w;
      }
    }
  }
}

TEST(DictionariesTest, SyllablePoolIsDistinctAndDeterministic) {
  Rng rng_a(21), rng_b(21);
  const auto pool_a = SyllablePool(rng_a, 500);
  const auto pool_b = SyllablePool(rng_b, 500);
  EXPECT_EQ(pool_a, pool_b);
  std::set<std::string> distinct(pool_a.begin(), pool_a.end());
  EXPECT_EQ(distinct.size(), pool_a.size());
}

// ---------------------------------------------------------- Cluster plans

TEST(ClusterPlanTest, CountsProfilesAndPairs) {
  ClusterPlan plan;
  plan.clusters_of_size = {{2, 10}, {3, 4}};
  plan.singletons = 8;
  EXPECT_EQ(plan.TotalProfiles(), 10u * 2 + 4u * 3 + 8);
  EXPECT_EQ(plan.TotalPairs(), 10u * 1 + 4u * 3);
}

TEST(ClusterPlanTest, ScalingRoundsCounts) {
  ClusterPlan plan;
  plan.clusters_of_size = {{2, 10}};
  plan.singletons = 100;
  ClusterPlan half = plan.Scaled(0.5);
  EXPECT_EQ(half.singletons, 50u);
  EXPECT_EQ(half.clusters_of_size[0].second, 5u);
}

// ------------------------------------------------- Table 2: structured

struct Table2Row {
  const char* name;
  std::size_t profiles;
  std::size_t attributes;
  std::size_t matches;
  double mean_nv;
};

class StructuredDatasetTest : public ::testing::TestWithParam<Table2Row> {};

TEST_P(StructuredDatasetTest, MatchesTable2Statistics) {
  const Table2Row& row = GetParam();
  Result<DatasetBundle> result = GenerateDataset(row.name);
  ASSERT_TRUE(result.ok());
  const DatasetBundle& ds = result.value();

  EXPECT_EQ(ds.store.er_type(), ErType::kDirty);
  // Within 2% of the paper's profile count and 15% of its match count.
  EXPECT_NEAR(static_cast<double>(ds.store.size()),
              static_cast<double>(row.profiles), 0.02 * row.profiles);
  EXPECT_NEAR(static_cast<double>(ds.truth.num_matches()),
              static_cast<double>(row.matches), 0.15 * row.matches);
  // Attribute-name count is exact-ish for the fixed schemas.
  EXPECT_NEAR(static_cast<double>(CountAttributeNames(ds.store)),
              static_cast<double>(row.attributes), 0.2 * row.attributes + 1);
  // Mean name-value pairs within 15%.
  EXPECT_NEAR(ds.store.MeanProfileSize(), row.mean_nv, 0.15 * row.mean_nv);
}

TEST_P(StructuredDatasetTest, GroundTruthIsConsistent) {
  Result<DatasetBundle> result = GenerateDataset(GetParam().name);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().truth.Validate(result.value().store).ok());
}

TEST_P(StructuredDatasetTest, HasALiteraturePsnKey) {
  Result<DatasetBundle> result = GenerateDataset(GetParam().name);
  ASSERT_TRUE(result.ok());
  const DatasetBundle& ds = result.value();
  ASSERT_TRUE(ds.psn_key != nullptr);
  // The key must be non-empty for the vast majority of profiles.
  std::size_t non_empty = 0;
  for (const Profile& p : ds.store.profiles()) {
    if (!ds.psn_key(p).empty()) ++non_empty;
  }
  EXPECT_GT(non_empty, ds.store.size() * 9 / 10);
}

INSTANTIATE_TEST_SUITE_P(
    Table2, StructuredDatasetTest,
    ::testing::Values(Table2Row{"census", 841, 5, 344, 4.65},
                      Table2Row{"restaurant", 864, 5, 112, 5.00},
                      Table2Row{"cora", 1300, 12, 17000, 5.53},
                      Table2Row{"cddb", 9763, 106, 300, 18.75}),
    [](const ::testing::TestParamInfo<Table2Row>& info) {
      return info.param.name;
    });

// ---------------------------------------------- Table 2: heterogeneous

struct HeterogeneousRow {
  const char* name;
  std::size_t source1;  // at the documented reduced scale
  std::size_t source2;
  std::size_t matches;
  double mean_nv_min;
  double mean_nv_max;
};

class HeterogeneousDatasetTest
    : public ::testing::TestWithParam<HeterogeneousRow> {};

TEST_P(HeterogeneousDatasetTest, MatchesDocumentedScale) {
  const HeterogeneousRow& row = GetParam();
  // Generated at 10% scale to keep the test fast; counts scale linearly.
  DatagenOptions options;
  options.scale = 0.1;
  Result<DatasetBundle> result = GenerateDataset(row.name, options);
  ASSERT_TRUE(result.ok());
  const DatasetBundle& ds = result.value();

  EXPECT_EQ(ds.store.er_type(), ErType::kCleanClean);
  EXPECT_NEAR(static_cast<double>(ds.store.source1_size()),
              0.1 * static_cast<double>(row.source1),
              0.03 * row.source1 + 10);
  EXPECT_NEAR(static_cast<double>(ds.store.source2_size()),
              0.1 * static_cast<double>(row.source2),
              0.03 * row.source2 + 10);
  EXPECT_NEAR(static_cast<double>(ds.truth.num_matches()),
              0.1 * static_cast<double>(row.matches), 0.03 * row.matches + 10);
  EXPECT_GE(ds.store.MeanProfileSize(), row.mean_nv_min);
  EXPECT_LE(ds.store.MeanProfileSize(), row.mean_nv_max);
  EXPECT_TRUE(ds.psn_key == nullptr);
}

TEST_P(HeterogeneousDatasetTest, GroundTruthIsCrossSource) {
  DatagenOptions options;
  options.scale = 0.05;
  Result<DatasetBundle> result = GenerateDataset(GetParam().name, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().truth.Validate(result.value().store).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Table2, HeterogeneousDatasetTest,
    ::testing::Values(
        HeterogeneousRow{"movies", 27615, 23182, 22863, 5.0, 9.5},
        HeterogeneousRow{"dbpedia", 60000, 110000, 45000, 12.0, 19.0},
        HeterogeneousRow{"freebase", 84000, 74000, 30000, 18.0, 30.0}),
    [](const ::testing::TestParamInfo<HeterogeneousRow>& info) {
      return info.param.name;
    });

// ------------------------------------------------------------ properties

TEST(DatagenTest, UnknownNameIsNotFound) {
  Result<DatasetBundle> result = GenerateDataset("nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(DatagenTest, GenerationIsDeterministicPerSeed) {
  Result<DatasetBundle> a = GenerateDataset("census");
  Result<DatasetBundle> b = GenerateDataset("census");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().store.size(), b.value().store.size());
  for (ProfileId i = 0; i < a.value().store.size(); ++i) {
    EXPECT_EQ(a.value().store.profile(i).attributes(),
              b.value().store.profile(i).attributes());
  }
  EXPECT_EQ(a.value().truth.pairs(), b.value().truth.pairs());
}

TEST(DatagenTest, DifferentSeedsDiffer) {
  DatagenOptions other;
  other.seed = 99;
  Result<DatasetBundle> a = GenerateDataset("census");
  Result<DatasetBundle> b = GenerateDataset("census", other);
  ASSERT_TRUE(a.ok() && b.ok());
  bool any_difference =
      a.value().store.size() != b.value().store.size();
  if (!any_difference) {
    for (ProfileId i = 0; i < a.value().store.size(); ++i) {
      if (!(a.value().store.profile(i).attributes() ==
            b.value().store.profile(i).attributes())) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(DatagenTest, DbpediaSnapshotsShareAboutAQuarterOfPairs) {
  DatagenOptions options;
  options.scale = 0.05;
  Result<DatasetBundle> result = GenerateDataset("dbpedia", options);
  ASSERT_TRUE(result.ok());
  const DatasetBundle& ds = result.value();

  // Over the matched pairs, measure |shared nv pairs| / |smaller profile|.
  double ratio_sum = 0.0;
  std::size_t counted = 0;
  for (std::uint64_t key : ds.truth.pairs()) {
    const Profile& a = ds.store.profile(static_cast<ProfileId>(key >> 32));
    const Profile& b =
        ds.store.profile(static_cast<ProfileId>(key & 0xffffffffu));
    std::set<std::pair<std::string, std::string>> pa;
    for (const Attribute& attr : a.attributes()) {
      pa.emplace(attr.name, attr.value);
    }
    std::size_t shared = 0;
    for (const Attribute& attr : b.attributes()) {
      shared += pa.count({attr.name, attr.value});
    }
    ratio_sum += static_cast<double>(shared) /
                 static_cast<double>(std::min(a.size(), b.size()));
    if (++counted == 500) break;
  }
  const double mean_ratio = ratio_sum / static_cast<double>(counted);
  // The paper: the snapshots "share only 25% of the name-value pairs".
  EXPECT_GT(mean_ratio, 0.10);
  EXPECT_LT(mean_ratio, 0.45);
}

TEST(DatagenTest, FreebaseValuesAreUriShaped) {
  DatagenOptions options;
  options.scale = 0.02;
  Result<DatasetBundle> result = GenerateDataset("freebase", options);
  ASSERT_TRUE(result.ok());
  const DatasetBundle& ds = result.value();
  // Source-1 profiles must be dominated by URI values with opaque mids.
  std::size_t uri_values = 0, total_values = 0;
  for (ProfileId i = 0; i < ds.store.split_index(); ++i) {
    for (const Attribute& a : ds.store.profile(i).attributes()) {
      ++total_values;
      if (a.value.rfind("http://", 0) == 0) ++uri_values;
    }
  }
  EXPECT_GT(static_cast<double>(uri_values) /
                static_cast<double>(total_values),
            0.7);
}

}  // namespace
}  // namespace sper
