#include "blocking/standard_blocking.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace sper {

BlockCollection StandardBlocking(const ProfileStore& store,
                                 const SchemaKeyFn& key_fn) {
  // std::map keeps keys ordered, giving deterministic block ids.
  std::map<std::string, std::vector<ProfileId>> postings;
  for (const Profile& p : store.profiles()) {
    std::string key = key_fn(p);
    if (key.empty()) continue;
    postings[std::move(key)].push_back(p.id());
  }

  BlockCollection collection(store.er_type(), store.split_index());
  for (const auto& [key, ids] : postings) {
    if (collection.ComputeCardinality(ids) == 0) continue;
    collection.Add(key, ids);
  }
  return collection;
}

}  // namespace sper
