#include "obs/fault_injection.h"

#include <chrono>
#include <thread>
#include <utility>

namespace sper {
namespace obs {

namespace {

/// splitmix64 — the same mixing constant set core/store_partition uses;
/// one round is enough to decorrelate (seed ^ hit_index) into a uniform
/// 64-bit draw for the Bernoulli gate.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

void FaultRegistry::Arm(std::string site, FaultPlan plan) {
  MutexLock lock(mutex_);
  auto [it, inserted] = sites_.insert_or_assign(std::move(site),
                                                SiteState{std::move(plan)});
  (void)it;
  if (inserted) armed_sites_.fetch_add(1, std::memory_order_relaxed);
}

void FaultRegistry::Disarm(const std::string& site) {
  MutexLock lock(mutex_);
  if (sites_.erase(site) > 0) {
    armed_sites_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultRegistry::Reset() {
  MutexLock lock(mutex_);
  armed_sites_.fetch_sub(sites_.size(), std::memory_order_relaxed);
  sites_.clear();
}

std::uint64_t FaultRegistry::hits(const std::string& site) const {
  MutexLock lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

std::uint64_t FaultRegistry::fires(const std::string& site) const {
  MutexLock lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

void FaultRegistry::Hit(std::string_view site) {
  if (!armed()) return;

  // Decide under the lock, act outside it: a stall must not serialize
  // unrelated seams, and a throw must not leave the mutex held.
  FaultPlan::Action action;
  std::uint64_t stall_ms = 0;
  std::string message;
  {
    MutexLock lock(mutex_);
    auto it = sites_.find(std::string(site));
    if (it == sites_.end()) return;
    SiteState& state = it->second;
    const std::uint64_t hit = state.hits++;
    if (hit < state.plan.start_after) return;
    const std::uint64_t scheduled = hit - state.plan.start_after;
    const std::uint64_t every =
        state.plan.every == 0 ? 1 : state.plan.every;
    if (scheduled % every != 0) return;
    if (state.plan.limit != 0 && state.fires >= state.plan.limit) return;
    if (state.plan.probability < 1.0) {
      const double draw =
          static_cast<double>(Mix64(state.plan.seed ^ hit) >> 11) *
          0x1.0p-53;  // uniform in [0, 1)
      if (draw >= state.plan.probability) return;
    }
    ++state.fires;
    action = state.plan.action;
    stall_ms = state.plan.stall_ms;
    if (action == FaultPlan::Action::kThrow) message = state.plan.message;
  }

  if (action == FaultPlan::Action::kStall) {
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
  } else {
    throw FaultInjectedError(message);
  }
}

}  // namespace obs
}  // namespace sper
