#include "datagen/dictionaries.h"

#include <unordered_set>

namespace sper {

const std::vector<std::string>& FirstNames() {
  static const std::vector<std::string> pool = {
      "james",   "mary",     "john",    "patricia", "robert",  "jennifer",
      "michael", "linda",    "william", "elizabeth", "david",  "barbara",
      "richard", "susan",    "joseph",  "jessica",  "thomas",  "sarah",
      "charles", "karen",    "chris",   "nancy",    "daniel",  "lisa",
      "matthew", "betty",    "anthony", "margaret", "mark",    "sandra",
      "donald",  "ashley",   "steven",  "kimberly", "paul",    "emily",
      "andrew",  "donna",    "joshua",  "michelle", "kenneth", "dorothy",
      "kevin",   "carol",    "brian",   "amanda",   "george",  "melissa",
      "edward",  "deborah",  "ronald",  "stephanie", "timothy", "rebecca",
      "jason",   "sharon",   "jeffrey", "laura",    "ryan",    "cynthia",
      "jacob",   "kathleen", "gary",    "amy",      "nicholas", "shirley",
      "eric",    "angela",   "jonathan", "helen",   "stephen", "anna",
      "larry",   "brenda",   "justin",  "pamela",   "scott",   "nicole",
      "brandon", "emma",     "benjamin", "samantha", "samuel", "katherine",
      "gregory", "christine", "frank",  "debra",    "raymond", "rachel",
      "carl",    "karl",     "ellen",   "hellen",   "walter",  "janet",
      "patrick", "catherine", "harold", "maria",    "douglas", "heather",
  };
  return pool;
}

const std::vector<std::string>& Surnames() {
  static const std::vector<std::string> pool = {
      "smith",    "johnson",  "williams", "brown",    "jones",   "garcia",
      "miller",   "davis",    "rodriguez", "martinez", "hernandez", "lopez",
      "gonzalez", "wilson",   "anderson", "thomas",   "taylor",  "moore",
      "jackson",  "martin",   "lee",      "perez",    "thompson", "white",
      "harris",   "sanchez",  "clark",    "ramirez",  "lewis",   "robinson",
      "walker",   "young",    "allen",    "king",     "wright",  "scott",
      "torres",   "nguyen",   "hill",     "flores",   "green",   "adams",
      "nelson",   "baker",    "hall",     "rivera",   "campbell", "mitchell",
      "carter",   "roberts",  "gomez",    "phillips", "evans",   "turner",
      "diaz",     "parker",   "cruz",     "edwards",  "collins", "reyes",
      "stewart",  "morris",   "morales",  "murphy",   "cook",    "rogers",
      "gutierrez", "ortiz",   "morgan",   "cooper",   "peterson", "bailey",
      "reed",     "kelly",    "howard",   "ramos",    "kim",     "cox",
      "ward",     "richardson", "watson", "brooks",   "chavez",  "wood",
      "james",    "bennett",  "gray",     "mendoza",  "ruiz",    "hughes",
      "price",    "alvarez",  "castillo", "sanders",  "patel",   "myers",
      "long",     "ross",     "foster",   "jimenez",
  };
  return pool;
}

const std::vector<std::string>& Cities() {
  static const std::vector<std::string> pool = {
      "springfield", "riverside",  "franklin",  "greenville", "bristol",
      "clinton",     "fairview",   "salem",     "madison",    "georgetown",
      "arlington",   "ashland",    "burlington", "manchester", "oxford",
      "milton",      "newport",    "auburn",    "dayton",     "lexington",
      "milford",     "winchester", "cleveland", "hudson",     "kingston",
      "dover",       "chester",    "monroe",    "lancaster",  "trenton",
      "richmond",    "florence",   "jackson",   "centerville", "oakland",
      "brookfield",  "lebanon",    "plymouth",  "columbia",   "concord",
      "hamilton",    "princeton",  "bridgeport", "glendale",  "harrison",
      "westfield",   "medford",    "dublin",    "clayton",    "marion",
      "vienna",      "aurora",     "danville",  "somerset",   "bedford",
      "hillsboro",   "lakewood",   "weston",    "sheridan",   "troy",
  };
  return pool;
}

const std::vector<std::string>& States() {
  static const std::vector<std::string> pool = {
      "al", "ak", "az", "ar", "ca", "co", "ct", "de", "fl", "ga",
      "hi", "id", "il", "in", "ia", "ks", "ky", "la", "me", "md",
      "ma", "mi", "mn", "ms", "mo", "mt", "ne", "nv", "nh", "nj",
      "nm", "ny", "nc", "nd", "oh", "ok", "or", "pa", "ri", "sc",
      "sd", "tn", "tx", "ut", "vt", "va", "wa", "wv", "wi", "wy",
  };
  return pool;
}

const std::vector<std::string>& Cuisines() {
  static const std::vector<std::string> pool = {
      "american",  "italian",   "french",   "chinese",   "japanese",
      "mexican",   "thai",      "indian",   "greek",     "spanish",
      "korean",    "vietnamese", "seafood", "steakhouse", "barbecue",
      "pizzeria",  "cafe",      "bistro",   "diner",     "bakery",
      "vegetarian", "mediterranean", "cajun", "fusion",  "continental",
      "delicatessen", "brasserie", "tavern", "grill",    "noodles",
  };
  return pool;
}

const std::vector<std::string>& StreetWords() {
  static const std::vector<std::string> pool = {
      "street", "avenue", "boulevard", "road",   "lane",    "drive",
      "court",  "place",  "terrace",   "square", "parkway", "highway",
      "main",   "oak",    "maple",     "cedar",  "pine",    "elm",
      "park",   "lake",   "hill",      "river",  "sunset",  "broadway",
      "washington",
  };
  return pool;
}

const std::vector<std::string>& CommonWords() {
  static const std::vector<std::string> pool = {
      "analysis",   "system",     "model",      "theory",     "method",
      "approach",   "learning",   "neural",     "network",    "adaptive",
      "dynamic",    "stochastic", "optimal",    "parallel",   "distributed",
      "efficient",  "robust",     "general",    "hybrid",     "statistical",
      "linear",     "nonlinear",  "bayesian",   "genetic",    "evolutionary",
      "knowledge",  "information", "data",      "pattern",    "recognition",
      "classification", "clustering", "estimation", "prediction", "control",
      "design",     "evaluation", "framework",  "algorithm",  "computation",
      "language",   "logic",      "reasoning",  "planning",   "search",
      "graph",      "tree",       "matrix",     "vector",     "function",
      "process",    "memory",     "storage",    "query",      "index",
      "database",   "transaction", "integration", "resolution", "entity",
      "semantic",   "syntactic",  "visual",     "image",      "speech",
      "signal",     "time",       "space",      "complexity", "structure",
      "abstract",   "concrete",   "local",      "global",     "random",
      "sequential", "incremental", "recursive", "iterative",  "scalable",
      "modular",    "formal",     "empirical",  "experimental", "applied",
      "fundamental", "advanced",  "introduction", "survey",   "review",
      "foundations", "principles", "perspectives", "applications", "studies",
      "machine",    "agent",      "environment", "simulation", "modeling",
      "inference",  "probability", "uncertainty", "decision", "markov",
      "kernel",     "feature",    "selection",  "extraction", "reduction",
      "mining",     "retrieval",  "filtering",  "ranking",    "matching",
      "alignment",  "mapping",    "translation", "generation", "synthesis",
      "verification", "validation", "testing",  "debugging",  "optimization",
      "scheduling", "allocation", "routing",    "caching",    "streaming",
      "encoding",   "compression", "encryption", "security",  "privacy",
      "morning",    "river",      "stone",      "golden",     "silver",
      "shadow",     "winter",     "summer",     "crimson",    "hollow",
  };
  return pool;
}

const std::vector<std::string>& Genres() {
  static const std::vector<std::string> pool = {
      "rock",    "pop",     "jazz",       "blues",   "classical",
      "country", "folk",    "electronic", "ambient", "metal",
      "punk",    "reggae",  "soul",       "funk",    "disco",
      "techno",  "house",   "trance",     "hiphop",  "rap",
      "latin",   "gospel",  "opera",      "swing",   "indie",
  };
  return pool;
}

const std::vector<std::string>& VenueWords() {
  static const std::vector<std::string> pool = {
      "proceedings", "international", "conference", "journal",  "workshop",
      "symposium",   "transactions",  "annual",     "national", "european",
      "artificial",  "intelligence",  "computing",  "computer", "science",
      "engineering", "research",      "letters",    "advances", "bulletin",
      "society",     "association",   "institute",  "press",    "quarterly",
      "technical",   "report",        "university", "department", "press",
  };
  return pool;
}

std::string SyllableWord(Rng& rng, std::size_t min_syllables,
                         std::size_t max_syllables) {
  static const std::vector<std::string> onsets = {
      "b",  "c",  "d",  "f",  "g",  "h",  "j",  "k",  "l",  "m",
      "n",  "p",  "r",  "s",  "t",  "v",  "w",  "z",  "br", "cr",
      "dr", "fr", "gr", "pr", "tr", "bl", "cl", "fl", "gl", "pl",
      "sl", "sh", "ch", "th", "st", "sp", "sk", "qu", "",
  };
  static const std::vector<std::string> nuclei = {
      "a", "e", "i", "o", "u", "a", "e", "i", "o", "u",
      "ai", "ea", "ee", "ia", "io", "oa", "ou", "ue",
  };
  static const std::vector<std::string> codas = {
      "",  "",  "",  "n", "r", "l", "s", "t", "m", "d",
      "k", "nd", "nt", "rn", "st", "ll",
  };
  const std::size_t syllables = rng.UniformInt(min_syllables, max_syllables);
  std::string word;
  for (std::size_t s = 0; s < syllables; ++s) {
    word += rng.Pick(onsets);
    word += rng.Pick(nuclei);
    if (s + 1 == syllables || rng.Bernoulli(0.35)) word += rng.Pick(codas);
  }
  return word;
}

std::vector<std::string> SyllablePool(Rng& rng, std::size_t size,
                                      std::size_t min_syllables,
                                      std::size_t max_syllables) {
  std::unordered_set<std::string> seen;
  std::vector<std::string> pool;
  pool.reserve(size);
  while (pool.size() < size) {
    std::string word = SyllableWord(rng, min_syllables, max_syllables);
    if (word.size() < 3) continue;
    if (seen.insert(word).second) pool.push_back(std::move(word));
  }
  return pool;
}

}  // namespace sper
