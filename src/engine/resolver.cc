#include "engine/resolver.h"

#include <algorithm>
#include <string>
#include <utility>

#include "engine/progressive_engine.h"
#include "engine/sharded_engine.h"

namespace sper {

namespace {

/// ResolverOptions -> the per-engine configuration the implementations
/// take. Stays in one place so plain and sharded creation cannot drift.
EngineOptions ToEngineOptions(const ResolverOptions& options) {
  EngineOptions engine;
  engine.method = options.method;
  engine.num_threads = options.num_threads;
  engine.budget = options.budget;
  engine.lookahead = options.lookahead;
  engine.workflow = options.workflow;
  engine.scheme = options.scheme;
  engine.pps_kmax = options.pps_kmax;
  engine.gs_wmax = options.gs_wmax;
  engine.suffix = options.suffix;
  engine.list = options.list;
  engine.schema_key = options.schema_key;
  engine.telemetry = options.telemetry;
  return engine;
}

}  // namespace

Status ResolverOptions::Validate() const {
  if (num_threads == 0 || num_threads > kMaxThreads) {
    return Status::InvalidArgument(
        "num_threads must be in [1, " + std::to_string(kMaxThreads) +
        "], got " + std::to_string(num_threads));
  }
  if (num_shards == 0 || num_shards > kMaxShards) {
    return Status::InvalidArgument(
        "num_shards must be in [1, " + std::to_string(kMaxShards) +
        "], got " + std::to_string(num_shards));
  }
  if (lookahead > kMaxLookahead) {
    return Status::InvalidArgument(
        "lookahead must be <= " + std::to_string(kMaxLookahead) + ", got " +
        std::to_string(lookahead));
  }
  if (method == MethodId::kPsn && schema_key == nullptr) {
    return Status::InvalidArgument(
        "method PSN requires a schema blocking key "
        "(ResolverOptions::schema_key)");
  }
  if (method == MethodId::kPps && pps_kmax == 0) {
    return Status::InvalidArgument("pps_kmax must be > 0 for method PPS");
  }
  return Status::Ok();
}

Resolver::Resolver(ResolverOptions options, std::unique_ptr<Engine> engine)
    : options_(std::move(options)), engine_(std::move(engine)) {
  const obs::TelemetryScope& scope = options_.telemetry;
  if (scope.enabled()) {
    queue_wait_ns_ = scope.histogram("session.queue_wait_ns");
    service_ns_ = scope.histogram("session.service_ns");
    slice_comparisons_ = scope.histogram("session.slice_comparisons");
    requests_ = scope.counter("session.requests");
  }
}

Result<std::unique_ptr<Resolver>> Resolver::Create(const ProfileStore& store,
                                                   ResolverOptions options) {
  SPER_RETURN_IF_ERROR(options.Validate());
  std::unique_ptr<Engine> engine;
  if (options.num_shards > 1) {
    ShardedEngineOptions sharded;
    sharded.num_shards = options.num_shards;
    sharded.engine = ToEngineOptions(options);
    engine = std::make_unique<ShardedEngine>(store, std::move(sharded));
  } else {
    engine =
        std::make_unique<ProgressiveEngine>(store, ToEngineOptions(options));
  }
  return std::unique_ptr<Resolver>(
      new Resolver(std::move(options), std::move(engine)));
}

ResolveResult Resolver::Serve(const ResolveRequest& request) {
  const obs::Stopwatch arrival;
  ResolveResult result;
  // Ticketed FIFO admission: the ticket is taken atomically on arrival,
  // before the serve mutex, and the draw waits until every earlier ticket
  // has been served — a fair ticket lock, so a request that arrives later
  // (larger ticket) can never barge past an earlier one even if the OS
  // hands it the mutex first.
  result.ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return now_serving_ == result.ticket; });
  const obs::Stopwatch::TimePoint admitted = obs::Stopwatch::Now();
  if (queue_wait_ns_ != nullptr) {
    queue_wait_ns_->Record(obs::Stopwatch::Nanos(arrival.start(), admitted));
  }

  // Keep the admission queue live even if the draw throws (e.g.
  // bad_alloc growing a huge slice): scope exit — declared after `lock`,
  // so it runs while the mutex is still held — advances now_serving_ and
  // wakes the next ticket instead of deadlocking every later request.
  struct AdmissionGuard {
    Resolver* resolver;
    ~AdmissionGuard() {
      ++resolver->now_serving_;
      resolver->cv_.notify_all();
    }
  } guard{this};

  std::uint64_t want = request.budget;
  if (request.max_batch != 0) {
    want = std::min<std::uint64_t>(want, request.max_batch);
  }
  // Cap the reservation: `want` is caller-controlled and may be "all of
  // it"; the slice grows normally past the initial reservation.
  result.comparisons.reserve(
      static_cast<std::size_t>(std::min<std::uint64_t>(want, 65536)));
  while (result.comparisons.size() < want) {
    std::optional<Comparison> next = engine_->Next();
    if (!next.has_value()) {
      // nullopt is either the global budget running out mid-slice or the
      // method running dry; tell the caller which.
      if (engine_->BudgetExhausted()) {
        result.budget_exhausted = true;
      } else {
        result.stream_exhausted = true;
      }
      break;
    }
    result.comparisons.push_back(*next);
  }
  // A request admitted after the global budget is spent (including a
  // zero-budget probe) still learns so without drawing.
  if (engine_->BudgetExhausted()) result.budget_exhausted = true;

  if (requests_ != nullptr) {
    const obs::Stopwatch::TimePoint done = obs::Stopwatch::Now();
    requests_->Add();
    service_ns_->Record(obs::Stopwatch::Nanos(admitted, done));
    slice_comparisons_->Record(result.comparisons.size());
    options_.telemetry.RecordSpan(
        "session.resolve", admitted, done,
        "{\"ticket\": " + std::to_string(result.ticket) +
            ", \"comparisons\": " +
            std::to_string(result.comparisons.size()) + "}");
  }
  return result;  // the guard admits the next ticket
}

}  // namespace sper
