#ifndef SPER_PARALLEL_ORDERED_MERGE_H_
#define SPER_PARALLEL_ORDERED_MERGE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

/// \file ordered_merge.h
/// Deterministic k-way merge of pull-based streams — the streaming
/// counterpart of AccumulateOrdered (parallel_for.h). Where
/// AccumulateOrdered concatenates finished per-chunk vectors in chunk
/// order, KWayMerge interleaves *live* streams: at every step it emits the
/// best current head under a strict weak order, breaking exact ties by
/// stream index. The output therefore depends only on the stream contents
/// and the comparator — never on timing — which is what sharded serving's
/// global emission order rests on.

namespace sper {

/// What one pull from a merge stream (or from the merge itself) produced.
enum class MergeStatus {
  kItem,       // `out` was filled with the next element
  kExhausted,  // the stream is over — it will never yield again
  kBlocked,    // nothing *yet*: the pull gave up (deadline/cancel) with the
               // stream fully intact; retrying later continues losslessly
};

/// Greedy best-head merge of K pull-based streams.
///
/// Each stream is a callable `MergeStatus(T&)` that fills its argument on
/// kItem. Streams need not be globally sorted: the merge emits, at each
/// step, the best head among the K current heads under `Compare` (strict
/// "a before b"). For streams that *are* sorted this is the classic k-way
/// ordered merge. Ties between heads go to the lowest-indexed stream, so
/// the merge is deterministic for any inputs.
///
/// Cancellation-safety: a stream may return kBlocked instead of blocking
/// indefinitely. The merge then returns kBlocked itself with every piece
/// of state intact — heads already in the heap, the priming cursor, and
/// the pending refill — so the next Next() call retries exactly the pull
/// that gave up. Refills are *lazy* (the popped stream is re-pulled at the
/// start of the next call, not eagerly after the pop): the heap content at
/// every pop is identical to the eager schedule, so the emitted sequence
/// is bit-identical, but a pull that blocks can no longer strand an
/// already-drawn item.
///
/// Heads are pulled lazily: no stream is touched before the first Next().
/// T must be default-constructible (it is the refill staging buffer).
template <typename T, typename Compare = std::less<T>>
class KWayMerge {
 public:
  using Stream = std::function<MergeStatus(T&)>;

  explicit KWayMerge(Compare compare = Compare())
      : compare_(std::move(compare)) {}

  /// Registers one more stream. Must not be called after Next().
  void AddStream(Stream stream) {
    streams_.push_back(std::move(stream));
    draws_.push_back(0);
  }

  /// Convenience registration for simple `std::optional<T>()` streams
  /// (the ProgressiveEmitter Next() shape) that never block.
  void AddStream(std::function<std::optional<T>()> stream) {
    AddStream(Stream([s = std::move(stream)](T& out) {
      std::optional<T> head = s();
      if (!head.has_value()) return MergeStatus::kExhausted;
      out = std::move(*head);
      return MergeStatus::kItem;
    }));
  }

  /// Number of registered streams.
  std::size_t num_streams() const { return streams_.size(); }

  /// How many heads each stream has contributed so far, by stream index
  /// (telemetry: per-shard draw balance).
  const std::vector<std::uint64_t>& draw_counts() const { return draws_; }

  /// Stream index of the last emitted head; num_streams() before the
  /// first successful Next().
  std::size_t last_stream() const {
    return last_stream_ == kNoStream ? streams_.size() : last_stream_;
  }

  /// The best head among all streams. kExhausted once every stream is
  /// exhausted; kBlocked when the pull the merge needed right now gave up
  /// (state intact, retry later). O(log K) per emitted item: heads live
  /// in a binary heap keyed on (Compare, stream index) — a total order,
  /// since indices are unique, so the pop sequence is deterministic
  /// whatever the heap's internal layout.
  MergeStatus Next(T& out) {
    if (!primed_) {
      heap_.reserve(streams_.size());
      while (prime_cursor_ < streams_.size()) {
        const std::size_t k = prime_cursor_;
        T head;
        switch (streams_[k](head)) {
          case MergeStatus::kItem:
            heap_.push_back({std::move(head), k});
            break;
          case MergeStatus::kExhausted:
            break;
          case MergeStatus::kBlocked:
            return MergeStatus::kBlocked;  // resume priming at k next call
        }
        ++prime_cursor_;
      }
      std::make_heap(heap_.begin(), heap_.end(), HeapLess{compare_});
      primed_ = true;
    }
    if (pending_refill_ != kNoStream) {
      T head;
      switch (streams_[pending_refill_](head)) {
        case MergeStatus::kItem:
          heap_.push_back({std::move(head), pending_refill_});
          std::push_heap(heap_.begin(), heap_.end(), HeapLess{compare_});
          break;
        case MergeStatus::kExhausted:
          break;
        case MergeStatus::kBlocked:
          return MergeStatus::kBlocked;  // retry this refill next call
      }
      pending_refill_ = kNoStream;
    }
    if (heap_.empty()) return MergeStatus::kExhausted;
    std::pop_heap(heap_.begin(), heap_.end(), HeapLess{compare_});
    Entry best = std::move(heap_.back());
    heap_.pop_back();
    ++draws_[best.stream];
    last_stream_ = best.stream;
    pending_refill_ = best.stream;
    out = std::move(best.value);
    return MergeStatus::kItem;
  }

  /// Optional-returning convenience for call sites whose streams never
  /// block (a kBlocked pull is simply retried inline).
  std::optional<T> Next() {
    T out;
    for (;;) {
      switch (Next(out)) {
        case MergeStatus::kItem:
          return std::optional<T>(std::move(out));
        case MergeStatus::kExhausted:
          return std::nullopt;
        case MergeStatus::kBlocked:
          break;  // the stream already waited internally; just retry
      }
    }
  }

 private:
  struct Entry {
    T value;
    std::size_t stream;
  };

  /// std::*_heap is a max-heap: "a < b" must mean "b pops first". b pops
  /// first when it compares before a, or ties with a but has the lower
  /// stream index.
  struct HeapLess {
    const Compare& compare;
    bool operator()(const Entry& a, const Entry& b) const {
      if (compare(b.value, a.value)) return true;
      if (compare(a.value, b.value)) return false;
      return b.stream < a.stream;
    }
  };

  static constexpr std::size_t kNoStream = static_cast<std::size_t>(-1);

  Compare compare_;
  std::vector<Stream> streams_;
  std::vector<Entry> heap_;
  std::vector<std::uint64_t> draws_;
  std::size_t last_stream_ = kNoStream;
  std::size_t prime_cursor_ = 0;
  std::size_t pending_refill_ = kNoStream;
  bool primed_ = false;
};

}  // namespace sper

#endif  // SPER_PARALLEL_ORDERED_MERGE_H_
