#include "engine/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "parallel/thread_pool.h"

namespace sper {

namespace {

/// A shard can yield comparisons only with two distinct profiles (Dirty)
/// or at least one profile on each side (Clean-Clean). Engines are not
/// constructed for barren shards.
bool ShardHasCandidates(const ProfileStore& store) {
  if (store.er_type() == ErType::kCleanClean) {
    return store.source1_size() > 0 && store.source2_size() > 0;
  }
  return store.size() >= 2;
}

}  // namespace

ShardedEngine::ShardedEngine(const ProfileStore& store,
                             ShardedEngineOptions options)
    : options_(std::move(options)) {
  const auto start = std::chrono::steady_clock::now();
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.engine.num_threads == 0) options_.engine.num_threads = 1;
  budget_ = options_.engine.budget;

  shards_ = PartitionStore(store, options_.num_shards);
  engines_.resize(shards_.size());
  stats_.shard_sizes.reserve(shards_.size());
  for (const StoreShard& shard : shards_) {
    stats_.shard_sizes.push_back(shard.store.size());
  }

  // Per-shard engine options: inner engines run unbudgeted (the global
  // budget caps the merged stream) and split the total thread budget
  // across the shard constructions running concurrently.
  const std::size_t concurrency =
      std::max<std::size_t>(
          1, std::min(shards_.size(), options_.engine.num_threads));
  EngineOptions inner = options_.engine;
  inner.budget = 0;
  inner.num_threads =
      std::max<std::size_t>(1, options_.engine.num_threads / concurrency);

  // Parallel shard refills (lookahead > 0, batch-refilling method): a
  // shared pool hosts every shard's emission-pipeline producer. It needs
  // one worker per live pipeline — a producer that queues behind another
  // shard's would never run, and the merge blocks forever on that shard's
  // first head. Sort-based methods never start a pipeline, so spawning
  // workers for them would just park S idle threads. The worker-per-shard
  // requirement also means the pool cannot be shrunk below the pipeline
  // count, so past kMaxPipelinedShards the engine falls back to serial
  // refills (always correct, same output) instead of spawning an OS
  // thread per shard.
  constexpr std::size_t kMaxPipelinedShards = 64;
  std::size_t active_shards = 0;
  for (const StoreShard& shard : shards_) {
    if (ShardHasCandidates(shard.store)) ++active_shards;
  }
  if (inner.lookahead > 0 && MethodHasBatchRefills(inner.method) &&
      active_shards > 0) {
    if (active_shards <= kMaxPipelinedShards) {
      emission_pool_ = std::make_unique<ThreadPool>(active_shards);
    } else {
      inner.lookahead = 0;
    }
  }

  if (concurrency <= 1) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (!ShardHasCandidates(shards_[s].store)) continue;
      engines_[s] = std::make_unique<ProgressiveEngine>(
          shards_[s].store, inner, emission_pool_.get());
    }
  } else {
    ThreadPool pool(concurrency);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (!ShardHasCandidates(shards_[s].store)) continue;
      pool.Submit([this, s, &inner] {
        engines_[s] = std::make_unique<ProgressiveEngine>(
            shards_[s].store, inner, emission_pool_.get());
      });
    }
    pool.Wait();
  }

  // Register the per-shard streams in shard order: the merge breaks exact
  // ties by stream index, so shard order is part of the deterministic
  // contract. Each stream translates shard-local ids to original ids;
  // local order preserves global order within each source, so the
  // canonical (i < j) form survives translation.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (engines_[s] == nullptr) continue;
    stats_.num_blocks += engines_[s]->init_stats().num_blocks;
    stats_.aggregate_cardinality +=
        engines_[s]->init_stats().aggregate_cardinality;
    ProgressiveEngine* engine = engines_[s].get();
    const std::vector<ProfileId>* to_global = &shards_[s].to_global;
    merge_.AddStream([engine, to_global]() -> std::optional<Comparison> {
      std::optional<Comparison> local = engine->Next();
      if (!local.has_value()) return std::nullopt;
      return Comparison((*to_global)[local->i], (*to_global)[local->j],
                        local->weight);
    });
  }

  stats_.init_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
}

std::optional<Comparison> ShardedEngine::NextUnbudgeted() {
  return merge_.Next();
}

std::string_view ShardedEngine::name() const {
  return ToString(options_.engine.method);
}

}  // namespace sper
