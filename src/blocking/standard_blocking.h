#ifndef SPER_BLOCKING_STANDARD_BLOCKING_H_
#define SPER_BLOCKING_STANDARD_BLOCKING_H_

#include "blocking/block_collection.h"
#include "core/profile_store.h"
#include "core/types.h"

/// \file standard_blocking.h
/// Schema-based Standard Blocking [19]: one block per distinct value of a
/// hand-crafted blocking key (e.g. Soundex(surname)+initial+zipcode for
/// census). This is the substrate of the schema-based baselines in the
/// paper's taxonomy (Fig. 2). Each profile contributes exactly one key,
/// so the blocks are redundancy-free.

namespace sper {

/// Builds schema-based standard blocks. Profiles whose key is empty are
/// left out (missing values produce no blocking key). Only blocks with at
/// least one valid comparison are kept; block order is key order.
BlockCollection StandardBlocking(const ProfileStore& store,
                                 const SchemaKeyFn& key_fn);

}  // namespace sper

#endif  // SPER_BLOCKING_STANDARD_BLOCKING_H_
