// Emission-phase throughput bench: the pay-as-you-go part of progressive
// ER the paper actually measures recall against (Alg. 6) — how fast can
// the engine *emit* once initialization is done?
//
// Two paths per configuration, both draining the same engine setup:
//
//   emit_serial     the reference path (lookahead 0): every refill —
//                   ProcessProfile / ProcessBlock, and for sharded runs
//                   every shard-head refill of the k-way merge — is
//                   computed inline on the consuming thread;
//   emit_pipelined  the emission pipeline (lookahead > 0): refill batches
//                   are produced ahead of consumption on producer tasks,
//                   one per shard, so the consumer pops completed batches.
//
// Each path also runs a telemetry-overhead configuration ("_obs" rows): the
// same drain with a live obs::Registry attached. Those rows are digest-
// checked against the same reference (telemetry must be a pure observer)
// and report the on/off wall-clock ratio as an "overhead" extra; the
// pipelined one additionally reports ring-occupancy quantiles and
// stall/wait counts read off the registry.
//
// Both paths emit the *bit-identical* comparison stream (same pairs, same
// weights, same order); the bench folds every emission into an FNV-1a
// digest and fails (exit 1) on any divergence.
//
//   bench_emission_throughput [--scale=S] [--dataset=NAME] [--method=M]
//                             [--repeat=R] [--threads=T] [--budget=N]
//                             [--shards=S1,S2,...] [--lookahead=L1,L2,...]
//                             [--json=PATH]
//
// --json emits {dataset, scale, threads, shards, lookahead, path,
// wall_ms, speedup} records (schema: bench/BENCH.md); speedup is
// serial/pipelined at the same shard count. Speedup needs spare physical
// cores: with S shards the pipelined path keeps S producers plus the
// merge thread busy; on a 1-core machine it degrades to ~1.0x (queue
// overhead only) while the digests still pin correctness.
//
// The timer covers the drain only — producers start prefetching during
// engine construction, before the timer. With the default --budget=0
// (drain dry) that head start is at most lookahead slots per shard,
// noise against millions of emissions; a small --budget makes the
// pipelined number mostly prefetched-for-free and the speedup
// meaningless, so the bench warns when budget is within ~20x of the
// prefetch bound.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "datagen/datagen.h"
#include "engine/resolver.h"
#include "eval/table.h"
#include "obs/registry.h"
#include "obs/telemetry.h"

namespace {

using namespace sper;

double Millis(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

using sper::bench::DrainResult;

/// Builds the resolver (Resolver::Create picks plain vs sharded vs
/// pipelined), then times the emission drain only — initialization is
/// bench_parallel_scaling's job. A non-null `registry` attaches a
/// telemetry scope (the "_obs" paths); the drained stream must stay
/// bit-identical either way.
DrainResult RunOnce(const ProfileStore& store, MethodId method,
                    std::size_t threads, std::size_t shards,
                    std::size_t lookahead, std::uint64_t budget,
                    obs::Registry* registry = nullptr) {
  ResolverOptions options;
  options.method = method;
  options.num_threads = threads;
  options.num_shards = shards;
  options.budget = budget;
  options.lookahead = lookahead;
  if (registry != nullptr) {
    options.telemetry = obs::TelemetryScope(registry);
  }
  std::unique_ptr<Resolver> engine =
      sper::bench::CreateResolverOrDie(store, options);

  DrainResult result;
  const auto start = std::chrono::steady_clock::now();
  while (std::optional<Comparison> c = engine->Next()) {
    result.Fold(*c);
  }
  result.wall_ms = Millis(start);
  return result;
}

/// The telemetry observations of one instrumented pipelined run,
/// aggregated across shards (the plain engine records unprefixed
/// "pipeline.*" metrics; the sharded engine one set per "shardS."
/// prefix).
void AppendPipelineExtras(const obs::Registry& registry, std::size_t shards,
                          sper::bench::JsonRecord& record) {
  obs::Histogram occupancy;
  std::uint64_t stalls = 0;
  std::uint64_t waits = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::string prefix =
        shards > 1 ? "shard" + std::to_string(s) + "." : "";
    if (const obs::Histogram* h =
            registry.FindHistogram(prefix + "pipeline.ring_occupancy")) {
      occupancy.Merge(*h);
    }
    if (const obs::Counter* c =
            registry.FindCounter(prefix + "pipeline.producer_stalls")) {
      stalls += c->value();
    }
    if (const obs::Counter* c =
            registry.FindCounter(prefix + "pipeline.consumer_waits")) {
      waits += c->value();
    }
  }
  const obs::HistogramSnapshot snap = occupancy.Snapshot();
  record.extras.emplace_back("ring_occupancy_p50",
                             static_cast<double>(snap.p50));
  record.extras.emplace_back("ring_occupancy_p99",
                             static_cast<double>(snap.p99));
  record.extras.emplace_back("producer_stalls", static_cast<double>(stalls));
  record.extras.emplace_back("consumer_waits", static_cast<double>(waits));
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  int repeat = 3;
  std::string dataset_name = "dbpedia";
  std::string method_name = "pps";
  std::string json_path;
  std::size_t threads = 8;
  std::uint64_t budget = 0;  // 0 = drain the method dry
  std::vector<std::size_t> shard_counts = {1, 4};
  std::vector<std::size_t> lookaheads = {4};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--dataset=", 10) == 0) {
      dataset_name = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--method=", 9) == 0) {
      method_name = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      repeat = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::strtoul(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--budget=", 9) == 0) {
      budget = std::strtoull(argv[i] + 9, nullptr, 10);
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shard_counts = sper::bench::ParseSizeList(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--lookahead=", 12) == 0) {
      lookaheads = sper::bench::ParseSizeList(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::printf(
          "usage: %s [--scale=S] [--dataset=NAME] [--method=M] "
          "[--repeat=R] [--threads=T] [--budget=N] [--shards=S1,S2,...] "
          "[--lookahead=L1,L2,...] [--json=PATH]\n",
          argv[0]);
      return 2;
    }
  }

  const std::optional<MethodId> method = ParseMethodId(method_name);
  if (!method.has_value()) {
    std::fprintf(stderr, "unknown method '%s'\n", method_name.c_str());
    return 2;
  }
  DatagenOptions gen;
  gen.scale = scale;
  Result<DatasetBundle> dataset = GenerateDataset(dataset_name, gen);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const ProfileStore& store = dataset.value().store;
  std::printf("dataset %s: %zu profiles (scale %.2f, %s), method %s, "
              "threads %zu, budget %llu, hardware threads %u\n",
              dataset.value().name.c_str(), store.size(), scale,
              ToString(store.er_type()),
              std::string(ToString(*method)).c_str(), threads,
              static_cast<unsigned long long>(budget),
              std::thread::hardware_concurrency());

  if (budget > 0) {
    // Producers prefetch up to ~(lookahead + 1) slots of >= 256
    // comparisons per shard before the drain timer starts.
    std::uint64_t max_prefetch = 0;
    for (std::size_t shards : shard_counts) {
      for (std::size_t lookahead : lookaheads) {
        max_prefetch = std::max<std::uint64_t>(
            max_prefetch, shards * (lookahead + 1) * 256);
      }
    }
    if (budget < 20 * max_prefetch) {
      std::printf("WARNING: budget %llu is within 20x of the prefetch "
                  "bound (~%llu comparisons computed before the timer); "
                  "pipelined speedups below are not meaningful.\n",
                  static_cast<unsigned long long>(budget),
                  static_cast<unsigned long long>(max_prefetch));
    }
  }

  std::vector<sper::bench::JsonRecord> records;
  TextTable table({"shards", "lookahead", "emitted", "emission (ms)",
                   "speedup", "digest"});
  bool ok = true;
  for (std::size_t shards : shard_counts) {
    DrainResult serial;
    for (int r = 0; r < repeat; ++r) {
      DrainResult run =
          RunOnce(store, *method, threads, shards, /*lookahead=*/0, budget);
      if (r == 0 || run.wall_ms < serial.wall_ms) serial = run;
    }
    table.AddRow({std::to_string(shards), "0 (serial)",
                  std::to_string(serial.emitted),
                  FormatDouble(serial.wall_ms, 1), "1.00x", "reference"});
    records.push_back({dataset.value().name, scale, threads, "emit_serial",
                       serial.wall_ms, 1.0, shards, 0});

    // Telemetry-overhead configuration: the same serial drain with a
    // live registry attached. The stream must stay bit-identical and the
    // overhead (obs/off wall-clock ratio) near 1.0 — the acceptance bar
    // for the instrumentation being a pure observer.
    {
      DrainResult serial_obs;
      for (int r = 0; r < repeat; ++r) {
        obs::Registry registry;
        DrainResult run = RunOnce(store, *method, threads, shards,
                                  /*lookahead=*/0, budget, &registry);
        if (r == 0 || run.wall_ms < serial_obs.wall_ms) serial_obs = run;
      }
      const bool match = serial_obs.SameStream(serial);
      ok = ok && match;
      const double overhead =
          serial.wall_ms > 0 ? serial_obs.wall_ms / serial.wall_ms : 0.0;
      table.AddRow({std::to_string(shards), "0 (serial, obs)",
                    std::to_string(serial_obs.emitted),
                    FormatDouble(serial_obs.wall_ms, 1),
                    FormatDouble(overhead, 3) + "x ovh",
                    match ? "match" : "MISMATCH"});
      sper::bench::JsonRecord record{
          dataset.value().name, scale, threads, "emit_serial_obs",
          serial_obs.wall_ms,
          serial_obs.wall_ms > 0 ? serial.wall_ms / serial_obs.wall_ms : 0.0,
          shards, 0};
      record.extras.emplace_back("overhead", overhead);
      records.push_back(std::move(record));
    }

    for (std::size_t lookahead : lookaheads) {
      if (lookahead == 0) continue;
      DrainResult pipelined;
      for (int r = 0; r < repeat; ++r) {
        DrainResult run =
            RunOnce(store, *method, threads, shards, lookahead, budget);
        if (r == 0 || run.wall_ms < pipelined.wall_ms) pipelined = run;
      }
      const bool match = pipelined.SameStream(serial);
      ok = ok && match;
      const double speedup =
          pipelined.wall_ms > 0 ? serial.wall_ms / pipelined.wall_ms : 0.0;
      table.AddRow({std::to_string(shards), std::to_string(lookahead),
                    std::to_string(pipelined.emitted),
                    FormatDouble(pipelined.wall_ms, 1),
                    FormatDouble(speedup, 2) + "x",
                    match ? "match" : "MISMATCH"});
      records.push_back({dataset.value().name, scale, threads,
                         "emit_pipelined", pipelined.wall_ms, speedup,
                         shards, lookahead});

      // Instrumented pipelined run: overhead vs the un-instrumented
      // pipelined drain, plus the pipeline-health observations (ring
      // occupancy quantiles, stall/wait counts) read off the registry of
      // the best repeat.
      DrainResult pipelined_obs;
      std::unique_ptr<obs::Registry> best_registry;
      for (int r = 0; r < repeat; ++r) {
        auto registry = std::make_unique<obs::Registry>();
        DrainResult run = RunOnce(store, *method, threads, shards,
                                  lookahead, budget, registry.get());
        if (r == 0 || run.wall_ms < pipelined_obs.wall_ms) {
          pipelined_obs = run;
          best_registry = std::move(registry);
        }
      }
      const bool obs_match = pipelined_obs.SameStream(serial);
      ok = ok && obs_match;
      const double overhead = pipelined.wall_ms > 0
                                  ? pipelined_obs.wall_ms / pipelined.wall_ms
                                  : 0.0;
      table.AddRow({std::to_string(shards),
                    std::to_string(lookahead) + " (obs)",
                    std::to_string(pipelined_obs.emitted),
                    FormatDouble(pipelined_obs.wall_ms, 1),
                    FormatDouble(overhead, 3) + "x ovh",
                    obs_match ? "match" : "MISMATCH"});
      sper::bench::JsonRecord record{
          dataset.value().name, scale, threads, "emit_pipelined_obs",
          pipelined_obs.wall_ms,
          pipelined_obs.wall_ms > 0
              ? pipelined.wall_ms / pipelined_obs.wall_ms
              : 0.0,
          shards, lookahead};
      record.extras.emplace_back("overhead", overhead);
      AppendPipelineExtras(*best_registry, shards, record);
      records.push_back(std::move(record));
    }
  }
  table.Print();
  std::printf("\ndigest = FNV-1a over every emitted (i, j, weight); "
              "\"match\" means the pipelined\nstream is bit-identical to "
              "the serial reference at the same shard count.\n");

  if (!json_path.empty() &&
      !sper::bench::WriteJsonRecords(json_path, records)) {
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr, "FAIL: pipelined emission diverged from serial\n");
    return 1;
  }
  return 0;
}
