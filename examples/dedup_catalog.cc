// Pay-as-you-go deduplication of a dirty catalog (the paper's motivating
// scenario: "the catalog update in large online retailers that is carried
// out every few hours"). A restaurant-guide-style catalog is deduplicated
// under a fixed comparison budget with LS-PSN served through the Resolver
// API; a Jaccard match function scores each emitted pair.
//
//   $ ./dedup_catalog [budget]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>

#include "datagen/datagen.h"
#include "engine/resolver.h"
#include "matching/match_function.h"

namespace {

std::unique_ptr<sper::Resolver> MakeLsPsnResolver(
    const sper::ProfileStore& store, std::uint64_t budget) {
  sper::ResolverOptions options;
  options.method = sper::MethodId::kLsPsn;
  options.budget = budget;  // the global pay-as-you-go cap
  sper::Result<std::unique_ptr<sper::Resolver>> created =
      sper::Resolver::Create(store, options);
  if (!created.ok()) {
    std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(created).value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sper;

  // A zero or negative argument means "spend nothing" (ResolverOptions::
  // budget uses 0 as the *unlimited* sentinel, so it must not get a raw 0).
  const long long raw_budget = argc > 1 ? std::atoll(argv[1]) : 250;
  const std::uint64_t budget =
      raw_budget > 0 ? static_cast<std::uint64_t>(raw_budget) : 0;
  if (budget == 0) {
    std::printf("budget 0: nothing to resolve.\n");
    return 0;
  }

  Result<DatasetBundle> dataset = GenerateDataset("restaurant");
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const ProfileStore& store = dataset.value().store;
  const GroundTruth& truth = dataset.value().truth;
  std::printf("catalog: %zu listings, %zu known duplicate pairs\n",
              store.size(), truth.num_matches());
  std::printf("budget:  %llu comparisons (%.1fx the duplicate count)\n\n",
              static_cast<unsigned long long>(budget),
              static_cast<double>(budget) /
                  static_cast<double>(truth.num_matches()));

  // The serving shape of the paper's model: a long-lived resolver owns
  // the ranked stream; the consumer draws batches until its budget is
  // spent. Here the nightly dedup job draws 50 comparisons per request.
  std::unique_ptr<Resolver> resolver = MakeLsPsnResolver(store, budget);
  ResolverSession session = resolver->OpenSession();
  JaccardMatch match(store);

  std::size_t found = 0;
  std::printf("first few detected duplicates (jaccard >= 0.5):\n");
  for (;;) {
    ResolveResult batch = session.Resolve({/*budget=*/50, /*max_batch=*/0});
    for (const Comparison& c : batch.comparisons) {
      const double similarity = match.Similarity(c.i, c.j);
      if (similarity < 0.5) continue;  // the match function's decision
      ++found;
      if (found <= 5) {
        const Profile& a = store.profile(c.i);
        const Profile& b = store.profile(c.j);
        std::printf("  %.2f  \"%s\"\n        \"%s\"\n", similarity,
                    a.ConcatenatedValues().c_str(),
                    b.ConcatenatedValues().c_str());
      }
    }
    if (batch.budget_exhausted || batch.stream_exhausted) break;
  }
  const std::uint64_t emitted = session.delivered();

  // How well did the budgeted pass do against the ground truth? Guard the
  // degenerate case: budget 0 would be the *unlimited* sentinel.
  std::size_t true_found = 0;
  if (emitted > 0) {
    std::unique_ptr<Resolver> recount = MakeLsPsnResolver(store, emitted);
    while (std::optional<Comparison> c = recount->Next()) {
      if (truth.AreMatching(c->i, c->j)) ++true_found;
    }
  }
  std::printf(
      "\nafter %llu comparisons (%llu requests): %zu pairs flagged by the "
      "match function\n",
      static_cast<unsigned long long>(emitted),
      static_cast<unsigned long long>(session.requests_served()),
      found);
  std::printf("ground-truth recall within the budget: %.1f%%\n",
              100.0 * static_cast<double>(true_found) /
                  static_cast<double>(truth.num_matches()));
  std::printf(
      "(batch ER would need all %zu profile pairs to guarantee the same)\n",
      store.size() * (store.size() - 1) / 2);
  return 0;
}
