#ifndef SPER_BLOCKING_BLOCK_COLLECTION_H_
#define SPER_BLOCKING_BLOCK_COLLECTION_H_

#include <cstdint>
#include <vector>

#include "blocking/block.h"
#include "core/macros.h"
#include "core/types.h"

/// \file block_collection.h
/// A block collection B with its aggregate statistics (paper Sec. 3):
/// |B| (number of blocks) and ||B|| (total comparisons).

namespace sper {

/// An ordered collection of blocks plus the ER-task geometry needed to
/// count comparisons (ER type and Clean-Clean split index). Block ids are
/// positions in the collection; Block Scheduling reorders the collection so
/// that ids equal processing rank.
class BlockCollection {
 public:
  /// Creates an empty collection for a task with the given geometry.
  /// `split_index` must equal the store's split index (== |P| for Dirty).
  BlockCollection(ErType er_type, ProfileId split_index)
      : er_type_(er_type), split_index_(split_index) {}

  /// Appends a block (profiles must be sorted ascending) and caches its
  /// cardinality. Returns the new block's id.
  BlockId Add(Block block);

  /// |B|: number of blocks.
  std::size_t size() const { return blocks_.size(); }

  bool empty() const { return blocks_.empty(); }

  /// The block with the given id.
  const Block& block(BlockId id) const { return blocks_[id]; }

  /// All blocks, id order.
  const std::vector<Block>& blocks() const { return blocks_; }

  /// ||b_id||: comparisons the block yields — C(|b|,2) for Dirty ER,
  /// |b ∩ P1| * |b ∩ P2| for Clean-Clean ER.
  std::uint64_t Cardinality(BlockId id) const { return cardinalities_[id]; }

  /// ||B||: the aggregate cardinality, Σ ||b_i||.
  std::uint64_t AggregateCardinality() const { return aggregate_cardinality_; }

  /// Mean block size |b̄| = Σ|b| / |B|.
  double MeanBlockSize() const;

  /// The ER form this collection was built for.
  ErType er_type() const { return er_type_; }

  /// First source-2 profile id (== |P| for Dirty ER).
  ProfileId split_index() const { return split_index_; }

  /// Invokes `fn(i, j)` for every valid comparison of block `id`: all
  /// unordered pairs for Dirty ER, cross-source pairs for Clean-Clean ER.
  /// Pairs are visited in a deterministic order.
  template <typename Fn>
  void ForEachComparison(BlockId id, Fn&& fn) const {
    const std::vector<ProfileId>& ps = blocks_[id].profiles;
    if (er_type_ == ErType::kDirty) {
      for (std::size_t x = 0; x < ps.size(); ++x) {
        for (std::size_t y = x + 1; y < ps.size(); ++y) fn(ps[x], ps[y]);
      }
    } else {
      // Sorted ids: the source-1 members form a prefix.
      std::size_t first2 = 0;
      while (first2 < ps.size() && ps[first2] < split_index_) ++first2;
      for (std::size_t x = 0; x < first2; ++x) {
        for (std::size_t y = first2; y < ps.size(); ++y) fn(ps[x], ps[y]);
      }
    }
  }

  /// Computes the cardinality a block would have under this geometry.
  std::uint64_t ComputeCardinality(const Block& block) const;

 private:
  ErType er_type_;
  ProfileId split_index_;
  std::vector<Block> blocks_;
  std::vector<std::uint64_t> cardinalities_;
  std::uint64_t aggregate_cardinality_ = 0;
};

}  // namespace sper

#endif  // SPER_BLOCKING_BLOCK_COLLECTION_H_
