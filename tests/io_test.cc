// Unit tests for src/io: CSV escaping/parsing and dataset round trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "io/csv.h"
#include "io/dataset_io.h"

namespace sper {
namespace {

// ------------------------------------------------------------------- CSV

TEST(CsvTest, PlainFieldIsUnquoted) {
  EXPECT_EQ(CsvEscape("hello"), "hello");
}

TEST(CsvTest, CommaAndQuoteAreQuoted) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, JoinAndSplitRoundTrip) {
  const std::vector<std::string> fields = {"plain", "with,comma",
                                           "with \"quote\"", "", "end"};
  EXPECT_EQ(CsvSplit(CsvJoin(fields)), fields);
}

TEST(CsvTest, SplitHandlesEmptyFields) {
  EXPECT_EQ(CsvSplit(",,"), (std::vector<std::string>{"", "", ""}));
}

TEST(CsvTest, SplitHandlesQuotedComma) {
  EXPECT_EQ(CsvSplit("a,\"b,c\",d"),
            (std::vector<std::string>{"a", "b,c", "d"}));
}

// ------------------------------------------------------------ Dataset IO

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "sper_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(DatasetIoTest, DirtyProfilesRoundTrip) {
  std::vector<Profile> ps(2);
  ps[0].AddAttribute("name", "carl, the \"tailor\"");
  ps[0].AddAttribute("city", "ny");
  ps[1].AddAttribute("name", "ellen");
  ProfileStore store = ProfileStore::MakeDirty(std::move(ps));

  ASSERT_TRUE(WriteProfilesCsv(store, Path("p.csv")).ok());
  Result<ProfileStore> loaded = ReadProfilesCsv(Path("p.csv"), ErType::kDirty);
  ASSERT_TRUE(loaded.ok());
  const ProfileStore& got = loaded.value();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got.profile(0).ValueOf("name"), "carl, the \"tailor\"");
  EXPECT_EQ(got.profile(0).ValueOf("city"), "ny");
  EXPECT_EQ(got.profile(1).ValueOf("name"), "ellen");
}

TEST_F(DatasetIoTest, CleanCleanProfilesPreserveSources) {
  std::vector<Profile> s1(1), s2(2);
  s1[0].AddAttribute("a", "x");
  s2[0].AddAttribute("b", "y");
  s2[1].AddAttribute("c", "z");
  ProfileStore store =
      ProfileStore::MakeCleanClean(std::move(s1), std::move(s2));

  ASSERT_TRUE(WriteProfilesCsv(store, Path("cc.csv")).ok());
  Result<ProfileStore> loaded =
      ReadProfilesCsv(Path("cc.csv"), ErType::kCleanClean);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().source1_size(), 1u);
  EXPECT_EQ(loaded.value().source2_size(), 2u);
  EXPECT_EQ(loaded.value().profile(1).ValueOf("b"), "y");
}

TEST_F(DatasetIoTest, GroundTruthRoundTrip) {
  GroundTruth truth;
  truth.AddMatch(0, 5);
  truth.AddMatch(3, 1);
  ASSERT_TRUE(WriteGroundTruthCsv(truth, Path("gt.csv")).ok());
  Result<GroundTruth> loaded = ReadGroundTruthCsv(Path("gt.csv"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_matches(), 2u);
  EXPECT_TRUE(loaded.value().AreMatching(5, 0));
  EXPECT_TRUE(loaded.value().AreMatching(1, 3));
}

TEST_F(DatasetIoTest, MissingFileYieldsIoError) {
  Result<ProfileStore> r =
      ReadProfilesCsv(Path("does_not_exist.csv"), ErType::kDirty);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  Result<GroundTruth> g = ReadGroundTruthCsv(Path("nope.csv"));
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace sper
