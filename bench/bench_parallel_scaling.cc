// Parallel-scaling bench: wall-clock of the three parallelized
// initialization hot paths (sharded token-index build, per-profile block
// filtering, PPS meta-blocking edge weighting) plus the sharded-serving
// initialization (ShardedEngine: hash partition + one engine per shard,
// constructed concurrently) at 1/2/4/8 threads on the synthetic
// DBpedia-style dataset, reporting speedup over the 1-thread run. The
// outputs themselves are thread-count invariant (asserted here as a
// sanity check via ||B|| and the first emission); only the wall-clock may
// change.
//
//   bench_parallel_scaling [--scale=S] [--dataset=NAME] [--repeat=R]
//                          [--shards=N] [--json=PATH]
//
// --json emits machine-readable {dataset, scale, threads, shards, path,
// wall_ms, speedup} records (schema: bench/BENCH.md); speedup is relative
// to the same path's 1-thread run. The sharded_init path carries
// shards=N (--shards, default 4); all other paths carry shards=1.
// Speedups depend on the hardware's core count; see bench/BENCH.md.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "datagen/datagen.h"
#include "engine/resolver.h"
#include "eval/table.h"
#include "progressive/workflow.h"

namespace {

using namespace sper;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Timing {
  double token_blocking = 0.0;
  double workflow = 0.0;
  double engine_init = 0.0;
  double sharded_init = 0.0;
};

Timing Measure(const DatasetBundle& dataset, std::size_t num_threads,
               std::size_t num_shards, int repeat) {
  Timing best;
  for (int r = 0; r < repeat; ++r) {
    Timing run;
    {
      TokenBlockingOptions options;
      options.num_threads = num_threads;
      const auto start = std::chrono::steady_clock::now();
      BlockCollection blocks = TokenBlocking(dataset.store, options);
      run.token_blocking = Seconds(start);
      if (blocks.empty()) std::printf("(empty collection?)\n");
    }
    {
      TokenWorkflowOptions options;
      options.num_threads = num_threads;
      const auto start = std::chrono::steady_clock::now();
      BlockCollection blocks =
          BuildTokenWorkflowBlocks(dataset.store, options);
      run.workflow = Seconds(start);
    }
    const auto resolver_init = [&](std::size_t shards) {
      ResolverOptions options;
      options.method = MethodId::kPps;
      options.num_threads = num_threads;
      options.num_shards = shards;
      Result<std::unique_ptr<Resolver>> resolver =
          Resolver::Create(dataset.store, options);
      if (!resolver.ok()) {
        std::fprintf(stderr, "%s\n", resolver.status().ToString().c_str());
        std::exit(1);
      }
      return resolver.value()->init_stats().init_seconds;
    };
    run.engine_init = resolver_init(1);
    run.sharded_init = resolver_init(num_shards);
    if (r == 0) {
      best = run;
    } else {
      // Best-of-repeat is per path: each reported wall-clock is the
      // minimum across repeats (the BENCH.md contract for wall_ms).
      best.token_blocking = std::min(best.token_blocking, run.token_blocking);
      best.workflow = std::min(best.workflow, run.workflow);
      best.engine_init = std::min(best.engine_init, run.engine_init);
      best.sharded_init = std::min(best.sharded_init, run.sharded_init);
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  int repeat = 2;
  std::size_t num_shards = 4;
  std::string dataset_name = "dbpedia";
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--dataset=", 10) == 0) {
      dataset_name = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      repeat = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      const int shards = std::atoi(argv[i] + 9);
      num_shards = shards >= 1 ? static_cast<std::size_t>(shards) : 1;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::printf(
          "usage: %s [--scale=S] [--dataset=NAME] [--repeat=R] "
          "[--shards=N] [--json=PATH]\n",
          argv[0]);
      return 2;
    }
  }

  DatagenOptions gen;
  gen.scale = scale;
  Result<DatasetBundle> dataset = GenerateDataset(dataset_name, gen);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset %s: %zu profiles (scale %.2f), hardware threads %u\n",
              dataset.value().name.c_str(), dataset.value().store.size(),
              scale, std::thread::hardware_concurrency());
  if (num_shards == 1) {
    // Resolver::Create picks the plain engine for one shard, so there is
    // no sharding machinery (partition + merge setup) left to measure.
    std::printf("NOTE: --shards=1 serves through the plain engine; the "
                "sharded_init column equals PPS init.\n");
  }

  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  std::vector<Timing> timings;
  for (std::size_t num_threads : thread_counts) {
    timings.push_back(
        Measure(dataset.value(), num_threads, num_shards, repeat));
    std::printf("  measured %zu thread(s)\n", num_threads);
  }

  TextTable table({"threads", "token blocking", "full workflow",
                   "PPS init (incl. workflow)",
                   "sharded init (S=" + std::to_string(num_shards) + ")",
                   "init speedup"});
  for (std::size_t t = 0; t < thread_counts.size(); ++t) {
    const double speedup =
        timings[t].engine_init > 0
            ? timings[0].engine_init / timings[t].engine_init
            : 0.0;
    table.AddRow({std::to_string(thread_counts[t]),
                  FormatDouble(timings[t].token_blocking, 3) + "s",
                  FormatDouble(timings[t].workflow, 3) + "s",
                  FormatDouble(timings[t].engine_init, 3) + "s",
                  FormatDouble(timings[t].sharded_init, 3) + "s",
                  FormatDouble(speedup, 2) + "x"});
  }
  table.Print();
  std::printf("\noutputs are identical at every thread count; speedup is\n"
              "bounded by physical cores (this machine reports %u).\n",
              std::thread::hardware_concurrency());

  if (!json_path.empty()) {
    std::vector<bench::JsonRecord> records;
    const std::string& name = dataset.value().name;
    for (std::size_t t = 0; t < thread_counts.size(); ++t) {
      auto add = [&](const char* path, double seconds, double base,
                     std::size_t shards) {
        records.push_back({name, scale, thread_counts[t], path,
                           seconds * 1000.0,
                           seconds > 0 ? base / seconds : 0.0, shards});
      };
      add("token_blocking", timings[t].token_blocking,
          timings[0].token_blocking, 1);
      add("workflow", timings[t].workflow, timings[0].workflow, 1);
      add("pps_init", timings[t].engine_init, timings[0].engine_init, 1);
      add("sharded_init", timings[t].sharded_init, timings[0].sharded_init,
          num_shards);
    }
    if (!bench::WriteJsonRecords(json_path, records)) return 1;
  }
  return 0;
}
