#ifndef SPER_SORTED_NEIGHBOR_LIST_H_
#define SPER_SORTED_NEIGHBOR_LIST_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/profile_store.h"
#include "core/tokenizer.h"
#include "core/types.h"

/// \file neighbor_list.h
/// The Neighbor List (paper Sec. 3.2): profiles sorted alphabetically by
/// their blocking keys. It encodes the similarity principle — the closer
/// two keys sort, the likelier their profiles match.
///
/// - Schema-agnostic variant: every profile appears once per distinct
///   attribute-value token (Fig. 3e), so matches get multiple chances to
///   land close together.
/// - Schema-based variant: one hand-crafted key per profile (classic
///   Sorted Neighborhood / PSN).
///
/// Profiles sharing a key land in a random relative order ("coincidental
/// proximity", Sec. 4.1). We reproduce that with a seeded shuffle inside
/// every equal-key run, keeping runs reproducible.

namespace sper {

/// Options for Neighbor List construction.
struct NeighborListOptions {
  /// How attribute values are split into tokens (schema-agnostic variant).
  TokenizerOptions tokenizer;
  /// Shuffle profiles inside equal-key runs (coincidental proximity).
  bool shuffle_ties = true;
  /// Seed of the tie shuffle.
  std::uint64_t seed = 42;
};

/// An immutable sorted list of profile placements.
class NeighborList {
 public:
  /// Builds the schema-agnostic Neighbor List: one placement per distinct
  /// token per profile, sorted by token.
  static NeighborList BuildSchemaAgnostic(
      const ProfileStore& store, const NeighborListOptions& options = {});

  /// Builds the schema-based Neighbor List: one placement per profile,
  /// keyed by `key_fn`; profiles with an empty key are skipped.
  static NeighborList BuildSchemaBased(const ProfileStore& store,
                                       const SchemaKeyFn& key_fn,
                                       const NeighborListOptions& options = {});

  /// Number of placements (≥ number of distinct profiles present).
  std::size_t size() const { return profiles_.size(); }

  bool empty() const { return profiles_.empty(); }

  /// The profile at position `pos`.
  ProfileId at(std::size_t pos) const { return profiles_[pos]; }

  /// All placements in sorted-key order.
  const std::vector<ProfileId>& profiles() const { return profiles_; }

  /// The sorted keys, parallel to profiles(). Retained for inspection,
  /// tests and SA-PSAB-style diagnostics.
  const std::vector<std::string>& keys() const { return keys_; }

 private:
  static NeighborList Assemble(
      std::vector<std::pair<std::string, ProfileId>> entries,
      const NeighborListOptions& options);

  std::vector<ProfileId> profiles_;
  std::vector<std::string> keys_;
};

}  // namespace sper

#endif  // SPER_SORTED_NEIGHBOR_LIST_H_
