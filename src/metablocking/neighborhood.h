#ifndef SPER_METABLOCKING_NEIGHBORHOOD_H_
#define SPER_METABLOCKING_NEIGHBORHOOD_H_

#include <span>
#include <vector>

#include "blocking/block_collection.h"
#include "blocking/profile_index.h"
#include "core/types.h"

/// \file neighborhood.h
/// Sparse accumulation over a profile's blocking-graph neighborhood: the
/// classic meta-blocking "dirty array + touched list" pattern. Visiting
/// profile i costs O(Σ_{b ∈ B_i} |b|) with no hashing and no allocation
/// after construction.
///
/// The inner loop is partition-aware: for Clean-Clean ER it scans only the
/// opposite-source range of each block (via the collection's precomputed
/// split points), so there is no per-element comparability branch at all;
/// Dirty ER keeps only the j != i check. Either way neighbors are visited
/// in exactly the order the full scan-and-test loop would visit them, so
/// downstream emission orders are unchanged.

namespace sper {

/// Reusable accumulator for per-neighbor weights of one profile at a time.
class NeighborhoodAccumulator {
 public:
  explicit NeighborhoodAccumulator(std::size_t num_profiles)
      : acc_(num_profiles, 0.0) {
    // Worst case every other profile is a neighbor; one up-front
    // reservation kills reallocation churn in the hot loop.
    touched_.reserve(num_profiles);
  }

  /// Accumulates `contribution(b)` into every comparable co-occurring
  /// profile of `i` across all blocks of `i`, then invokes
  /// `fn(j, accumulated)` once per distinct neighbor and resets itself.
  /// `contribution` maps a BlockId to its additive share (e.g. 1/||b||
  /// for ARCS, 1 for count-based schemes).
  template <typename ContributionFn, typename Fn>
  void Gather(ProfileId i, const BlockCollection& blocks,
              const ProfileIndex& index, ContributionFn&& contribution,
              Fn&& fn) {
    if (blocks.er_type() == ErType::kCleanClean) {
      for (BlockId b : index.BlocksOf(i)) {
        const double share = contribution(b);
        for (ProfileId j : blocks.OppositeSource(b, i)) {
          if (acc_[j] == 0.0) touched_.push_back(j);
          acc_[j] += share;
        }
      }
    } else {
      for (BlockId b : index.BlocksOf(i)) {
        const double share = contribution(b);
        for (ProfileId j : blocks.members(b)) {
          if (j == i) continue;
          if (acc_[j] == 0.0) touched_.push_back(j);
          acc_[j] += share;
        }
      }
    }
    for (ProfileId j : touched_) {
      fn(j, acc_[j]);
      acc_[j] = 0.0;
    }
    touched_.clear();
  }

 private:
  std::vector<double> acc_;
  std::vector<ProfileId> touched_;
};

}  // namespace sper

#endif  // SPER_METABLOCKING_NEIGHBORHOOD_H_
