#ifndef SPER_BLOCKING_PROFILE_INDEX_H_
#define SPER_BLOCKING_PROFILE_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "blocking/block_collection.h"
#include "core/types.h"

/// \file profile_index.h
/// The Profile Index of Sec. 5.2: an inverted index from profile id to the
/// (ascending) ids of the blocks containing it. It powers the two core
/// operations of the equality-based methods: the LeCoBI repeated-comparison
/// test and Edge Weighting via parallel traversal of two block lists.
/// Stored in CSR layout for cache-friendly scans at web scale.

namespace sper {

/// Inverted index: profile id -> sorted block ids.
class ProfileIndex {
 public:
  /// Builds the index over a block collection for `num_profiles` profiles.
  /// Blocks are visited in id order, so each profile's list is ascending —
  /// the property both LeCoBI and Edge Weighting rely on.
  ProfileIndex(const BlockCollection& blocks, std::size_t num_profiles);

  /// The ascending block ids containing profile `p` (the paper's B_p).
  std::span<const BlockId> BlocksOf(ProfileId p) const {
    return {flat_.data() + offsets_[p], flat_.data() + offsets_[p + 1]};
  }

  /// |B_p|: how many blocks contain profile `p`.
  std::size_t NumBlocksOf(ProfileId p) const {
    return offsets_[p + 1] - offsets_[p];
  }

  /// Σ_{p in [begin, end)} |B_p| in O(1): the number of index entries of a
  /// contiguous profile range. Lets parallel chunk workers pre-size their
  /// per-chunk buffers without a counting pass.
  std::uint64_t NumEntriesIn(std::size_t begin, std::size_t end) const {
    return offsets_[end] - offsets_[begin];
  }

  /// The Least Common Block Index operation (Sec. 5.2.1): the smallest
  /// block id shared by `a` and `b`, or kInvalidBlock when they share none.
  BlockId LeastCommonBlock(ProfileId a, ProfileId b) const;

  /// Visits every common block id of `a` and `b` in ascending order.
  template <typename Fn>
  void ForEachCommonBlock(ProfileId a, ProfileId b, Fn&& fn) const {
    std::span<const BlockId> la = BlocksOf(a);
    std::span<const BlockId> lb = BlocksOf(b);
    std::size_t x = 0, y = 0;
    while (x < la.size() && y < lb.size()) {
      if (la[x] < lb[y]) {
        ++x;
      } else if (lb[y] < la[x]) {
        ++y;
      } else {
        fn(la[x]);
        ++x;
        ++y;
      }
    }
  }

  /// Number of blocks shared by `a` and `b` (the CBS weight).
  std::size_t CountCommonBlocks(ProfileId a, ProfileId b) const;

  /// Number of profiles the index was built for.
  std::size_t num_profiles() const { return offsets_.size() - 1; }

 private:
  std::vector<std::uint64_t> offsets_;  // size num_profiles + 1
  std::vector<BlockId> flat_;
};

}  // namespace sper

#endif  // SPER_BLOCKING_PROFILE_INDEX_H_
