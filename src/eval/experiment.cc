#include "eval/experiment.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace sper {

ResolverOptions ToResolverOptions(MethodId id, const DatasetBundle& dataset,
                                  const MethodConfig& config) {
  ResolverOptions options;
  options.method = id;
  options.num_threads = config.num_threads;
  options.num_shards = config.num_shards;
  options.budget = config.budget;
  options.lookahead = config.lookahead;
  options.workflow = config.workflow;
  options.scheme = config.scheme;
  options.pps_kmax = config.pps_kmax;
  options.gs_wmax = config.gs_wmax;
  options.suffix = config.suffix;
  options.list = config.list;
  options.schema_key = dataset.psn_key;
  options.telemetry = config.telemetry;
  // MethodConfig is the old lenient surface (the engines historically
  // accepted any thread/shard count, with 0 meaning one); ResolverOptions
  // validates instead, so normalize into range here at the boundary —
  // MakeResolver must not start rejecting configs that used to run.
  if (options.num_threads == 0) options.num_threads = 1;
  if (options.num_shards == 0) options.num_shards = 1;
  options.num_threads =
      std::min(options.num_threads, ResolverOptions::kMaxThreads);
  options.num_shards = std::min(options.num_shards, ResolverOptions::kMaxShards);
  options.lookahead = std::min(options.lookahead, ResolverOptions::kMaxLookahead);
  return options;
}

std::unique_ptr<Resolver> MakeResolver(MethodId id,
                                       const DatasetBundle& dataset,
                                       const MethodConfig& config) {
  if (id == MethodId::kPsn && !dataset.psn_key) return nullptr;
  Result<std::unique_ptr<Resolver>> resolver =
      Resolver::Create(dataset.store, ToResolverOptions(id, dataset, config));
  if (!resolver.ok()) {
    // Only reachable for degenerate method knobs (e.g. pps_kmax = 0);
    // the serving-shape knobs are normalized above. Name the reason
    // before the check aborts.
    std::fprintf(stderr, "MakeResolver: %s\n",
                 resolver.status().ToString().c_str());
    SPER_CHECK(false && "MethodConfig produced an invalid resolver");
  }
  return std::move(resolver).value();
}

const std::vector<MethodId>& StructuredMethodSet() {
  static const std::vector<MethodId> methods = {
      MethodId::kPsn,   MethodId::kSaPsn, MethodId::kSaPsab,
      MethodId::kLsPsn, MethodId::kGsPsn, MethodId::kPbs,
      MethodId::kPps};
  return methods;
}

const std::vector<MethodId>& HeterogeneousMethodSet() {
  static const std::vector<MethodId> methods = {
      MethodId::kSaPsn, MethodId::kSaPsab, MethodId::kLsPsn,
      MethodId::kGsPsn, MethodId::kPbs,    MethodId::kPps};
  return methods;
}

}  // namespace sper
