#ifndef SPER_OBS_FAULT_INJECTION_H_
#define SPER_OBS_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/mutex.h"
#include "core/thread_annotations.h"

/// \file fault_injection.h
/// Deterministic fault-injection harness for the serving stack, gated by
/// the SPER_FAULT_INJECT compile option (CMake -DSPER_FAULT_INJECT=ON).
///
/// Library code marks *seams* with SPER_FAULT_HIT("site") — a no-op in
/// normal builds. In a fault build, tests and benches Arm() a site with a
/// FaultPlan (stall for N ms, or throw) and the seam fires according to
/// the plan's deterministic schedule: hit counters plus a seeded
/// splitmix64 Bernoulli gate, never wall-clock or thread timing, so a
/// failing run replays exactly.
///
/// Instrumented seams (site names are part of the test/bench contract):
///   - "ring.acquire_slot"        SpscSlotRing producer-side acquire
///   - "refill" / "refill.<lbl>"  one refill-batch production (per shard
///                                when sharded, e.g. "refill.shard0")
///   - "merge.draw"               one ShardedEngine k-way-merge draw
///   - "session.admit"            one Resolver::Serve admission
///   - "qos.admit"                one QosAdmissionController::Resolve entry
///   - "qos.shed"                 one QoS load-shed (rate limit or queue
///                                bound), on the requester's thread
///   - "qos.evict"                one QoS doomed-request eviction
///   - "net.accept"               one net::Server accepted connection,
///                                before its worker thread starts
///   - "net.read"                 one connection read turn, before the
///                                request frame is read
///   - "net.write"                one connection write turn, before the
///                                response frame is written
///
/// The registry is process-global (seams live in templates and hot loops
/// that have no injection context to thread a handle through), guarded by
/// a mutex, and fast when idle: an armed-site count lets Hit() return on
/// one relaxed atomic load when nothing is armed.

namespace sper {
namespace obs {

/// What an armed site does, and on which hits. All scheduling fields are
/// deterministic functions of the site's hit counter and `seed`.
struct FaultPlan {
  enum class Action {
    kStall,  // sleep stall_ms, then continue normally
    kThrow,  // throw FaultInjectedError(message)
  };
  Action action = Action::kStall;

  /// Milliseconds to sleep per fire (kStall).
  std::uint64_t stall_ms = 1;
  /// Exception message (kThrow).
  std::string message = "injected fault";

  /// Hits to let pass untouched before the schedule starts.
  std::uint64_t start_after = 0;
  /// Fire on every k-th scheduled hit (1 = every hit past start_after).
  std::uint64_t every = 1;
  /// Maximum number of fires; 0 = unlimited.
  std::uint64_t limit = 0;
  /// Bernoulli gate on each scheduled hit, decided by
  /// splitmix64(seed ^ hit_index) — deterministic per (seed, hit).
  double probability = 1.0;
  std::uint64_t seed = 0;
};

/// The exception kThrow sites raise — distinguishable from organic
/// failures in test assertions.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Process-global site registry. Thread-safe.
class FaultRegistry {
 public:
  static FaultRegistry& Global();

  /// Arms (or re-arms, resetting counters of) one site.
  void Arm(std::string site, FaultPlan plan);

  /// Disarms one site, keeping no counters.
  void Disarm(const std::string& site);

  /// Disarms every site (test teardown).
  void Reset();

  /// Times an armed site's seam was reached / actually fired; 0 for
  /// unarmed sites.
  std::uint64_t hits(const std::string& site) const;
  std::uint64_t fires(const std::string& site) const;

  /// True when any site is armed (the fast-path gate).
  bool armed() const {
    return armed_sites_.load(std::memory_order_relaxed) > 0;
  }

  /// The seam call: decides under the plan and stalls or throws. Called
  /// through SPER_FAULT_HIT so normal builds compile it out entirely.
  void Hit(std::string_view site);

 private:
  struct SiteState {
    FaultPlan plan;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  mutable Mutex mutex_;
  /// Looked up by key only, never iterated — hash order cannot leak into
  /// any output (tools/lint_determinism.py rule unordered-iteration).
  std::unordered_map<std::string, SiteState> sites_ SPER_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> armed_sites_{0};
};

#ifdef SPER_FAULT_INJECT
inline constexpr bool kFaultInjectionEnabled = true;
#define SPER_FAULT_HIT(site) ::sper::obs::FaultRegistry::Global().Hit(site)
#else
/// Normal builds: seams vanish; the registry class stays available so
/// fault tests compile (and skip themselves via this flag).
inline constexpr bool kFaultInjectionEnabled = false;
#define SPER_FAULT_HIT(site) ((void)0)
#endif

}  // namespace obs
}  // namespace sper

#endif  // SPER_OBS_FAULT_INJECTION_H_
