#ifndef SPER_BLOCKING_BLOCK_FILTERING_H_
#define SPER_BLOCKING_BLOCK_FILTERING_H_

#include "blocking/block_collection.h"

/// \file block_filtering.h
/// Block Filtering [12] (workflow step 3): retains every profile only in
/// its most important blocks. Importance of a block is inversely
/// proportional to its size — small blocks carry distinctive keys. The
/// paper keeps each profile in 80% of its smallest blocks.

namespace sper {

/// Options for Block Filtering.
struct BlockFilteringOptions {
  /// Every profile is kept in ceil(ratio * |B_i|) of its smallest blocks.
  double ratio = 0.8;
  /// Threads for the per-profile ranking and per-block rebuild passes
  /// (0 or 1 = sequential). The result is identical at every thread count.
  std::size_t num_threads = 1;
};

/// Returns a new collection in which every profile appears only in its
/// ceil(ratio*|B_i|) smallest blocks; blocks left without a valid
/// comparison are dropped. Relative order of surviving blocks and of
/// profiles inside blocks is preserved.
BlockCollection BlockFiltering(const BlockCollection& input,
                               const BlockFilteringOptions& options = {});

}  // namespace sper

#endif  // SPER_BLOCKING_BLOCK_FILTERING_H_
