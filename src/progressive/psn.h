#ifndef SPER_PROGRESSIVE_PSN_H_
#define SPER_PROGRESSIVE_PSN_H_

#include "core/profile_store.h"
#include "core/types.h"
#include "progressive/emitter.h"
#include "sorted/neighbor_list.h"

/// \file psn.h
/// Progressive Sorted Neighborhood (PSN) [4, 5]: the schema-based
/// state-of-the-art baseline. One hand-crafted blocking key per profile,
/// profiles sorted by key, and a sliding window of iteratively incremented
/// size: first all pairs at distance 1, then at distance 2, and so on.
///
/// PSN requires domain expertise (or supervised learning) to pick the
/// blocking key — the very dependence the paper's schema-agnostic methods
/// remove. Provided as the comparison baseline of Figs. 1 and 9-10.

namespace sper {

/// The schema-based PSN emitter.
class PsnEmitter : public ProgressiveEmitter {
 public:
  /// Initialization phase: builds the schema-based Neighbor List.
  /// `key_fn` is the literature blocking key for the dataset (e.g.
  /// Soundex(surname)+initials+zipcode for census, footnote 6).
  PsnEmitter(const ProfileStore& store, const SchemaKeyFn& key_fn,
             const NeighborListOptions& options = {});

  std::optional<Comparison> Next() override;

  std::string_view name() const override { return "PSN"; }

 private:
  const ProfileStore& store_;
  NeighborList list_;
  std::size_t window_ = 1;   // current sliding-window size
  std::size_t pos_ = 0;      // next left endpoint within the window pass
};

}  // namespace sper

#endif  // SPER_PROGRESSIVE_PSN_H_
