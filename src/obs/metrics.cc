#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace sper {
namespace obs {

std::size_t Histogram::BucketIndex(std::uint64_t value) {
  if (value < kLinearBuckets) return static_cast<std::size_t>(value);
  const std::size_t msb =
      static_cast<std::size_t>(std::bit_width(value)) - 1;  // >= 4
  const std::size_t sub =
      static_cast<std::size_t>((value >> (msb - 2)) & (kSubBuckets - 1));
  return kLinearBuckets + (msb - 4) * kSubBuckets + sub;
}

std::uint64_t Histogram::BucketLowerBound(std::size_t b) {
  if (b < kLinearBuckets) return b;
  const std::size_t msb = 4 + (b - kLinearBuckets) / kSubBuckets;
  const std::size_t sub = (b - kLinearBuckets) % kSubBuckets;
  return static_cast<std::uint64_t>(kSubBuckets + sub) << (msb - 2);
}

std::uint64_t Histogram::Quantile(double q) const {
  // Copy the live buckets once so rank extraction runs against one
  // consistent view even while writers keep recording.
  std::uint64_t counts[kNumBuckets];
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    counts[b] = counts_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(total))));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    cumulative += counts[b];
    if (cumulative >= rank) return BucketLowerBound(b);
  }
  return BucketLowerBound(kNumBuckets - 1);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.count = count();
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.max = max_.load(std::memory_order_relaxed);
  snapshot.p50 = Quantile(0.50);
  snapshot.p90 = Quantile(0.90);
  snapshot.p99 = Quantile(0.99);
  return snapshot;
}

}  // namespace obs
}  // namespace sper
