#include "progressive/sa_psab.h"

namespace sper {

SaPsabEmitter::SaPsabEmitter(const ProfileStore& store,
                             const SuffixForestOptions& options)
    : store_(store), forest_(SuffixForest::Build(store, options)) {
  x_ = 0;
  y_ = 1;
}

std::optional<Comparison> SaPsabEmitter::Next() {
  while (node_ < forest_.nodes().size()) {
    const SuffixNode& n = forest_.nodes()[node_];
    while (x_ + 1 < n.profiles.size()) {
      if (y_ >= n.profiles.size()) {
        ++x_;
        y_ = x_ + 1;
        continue;
      }
      const ProfileId a = n.profiles[x_];
      const ProfileId b = n.profiles[y_];
      ++y_;
      if (store_.IsComparable(a, b)) {
        // All comparisons of a node share its likelihood; we expose the
        // node's rank-derived score so weights are non-increasing across
        // nodes.
        const double weight =
            1.0 / static_cast<double>(node_ + 1);
        return Comparison(a, b, weight);
      }
    }
    ++node_;
    x_ = 0;
    y_ = 1;
  }
  return std::nullopt;
}

}  // namespace sper
