#ifndef SPER_PROGRESSIVE_PPS_H_
#define SPER_PROGRESSIVE_PPS_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "blocking/block_collection.h"
#include "blocking/profile_index.h"
#include "core/profile_store.h"
#include "metablocking/edge_weighting.h"
#include "obs/telemetry.h"
#include "progressive/comparison_list.h"
#include "progressive/emitter.h"
#include "progressive/top_k.h"

/// \file pps.h
/// Progressive Profile Scheduling (PPS, paper Sec. 5.2.2, Algorithms 5-6).
///
/// Entity-centric: every profile gets a *duplication likelihood* — the
/// average weight of its incident blocking-graph edges — and profiles are
/// resolved in decreasing order of it (the Sorted Profile List). The
/// initialization phase additionally collects the single best comparison
/// of every node, so the globally best edges are emitted first; during
/// emission each profile contributes its Kmax best comparisons, skipping
/// neighbors that were already processed (checkedEntities).

namespace sper {

/// Options of PPS.
struct PpsOptions {
  /// Blocking-graph edge-weighting scheme.
  WeightingScheme scheme = WeightingScheme::kArcs;
  /// Top-weighted comparisons kept per profile during emission. Must
  /// exceed the largest plausible equivalence-cluster size, or recall is
  /// capped (a cluster of k duplicates needs up to k-1 emissions from one
  /// profile). Use SIZE_MAX to retain whole neighborhoods (then every
  /// graph edge is eventually emitted — the Same Eventual Quality
  /// configuration).
  std::size_t kmax = 100;
  /// Threads for the initialization phase (per-profile duplication
  /// likelihoods + top comparisons). Emission stays sequential. The
  /// emitted sequence is identical at every thread count.
  std::size_t num_threads = 1;
  /// Telemetry sink for the initialization phase timers
  /// ("edge_weighting", "profile_scheduling").
  obs::TelemetryScope telemetry;
};

/// The PPS emitter.
class PpsEmitter : public ProgressiveEmitter, public BatchSource {
 public:
  /// Initialization phase (Algorithm 5): builds the Profile Index over
  /// `blocks`, computes per-profile duplication likelihoods, the Sorted
  /// Profile List and the top-weighted comparison of every node. Takes the
  /// collection by value (move it in to avoid the copy).
  PpsEmitter(const ProfileStore& store, BlockCollection blocks,
             const PpsOptions& options = {});

  /// Emission phase (Algorithm 6): pops from the Comparison List; when it
  /// empties, processes the next profile of the Sorted Profile List,
  /// gathering its Kmax best comparisons among not-yet-checked neighbors.
  std::optional<Comparison> Next() override;

  /// Batch boundary for the emission pipeline: the initial top-comparison
  /// list first, then one batch per Sorted Profile List entry (empty
  /// refills skipped). See BatchSource for the single-caller contract.
  bool ProduceBatch(ComparisonList& out) override;

  std::string_view name() const override { return "PPS"; }

  /// The Sorted Profile List as (profile, duplication likelihood) pairs in
  /// processing order (diagnostics / tests).
  const std::vector<std::pair<ProfileId, double>>& sorted_profiles() const {
    return sorted_profiles_;
  }

 private:
  /// Gathers the Kmax top-weighted comparisons of profile `i` among
  /// unchecked neighbors into `out`.
  void ProcessProfile(ProfileId i, ComparisonList& out);

  const ProfileStore& store_;
  BlockCollection blocks_;
  ProfileIndex index_;
  EdgeWeighter weighter_;
  PpsOptions options_;

  std::vector<std::pair<ProfileId, double>> sorted_profiles_;
  std::size_t cursor_ = 0;  // next Sorted Profile List entry
  std::vector<bool> checked_;  // checkedEntities of Algorithm 6
  ComparisonList initial_;  // batch 0: every node's top comparison
  bool initial_pending_ = true;
  ComparisonList comparisons_;  // serial-path buffer (Next())

  // Sparse neighborhood accumulator (weights[] of Algorithms 5-6) and the
  // reusable SortedStack replacement — refill scratch, allocation-free
  // once warm.
  std::vector<double> weights_;
  std::vector<ProfileId> touched_;
  TopKBuffer topk_;
};

}  // namespace sper

#endif  // SPER_PROGRESSIVE_PPS_H_
