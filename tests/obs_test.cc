// Observability primitives (src/obs): bucket geometry and exact-rank
// quantiles of the fixed-bucket histogram, histogram merge, concurrent
// counter increments, snapshot-while-recording safety, and the registry /
// TelemetryScope / ScopedPhase seam (naming, span log, JSON export).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/telemetry.h"

namespace sper {
namespace obs {
namespace {

TEST(HistogramBucketsTest, SmallValuesGetExactBuckets) {
  // Values 0..15 are one bucket each, recovered exactly.
  for (std::uint64_t v = 0; v < Histogram::kLinearBuckets; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketLowerBound(v), v);
  }
}

TEST(HistogramBucketsTest, LowerBoundIndexRoundTrip) {
  // Every bucket's lower bound must land back in that bucket, and bucket
  // lower bounds must be strictly increasing (no empty/overlapping
  // buckets anywhere in the layout).
  for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(b)), b)
        << "bucket " << b;
    if (b > 0) {
      EXPECT_GT(Histogram::BucketLowerBound(b),
                Histogram::BucketLowerBound(b - 1));
    }
  }
}

TEST(HistogramBucketsTest, ValueNeverBelowItsBucketLowerBound) {
  // Probe a spread of values including bucket edges: the containing
  // bucket's lower bound is <= the value (quantiles never over-report).
  for (std::uint64_t v :
       {std::uint64_t{16}, std::uint64_t{17}, std::uint64_t{31},
        std::uint64_t{32}, std::uint64_t{100}, std::uint64_t{1000},
        std::uint64_t{123456789}, std::uint64_t{1} << 40,
        (std::uint64_t{1} << 40) + 12345, ~std::uint64_t{0}}) {
    const std::size_t b = Histogram::BucketIndex(v);
    ASSERT_LT(b, Histogram::kNumBuckets) << "value " << v;
    EXPECT_LE(Histogram::BucketLowerBound(b), v);
    if (b + 1 < Histogram::kNumBuckets) {
      EXPECT_LT(v, Histogram::BucketLowerBound(b + 1));
    }
  }
}

TEST(HistogramTest, ExactQuantilesOnExactlyRepresentableValues) {
  // 1..10 once each: every value < 16 is its own bucket, so exact-rank
  // quantiles recover the exact order statistics.
  Histogram h;
  for (std::uint64_t v = 1; v <= 10; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.Quantile(0.0), 1u);   // rank clamps to 1 -> smallest sample
  EXPECT_EQ(h.Quantile(0.5), 5u);   // ceil(0.5 * 10) = 5th smallest
  EXPECT_EQ(h.Quantile(0.9), 9u);
  EXPECT_EQ(h.Quantile(0.99), 10u); // ceil(9.9) = 10th
  EXPECT_EQ(h.Quantile(1.0), 10u);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 10u);
  EXPECT_EQ(s.sum, 55u);
  EXPECT_EQ(s.max, 10u);
  EXPECT_EQ(s.p50, 5u);
  EXPECT_EQ(s.p90, 9u);
  EXPECT_EQ(s.p99, 10u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.5);
}

TEST(HistogramTest, SkewedDistributionQuantiles) {
  // 99 fast samples at 2 and one slow sample at 1024 (a power of two, so
  // its bucket lower bound is itself): p50/p90 see the fast mode, p99
  // lands exactly on the outlier (rank ceil(0.99 * 100) = 99 is still a
  // 2; rank 100 is the outlier -> use q = 1.0), max is exact.
  Histogram h;
  for (int i = 0; i < 99; ++i) h.Record(2);
  h.Record(1024);
  EXPECT_EQ(h.Quantile(0.5), 2u);
  EXPECT_EQ(h.Quantile(0.9), 2u);
  EXPECT_EQ(h.Quantile(0.99), 2u);
  EXPECT_EQ(h.Quantile(1.0), 1024u);
  EXPECT_EQ(h.Snapshot().max, 1024u);
}

TEST(HistogramTest, QuantileLowerBoundsWideValues) {
  // Values >= 16 report their bucket's lower bound: never above the
  // sample, and within 25% relative width below it.
  Histogram h;
  const std::uint64_t v = 1000;
  h.Record(v);
  const std::uint64_t q = h.Quantile(0.5);
  EXPECT_LE(q, v);
  EXPECT_GE(q, v - v / 4);
}

TEST(HistogramTest, EmptyHistogramIsAllZeros) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, MergeAddsCountsSumsAndMax) {
  Histogram a;
  Histogram b;
  for (std::uint64_t v = 1; v <= 5; ++v) a.Record(v);
  for (std::uint64_t v = 6; v <= 10; ++v) b.Record(v);
  a.Merge(b);
  EXPECT_EQ(a.count(), 10u);
  const HistogramSnapshot s = a.Snapshot();
  EXPECT_EQ(s.sum, 55u);
  EXPECT_EQ(s.max, 10u);
  EXPECT_EQ(s.p50, 5u);  // merged order statistics, not per-source
  EXPECT_EQ(s.p99, 10u);
  // b is unchanged by being merged from.
  EXPECT_EQ(b.count(), 5u);
}

TEST(CounterTest, ConcurrentIncrementsFromManyThreadsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(CounterTest, AddWithArgumentAccumulates) {
  Counter counter;
  counter.Add(3);
  counter.Add(4);
  EXPECT_EQ(counter.value(), 7u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  gauge.Set(1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
  gauge.Add(0.25);
  gauge.Add(0.25);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.0);
}

TEST(SnapshotWhileRecordingTest, ReadersSeeMonotonicConsistentCounts) {
  // Writers hammer a histogram and a counter while the main thread
  // snapshots continuously: no torn reads (count/sum must stay
  // monotonically non-decreasing, quantiles within the recorded range).
  Histogram h;
  Counter c;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      std::uint64_t v = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        h.Record(v % 1000);
        c.Add();
        ++v;
      }
    });
  }
  std::uint64_t last_count = 0;
  std::uint64_t last_counter = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    const HistogramSnapshot s = h.Snapshot();
    EXPECT_GE(s.count, last_count);
    EXPECT_LE(s.p50, s.max);
    EXPECT_LT(s.max, 1000u);
    last_count = s.count;
    const std::uint64_t now = c.value();
    EXPECT_GE(now, last_counter);
    last_counter = now;
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
  // Quiesced: totals agree across both metrics' independent tallies.
  EXPECT_EQ(h.count(), c.value());
}

TEST(RegistryTest, GetOrCreateReturnsStablePointers) {
  Registry registry;
  Counter* c1 = registry.counter("a");
  Counter* c2 = registry.counter("a");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(registry.counter("b"), c1);
  Histogram* h1 = registry.histogram("a");  // separate namespace per kind
  EXPECT_EQ(registry.histogram("a"), h1);
  EXPECT_EQ(registry.FindCounter("a"), c1);
  EXPECT_EQ(registry.FindCounter("missing"), nullptr);
  EXPECT_EQ(registry.FindGauge("a"), nullptr);
}

TEST(RegistryTest, SnapshotJsonHasStableSchemaAndValues) {
  Registry registry;
  registry.counter("emitted")->Add(42);
  registry.gauge("phase.init_seconds")->Set(1.5);
  registry.histogram("latency")->Record(7);
  const std::string json = registry.SnapshotJson();
  EXPECT_NE(json.find("\"schema\": \"sper.metrics.v1\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"emitted\": 42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"phase.init_seconds\": 1.5"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"latency\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dropped_spans\": 0"), std::string::npos) << json;
}

TEST(RegistryTest, RecordSpanAssignsDenseThreadIndices) {
  Registry registry;
  const Stopwatch::TimePoint t0 = registry.epoch();
  registry.RecordSpan("main", t0, Stopwatch::Now());
  std::thread([&] {
    registry.RecordSpan("worker", Stopwatch::Now(), Stopwatch::Now());
  }).join();
  registry.RecordSpan("main2", t0, Stopwatch::Now());
  EXPECT_EQ(registry.num_spans(), 3u);
  EXPECT_EQ(registry.dropped_spans(), 0u);
}

TEST(TelemetryScopeTest, DefaultScopeIsDisabledAndNull) {
  const TelemetryScope scope;
  EXPECT_FALSE(scope.enabled());
  EXPECT_EQ(scope.counter("x"), nullptr);
  EXPECT_EQ(scope.gauge("x"), nullptr);
  EXPECT_EQ(scope.histogram("x"), nullptr);
  // Sub of a disabled scope stays disabled.
  EXPECT_FALSE(scope.Sub("shard0").enabled());
}

#ifndef SPER_NO_TELEMETRY

TEST(TelemetryScopeTest, SubPrefixesMetricNames) {
  Registry registry;
  const TelemetryScope root(&registry);
  EXPECT_TRUE(root.enabled());
  const TelemetryScope shard = root.Sub("shard3");
  shard.counter("pipeline.batches")->Add(5);
  EXPECT_NE(registry.FindCounter("shard3.pipeline.batches"), nullptr);
  EXPECT_EQ(registry.FindCounter("shard3.pipeline.batches")->value(), 5u);
  // Nested Sub composes prefixes left to right.
  root.Sub("a").Sub("b").gauge("g")->Set(1.0);
  EXPECT_NE(registry.FindGauge("a.b.g"), nullptr);
}

TEST(ScopedPhaseTest, RecordsGaugeSpanAndOutSeconds) {
  Registry registry;
  const TelemetryScope scope(&registry);
  double seconds = -1.0;
  {
    ScopedPhase phase(scope, "token_blocking", &seconds);
  }
  EXPECT_GE(seconds, 0.0);
  const Gauge* gauge = registry.FindGauge("phase.token_blocking_seconds");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->value(), seconds);
  EXPECT_EQ(registry.num_spans(), 1u);
}

TEST(ScopedPhaseTest, StopIsIdempotent) {
  Registry registry;
  const TelemetryScope scope(&registry);
  double seconds = -1.0;
  ScopedPhase phase(scope, "p", &seconds);
  phase.Stop();
  const double first = seconds;
  phase.Stop();  // second Stop and the destructor must both be no-ops
  EXPECT_DOUBLE_EQ(seconds, first);
  EXPECT_EQ(registry.num_spans(), 1u);
  EXPECT_DOUBLE_EQ(registry.FindGauge("phase.p_seconds")->value(), first);
}

#endif  // SPER_NO_TELEMETRY

TEST(ScopedPhaseTest, DisabledScopeStillFillsOutSeconds) {
  // InitStats phase breakdowns rely on the timing even when no registry
  // is attached (and under SPER_NO_TELEMETRY, where this is the only
  // behavior left).
  const TelemetryScope scope;
  double seconds = -1.0;
  {
    ScopedPhase phase(scope, "p", &seconds);
  }
  EXPECT_GE(seconds, 0.0);
}

TEST(StopwatchTest, ElapsedIsNonNegativeAndNanosClamp) {
  const Stopwatch watch;
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
  const Stopwatch::TimePoint a = Stopwatch::Now();
  const Stopwatch::TimePoint b = Stopwatch::Now();
  EXPECT_EQ(Stopwatch::Nanos(b, a), 0u);  // reversed interval clamps to 0
  EXPECT_GE(Stopwatch::Nanos(a, b), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace sper
