#ifndef SPER_PROGRESSIVE_PBS_H_
#define SPER_PROGRESSIVE_PBS_H_

#include "blocking/block_collection.h"
#include "blocking/profile_index.h"
#include "core/profile_store.h"
#include "metablocking/edge_weighting.h"
#include "obs/telemetry.h"
#include "progressive/comparison_list.h"
#include "progressive/emitter.h"

/// \file pbs.h
/// Progressive Block Scheduling (PBS, paper Sec. 5.2.1, Algorithms 3-4).
///
/// Equality-based: works on the redundancy-positive blocks of any
/// schema-agnostic blocking workflow. Blocks are scheduled by increasing
/// cardinality (weight 1/||b||: small blocks carry distinctive keys);
/// inside every block, repeated comparisons are discarded with the Least
/// Common Block Index (LeCoBI) test and the survivors are ordered by their
/// blocking-graph edge weight.

namespace sper {

/// Options of PBS.
struct PbsOptions {
  /// Blocking-graph scheme used to order comparisons inside a block.
  WeightingScheme scheme = WeightingScheme::kArcs;
  /// Threads for the initialization phase (the kEjs degree pass; the rest
  /// of PBS initialization is already lazy). Emission stays sequential.
  std::size_t num_threads = 1;
  /// Telemetry sink for the initialization phase timers
  /// ("block_scheduling", "edge_weighting").
  obs::TelemetryScope telemetry;
};

/// The PBS emitter.
class PbsEmitter : public ProgressiveEmitter, public BatchSource {
 public:
  /// Initialization phase (Algorithm 3): schedules `blocks` by increasing
  /// cardinality, builds the Profile Index over the scheduled collection
  /// and processes the first block. `blocks` should come from a
  /// redundancy-positive workflow, e.g. BuildTokenWorkflowBlocks().
  PbsEmitter(const ProfileStore& store, const BlockCollection& blocks,
             const PbsOptions& options = {});

  /// Emission phase (Algorithm 4): pops the next best comparison of the
  /// current block; when the block's list empties, processes the next
  /// scheduled block. nullopt once every block has been processed.
  std::optional<Comparison> Next() override;

  /// Batch boundary for the emission pipeline: one batch per scheduled
  /// block, in schedule order (blocks whose comparisons were all
  /// LeCoBI-filtered are skipped). See BatchSource for the single-caller
  /// contract.
  bool ProduceBatch(ComparisonList& out) override;

  std::string_view name() const override { return "PBS"; }

  /// The scheduled block collection (diagnostics / tests).
  const BlockCollection& scheduled_blocks() const { return scheduled_; }

 private:
  /// Algorithm 3 lines 4-12 for block `id`: LeCoBI-filter and weight its
  /// comparisons into `out`.
  void ProcessBlock(BlockId id, ComparisonList& out);

  const ProfileStore& store_;
  BlockCollection scheduled_;
  ProfileIndex index_;
  EdgeWeighter weighter_;
  BlockId next_block_ = 0;
  ComparisonList comparisons_;
};

}  // namespace sper

#endif  // SPER_PROGRESSIVE_PBS_H_
