// Table 2: dataset characteristics — regenerated from the synthetic
// counterparts. Columns mirror the paper: ER type, |P|, number of
// attribute names, |D_P| and the mean number of name-value pairs per
// profile. The paper-reported values are printed alongside for the
// paper-vs-measured comparison recorded in EXPERIMENTS.md.
//
//   $ ./bench_table2_datasets [--scale=S]

#include <string>
#include <unordered_set>

#include "bench_util.h"

namespace {

std::size_t CountAttributeNames(const sper::ProfileStore& store) {
  std::unordered_set<std::string> names;
  for (const sper::Profile& p : store.profiles()) {
    for (const sper::Attribute& a : p.attributes()) names.insert(a.name);
  }
  return names.size();
}

struct PaperRow {
  const char* er_type;
  const char* profiles;
  const char* attributes;
  const char* matches;
  const char* mean_nv;
};

PaperRow PaperValues(const std::string& name) {
  if (name == "census") return {"dirty", "841", "5", "344", "4.65"};
  if (name == "restaurant") return {"dirty", "864", "5", "112", "5.00"};
  if (name == "cora") return {"dirty", "1.3k", "12", "17k", "5.53"};
  if (name == "cddb") return {"dirty", "9.8k", "106", "300", "18.75"};
  if (name == "movies") {
    return {"clean-clean", "28k-23k", "4-7", "23k", "7.11"};
  }
  if (name == "dbpedia") {
    return {"clean-clean", "1.2M-2.2M (here /18)", "30k-50k", "893k (/18)",
            "15.47"};
  }
  return {"clean-clean", "4.2M-3.7M (here /50)", "37k-11k", "1.5M (/50)",
          "24.54"};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sper;
  using namespace sper::bench;
  const BenchArgs args = ParseArgs(argc, argv);

  std::printf("Table 2: dataset characteristics (synthetic counterparts)\n"
              "paper values in parentheses; dbpedia/freebase at the reduced "
              "scale of DESIGN.md\n\n");

  TextTable table({"dataset", "ER type", "|P|", "#attr", "|D_P|", "|p̄|"});
  for (const std::string& name : StructuredDatasetNames()) {
    DatagenOptions gen;
    gen.scale = args.scale;
    Result<DatasetBundle> dataset = GenerateDataset(name, gen);
    if (!dataset.ok()) return 1;
    const DatasetBundle& ds = dataset.value();
    const PaperRow paper = PaperValues(name);
    table.AddRow(
        {name, ToString(ds.store.er_type()),
         FormatCount(ds.store.size()) + " (" + paper.profiles + ")",
         FormatCount(CountAttributeNames(ds.store)) + " (" +
             paper.attributes + ")",
         FormatCount(ds.truth.num_matches()) + " (" + paper.matches + ")",
         FormatDouble(ds.store.MeanProfileSize(), 2) + " (" + paper.mean_nv +
             ")"});
  }
  for (const std::string& name : HeterogeneousDatasetNames()) {
    DatagenOptions gen;
    gen.scale = args.scale;
    Result<DatasetBundle> dataset = GenerateDataset(name, gen);
    if (!dataset.ok()) return 1;
    const DatasetBundle& ds = dataset.value();
    const PaperRow paper = PaperValues(name);
    table.AddRow(
        {name, ToString(ds.store.er_type()),
         FormatCount(ds.store.source1_size()) + "-" +
             FormatCount(ds.store.source2_size()) + " (" + paper.profiles +
             ")",
         FormatCount(CountAttributeNames(ds.store)) + " (" +
             paper.attributes + ")",
         FormatCount(ds.truth.num_matches()) + " (" + paper.matches + ")",
         FormatDouble(ds.store.MeanProfileSize(), 2) + " (" + paper.mean_nv +
             ")"});
  }
  table.Print();
  return 0;
}
