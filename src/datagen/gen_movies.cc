#include <string>
#include <utility>
#include <vector>

#include "datagen/corruption.h"
#include "datagen/datagen.h"
#include "datagen/dictionaries.h"
#include "datagen/generator_util.h"
#include "datagen/rng.h"

/// Synthetic `movies` (Table 2: Clean-Clean ER, 28k x 23k profiles, 4 / 7
/// attributes, 23k matches, 7.11 name-value pairs).
///
/// Models the IMDB-DBpedia film linkage: the same film described by two
/// differently-shaped schemas. Multi-valued `starring` attributes (one
/// name-value pair per actor, RDF style) push the mean profile size above
/// the attribute count, as in the real dataset. Matches share most title
/// and cast tokens — the regime where PPS leads (Fig. 11a).

namespace sper {

namespace {

struct Movie {
  std::vector<std::string> title_words;
  std::string year;
  std::string director;
  std::vector<std::string> actors;
  std::string producer;
  std::string writer;
  std::string runtime;
};

struct MoviePools {
  std::vector<std::string> title_words;
  std::vector<std::string> people_last;
};

Movie MakeMovie(Rng& rng, const MoviePools& pools) {
  Movie movie;
  // Title vocabulary is Zipf-skewed like real film titles: stop-word-ish
  // tokens ("the", "night") recur in thousands of titles while most words
  // are rare. The long equal-key runs of the common words are what keeps
  // the similarity-based methods below PPS on this dataset (Fig. 11a).
  const std::size_t title_len = rng.UniformInt(1, 4);
  for (std::size_t w = 0; w < title_len; ++w) {
    movie.title_words.push_back(
        pools.title_words[ZipfRank(rng, pools.title_words.size(), 4.0)]);
  }
  movie.year = std::to_string(rng.UniformInt(1950, 2018));
  auto person = [&]() {
    return rng.Pick(FirstNames()) + " " + rng.Pick(pools.people_last);
  };
  movie.director = person();
  const std::size_t cast = rng.UniformInt(2, 4);
  for (std::size_t a = 0; a < cast; ++a) movie.actors.push_back(person());
  movie.producer = person();
  movie.writer = person();
  movie.runtime = std::to_string(rng.UniformInt(70, 200));
  return movie;
}

std::string JoinTitle(const std::vector<std::string>& words) {
  std::string title;
  for (const std::string& w : words) {
    if (!title.empty()) title += " ";
    title += w;
  }
  return title;
}

/// IMDB-side record: 4 attributes (title, starring*, director, year).
Profile MakeImdbProfile(Rng& rng, const Movie& movie) {
  Profile p;
  p.AddAttribute("title", JoinTitle(movie.title_words));
  for (const std::string& actor : movie.actors) {
    p.AddAttribute("starring", actor);
  }
  p.AddAttribute("director", movie.director);
  p.AddAttribute("year", movie.year);
  (void)rng;
  return p;
}

/// DBpedia-side record: 7 attributes with RDF-ish names; the description
/// of the *same* film differs by light token noise and cast coverage.
Profile MakeDbpediaProfile(Rng& rng, const Movie& movie) {
  // Real IMDB-vs-DBpedia descriptions of one film differ substantially:
  // localized/disambiguated titles, partial cast coverage, off-by-one
  // release years. The cross-source noise is token-level, which is what
  // separates the equality principle (robust) from the similarity
  // principle (sensitive) on this dataset.
  std::string title = JoinTitle(movie.title_words);
  if (rng.Bernoulli(0.35)) {
    title = TokenNoise(rng, title, {.drop_rate = 0.4, .swap_rate = 0.2,
                                    .abbreviate_rate = 0.0});
    title = MaybeTypo(rng, title, 0.3);
  }
  Profile p;
  p.AddAttribute("dbp_name", title);
  for (const std::string& actor : movie.actors) {
    if (rng.Bernoulli(0.65)) p.AddAttribute("dbp_starring", actor);
  }
  p.AddAttribute("dbp_director", movie.director);
  p.AddAttribute("dbp_producer", movie.producer);
  p.AddAttribute("dbp_writer", movie.writer);
  p.AddAttribute("dbp_runtime", movie.runtime);
  p.AddAttribute("dbp_year",
                 rng.Bernoulli(0.15)
                     ? std::to_string(std::stoul(movie.year) + 1)
                     : movie.year);
  return p;
}

}  // namespace

DatasetBundle GenerateMovies(const DatagenOptions& options) {
  Rng rng(options.seed * 1000003 + 5);

  MoviePools pools;
  pools.title_words = SyllablePool(rng, 3500);
  for (const std::string& w : CommonWords()) {
    pools.title_words.push_back(w);
  }
  pools.people_last = SyllablePool(rng, 2500);

  // Paper counts: 22,863 matched films; 4,752 IMDB-only; 319 DBpedia-only.
  const std::size_t matched_n = ScaleCount(22863, options.scale);
  const std::size_t s1_only_n = ScaleCount(4752, options.scale);
  const std::size_t s2_only_n = ScaleCount(319, options.scale);

  std::vector<std::pair<Profile, Profile>> matched;
  matched.reserve(matched_n);
  for (std::size_t m = 0; m < matched_n; ++m) {
    const Movie movie = MakeMovie(rng, pools);
    matched.emplace_back(MakeImdbProfile(rng, movie),
                         MakeDbpediaProfile(rng, movie));
  }
  std::vector<Profile> s1_only;
  s1_only.reserve(s1_only_n);
  for (std::size_t m = 0; m < s1_only_n; ++m) {
    s1_only.push_back(MakeImdbProfile(rng, MakeMovie(rng, pools)));
  }
  std::vector<Profile> s2_only;
  s2_only.reserve(s2_only_n);
  for (std::size_t m = 0; m < s2_only_n; ++m) {
    s2_only.push_back(MakeDbpediaProfile(rng, MakeMovie(rng, pools)));
  }

  CleanCleanAssembly assembly = AssembleCleanClean(
      rng, std::move(matched), std::move(s1_only), std::move(s2_only));
  return DatasetBundle{
      "movies",
      std::move(assembly.store),
      std::move(assembly.truth),
      nullptr,  // schema-based PSN inapplicable (no aligned schema)
      "synthetic IMDB-DBpedia film linkage; 4- vs 7-attribute schemas, "
      "multi-valued cast, light cross-source noise"};
}

}  // namespace sper
