// Robustness of the serving stack (src/engine/resolver.h,
// src/parallel/cancel.h, src/obs/fault_injection.h). The contract under
// test:
//
// - CancelToken: null tokens never fire, sources fire every derived
//   token, deadlines latch on first observation, WithDeadline chains to
//   the parent (either firing cancels the child);
// - cancellation and deadlines are *advisory*: a cut request returns its
//   partial slice with the flag set and nothing torn down — the next
//   ticket continues the stream bit-identically, at every (method,
//   shards, lookahead) combination;
// - Drain() stops admitting, lets in-flight tickets finish, and is safe
//   to race with concurrent Serve(): every request is either fully
//   served or cleanly rejected with FailedPrecondition, and the served
//   slices in ticket order form an exact prefix of the un-batched drain;
// - the QoS admission controller (src/serving/qos.h) composes with all
//   of the above: shed-then-retry clients still reassemble the exact
//   stream at every (method, shards, lookahead) combination, batch
//   requests wait a bounded number of dispatches under sustained
//   interactive load (smooth WRR), doomed requests are evicted without
//   consuming stream capacity while barely-feasible ones are served, and
//   Drain() racing a full shed queue rejects every parked request
//   cleanly instead of deadlocking;
// - ThreadPool surfaces the first task exception from Wait() and counts
//   the rest in dropped_exceptions() instead of discarding them;
// - with SPER_FAULT_INJECT compiled in (skipped otherwise): an injected
//   refill failure poisons the engine with shard and batch context, later
//   requests get FailedPrecondition; an injected stall plus a deadline
//   cuts slices short, and disarming then draining the rest still
//   reassembles the exact reference stream.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "datagen/datagen.h"
#include "engine/resolver.h"
#include "obs/clock.h"
#include "obs/fault_injection.h"
#include "obs/registry.h"
#include "obs/telemetry.h"
#include "parallel/cancel.h"
#include "parallel/thread_pool.h"
#include "serving/qos.h"

namespace sper {
namespace {

ProfileStore DirtyStore() {
  Result<DatasetBundle> ds = GenerateDataset("restaurant", {});
  EXPECT_TRUE(ds.ok());
  return std::move(ds.value().store);
}

std::vector<Comparison> Drain(ProgressiveEmitter* emitter,
                              std::size_t limit) {
  std::vector<Comparison> out;
  while (out.size() < limit) {
    std::optional<Comparison> c = emitter->Next();
    if (!c.has_value()) break;
    out.push_back(*c);
  }
  return out;
}

void ExpectSameSequence(const std::vector<Comparison>& a,
                        const std::vector<Comparison>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].i, b[k].i) << "position " << k;
    EXPECT_EQ(a[k].j, b[k].j) << "position " << k;
    EXPECT_EQ(a[k].weight, b[k].weight) << "position " << k;
  }
}

std::unique_ptr<Resolver> MustCreate(const ProfileStore& store,
                                     const ResolverOptions& options) {
  Result<std::unique_ptr<Resolver>> resolver =
      Resolver::Create(store, options);
  EXPECT_TRUE(resolver.ok()) << resolver.status().ToString();
  return std::move(resolver).value();
}

/// The (method, shards, lookahead) matrix every continuation guarantee is
/// checked against — the same coverage the determinism suite uses.
struct ServingConfig {
  MethodId method;
  std::size_t num_shards;
  std::size_t lookahead;
};

std::vector<ServingConfig> ServingMatrix() {
  std::vector<ServingConfig> matrix;
  for (MethodId method : {MethodId::kPps, MethodId::kPbs}) {
    for (std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      for (std::size_t lookahead : {std::size_t{0}, std::size_t{4}}) {
        matrix.push_back({method, shards, lookahead});
      }
    }
  }
  return matrix;
}

std::string TraceOf(const ServingConfig& config) {
  return std::string(ToString(config.method)) +
         " shards=" + std::to_string(config.num_shards) +
         " lookahead=" + std::to_string(config.lookahead);
}

// ---------------------------------------------------------- cancel tokens

TEST(CancelTokenTest, NullTokenNeverFires) {
  CancelToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
}

TEST(CancelTokenTest, SourceFiresEveryToken) {
  CancelSource source;
  const CancelToken token = source.token();
  EXPECT_TRUE(token.valid());
  EXPECT_FALSE(token.cancelled());
  source.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kCancelled);
  // Idempotent: the first reason sticks.
  source.Cancel();
  EXPECT_EQ(token.reason(), CancelReason::kCancelled);
}

TEST(CancelTokenTest, DeadlineLatchesOnFirstObservation) {
  const CancelToken expired =
      CancelToken().WithDeadline(std::chrono::nanoseconds(0));
  EXPECT_TRUE(expired.valid());
  EXPECT_TRUE(expired.has_deadline());
  EXPECT_TRUE(expired.cancelled());
  EXPECT_EQ(expired.reason(), CancelReason::kDeadline);

  const CancelToken live =
      CancelToken().WithDeadline(std::chrono::hours(24));
  EXPECT_FALSE(live.cancelled());
  EXPECT_EQ(live.reason(), CancelReason::kNone);
}

TEST(CancelTokenTest, WithDeadlineChainsToParent) {
  CancelSource source;
  const CancelToken child =
      source.token().WithDeadline(std::chrono::hours(24));
  EXPECT_FALSE(child.cancelled());
  // The parent firing cancels the child with the parent's reason.
  source.Cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_EQ(child.reason(), CancelReason::kCancelled);
  // The parent itself has no deadline; only the child does.
  EXPECT_FALSE(source.token().has_deadline());
  EXPECT_TRUE(child.has_deadline());
}

TEST(CancelTokenTest, DeadlineIsTheEarliestAlongTheChain) {
  const CancelToken outer =
      CancelToken().WithDeadline(std::chrono::hours(24));
  const CancelToken inner = outer.WithDeadline(std::chrono::hours(48));
  // The child's own (later) deadline never extends the parent's.
  EXPECT_EQ(inner.deadline(), outer.deadline());
}

// --------------------------------------- lossless continuation after cuts

TEST(ResolverCancelTest, CutRequestsContinueBitIdentically) {
  const ProfileStore store = DirtyStore();
  constexpr std::uint64_t kBudget = 1200;

  for (const ServingConfig& config : ServingMatrix()) {
    SCOPED_TRACE(TraceOf(config));
    ResolverOptions options;
    options.method = config.method;
    options.num_shards = config.num_shards;
    options.lookahead = config.lookahead;
    options.budget = kBudget;

    const std::vector<Comparison> reference =
        Drain(MustCreate(store, options).get(), 1000000);
    ASSERT_FALSE(reference.empty());

    std::unique_ptr<Resolver> resolver = MustCreate(store, options);
    ResolverSession session = resolver->OpenSession();
    std::vector<Comparison> concatenated;
    const auto append = [&](const ResolveResult& slice) {
      concatenated.insert(concatenated.end(), slice.comparisons.begin(),
                          slice.comparisons.end());
    };

    // A normal slice first, so the cuts land mid-stream.
    ResolveResult normal = session.Resolve({100, 0});
    EXPECT_EQ(normal.comparisons.size(), 100u);
    EXPECT_TRUE(normal.status.ok());
    append(normal);

    // An explicitly pre-cancelled request: admitted, cut before drawing,
    // stream untouched.
    CancelSource source;
    source.Cancel();
    ResolveRequest cancelled_request;
    cancelled_request.budget = 1000;
    cancelled_request.cancel = source.token();
    ResolveResult cancelled = session.Resolve(cancelled_request);
    EXPECT_TRUE(cancelled.cancelled());
    EXPECT_FALSE(cancelled.deadline_exceeded());
    EXPECT_TRUE(cancelled.status.ok()) << "a cut is not an error";
    EXPECT_TRUE(cancelled.comparisons.empty());
    append(cancelled);

    // A request whose deadline already passed at arrival: same guarantee,
    // reported as deadline_exceeded.
    ResolveRequest expired_request;
    expired_request.budget = 1000;
    expired_request.cancel =
        CancelToken().WithDeadline(std::chrono::nanoseconds(0));
    ResolveResult expired = session.Resolve(expired_request);
    EXPECT_TRUE(expired.deadline_exceeded());
    EXPECT_FALSE(expired.cancelled());
    EXPECT_TRUE(expired.status.ok());
    EXPECT_TRUE(expired.comparisons.empty());
    append(expired);

    // A generous deadline does not perturb a normal slice.
    ResolveRequest generous;
    generous.budget = 100;
    generous.deadline_ms = 600000;
    ResolveResult relaxed = session.Resolve(generous);
    EXPECT_EQ(relaxed.comparisons.size(), 100u);
    EXPECT_FALSE(relaxed.deadline_exceeded());
    append(relaxed);

    // Drain the remainder: the concatenation across normal, cut and
    // post-cut slices must be the exact reference stream.
    for (;;) {
      ResolveResult slice = session.Resolve({500, 0});
      append(slice);
      if (slice.comparisons.empty() || slice.budget_exhausted ||
          slice.stream_exhausted) {
        break;
      }
    }
    ExpectSameSequence(concatenated, reference);
  }
}

// ----------------------------------------------- drain vs in-flight serve

TEST(ResolverDrainTest, DrainRejectsAfterwardsAndIsIdempotent) {
  const ProfileStore store = DirtyStore();
  std::unique_ptr<Resolver> resolver = MustCreate(store, {});
  ResolverSession session = resolver->OpenSession();

  ResolveResult before = session.Resolve({10, 0});
  EXPECT_EQ(before.comparisons.size(), 10u);
  EXPECT_FALSE(resolver->draining());

  resolver->Drain();
  EXPECT_TRUE(resolver->draining());

  ResolveResult after = session.Resolve({10, 0});
  EXPECT_TRUE(after.comparisons.empty());
  EXPECT_EQ(after.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(after.status.message().find("draining"), std::string::npos);
  EXPECT_FALSE(resolver->Next().has_value());

  resolver->Drain();  // second drain: no-op, no deadlock
  EXPECT_TRUE(resolver->draining());
}

TEST(ResolverDrainTest, ConcurrentDrainVsServeNeverCorruptsTheStream) {
  const ProfileStore store = DirtyStore();
  constexpr std::uint64_t kBudget = 2000;
  constexpr std::size_t kClients = 4;

  for (const ServingConfig& config : ServingMatrix()) {
    SCOPED_TRACE(TraceOf(config));
    ResolverOptions options;
    options.method = config.method;
    options.num_shards = config.num_shards;
    options.lookahead = config.lookahead;
    options.budget = kBudget;

    const std::vector<Comparison> reference =
        Drain(MustCreate(store, options).get(), 1000000);
    ASSERT_FALSE(reference.empty());

    std::unique_ptr<Resolver> resolver = MustCreate(store, options);
    struct Slice {
      std::uint64_t ticket;
      ResolveResult result;
    };
    std::vector<std::vector<Slice>> per_client(kClients);
    std::atomic<std::uint64_t> served{0};
    std::atomic<std::size_t> finished{0};
    {
      std::vector<std::thread> clients;
      for (std::size_t t = 0; t < kClients; ++t) {
        clients.emplace_back([&, t] {
          ResolverSession session = resolver->OpenSession();
          for (;;) {
            ResolveResult result = session.Resolve({64, 0});
            const bool rejected = !result.status.ok();
            const bool dry = result.status.ok() &&
                             (result.stream_exhausted ||
                              result.budget_exhausted);
            served.fetch_add(result.comparisons.size(),
                             std::memory_order_relaxed);
            per_client[t].push_back({result.ticket, std::move(result)});
            if (rejected || dry) break;
          }
          finished.fetch_add(1, std::memory_order_relaxed);
        });
      }
      // Let the clients make some progress, then drain out from under
      // them mid-request. (Progress is observed through the test's own
      // atomics — the resolver's accounting getters are not meant for
      // concurrent polling.)
      while (served.load(std::memory_order_relaxed) < kBudget / 4 &&
             finished.load(std::memory_order_relaxed) < kClients) {
        std::this_thread::yield();
      }
      resolver->Drain();
      // Drain returned: the stream is down; every straggler request must
      // come back rejected without blocking.
      for (std::thread& client : clients) client.join();
    }

    // Every request either served normally or was rejected cleanly; the
    // served slices in ticket order are an exact prefix of the reference
    // stream — drain never tears a slice mid-draw.
    std::vector<Slice> ok;
    for (std::vector<Slice>& slices : per_client) {
      for (Slice& slice : slices) {
        if (slice.result.status.ok()) {
          ok.push_back(std::move(slice));
        } else {
          EXPECT_EQ(slice.result.status.code(),
                    StatusCode::kFailedPrecondition);
          EXPECT_TRUE(slice.result.comparisons.empty());
        }
      }
    }
    std::sort(ok.begin(), ok.end(), [](const Slice& a, const Slice& b) {
      return a.ticket < b.ticket;
    });
    std::vector<Comparison> concatenated;
    for (const Slice& slice : ok) {
      concatenated.insert(concatenated.end(),
                          slice.result.comparisons.begin(),
                          slice.result.comparisons.end());
    }
    ASSERT_LE(concatenated.size(), reference.size());
    ExpectSameSequence(
        concatenated,
        std::vector<Comparison>(reference.begin(),
                                reference.begin() + concatenated.size()));

    // And the resolver stays well-defined after the racy drain.
    EXPECT_TRUE(resolver->draining());
    EXPECT_FALSE(resolver->Next().has_value());
  }
}

TEST(ResolverDrainTest, ConcurrentDoubleDrainBothReturn) {
  const ProfileStore store = DirtyStore();
  std::unique_ptr<Resolver> resolver = MustCreate(store, {});
  std::thread first([&] { resolver->Drain(); });
  std::thread second([&] { resolver->Drain(); });
  first.join();
  second.join();
  EXPECT_TRUE(resolver->draining());
}

// PR 8 lock-discipline regression test, written to be TSan-visible: every
// mutex-guarded structure annotated in this PR (resolver admission state,
// registry metric maps and span log, pipeline done-flag, thread-pool
// queue) is exercised from multiple threads at once — concurrent Serve()
// clients, a concurrent Drain(), and a reader snapshotting the live
// Registry mid-serve. Under -fsanitize=thread any guarded field touched
// outside its mutex (what the annotations reject at compile time on
// Clang) surfaces as a data race here.
TEST(ResolverDrainTest, ConcurrentServeDrainAndSnapshotAreRaceFree) {
  const ProfileStore store = DirtyStore();
  obs::Registry registry;
  ResolverOptions options;
  options.method = MethodId::kPps;
  options.num_shards = 2;
  options.lookahead = 2;
  options.budget = 1500;
  options.telemetry = obs::TelemetryScope(&registry);
  std::unique_ptr<Resolver> resolver = MustCreate(store, options);

  std::atomic<std::uint64_t> served{0};
  std::atomic<bool> stop_snapshots{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&] {
      ResolverSession session = resolver->OpenSession();
      for (;;) {
        ResolveResult slice = session.Resolve({64, 0});
        served.fetch_add(slice.comparisons.size(),
                         std::memory_order_relaxed);
        if (!slice.status.ok() || slice.stream_exhausted ||
            slice.budget_exhausted) {
          break;
        }
      }
    });
  }
  std::thread snapshotter([&] {
    // Reads the registry's guarded maps while Serve() threads create
    // metrics and record spans into them.
    while (!stop_snapshots.load(std::memory_order_relaxed)) {
      EXPECT_FALSE(registry.SnapshotJson().empty());
      std::this_thread::yield();
    }
  });
  while (served.load(std::memory_order_relaxed) < 200) {
    std::this_thread::yield();
  }
  resolver->Drain();  // races against in-flight Serve() by design
  for (std::thread& worker : workers) worker.join();
  stop_snapshots.store(true, std::memory_order_relaxed);
  snapshotter.join();

  EXPECT_TRUE(resolver->draining());
  EXPECT_GT(registry.num_spans(), 0u);
  EXPECT_FALSE(registry.SnapshotJson().empty());
}

// ------------------------------------------------ QoS layer composition

/// Spins until `depth` requests are parked in the controller's lanes.
void AwaitQueueDepth(const serving::QosAdmissionController& controller,
                     std::size_t depth) {
  while (controller.queue_depth() < depth) std::this_thread::yield();
}

// A rate-limited client that backs off by exactly the controller's
// retry_after_ms hint and retries still reassembles the bit-identical
// stream at every (method, shards, lookahead) combination — sheds never
// consume stream capacity and never reorder it.
TEST(QosRobustnessTest, ShedThenRetryKeepsStreamBitIdentical) {
  const ProfileStore store = DirtyStore();
  for (const ServingConfig& config : ServingMatrix()) {
    SCOPED_TRACE(TraceOf(config));
    ResolverOptions options;
    options.method = config.method;
    options.num_shards = config.num_shards;
    options.lookahead = config.lookahead;
    options.budget = 600;
    const std::vector<Comparison> reference =
        Drain(MustCreate(store, options).get(), 1000000);
    ASSERT_FALSE(reference.empty());

    std::unique_ptr<Resolver> resolver = MustCreate(store, options);
    obs::ManualClock clock;
    serving::QosOptions qos;
    qos.clock = &clock;
    qos.client_rate = 5.0;  // one token per 200 ms
    qos.client_burst = 2.0;
    serving::QosAdmissionController controller(*resolver, qos);

    std::vector<Comparison> concatenated;
    std::uint64_t sheds = 0;
    bool done = false;
    while (!done) {
      ResolveRequest request;
      request.budget = 64;
      request.client_id = 42;
      ResolveResult slice = controller.Resolve(request);
      if (slice.outcome == ResolveOutcome::kShed) {
        ++sheds;
        ASSERT_GT(slice.retry_after_ms, 0u);
        clock.AdvanceMillis(slice.retry_after_ms);
        continue;
      }
      ASSERT_EQ(slice.outcome, ResolveOutcome::kServed);
      concatenated.insert(concatenated.end(), slice.comparisons.begin(),
                          slice.comparisons.end());
      done = slice.stream_exhausted || slice.budget_exhausted;
    }
    EXPECT_GT(sheds, 0u) << "the rate limit never bit";
    ExpectSameSequence(concatenated, reference);
    resolver->Drain();
  }
}

// The starvation bound: 16 interactive requests queued ahead do not
// starve 2 batch requests. Smooth WRR over weights {8,2} dispatches
// I I B I I | I I B ... — the batch lane is served at dispatches 2 and 7
// (resolver tickets prove it), not after all 16 interactive.
TEST(QosRobustnessTest, BatchWaitIsBoundedUnderSustainedInteractiveLoad) {
  const ProfileStore store = DirtyStore();
  std::unique_ptr<Resolver> resolver = MustCreate(store, {});
  obs::ManualClock clock;
  serving::QosOptions qos;
  qos.clock = &clock;  // default weights {8, 2, 1}
  serving::QosAdmissionController controller(*resolver, qos);

  controller.SetDispatchPaused(true);
  std::mutex mu;
  std::vector<std::uint64_t> batch_tickets;
  std::vector<std::thread> workers;
  for (int i = 0; i < 16; ++i) {
    workers.emplace_back([&] {
      ResolveRequest request;
      request.budget = 1;
      request.priority = Priority::kInteractive;
      ASSERT_EQ(controller.Resolve(request).outcome, ResolveOutcome::kServed);
    });
  }
  for (int i = 0; i < 2; ++i) {
    workers.emplace_back([&] {
      ResolveRequest request;
      request.budget = 1;
      request.priority = Priority::kBatch;
      ResolveResult result = controller.Resolve(request);
      ASSERT_EQ(result.outcome, ResolveOutcome::kServed);
      std::lock_guard<std::mutex> hold(mu);
      batch_tickets.push_back(result.ticket);
    });
  }
  AwaitQueueDepth(controller, 18);
  controller.SetDispatchPaused(false);
  for (std::thread& worker : workers) worker.join();

  ASSERT_EQ(batch_tickets.size(), 2u);
  std::sort(batch_tickets.begin(), batch_tickets.end());
  EXPECT_EQ(batch_tickets[0], 2u);
  EXPECT_EQ(batch_tickets[1], 7u);
}

// Doomed eviction composes with a sharded, pipelined engine: the evicted
// request spends no stream capacity, so the barely-feasible one that
// follows it still reads the exact head of the stream.
TEST(QosRobustnessTest, DoomedEvictionVsBarelyMakesDeadline) {
  const ProfileStore store = DirtyStore();
  ResolverOptions options;
  options.num_shards = 2;
  options.lookahead = 2;
  const std::vector<Comparison> reference =
      Drain(MustCreate(store, options).get(), 32);
  ASSERT_EQ(reference.size(), 32u);

  std::unique_ptr<Resolver> resolver = MustCreate(store, options);
  obs::ManualClock clock;
  serving::QosOptions qos;
  qos.clock = &clock;
  serving::QosAdmissionController controller(*resolver, qos);

  controller.SetDispatchPaused(true);
  ResolveResult doomed_result;
  std::thread doomed([&] {
    ResolveRequest request;
    request.budget = 32;
    request.deadline_ms = 50;  // cannot survive the 100 ms queue wait
    doomed_result = controller.Resolve(request);
  });
  AwaitQueueDepth(controller, 1);
  ResolveResult barely_result;
  std::thread barely([&] {
    ResolveRequest request;
    request.budget = 32;
    request.deadline_ms = 5000;  // survives it comfortably
    barely_result = controller.Resolve(request);
  });
  AwaitQueueDepth(controller, 2);
  clock.AdvanceMillis(100);
  controller.SetDispatchPaused(false);
  doomed.join();
  barely.join();

  EXPECT_EQ(doomed_result.outcome, ResolveOutcome::kEvicted);
  EXPECT_TRUE(doomed_result.deadline_exceeded());
  EXPECT_TRUE(doomed_result.comparisons.empty());
  ASSERT_EQ(barely_result.outcome, ResolveOutcome::kServed);
  EXPECT_EQ(barely_result.ticket, 0u)
      << "the eviction must not have taken a ticket";
  ExpectSameSequence(barely_result.comparisons, reference);
  resolver->Drain();
}

// Drain() while the controller holds a full queue of parked requests:
// the parked requests hold no resolver tickets, so the drain completes
// immediately; releasing the queue afterwards rejects every parked
// request cleanly (no deadlock, no half-served slice).
TEST(QosRobustnessTest, DrainRacingAFullShedQueueRejectsCleanly) {
  const ProfileStore store = DirtyStore();
  std::unique_ptr<Resolver> resolver = MustCreate(store, {});
  obs::ManualClock clock;
  serving::QosOptions qos;
  qos.clock = &clock;
  qos.max_queue_depth = 4;
  serving::QosAdmissionController controller(*resolver, qos);

  controller.SetDispatchPaused(true);
  std::mutex mu;
  std::vector<ResolveResult> parked_results;
  std::vector<std::thread> parked;
  for (int i = 0; i < 4; ++i) {
    parked.emplace_back([&] {
      ResolveRequest request;
      request.budget = 8;
      ResolveResult result = controller.Resolve(request);
      std::lock_guard<std::mutex> hold(mu);
      parked_results.push_back(result);
    });
  }
  AwaitQueueDepth(controller, 4);

  // The queue is at its bound: the next request sheds, not queues.
  ResolveRequest overflow;
  overflow.budget = 8;
  ResolveResult shed = controller.Resolve(overflow);
  EXPECT_EQ(shed.outcome, ResolveOutcome::kShed);
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);

  // Drain completes while all four requests are still parked: none of
  // them holds a ticket, so there is nothing to wait for.
  resolver->Drain();
  EXPECT_TRUE(resolver->draining());

  controller.SetDispatchPaused(false);
  for (std::thread& t : parked) t.join();

  ASSERT_EQ(parked_results.size(), 4u);
  for (const ResolveResult& result : parked_results) {
    EXPECT_EQ(result.outcome, ResolveOutcome::kRejected);
    EXPECT_EQ(result.status.code(), StatusCode::kFailedPrecondition);
    EXPECT_TRUE(result.comparisons.empty());
  }

  // Post-drain requests flow through the controller and reject too.
  ResolveRequest late;
  late.budget = 8;
  EXPECT_EQ(controller.Resolve(late).outcome, ResolveOutcome::kRejected);
}

// ------------------------------------------- thread-pool exception health

TEST(ThreadPoolTest, DroppedTaskExceptionsAreCountedNotSwallowed) {
  ThreadPool pool(1);
  for (int k = 0; k < 3; ++k) {
    pool.Submit([] { throw std::runtime_error("task failure"); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // One exception rode the rethrow slot; the other two are accounted for
  // instead of vanishing.
  EXPECT_EQ(pool.dropped_exceptions(), 2u);
}

// ------------------------------------------------- fault-injected seams
//
// These run only in SPER_FAULT_INJECT builds (ctest in build-fault, the
// CI fault job); in normal builds the seams compile out and the tests
// skip themselves.

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kFaultInjectionEnabled) {
      GTEST_SKIP() << "built without SPER_FAULT_INJECT";
    }
    obs::FaultRegistry::Global().Reset();
  }
  void TearDown() override { obs::FaultRegistry::Global().Reset(); }
};

TEST_F(FaultInjectionTest, RefillThrowPoisonsTheEngineWithContext) {
  const ProfileStore store = DirtyStore();
  for (std::size_t lookahead : {std::size_t{0}, std::size_t{4}}) {
    SCOPED_TRACE("lookahead=" + std::to_string(lookahead));
    obs::FaultRegistry::Global().Reset();

    // Shard 0's second refill throws; the other shards stay healthy.
    obs::FaultPlan plan;
    plan.action = obs::FaultPlan::Action::kThrow;
    plan.message = "injected refill failure";
    plan.start_after = 1;
    obs::FaultRegistry::Global().Arm("refill.shard0", plan);

    ResolverOptions options;
    options.num_shards = 4;
    options.lookahead = lookahead;
    std::unique_ptr<Resolver> resolver = MustCreate(store, options);
    ResolverSession session = resolver->OpenSession();

    // The failure is contained: some requests may still serve from
    // batches produced before the throw, then exactly one request
    // reports the Internal status with shard and batch context.
    ResolveResult failed;
    for (int k = 0; k < 64; ++k) {
      failed = session.Resolve({256, 0});
      if (!failed.status.ok() || failed.stream_exhausted) break;
    }
    ASSERT_FALSE(failed.status.ok()) << "fault never surfaced";
    EXPECT_EQ(failed.status.code(), StatusCode::kInternal);
    EXPECT_NE(failed.status.message().find("shard0"), std::string::npos)
        << failed.status.ToString();
    EXPECT_NE(failed.status.message().find("batch"), std::string::npos)
        << failed.status.ToString();
    EXPECT_NE(failed.status.message().find("injected refill failure"),
              std::string::npos)
        << failed.status.ToString();

    // Poisoning is sticky: later requests get the stable
    // FailedPrecondition answer, not UB and not a re-report.
    ResolveResult after = session.Resolve({256, 0});
    EXPECT_EQ(after.status.code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(after.status.message().find("poisoned"), std::string::npos);
    EXPECT_TRUE(after.comparisons.empty());
    EXPECT_FALSE(resolver->Next().has_value());

    // A poisoned resolver still drains cleanly (producers join).
    resolver->Drain();
  }
}

TEST_F(FaultInjectionTest, StalledRefillsPlusDeadlinesStillReassemble) {
  const ProfileStore store = DirtyStore();
  constexpr std::uint64_t kBudget = 400;
  for (std::size_t lookahead : {std::size_t{0}, std::size_t{4}}) {
    SCOPED_TRACE("lookahead=" + std::to_string(lookahead));
    obs::FaultRegistry::Global().Reset();

    ResolverOptions options;
    options.budget = kBudget;
    options.lookahead = lookahead;
    const std::vector<Comparison> reference =
        Drain(MustCreate(store, options).get(), 1000000);
    ASSERT_FALSE(reference.empty());

    // Every refill stalls well past the request deadline: requests keep
    // being cut short, each continuing losslessly.
    obs::FaultPlan stall;
    stall.action = obs::FaultPlan::Action::kStall;
    stall.stall_ms = 25;
    obs::FaultRegistry::Global().Arm("refill", stall);

    std::unique_ptr<Resolver> resolver = MustCreate(store, options);
    ResolverSession session = resolver->OpenSession();
    std::vector<Comparison> concatenated;
    std::uint64_t cuts = 0;
    bool done = false;
    for (int k = 0; k < 256 && !done; ++k) {
      ResolveRequest request;
      request.budget = kBudget;
      request.deadline_ms = 8;
      ResolveResult slice = session.Resolve(request);
      ASSERT_TRUE(slice.status.ok()) << slice.status.ToString();
      concatenated.insert(concatenated.end(), slice.comparisons.begin(),
                          slice.comparisons.end());
      cuts += slice.deadline_exceeded() ? 1 : 0;
      done = slice.stream_exhausted || slice.budget_exhausted;
      if (cuts >= 3 && !done) break;  // enough deadline pressure observed
    }
    EXPECT_GE(cuts, 1u) << "the stall never pushed a request past its "
                           "deadline";
    EXPECT_GT(obs::FaultRegistry::Global().fires("refill"), 0u);

    // Disarm and drain the rest without deadlines: the full
    // concatenation must be bit-identical to the fault-free reference.
    obs::FaultRegistry::Global().Disarm("refill");
    while (!done) {
      ResolveResult slice = session.Resolve({kBudget, 0});
      ASSERT_TRUE(slice.status.ok()) << slice.status.ToString();
      concatenated.insert(concatenated.end(), slice.comparisons.begin(),
                          slice.comparisons.end());
      done = slice.stream_exhausted || slice.budget_exhausted ||
             slice.comparisons.empty();
    }
    ExpectSameSequence(concatenated, reference);
  }
}

TEST_F(FaultInjectionTest, AllInstrumentedSeamsAreReachable) {
  const ProfileStore store = DirtyStore();
  // Zero-ms stalls: fire the seams without slowing the test down.
  obs::FaultPlan probe;
  probe.action = obs::FaultPlan::Action::kStall;
  probe.stall_ms = 0;
  for (const char* site :
       {"ring.acquire_slot", "refill.shard0", "merge.draw",
        "session.admit"}) {
    obs::FaultRegistry::Global().Arm(site, probe);
  }

  ResolverOptions options;
  options.num_shards = 2;
  options.lookahead = 2;
  options.budget = 600;
  std::unique_ptr<Resolver> resolver = MustCreate(store, options);
  ResolverSession session = resolver->OpenSession();
  for (;;) {
    ResolveResult slice = session.Resolve({128, 0});
    if (slice.comparisons.empty() || slice.stream_exhausted ||
        slice.budget_exhausted) {
      break;
    }
  }
  resolver->Drain();

  obs::FaultRegistry& registry = obs::FaultRegistry::Global();
  EXPECT_GT(registry.hits("ring.acquire_slot"), 0u);
  EXPECT_GT(registry.hits("refill.shard0"), 0u);
  EXPECT_GT(registry.hits("merge.draw"), 0u);
  EXPECT_GT(registry.hits("session.admit"), 0u);
}

TEST_F(FaultInjectionTest, QosSeamsAreReachable) {
  const ProfileStore store = DirtyStore();
  obs::FaultPlan probe;
  probe.action = obs::FaultPlan::Action::kStall;
  probe.stall_ms = 0;
  for (const char* site : {"qos.admit", "qos.shed", "qos.evict"}) {
    obs::FaultRegistry::Global().Arm(site, probe);
  }

  std::unique_ptr<Resolver> resolver = MustCreate(store, {});
  obs::ManualClock clock;
  serving::QosOptions qos;
  qos.clock = &clock;
  qos.client_rate = 10.0;
  qos.client_burst = 1.0;
  serving::QosAdmissionController controller(*resolver, qos);

  // One served request (qos.admit), one rate-limit shed (qos.shed), one
  // expired-in-the-lane eviction (qos.evict).
  ResolveRequest request;
  request.budget = 4;
  request.client_id = 1;
  ASSERT_EQ(controller.Resolve(request).outcome, ResolveOutcome::kServed);
  ASSERT_EQ(controller.Resolve(request).outcome, ResolveOutcome::kShed);

  controller.SetDispatchPaused(true);
  std::thread doomed([&] {
    ResolveRequest late;
    late.budget = 4;
    late.deadline_ms = 10;
    ASSERT_EQ(controller.Resolve(late).outcome, ResolveOutcome::kEvicted);
  });
  AwaitQueueDepth(controller, 1);
  clock.AdvanceMillis(20);
  controller.SetDispatchPaused(false);
  doomed.join();

  obs::FaultRegistry& registry = obs::FaultRegistry::Global();
  EXPECT_GT(registry.hits("qos.admit"), 0u);
  EXPECT_GT(registry.hits("qos.shed"), 0u);
  EXPECT_GT(registry.hits("qos.evict"), 0u);
}

}  // namespace
}  // namespace sper
