#ifndef SPER_PROGRESSIVE_SA_PSAB_H_
#define SPER_PROGRESSIVE_SA_PSAB_H_

#include <cstddef>
#include <vector>

#include "blocking/suffix_forest.h"
#include "core/profile_store.h"
#include "progressive/emitter.h"

/// \file sa_psab.h
/// Schema-Agnostic Progressive Suffix Arrays Blocking (SA-PSAB, paper
/// Sec. 4.2): the naïve block-based method. Every attribute-value token is
/// expanded into its suffixes of at least `lmin` characters; the resulting
/// suffix forest is processed "leaves first, root last" — longest suffixes
/// (the most discriminative blocks) before their shorter ancestors, nodes
/// of the same layer in increasing number of comparisons.
///
/// All comparisons of a node share the node's likelihood; within a node
/// they are emitted in deterministic member order. Like SA-PSN, the method
/// makes no provision for repeated comparisons: a pair co-occurring in a
/// child suffix reappears under every ancestor.

namespace sper {

/// The naïve suffix-forest emitter.
class SaPsabEmitter : public ProgressiveEmitter {
 public:
  /// Initialization phase: builds the suffix forest in processing order.
  explicit SaPsabEmitter(const ProfileStore& store,
                         const SuffixForestOptions& options = {});

  /// Emission phase: next valid comparison of the current node, advancing
  /// through the forest.
  std::optional<Comparison> Next() override;

  std::string_view name() const override { return "SA-PSAB"; }

  /// The underlying forest (exposed for inspection / tests).
  const SuffixForest& forest() const { return forest_; }

 private:
  /// Re-points (x_, y_) at the first candidate pair of the current node:
  /// y_ starts at the node's Clean-Clean split point (cross-source scan)
  /// or at x_ + 1 for Dirty ER.
  void ResetCursor();

  const ProfileStore& store_;
  SuffixForest forest_;
  std::size_t node_ = 0;  // current forest node
  std::size_t x_ = 0;     // first member cursor
  std::size_t y_ = 0;     // second member cursor (y_ > x_ invariant on emit)
};

}  // namespace sper

#endif  // SPER_PROGRESSIVE_SA_PSAB_H_
