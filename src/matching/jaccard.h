#ifndef SPER_MATCHING_JACCARD_H_
#define SPER_MATCHING_JACCARD_H_

#include <string>
#include <vector>

/// \file jaccard.h
/// Jaccard similarity over token sets — the paper's "cheap" match function
/// (Sec. 7.3): O(s + t) on pre-sorted token vectors.

namespace sper {

/// Jaccard similarity |A ∩ B| / |A ∪ B| of two sorted, deduplicated token
/// vectors. Returns 1 when both are empty.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

}  // namespace sper

#endif  // SPER_MATCHING_JACCARD_H_
