#include "engine/resolver.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <string>
#include <utility>

#include "engine/progressive_engine.h"
#include "engine/sharded_engine.h"
#include "obs/fault_injection.h"

namespace sper {

namespace {

/// ResolverOptions -> the per-engine configuration the implementations
/// take. Stays in one place so plain and sharded creation cannot drift.
EngineConfig ToEngineConfig(const ResolverOptions& options) {
  EngineConfig engine;
  engine.method = options.method;
  engine.num_threads = options.num_threads;
  engine.budget = options.budget;
  engine.lookahead = options.lookahead;
  engine.workflow = options.workflow;
  engine.scheme = options.scheme;
  engine.pps_kmax = options.pps_kmax;
  engine.gs_wmax = options.gs_wmax;
  engine.suffix = options.suffix;
  engine.list = options.list;
  engine.schema_key = options.schema_key;
  engine.telemetry = options.telemetry;
  return engine;
}

}  // namespace

std::string_view ToString(Priority priority) {
  switch (priority) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kBatch:
      return "batch";
    case Priority::kBestEffort:
      return "best_effort";
  }
  return "unknown";
}

std::optional<Priority> ParsePriority(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "interactive") return Priority::kInteractive;
  if (lower == "batch") return Priority::kBatch;
  if (lower == "best_effort" || lower == "besteffort" ||
      lower == "best-effort") {
    return Priority::kBestEffort;
  }
  return std::nullopt;
}

std::string_view ToString(ResolveOutcome outcome) {
  switch (outcome) {
    case ResolveOutcome::kServed:
      return "served";
    case ResolveOutcome::kDeadlineExpired:
      return "deadline_expired";
    case ResolveOutcome::kCancelled:
      return "cancelled";
    case ResolveOutcome::kShed:
      return "shed";
    case ResolveOutcome::kEvicted:
      return "evicted";
    case ResolveOutcome::kRejected:
      return "rejected";
    case ResolveOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

Status ResolverOptions::Validate() const {
  if (num_threads == 0 || num_threads > kMaxThreads) {
    return Status::InvalidArgument(
        "num_threads must be in [1, " + std::to_string(kMaxThreads) +
        "], got " + std::to_string(num_threads));
  }
  if (num_shards == 0 || num_shards > kMaxShards) {
    return Status::InvalidArgument(
        "num_shards must be in [1, " + std::to_string(kMaxShards) +
        "], got " + std::to_string(num_shards));
  }
  if (lookahead > kMaxLookahead) {
    return Status::InvalidArgument(
        "lookahead must be <= " + std::to_string(kMaxLookahead) + ", got " +
        std::to_string(lookahead));
  }
  if (method == MethodId::kPsn && schema_key == nullptr) {
    return Status::InvalidArgument(
        "method PSN requires a schema blocking key "
        "(ResolverOptions::schema_key)");
  }
  if (method == MethodId::kPps && pps_kmax == 0) {
    return Status::InvalidArgument("pps_kmax must be > 0 for method PPS");
  }
  return Status::Ok();
}

Status ValidateResolveRequest(const ResolveRequest& request) {
  if (request.max_batch > ResolveRequest::kMaxBatch) {
    return Status::InvalidArgument(
        "max_batch must be <= " +
        std::to_string(ResolveRequest::kMaxBatch) + ", got " +
        std::to_string(request.max_batch));
  }
  if (request.deadline_ms > ResolveRequest::kMaxDeadlineMs) {
    return Status::InvalidArgument(
        "deadline_ms must be <= " +
        std::to_string(ResolveRequest::kMaxDeadlineMs) + ", got " +
        std::to_string(request.deadline_ms));
  }
  if (static_cast<std::size_t>(request.priority) >= kNumPriorities) {
    return Status::InvalidArgument(
        "priority must be a known class, got " +
        std::to_string(static_cast<unsigned>(request.priority)));
  }
  return Status::Ok();
}

Resolver::Resolver(ResolverOptions options, std::unique_ptr<Engine> engine)
    : options_(std::move(options)), engine_(std::move(engine)) {
  const obs::TelemetryScope& scope = options_.telemetry;
  if (scope.enabled()) {
    queue_wait_ns_ = scope.histogram("session.queue_wait_ns");
    service_ns_ = scope.histogram("session.service_ns");
    slice_comparisons_ = scope.histogram("session.slice_comparisons");
    requests_ = scope.counter("session.requests");
    deadline_exceeded_ = scope.counter("session.deadline_exceeded");
    cancelled_ = scope.counter("session.cancelled");
    rejected_ = scope.counter("session.rejected");
    errors_ = scope.counter("session.errors");
  }
}

Result<std::unique_ptr<Resolver>> Resolver::Create(const ProfileStore& store,
                                                   ResolverOptions options) {
  SPER_RETURN_IF_ERROR(options.Validate());
  std::unique_ptr<Engine> engine;
  if (options.num_shards > 1) {
    engine = std::make_unique<ShardedEngine>(store, ToEngineConfig(options),
                                             options.num_shards);
  } else {
    engine =
        std::make_unique<ProgressiveEngine>(store, ToEngineConfig(options));
  }
  return std::unique_ptr<Resolver>(
      new Resolver(std::move(options), std::move(engine)));
}

ResolveResult Resolver::Serve(const ResolveRequest& request) {
  const obs::Stopwatch arrival;
  ResolveResult result;

  // Draining resolvers reject before taking a ticket (no queue slot, no
  // stream consumption). Requests that lose the race — ticket taken just
  // as Drain() begins — are caught by the post-ticket re-check below.
  if (draining_.load(std::memory_order_seq_cst)) {
    result.outcome = ResolveOutcome::kRejected;
    result.status = Status::FailedPrecondition("resolver is draining");
    if (rejected_ != nullptr) rejected_->Add();
    return result;
  }

  // The request's deadline starts at arrival: queue wait counts, because
  // the paper's interactive consumer cares about total latency. The
  // derived token also fires if the caller's own token does.
  CancelToken token = request.cancel;
  if (request.deadline_ms > 0) {
    token = token.WithDeadline(std::chrono::milliseconds(request.deadline_ms));
  }

  // Ticketed FIFO admission: the ticket is taken atomically on arrival,
  // before the serve mutex, and the draw waits until every earlier ticket
  // has been served — a fair ticket lock, so a request that arrives later
  // (larger ticket) can never barge past an earlier one even if the OS
  // hands it the mutex first. seq_cst pairs with Drain(): see the header.
  result.ticket = next_ticket_.fetch_add(1, std::memory_order_seq_cst);
  const bool rejected = draining_.load(std::memory_order_seq_cst);
  MutexLock lock(mutex_);
  while (now_serving_ != result.ticket) cv_.Wait(lock);
  const obs::Stopwatch::TimePoint admitted = obs::Stopwatch::Now();
  if (queue_wait_ns_ != nullptr) {
    queue_wait_ns_->Record(obs::Stopwatch::Nanos(arrival.start(), admitted));
  }

  // Keep the admission queue live even if the draw throws (e.g.
  // bad_alloc growing a huge slice): scope exit — declared after `lock`,
  // so it runs while the mutex is still held — advances now_serving_ and
  // wakes the next ticket instead of deadlocking every later request.
  struct AdmissionGuard {
    Resolver* resolver;
    // The destructor runs while `lock` is still held (declared after it),
    // but the analysis cannot see a caller's lock from a local struct's
    // destructor — hence the opt-out. now_serving_ stays mutex_-guarded.
    ~AdmissionGuard() SPER_NO_THREAD_SAFETY_ANALYSIS {
      ++resolver->now_serving_;
      resolver->cv_.NotifyAll();
    }
  } guard{this};

  if (rejected) {
    // Drain began between the fast-path check and the ticket: serve an
    // empty rejected slice — the guard still advances now_serving_, which
    // is what lets Drain's horizon wait terminate.
    result.outcome = ResolveOutcome::kRejected;
    result.status = Status::FailedPrecondition("resolver is draining");
    if (rejected_ != nullptr) rejected_->Add();
    return result;
  }
  if (poison_reported_) {
    // The engine's failure was already surfaced to an earlier request;
    // later ones get the stable "this resolver is dead" answer.
    result.outcome = ResolveOutcome::kRejected;
    result.status = Status::FailedPrecondition(
        "resolver engine poisoned: " + engine_->status().message());
    if (rejected_ != nullptr) rejected_->Add();
    return result;
  }
  SPER_FAULT_HIT("session.admit");

  std::uint64_t want = request.budget;
  if (request.max_batch != 0) {
    want = std::min<std::uint64_t>(want, request.max_batch);
  }
  // Cap the reservation: `want` is caller-controlled and may be "all of
  // it"; the slice grows normally past the initial reservation.
  result.comparisons.reserve(
      static_cast<std::size_t>(std::min<std::uint64_t>(want, 65536)));

  const auto record_cut = [&] {
    if (token.reason() == CancelReason::kDeadline) {
      result.outcome = ResolveOutcome::kDeadlineExpired;
      if (deadline_exceeded_ != nullptr) deadline_exceeded_->Add();
    } else {
      result.outcome = ResolveOutcome::kCancelled;
      if (cancelled_ != nullptr) cancelled_->Add();
    }
  };

  std::uint64_t tick = 0;
  while (result.comparisons.size() < want) {
    // The engine checks the token at its own batch boundaries, but a warm
    // pipeline can serve thousands of pulls without hitting one — this
    // stride check bounds how far past its deadline a request can run.
    if (token.valid() && (tick++ & 15) == 0 && token.cancelled()) {
      record_cut();
      break;
    }
    Comparison next;
    const PullStatus pulled = engine_->Pull(next, token);
    if (pulled == PullStatus::kOk) {
      result.comparisons.push_back(next);
      continue;
    }
    if (pulled == PullStatus::kExhausted) {
      // Exhaustion is either the global budget running out mid-slice or
      // the method running dry; tell the caller which.
      if (engine_->BudgetExhausted()) {
        result.budget_exhausted = true;
      } else {
        result.stream_exhausted = true;
      }
    } else if (pulled == PullStatus::kCancelled) {
      record_cut();
    } else {  // kError: the first observer reports the contained failure
      result.outcome = ResolveOutcome::kFailed;
      result.status = engine_->status();
      poison_reported_ = true;
      if (errors_ != nullptr) errors_->Add();
    }
    break;
  }
  // A request admitted after the global budget is spent (including a
  // zero-budget probe) still learns so without drawing.
  if (engine_->BudgetExhausted()) result.budget_exhausted = true;

  if (requests_ != nullptr) {
    const obs::Stopwatch::TimePoint done = obs::Stopwatch::Now();
    requests_->Add();
    service_ns_->Record(obs::Stopwatch::Nanos(admitted, done));
    slice_comparisons_->Record(result.comparisons.size());
    options_.telemetry.RecordSpan(
        "session.resolve", admitted, done,
        "{\"ticket\": " + std::to_string(result.ticket) +
            ", \"comparisons\": " +
            std::to_string(result.comparisons.size()) + "}");
  }
  return result;  // the guard admits the next ticket
}

void Resolver::Drain() {
  // One drainer at a time; a second concurrent Drain() blocks here and
  // returns only after the stream is actually down.
  MutexLock drain_lock(drain_mutex_);
  const obs::Stopwatch watch;
  draining_.store(true, std::memory_order_seq_cst);
  // Every ticket at or past this horizon observes draining_ == true and
  // rejects itself (see the seq_cst argument in the header); every ticket
  // before it is let finish — or cut itself at its own deadline.
  const std::uint64_t horizon = next_ticket_.load(std::memory_order_seq_cst);
  {
    MutexLock lock(mutex_);
    while (now_serving_ < horizon) cv_.Wait(lock);
  }
  if (!engine_drained_) {
    engine_->Drain();  // shuts down + joins shard producers
    engine_drained_ = true;
    options_.telemetry.RecordSpan("session.drain", watch.start(),
                                  obs::Stopwatch::Now());
    if (obs::Counter* drains = options_.telemetry.counter("session.drains");
        drains != nullptr) {
      drains->Add();
    }
  }
}

}  // namespace sper
