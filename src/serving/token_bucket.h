#ifndef SPER_SERVING_TOKEN_BUCKET_H_
#define SPER_SERVING_TOKEN_BUCKET_H_

#include <algorithm>
#include <cstdint>

/// \file token_bucket.h
/// Deterministic token bucket for per-client rate limiting in the QoS
/// admission controller (serving/qos.h). Pure arithmetic over caller-
/// supplied timestamps: the bucket never reads a clock itself, so a test
/// driving it from an obs::ManualClock gets bit-identical admit/deny
/// decisions on every run.
///
/// Not thread-safe — the controller guards each client's bucket with its
/// own admission mutex.

namespace sper {
namespace serving {

/// One client's refillable budget: holds up to `burst` tokens, refilled
/// continuously at `rate_per_sec` tokens per second (fractional refill is
/// kept in nanosecond-of-token precision — no quantization drift).
class TokenBucket {
 public:
  /// A bucket starts full: a client's first burst is never throttled.
  /// `rate_per_sec` == 0 disables the bucket (every acquire succeeds).
  TokenBucket(double rate_per_sec, double burst, std::uint64_t now_ns)
      : rate_per_sec_(rate_per_sec),
        burst_(std::max(burst, 1.0)),
        tokens_(std::max(burst, 1.0)),
        last_refill_ns_(now_ns) {}

  /// Takes `cost` tokens if available at time `now_ns`. Returns true on
  /// success; on failure the bucket is untouched (no partial spend).
  bool TryAcquire(double cost, std::uint64_t now_ns) {
    if (rate_per_sec_ <= 0.0) return true;
    Refill(now_ns);
    if (tokens_ + 1e-9 < cost) return false;
    tokens_ -= cost;
    return true;
  }

  /// Milliseconds (rounded up) until `cost` tokens will be available,
  /// assuming no further spends. 0 when they already are, or when the
  /// bucket is disabled.
  std::uint64_t RetryAfterMs(double cost, std::uint64_t now_ns) {
    if (rate_per_sec_ <= 0.0) return 0;
    Refill(now_ns);
    const double deficit = cost - tokens_;
    if (deficit <= 0.0) return 0;
    const double seconds = deficit / rate_per_sec_;
    return static_cast<std::uint64_t>(seconds * 1000.0) + 1;
  }

  /// Tokens currently held (after a refill to `now_ns`); for tests.
  double Available(std::uint64_t now_ns) {
    Refill(now_ns);
    return tokens_;
  }

 private:
  void Refill(std::uint64_t now_ns) {
    if (now_ns <= last_refill_ns_) return;
    const double elapsed_sec =
        static_cast<double>(now_ns - last_refill_ns_) * 1e-9;
    tokens_ = std::min(burst_, tokens_ + elapsed_sec * rate_per_sec_);
    last_refill_ns_ = now_ns;
  }

  double rate_per_sec_;
  double burst_;
  double tokens_;
  std::uint64_t last_refill_ns_;
};

}  // namespace serving
}  // namespace sper

#endif  // SPER_SERVING_TOKEN_BUCKET_H_
