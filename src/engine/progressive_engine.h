#ifndef SPER_ENGINE_PROGRESSIVE_ENGINE_H_
#define SPER_ENGINE_PROGRESSIVE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "core/profile_store.h"
#include "core/types.h"
#include "engine/engine.h"
#include "engine/method.h"
#include "obs/telemetry.h"
#include "parallel/emission_pipeline.h"
#include "parallel/thread_pool.h"
#include "progressive/comparison_list.h"
#include "progressive/emitter.h"
#include "progressive/gs_psn.h"
#include "progressive/pbs.h"
#include "progressive/pps.h"
#include "progressive/sa_psab.h"
#include "progressive/workflow.h"
#include "sorted/neighbor_list.h"

/// \file progressive_engine.h
/// The one-call facade over the whole library: profiles in, ranked
/// comparisons out. The engine wires the Token Blocking Workflow,
/// meta-blocking edge weighting and the chosen progressive method behind a
/// single constructor, runs every initialization hot path on
/// `num_threads` threads (identical output at every thread count), and
/// enforces an optional pay-as-you-go comparison budget on emission.
///
/// Emission is serial by default (Next() computes refills inline — the
/// reference path). With `lookahead > 0` the engine runs the emission
/// pipeline instead: a producer task computes refill batches strictly in
/// cursor order up to `lookahead` batches ahead, and Next() pops from
/// completed batches. The emitted sequence is bit-identical either way.

namespace sper {

/// Everything one engine instance needs to run one progressive ER task.
///
/// This is the *internal* per-engine configuration: public callers go
/// through `ResolverOptions` + `Resolver::Create` (engine/resolver.h),
/// which validates the configuration and picks the engine
/// implementation. (The old deprecated `EngineOptions` /
/// `ShardedEngineOptions` public shims were removed in PR 8.)
struct EngineConfig {
  /// Progressive method to run.
  MethodId method = MethodId::kPps;

  /// Threads used by the initialization phase (token-index build, block
  /// filtering, edge weighting). Emission is always sequential — it is a
  /// pull-based stream. 0 means "one thread".
  std::size_t num_threads = 1;

  /// Maximum number of comparisons Next() will emit; 0 = unlimited. This
  /// is the paper's pay-as-you-go budget expressed at the API boundary:
  /// once exhausted, Next() returns nullopt even if the method could
  /// continue.
  std::uint64_t budget = 0;

  /// Emission pipeline lookahead: how many completed *queue slots* the
  /// producer task may run ahead of the consumer. A slot holds one or
  /// more consecutive refill batches — small refills are coalesced until
  /// a slot carries at least ~256 comparisons — so the bound on buffered
  /// precomputation is roughly lookahead * max(256, largest refill)
  /// comparisons, not lookahead individual refills. 0 = the serial
  /// reference path, where Next() computes refills inline. Applies to
  /// the batch-refilling methods (PBS, PPS; MethodHasBatchRefills); the
  /// sort-based methods ignore it. The emitted sequence is bit-identical
  /// at every setting — only wall-clock changes.
  std::size_t lookahead = 0;

  /// Blocking workflow for the equality-based methods (PBS, PPS).
  TokenWorkflowOptions workflow;
  /// Blocking-graph edge-weighting scheme for PBS/PPS.
  WeightingScheme scheme = WeightingScheme::kArcs;
  /// PPS comparisons retained per profile.
  std::size_t pps_kmax = 100;
  /// GS-PSN window range.
  std::size_t gs_wmax = 20;
  /// SA-PSAB suffix forest parameters.
  SuffixForestOptions suffix;
  /// Neighbor List construction for the sort-based methods.
  NeighborListOptions list;
  /// Schema-based blocking key; required by kPsn, ignored otherwise.
  SchemaKeyFn schema_key;
  /// Telemetry sink (phase timers, pipeline health metrics, spans).
  /// Default-constructed = disabled; the emitted stream is bit-identical
  /// either way. ShardedEngine hands each shard a "shard<S>."-prefixed
  /// sub-scope of the resolver's scope.
  obs::TelemetryScope telemetry;
  /// Names this engine instance in contained-failure messages and
  /// fault-injection seams ("shard0" makes the refill seam
  /// "refill.shard0"); empty = a plain unlabeled engine ("refill").
  std::string instance_label;
};

/// Facade emitter: owns the inner method emitter and its inputs. Being a
/// ProgressiveEmitter itself, it composes with every existing consumer
/// (evaluator, benches, dedup loops).
///
/// Direct construction is internal: public callers use
/// `Resolver::Create` (engine/resolver.h), which validates options and
/// picks plain vs sharded serving; ProgressiveEngine remains the plain
/// implementation behind that factory.
class ProgressiveEngine : public BudgetedEngine {
 public:
  /// Initialization phase: builds blocking structures (in parallel when
  /// options.num_threads > 1) and the method emitter; with
  /// options.lookahead > 0 it also starts the emission pipeline's
  /// producer. The store must outlive the engine. kPsn requires
  /// options.schema_key.
  ///
  /// `emission_pool` hosts the producer task when given (it must have one
  /// free worker per pipelined engine for the engine's lifetime, and must
  /// outlive the engine — ShardedEngine shares one pool across shards);
  /// nullptr makes the engine own a single-worker pool. Unused when
  /// lookahead == 0.
  ProgressiveEngine(const ProfileStore& store, EngineConfig options,
                    ThreadPool* emission_pool = nullptr);

  /// The inner method's acronym, e.g. "PPS".
  std::string_view name() const override { return inner_->name(); }

  /// A plain engine serves one logical shard.
  std::size_t num_shards() const override { return 1; }

  /// Stops the stream: shuts down the emission pipeline (joining its
  /// producer task) and flips the engine to exhausted. Idempotent.
  void Drain() override;

 private:
  /// The inner method's next comparison (pipelined or inline refills);
  /// budget and poison accounting live in BudgetedEngine::Pull().
  PullStatus PullUnbudgeted(Comparison& out,
                            const CancelToken& token) override;

  /// Pops the next comparison off the pipeline's completed batches.
  PullStatus PipelinedPull(Comparison& out, const CancelToken& token);

  /// The inline-refill reference path: for the batch methods the engine
  /// drives ProduceBatch itself (same sequence per the BatchSource
  /// contract) so the token check, fault seam, and failure containment
  /// sit at the true refill boundary; sort-based methods pull Next().
  PullStatus SerialPull(Comparison& out, const CancelToken& token);

  /// Contains a producer/refill failure: sticky status with instance
  /// label and batch cursor (the satellite fix for "rethrow loses
  /// origin").
  PullStatus Poison(std::size_t batch_index, std::exception_ptr error);

  EngineConfig options_;
  std::unique_ptr<ProgressiveEmitter> inner_;
  /// inner_ viewed through its refill-batch capability; nullptr for the
  /// sort-based methods.
  BatchSource* batch_source_ = nullptr;
  /// Fault-injection seam name of this engine's refill boundary
  /// ("refill" or "refill.<instance_label>").
  std::string fault_site_;
  /// Registry sinks of the emission pipeline; must be declared before
  /// pipeline_ (the pipeline holds a pointer to it for its lifetime).
  EmissionPipelineMetrics pipeline_metrics_;
  // Members are destroyed in reverse declaration order: the pipeline must
  // close (and its producer task exit) before the owned pool joins, and
  // both before inner_ — whose refills the producer runs — is destroyed.
  std::unique_ptr<ThreadPool> owned_emission_pool_;
  std::unique_ptr<EmissionPipeline<ComparisonList>> pipeline_;
  /// The ring slot Next() is draining (owned by the pipeline); caching it
  /// keeps ring synchronization off the per-comparison path.
  ComparisonList* front_ = nullptr;
  /// The serial path's current refill batch (batch methods, lookahead 0);
  /// persists across cancelled pulls so the stream continues losslessly.
  ComparisonList serial_batch_;
  /// Refill batches the serial path has produced (error context).
  std::size_t serial_batch_index_ = 0;
};

}  // namespace sper

#endif  // SPER_ENGINE_PROGRESSIVE_ENGINE_H_
