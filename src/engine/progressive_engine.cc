#include "engine/progressive_engine.h"

#include <cctype>
#include <exception>
#include <string>
#include <utility>

#include "core/macros.h"
#include "obs/fault_injection.h"
#include "progressive/ls_psn.h"
#include "progressive/psn.h"
#include "progressive/sa_psn.h"

namespace sper {

std::string_view ToString(MethodId id) {
  switch (id) {
    case MethodId::kPsn:
      return "PSN";
    case MethodId::kSaPsn:
      return "SA-PSN";
    case MethodId::kSaPsab:
      return "SA-PSAB";
    case MethodId::kLsPsn:
      return "LS-PSN";
    case MethodId::kGsPsn:
      return "GS-PSN";
    case MethodId::kPbs:
      return "PBS";
    case MethodId::kPps:
      return "PPS";
  }
  return "?";
}

bool MethodHasBatchRefills(MethodId id) {
  return id == MethodId::kPbs || id == MethodId::kPps;
}

std::optional<MethodId> ParseMethodId(std::string_view name) {
  // Case-insensitive, and '_' is accepted for '-' so shell-friendly
  // spellings like "pps" or "sa_psn" parse.
  const auto canonical = [](std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '_') c = '-';
      out.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
    return out;
  };
  const std::string wanted = canonical(name);
  for (MethodId id :
       {MethodId::kPsn, MethodId::kSaPsn, MethodId::kSaPsab,
        MethodId::kLsPsn, MethodId::kGsPsn, MethodId::kPbs, MethodId::kPps}) {
    if (wanted == ToString(id)) return id;
  }
  return std::nullopt;
}

ProgressiveEngine::ProgressiveEngine(const ProfileStore& store,
                                     EngineConfig options,
                                     ThreadPool* emission_pool)
    : options_(std::move(options)) {
  const obs::Stopwatch init_watch;
  if (options_.num_threads == 0) options_.num_threads = 1;
  budget_ = options_.budget;
  const obs::TelemetryScope& scope = options_.telemetry;

  // The blocking workflow of the equality-based methods, timed per step.
  // Its phases land in stats_.phases before "method_build" (the emitter
  // construction that follows it); finer method sub-phases
  // ("block_scheduling", "edge_weighting", "profile_scheduling") are
  // recorded registry-side by the callees themselves.
  const auto run_workflow = [&](const ProfileStore& s) {
    TokenWorkflowOptions workflow = options_.workflow;
    workflow.num_threads = options_.num_threads;
    workflow.telemetry = scope;
    TokenWorkflowTiming timing;
    BlockCollection blocks = BuildTokenWorkflowBlocks(s, workflow, &timing);
    stats_.phases.push_back(
        {"token_blocking", 0, timing.token_blocking_seconds});
    if (workflow.enable_purging) {
      stats_.phases.push_back({"block_purging", 0, timing.purging_seconds});
    }
    if (workflow.enable_filtering) {
      stats_.phases.push_back(
          {"block_filtering", 0, timing.filtering_seconds});
    }
    stats_.num_blocks = blocks.size();
    stats_.aggregate_cardinality = blocks.AggregateCardinality();
    return blocks;
  };

  std::optional<BlockCollection> workflow_blocks;
  if (MethodHasBatchRefills(options_.method)) {
    workflow_blocks.emplace(run_workflow(store));
  }

  double method_seconds = 0.0;
  {
    obs::ScopedPhase method_phase(scope, "method_build", &method_seconds);
    switch (options_.method) {
    case MethodId::kPsn:
      SPER_CHECK(options_.schema_key != nullptr &&
                 "kPsn requires EngineConfig::schema_key");
      inner_ = std::make_unique<PsnEmitter>(store, options_.schema_key,
                                            options_.list);
      break;
    case MethodId::kSaPsn:
      inner_ = std::make_unique<SaPsnEmitter>(store, options_.list);
      break;
    case MethodId::kSaPsab:
      inner_ = std::make_unique<SaPsabEmitter>(store, options_.suffix);
      break;
    case MethodId::kLsPsn:
      inner_ = std::make_unique<LsPsnEmitter>(store, options_.list);
      break;
    case MethodId::kGsPsn: {
      GsPsnOptions gs;
      gs.wmax = options_.gs_wmax;
      gs.list = options_.list;
      inner_ = std::make_unique<GsPsnEmitter>(store, gs);
      break;
    }
    case MethodId::kPbs: {
      PbsOptions pbs;
      pbs.scheme = options_.scheme;
      pbs.num_threads = options_.num_threads;
      pbs.telemetry = scope;
      inner_ = std::make_unique<PbsEmitter>(store, *workflow_blocks, pbs);
      break;
    }
    case MethodId::kPps: {
      PpsOptions pps;
      pps.scheme = options_.scheme;
      pps.kmax = options_.pps_kmax;
      pps.num_threads = options_.num_threads;
      pps.telemetry = scope;
      inner_ = std::make_unique<PpsEmitter>(store,
                                            std::move(*workflow_blocks), pps);
      break;
    }
    }
  }
  stats_.phases.push_back({"method_build", 0, method_seconds});
  SPER_CHECK(inner_ != nullptr && "unknown method");

  // Emission pipeline (lookahead > 0): run the method's refills on a pool
  // worker, bounded `lookahead` batches ahead of Next(). Only the
  // batch-refilling methods expose the refill boundary; the rest keep the
  // serial path regardless of the option.
  batch_source_ = dynamic_cast<BatchSource*>(inner_.get());
  fault_site_ = options_.instance_label.empty()
                    ? "refill"
                    : "refill." + options_.instance_label;
  if (options_.lookahead > 0 && batch_source_ != nullptr) {
    if (emission_pool == nullptr) {
      owned_emission_pool_ = std::make_unique<ThreadPool>(1);
      emission_pool = owned_emission_pool_.get();
      if (scope.enabled()) {
        owned_emission_pool_->set_dropped_exceptions_counter(
            scope.counter("pool.dropped_exceptions"));
      }
    }
    // Refill batches can be tiny (a PPS profile contributes at most kmax
    // and usually far fewer comparisons), so the producer coalesces
    // consecutive refills into one ring slot until it holds at least
    // kMinBatchItems. Consecutive batches are consumed back to back
    // anyway, so concatenation keeps the serial order while amortizing
    // the per-slot handoff to once per ~kMinBatchItems emissions.
    constexpr std::size_t kMinBatchItems = 256;
    if (scope.enabled()) {
      pipeline_metrics_.batches = scope.counter("pipeline.batches");
      pipeline_metrics_.producer_stalls =
          scope.counter("pipeline.producer_stalls");
      pipeline_metrics_.consumer_waits =
          scope.counter("pipeline.consumer_waits");
      pipeline_metrics_.refill_ns = scope.histogram("pipeline.refill_ns");
      pipeline_metrics_.ring_occupancy =
          scope.histogram("pipeline.ring_occupancy");
    }
    pipeline_ = std::make_unique<EmissionPipeline<ComparisonList>>(
        options_.lookahead,
        [source = batch_source_,
         scratch = ComparisonList()](ComparisonList& out) mutable {
          out.Clear();
          do {
            if (!source->ProduceBatch(scratch)) break;
            out.AppendFrom(scratch);
          } while (out.remaining() < kMinBatchItems);
          return !out.Empty();
        },
        scope.enabled() ? &pipeline_metrics_ : nullptr, fault_site_);
    pipeline_->Start(*emission_pool);
  }

  stats_.init_seconds = init_watch.ElapsedSeconds();
  scope.RecordSpan("init", init_watch.start(), obs::Stopwatch::Now());
  if (obs::Gauge* total = scope.gauge("phase.init_seconds");
      total != nullptr) {
    total->Add(stats_.init_seconds);
  }
}

PullStatus ProgressiveEngine::Poison(std::size_t batch_index,
                                     std::exception_ptr error) {
  std::string what = "unknown error";
  try {
    std::rethrow_exception(std::move(error));
  } catch (const std::exception& e) {
    what = e.what();
  } catch (...) {
  }
  const std::string& label = options_.instance_label;
  status_ = Status::Internal(
      "refill producer failed (" + (label.empty() ? "engine" : label) +
      ", batch " + std::to_string(batch_index) + "): " + what);
  return PullStatus::kError;
}

PullStatus ProgressiveEngine::PipelinedPull(Comparison& out,
                                            const CancelToken& token) {
  // front_ caches the slot being drained so the ring (and its mutex) is
  // only touched once per batch, not once per comparison.
  while (front_ == nullptr || front_->Empty()) {
    if (front_ != nullptr) {
      pipeline_->PopFront();  // batch drained: recycle the slot
      front_ = nullptr;
    }
    bool expired = false;
    front_ = pipeline_->FrontUntil(token, &expired);
    if (front_ == nullptr) {
      if (expired) return PullStatus::kCancelled;
      // End of stream — clean exhaustion or a contained producer death.
      EmissionPipelineError error = pipeline_->error();
      if (error.exception != nullptr) {
        return Poison(error.batch_index, std::move(error.exception));
      }
      return PullStatus::kExhausted;
    }
  }
  out = front_->PopFirst();
  return PullStatus::kOk;
}

PullStatus ProgressiveEngine::SerialPull(Comparison& out,
                                         const CancelToken& token) {
  if (batch_source_ != nullptr) {
    // Inline-refill reference path of the batch methods: identical
    // sequence to inner_->Next() per the BatchSource contract, but with
    // the cancellation check and failure containment at the refill
    // boundary (a refill is the unit of work a token can skip without
    // corrupting method state).
    while (serial_batch_.Empty()) {
      if (token.valid() && token.cancelled()) return PullStatus::kCancelled;
      try {
        SPER_FAULT_HIT(fault_site_);
        if (!batch_source_->ProduceBatch(serial_batch_)) {
          return PullStatus::kExhausted;
        }
        ++serial_batch_index_;
      } catch (...) {
        return Poison(serial_batch_index_, std::current_exception());
      }
    }
    out = serial_batch_.PopFirst();
    return PullStatus::kOk;
  }
  // Sort-based methods: every Next() is one bounded unit of work.
  if (token.valid() && token.cancelled()) return PullStatus::kCancelled;
  try {
    std::optional<Comparison> next = inner_->Next();
    if (!next.has_value()) return PullStatus::kExhausted;
    out = *next;
    return PullStatus::kOk;
  } catch (...) {
    return Poison(serial_batch_index_, std::current_exception());
  }
}

PullStatus ProgressiveEngine::PullUnbudgeted(Comparison& out,
                                             const CancelToken& token) {
  return pipeline_ != nullptr ? PipelinedPull(out, token)
                              : SerialPull(out, token);
}

void ProgressiveEngine::Drain() {
  drained_ = true;
  if (pipeline_ != nullptr) pipeline_->Shutdown();
}

}  // namespace sper
