#ifndef SPER_OBS_TELEMETRY_H_
#define SPER_OBS_TELEMETRY_H_

#include <string>
#include <string_view>
#include <utility>

#include "obs/clock.h"
#include "obs/registry.h"

/// \file telemetry.h
/// The instrumentation seam that library code holds: a TelemetryScope is
/// a (Registry*, name-prefix) pair that flows through options structs
/// (ResolverOptions -> EngineConfig -> per-shard scopes -> workflow /
/// emitter options). Code instruments unconditionally against the scope;
/// the scope decides whether anything happens:
///
///   - runtime off-mode: a default-constructed scope has no registry, so
///     counter()/gauge()/histogram() return nullptr and RecordSpan is a
///     no-op — instrumented sites cost one pointer test;
///   - compile-time off-mode: with SPER_NO_TELEMETRY defined the scope
///     collapses to an empty constexpr stub, so the registry plumbing
///     compiles out entirely. The primitives (metrics.h, registry.h) and
///     Stopwatch stay available either way.
///
/// ScopedPhase is the RAII phase timer built on top: it times a named
/// phase, records gauge "phase.<name>_seconds" plus a span into the
/// scope, and always fills an optional double* out-param — so diagnostics
/// like InitStats keep their numbers even with telemetry compiled out.

namespace sper {
namespace obs {

#ifndef SPER_NO_TELEMETRY

/// A handle into a Registry with a hierarchical name prefix
/// ("shard3." etc). Copyable and cheap; disabled when default-constructed
/// (no registry).
class TelemetryScope {
 public:
  TelemetryScope() = default;
  explicit TelemetryScope(Registry* registry, std::string prefix = {})
      : registry_(registry), prefix_(std::move(prefix)) {}

  bool enabled() const { return registry_ != nullptr; }
  Registry* registry() const { return registry_; }
  const std::string& prefix() const { return prefix_; }

  /// A child scope whose metric names gain "<name>." on top of this
  /// scope's prefix (e.g. Sub("shard0") -> "shard0.phase...").
  TelemetryScope Sub(std::string_view name) const {
    if (!enabled()) return {};
    return TelemetryScope(registry_, prefix_ + std::string(name) + ".");
  }

  /// Get-or-create a metric named prefix + name; nullptr when disabled.
  Counter* counter(std::string_view name) const {
    return enabled() ? registry_->counter(FullName(name)) : nullptr;
  }
  Gauge* gauge(std::string_view name) const {
    return enabled() ? registry_->gauge(FullName(name)) : nullptr;
  }
  Histogram* histogram(std::string_view name) const {
    return enabled() ? registry_->histogram(FullName(name)) : nullptr;
  }

  /// Records a span named prefix + name; no-op when disabled.
  void RecordSpan(std::string_view name, Stopwatch::TimePoint start,
                  Stopwatch::TimePoint end, std::string args_json = {}) const {
    if (enabled()) {
      registry_->RecordSpan(FullName(name), start, end, std::move(args_json));
    }
  }

 private:
  std::string FullName(std::string_view name) const {
    std::string full = prefix_;
    full += name;
    return full;
  }

  Registry* registry_ = nullptr;
  std::string prefix_;
};

/// RAII timer for one named phase: on destruction (or Stop()) records
/// gauge "phase.<name>_seconds" and a span "<name>" into the scope, and
/// fills *out_seconds when given. The out-param is filled even when the
/// scope is disabled — callers use it to populate always-on diagnostics
/// such as InitStats.
class ScopedPhase {
 public:
  ScopedPhase(const TelemetryScope& scope, std::string_view name,
              double* out_seconds = nullptr)
      : scope_(scope), name_(name), out_seconds_(out_seconds) {}

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  ~ScopedPhase() { Stop(); }

  /// Ends the phase early (idempotent).
  void Stop() {
    if (stopped_) return;
    stopped_ = true;
    const Stopwatch::TimePoint end = Stopwatch::Now();
    const double seconds = Stopwatch::Seconds(watch_.start(), end);
    if (out_seconds_ != nullptr) *out_seconds_ = seconds;
    if (scope_.enabled()) {
      std::string gauge_name = "phase.";
      gauge_name += name_;
      gauge_name += "_seconds";
      scope_.gauge(gauge_name)->Add(seconds);
      scope_.RecordSpan(name_, watch_.start(), end);
    }
  }

 private:
  const TelemetryScope& scope_;
  std::string name_;
  double* out_seconds_;
  Stopwatch watch_;
  bool stopped_ = false;
};

#else  // SPER_NO_TELEMETRY

/// Compile-time off-mode: an empty scope whose accessors constant-fold
/// away. Library code instruments against this interface unchanged.
class TelemetryScope {
 public:
  constexpr TelemetryScope() = default;
  explicit TelemetryScope(Registry*, std::string = {}) {}

  constexpr bool enabled() const { return false; }
  constexpr Registry* registry() const { return nullptr; }
  TelemetryScope Sub(std::string_view) const { return {}; }
  constexpr Counter* counter(std::string_view) const { return nullptr; }
  constexpr Gauge* gauge(std::string_view) const { return nullptr; }
  constexpr Histogram* histogram(std::string_view) const { return nullptr; }
  void RecordSpan(std::string_view, Stopwatch::TimePoint,
                  Stopwatch::TimePoint, std::string = {}) const {}
};

/// Off-mode phase timer: still times (so *out_seconds stays correct for
/// always-on diagnostics) but records nothing.
class ScopedPhase {
 public:
  ScopedPhase(const TelemetryScope&, std::string_view,
              double* out_seconds = nullptr)
      : out_seconds_(out_seconds) {}

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  ~ScopedPhase() { Stop(); }

  void Stop() {
    if (stopped_) return;
    stopped_ = true;
    if (out_seconds_ != nullptr) *out_seconds_ = watch_.ElapsedSeconds();
  }

 private:
  double* out_seconds_;
  Stopwatch watch_;
  bool stopped_ = false;
};

#endif  // SPER_NO_TELEMETRY

}  // namespace obs
}  // namespace sper

#endif  // SPER_OBS_TELEMETRY_H_
