#ifndef SPER_CORE_TOKENIZER_H_
#define SPER_CORE_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/profile.h"

/// \file tokenizer.h
/// Extraction of schema-agnostic blocking keys: the attribute-value tokens
/// of a profile (paper Sec. 3, "Token Blocking creates a separate block for
/// every token that appears in any attribute value").

namespace sper {

/// Configuration of attribute-value tokenization.
struct TokenizerOptions {
  /// Lowercase ASCII letters before emitting tokens.
  bool lowercase = true;
  /// Tokens shorter than this many characters are dropped. The paper's
  /// examples keep 2-character tokens ('ny', 'ml', 'wi'), so default 1.
  std::size_t min_token_length = 1;
};

/// Splits one attribute value into tokens on every non-alphanumeric ASCII
/// character. URIs therefore decompose into their path segments
/// ("http://dbpedia.org/Carl_White" -> http, dbpedia, org, carl, white),
/// which is exactly the behaviour the paper leverages / critiques for RDF
/// data (Sec. 7.2).
std::vector<std::string> TokenizeValue(std::string_view value,
                                       const TokenizerOptions& options = {});

/// The distinct attribute-value tokens of a whole profile, sorted
/// lexicographically. These are the profile's schema-agnostic blocking keys.
std::vector<std::string> DistinctProfileTokens(
    const Profile& profile, const TokenizerOptions& options = {});

}  // namespace sper

#endif  // SPER_CORE_TOKENIZER_H_
