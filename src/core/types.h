#ifndef SPER_CORE_TYPES_H_
#define SPER_CORE_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

/// \file types.h
/// Fundamental identifiers and enums shared by every sper subsystem.

namespace sper {

/// Identifier of an entity profile inside a ProfileStore.
/// Ids are dense: the i-th profile of the store has id `i`.
using ProfileId = std::uint32_t;

/// Identifier of a block inside a BlockCollection. After Block Scheduling,
/// the id of a block equals its position in the processing order.
using BlockId = std::uint32_t;

/// Sentinel for "no profile".
inline constexpr ProfileId kInvalidProfile =
    std::numeric_limits<ProfileId>::max();

/// Sentinel for "no block".
inline constexpr BlockId kInvalidBlock = std::numeric_limits<BlockId>::max();

/// The two forms of Entity Resolution the paper considers (Sec. 3).
///
/// - kDirty: a single profile collection that contains duplicates in
///   itself; every pair of distinct profiles is a candidate.
/// - kCleanClean: two individually duplicate-free but overlapping
///   collections; only cross-source pairs are candidates.
enum class ErType { kDirty, kCleanClean };

/// Human-readable name of an ErType ("dirty" / "clean-clean").
inline const char* ToString(ErType t) {
  return t == ErType::kDirty ? "dirty" : "clean-clean";
}

class Profile;

/// A schema-based blocking-key extractor, e.g. "Soundex(surname) + initials
/// + zipcode" for the census dataset (paper footnote 6). Used only by the
/// schema-based baseline PSN; all other methods are schema-agnostic.
using SchemaKeyFn = std::function<std::string(const Profile&)>;

}  // namespace sper

#endif  // SPER_CORE_TYPES_H_
