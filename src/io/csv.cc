#include "io/csv.h"

namespace sper {

std::string CsvEscape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string CsvJoin(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += CsvEscape(fields[i]);
  }
  return out;
}

std::vector<std::string> CsvSplit(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"' && current.empty()) {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

bool CsvReadRecord(std::istream& in, std::string* record) {
  record->clear();
  std::string line;
  // Quote state mirrors CsvSplit: a quote opens a quoted section only at
  // the start of a field (field_empty), doubled quotes inside a section
  // are literal, and any appended character makes the field non-empty.
  bool in_quotes = false;
  bool field_empty = true;
  bool first = true;
  while (std::getline(in, line)) {
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (in_quotes) {
        if (c == '"') {
          if (i + 1 < line.size() && line[i + 1] == '"') {
            ++i;
            field_empty = false;
          } else {
            in_quotes = false;
          }
        } else {
          field_empty = false;
        }
      } else if (c == '"' && field_empty) {
        in_quotes = true;
      } else if (c == ',') {
        field_empty = true;
      } else {
        field_empty = false;
      }
    }
    if (!first) record->push_back('\n');
    first = false;
    if (!in_quotes) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      record->append(line);
      return true;
    }
    // The record continues on the next physical line; the newline joined
    // above belongs to the open quoted field.
    record->append(line);
    field_empty = false;
  }
  return !first;
}

}  // namespace sper
