#ifndef SPER_IO_CSV_H_
#define SPER_IO_CSV_H_

#include <string>
#include <string_view>
#include <vector>

/// \file csv.h
/// Minimal RFC-4180-style CSV: fields containing commas, quotes or
/// newlines are double-quoted with quote doubling. Enough to round-trip
/// arbitrary profile values.

namespace sper {

/// Escapes one field for CSV output.
std::string CsvEscape(std::string_view field);

/// Joins fields into one CSV line (no trailing newline).
std::string CsvJoin(const std::vector<std::string>& fields);

/// Splits one CSV line into fields, honoring quoting. Malformed trailing
/// quotes are tolerated (the remainder is taken literally).
std::vector<std::string> CsvSplit(std::string_view line);

}  // namespace sper

#endif  // SPER_IO_CSV_H_
