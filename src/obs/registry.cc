#include "obs/registry.h"

#include <cmath>
#include <cstdio>

namespace sper {
namespace obs {

namespace {

/// Escapes a metric/span name for a JSON string literal.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Formats a double as a JSON number (NaN/Inf — not representable in
/// JSON — degrade to 0).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string JsonNumber(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  return buf;
}

template <typename Map, typename Fn>
void AppendSection(std::string& out, const char* section, const Map& map,
                   Fn&& value_json) {
  out += "  \"";
  out += section;
  out += "\": {";
  bool first = true;
  for (const auto& [name, metric] : map) {
    if (!first) out += ',';
    first = false;
    out += "\n    \"";
    out += JsonEscape(name);
    out += "\": ";
    out += value_json(*metric);
  }
  out += first ? "},\n" : "\n  },\n";
}

}  // namespace

Counter* Registry::counter(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* Registry::gauge(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* Registry::histogram(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

const Counter* Registry::FindCounter(std::string_view name) const {
  MutexLock lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::FindGauge(std::string_view name) const {
  MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* Registry::FindHistogram(std::string_view name) const {
  MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::uint32_t Registry::ThreadIndexLocked() {
  const std::thread::id id = std::this_thread::get_id();
  auto it = thread_indices_.find(id);
  if (it == thread_indices_.end()) {
    it = thread_indices_
             .emplace(id,
                      static_cast<std::uint32_t>(thread_indices_.size() + 1))
             .first;
  }
  return it->second;
}

void Registry::RecordSpan(std::string_view name, Stopwatch::TimePoint start,
                          Stopwatch::TimePoint end, std::string args_json) {
  MutexLock lock(mutex_);
  if (spans_.size() >= kMaxSpans) {
    ++dropped_spans_;
    return;
  }
  Span span;
  span.name = std::string(name);
  span.tid = ThreadIndexLocked();
  span.start_ns = start >= epoch_ ? Stopwatch::Nanos(epoch_, start) : 0;
  span.duration_ns = Stopwatch::Nanos(start, end);
  span.args_json = std::move(args_json);
  spans_.push_back(std::move(span));
}

std::size_t Registry::num_spans() const {
  MutexLock lock(mutex_);
  return spans_.size();
}

std::uint64_t Registry::dropped_spans() const {
  MutexLock lock(mutex_);
  return dropped_spans_;
}

std::string Registry::SnapshotJson() const {
  MutexLock lock(mutex_);
  std::string out = "{\n  \"schema\": \"sper.metrics.v1\",\n";
  AppendSection(out, "counters", counters_, [](const Counter& c) {
    return JsonNumber(c.value());
  });
  AppendSection(out, "gauges", gauges_, [](const Gauge& g) {
    return JsonNumber(g.value());
  });
  AppendSection(out, "histograms", histograms_, [](const Histogram& h) {
    const HistogramSnapshot s = h.Snapshot();
    std::string json = "{\"count\": " + JsonNumber(s.count);
    json += ", \"sum\": " + JsonNumber(s.sum);
    json += ", \"mean\": " + JsonNumber(s.mean());
    json += ", \"max\": " + JsonNumber(s.max);
    json += ", \"p50\": " + JsonNumber(s.p50);
    json += ", \"p90\": " + JsonNumber(s.p90);
    json += ", \"p99\": " + JsonNumber(s.p99);
    json += "}";
    return json;
  });
  out += "  \"spans\": " + JsonNumber(std::uint64_t{spans_.size()}) + ",\n";
  out += "  \"dropped_spans\": " + JsonNumber(dropped_spans_) + "\n}\n";
  return out;
}

bool Registry::WriteSnapshotJson(const std::string& path) const {
  const std::string json = SnapshotJson();
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  return true;
}

bool Registry::WriteTraceJson(const std::string& path) const {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  MutexLock lock(mutex_);
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const Span& span = spans_[i];
    // Chrome trace-event "complete" event: ts/dur in microseconds.
    std::fprintf(out,
                 "  {\"name\": \"%s\", \"cat\": \"sper\", \"ph\": \"X\", "
                 "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u",
                 JsonEscape(span.name).c_str(),
                 static_cast<double>(span.start_ns) / 1000.0,
                 static_cast<double>(span.duration_ns) / 1000.0, span.tid);
    if (!span.args_json.empty()) {
      std::fprintf(out, ", \"args\": %s", span.args_json.c_str());
    }
    std::fprintf(out, "}%s\n", i + 1 < spans_.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  return true;
}

}  // namespace obs
}  // namespace sper
