#ifndef SPER_CORE_GROUND_TRUTH_H_
#define SPER_CORE_GROUND_TRUTH_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/comparison.h"
#include "core/profile_store.h"
#include "core/status.h"
#include "core/types.h"

/// \file ground_truth.h
/// The known duplicate pairs D_P of a dataset. Recall and recall
/// progressiveness (Sec. 7) are measured against this set. The paper does
/// NOT assume a transitive match function, so the ground truth is stored as
/// an explicit pair set, not as closed clusters.

namespace sper {

/// The set of matching profile pairs of one ER task.
class GroundTruth {
 public:
  GroundTruth() = default;

  /// Registers the unordered pair {a, b} as a match. Self-pairs are
  /// ignored; duplicates are idempotent.
  void AddMatch(ProfileId a, ProfileId b);

  /// True iff {a, b} is a known match.
  bool AreMatching(ProfileId a, ProfileId b) const {
    return pairs_.count(PairKey(a, b)) > 0;
  }

  /// |D_P|: the number of matching pairs.
  std::size_t num_matches() const { return pairs_.size(); }

  /// The canonical pair keys (see PairKey).
  const std::unordered_set<std::uint64_t>& pairs() const { return pairs_; }

  /// Expands equivalence clusters into all intra-cluster pairs:
  /// a cluster of k profiles yields C(k,2) matches. This is how Dirty ER
  /// ground truth is defined (e.g. cora: 1.3k profiles -> 17k pairs).
  static GroundTruth FromClusters(
      const std::vector<std::vector<ProfileId>>& clusters);

  /// Checks consistency against a store: ids in range, no self-pairs and,
  /// for Clean-Clean ER, every match crosses the source boundary.
  Status Validate(const ProfileStore& store) const;

 private:
  std::unordered_set<std::uint64_t> pairs_;
};

}  // namespace sper

#endif  // SPER_CORE_GROUND_TRUTH_H_
