// Tests for src/eval: the evaluator's recall/AUC accounting on emitters
// with known behaviour, the table printer, and the method registry.

#include <gtest/gtest.h>

#include <sstream>

#include "datagen/datagen.h"
#include "eval/evaluator.h"
#include "eval/experiment.h"
#include "eval/table.h"

namespace sper {
namespace {

/// Scripted emitter: plays back a fixed comparison sequence.
class ScriptedEmitter : public ProgressiveEmitter {
 public:
  explicit ScriptedEmitter(std::vector<Comparison> script)
      : script_(std::move(script)) {}
  std::optional<Comparison> Next() override {
    if (cursor_ >= script_.size()) return std::nullopt;
    return script_[cursor_++];
  }
  std::string_view name() const override { return "scripted"; }

 private:
  std::vector<Comparison> script_;
  std::size_t cursor_ = 0;
};

GroundTruth TwoMatches() {
  GroundTruth truth;
  truth.AddMatch(0, 1);
  truth.AddMatch(2, 3);
  return truth;
}

TEST(EvaluatorTest, IdealEmitterScoresNormalizedAucOne) {
  GroundTruth truth = TwoMatches();
  EvalOptions options;
  options.ecstar_max = 3.0;
  options.auc_at = {1.0, 2.0};
  ProgressiveEvaluator evaluator(truth, options);

  RunResult result = evaluator.Run([] {
    return std::make_unique<ScriptedEmitter>(std::vector<Comparison>{
        Comparison(0, 1, 1.0), Comparison(2, 3, 0.9),
        Comparison(0, 2, 0.1), Comparison(1, 3, 0.1)});
  });
  EXPECT_EQ(result.emissions, 4u);
  EXPECT_EQ(result.matches_found, 2u);
  EXPECT_DOUBLE_EQ(result.final_recall, 1.0);
  ASSERT_EQ(result.auc_norm.size(), 2u);
  EXPECT_DOUBLE_EQ(result.auc_norm[0], 1.0);  // matches first = ideal
  EXPECT_DOUBLE_EQ(result.auc_norm[1], 1.0);
}

TEST(EvaluatorTest, WorstCaseEmitterScoresLow) {
  GroundTruth truth = TwoMatches();
  EvalOptions options;
  options.ecstar_max = 2.0;
  options.auc_at = {2.0};
  ProgressiveEvaluator evaluator(truth, options);

  // Matches arrive last: recall stays 0 for half the budget.
  RunResult result = evaluator.Run([] {
    return std::make_unique<ScriptedEmitter>(std::vector<Comparison>{
        Comparison(0, 2, 1.0), Comparison(1, 3, 0.9),
        Comparison(0, 1, 0.5), Comparison(2, 3, 0.4)});
  });
  ASSERT_EQ(result.auc_norm.size(), 1u);
  EXPECT_LT(result.auc_norm[0], 0.5);
  EXPECT_DOUBLE_EQ(result.final_recall, 1.0);
}

TEST(EvaluatorTest, RepeatedEmissionsCountOnceForRecall) {
  GroundTruth truth = TwoMatches();
  EvalOptions options;
  options.ecstar_max = 3.0;
  options.auc_at = {3.0};
  ProgressiveEvaluator evaluator(truth, options);
  RunResult result = evaluator.Run([] {
    return std::make_unique<ScriptedEmitter>(std::vector<Comparison>{
        Comparison(0, 1, 1.0), Comparison(0, 1, 1.0),
        Comparison(0, 1, 1.0)});
  });
  EXPECT_EQ(result.emissions, 3u);
  EXPECT_EQ(result.matches_found, 1u);
  EXPECT_DOUBLE_EQ(result.final_recall, 0.5);
}

TEST(EvaluatorTest, EcstarMaxCapsEmissions) {
  GroundTruth truth = TwoMatches();  // |D_P| = 2
  EvalOptions options;
  options.ecstar_max = 1.0;  // cap at 2 emissions
  options.auc_at = {1.0};
  ProgressiveEvaluator evaluator(truth, options);
  RunResult result = evaluator.Run([] {
    std::vector<Comparison> script(10, Comparison(5, 6, 0.1));
    return std::make_unique<ScriptedEmitter>(std::move(script));
  });
  EXPECT_EQ(result.emissions, 2u);
}

TEST(EvaluatorTest, EarlyExhaustionExtendsAucWithFlatRecall) {
  GroundTruth truth = TwoMatches();
  EvalOptions options;
  options.ecstar_max = 10.0;
  options.auc_at = {10.0};
  ProgressiveEvaluator evaluator(truth, options);
  // Finds one match then stops after 2 emissions.
  RunResult result = evaluator.Run([] {
    return std::make_unique<ScriptedEmitter>(std::vector<Comparison>{
        Comparison(0, 1, 1.0), Comparison(0, 3, 0.5)});
  });
  ASSERT_EQ(result.auc_norm.size(), 1u);
  // Recall plateaus at 0.5: AUC* must approach 0.5 (but stay below
  // because the first emission found only half the matches).
  EXPECT_GT(result.auc_norm[0], 0.4);
  EXPECT_LE(result.auc_norm[0], 0.52);
}

TEST(EvaluatorTest, MeanAucAveragesColumns) {
  RunResult a, b;
  a.auc_norm = {0.2, 0.4};
  b.auc_norm = {0.6, 0.8};
  const std::vector<double> mean = MeanAucAcrossRuns({a, b});
  ASSERT_EQ(mean.size(), 2u);
  EXPECT_DOUBLE_EQ(mean[0], 0.4);
  EXPECT_DOUBLE_EQ(mean[1], 0.6);
}

// ------------------------------------------------------------- TextTable

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"method", "auc"});
  table.AddRow({"PPS", "0.93"});
  table.AddRow({"SA-PSN", "0.10"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("method"), std::string::npos);
  EXPECT_NE(text.find("SA-PSN"), std::string::npos);
  EXPECT_NE(text.find("0.93"), std::string::npos);
}

TEST(TextTableTest, FormatHelpers) {
  EXPECT_EQ(FormatDouble(0.93456, 3), "0.935");
  EXPECT_EQ(FormatDouble(2.0, 2), "2.00");
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
}

// ------------------------------------------------------- Method registry

TEST(ExperimentTest, MethodNamesMatchThePaper) {
  EXPECT_EQ(ToString(MethodId::kPsn), "PSN");
  EXPECT_EQ(ToString(MethodId::kSaPsn), "SA-PSN");
  EXPECT_EQ(ToString(MethodId::kSaPsab), "SA-PSAB");
  EXPECT_EQ(ToString(MethodId::kLsPsn), "LS-PSN");
  EXPECT_EQ(ToString(MethodId::kGsPsn), "GS-PSN");
  EXPECT_EQ(ToString(MethodId::kPbs), "PBS");
  EXPECT_EQ(ToString(MethodId::kPps), "PPS");
}

TEST(ExperimentTest, MakeResolverBuildsEveryMethodOnCensus) {
  Result<DatasetBundle> dataset = GenerateDataset("census");
  ASSERT_TRUE(dataset.ok());
  MethodConfig config;
  for (MethodId id : StructuredMethodSet()) {
    std::unique_ptr<ProgressiveEmitter> emitter =
        MakeResolver(id, dataset.value(), config);
    ASSERT_TRUE(emitter != nullptr) << ToString(id);
    EXPECT_EQ(emitter->name(), ToString(id));
    EXPECT_TRUE(emitter->Next().has_value()) << ToString(id);
  }
}

TEST(ExperimentTest, PsnIsUnavailableWithoutASchemaKey) {
  DatagenOptions options;
  options.scale = 0.01;
  Result<DatasetBundle> dataset = GenerateDataset("movies", options);
  ASSERT_TRUE(dataset.ok());
  MethodConfig config;
  EXPECT_EQ(MakeResolver(MethodId::kPsn, dataset.value(), config), nullptr);
}

TEST(ExperimentTest, MethodSetsMatchTheFigures) {
  EXPECT_EQ(StructuredMethodSet().size(), 7u);    // Fig. 9
  EXPECT_EQ(HeterogeneousMethodSet().size(), 6u);  // Fig. 11 (no PSN)
}

}  // namespace
}  // namespace sper
