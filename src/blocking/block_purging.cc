#include "blocking/block_purging.h"

namespace sper {

BlockCollection BlockPurging(const BlockCollection& input,
                             std::size_t num_profiles,
                             const BlockPurgingOptions& options) {
  const double max_size =
      options.max_size_ratio * static_cast<double>(num_profiles);
  // Sizing pass over the CSR offsets (O(|B|), no member scan), so the
  // survivor collection is built with zero reallocations.
  std::size_t kept_blocks = 0, kept_members = 0, kept_key_bytes = 0;
  for (BlockId id = 0; id < input.size(); ++id) {
    if (static_cast<double>(input.block_size(id)) > max_size) continue;
    ++kept_blocks;
    kept_members += input.block_size(id);
    kept_key_bytes += input.key(id).size();
  }
  BlockCollection out(input.er_type(), input.split_index());
  out.Reserve(kept_blocks, kept_members, kept_key_bytes);
  for (BlockId id = 0; id < input.size(); ++id) {
    if (static_cast<double>(input.block_size(id)) > max_size) continue;
    out.Add(input.key(id), input.members(id));
  }
  return out;
}

}  // namespace sper
