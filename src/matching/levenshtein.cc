#include "matching/levenshtein.h"

#include <algorithm>
#include <vector>

namespace sper {

std::size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string
  if (b.empty()) return a.size();

  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> curr(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;

  for (std::size_t i = 1; i <= a.size(); ++i) {
    curr[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution =
          prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, substitution});
    }
    std::swap(prev, curr);
  }
  return prev[b.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  const std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

}  // namespace sper
