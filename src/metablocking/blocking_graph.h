#ifndef SPER_METABLOCKING_BLOCKING_GRAPH_H_
#define SPER_METABLOCKING_BLOCKING_GRAPH_H_

#include <cstdint>
#include <vector>

#include "blocking/block_collection.h"
#include "blocking/profile_index.h"
#include "core/comparison.h"
#include "core/profile_store.h"
#include "metablocking/edge_weighting.h"

/// \file blocking_graph.h
/// The Blocking Graph of Meta-blocking (paper Sec. 3.2): nodes are
/// profiles, edges are the distinct comparisons of a redundancy-positive
/// block collection, weighted by a schema-agnostic scheme.
///
/// The paper stresses that materializing the full graph is impractical for
/// large datasets — that is precisely why PBS and PPS traverse it
/// implicitly through the Profile Index. This explicit materialization
/// exists for (a) the batch meta-blocking substrate (edge pruning), and
/// (b) tests/examples on small data, including the worked example of
/// Fig. 3c.

namespace sper {

/// An explicit, undirected, weighted blocking graph.
class BlockingGraph {
 public:
  /// Materializes all distinct edges with their weights. `num_threads`
  /// parallelizes the per-node neighborhood pass over profile chunks with
  /// per-thread accumulators; the edge list is merged in chunk order and
  /// is identical at every thread count.
  static BlockingGraph Build(const BlockCollection& blocks,
                             const ProfileIndex& index,
                             const ProfileStore& store,
                             WeightingScheme scheme,
                             std::size_t num_threads = 1);

  /// Distinct weighted edges, canonical (i < j), sorted by (i, j).
  const std::vector<Comparison>& edges() const { return edges_; }

  /// |V_B|: profiles that appear in at least one block.
  std::size_t num_nodes() const { return num_nodes_; }

  /// |E_B|.
  std::size_t num_edges() const { return edges_.size(); }

  /// Mean edge weight (the WEP pruning threshold).
  double MeanEdgeWeight() const;

 private:
  std::vector<Comparison> edges_;
  std::size_t num_nodes_ = 0;
};

}  // namespace sper

#endif  // SPER_METABLOCKING_BLOCKING_GRAPH_H_
