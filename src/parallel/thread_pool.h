#ifndef SPER_PARALLEL_THREAD_POOL_H_
#define SPER_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.h
/// A minimal fixed-size worker pool with a FIFO work queue — the execution
/// substrate of the parallel initialization paths (token-index sharding,
/// block filtering, edge weighting). Parallelism here is an implementation
/// detail of a deterministic library: tasks must not make output depend on
/// execution order; ParallelFor (parallel_for.h) provides the deterministic
/// static chunking used by every call site.

namespace sper {

/// Fixed-size thread pool. Submit() enqueues work; Wait() blocks until the
/// queue drains and every submitted task finished, rethrowing the first
/// captured task exception if any task threw.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Joins the workers. Pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called concurrently with destruction.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed. If any task threw,
  /// rethrows the first captured exception and discards the rest.
  void Wait();

  /// Number of worker threads.
  std::size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::exception_ptr first_exception_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sper

#endif  // SPER_PARALLEL_THREAD_POOL_H_
