#include "progressive/workflow.h"

namespace sper {

BlockCollection BuildTokenWorkflowBlocks(const ProfileStore& store,
                                         const TokenWorkflowOptions& options,
                                         TokenWorkflowTiming* timing) {
  TokenWorkflowTiming local;
  if (timing == nullptr) timing = &local;
  BlockCollection blocks = [&] {
    obs::ScopedPhase phase(options.telemetry, "token_blocking",
                           &timing->token_blocking_seconds);
    TokenBlockingOptions token_blocking = options.token_blocking;
    token_blocking.num_threads = options.num_threads;
    return TokenBlocking(store, token_blocking);
  }();
  if (options.enable_purging) {
    obs::ScopedPhase phase(options.telemetry, "block_purging",
                           &timing->purging_seconds);
    BlockPurgingOptions purging = options.purging;
    purging.num_threads = options.num_threads;
    blocks = BlockPurging(blocks, store.size(), purging);
  }
  if (options.enable_filtering) {
    obs::ScopedPhase phase(options.telemetry, "block_filtering",
                           &timing->filtering_seconds);
    BlockFilteringOptions filtering = options.filtering;
    filtering.num_threads = options.num_threads;
    blocks = BlockFiltering(blocks, filtering);
  }
  return blocks;
}

}  // namespace sper
