#ifndef SPER_ENGINE_PROGRESSIVE_ENGINE_H_
#define SPER_ENGINE_PROGRESSIVE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "core/profile_store.h"
#include "core/types.h"
#include "engine/method.h"
#include "progressive/emitter.h"
#include "progressive/gs_psn.h"
#include "progressive/pbs.h"
#include "progressive/pps.h"
#include "progressive/sa_psab.h"
#include "progressive/workflow.h"
#include "sorted/neighbor_list.h"

/// \file progressive_engine.h
/// The one-call facade over the whole library: profiles in, ranked
/// comparisons out. The engine wires the Token Blocking Workflow,
/// meta-blocking edge weighting and the chosen progressive method behind a
/// single constructor, runs every initialization hot path on
/// `num_threads` threads (identical output at every thread count), and
/// enforces an optional pay-as-you-go comparison budget on emission.

namespace sper {

/// Everything the engine needs to run one progressive ER task.
struct EngineOptions {
  /// Progressive method to run.
  MethodId method = MethodId::kPps;

  /// Threads used by the initialization phase (token-index build, block
  /// filtering, edge weighting). Emission is always sequential — it is a
  /// pull-based stream. 0 means "one thread".
  std::size_t num_threads = 1;

  /// Maximum number of comparisons Next() will emit; 0 = unlimited. This
  /// is the paper's pay-as-you-go budget expressed at the API boundary:
  /// once exhausted, Next() returns nullopt even if the method could
  /// continue.
  std::uint64_t budget = 0;

  /// Blocking workflow for the equality-based methods (PBS, PPS).
  TokenWorkflowOptions workflow;
  /// Blocking-graph edge-weighting scheme for PBS/PPS.
  WeightingScheme scheme = WeightingScheme::kArcs;
  /// PPS comparisons retained per profile.
  std::size_t pps_kmax = 100;
  /// GS-PSN window range.
  std::size_t gs_wmax = 20;
  /// SA-PSAB suffix forest parameters.
  SuffixForestOptions suffix;
  /// Neighbor List construction for the sort-based methods.
  NeighborListOptions list;
  /// Schema-based blocking key; required by kPsn, ignored otherwise.
  SchemaKeyFn schema_key;
};

/// Aggregate facts about the initialization phase (diagnostics / benches).
struct EngineInitStats {
  /// Wall-clock seconds spent in the constructor.
  double init_seconds = 0.0;
  /// |B| of the workflow collection (0 for sort-based methods).
  std::size_t num_blocks = 0;
  /// ||B|| of the workflow collection (0 for sort-based methods).
  std::uint64_t aggregate_cardinality = 0;
};

/// Facade emitter: owns the inner method emitter and its inputs. Being a
/// ProgressiveEmitter itself, it composes with every existing consumer
/// (evaluator, benches, dedup loops).
class ProgressiveEngine : public ProgressiveEmitter {
 public:
  /// Initialization phase: builds blocking structures (in parallel when
  /// options.num_threads > 1) and the method emitter. The store must
  /// outlive the engine. kPsn requires options.schema_key.
  ProgressiveEngine(const ProfileStore& store, EngineOptions options);

  /// Emission phase: the next best comparison, honoring the budget.
  std::optional<Comparison> Next() override;

  /// The inner method's acronym, e.g. "PPS".
  std::string_view name() const override { return inner_->name(); }

  /// Comparisons emitted so far.
  std::uint64_t emitted() const { return emitted_; }

  /// True once the configured budget has been spent (never for budget 0).
  bool BudgetExhausted() const {
    return options_.budget != 0 && emitted_ >= options_.budget;
  }

  /// Initialization diagnostics.
  const EngineInitStats& init_stats() const { return stats_; }

 private:
  EngineOptions options_;
  EngineInitStats stats_;
  std::unique_ptr<ProgressiveEmitter> inner_;
  std::uint64_t emitted_ = 0;
};

}  // namespace sper

#endif  // SPER_ENGINE_PROGRESSIVE_ENGINE_H_
