#include "eval/evaluator.h"

#include <algorithm>
#include <unordered_set>

#include "core/macros.h"
#include "obs/clock.h"

namespace sper {

ProgressiveEvaluator::ProgressiveEvaluator(const GroundTruth& truth,
                                           EvalOptions options)
    : truth_(truth), options_(std::move(options)) {
  SPER_CHECK(truth_.num_matches() > 0);
  SPER_CHECK(std::is_sorted(options_.auc_at.begin(), options_.auc_at.end()));
}

RunResult ProgressiveEvaluator::Run(
    const std::function<std::unique_ptr<ProgressiveEmitter>()>& factory,
    const MatchFunction* match) const {
  RunResult result;

  const obs::Stopwatch init_watch;
  std::unique_ptr<ProgressiveEmitter> emitter = factory();
  result.method = std::string(emitter->name());
  result.init_seconds = init_watch.ElapsedSeconds();

  const double num_matches = static_cast<double>(truth_.num_matches());
  const std::uint64_t ec_max = static_cast<std::uint64_t>(
      options_.ecstar_max * num_matches + 0.5);
  const std::uint64_t curve_step = std::max<std::uint64_t>(
      1, truth_.num_matches() / options_.curve_points_per_unit);

  // Running AUC sums: actual and ideal, with checkpoints at auc_at.
  double auc_sum = 0.0;
  double ideal_sum = 0.0;
  std::size_t next_auc = 0;
  std::unordered_set<std::uint64_t> found;
  found.reserve(truth_.num_matches());

  result.curve.push_back({0.0, 0.0});
  double emission_seconds = 0.0;
  double match_seconds = 0.0;

  while (result.emissions < ec_max) {
    obs::Stopwatch step_watch;
    std::optional<Comparison> comparison = emitter->Next();
    emission_seconds += step_watch.ElapsedSeconds();
    if (!comparison.has_value()) break;
    ++result.emissions;

    if (match != nullptr) {
      step_watch.Restart();
      (void)match->Similarity(comparison->i, comparison->j);
      match_seconds += step_watch.ElapsedSeconds();
    }

    if (truth_.AreMatching(comparison->i, comparison->j)) {
      found.insert(PairKey(comparison->i, comparison->j));
    }
    const double recall = static_cast<double>(found.size()) / num_matches;

    // Discrete AUC: one recall sample per emission.
    auc_sum += recall;
    ideal_sum += std::min(static_cast<double>(result.emissions), num_matches) /
                 num_matches;
    while (next_auc < options_.auc_at.size() &&
           static_cast<double>(result.emissions) >=
               options_.auc_at[next_auc] * num_matches) {
      result.auc_norm.push_back(ideal_sum > 0 ? auc_sum / ideal_sum : 0.0);
      ++next_auc;
    }

    if (result.emissions % curve_step == 0) {
      const double ecstar = static_cast<double>(result.emissions) /
                            num_matches;
      result.curve.push_back({ecstar, recall});
      result.time_recall.emplace_back(
          result.init_seconds + emission_seconds + match_seconds, recall);
    }
  }

  // A method may exhaust before a checkpoint; extend with its final state
  // (recall can no longer change, the ideal keeps accumulating).
  while (next_auc < options_.auc_at.size()) {
    const double target = options_.auc_at[next_auc] * num_matches;
    const double recall = static_cast<double>(found.size()) / num_matches;
    double extended_auc = auc_sum;
    double extended_ideal = ideal_sum;
    for (double k = static_cast<double>(result.emissions) + 1; k <= target;
         k += 1.0) {
      extended_auc += recall;
      extended_ideal += std::min(k, num_matches) / num_matches;
    }
    result.auc_norm.push_back(
        extended_ideal > 0 ? extended_auc / extended_ideal : 0.0);
    ++next_auc;
  }

  result.matches_found = found.size();
  result.final_recall = static_cast<double>(found.size()) / num_matches;
  result.emission_seconds = emission_seconds;
  result.match_seconds = match_seconds;
  const double final_ecstar =
      static_cast<double>(result.emissions) / num_matches;
  result.curve.push_back({final_ecstar, result.final_recall});
  return result;
}

std::vector<double> MeanAucAcrossRuns(const std::vector<RunResult>& runs) {
  std::vector<double> mean;
  if (runs.empty()) return mean;
  mean.assign(runs[0].auc_norm.size(), 0.0);
  for (const RunResult& run : runs) {
    SPER_CHECK(run.auc_norm.size() == mean.size());
    for (std::size_t i = 0; i < mean.size(); ++i) {
      mean[i] += run.auc_norm[i];
    }
  }
  for (double& m : mean) m /= static_cast<double>(runs.size());
  return mean;
}

}  // namespace sper
