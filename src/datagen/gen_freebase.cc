#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "datagen/corruption.h"
#include "datagen/datagen.h"
#include "datagen/dictionaries.h"
#include "datagen/generator_util.h"
#include "datagen/rng.h"

/// Synthetic `freebase` (paper Table 2: Clean-Clean ER, 4.2M x 3.7M
/// profiles, 37k/11k attribute names, 1.5M matches, 24.54 name-value
/// pairs; Freebase RDF vs DBpedia, extracted from the Billion Triples
/// Challenge).
///
/// Generated at the documented reduced scale (x ~1/50: 84k x 74k, 30k
/// matches — see DESIGN.md §4). The defining property is preserved: values
/// are URI-shaped. Freebase entities link to opaque machine ids
/// (ns/m.0xxxx) and carry heavy URI boilerplate, so the *alphabetical
/// ordering of tokens is meaningless* — sorted-neighborhood methods drown
/// (Fig. 11c) — while the few discriminative name tokens still support the
/// equality principle, making PBS the early leader exactly as the paper
/// reports.

namespace sper {

namespace {

struct FreebasePools {
  std::vector<std::string> name_tokens;  // entity-name vocabulary
  std::vector<std::string> domains;      // freebase domains ("film", ...)
  std::vector<std::string> classes;      // freebase classes
  std::vector<std::string> fb_props;     // freebase link properties
  std::vector<std::string> db_props;     // dbpedia ontology properties
  std::vector<std::string> abstract_words;
};

/// Base-36 rendering of a linked-entity id: the opaque freebase mid.
std::string Mid(std::size_t id) {
  static const char digits[] = "0123456789abcdefghijklmnopqrstuvwxyz";
  std::string out;
  do {
    out.push_back(digits[id % 36]);
    id /= 36;
  } while (id > 0);
  return "0" + out;
}

struct LinkedEntity {
  std::string name;  // two tokens
};

// Real KB references are heavily skewed (ZipfRank): a few hub entities
// are mentioned everywhere while most names are cited once or twice. The
// rare names produce the small, match-rich blocks that Block Scheduling
// processes first (PBS's early lead on freebase), while the hubs keep the
// Neighbor List noisy for the similarity-based methods.

struct KbEntity {
  std::string name;                 // two tokens, the matching signal
  std::vector<std::size_t> links;   // indices into the linked-entity table
  std::string domain;
  std::string cls;
};

KbEntity MakeEntity(Rng& rng, const FreebasePools& pools,
                    std::size_t num_linked, std::size_t min_links,
                    std::size_t max_links) {
  KbEntity e;
  e.name = rng.Pick(pools.name_tokens) + " " + rng.Pick(pools.name_tokens);
  e.domain = rng.Pick(pools.domains);
  e.cls = rng.Pick(pools.classes);
  const std::size_t links = rng.UniformInt(min_links, max_links);
  for (std::size_t l = 0; l < links; ++l) {
    e.links.push_back(ZipfRank(rng, num_linked));
  }
  return e;
}

/// Freebase-side profile: RDF triples with URI values and opaque mids.
Profile MakeFreebaseProfile(Rng& rng, const KbEntity& entity,
                            const FreebasePools& pools) {
  const std::string ns = "http://rdf.freebase.com/ns/";
  Profile p;
  p.AddAttribute(ns + "type.object.name", entity.name);
  const std::size_t types = rng.UniformInt(2, 3);
  for (std::size_t t = 0; t < types; ++t) {
    p.AddAttribute(ns + "type.object.type",
                   ns + entity.domain + "." + rng.Pick(pools.classes));
  }
  p.AddAttribute(ns + "type.object.type", ns + entity.domain + "." + entity.cls);
  for (std::size_t link : entity.links) {
    p.AddAttribute(ns + entity.domain + "." + rng.Pick(pools.fb_props),
                   ns + "m." + Mid(link));
  }
  if (rng.Bernoulli(0.3)) {
    p.AddAttribute(ns + "common.topic.alias",
                   MaybeTypo(rng, entity.name, 0.6));
  }
  return p;
}

/// DBpedia-side profile: resource URIs spell out linked entities' names.
Profile MakeDbpediaProfile(Rng& rng, const KbEntity& entity,
                           const FreebasePools& pools,
                           const std::vector<LinkedEntity>& linked) {
  Profile p;
  std::string label = entity.name;
  if (rng.Bernoulli(0.2)) {
    // The two KBs disagree on some labels; these matches keep only one
    // shared name token (weaker but still present equality signal).
    label = TokenNoise(rng, label, {.drop_rate = 0.5, .swap_rate = 0.0,
                                    .abbreviate_rate = 0.0});
    label = MaybeTypo(rng, label, 0.5);
  }
  p.AddAttribute("rdfs_label", label);

  auto resource_uri = [](const std::string& name) {
    std::string local = name;
    for (char& c : local) {
      if (c == ' ') c = '_';
    }
    return "http://dbpedia.org/resource/" + local;
  };

  // Cross-KB owl:sameAs-style self link mentions the entity's own name.
  p.AddAttribute("owl_sameAs", resource_uri(label));

  const std::size_t shown_links =
      entity.links.empty() ? 0
                           : rng.UniformInt(entity.links.size() / 2,
                                            entity.links.size());
  for (std::size_t l = 0; l < shown_links; ++l) {
    p.AddAttribute("dbo_" + rng.Pick(pools.db_props),
                   resource_uri(linked[entity.links[l]].name));
  }

  std::string abstract;
  const std::size_t words = rng.UniformInt(8, 14);
  for (std::size_t w = 0; w < words; ++w) {
    if (w) abstract += " ";
    abstract += rng.Pick(pools.abstract_words);
  }
  p.AddAttribute("dbo_abstract", abstract);
  p.AddAttribute("dbo_wikiPageID",
                 std::to_string(rng.UniformInt(1, 40000000)));
  if (rng.Bernoulli(0.6)) {
    p.AddAttribute("dct_subject",
                   "http://dbpedia.org/resource/Category:" +
                       rng.Pick(pools.abstract_words) + "_" +
                       rng.Pick(pools.abstract_words));
  }
  return p;
}

}  // namespace

DatasetBundle GenerateFreebase(const DatagenOptions& options) {
  Rng rng(options.seed * 1000003 + 7);

  FreebasePools pools;
  // Large name vocabulary: most entity-name tokens are rare, so the
  // cross-source blocks they form are small and match-rich.
  pools.name_tokens = SyllablePool(rng, 40000);
  pools.domains = SyllablePool(rng, 50);
  pools.classes = SyllablePool(rng, 300);
  pools.fb_props = SyllablePool(rng, 1500);
  pools.db_props = SyllablePool(rng, 400);
  pools.abstract_words = SyllablePool(rng, 8000);

  // Linked-entity universe: targets of mids (freebase) and resource URIs
  // (dbpedia). Shared across profiles, so link tokens form blocks.
  const std::size_t num_linked = 150000;
  std::vector<LinkedEntity> linked;
  linked.reserve(num_linked);
  for (std::size_t l = 0; l < num_linked; ++l) {
    linked.push_back(LinkedEntity{rng.Pick(pools.name_tokens) + " " +
                                  rng.Pick(pools.name_tokens)});
  }

  // Reduced-scale counts (x ~1/50 of Table 2, ratios preserved).
  const std::size_t matched_n = ScaleCount(30000, options.scale);
  const std::size_t s1_only_n = ScaleCount(54000, options.scale);
  const std::size_t s2_only_n = ScaleCount(44000, options.scale);

  std::vector<std::pair<Profile, Profile>> matched;
  matched.reserve(matched_n);
  for (std::size_t m = 0; m < matched_n; ++m) {
    const KbEntity entity =
        MakeEntity(rng, pools, num_linked, /*min_links=*/14, /*max_links=*/24);
    matched.emplace_back(MakeFreebaseProfile(rng, entity, pools),
                         MakeDbpediaProfile(rng, entity, pools, linked));
  }
  std::vector<Profile> s1_only;
  s1_only.reserve(s1_only_n);
  for (std::size_t m = 0; m < s1_only_n; ++m) {
    s1_only.push_back(MakeFreebaseProfile(
        rng, MakeEntity(rng, pools, num_linked, 14, 24), pools));
  }
  std::vector<Profile> s2_only;
  s2_only.reserve(s2_only_n);
  for (std::size_t m = 0; m < s2_only_n; ++m) {
    s2_only.push_back(MakeDbpediaProfile(
        rng, MakeEntity(rng, pools, num_linked, 14, 24), pools, linked));
  }

  CleanCleanAssembly assembly = AssembleCleanClean(
      rng, std::move(matched), std::move(s1_only), std::move(s2_only));
  return DatasetBundle{
      "freebase",
      std::move(assembly.store),
      std::move(assembly.truth),
      nullptr,
      "synthetic Freebase-DBpedia RDF linkage at reduced scale; URI "
      "boilerplate and opaque mids defeat alphabetical sorting"};
}

}  // namespace sper
