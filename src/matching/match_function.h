#ifndef SPER_MATCHING_MATCH_FUNCTION_H_
#define SPER_MATCHING_MATCH_FUNCTION_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/ground_truth.h"
#include "core/profile_store.h"
#include "core/tokenizer.h"

/// \file match_function.h
/// The match function abstraction of Sec. 7.3. The paper's progressive
/// methods are decoupled from the match function; the time experiments
/// (Fig. 13) plug in an expensive one (edit distance) and a cheap one
/// (Jaccard). Following the paper's footnote 10, effectiveness is judged
/// by the ground truth — the match functions here are exercised for their
/// cost, and their scores are reported, not thresholded.

namespace sper {

/// Scores the similarity of two profiles in [0, 1].
class MatchFunction {
 public:
  virtual ~MatchFunction() = default;

  /// Similarity of the two profiles.
  virtual double Similarity(ProfileId a, ProfileId b) const = 0;

  /// Short name, e.g. "edit-distance".
  virtual std::string_view name() const = 0;
};

/// Edit-distance match function: Levenshtein similarity of the profiles'
/// concatenated attribute values. O(s*t) per call — the expensive one.
class EditDistanceMatch : public MatchFunction {
 public:
  /// Pre-serializes every profile of the store.
  explicit EditDistanceMatch(const ProfileStore& store);

  double Similarity(ProfileId a, ProfileId b) const override;
  std::string_view name() const override { return "edit-distance"; }

 private:
  std::vector<std::string> serialized_;
};

/// Jaccard match function over attribute-value token sets. O(s+t) per
/// call — the cheap one.
class JaccardMatch : public MatchFunction {
 public:
  /// Pre-tokenizes every profile of the store.
  explicit JaccardMatch(const ProfileStore& store,
                        const TokenizerOptions& options = {});

  double Similarity(ProfileId a, ProfileId b) const override;
  std::string_view name() const override { return "jaccard"; }

 private:
  std::vector<std::vector<std::string>> tokens_;
};

/// Oracle match function: returns 1 for ground-truth matches, else 0.
/// Stands in for a perfect matcher when only effectiveness is measured.
class OracleMatch : public MatchFunction {
 public:
  explicit OracleMatch(const GroundTruth& truth) : truth_(truth) {}

  double Similarity(ProfileId a, ProfileId b) const override {
    return truth_.AreMatching(a, b) ? 1.0 : 0.0;
  }
  std::string_view name() const override { return "oracle"; }

 private:
  const GroundTruth& truth_;
};

}  // namespace sper

#endif  // SPER_MATCHING_MATCH_FUNCTION_H_
