#ifndef SPER_SERVING_QOS_H_
#define SPER_SERVING_QOS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>

#include "core/mutex.h"
#include "core/status.h"
#include "core/thread_annotations.h"
#include "engine/resolver.h"
#include "obs/clock.h"
#include "obs/telemetry.h"
#include "serving/token_bucket.h"
#include "serving/wrr.h"

/// \file qos.h
/// The overload-control layer in front of a Resolver: a
/// QosAdmissionController decides — *before* a request takes a resolver
/// ticket — whether it runs now, waits, or fails fast. Four mechanisms
/// compose, applied in this order:
///
///   1. per-client rate limiting: a deterministic token bucket per
///      ClientId (serving/token_bucket.h); over-rate requests are shed
///      with ResourceExhausted and a `retry_after_ms` backoff hint that
///      grows exponentially under consecutive sheds;
///   2. load shedding: once total queue depth or the EWMA-estimated queue
///      wait exceeds its bound, new requests are shed instead of queued —
///      the queue stays short enough that admitted interactive requests
///      keep their tail latency (BENCH_loadgen.json measures exactly
///      this: shedding on cuts interactive p99 under overload);
///   3. priority scheduling: admitted requests wait in one FIFO lane per
///      Priority class, and a smooth weighted-round-robin scheduler
///      (serving/wrr.h, default weights 8/2/1) picks which lane
///      dispatches next — interactive work dominates without starving
///      batch (the WRR cycle bounds every class's share);
///   4. doomed-request eviction: a request whose deadline will expire
///      before its estimated service start is failed immediately
///      (kEvicted — deadline_exceeded() reads true) instead of occupying
///      a queue slot it can never use.
///
/// Dispatch is serialized: one request holds the resolver at a time, so
/// the resolver's ticket order *is* the WRR dispatch order and the
/// bit-identity guarantee survives — concatenating admitted slices in
/// ticket order still equals one un-batched drain. Shed, evicted and
/// rejected requests never take a ticket and never consume the stream.
///
/// Time is read through an injected obs::ClockSource, so tests drive the
/// whole controller from an obs::ManualClock and every admit/shed/evict
/// decision is deterministic. Composes with Resolver::Drain() and
/// poisoned engines: queued requests dispatched into a draining/poisoned
/// resolver come back kRejected exactly as direct callers would.
///
/// Fault seams (obs/fault_injection.h): "qos.admit" on every entering
/// request, "qos.shed" on the shed path, "qos.evict" on the eviction
/// path — all hit outside the controller mutex.

namespace sper {
namespace serving {

/// Configuration of a QosAdmissionController. Defaults are servable.
struct QosOptions {
  /// WRR weight per priority class, indexed by Priority. Zero weights are
  /// treated as 1 by the scheduler; Validate() rejects all-zero.
  std::array<std::uint32_t, kNumPriorities> weights = {8, 2, 1};

  /// Shed once this many requests are queued (all classes combined);
  /// 0 = unbounded depth.
  std::size_t max_queue_depth = 256;

  /// Shed once the EWMA-estimated queue wait for a new request exceeds
  /// this; 0 = no wait bound. The estimate is
  /// (queued + in_service) * ewma_service_time.
  std::uint64_t max_queue_wait_ms = 0;

  /// Per-client token bucket: sustained requests/second and burst size.
  /// rate 0 disables rate limiting.
  double client_rate = 0.0;
  double client_burst = 8.0;

  /// Master switch for mechanisms 2 and 4 (depth/wait shedding and
  /// doomed eviction). Rate limiting (1) and priority scheduling (3)
  /// stay active regardless — the benchmark's "shedding off" arm is this
  /// switch off, which is also plain-FIFO-with-lanes behavior.
  bool shed_enabled = true;

  /// Eviction sub-switch (only meaningful when shed_enabled).
  bool evict_doomed = true;

  /// Backoff hint growth for kShed results: hint =
  /// max(bucket_refill_ms, base << consecutive_sheds), capped.
  std::uint64_t retry_after_base_ms = 1;
  std::uint64_t retry_after_cap_ms = 1000;

  /// Time source for every QoS decision. Defaults to the process
  /// monotonic clock; tests inject an obs::ManualClock.
  const obs::ClockSource* clock = nullptr;

  /// Metric sink: per-class counters "qos.<class>.admitted" / ".sheds" /
  /// ".evictions", per-class histogram "qos.<class>.queue_wait_ns",
  /// gauge "qos.queue_depth", counter "qos.rate_limited".
  obs::TelemetryScope telemetry;

  /// OK iff the configuration is servable (some weight positive, burst
  /// >= 1 when rate limiting, cap >= base).
  Status Validate() const;
};

/// Aggregate per-class observable state, independent of telemetry (tests
/// read these; the metric sinks mirror them).
struct ClassStats {
  std::uint64_t admitted = 0;   // dispatched into the resolver
  std::uint64_t sheds = 0;      // depth/wait sheds + rate-limit sheds
  std::uint64_t evictions = 0;  // doomed-request evictions
  std::uint64_t queued = 0;     // currently waiting in the lane
};

/// The admission controller. Thread-safe: Resolve() may be called from
/// any number of client threads; the controller serializes dispatch into
/// the underlying resolver. The resolver must outlive the controller.
class QosAdmissionController {
 public:
  /// `options` must Validate(); SPER_CHECK-enforced.
  QosAdmissionController(Resolver& resolver, QosOptions options);

  /// Serves one request under QoS. Blocking for admitted requests (lane
  /// wait + serve); immediate for shed/evicted ones. See the file
  /// comment for the decision order.
  ResolveResult Resolve(const ResolveRequest& request);

  /// Per-class counters, consistent snapshot.
  ClassStats stats(Priority priority) const;

  /// Total requests currently queued across all lanes.
  std::size_t queue_depth() const;

  /// Test hook: while paused, queued requests accumulate instead of
  /// dispatching; un-pausing dispatches the backlog in WRR order. Lets a
  /// deterministic test stage a known queue mix and observe the exact
  /// dispatch order / eviction decisions.
  void SetDispatchPaused(bool paused);

  /// Seeds the EWMA service-time estimate that queue-wait shedding and
  /// doomed-request eviction reason with (normally learned from completed
  /// serves). Lets an operator pre-load the model at startup — and lets a
  /// ManualClock test exercise the estimate-driven paths, which would
  /// otherwise see an estimate of zero forever.
  void PrimeServiceEstimate(std::uint64_t service_ns);

  const QosOptions& options() const { return options_; }

 private:
  /// One blocked Resolve() call, living on its caller's stack. The
  /// pointer stays in exactly one lane until the waiter is selected or
  /// evicted, and the caller cannot return (destroying it) before then.
  struct Waiter {
    std::uint64_t enqueue_ns = 0;
    std::uint64_t deadline_ns = 0;  // absolute (clock domain); 0 = none
    bool selected = false;
    bool evicted = false;
  };

  /// Selects and wakes the next waiter (WRR over non-empty lanes),
  /// evicting doomed lane heads along the way. No-op while paused, while
  /// a request is in service, or when every lane is empty.
  void DispatchNextLocked() SPER_REQUIRES(mutex_);

  /// Estimated queue wait of a request entering now, behind `ahead`
  /// requests (queued plus any in service).
  std::uint64_t EstimatedWaitNs(std::size_t ahead) const SPER_REQUIRES(mutex_);

  /// Exponential backoff hint for a client's n-th consecutive shed.
  std::uint64_t BackoffMs(std::uint32_t consecutive_sheds) const;

  /// Builds the kShed result (ResourceExhausted + retry hint) and bumps
  /// the shed accounting for (client, priority).
  ResolveResult ShedLocked(ClientId client, Priority priority,
                           std::string reason, std::uint64_t bucket_wait_ms)
      SPER_REQUIRES(mutex_);

  Resolver& resolver_;
  const QosOptions options_;
  const obs::ClockSource* clock_;  // never null after construction

  mutable Mutex mutex_;
  CondVar cv_;

  /// Per-client rate-limit + backoff state. std::map (not unordered) so
  /// any future iteration is deterministic by ClientId.
  struct ClientState {
    TokenBucket bucket;
    std::uint32_t consecutive_sheds = 0;
  };
  std::map<ClientId, ClientState> clients_ SPER_GUARDED_BY(mutex_);

  std::array<std::deque<Waiter*>, kNumPriorities> lanes_
      SPER_GUARDED_BY(mutex_);
  SmoothWeightedRoundRobin<kNumPriorities> wrr_ SPER_GUARDED_BY(mutex_);
  std::size_t queued_total_ SPER_GUARDED_BY(mutex_) = 0;
  bool in_service_ SPER_GUARDED_BY(mutex_) = false;
  bool paused_ SPER_GUARDED_BY(mutex_) = false;

  /// EWMA of resolver service time, new = (3*old + sample) / 4; 0 until
  /// the first completion.
  std::uint64_t ewma_service_ns_ SPER_GUARDED_BY(mutex_) = 0;

  std::array<ClassStats, kNumPriorities> stats_ SPER_GUARDED_BY(mutex_);

  /// Metric sinks (nullptr when telemetry is disabled).
  std::array<obs::Counter*, kNumPriorities> admitted_metric_{};
  std::array<obs::Counter*, kNumPriorities> sheds_metric_{};
  std::array<obs::Counter*, kNumPriorities> evictions_metric_{};
  std::array<obs::Histogram*, kNumPriorities> queue_wait_metric_{};
  obs::Gauge* queue_depth_metric_ = nullptr;
  obs::Counter* rate_limited_metric_ = nullptr;
};

}  // namespace serving
}  // namespace sper

#endif  // SPER_SERVING_QOS_H_
