#include "metablocking/pruning.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace sper {

namespace {
void SortByPair(std::vector<Comparison>& edges) {
  std::sort(edges.begin(), edges.end(),
            [](const Comparison& a, const Comparison& b) {
              if (a.i != b.i) return a.i < b.i;
              return a.j < b.j;
            });
}
}  // namespace

std::vector<Comparison> WeightEdgePruning(const BlockingGraph& graph) {
  const double threshold = graph.MeanEdgeWeight();
  std::vector<Comparison> kept;
  for (const Comparison& e : graph.edges()) {
    if (e.weight >= threshold) kept.push_back(e);
  }
  SortByPair(kept);
  return kept;
}

std::vector<Comparison> CardinalityNodePruning(const BlockingGraph& graph) {
  if (graph.num_nodes() == 0) return {};
  const std::vector<Comparison>& edges = graph.edges();

  // Incident-edge adjacency in CSR form: a counting pass sizes each
  // node's slice, a fill pass drops edge ids in — two flat arrays instead
  // of a hash map of heap vectors. Each slice holds its node's incident
  // edge ids in ascending id order (the fill walks edges in order), the
  // same per-node sequence the old map layout produced.
  ProfileId max_node = 0;
  for (const Comparison& e : edges) max_node = std::max(max_node, e.j);
  const std::size_t num_slots = static_cast<std::size_t>(max_node) + 1;

  std::vector<std::size_t> offsets(num_slots + 1, 0);
  for (const Comparison& e : edges) {
    ++offsets[e.i + 1];
    ++offsets[e.j + 1];
  }
  for (std::size_t n = 0; n < num_slots; ++n) offsets[n + 1] += offsets[n];

  std::vector<std::size_t> incident(2 * edges.size());
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::size_t idx = 0; idx < edges.size(); ++idx) {
    incident[cursor[edges[idx].i]++] = idx;
    incident[cursor[edges[idx].j]++] = idx;
  }

  const double avg_degree = 2.0 * static_cast<double>(graph.num_edges()) /
                            static_cast<double>(graph.num_nodes());
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(avg_degree / 2.0)));

  // An edge survives if either endpoint ranks it among its k best: one
  // bit per edge id instead of a hash set of ids.
  std::vector<std::uint64_t> survivors((edges.size() + 63) / 64, 0);
  for (std::size_t node = 0; node < num_slots; ++node) {
    const auto begin = incident.begin() + offsets[node];
    const auto end = incident.begin() + offsets[node + 1];
    const std::size_t keep =
        std::min(k, static_cast<std::size_t>(end - begin));
    std::partial_sort(begin, begin + keep, end,
                      [&](std::size_t a, std::size_t b) {
                        return ByWeightDesc()(edges[a], edges[b]);
                      });
    for (std::size_t x = 0; x < keep; ++x) {
      const std::size_t idx = *(begin + x);
      survivors[idx / 64] |= std::uint64_t{1} << (idx % 64);
    }
  }

  std::vector<Comparison> kept;
  for (std::size_t idx = 0; idx < edges.size(); ++idx) {
    if ((survivors[idx / 64] >> (idx % 64)) & 1) kept.push_back(edges[idx]);
  }
  SortByPair(kept);
  return kept;
}

}  // namespace sper
