#include "matching/jaccard.h"

namespace sper {

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::size_t intersection = 0;
  std::size_t x = 0, y = 0;
  while (x < a.size() && y < b.size()) {
    if (a[x] < b[y]) {
      ++x;
    } else if (b[y] < a[x]) {
      ++y;
    } else {
      ++intersection;
      ++x;
      ++y;
    }
  }
  const std::size_t unions = a.size() + b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(unions);
}

}  // namespace sper
