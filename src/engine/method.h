#ifndef SPER_ENGINE_METHOD_H_
#define SPER_ENGINE_METHOD_H_

#include <optional>
#include <string_view>

/// \file method.h
/// Identifiers of the paper's seven progressive methods. Lives in the
/// engine layer so both the ProgressiveEngine facade and the eval harness
/// name methods the same way; eval/experiment.h re-exports it.

namespace sper {

/// The seven methods of the evaluation (Figs. 9-13).
enum class MethodId {
  kPsn,     // schema-based baseline
  kSaPsn,   // naïve, similarity
  kSaPsab,  // naïve, equality/hierarchy
  kLsPsn,   // advanced, similarity (local)
  kGsPsn,   // advanced, similarity (global)
  kPbs,     // advanced, equality (block-centric)
  kPps,     // advanced, equality (profile-centric)
};

/// Method acronym as printed in the paper.
std::string_view ToString(MethodId id);

/// True for the Comparison-List methods (PBS, PPS), whose emitters expose
/// the refill-batch boundary (BatchSource) the emission pipeline needs.
/// ResolverOptions::lookahead has no effect on the other methods.
bool MethodHasBatchRefills(MethodId id);

/// Inverse of ToString ("PPS", "SA-PSN", ...); nullopt for unknown names.
std::optional<MethodId> ParseMethodId(std::string_view name);

}  // namespace sper

#endif  // SPER_ENGINE_METHOD_H_
