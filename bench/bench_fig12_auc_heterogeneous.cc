// Figure 12: mean normalized AUC at ec* = 1, 5, 10, 20 across the three
// heterogeneous datasets, plus the per-dataset breakdown.
//
//   $ ./bench_fig12_auc_heterogeneous [--scale=S]

#include <map>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace sper;
  using namespace sper::bench;
  const BenchArgs args = ParseArgs(argc, argv);

  std::printf("Figure 12: mean AUC*_m over the heterogeneous datasets\n");

  const std::vector<double> auc_at = {1.0, 5.0, 10.0, 20.0};
  std::map<MethodId, std::vector<RunResult>> per_method;

  for (const std::string& name : HeterogeneousDatasetNames()) {
    DatagenOptions gen;
    gen.scale = args.scale;
    Result<DatasetBundle> dataset = GenerateDataset(name, gen);
    if (!dataset.ok()) {
      std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
      return 1;
    }
    EvalOptions options;
    options.ecstar_max = 20.0;
    options.auc_at = auc_at;
    ProgressiveEvaluator evaluator(dataset.value().truth, options);
    MethodConfig config = ConfigFor(name);

    std::vector<RunResult> runs;
    for (MethodId id : HeterogeneousMethodSet()) {
      if (id == MethodId::kSaPsab && name != "movies") continue;
      RunResult run = evaluator.Run(
          [&] { return MakeResolver(id, dataset.value(), config); });
      per_method[id].push_back(run);
      runs.push_back(std::move(run));
    }
    PrintAucTable(name, auc_at, runs);
  }

  std::printf("\n== mean AUC*_m across all heterogeneous datasets ==\n"
              "(SA-PSAB averaged over movies only — it cannot scale to the "
              "other two)\n");
  std::vector<std::string> headers = {"method"};
  for (double at : auc_at) headers.push_back("AUC*@" + FormatDouble(at, 0));
  TextTable table(headers);
  for (MethodId id : HeterogeneousMethodSet()) {
    std::vector<std::string> row = {std::string(ToString(id))};
    for (double mean : MeanAucAcrossRuns(per_method[id])) {
      row.push_back(FormatDouble(mean, 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf("\nExpected shape (paper Fig. 12): PPS the best performer at "
              "every AUC*@ec* level.\n");
  return 0;
}
