#include "progressive/ls_psn.h"

namespace sper {

LsPsnEmitter::LsPsnEmitter(const ProfileStore& store,
                           const NeighborListOptions& options)
    : store_(store),
      list_(NeighborList::BuildSchemaAgnostic(store, options)),
      positions_(list_, store.size()),
      freq_(store.size(), 0.0) {
  BuildWindow();
}

void LsPsnEmitter::BuildWindow() {
  comparisons_.Clear();
  // Dirty ER iterates every profile and keeps neighbors with a smaller id;
  // Clean-Clean ER iterates source 1 and keeps source-2 neighbors
  // (the two adaptations of Algorithm 1 described in Sec. 5.1.1).
  const bool clean_clean = store_.er_type() == ErType::kCleanClean;
  const ProfileId outer_end =
      clean_clean ? store_.split_index()
                  : static_cast<ProfileId>(store_.size());
  const std::size_t n = list_.size();

  for (ProfileId i = 0; i < outer_end; ++i) {
    auto is_valid = [&](ProfileId j) {
      return clean_clean ? !store_.InSource1(j) : j < i;
    };
    for (std::uint32_t pos : positions_.PositionsOf(i)) {
      // Neighbor `window_` places after the position.
      if (pos + window_ < n) {
        const ProfileId j = list_.at(pos + window_);
        if (is_valid(j)) {
          if (freq_[j] == 0.0) touched_.push_back(j);
          freq_[j] += 1.0;
        }
      }
      // Neighbor `window_` places before the position.
      if (pos >= window_) {
        const ProfileId k = list_.at(pos - window_);
        if (is_valid(k)) {
          if (freq_[k] == 0.0) touched_.push_back(k);
          freq_[k] += 1.0;
        }
      }
    }
    for (ProfileId j : touched_) {
      const double weight = RcfWeight(freq_[j], positions_.NumPositionsOf(i),
                                      positions_.NumPositionsOf(j));
      comparisons_.Add(Comparison(i, j, weight));
      freq_[j] = 0.0;
    }
    touched_.clear();
  }
  comparisons_.SortDescending();
}

std::optional<Comparison> LsPsnEmitter::Next() {
  while (comparisons_.Empty()) {
    ++window_;
    if (window_ >= list_.size()) return std::nullopt;
    BuildWindow();
  }
  return comparisons_.PopFirst();
}

}  // namespace sper
