#include "metablocking/edge_weighting.h"

#include <cmath>
#include <string>

#include "core/macros.h"
#include "metablocking/neighborhood.h"
#include "parallel/parallel_for.h"

namespace sper {

WeightingScheme ParseWeightingScheme(std::string_view name) {
  if (name == "arcs") return WeightingScheme::kArcs;
  if (name == "cbs") return WeightingScheme::kCbs;
  if (name == "js") return WeightingScheme::kJs;
  if (name == "ecbs") return WeightingScheme::kEcbs;
  if (name == "ejs") return WeightingScheme::kEjs;
  SPER_CHECK(false && "unknown weighting scheme");
  return WeightingScheme::kArcs;
}

const char* ToString(WeightingScheme scheme) {
  switch (scheme) {
    case WeightingScheme::kArcs:
      return "arcs";
    case WeightingScheme::kCbs:
      return "cbs";
    case WeightingScheme::kJs:
      return "js";
    case WeightingScheme::kEcbs:
      return "ecbs";
    case WeightingScheme::kEjs:
      return "ejs";
  }
  return "unknown";
}

EdgeWeighter::EdgeWeighter(const BlockCollection& blocks,
                           const ProfileIndex& index,
                           const ProfileStore& store, WeightingScheme scheme,
                           std::size_t num_threads,
                           obs::TelemetryScope telemetry)
    : blocks_(blocks), index_(index), scheme_(scheme) {
  obs::ScopedPhase timer(telemetry, "edge_weighting");
  log_num_blocks_ =
      blocks_.size() > 0 ? std::log10(static_cast<double>(blocks_.size()))
                         : 0.0;
  if (scheme_ == WeightingScheme::kEjs) ComputeDegrees(store, num_threads);
}

void EdgeWeighter::ComputeDegrees(const ProfileStore& store,
                                  std::size_t num_threads) {
  degrees_.assign(store.size(), 0);
  // Each chunk owns a contiguous range of profiles: degrees_[i] is only
  // written by i's chunk, and the per-chunk edge counts are summed in
  // chunk order, so the result is thread-count invariant.
  const std::size_t num_chunks =
      StaticChunks(store.size(), num_threads).size();
  std::vector<std::uint64_t> chunk_twice_edges(num_chunks, 0);
  ParallelForChunks(
      store.size(), num_threads, [&](std::size_t chunk, IndexRange range) {
        NeighborhoodAccumulator acc(store.size());
        std::uint64_t twice_edges = 0;
        for (std::size_t i = range.begin; i < range.end; ++i) {
          acc.Gather(static_cast<ProfileId>(i), blocks_, index_,
                     [](BlockId) { return 1.0; },
                     [&](ProfileId, double) {
                       ++degrees_[i];
                       ++twice_edges;
                     });
        }
        chunk_twice_edges[chunk] = twice_edges;
      });
  std::uint64_t twice_edges = 0;
  for (std::uint64_t count : chunk_twice_edges) twice_edges += count;
  const double num_edges = static_cast<double>(twice_edges) / 2.0;
  log_num_edges_ = num_edges > 0 ? std::log10(num_edges) : 0.0;
}

double EdgeWeighter::BlockContribution(BlockId b) const {
  if (scheme_ == WeightingScheme::kArcs) {
    const double card = static_cast<double>(blocks_.Cardinality(b));
    return card > 0 ? 1.0 / card : 0.0;
  }
  return 1.0;
}

double EdgeWeighter::Finalize(ProfileId i, ProfileId j,
                              double accumulated) const {
  if (accumulated <= 0.0) return 0.0;
  switch (scheme_) {
    case WeightingScheme::kArcs:
    case WeightingScheme::kCbs:
      return accumulated;
    case WeightingScheme::kJs: {
      const double bi = static_cast<double>(index_.NumBlocksOf(i));
      const double bj = static_cast<double>(index_.NumBlocksOf(j));
      const double denom = bi + bj - accumulated;
      return denom > 0 ? accumulated / denom : 0.0;
    }
    case WeightingScheme::kEcbs: {
      const double bi = static_cast<double>(index_.NumBlocksOf(i));
      const double bj = static_cast<double>(index_.NumBlocksOf(j));
      if (bi == 0 || bj == 0) return 0.0;
      return accumulated * (log_num_blocks_ - std::log10(bi)) *
             (log_num_blocks_ - std::log10(bj));
    }
    case WeightingScheme::kEjs: {
      const double bi = static_cast<double>(index_.NumBlocksOf(i));
      const double bj = static_cast<double>(index_.NumBlocksOf(j));
      const double denom = bi + bj - accumulated;
      const double js = denom > 0 ? accumulated / denom : 0.0;
      const double di = static_cast<double>(degrees_[i]);
      const double dj = static_cast<double>(degrees_[j]);
      if (di == 0 || dj == 0) return 0.0;
      return js * (log_num_edges_ - std::log10(di)) *
             (log_num_edges_ - std::log10(dj));
    }
  }
  return 0.0;
}

double EdgeWeighter::Weight(ProfileId i, ProfileId j) const {
  double accumulated = 0.0;
  index_.ForEachCommonBlock(
      i, j, [&](BlockId b) { accumulated += BlockContribution(b); });
  if (accumulated == 0.0) return 0.0;
  return Finalize(i, j, accumulated);
}

}  // namespace sper
