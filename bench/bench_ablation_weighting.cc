// Ablation: the blocking-graph weighting scheme behind PBS and PPS. The
// paper's workflow fixes ARCS (Sec. 7); this sweep swaps in the other
// meta-blocking schemes (CBS, JS, ECBS, EJS) and reports AUC*@{1,5} on a
// structured and a heterogeneous dataset.
//
//   $ ./bench_ablation_weighting [--scale=S]

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace sper;
  using namespace sper::bench;
  const BenchArgs args = ParseArgs(argc, argv);

  std::printf("Ablation: edge-weighting scheme for the equality-based "
              "methods\n");

  const std::vector<WeightingScheme> schemes = {
      WeightingScheme::kArcs, WeightingScheme::kCbs, WeightingScheme::kJs,
      WeightingScheme::kEcbs, WeightingScheme::kEjs};

  struct Target {
    const char* dataset;
    double scale;
  };
  for (const Target& target : {Target{"cora", 1.0}, Target{"movies", 0.2}}) {
    DatagenOptions gen;
    gen.scale = target.scale * args.scale;
    Result<DatasetBundle> dataset = GenerateDataset(target.dataset, gen);
    if (!dataset.ok()) return 1;
    EvalOptions options;
    options.ecstar_max = 5.0;
    options.auc_at = {1.0, 5.0};
    ProgressiveEvaluator evaluator(dataset.value().truth, options);

    std::printf("\n== %s ==\n", target.dataset);
    TextTable table({"method", "scheme", "AUC*@1", "AUC*@5", "recall@5"});
    for (MethodId id : {MethodId::kPbs, MethodId::kPps}) {
      for (WeightingScheme scheme : schemes) {
        MethodConfig config = ConfigFor(target.dataset);
        config.scheme = scheme;
        RunResult run = evaluator.Run(
            [&] { return MakeResolver(id, dataset.value(), config); });
        table.AddRow({std::string(ToString(id)), ToString(scheme),
                      FormatDouble(run.auc_norm[0], 3),
                      FormatDouble(run.auc_norm[1], 3),
                      FormatDouble(run.final_recall, 3)});
      }
    }
    table.Print();
  }

  std::printf(
      "\nReading: PBS is insensitive to the scheme — the block schedule\n"
      "dictates the order and every block's comparisons are emitted before\n"
      "the next block; the scheme only permutes pairs inside one block.\n"
      "PPS is sensitive: its duplication likelihood averages the scheme's\n"
      "weights, and the Jaccard-normalized family (JS/ECBS/EJS) proves\n"
      "most robust on these synthetics, with ARCS (the paper's choice)\n"
      "competitive but sensitive to tiny coincidental blocks.\n");
  return 0;
}
