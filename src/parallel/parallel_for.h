#ifndef SPER_PARALLEL_PARALLEL_FOR_H_
#define SPER_PARALLEL_PARALLEL_FOR_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "parallel/thread_pool.h"

/// \file parallel_for.h
/// Deterministic data-parallel loops. ParallelFor splits an index range
/// into `num_threads` contiguous chunks with *static* chunking: chunk
/// boundaries depend only on (range size, num_threads), never on timing.
/// Call sites that accumulate per chunk and merge in chunk order therefore
/// produce bit-identical results at every thread count — the invariant the
/// whole library's determinism contract rests on (see
/// tests/determinism_test.cc, ThreadCountInvariance).

namespace sper {

/// A contiguous half-open index range [begin, end).
struct IndexRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
};

/// The static chunking used by ParallelFor: `n` items split into at most
/// `num_chunks` contiguous ranges whose sizes differ by at most one, in
/// index order. Exposed so call sites can pre-size per-chunk accumulators
/// and merge them deterministically.
inline std::vector<IndexRange> StaticChunks(std::size_t n,
                                            std::size_t num_chunks) {
  if (num_chunks == 0) num_chunks = 1;
  std::vector<IndexRange> chunks;
  if (n == 0) return chunks;
  if (num_chunks > n) num_chunks = n;
  const std::size_t base = n / num_chunks;
  const std::size_t remainder = n % num_chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t size = base + (c < remainder ? 1 : 0);
    chunks.push_back({begin, begin + size});
    begin += size;
  }
  return chunks;
}

/// Runs `fn(chunk_index, range)` over the static chunks of [0, n) on
/// `num_threads` threads (inline when 1 thread or a single chunk).
/// Exceptions from any chunk propagate to the caller (first captured one).
/// `fn` must not touch state shared with other chunks unless it is its own
/// chunk-indexed slot.
template <typename ChunkFn>
void ParallelForChunks(std::size_t n, std::size_t num_threads, ChunkFn&& fn) {
  const std::vector<IndexRange> chunks = StaticChunks(n, num_threads);
  if (chunks.empty()) return;
  if (num_threads <= 1 || chunks.size() == 1) {
    for (std::size_t c = 0; c < chunks.size(); ++c) fn(c, chunks[c]);
    return;
  }
  // The calling thread processes chunk 0 itself instead of idling in
  // Wait(), so only chunks.size() - 1 workers are spawned.
  ThreadPool pool(chunks.size() - 1);
  for (std::size_t c = 1; c < chunks.size(); ++c) {
    pool.Submit([&fn, &chunks, c] { fn(c, chunks[c]); });
  }
  fn(std::size_t{0}, chunks[0]);
  pool.Wait();
}

/// Runs `fn(i)` for every i in [0, n), statically chunked over
/// `num_threads` threads. Iteration order inside a chunk is ascending.
template <typename Fn>
void ParallelFor(std::size_t n, std::size_t num_threads, Fn&& fn) {
  ParallelForChunks(n, num_threads,
                    [&fn](std::size_t /*chunk*/, IndexRange range) {
                      for (std::size_t i = range.begin; i < range.end; ++i) {
                        fn(i);
                      }
                    });
}

/// Per-chunk accumulate + ordered merge: runs `accumulate(chunk_index,
/// range)` -> Accumulator over the static chunks of [0, n), then
/// concatenates the per-chunk results *in chunk order* into one vector.
/// Because chunk boundaries and merge order are both deterministic, the
/// output is independent of the thread count.
template <typename Accumulate>
auto AccumulateOrdered(std::size_t n, std::size_t num_threads,
                       Accumulate&& accumulate) {
  using Accumulator =
      decltype(accumulate(std::size_t{0}, IndexRange{0, 0}));
  const std::size_t num_chunks = StaticChunks(n, num_threads).size();
  std::vector<Accumulator> parts(num_chunks);
  ParallelForChunks(n, num_threads,
                    [&](std::size_t chunk, IndexRange range) {
                      parts[chunk] = accumulate(chunk, range);
                    });
  Accumulator merged;
  std::size_t total = 0;
  for (const Accumulator& part : parts) total += part.size();
  merged.reserve(total);
  for (Accumulator& part : parts) {
    merged.insert(merged.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
  }
  return merged;
}

}  // namespace sper

#endif  // SPER_PARALLEL_PARALLEL_FOR_H_
