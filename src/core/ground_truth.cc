#include "core/ground_truth.h"

#include <string>

namespace sper {

void GroundTruth::AddMatch(ProfileId a, ProfileId b) {
  if (a == b) return;
  pairs_.insert(PairKey(a, b));
}

GroundTruth GroundTruth::FromClusters(
    const std::vector<std::vector<ProfileId>>& clusters) {
  GroundTruth gt;
  for (const auto& cluster : clusters) {
    for (std::size_t x = 0; x < cluster.size(); ++x) {
      for (std::size_t y = x + 1; y < cluster.size(); ++y) {
        gt.AddMatch(cluster[x], cluster[y]);
      }
    }
  }
  return gt;
}

Status GroundTruth::Validate(const ProfileStore& store) const {
  for (std::uint64_t key : pairs_) {
    const ProfileId lo = static_cast<ProfileId>(key >> 32);
    const ProfileId hi = static_cast<ProfileId>(key & 0xffffffffu);
    if (hi >= store.size()) {
      return Status::InvalidArgument("ground-truth id out of range: " +
                                     std::to_string(hi));
    }
    if (lo == hi) {
      return Status::InvalidArgument("ground truth contains a self-pair");
    }
    if (!store.IsComparable(lo, hi)) {
      return Status::InvalidArgument(
          "ground-truth pair violates the ER-type validity rule: (" +
          std::to_string(lo) + ", " + std::to_string(hi) + ")");
    }
  }
  return Status::Ok();
}

}  // namespace sper
